(** Multi-objective particle-swarm optimisation with a crowding-distance
    external archive (Coello, Pulido & Lechuga 2004): leaders are drawn
    from sparse regions of the non-dominated archive by binary
    tournament on crowding distance, personal bests are updated under
    Deb constraint-domination, and polynomial-mutation turbulence keeps
    the swarm exploring.

    Part of the optimiser portfolio ({!Optimiser}); swarm methods reach
    usable fronts in few evaluations on analog-sizing problems (Rashid
    et al., arXiv:2310.12440). *)

type options = {
  population : int;      (** swarm size, >= 2 *)
  generations : int;
  archive : int;         (** external archive capacity, >= 2 *)
  inertia : float;       (** velocity inertia w, in [0, 1) *)
  c_personal : float;    (** cognitive acceleration c1 *)
  c_global : float;      (** social acceleration c2 *)
  mutation_prob : float; (** turbulence probability; <= 0 means 1/n_vars *)
  eta_mutation : float;  (** polynomial-mutation distribution index *)
}

val default_options : options
(** population 50, generations 30, archive 50, w 0.4, c1 = c2 = 1.5,
    turbulence 1/n with η 20. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> Nsga2.individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Run MOPSO and return archive ∪ personal bests (use
    {!Nsga2.pareto_front} for the non-dominated subset).  Each
    generation's moves are evaluated as one batch through [evaluator];
    results are bit-identical for any worker count.
    [optimise] ≡ [init] + [generations] × [step]. *)

(* ---- step-wise API (checkpointable generation loop), mirroring
   {!Nsga2}'s ---- *)

type state

val init :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  Problem.t ->
  Repro_util.Prng.t ->
  state
(** Draw and evaluate the initial swarm (zero velocities, personal bests
    = positions, archive = non-dominated feasible subset).
    @raise Invalid_argument on out-of-range options. *)

val step : ?evaluator:Problem.evaluator -> Problem.t -> state -> unit

val generation : state -> int

val population : state -> Nsga2.individual array
(** Archive ∪ personal bests — the reporting view used for front
    extraction and convergence metrics. *)

val save_state : state -> Repro_engine.Snapshot.t -> key:string -> unit
(** Stores generation, PRNG, swarm, velocities, personal bests and
    archive under [key ^ ".generation" / ".prng" / ".swarm" /
    ".velocity" / ".pbest" / ".archive"]; a restored state continues
    bit-identically. *)

val restore_state :
  options:options ->
  Problem.t ->
  Repro_engine.Snapshot.t ->
  key:string ->
  state option

val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
