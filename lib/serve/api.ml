module Telemetry = Repro_engine.Telemetry
module Histogram = Repro_obs.Histogram
module Perf_table = Hieropt.Perf_table

type t = { registry : Registry.t; version : string; started : float }

let create ?(version = "dev") ~registry () =
  { registry; version; started = Unix.gettimeofday () }

let registry t = t.registry
let max_batch = 65536

(* --- wire codec ------------------------------------------------------- *)

let triple_to_json (nominal, lo, hi) =
  Json.Obj
    [ ("nominal", Json.Num nominal); ("min", Json.Num lo); ("max", Json.Num hi) ]

(* prefix accessor errors with where in the message we were looking *)
let at path = Result.map_error (fun e -> path ^ ": " ^ e)

let triple_of_json path j =
  let ( let* ) = Result.bind in
  let* nominal = at path (Json.get_float "nominal" j) in
  let* lo = at path (Json.get_float "min" j) in
  let* hi = at path (Json.get_float "max" j) in
  Ok (nominal, lo, hi)

let point_eval_to_json (pe : Perf_table.point_eval) =
  Json.Obj
    [
      ("kvco", triple_to_json pe.q_kvco);
      ("ivco", triple_to_json pe.q_ivco);
      ("jvco", triple_to_json pe.q_jvco);
      ("fmin", Json.Num pe.q_fmin);
      ("fmax", Json.Num pe.q_fmax);
    ]

let point_eval_of_json j =
  let ( let* ) = Result.bind in
  let* kv = Json.get_field "kvco" j in
  let* iv = Json.get_field "ivco" j in
  let* jv = Json.get_field "jvco" j in
  let* q_kvco = triple_of_json "kvco" kv in
  let* q_ivco = triple_of_json "ivco" iv in
  let* q_jvco = triple_of_json "jvco" jv in
  let* q_fmin = Json.get_float "fmin" j in
  let* q_fmax = Json.get_float "fmax" j in
  Ok { Perf_table.q_kvco; q_ivco; q_jvco; q_fmin; q_fmax }

let point_of_json path j =
  let ( let* ) = Result.bind in
  let* kvco = at path (Json.get_float "kvco" j) in
  let* ivco = at path (Json.get_float "ivco" j) in
  Ok (kvco, ivco)

(* accept {"points":[...]} or one bare {"kvco":..,"ivco":..} object *)
let points_of_body body =
  let ( let* ) = Result.bind in
  let* j = Json.of_string body in
  match Json.member "points" j with
  | Some (Json.Arr items) ->
    if List.length items > max_batch then
      Error (Printf.sprintf "batch exceeds %d points" max_batch)
    else
      let rec decode i acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | item :: rest ->
          let* p = point_of_json (Printf.sprintf "points[%d]" i) item in
          decode (i + 1) (p :: acc) rest
      in
      decode 0 [] items
  | Some _ -> Error "points: expected an array"
  | None ->
    let* p = point_of_json "request" j in
    Ok [| p |]

let performance_of_body body =
  let ( let* ) = Result.bind in
  let* j = Json.of_string body in
  let field name = Json.get_float name j in
  let* kvco = field "kvco" in
  let* ivco = field "ivco" in
  let* jvco = field "jvco" in
  let* fmin = field "fmin" in
  let* fmax = field "fmax" in
  Ok { Repro_spice.Vco_measure.kvco; ivco; jvco; fmin; fmax }

let params_to_json (p : Repro_circuit.Topologies.vco_params) =
  let values = [| p.wn; p.ln; p.wp; p.lp; p.wcn; p.wcp; p.lc |] in
  Json.Obj
    (Array.to_list
       (Array.map2
          (fun name v -> (name, Json.Num v))
          Repro_circuit.Topologies.vco_param_names values))

(* --- responses -------------------------------------------------------- *)

let json_body j = Json.to_string j
let error_body msg = json_body (Json.Obj [ ("error", Json.Str msg) ])
let ok body = (200, [], body)
let bad_request msg = (400, [], error_body msg)
let not_found () = (404, [], error_body "not found")

let method_not_allowed allow =
  (405, [ ("Allow", allow) ], error_body "method not allowed")

let registry_error = function
  | Registry.Unknown_model _ as e -> (404, [], error_body (Registry.error_to_string e))
  | Registry.Invalid_id _ as e -> (404, [], error_body (Registry.error_to_string e))
  | Registry.Load_failure _ as e ->
    (500, [], error_body (Registry.error_to_string e))

(* --- endpoints -------------------------------------------------------- *)

let healthz t =
  let models = List.length (Registry.list t.registry) in
  ok
    (json_body
       (Json.Obj
          [
            ("status", Json.Str "ok");
            ("version", Json.Str t.version);
            ("started_at", Json.Num t.started);
            ("uptime_seconds", Json.Num (Unix.gettimeofday () -. t.started));
            ("models", Json.Num (float_of_int models));
            ( "models_loaded",
              Json.Num (float_of_int (Registry.loaded_count t.registry)) );
          ]))

(* counters/timers straight from the Telemetry snapshot plus quantile
   summaries of every registered histogram — one combined JSON object
   shared by the endpoint and the CLI's local --metrics printer *)
let metrics_json () =
  let entries = Telemetry.snapshot () in
  let counters =
    List.filter_map
      (function
        | k, `Counter v -> Some (k, Json.Num (float_of_int v)) | _ -> None)
      entries
  in
  let timers =
    List.filter_map
      (function k, `Timer v -> Some (k, Json.Num v) | _ -> None)
      entries
  in
  let histogram (name, h) =
    let s = Histogram.stats h in
    ( name,
      Json.Obj
        [
          ("count", Json.Num (float_of_int s.Histogram.count));
          ("sum", Json.Num s.Histogram.sum);
          ("min", Json.Num s.Histogram.min);
          ("max", Json.Num s.Histogram.max);
          ("p50", Json.Num s.Histogram.p50);
          ("p90", Json.Num s.Histogram.p90);
          ("p99", Json.Num s.Histogram.p99);
        ] )
  in
  (* one coherent evaluation-budget object derived from the raw
     counters: how many exact evaluations were requested, and how the
     surrogate pre-screen / eval cache / simulator split them *)
  let evals =
    let counter name =
      match List.assoc_opt name entries with
      | Some (`Counter v) -> v
      | _ -> 0
    in
    let avoided = counter "eval.avoided" in
    let cached = counter "eval.cache_hits" in
    let simulated = counter "eval.runs" in
    let requested = avoided + cached + simulated in
    let num n = Json.Num (float_of_int n) in
    Json.Obj
      [
        ("requested", num requested);
        ("avoided", num avoided);
        ("cached", num cached);
        ("simulated", num simulated);
        ( "avoided_ratio",
          Json.Num
            (if requested > 0 then
               float_of_int avoided /. float_of_int requested
             else 0.0) );
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("timers", Json.Obj timers);
      ("evals", evals);
      ("histograms", Json.Obj (List.map histogram (Histogram.all ())));
    ]

(* minimal query-string accessor over the raw target — the API's only
   query parameters are format selectors, so there is no percent
   decoding here (format values are plain tokens) *)
let query_param (req : Http.request) name =
  match String.index_opt req.Http.target '?' with
  | None -> None
  | Some i ->
    let qs =
      String.sub req.Http.target (i + 1)
        (String.length req.Http.target - i - 1)
    in
    List.find_map
      (fun pair ->
        match String.index_opt pair '=' with
        | Some j when String.sub pair 0 j = name ->
          Some (String.sub pair (j + 1) (String.length pair - j - 1))
        | _ -> None)
      (String.split_on_char '&' qs)

let prom_content_type =
  [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ]

(* JSON is the default; ?format=prom renders the same snapshot surface
   as Prometheus text exposition *)
let metrics req =
  match Option.value ~default:"json" (query_param req "format") with
  | "json" -> ok (json_body (metrics_json ()))
  | "prom" | "prometheus" -> (200, prom_content_type, Repro_prof.Prom.render ())
  | other ->
    bad_request (Printf.sprintf "format: expected json or prom, got %S" other)

let models t =
  let infos = Registry.list t.registry in
  let entry (i : Registry.info) =
    Json.Obj
      [
        ("id", Json.Str i.id);
        ("loaded", Json.Bool i.loaded);
        ( "entries",
          match i.entries with
          | Some n -> Json.Num (float_of_int n)
          | None -> Json.Null );
      ]
  in
  ok (json_body (Json.Obj [ ("models", Json.Arr (List.map entry infos)) ]))

(* --- per-reactor hot-path state --------------------------------------- *)

(* Each reactor domain keeps its own model handles (revalidated against
   the on-disk fingerprint with one lock-free stat per request — the
   shared LRU mutex is only taken on miss/reload) and a reusable
   serialisation buffer, so the hot query route neither contends nor
   allocates scratch per request. *)
type scratch = {
  buf : Buffer.t;
  handles : (string, Perf_table.t * float * int) Hashtbl.t;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { buf = Buffer.create 4096; handles = Hashtbl.create 4 })

let local_table t sc id =
  match Registry.fingerprint t.registry id with
  | Error e ->
    Hashtbl.remove sc.handles id;
    Error e
  | Ok (mtime, size) -> (
    match Hashtbl.find_opt sc.handles id with
    | Some (table, m, s) when m = mtime && s = size -> Ok table
    | _ -> (
      match Registry.get t.registry id with
      | Error e ->
        Hashtbl.remove sc.handles id;
        Error e
      | Ok table ->
        Hashtbl.replace sc.handles id (table, mtime, size);
        Ok table))

(* direct serialisation of the query response into the reactor's
   scratch buffer — byte-for-byte what [Json.to_string] produces for
   the equivalent tree (asserted by test), without building the tree *)
let render_query_response sc ~id results =
  let buf = sc.buf in
  Buffer.clear buf;
  let num x = Buffer.add_string buf (Json.float_repr x) in
  let triple name (nominal, lo, hi) =
    Buffer.add_string buf name;
    Buffer.add_string buf "{\"nominal\":";
    num nominal;
    Buffer.add_string buf ",\"min\":";
    num lo;
    Buffer.add_string buf ",\"max\":";
    num hi;
    Buffer.add_char buf '}'
  in
  (* the id passed the registry's safe-name check: no characters that
     need JSON escaping *)
  Buffer.add_string buf "{\"model\":\"";
  Buffer.add_string buf id;
  Buffer.add_string buf "\",\"count\":";
  num (float_of_int (Array.length results));
  Buffer.add_string buf ",\"results\":[";
  Array.iteri
    (fun i (pe : Perf_table.point_eval) ->
      if i > 0 then Buffer.add_char buf ',';
      triple "{\"kvco\":" pe.q_kvco;
      triple ",\"ivco\":" pe.q_ivco;
      triple ",\"jvco\":" pe.q_jvco;
      Buffer.add_string buf ",\"fmin\":";
      num pe.q_fmin;
      Buffer.add_string buf ",\"fmax\":";
      num pe.q_fmax;
      Buffer.add_char buf '}')
    results;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let query t id body =
  let sc = Domain.DLS.get scratch_key in
  match local_table t sc id with
  | Error e -> registry_error e
  | Ok table -> (
    match points_of_body body with
    | Error msg -> bad_request msg
    | Ok points ->
      let results = Perf_table.eval_points table points in
      Telemetry.incr "serve.queries";
      Telemetry.incr ~by:(Array.length points) "serve.points_queried";
      ok (render_query_response sc ~id results))

(* renderers are pure functions of the table, so the body is
   byte-identical to `hieropt export` over the same model directory *)
let export t (req : Http.request) id =
  let sc = Domain.DLS.get scratch_key in
  match local_table t sc id with
  | Error e -> registry_error e
  | Ok table -> (
    let render f =
      Telemetry.incr "serve.exports";
      ( 200,
        [ ("Content-Type", "text/plain; charset=utf-8") ],
        f table )
    in
    match Option.value ~default:"va" (query_param req "format") with
    | "va" | "verilog-a" -> render Repro_netlist.Export.verilog_a
    | "spice" -> render (fun table -> Repro_netlist.Export.spice table)
    | other ->
      bad_request
        (Printf.sprintf "format: expected va or spice, got %S" other))

let verify t id body =
  let sc = Domain.DLS.get scratch_key in
  match local_table t sc id with
  | Error e -> registry_error e
  | Ok table -> (
    match performance_of_body body with
    | Error msg -> bad_request msg
    | Ok perf ->
      let params = Perf_table.params_of_perf table perf in
      Telemetry.incr "serve.verifies";
      ok
        (json_body
           (Json.Obj [ ("model", Json.Str id); ("params", params_to_json params) ])))

(* /v1/* is the canonical surface; bare unversioned paths remain as
   aliases for one release (tracked by serve.legacy_requests so the
   removal can be data-driven) *)
let split_version (req : Http.request) =
  match req.path with "v1" :: rest -> (rest, true) | p -> (p, false)

(* stable label per route, so latency histograms have a bounded name
   set regardless of what ids/paths clients throw at the server *)
let endpoint_of_path = function
  | [ "healthz" ] -> "healthz"
  | [ "metrics" ] -> "metrics"
  | [ "models" ] -> "models"
  | [ "models"; _; "query" ] -> "query"
  | [ "models"; _; "verify" ] -> "verify"
  | [ "models"; _; "export" ] -> "export"
  | _ -> "other"

let handle t (req : Http.request) =
  Telemetry.incr "serve.requests";
  let path, versioned = split_version req in
  let endpoint = endpoint_of_path path in
  if (not versioned) && endpoint <> "other" then
    Telemetry.incr "serve.legacy_requests";
  let latency = Repro_obs.Histogram.get ("serve.latency." ^ endpoint) in
  Repro_obs.Histogram.time latency @@ fun () ->
  (* propagated trace context (clients send X-Trace-Id/X-Parent-Span
     while tracing): tagging the handler span lets a merged trace nest
     this request under the caller's span *)
  let targs =
    let hdr name key acc =
      match Http.header name req.headers with
      | Some v -> (key, v) :: acc
      | None -> acc
    in
    hdr "x-trace-id" "trace" (hdr "x-parent-span" "parent" [ ("method", req.meth) ])
  in
  Repro_obs.Trace.span ("http." ^ endpoint) ~args:targs
  @@ fun () ->
  match
    match (req.meth, path) with
    | "GET", [ "healthz" ] -> healthz t
    | "GET", [ "metrics" ] -> metrics req
    | "GET", [ "models" ] -> models t
    | "POST", [ "models"; id; "query" ] -> query t id req.body
    | "POST", [ "models"; id; "verify" ] -> verify t id req.body
    | "GET", [ "models"; id; "export" ] -> export t req id
    | _, [ "healthz" ] | _, [ "metrics" ] | _, [ "models" ] ->
      method_not_allowed "GET"
    | _, [ "models"; _; ("query" | "verify") ] -> method_not_allowed "POST"
    | _, [ "models"; _; "export" ] -> method_not_allowed "GET"
    | _ -> not_found ()
  with
  | response -> response
  | exception exn ->
    Telemetry.incr "serve.handler_errors";
    (500, [], error_body (Printexc.to_string exn))
