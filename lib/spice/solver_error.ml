type t =
  | No_convergence of { stage : string; detail : string }
  | Step_underflow of { time : float }

let to_string = function
  | No_convergence { stage; detail } -> Printf.sprintf "%s: %s" stage detail
  | Step_underflow { time } -> Printf.sprintf "step failure at t=%g" time

let pp ppf e = Format.pp_print_string ppf (to_string e)
