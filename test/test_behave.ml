module B = Repro_behave

let checkf tol msg = Alcotest.(check (float tol)) msg

(* ---- loop filter ---- *)

let filter = { B.Loop_filter.c1 = 5e-12; c2 = 0.5e-12; r1 = 4e3 }

let test_filter_validate () =
  B.Loop_filter.validate filter;
  Alcotest.(check bool) "negative C rejected" true
    (try B.Loop_filter.validate { filter with B.Loop_filter.c1 = -1e-12 }; false
     with Invalid_argument _ -> true)

let test_filter_charge_integration () =
  (* constant current into the caps: final slope = i / (C1 + C2) *)
  let dt = 1e-10 and i = 1e-6 in
  let state = ref (B.Loop_filter.initial 0.0) in
  for _ = 1 to 10000 do
    state := B.Loop_filter.step filter !state ~i_in:i ~dt
  done;
  let t = 10000.0 *. dt in
  let expected = i *. t /. (filter.B.Loop_filter.c1 +. filter.B.Loop_filter.c2) in
  (* after initial transient both caps integrate the same current *)
  Alcotest.(check bool) "integrator slope" true
    (Float.abs (!state.B.Loop_filter.vctl -. expected) < 0.05 *. expected)

let test_filter_zero_input_holds () =
  let s0 = B.Loop_filter.initial 0.7 in
  let s = B.Loop_filter.step filter s0 ~i_in:0.0 ~dt:1e-9 in
  checkf 1e-12 "vctl holds" 0.7 s.B.Loop_filter.vctl;
  checkf 1e-12 "vc1 holds" 0.7 s.B.Loop_filter.vc1

let test_filter_ir_step () =
  (* an instantaneous current step initially drops across R1 + C2 path:
     vctl jumps faster than vc1 *)
  let s0 = B.Loop_filter.initial 0.0 in
  let s = B.Loop_filter.step filter s0 ~i_in:100e-6 ~dt:1e-10 in
  Alcotest.(check bool) "vctl leads vc1" true
    (s.B.Loop_filter.vctl > s.B.Loop_filter.vc1)

let test_filter_impedance_limits () =
  (* low frequency: |Z| ~ 1/(w (C1+C2)); high frequency: |Z| ~ 1/(w C2) *)
  let z_mag w = Complex.norm (B.Loop_filter.impedance filter w) in
  let w_lo = 1e3 and w_hi = 1e12 in
  let c_tot = filter.B.Loop_filter.c1 +. filter.B.Loop_filter.c2 in
  Alcotest.(check bool) "low-freq cap behaviour" true
    (Float.abs (z_mag w_lo -. (1.0 /. (w_lo *. c_tot))) /. (1.0 /. (w_lo *. c_tot))
    < 0.01);
  Alcotest.(check bool) "high-freq C2 behaviour" true
    (Float.abs (z_mag w_hi -. (1.0 /. (w_hi *. filter.B.Loop_filter.c2)))
     /. (1.0 /. (w_hi *. filter.B.Loop_filter.c2))
    < 0.05)

let test_pole_zero () =
  let wz, wp3, ct = B.Loop_filter.pole_zero filter in
  checkf 1.0 "zero" (1.0 /. (4e3 *. 5e-12)) wz;
  Alcotest.(check bool) "pole above zero" true (wp3 > wz);
  checkf 1e-15 "total C" 5.5e-12 ct

(* ---- PFD ---- *)

let test_pfd_sequence () =
  let pfd = B.Pfd.create () in
  Alcotest.(check bool) "starts neutral" true (B.Pfd.state pfd = B.Pfd.Neutral);
  B.Pfd.ref_edge pfd;
  Alcotest.(check bool) "ref -> up" true (B.Pfd.state pfd = B.Pfd.Up);
  B.Pfd.ref_edge pfd;
  Alcotest.(check bool) "up saturates" true (B.Pfd.state pfd = B.Pfd.Up);
  B.Pfd.div_edge pfd;
  Alcotest.(check bool) "div resets" true (B.Pfd.state pfd = B.Pfd.Neutral);
  B.Pfd.div_edge pfd;
  Alcotest.(check bool) "div -> down" true (B.Pfd.state pfd = B.Pfd.Down);
  B.Pfd.ref_edge pfd;
  Alcotest.(check bool) "ref resets from down" true
    (B.Pfd.state pfd = B.Pfd.Neutral);
  B.Pfd.div_edge pfd;
  B.Pfd.reset pfd;
  Alcotest.(check bool) "explicit reset" true (B.Pfd.state pfd = B.Pfd.Neutral)

let test_pfd_drive () =
  checkf 0.0 "up" 1.0 (B.Pfd.drive B.Pfd.Up);
  checkf 0.0 "neutral" 0.0 (B.Pfd.drive B.Pfd.Neutral);
  checkf 0.0 "down" (-1.0) (B.Pfd.drive B.Pfd.Down)

(* ---- charge pump ---- *)

let test_cp_ideal () =
  let cp = B.Charge_pump.ideal 100e-6 in
  checkf 1e-12 "up current" 100e-6 (B.Charge_pump.current cp B.Pfd.Up);
  checkf 1e-12 "down current" (-100e-6) (B.Charge_pump.current cp B.Pfd.Down);
  checkf 1e-12 "off" 0.0 (B.Charge_pump.current cp B.Pfd.Neutral)

let test_cp_mismatch () =
  let cp = B.Charge_pump.with_mismatch ~icp:100e-6 ~mismatch:0.1 in
  checkf 1e-12 "up skewed" 105e-6 (B.Charge_pump.current cp B.Pfd.Up);
  checkf 1e-12 "down skewed" (-95e-6) (B.Charge_pump.current cp B.Pfd.Down)

let test_cp_average () =
  let cp = B.Charge_pump.ideal 100e-6 in
  checkf 1e-12 "10% duty" 10e-6 (B.Charge_pump.average_current cp ~duty:0.1);
  Alcotest.(check bool) "bad icp" true
    (try ignore (B.Charge_pump.ideal 0.0); false with Invalid_argument _ -> true)

(* ---- divider ---- *)

let test_divider () =
  let d = B.Divider.create 4 in
  Alcotest.(check int) "modulus" 4 (B.Divider.modulus d);
  let outs = List.init 12 (fun _ -> B.Divider.clock_edge d) in
  let expected =
    [ false; false; false; true; false; false; false; true; false; false;
      false; true ]
  in
  Alcotest.(check (list bool)) "divide by 4" expected outs;
  B.Divider.reset d;
  Alcotest.(check bool) "reset restarts count" true
    (not (B.Divider.clock_edge d));
  Alcotest.(check bool) "bad modulus" true
    (try ignore (B.Divider.create 0); false with Invalid_argument _ -> true)

let test_divider_by_one () =
  let d = B.Divider.create 1 in
  Alcotest.(check bool) "every edge passes" true
    (List.for_all Fun.id (List.init 5 (fun _ -> B.Divider.clock_edge d)))

(* ---- VCO model ---- *)

let vco =
  { B.Vco_model.f0 = 700e6; v0 = 0.6; kvco = 800e6; fmin = 300e6;
    fmax = 1.4e9; jitter = 0.0 }

let test_vco_tuning_law () =
  checkf 1.0 "at v0" 700e6 (B.Vco_model.frequency vco 0.6);
  checkf 1.0 "slope" 780e6 (B.Vco_model.frequency vco 0.7);
  checkf 1.0 "clamp low" 300e6 (B.Vco_model.frequency vco (-5.0));
  checkf 1.0 "clamp high" 1.4e9 (B.Vco_model.frequency vco 5.0)

let test_vco_validate () =
  Alcotest.(check bool) "inverted clamps" true
    (try B.Vco_model.validate { vco with B.Vco_model.fmax = 100e6 }; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative jitter" true
    (try B.Vco_model.validate { vco with B.Vco_model.jitter = -1.0 }; false
     with Invalid_argument _ -> true)

let test_vco_edge_counting () =
  let t = B.Vco_model.create vco in
  (* 700 MHz for 10 ns = 7 cycles *)
  let edges = ref 0 in
  for _ = 1 to 1000 do
    edges := !edges + B.Vco_model.advance t ~vctl:0.6 ~dt:1e-11
  done;
  Alcotest.(check bool) "edge count (float-accumulation boundary)" true
    (!edges = 6 || !edges = 7);
  Alcotest.(check (float 1e-3)) "phase" 7.0 (B.Vco_model.phase t);
  B.Vco_model.reset t;
  checkf 0.0 "reset phase" 0.0 (B.Vco_model.phase t)

let test_vco_jitter_is_random_walk () =
  (* accumulated timing error over n cycles ~ jitter * sqrt n *)
  let jitter = 1e-12 in
  let vco_j = { vco with B.Vco_model.jitter } in
  let n_cycles = 1000 in
  let trials = 64 in
  let prng = Repro_util.Prng.create 5 in
  let errors =
    Array.init trials (fun _ ->
        let t = B.Vco_model.create ~prng:(Repro_util.Prng.split prng) vco_j in
        let dt = 1e-11 in
        let steps = ref 0 in
        while B.Vco_model.phase t < float_of_int n_cycles do
          ignore (B.Vco_model.advance t ~vctl:0.6 ~dt);
          incr steps
        done;
        (* time at which the target phase was crossed, minus ideal *)
        let f = B.Vco_model.frequency vco_j 0.6 in
        let overshoot = (B.Vco_model.phase t -. float_of_int n_cycles) /. f in
        (float_of_int !steps *. dt) -. overshoot
        -. (float_of_int n_cycles /. f))
  in
  let rms = Repro_util.Stats.stddev errors in
  let expected = jitter *. sqrt (float_of_int n_cycles) in
  Alcotest.(check bool)
    (Printf.sprintf "random walk scaling (got %.2e expect %.2e)" rms expected)
    true
    (rms > 0.5 *. expected && rms < 1.6 *. expected)

(* ---- linear analysis ---- *)

let loop = { B.Pll_linear.kvco = 800e6; icp = 100e-6; n_div = 8; filter }

let test_linear_analysis () =
  match B.Pll_linear.analyse loop with
  | None -> Alcotest.fail "expected a unity crossing"
  | Some a ->
    Alcotest.(check bool) "fc plausible" true
      (a.B.Pll_linear.unity_freq > 1e6 && a.B.Pll_linear.unity_freq < 50e6);
    Alcotest.(check bool) "phase margin positive" true
      (a.B.Pll_linear.phase_margin_deg > 10.0);
    Alcotest.(check bool) "stable" true a.B.Pll_linear.stable;
    (* |G| at fc is 1 by definition *)
    let g = B.Pll_linear.open_loop_gain loop a.B.Pll_linear.unity_freq in
    Alcotest.(check (float 1e-3)) "unity gain at fc" 1.0 (Complex.norm g)

let test_linear_gain_slope () =
  (* type-II loop: |G| falls monotonically with frequency *)
  let mags =
    List.map (fun f -> Complex.norm (B.Pll_linear.open_loop_gain loop f))
      [ 1e4; 1e5; 1e6; 1e7; 1e8 ]
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone rolloff" true (decreasing mags)

let test_linear_higher_icp_wider_bw () =
  let bw icp =
    match B.Pll_linear.analyse { loop with B.Pll_linear.icp } with
    | Some a -> a.B.Pll_linear.unity_freq
    | None -> 0.0
  in
  Alcotest.(check bool) "bandwidth grows with pump current" true
    (bw 200e-6 > bw 50e-6)

let test_settling_estimate () =
  match B.Pll_linear.settling_estimate loop ~tolerance:0.01 with
  | Some t -> Alcotest.(check bool) "sub-microsecond" true (t > 0.0 && t < 2e-6)
  | None -> Alcotest.fail "expected settling estimate"

(* ---- PLL ---- *)

let cfg =
  { B.Pll.fref = 100e6; n_div = 8; cp = B.Charge_pump.ideal 100e-6; filter;
    vco; ivco = 5e-3; overhead_current = 8e-3; vctl_init = 0.2 }

let test_pll_locks () =
  let sim = B.Pll.simulate cfg (B.Pll.default_sim_options cfg) in
  Alcotest.(check bool) "locked" true sim.B.Pll.locked;
  Alcotest.(check (float 2.0)) "final frequency within ripple" 800.0
    (sim.B.Pll.final_freq /. 1e6);
  Alcotest.(check bool) "lock time plausible" true
    (match sim.B.Pll.lock_time with
     | Some t -> t > 10e-9 && t < 1.5e-6
     | None -> false)

let test_pll_lock_from_above () =
  (* starting fast: the loop must pull the frequency down *)
  let sim =
    B.Pll.simulate { cfg with B.Pll.vctl_init = 1.4 }
      (B.Pll.default_sim_options cfg)
  in
  Alcotest.(check bool) "locked from above" true sim.B.Pll.locked

let test_pll_evaluate () =
  match B.Pll.evaluate cfg with
  | Error e -> Alcotest.failf "evaluate failed: %s" e
  | Ok p ->
    Alcotest.(check bool) "lock time" true (p.B.Pll.lock_time < 1e-6);
    Alcotest.(check bool) "jitter in ps range" true
      (p.B.Pll.jitter_sum >= 0.0 && p.B.Pll.jitter_sum < 50e-12);
    (* ivco + overhead + cp contribution *)
    Alcotest.(check bool) "current near budget" true
      (p.B.Pll.current >= 13e-3 && p.B.Pll.current < 14e-3)

let test_pll_jitter_sum_scales_with_jvco () =
  let eval jitter =
    match B.Pll.evaluate { cfg with B.Pll.vco = { vco with B.Vco_model.jitter } } with
    | Ok p -> p.B.Pll.jitter_sum
    | Error e -> Alcotest.failf "eval: %s" e
  in
  let j1 = eval 0.1e-12 and j2 = eval 0.2e-12 in
  Alcotest.(check (float 1e-14)) "jitter sum linear in jvco" (2.0 *. j1) j2

let test_pll_unstable_rejected () =
  (* tiny R1 kills the stabilising zero -> unstable -> evaluate fails *)
  let bad = { cfg with B.Pll.filter = { filter with B.Loop_filter.r1 = 10.0 } } in
  match B.Pll.evaluate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unstable loop accepted"

let test_pll_out_of_band_rejected () =
  (* target outside the VCO clamps: cannot lock *)
  let bad =
    { cfg with
      B.Pll.vco = { vco with B.Vco_model.fmin = 100e6; fmax = 500e6; f0 = 300e6 } }
  in
  match B.Pll.evaluate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "locked outside the VCO band"

let test_pll_trace_recorded () =
  let sim = B.Pll.simulate cfg (B.Pll.default_sim_options cfg) in
  Alcotest.(check bool) "traces non-empty" true
    (Array.length sim.B.Pll.vctl_trace > 100
    && Array.length sim.B.Pll.freq_trace > 100);
  (* times increase *)
  let ts = Array.map fst sim.B.Pll.vctl_trace in
  let ok = ref true in
  for i = 0 to Array.length ts - 2 do
    if ts.(i + 1) <= ts.(i) then ok := false
  done;
  Alcotest.(check bool) "trace times increase" true !ok

let test_pll_deterministic_without_prng () =
  let s1 = B.Pll.simulate cfg (B.Pll.default_sim_options cfg) in
  let s2 = B.Pll.simulate cfg (B.Pll.default_sim_options cfg) in
  Alcotest.(check bool) "identical runs" true
    (s1.B.Pll.final_vctl = s2.B.Pll.final_vctl
    && s1.B.Pll.lock_time = s2.B.Pll.lock_time)

let test_measured_jitter_accumulation () =
  let prng = Repro_util.Prng.create 3 in
  let jcfg =
    { cfg with B.Pll.vco = { vco with B.Vco_model.jitter = 0.15e-12 } }
  in
  let j = B.Pll.measured_output_jitter ~prng jcfg ~cycles:400 in
  let expected = 0.15e-12 *. sqrt 400.0 in
  Alcotest.(check bool)
    (Printf.sprintf "accumulation ~ j sqrt(n): %.2e vs %.2e" j expected)
    true
    (j > 0.6 *. expected && j < 1.5 *. expected)

let suite =
  [
    Alcotest.test_case "filter validate" `Quick test_filter_validate;
    Alcotest.test_case "filter integrates charge" `Quick test_filter_charge_integration;
    Alcotest.test_case "filter holds at zero input" `Quick test_filter_zero_input_holds;
    Alcotest.test_case "filter IR step" `Quick test_filter_ir_step;
    Alcotest.test_case "filter impedance limits" `Quick test_filter_impedance_limits;
    Alcotest.test_case "filter pole/zero" `Quick test_pole_zero;
    Alcotest.test_case "pfd state machine" `Quick test_pfd_sequence;
    Alcotest.test_case "pfd drive" `Quick test_pfd_drive;
    Alcotest.test_case "charge pump ideal" `Quick test_cp_ideal;
    Alcotest.test_case "charge pump mismatch" `Quick test_cp_mismatch;
    Alcotest.test_case "charge pump average" `Quick test_cp_average;
    Alcotest.test_case "divider" `Quick test_divider;
    Alcotest.test_case "divider by one" `Quick test_divider_by_one;
    Alcotest.test_case "vco tuning law" `Quick test_vco_tuning_law;
    Alcotest.test_case "vco validation" `Quick test_vco_validate;
    Alcotest.test_case "vco edge counting" `Quick test_vco_edge_counting;
    Alcotest.test_case "vco jitter random walk" `Quick test_vco_jitter_is_random_walk;
    Alcotest.test_case "linear analysis" `Quick test_linear_analysis;
    Alcotest.test_case "linear gain slope" `Quick test_linear_gain_slope;
    Alcotest.test_case "bandwidth vs icp" `Quick test_linear_higher_icp_wider_bw;
    Alcotest.test_case "settling estimate" `Quick test_settling_estimate;
    Alcotest.test_case "pll locks" `Quick test_pll_locks;
    Alcotest.test_case "pll locks from above" `Quick test_pll_lock_from_above;
    Alcotest.test_case "pll evaluate" `Quick test_pll_evaluate;
    Alcotest.test_case "jitter sum scaling" `Quick test_pll_jitter_sum_scales_with_jvco;
    Alcotest.test_case "unstable rejected" `Quick test_pll_unstable_rejected;
    Alcotest.test_case "out-of-band rejected" `Quick test_pll_out_of_band_rejected;
    Alcotest.test_case "traces recorded" `Quick test_pll_trace_recorded;
    Alcotest.test_case "deterministic runs" `Quick test_pll_deterministic_without_prng;
    Alcotest.test_case "jitter accumulation" `Quick test_measured_jitter_accumulation;
  ]
