(** Fixed-size worker pool over OCaml 5 domains.

    A pool of size [s] spawns [s - 1] worker domains blocked on a
    mutex/condition task queue; the calling domain itself participates
    in every parallel region, so size 1 means "fully serial, no domains
    spawned".  The pool is the execution substrate for {!Parmap}; both
    are engineered so results are {e bit-identical for any worker
    count} (see [Parmap] for the PRNG pre-splitting discipline). *)

type t

val create : ?size:int -> unit -> t
(** [create ()] sizes the pool from {!Config.jobs} (i.e. [-j] /
    [HIEROPT_JOBS] / the machine's core count).  [size] values < 1 are
    clamped to 1. *)

val size : t -> int
(** Worker count (including the calling domain). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task for the worker domains.  Exceptions escaping the task
    are swallowed (wrap your own error channel).
    @raise Invalid_argument after {!shutdown}. *)

val run_items : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [run_items t n body] runs [body i] for every [i] in [0..n-1] across
    the pool, chunked, returning when all items completed.  [body] must
    not raise and must only write per-index state.  Runs inline and
    serially when the pool has one worker or when called from inside a
    pool task (nested parallelism falls back to serial rather than
    deadlocking).

    [chunk] overrides the dispatch granularity (default
    [n / (workers * 8)], clamped to at least 1).  Chunking never affects
    results — slots are written by index — only how much work a domain
    claims per trip to the shared counter; coarse chunks amortise
    per-item dispatch and keep per-domain scratch state (e.g. solver
    workspaces) hot across consecutive items. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** Scoped create/shutdown. *)

val get_default : unit -> t
(** The process-wide shared pool, created lazily at first use from
    {!Config.jobs} and shut down via [at_exit].  Recreated if it was
    explicitly shut down. *)

val inside_worker : unit -> bool
(** [true] when executing inside a pool task (used to serialise nested
    parallel regions). *)
