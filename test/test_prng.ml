module Prng = Repro_util.Prng

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Prng.bits64 a);
  (* now streams diverge in position *)
  check "copies advance independently" true (Prng.bits64 a <> xb)

let test_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  check "split differs from parent continuation" true
    (Prng.bits64 child <> Prng.bits64 a)

let test_split_n_matches_sequential_splits () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let children = Prng.split_n a 5 in
  for i = 0 to 4 do
    let expect = Prng.split b in
    Alcotest.(check int64)
      (Printf.sprintf "child %d identical" i)
      (Prng.bits64 expect)
      (Prng.bits64 children.(i))
  done;
  (* parent streams advanced identically *)
  Alcotest.(check int64) "parent continuation identical" (Prng.bits64 b)
    (Prng.bits64 a);
  check "split_n 0 allowed" true (Prng.split_n a 0 = [||]);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Prng.split_n: negative count") (fun () ->
      ignore (Prng.split_n a (-1)))

let test_split_streams_uncorrelated () =
  (* crude independence check: mean of pairwise-product of uniforms from
     sibling streams should be near E[u]E[v] = 0.25 *)
  let parent = Prng.create 123 in
  let streams = Prng.split_n parent 2 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. (Prng.uniform streams.(0) *. Prng.uniform streams.(1))
  done;
  check "sibling streams uncorrelated" true
    (Float.abs ((!acc /. float_of_int n) -. 0.25) < 0.01)

let test_jump () =
  let a = Prng.create 7 and b = Prng.create 7 in
  Prng.jump a;
  (* deterministic: jumping two equal states lands on equal states *)
  Prng.jump b;
  Alcotest.(check int64) "jump deterministic" (Prng.bits64 a) (Prng.bits64 b);
  (* a jumped stream differs from the un-jumped continuation *)
  let c = Prng.create 7 in
  let d = Prng.copy c in
  Prng.jump d;
  check "jump moves the stream" true (Prng.bits64 c <> Prng.bits64 d)

let test_uniform_range () =
  let t = Prng.create 3 in
  for _ = 1 to 10_000 do
    let u = Prng.uniform t in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform outside [0,1)"
  done

let test_uniform_mean () =
  let t = Prng.create 11 in
  let xs = Array.init 50_000 (fun _ -> Prng.uniform t) in
  let m = Repro_util.Stats.mean xs in
  check "uniform mean near 0.5" true (Float.abs (m -. 0.5) < 0.01)

let test_range () =
  let t = Prng.create 13 in
  for _ = 1 to 1000 do
    let x = Prng.range t (-2.0) 3.0 in
    if x < -2.0 || x >= 3.0 then Alcotest.fail "range outside bounds"
  done

let test_int_bounds () =
  let t = Prng.create 17 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let k = Prng.int t 7 in
    if k < 0 || k >= 7 then Alcotest.fail "int outside bounds";
    seen.(k) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let t = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_normal_moments () =
  let t = Prng.create 23 in
  let xs = Array.init 50_000 (fun _ -> Prng.normal t) in
  let m = Repro_util.Stats.mean xs in
  let s = Repro_util.Stats.stddev xs in
  check "normal mean ~0" true (Float.abs m < 0.02);
  check "normal std ~1" true (Float.abs (s -. 1.0) < 0.02)

let test_gaussian_scaling () =
  let t = Prng.create 29 in
  let xs =
    Array.init 20_000 (fun _ -> Prng.gaussian t ~mean:5.0 ~sigma:0.5)
  in
  check "gaussian mean" true (Float.abs (Repro_util.Stats.mean xs -. 5.0) < 0.02);
  check "gaussian sigma" true
    (Float.abs (Repro_util.Stats.stddev xs -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let t = Prng.create 31 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 50 Fun.id) sorted

let test_pick () =
  let t = Prng.create 37 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let x = Prng.pick t a in
    check "pick member" true (Array.mem x a)
  done;
  checkf "singleton pick" 9.0 (Prng.pick t [| 9.0 |])

let test_pick_empty () =
  let t = Prng.create 1 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick t ([||] : int array)))

let test_bool_balance () =
  let t = Prng.create 41 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool t then incr trues
  done;
  check "bool roughly fair" true (abs (!trues - 5000) < 300)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split_n pre-splitting" `Quick
      test_split_n_matches_sequential_splits;
    Alcotest.test_case "split-stream independence" `Quick
      test_split_streams_uncorrelated;
    Alcotest.test_case "jump" `Quick test_jump;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "range bounds" `Quick test_range;
    Alcotest.test_case "int bounds and coverage" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "gaussian scaling" `Quick test_gaussian_scaling;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
  ]
