(** Elaboration: typed {!Ast.deck} to flat {!Repro_circuit.Netlist.t}.

    Parameters resolve in dependency order (a [.param] may reference
    parameters defined later in the file); cycles are reported at the
    offending definition.  [.subckt] instantiation supports arbitrary
    definition nesting with lexical scoping, per-instance [key=value]
    overrides evaluated in the caller's scope, and the classic
    flattening convention: element names gain an ["Xinst."] prefix,
    ports map to the outer connections, internal nodes gain the same
    prefix, and ground (["0"]/["gnd"]) stays global.

    A deck whose [.param] cards use [{range lo hi}] templates is an
    {e optimisable} deck: {!template} exposes the ranged parameters, in
    declaration order, as an optimisation vector with bounds.

    All errors are {!Loc.Netlist_error}s pointing at the offending
    token. *)

type template = {
  param_names : string array;  (** ranged parameters, declaration order *)
  bounds : (float * float) array;  (** evaluated [{range lo hi}] pairs *)
  default : float array;  (** range midpoints *)
  instantiate : float array -> Repro_circuit.Netlist.t;
      (** elaborate with the ranged parameters bound to the vector
          (declaration order); raises [Invalid_argument] on a length
          mismatch and {!Loc.Netlist_error} on elaboration failures *)
  fingerprint : string;
      (** hex digest over parameter names, bounds and the elaborated
          midpoint netlist — a stable identity for cache salting *)
}

val flatten : ?file:string -> Ast.deck -> Repro_circuit.Netlist.t
(** Elaborate a fully-specified deck (no [{range}] templates —
    those are an error here; use {!template}). *)

val template : ?file:string -> Ast.deck -> template
(** Elaborate an optimisable deck; errors when no parameter has a
    [{range lo hi}] or when a range is empty ([lo >= hi]).  Range
    bounds may reference plain parameters but not ranged ones. *)

val subckt_netlist : ?file:string -> Ast.deck -> string -> Repro_circuit.Netlist.t
(** Elaborate one top-level [.subckt] (case-insensitive name) standalone:
    ports are interned first in declaration order and element/node names
    keep their unprefixed spelling.  This is how a SPICE-subcircuit
    export round-trips back into the netlist it was emitted from. *)

val same_netlist : Repro_circuit.Netlist.t -> Repro_circuit.Netlist.t -> bool
(** Structural equivalence: same elements in the same order, connected
    to the same node {e names} (case-insensitive, ground aliases
    collapsed), with exactly equal values.  Interning order is ignored,
    so a builder-made netlist and its re-parsed export compare equal. *)

val netlist_of_string : ?file:string -> string -> Repro_circuit.Netlist.t
(** [flatten] of [Parse.deck]. *)

val netlist_of_file : string -> Repro_circuit.Netlist.t

val template_of_file : string -> template
