(** The optimiser portfolio: one first-class module signature over the
    [init]/[step]/[save_state]/[restore_state] contract that every
    multi-objective optimiser in this library follows, plus a name
    registry so callers (Hierarchy, the CLI's [--optimiser] flag, the
    benches) can pick an algorithm at run time.

    All members are real-coded over {!Problem.t}, batch-evaluate
    through the injected {!Problem.evaluator} (so domain-pool /
    distributed / cached parallelism applies unchanged), and serialise
    their full generation-loop state into snapshots for bit-identical
    checkpoint-resume. *)

type options = {
  population : int;
  generations : int;
}
(** The portfolio-level knobs — what {!Hierarchy}'s scales control.
    Algorithm-specific parameters stay at each module's library
    defaults; use the concrete modules ({!Nsga2}, {!De}, ...) directly
    for full control. *)

module type S = sig
  val name : string

  type state

  val init :
    options:options ->
    evaluator:Problem.evaluator ->
    Problem.t ->
    Repro_util.Prng.t ->
    state

  val step : evaluator:Problem.evaluator -> Problem.t -> state -> unit
  val generation : state -> int

  val population : state -> Nsga2.individual array
  (** The reporting population (archive-based algorithms return their
      archive view); feed to {!Nsga2.pareto_front} for the front. *)

  val save_state : state -> Repro_engine.Snapshot.t -> key:string -> unit

  val restore_state :
    options:options ->
    Problem.t ->
    Repro_engine.Snapshot.t ->
    key:string ->
    state option

  val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
end

type t = (module S)

val all : (string * t) list
(** [("nsga2", ...); ("spea2", ...); ("de", ...); ("mopso", ...)]. *)

val names : string list
val of_name : string -> t option
val name : t -> string

val optimise :
  t ->
  options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> Nsga2.individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Generic [init] + [generations] × [step] driver over any portfolio
    member, mirroring each algorithm's own [optimise]. *)
