(** Descriptive statistics and yield estimation over float samples. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton samples.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val relative_spread : float array -> float
(** [relative_spread xs] is [stddev xs /. |mean xs|] — the fractional
    spread used for the paper's Table-1 "∆" columns.  Returns 0 when the
    mean is 0. *)

val min_max : float array -> float * float
(** Smallest and largest sample. @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between
    order statistics.  Does not mutate [xs]. *)

val median : float array -> float

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] returns [(bin_centre, count)] pairs covering the
    sample range. *)

type yield_estimate = {
  pass : int;
  total : int;
  fraction : float;  (** pass / total *)
  ci_low : float;    (** 95% Wilson-score lower bound *)
  ci_high : float;   (** 95% Wilson-score upper bound *)
}

val yield : pass:int -> total:int -> yield_estimate
(** Yield fraction with a 95% Wilson confidence interval, as used by the
    Monte-Carlo verification step. @raise Invalid_argument if [total <= 0]
    or [pass] outside [0, total]. *)

val pp_yield : Format.formatter -> yield_estimate -> unit
