(* Counters are sharded per domain: each domain owns a private shard
   (its own mutex + tables, allocated by that domain so shards land on
   distinct cache lines) and the hot [incr]/[add_time] path locks only
   the uncontended domain-local mutex.  Readers ([counter], [snapshot],
   …) lock every shard — in registration order, so concurrent readers
   cannot deadlock — and merge by summing, which keeps snapshots
   consistent point-in-time views while writers keep reporting. *)

type shard = {
  mutex : Mutex.t;
  counters : (string, int) Hashtbl.t;
  timers : (string, float) Hashtbl.t;
}

let shards_mutex = Mutex.create ()

(* newest-first; [all_shards] reverses so multi-shard lock order is the
   stable registration order *)
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          mutex = Mutex.create ();
          counters = Hashtbl.create 32;
          timers = Hashtbl.create 16;
        }
      in
      Mutex.lock shards_mutex;
      shards := s :: !shards;
      Mutex.unlock shards_mutex;
      s)

let all_shards () =
  Mutex.lock shards_mutex;
  let all = List.rev !shards in
  Mutex.unlock shards_mutex;
  all

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

(* lock ALL shards, run [f] over the list, unlock in reverse.  Lock
   acquisition follows registration order everywhere, so two concurrent
   multi-shard readers never deadlock. *)
let locked_all f =
  let all = all_shards () in
  List.iter (fun s -> Mutex.lock s.mutex) all;
  Fun.protect
    ~finally:(fun () -> List.iter (fun s -> Mutex.unlock s.mutex) (List.rev all))
    (fun () -> f all)

let incr ?(by = 1) name =
  let s = Domain.DLS.get shard_key in
  locked s (fun () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt s.counters name) in
      Hashtbl.replace s.counters name (cur + by))

(* [set] is absolute, not additive: clear the key in every shard and
   store the value in exactly one, under all locks so a concurrent
   snapshot never sees the key double-counted or missing *)
let set name v =
  let own = Domain.DLS.get shard_key in
  locked_all (fun all ->
      List.iter (fun s -> Hashtbl.remove s.counters name) all;
      Hashtbl.replace own.counters name v)

let counter name =
  locked_all (fun all ->
      List.fold_left
        (fun acc s ->
          acc + Option.value ~default:0 (Hashtbl.find_opt s.counters name))
        0 all)

let add_time name seconds =
  let s = Domain.DLS.get shard_key in
  locked s (fun () ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt s.timers name) in
      Hashtbl.replace s.timers name (cur +. seconds))

let timer name =
  locked_all (fun all ->
      List.fold_left
        (fun acc s ->
          acc +. Option.value ~default:0.0 (Hashtbl.find_opt s.timers name))
        0.0 all)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0))
    f

let reset () =
  locked_all
    (List.iter (fun s ->
         Hashtbl.reset s.counters;
         Hashtbl.reset s.timers))

(* separate from the shard mutexes so stderr I/O never blocks counter
   updates from other domains *)
let warn_mutex = Mutex.create ()

let warn ~key fmt =
  Printf.ksprintf
    (fun msg ->
      incr key;
      Repro_obs.Journal.record_warning ~key msg;
      (* the whole line is formatted first and written with a single
         [output_string] under a mutex, so warnings racing in from
         several domains never interleave mid-line *)
      let line = Printf.sprintf "WARNING [%s]: %s\n" key msg in
      Mutex.lock warn_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock warn_mutex)
        (fun () ->
          output_string stderr line;
          flush stderr))
    fmt

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* every shard locked for the duration of the merge, so the snapshot is
   a consistent point-in-time view: sums never catch an update in one
   shard but not another *)
let split_snapshot () =
  locked_all (fun all ->
      let counters = Hashtbl.create 32 and timers = Hashtbl.create 16 in
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace counters k
                (v + Option.value ~default:0 (Hashtbl.find_opt counters k)))
            s.counters;
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace timers k
                (v +. Option.value ~default:0.0 (Hashtbl.find_opt timers k)))
            s.timers)
        all;
      (sorted counters, sorted timers))

let snapshot () =
  let counters, timers = split_snapshot () in
  List.merge
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (k, v) -> (k, `Counter v)) counters)
    (List.map (fun (k, v) -> (k, `Timer v)) timers)

(* shortest float rendering that parses back to the exact value, so a
   /metrics consumer can reconstruct timers bit-for-bit *)
let json_float x =
  if not (Float.is_finite x) then "null"
  else
    let exact fmt =
      let s = Printf.sprintf fmt x in
      if float_of_string s = x then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> (
      match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" x)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_string () =
  let counters, timers = split_snapshot () in
  let buf = Buffer.create 256 in
  let fields render entries =
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.ksprintf (Buffer.add_string buf) "\"%s\":%s" (json_escape k)
          (render v))
      entries
  in
  Buffer.add_string buf "{\"counters\":{";
  fields string_of_int counters;
  Buffer.add_string buf "},\"timers\":{";
  fields json_float timers;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let line () =
  let counters, timers = split_snapshot () in
  let parts =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%.2fs" k v) timers
  in
  match parts with
  | [] -> "telemetry: (empty)"
  | _ -> "telemetry: " ^ String.concat " " parts

let report () =
  let counters, timers = split_snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "telemetry report\n";
  if counters = [] && timers = [] then Buffer.add_string buf "  (empty)\n"
  else begin
    List.iter
      (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) "  %-32s %12d\n" k v)
      counters;
    List.iter
      (fun (k, v) ->
        Printf.ksprintf (Buffer.add_string buf) "  %-32s %10.3f s\n" k v)
      timers
  end;
  Buffer.contents buf
