(** Transistor-level characterisation of the ring VCO — the testbench of
    the paper's §4.1.  For a candidate sizing it measures the five
    performance functions the optimisation targets:

    - [fmin], [fmax]: oscillation frequency at the control-voltage range
      ends (transient analysis + crossing detection); when the bottom of
      the range is slower than the transient window resolves, fmin is
      reported as the measurement floor (which can only help the
      band-coverage spec);
    - [kvco]: (f(vctl_hi) - f(vmid)) / (vctl_hi - vmid), Hz/V — the gain
      about the upper half of the band, where the common-mode process
      shift cancels in the difference;
    - [ivco]: average supply current at mid control voltage, A;
    - [jvco]: RMS period jitter at mid control voltage, s.

    Jitter substitutes SpectreRF's phase-noise analysis with a first-order
    estimator (DESIGN.md §2): a thermal term — noise voltage
    √(ξ·kT/C_node) referred through the measured crossing slew rate,
    accumulated over 2·N stage delays per period — plus a flicker term
    proportional to the period and the rise/fall asymmetry (Hajimiri's
    ISF result) scaled by a die-dependent 1/f-noise-magnitude factor
    derived from the sampled threshold corner, which is what makes
    jitter spread strongly die-to-die (Table 1's ∆Jvco). *)

type performance = {
  kvco : float;  (** Hz/V *)
  ivco : float;  (** A *)
  jvco : float;  (** s, RMS period jitter *)
  fmin : float;  (** Hz *)
  fmax : float;  (** Hz *)
}

val pp_performance : Format.formatter -> performance -> unit

type options = {
  vdd : float;
  vctl_lo : float;
  vctl_hi : float;
  stages : int;
  t_stop : float;        (** initial transient length *)
  dt : float;            (** initial step *)
  max_extensions : int;  (** times the window is stretched x4 for slow designs *)
  min_cycles : int;      (** rising crossings required in the window *)
  thermal_xi : float;    (** excess noise factor ξ *)
  flicker_coeff : float; (** flicker jitter per unit (period * asymmetry) *)
}

val default_options : options
(** vdd 1.2 V, vctl 0.5–1.2 V, 5 stages, 12 ns @ 5 ps growing up to x4,
    ξ = 4, flicker coefficient 1.2e-3. *)

type failure =
  | No_oscillation       (** amplitude never developed *)
  | Too_slow             (** not enough cycles even after all extensions *)
  | Analysis_error of string  (** DC/transient non-convergence *)

val failure_to_string : failure -> string

val characterise :
  ?options:options ->
  Repro_circuit.Topologies.vco_params ->
  (performance, failure) result
(** Build the nominal ring VCO at this sizing and measure it. *)

val characterise_netlist :
  ?options:options ->
  Repro_circuit.Netlist.t ->
  (performance, failure) result
(** Measure an existing ring-VCO netlist (e.g. a process-perturbed copy
    from {!Repro_circuit.Process.sample}).  The netlist must contain the
    sources ["Vdd"]/["Vctl"] and stage outputs ["s1"..]; the control
    value is swept by rewriting the ["Vctl"] source. *)

val set_vctl : Repro_circuit.Netlist.t -> float -> Repro_circuit.Netlist.t
(** Copy of the netlist with the ["Vctl"] source set to a DC value. *)
