(** Space-filling sampling plans.

    Latin-hypercube sampling gives much lower estimator variance than
    plain Monte-Carlo at the same sample count — offered as an
    alternative design-of-experiments front end for variation modelling
    and optimiser-population initialisation. *)

val latin_hypercube : Prng.t -> dims:int -> samples:int -> float array array
(** [latin_hypercube prng ~dims ~samples] returns [samples] points in
    the unit hypercube; each dimension is stratified into [samples]
    equal bins, each hit exactly once (jittered within its bin).
    @raise Invalid_argument on non-positive sizes. *)

val scale_to_box :
  (float * float) array -> float array array -> float array array
(** Map unit-cube points into a bounds box (one (lo, hi) per dimension).
    @raise Invalid_argument on dimension mismatch. *)

val gaussian_lhs :
  Prng.t -> dims:int -> samples:int -> float array array
(** Latin-hypercube points pushed through the standard-normal inverse
    CDF — stratified N(0,1) draws for Monte-Carlo process sampling. *)

val normal_inverse_cdf : float -> float
(** Acklam's rational approximation of the standard-normal quantile
    (|error| < 1.2e-9). @raise Invalid_argument outside (0, 1). *)
