module B = Repro_behave
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies
module Prng = Repro_util.Prng

type outcome = {
  pass : bool;
  lock_time : float option;
  current : float;
  detail : string;
}

let check_sample cfg ~kvco ~ivco ~c1 ~c2 ~r1 =
  let spec = cfg.Pll_problem.spec in
  let pll_cfg, _, _, _ =
    Pll_problem.variant_config cfg ~kvco ~ivco ~c1 ~c2 ~r1
  in
  match B.Pll.evaluate pll_cfg with
  | Error e -> { pass = false; lock_time = None; current = 0.0; detail = e }
  | Ok perf ->
    let lock_ok = perf.B.Pll.lock_time <= spec.Spec.lock_time_max in
    let curr_ok = perf.B.Pll.current <= spec.Spec.current_max in
    {
      pass = lock_ok && curr_ok;
      lock_time = Some perf.B.Pll.lock_time;
      current = perf.B.Pll.current;
      detail =
        (if lock_ok && curr_ok then "pass"
         else if not lock_ok then "lock time over budget"
         else "current over budget");
    }

let count_passes outcomes =
  Array.fold_left (fun acc pass -> if pass then acc + 1 else acc) 0 outcomes

(* checkpoint row codec for pass/fail outcomes *)
let encode_pass pass = if pass then [| 1.0 |] else [| 0.0 |]

let decode_pass row =
  if Array.length row = 1 && (row.(0) = 1.0 || row.(0) = 0.0) then row.(0) = 1.0
  else failwith "Yield: malformed checkpoint row"

let behavioural ?(n = 500) ?pool ?checkpoint ~prng cfg
    (row : Pll_problem.table2_row) =
  let module E = Repro_engine in
  let m = cfg.Pll_problem.model in
  let dk = Perf_table.kvco_delta m row.Pll_problem.kv in
  let di = Perf_table.ivco_delta m row.Pll_problem.iv in
  (* the (Kvco, Ivco) perturbations are drawn serially, in the same
     order as the historical loop; only the pure PLL re-evaluations run
     on the pool, so the estimate is worker-count independent *)
  let draws = Array.make n (0.0, 0.0) in
  for i = 0 to n - 1 do
    let kvco =
      Prng.gaussian prng ~mean:row.Pll_problem.kv
        ~sigma:(dk *. row.Pll_problem.kv)
    in
    let ivco =
      Prng.gaussian prng ~mean:row.Pll_problem.iv
        ~sigma:(di *. row.Pll_problem.iv)
    in
    draws.(i) <- (kvco, ivco)
  done;
  let eval (kvco, ivco) =
    (check_sample cfg ~kvco ~ivco ~c1:row.Pll_problem.c1 ~c2:row.Pll_problem.c2
       ~r1:row.Pll_problem.r1)
      .pass
  in
  let outcomes =
    E.Telemetry.time "yield.wall" @@ fun () ->
    match checkpoint with
    | None -> E.Parmap.map ?pool eval draws
    | Some (ck, key) ->
      (* perturbations are all drawn above regardless, so the restored
         prefix leaves the remaining draws bit-identical *)
      E.Checkpoint.resumable_map ?pool ck ~key ~encode:encode_pass
        ~decode:decode_pass eval draws
  in
  E.Telemetry.incr "yield.samples" ~by:n;
  Repro_util.Stats.yield ~pass:(count_passes outcomes) ~total:n

let transistor ?(n = 20) ?pool ?(process = Repro_circuit.Process.default)
    ?(measure = V.default_options) ~prng cfg ~sizing
    ~(row : Pll_problem.table2_row) =
  let module E = Repro_engine in
  let net =
    T.ring_vco ~stages:measure.V.stages ~vdd:measure.V.vdd
      ~vctl:measure.V.vctl_lo sizing
  in
  let outcomes =
    E.Telemetry.time "yield.wall" @@ fun () ->
    E.Parmap.map_seeded ?pool ~prng
      (fun stream () ->
        let perturbed = Repro_circuit.Process.sample process stream net in
        match V.characterise_netlist ~options:measure perturbed with
        | Error _ -> false (* dead oscillator: counted as a fail *)
        | Ok perf ->
          (check_sample cfg ~kvco:perf.V.kvco ~ivco:perf.V.ivco
             ~c1:row.Pll_problem.c1 ~c2:row.Pll_problem.c2
             ~r1:row.Pll_problem.r1)
            .pass)
      (Array.make n ())
  in
  E.Telemetry.incr "yield.samples" ~by:n;
  Repro_util.Stats.yield ~pass:(count_passes outcomes) ~total:n
