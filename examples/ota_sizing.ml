(* Beyond the paper: the same NSGA-II + simulator machinery sizing a
   two-stage Miller OTA — evidence that the hierarchical methodology is
   not tied to the ring-VCO test case.

   Objectives: maximise DC gain and gain-bandwidth, minimise power;
   constraint: phase margin >= 55 degrees.

   Run with: dune exec examples/ota_sizing.exe *)

module T = Repro_circuit.Topologies
module O = Repro_spice.Ota_measure
module M = Repro_moo

let pm_min = 55.0

let problem =
  M.Problem.create ~name:"ota-sizing" ~bounds:T.ota_bounds
    ~objective_names:[| "neg_gain_db"; "neg_gbw"; "power" |]
    (fun x ->
      match O.characterise (T.ota_params_of_vector x) with
      | Ok p ->
        {
          M.Problem.objectives =
            [| -.p.O.dc_gain_db; -.p.O.gbw; p.O.power |];
          constraint_violation =
            Float.max 0.0 ((pm_min -. p.O.phase_margin_deg) /. pm_min);
        }
      | Error _ ->
        {
          M.Problem.objectives = Array.make 3 infinity;
          constraint_violation = 10.0;
        })

let () =
  Format.printf "baseline sizing:@.";
  (match O.characterise T.ota_default with
  | Ok p -> Format.printf "  %a@." O.pp_performance p
  | Error f -> Format.printf "  %s@." (O.failure_to_string f));
  let pop, gens =
    match Sys.getenv_opt "HIEROPT_FULL" with
    | Some v when v <> "" && v <> "0" -> (60, 30)
    | Some _ | None -> (24, 10)
  in
  Format.printf "@.NSGA-II %dx%d over (w_diff, w_load, w_p2, l, cc, ibias), PM >= %.0f deg@."
    pop gens pm_min;
  let prng = Repro_util.Prng.create 31 in
  let population =
    M.Nsga2.optimise
      ~options:{ M.Nsga2.default_options with population = pop; generations = gens }
      problem prng
  in
  let front = M.Nsga2.pareto_front population in
  Format.printf "Pareto front (%d designs):@." (Array.length front);
  Format.printf "%-10s %-12s %-10s %-34s@." "gain/dB" "gbw" "power/mW" "sizing (wd wl wp2 l cc ib)";
  Array.iter
    (fun ind ->
      let o = ind.M.Nsga2.evaluation.M.Problem.objectives in
      let p = T.ota_params_of_vector ind.M.Nsga2.x in
      Format.printf "%-10.1f %-12s %-10.3f wd=%s wl=%s wp2=%s l=%s cc=%s ib=%s@."
        (-.o.(0))
        (Repro_util.Si.format_unit (-.o.(1)) "Hz")
        (o.(2) *. 1e3)
        (Repro_util.Si.format p.T.w_diff)
        (Repro_util.Si.format p.T.w_load)
        (Repro_util.Si.format p.T.w_p2)
        (Repro_util.Si.format p.T.l_ota)
        (Repro_util.Si.format p.T.cc)
        (Repro_util.Si.format p.T.ibias))
    front
