type t = {
  mutex : Mutex.t;
  counters : (string, int) Hashtbl.t;
  timers : (string, float) Hashtbl.t;
}

let registry =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    timers = Hashtbl.create 16;
  }

let locked f =
  Mutex.lock registry.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.mutex) f

let incr ?(by = 1) name =
  locked (fun () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt registry.counters name) in
      Hashtbl.replace registry.counters name (cur + by))

let set name v = locked (fun () -> Hashtbl.replace registry.counters name v)

let counter name =
  locked (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt registry.counters name))

let add_time name seconds =
  locked (fun () ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt registry.timers name) in
      Hashtbl.replace registry.timers name (cur +. seconds))

let timer name =
  locked (fun () ->
      Option.value ~default:0.0 (Hashtbl.find_opt registry.timers name))

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0))
    f

let reset () =
  locked (fun () ->
      Hashtbl.reset registry.counters;
      Hashtbl.reset registry.timers)

let warn ~key fmt =
  Printf.ksprintf
    (fun msg ->
      incr key;
      Printf.eprintf "WARNING [%s]: %s\n%!" key msg)
    fmt

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  locked (fun () -> (sorted registry.counters, sorted registry.timers))

let line () =
  let counters, timers = snapshot () in
  let parts =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%.2fs" k v) timers
  in
  match parts with
  | [] -> "telemetry: (empty)"
  | _ -> "telemetry: " ^ String.concat " " parts

let report () =
  let counters, timers = snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "telemetry report\n";
  if counters = [] && timers = [] then Buffer.add_string buf "  (empty)\n"
  else begin
    List.iter
      (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) "  %-32s %12d\n" k v)
      counters;
    List.iter
      (fun (k, v) ->
        Printf.ksprintf (Buffer.add_string buf) "  %-32s %10.3f s\n" k v)
      timers
  end;
  Buffer.contents buf
