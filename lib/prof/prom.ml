(* Prometheus text exposition (version 0.0.4) over the live Telemetry
   and Histogram registries — the same snapshot surface the JSON
   /v1/metrics renders, so the two formats always agree. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric name = "hieropt_" ^ sanitize name

let num = Repro_obs.Jfmt.float_repr

let render_parts counters timers hists =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (k, v) ->
      let m = metric k in
      add "# TYPE %s counter\n%s %d\n" m m v)
    counters;
  List.iter
    (fun (k, v) ->
      let m = metric k ^ "_seconds" in
      add "# TYPE %s gauge\n%s %s\n" m m (num v))
    timers;
  List.iter
    (fun (k, (s : Repro_obs.Histogram.stats)) ->
      let m = metric k ^ "_seconds" in
      add "# TYPE %s summary\n" m;
      add "%s{quantile=\"0.5\"} %s\n" m (num s.p50);
      add "%s{quantile=\"0.9\"} %s\n" m (num s.p90);
      add "%s{quantile=\"0.99\"} %s\n" m (num s.p99);
      add "%s_sum %s\n" m (num s.sum);
      add "%s_count %d\n" m s.count)
    hists;
  Buffer.contents buf

let render () =
  let counters, timers =
    List.partition_map
      (fun (k, v) ->
        match v with
        | `Counter c -> Either.Left (k, c)
        | `Timer t -> Either.Right (k, t))
      (Repro_engine.Telemetry.snapshot ())
  in
  let hists =
    List.map
      (fun (k, h) -> (k, Repro_obs.Histogram.stats h))
      (Repro_obs.Histogram.all ())
  in
  render_parts counters timers hists
