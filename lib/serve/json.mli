(** Minimal hand-rolled JSON, sized for the model server's payloads.

    The encoder renders every float with the shortest decimal string
    that parses back to the exact same value, so a number that makes a
    round trip through a request/response is {e bit-identical} on the
    other side — the property the served-vs-local equivalence guarantee
    rests on.  Non-finite floats have no JSON representation and encode
    as [null].

    The decoder is a strict recursive-descent parser over the RFC 8259
    value grammar (objects, arrays, strings with escapes incl.
    [\uXXXX] surrogate pairs, numbers, booleans, null), with a depth
    limit instead of unbounded recursion. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no-whitespace) rendering. *)

val float_repr : float -> string
(** The lossless float rendering used by the encoder ("%.15g" widened
    until [float_of_string] returns the exact input; [null] when not
    finite).  Exposed so CLI output and tests can format floats the
    same way the wire does. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

(* accessors — every lookup returns a result with a path-flavoured
   message so endpoint handlers can surface precise 400s *)

val member : string -> t -> t option
(** Object field lookup ([None] on missing field or non-object).
    Duplicate keys resolve to the first occurrence. *)

val duplicate_key : t -> string option
(** Dotted path of the first repeated object key anywhere in the value
    ([None] when every object has distinct keys).  For consumers that
    must reject silently-shadowed fields, e.g. the bench gate. *)

val get_field : string -> t -> (t, string) result
val get_float : string -> t -> (float, string) result
val get_string : string -> t -> (string, string) result
val get_list : string -> t -> (t list, string) result
val to_float : t -> (float, string) result
