module W = Repro_spice.Waveform

let checkf msg = Alcotest.(check (float 1e-9)) msg

let ramp = W.create [| 0.0; 1.0; 2.0 |] [| 0.0; 1.0; 2.0 |]

let sine n cycles =
  let times = Array.init n (fun i -> float_of_int i /. float_of_int (n - 1)) in
  let values =
    Array.map (fun t -> sin (2.0 *. Float.pi *. cycles *. t)) times
  in
  W.create times values

let test_create_validation () =
  Alcotest.(check bool) "length mismatch" true
    (try ignore (W.create [| 0.0 |] [| 1.0; 2.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty" true
    (try ignore (W.create [||] [||]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "decreasing times" true
    (try ignore (W.create [| 1.0; 0.0 |] [| 0.0; 0.0 |]); false
     with Invalid_argument _ -> true)

let test_value_at () =
  checkf "interior" 0.5 (W.value_at ramp 0.5);
  checkf "clamped low" 0.0 (W.value_at ramp (-1.0));
  checkf "clamped high" 2.0 (W.value_at ramp 5.0);
  checkf "exact sample" 1.0 (W.value_at ramp 1.0)

let test_window () =
  let w = W.window ramp ~t_start:0.5 ~t_end:1.5 in
  Alcotest.(check int) "window size" 1 (W.length w);
  Alcotest.(check bool) "empty window raises" true
    (try ignore (W.window ramp ~t_start:5.0 ~t_end:6.0); false
     with Invalid_argument _ -> true)

let test_crossings_count () =
  let w = sine 2001 5.0 in
  let rising = W.crossings ~direction:W.Rising w ~level:0.0 in
  let falling = W.crossings ~direction:W.Falling w ~level:0.0 in
  let both = W.crossings ~direction:W.Either w ~level:0.0 in
  Alcotest.(check int) "rising zero crossings" 4 (Array.length rising);
  Alcotest.(check int) "falling zero crossings" 5 (Array.length falling);
  Alcotest.(check int) "either = sum" 9 (Array.length both)

let test_crossing_interpolation () =
  let w = W.create [| 0.0; 1.0 |] [| -1.0; 1.0 |] in
  let cs = W.crossings w ~level:0.0 in
  Alcotest.(check int) "one crossing" 1 (Array.length cs);
  checkf "interpolated time" 0.5 cs.(0);
  let cs2 = W.crossings w ~level:0.5 in
  checkf "off-centre level" 0.75 cs2.(0)

let test_frequency () =
  let w = sine 4001 10.0 in
  (match W.frequency w ~level:0.0 with
  | Some f -> Alcotest.(check (float 0.05)) "10 Hz sine" 10.0 f
  | None -> Alcotest.fail "no frequency measured");
  (* flat waveform has no frequency *)
  let flat = W.create [| 0.0; 1.0 |] [| 0.5; 0.5 |] in
  Alcotest.(check bool) "flat has none" true (W.frequency flat ~level:0.0 = None)

let test_periods_uniform () =
  let w = sine 4001 8.0 in
  let ps = W.periods w ~level:0.0 in
  Array.iter
    (fun p ->
      if Float.abs (p -. 0.125) > 1e-3 then Alcotest.failf "period %g" p)
    ps

let test_period_jitter_deterministic () =
  let w = sine 4001 8.0 in
  match W.period_jitter_rms w ~level:0.0 with
  | Some j -> Alcotest.(check bool) "clean sine tiny jitter" true (j < 1e-4)
  | None -> Alcotest.fail "expected jitter measurement"

let test_mean_rms () =
  checkf "ramp mean" 1.0 (W.mean ramp);
  let const = W.create [| 0.0; 2.0 |] [| 3.0; 3.0 |] in
  checkf "const mean" 3.0 (W.mean const);
  checkf "const rms" 3.0 (W.rms const);
  let w = sine 20001 4.0 in
  Alcotest.(check (float 0.01)) "sine rms" (1.0 /. sqrt 2.0) (W.rms w);
  Alcotest.(check (float 0.01)) "sine mean ~0" 0.0 (W.mean w)

let test_mean_nonuniform_sampling () =
  (* trapezoidal mean must honour unequal time steps *)
  let w = W.create [| 0.0; 1.0; 10.0 |] [| 0.0; 0.0; 0.0 |] in
  checkf "zero either way" 0.0 (W.mean w);
  let w2 = W.create [| 0.0; 1.0; 2.0; 10.0 |] [| 1.0; 1.0; 0.0; 0.0 |] in
  (* area = 1*1 + 0.5*1 + 0 = 1.5 over span 10 *)
  checkf "weighted mean" 0.15 (W.mean w2)

let test_peak_to_peak () =
  checkf "ramp ptp" 2.0 (W.peak_to_peak ramp)

let test_slew () =
  let w = W.create [| 0.0; 1.0; 2.0 |] [| 0.0; 2.0; 0.0 |] in
  checkf "rising slew" 2.0 (W.slew_at_crossings ~direction:W.Rising w ~level:1.0);
  checkf "falling slew" 2.0 (W.slew_at_crossings ~direction:W.Falling w ~level:1.0);
  checkf "no crossing" 0.0 (W.slew_at_crossings w ~level:5.0)

let test_amplitude_ok () =
  Alcotest.(check bool) "ramp covers [0.5, 1.5]" true
    (W.amplitude_ok ramp ~lo:0.5 ~hi:1.5);
  Alcotest.(check bool) "ramp misses 3.0" false
    (W.amplitude_ok ramp ~lo:0.5 ~hi:3.0)

let prop_crossings_sorted =
  QCheck.Test.make ~name:"crossing times increase" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 4 60) (float_range (-2.0) 2.0))
    (fun values ->
      let times = Array.init (Array.length values) float_of_int in
      let w = W.create times values in
      let cs = W.crossings w ~level:0.0 in
      let ok = ref true in
      for i = 0 to Array.length cs - 2 do
        if cs.(i + 1) < cs.(i) then ok := false
      done;
      !ok)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 2 60) (float_range (-5.0) 5.0))
    (fun values ->
      let times = Array.init (Array.length values) float_of_int in
      let w = W.create times values in
      let lo, hi = Repro_util.Stats.min_max values in
      let m = W.mean w in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "value_at" `Quick test_value_at;
    Alcotest.test_case "window" `Quick test_window;
    Alcotest.test_case "crossing counts" `Quick test_crossings_count;
    Alcotest.test_case "crossing interpolation" `Quick test_crossing_interpolation;
    Alcotest.test_case "frequency" `Quick test_frequency;
    Alcotest.test_case "uniform periods" `Quick test_periods_uniform;
    Alcotest.test_case "deterministic jitter ~ 0" `Quick test_period_jitter_deterministic;
    Alcotest.test_case "mean and rms" `Quick test_mean_rms;
    Alcotest.test_case "non-uniform mean" `Quick test_mean_nonuniform_sampling;
    Alcotest.test_case "peak to peak" `Quick test_peak_to_peak;
    Alcotest.test_case "slew at crossings" `Quick test_slew;
    Alcotest.test_case "amplitude check" `Quick test_amplitude_ok;
    QCheck_alcotest.to_alcotest prop_crossings_sorted;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
  ]
