(** Wire format of the distributed evaluation farm.

    All payloads are {!Repro_serve.Json} documents; floats travel in
    the encoder's lossless decimal rendering, so an evaluation computed
    remotely is {e bit-identical} to the same evaluation computed
    locally — the property the whole determinism contract rests on.

    Routes served by an eval-worker:

    - [GET /healthz] — role, version, config salt, job count, servable
      problems and cache statistics;
    - [POST /eval] — a batched evaluation request (GA population shard
      or Monte-Carlo sample shard, discriminated by the [problem]
      field) answered with one flat result row per input, in order;
    - [GET /cache/:id] / [PUT /cache/:id] — single-entry exchange in
      the eval-cache's persistence line format;
    - [PUT /cache] — bulk warming: newline-separated entry lines.

    A request whose [salt] does not match the worker's configuration is
    rejected with 409 — mismatched set-ups must fail loudly instead of
    silently poisoning caches. *)

val stream_to_hex : Repro_util.Prng.t -> string
(** Complete generator state as colon-separated [%016Lx] words. *)

val stream_of_hex : string -> (Repro_util.Prng.t, string) result
(** Inverse of {!stream_to_hex}; the restored stream's future output is
    identical to the original's. *)

val model_fingerprint : Hieropt.Perf_table.t -> string
(** Content hash of a table model.  A worker advertises it on
    [/healthz] and the coordinator sends its own on system-level eval
    requests: PLL evaluations are only distributed when both ends hold
    the same model. *)

val floats_to_json : float array -> Repro_serve.Json.t
(** Finite floats as lossless JSON numbers; non-finite values (e.g. the
    [infinity] objectives of an infeasible evaluation) as the strings
    ["inf"] / ["-inf"] / ["nan"]. *)

val floats_of_json :
  what:string -> Repro_serve.Json.t -> (float array, string) result

type eval_request = {
  problem : string;  (** {!Repro_moo.Problem.t} name, or ["mc"] *)
  salt : string;     (** {!Hieropt.Hierarchy.config_salt} of the run *)
  model_hash : string option;
      (** expected {!model_fingerprint}, for system-level problems *)
  points : float array array;  (** decision vectors *)
}

val eval_request_to_json : eval_request -> Repro_serve.Json.t
val eval_request_of_json : Repro_serve.Json.t -> (eval_request, string) result

type mc_request = {
  mc_salt : string;
  params : float array;
      (** the 7-float {!Repro_circuit.Topologies.vco_params} vector *)
  streams : Repro_util.Prng.t array;  (** pre-split per-trial streams *)
}

val mc_request_to_json : mc_request -> Repro_serve.Json.t
val mc_request_of_json : Repro_serve.Json.t -> (mc_request, string) result

(** {2 Trace propagation envelope}

    Optional profiling side-channel on eval/MC exchanges: the
    coordinator stamps requests with its trace id, owning span id and
    wall-clock send time; the worker echoes its own span id plus
    wall-clock receive/reply times.  The four stamps yield an NTP-style
    clock-offset estimate per round trip and the ids let [trace merge]
    nest worker spans under their coordinator parents.  Untraced peers
    ignore the envelope; it never influences evaluation. *)

type trace_ctx = { trace : string; parent : int; t_sent : float }
type trace_echo = { span : int; t_recv : float; t_replied : float }

val with_trace_ctx : trace_ctx option -> Repro_serve.Json.t -> Repro_serve.Json.t
(** Attach a ["trace"] object to a request document ([None] = identity). *)

val trace_ctx_of_json : Repro_serve.Json.t -> trace_ctx option
val with_trace_echo : trace_echo option -> Repro_serve.Json.t -> Repro_serve.Json.t
val trace_echo_of_json : Repro_serve.Json.t -> trace_echo option

val results_to_json : float array array -> Repro_serve.Json.t
(** [{"results": [[...], ...]}] — {!Repro_moo.Problem.pack} rows for GA
    shards, {!perf_row_of_outcome} rows for Monte-Carlo shards. *)

val results_of_json :
  Repro_serve.Json.t -> (float array array, string) result

val perf_row_of_outcome :
  (Repro_spice.Vco_measure.performance, string) result -> float array
(** [[|1.0; kvco; ivco; jvco; fmin; fmax|]] for a successful trial,
    [[|0.0|]] for a failed one (messages never cross the wire — only
    the failure count feeds the statistics, so the placeholder keeps
    remote runs bit-identical). *)

val outcome_of_perf_row :
  float array -> (Repro_spice.Vco_measure.performance, string) result
(** Inverse of {!perf_row_of_outcome}.
    @raise Failure on a malformed row. *)
