(** Process variation and mismatch sampling — the substitute for the
    foundry's statistical model files (DESIGN.md §2).

    Two variation layers are applied to every MOS instance:

    - {b global} (inter-die) variation: one Vth shift and one relative Kp
      shift per polarity, shared by all devices of that polarity;
    - {b local} (intra-die) mismatch: independent per-device shifts with
      Pelgrom scaling (σ ∝ 1/√(WL)), computed from each instance's
      geometry via {!Mosfet.sigma_vth} / {!Mosfet.sigma_kp_rel}.

    Sampling never mutates the nominal netlist; it returns a perturbed
    copy, so Monte-Carlo trials are trivially independent. *)

type spec = {
  sigma_vth_global : float;  (** V; per-polarity global Vth sigma *)
  sigma_kp_global : float;   (** relative; per-polarity global Kp sigma *)
  mismatch : bool;           (** enable Pelgrom per-device mismatch *)
  global_variation : bool;   (** enable the inter-die layer *)
}

val default : spec
(** 6 mV global Vth sigma, 2% global Kp sigma, both layers enabled. *)

val mismatch_only : spec
(** Local mismatch only — isolates the Pelgrom contribution. *)

val sample : spec -> Repro_util.Prng.t -> Netlist.t -> Netlist.t
(** Draw one process instance of the netlist. *)

type corner = Tt | Ss | Ff | Sf | Fs

val corner : corner -> Netlist.t -> Netlist.t
(** Deterministic corner: S/F shift Vth by ±3 global sigmas and Kp by
    ∓3 sigmas for the (NMOS, PMOS) pair named by the corner. *)

val corner_name : corner -> string
