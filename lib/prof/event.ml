type t = {
  name : string;
  ph : char;
  ts : float; (* microseconds on the owning process's timeline *)
  pid : int;
  tid : int;
  seq : int;
  args : (string * string) list;
}

type span = {
  name : string;
  pid : int;
  tid : int;
  id : int; (* seq of the begin event — what remote children reference *)
  t0 : float;
  mutable t1 : float;
  args : (string * string) list; (* begin-event args *)
  mutable gc : (string * string) list; (* end-event args (gc.* deltas) *)
  depth : int;
  mutable children : span list; (* chronological *)
}

let dur s = s.t1 -. s.t0

let arg key (args : (string * string) list) = List.assoc_opt key args

let gc_field s key =
  match arg key s.gc with
  | Some v -> ( try float_of_string v with _ -> 0.0)
  | None -> 0.0

(* Pair begin/end events into span trees, per (pid, tid) stack.  Events
   within one (pid, tid) are ordered by (ts, seq): seq is authoritative
   within a process and survives merge unchanged, while merged
   timestamps are shifted uniformly per process so the relative order
   still holds. *)
let spans events =
  let groups : (int * int, t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.ph with
      | 'B' | 'E' -> (
        let key = (e.pid, e.tid) in
        match Hashtbl.find_opt groups key with
        | Some l -> l := e :: !l
        | None -> Hashtbl.add groups key (ref [ e ]))
      | _ -> ())
    events;
  let roots = ref [] in
  Hashtbl.iter
    (fun _ l ->
      let evs =
        List.sort
          (fun a b -> compare (a.ts, a.seq) (b.ts, b.seq))
          !l
      in
      let stack = ref [] in
      List.iter
        (fun e ->
          match e.ph with
          | 'B' ->
            let s =
              {
                name = e.name;
                pid = e.pid;
                tid = e.tid;
                id = e.seq;
                t0 = e.ts;
                t1 = e.ts;
                args = e.args;
                gc = [];
                depth = List.length !stack;
                children = [];
              }
            in
            stack := s :: !stack
          | 'E' -> (
            match !stack with
            | top :: rest ->
              top.t1 <- e.ts;
              top.gc <- e.args;
              top.children <- List.rev top.children;
              (match rest with
              | parent :: _ -> parent.children <- top :: parent.children
              | [] -> roots := top :: !roots);
              stack := rest
            | [] -> (* stray end: drop *) ())
          | _ -> ())
        evs)
    groups;
  List.sort (fun a b -> compare (a.t0, a.id) (b.t0, b.id)) !roots

(* preorder walk of a span forest *)
let rec flatten sl =
  List.concat_map (fun s -> s :: flatten s.children) sl

(* number of begin/end events with no partner, over all (pid, tid)
   stacks — 0 for any well-formed trace *)
let unbalanced events =
  let groups : (int * int, t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.ph with
      | 'B' | 'E' -> (
        let key = (e.pid, e.tid) in
        match Hashtbl.find_opt groups key with
        | Some l -> l := e :: !l
        | None -> Hashtbl.add groups key (ref [ e ]))
      | _ -> ())
    events;
  Hashtbl.fold
    (fun _ l acc ->
      let evs =
        List.sort (fun a b -> compare (a.ts, a.seq) (b.ts, b.seq)) !l
      in
      let depth = ref 0 and stray = ref 0 in
      List.iter
        (fun e ->
          match e.ph with
          | 'B' -> Stdlib.incr depth
          | 'E' -> if !depth > 0 then Stdlib.decr depth else Stdlib.incr stray
          | _ -> ())
        evs;
      acc + !depth + !stray)
    groups 0
