(** Model export: a fitted {!Hieropt.Perf_table.t} rendered as
    (a) a Verilog-A behavioural module wrapping the saved [.tbl] files
    with [$table_model] cubic-spline / no-extrapolation ("3E")
    lookups — the paper's Listings 1–2 — and (b) a SPICE subcircuit of
    the median Pareto sizing whose device dimensions are [.param]-driven,
    so the emitted deck re-parses into exactly the ring-VCO netlist it
    describes.

    Both renderers are pure functions of the table (no timestamps, no
    environment), so the CLI [export] command and the model server's
    [GET /v1/models/:id/export] serve byte-identical artefacts. *)

val spice :
  ?stages:int -> ?vdd:float -> ?vctl:float -> Hieropt.Perf_table.t -> string
(** SPICE subcircuit [hieropt_vco vdd vctl s1]: header comments carry
    the full Pareto-with-sigma table, [.param] cards carry the median
    entry's 7 transistor dimensions (full-precision, round-trip-exact),
    and the body is the current-starved ring with [{param}] device
    sizes.  Defaults come from
    {!Repro_spice.Vco_measure.default_options}. *)

val verilog_a : ?vctl_lo:float -> Hieropt.Perf_table.t -> string
(** Verilog-A module [hieropt_vco] referencing the model directory's
    [.tbl] files: Listing 2's performance surfaces ([data.tbl],
    [fmin_data.tbl], [fmax_data.tbl] over (kvco, ivco)), Listing 1's
    ∆-variation lookups ([*_delta.tbl]) with min/max bracketing and
    [p1..p7] bottom-up sizing recovery, plus a behavioural oscillator
    driven by the interpolated band. *)
