module Matrix = Repro_linalg.Matrix
module Vec = Repro_linalg.Vec
module Lu = Repro_linalg.Lu

type t = {
  compiled : Mna.compiled;
  g : Matrix.t; (* small-signal conductances (Newton Jacobian at the op) *)
  c : Matrix.t; (* capacitance stamps *)
}

let linearise compiled (op : Dcop.result) =
  let n = Mna.size compiled in
  let g = Matrix.create n n in
  let residual = Vec.create n in
  Mna.assemble compiled ~x:op.Dcop.solution ~time:0.0 ~gmin:1e-12
    ~source_scale:1.0 ~cap_mode:Mna.Dc ~jacobian:g ~residual;
  let c = Matrix.create n n in
  Array.iter
    (fun (a, b, cval) ->
      if a >= 0 then Matrix.add_to c a a cval;
      if b >= 0 then Matrix.add_to c b b cval;
      if a >= 0 && b >= 0 then begin
        Matrix.add_to c a b (-.cval);
        Matrix.add_to c b a (-.cval)
      end)
    (Mna.capacitance_stamps compiled);
  { compiled; g; c }

(* (G + jwC) x = b embedded as the real system
   [ G  -wC ] [re]   [b]
   [ wC   G ] [im] = [0] *)
let solve_at t ~b w =
  let n = Mna.size t.compiled in
  let big = Matrix.create (2 * n) (2 * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gij = Matrix.get t.g i j and cij = Matrix.get t.c i j in
      Matrix.set big i j gij;
      Matrix.set big (n + i) (n + j) gij;
      if cij <> 0.0 then begin
        Matrix.set big i (n + j) (-.w *. cij);
        Matrix.set big (n + i) j (w *. cij)
      end
    done
  done;
  let rhs = Array.append b (Array.make n 0.0) in
  let x = Lu.solve big rhs in
  (Array.sub x 0 n, Array.sub x n n)

let transfer t ~input ~output f =
  let n = Mna.size t.compiled in
  let bi = Mna.branch_index t.compiled input in
  let b = Array.make n 0.0 in
  b.(bi) <- 1.0;
  let w = 2.0 *. Float.pi *. f in
  let re, im = solve_at t ~b w in
  match Mna.node_index t.compiled (Mna.node_of_name t.compiled output) with
  | None -> Complex.zero
  | Some k -> { Complex.re = re.(k); im = im.(k) }

type sweep_point = {
  freq : float;
  gain : Complex.t;
  magnitude_db : float;
  phase_deg : float;
}

let point_of t ~input ~output freq =
  let gain = transfer t ~input ~output freq in
  {
    freq;
    gain;
    magnitude_db = 20.0 *. log10 (Float.max (Complex.norm gain) 1e-30);
    phase_deg = Complex.arg gain *. 180.0 /. Float.pi;
  }

let sweep t ~input ~output ~freqs =
  Array.map (point_of t ~input ~output) freqs

let logsweep t ~input ~output ~f_start ~f_stop ~points =
  sweep t ~input ~output
    ~freqs:(Repro_util.Floatx.logspace f_start f_stop points)

type bode_summary = {
  dc_gain_db : float;
  unity_gain_freq : float option;
  phase_margin_deg : float option;
  bandwidth_3db : float option;
}

(* continuous phase for margin extraction: unwrap multiples of 360 *)
let unwrap phases =
  let out = Array.copy phases in
  for i = 1 to Array.length out - 1 do
    let d = out.(i) -. out.(i - 1) in
    if d > 180.0 then out.(i) <- out.(i) -. 360.0
    else if d < -180.0 then out.(i) <- out.(i) +. 360.0
  done;
  out

let interp_log_crossing points get_y target =
  (* first downward crossing of target, log-interpolated in frequency *)
  let n = Array.length points in
  let rec find i =
    if i >= n - 1 then None
    else begin
      let a = get_y points.(i) and b = get_y points.(i + 1) in
      if a >= target && b < target then begin
        let t = (a -. target) /. (a -. b) in
        Some
          (exp
             (Repro_util.Floatx.lerp
                (log points.(i).freq)
                (log points.(i + 1).freq)
                t))
      end
      else find (i + 1)
    end
  in
  find 0

let bode_summary points =
  if Array.length points = 0 then invalid_arg "Ac.bode_summary: empty sweep";
  let dc_gain_db = points.(0).magnitude_db in
  let unity_gain_freq = interp_log_crossing points (fun p -> p.magnitude_db) 0.0 in
  let bandwidth_3db =
    interp_log_crossing points (fun p -> p.magnitude_db) (dc_gain_db -. 3.0)
  in
  let phase_margin_deg =
    match unity_gain_freq with
    | None -> None
    | Some fu ->
      let phases = unwrap (Array.map (fun p -> p.phase_deg) points) in
      (* linear interpolation of the unwrapped phase at fu; reference the
         phase to the low-frequency value so an inverting amplifier's
         180 degrees of DC inversion does not count against the margin *)
      let n = Array.length points in
      let rec at i =
        if i >= n - 1 then phases.(n - 1)
        else if points.(i + 1).freq >= fu then begin
          let t =
            (log fu -. log points.(i).freq)
            /. (log points.(i + 1).freq -. log points.(i).freq)
          in
          Repro_util.Floatx.lerp phases.(i) phases.(i + 1) t
        end
        else at (i + 1)
      in
      let phase_at_unity = at 0 -. phases.(0) in
      Some (180.0 +. phase_at_unity)
  in
  { dc_gain_db; unity_gain_freq; phase_margin_deg; bandwidth_3db }
