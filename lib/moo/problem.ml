type evaluation = {
  objectives : float array;
  constraint_violation : float;
}

let feasible e = e.constraint_violation <= 0.0

type t = {
  name : string;
  bounds : (float * float) array;
  objective_names : string array;
  evaluate : float array -> evaluation;
}

let n_vars t = Array.length t.bounds
let n_objectives t = Array.length t.objective_names

let create ~name ~bounds ~objective_names evaluate =
  if Array.length bounds = 0 then invalid_arg "Problem.create: no variables";
  if Array.length objective_names = 0 then
    invalid_arg "Problem.create: no objectives";
  Array.iter
    (fun (lo, hi) ->
      if not (lo < hi) then invalid_arg "Problem.create: inverted bounds")
    bounds;
  { name; bounds; objective_names; evaluate }

let clamp t x =
  Array.mapi
    (fun i v ->
      let lo, hi = t.bounds.(i) in
      Repro_util.Floatx.clamp ~lo ~hi v)
    x

let random_point t prng =
  Array.map (fun (lo, hi) -> Repro_util.Prng.range prng lo hi) t.bounds

let violation_of_bounds ~lo ~hi x =
  if x < lo then lo -. x else if x > hi then x -. hi else 0.0

let infeasible_evaluation t ~penalty =
  {
    objectives = Array.make (n_objectives t) infinity;
    constraint_violation = Float.max penalty 1.0;
  }
