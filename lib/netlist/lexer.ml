type token = { text : string; pos : Loc.pos }

(* tokenize one physical line, carrying the brace depth across
   continuation lines of the same card.  [lineno] is 1-based; [start] is
   the index to lex from (skips the '+' of a continuation). *)
let lex_line ?file ~lineno ~depth ~out line start =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let buf_start = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out :=
        { text = Buffer.contents buf;
          pos = { Loc.line = lineno; col = !buf_start + 1 } }
        :: !out;
      Buffer.clear buf
    end
  in
  let add i c =
    if Buffer.length buf = 0 then buf_start := i;
    Buffer.add_char buf c
  in
  let emit i c =
    flush ();
    out :=
      { text = String.make 1 c; pos = { Loc.line = lineno; col = i + 1 } }
      :: !out
  in
  (* a '+'/'-' directly after the 'e' of a numeric mantissa is an
     exponent sign, not an operator: "10e-6" must stay one token *)
  let in_exponent () =
    let len = Buffer.length buf in
    len >= 2
    && (match Buffer.nth buf (len - 1) with 'e' | 'E' -> true | _ -> false)
    &&
    match Buffer.nth buf 0 with '0' .. '9' | '.' -> true | _ -> false
  in
  let i = ref start in
  (try
     while !i < n do
       let c = line.[!i] in
       (match c with
       | ';' ->
         flush ();
         raise Exit (* trailing comment: rest of the line is ignored *)
       | ' ' | '\t' | '\r' -> flush ()
       | '{' ->
         emit !i c;
         incr depth
       | '}' ->
         emit !i c;
         if !depth > 0 then decr depth
       | '=' -> emit !i c
       | '(' | ')' | ',' -> if !depth > 0 then emit !i c else flush ()
       | ('+' | '-') when !depth > 0 ->
         if in_exponent () then add !i c else emit !i c
       | ('*' | '/') when !depth > 0 -> emit !i c
       | c -> add !i c);
       incr i
     done
   with Exit -> ());
  flush ();
  ignore file

let tokenize ?file text =
  let lines = String.split_on_char '\n' text in
  let cards = ref [] in
  (* the card being accumulated: tokens in reverse, plus the brace depth
     so '{' expressions may span continuation lines *)
  let current : token list ref = ref [] in
  let open_card = ref false in
  let depth = ref 0 in
  let last_pos = ref { Loc.line = 1; col = 1 } in
  let finish () =
    if !open_card then begin
      if !depth > 0 then
        Loc.fail ?file !last_pos "unterminated '{' expression";
      cards := List.rev !current :: !cards;
      current := [];
      open_card := false
    end
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      (* first non-blank character decides the line kind *)
      let rec first i =
        if i >= String.length line then None
        else
          match line.[i] with
          | ' ' | '\t' | '\r' -> first (i + 1)
          | c -> Some (i, c)
      in
      match first 0 with
      (* blank and comment lines are invisible: they neither end a card
         nor break a continuation chain (matching classic SPICE) *)
      | None -> ()
      | Some (_, '*') | Some (_, ';') -> ()
      | Some (i, '+') ->
        if not !open_card then
          Loc.fail ?file
            { Loc.line = lineno; col = i + 1 }
            "continuation line with no preceding card";
        last_pos := { Loc.line = lineno; col = i + 1 };
        lex_line ?file ~lineno ~depth ~out:current line (i + 1)
      | Some (i, _) ->
        finish ();
        open_card := true;
        last_pos := { Loc.line = lineno; col = i + 1 };
        lex_line ?file ~lineno ~depth ~out:current line i)
    lines;
  finish ();
  List.rev !cards
