module Datafile = Repro_interp.Datafile
module Table1d = Repro_interp.Table1d

let checkf msg = Alcotest.(check (float 1e-9)) msg

let sample =
  Datafile.of_rows
    [ ([| 0.0 |], 1.0); ([| 1.0 |], 2.0); ([| 2.0 |], 5.0) ]

let test_of_rows () =
  Alcotest.(check int) "rows" 3 (Datafile.rows sample);
  Alcotest.(check int) "columns" 1 (Datafile.columns sample)

let test_of_rows_ragged () =
  Alcotest.(check bool) "ragged raises" true
    (try
       ignore (Datafile.of_rows [ ([| 1.0 |], 1.0); ([| 1.0; 2.0 |], 2.0) ]);
       false
     with Invalid_argument _ -> true)

let test_roundtrip_string () =
  let text = Datafile.to_string ~header:"test table" sample in
  let parsed = Datafile.of_string text in
  Alcotest.(check int) "rows preserved" 3 (Datafile.rows parsed);
  checkf "value preserved" 5.0 parsed.Datafile.outputs.(2);
  checkf "input preserved" 2.0 parsed.Datafile.inputs.(2).(0)

let test_parse_comments_and_blank () =
  let text = "# comment\n* spice comment\n// c comment\n\n1.0 2.0\n3.0 4.0\n" in
  let t = Datafile.of_string text in
  Alcotest.(check int) "two data rows" 2 (Datafile.rows t);
  checkf "first output" 2.0 t.Datafile.outputs.(0)

let test_parse_si_suffixes () =
  let t = Datafile.of_string "2.1p 3.8k\n" in
  checkf "pico input" 2.1e-12 t.Datafile.inputs.(0).(0);
  checkf "kilo output" 3.8e3 t.Datafile.outputs.(0)

let test_parse_tabs () =
  let t = Datafile.of_string "1.0\t2.0\t3.0\n" in
  Alcotest.(check int) "two inputs" 2 (Datafile.columns t);
  checkf "output" 3.0 t.Datafile.outputs.(0)

let test_parse_errors () =
  Alcotest.(check bool) "single column" true
    (try ignore (Datafile.of_string "1.0\n"); false with Failure _ -> true);
  Alcotest.(check bool) "bad number" true
    (try ignore (Datafile.of_string "1.0 abc\n"); false with Failure _ -> true)

let test_file_roundtrip () =
  let path = Filename.temp_file "hieropt_test" ".tbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Datafile.save ~header:"saved" path sample;
      let t = Datafile.load path in
      Alcotest.(check int) "rows" 3 (Datafile.rows t);
      checkf "output" 2.0 t.Datafile.outputs.(1))

let test_table1d_view () =
  let t = Datafile.table1d ~control:"1E" sample in
  checkf "interpolated" 1.5 (Table1d.eval t 0.5)

let test_table1d_view_wrong_columns () =
  let multi = Datafile.of_rows [ ([| 1.0; 2.0 |], 3.0); ([| 2.0; 1.0 |], 4.0) ] in
  Alcotest.(check bool) "multi-column rejected" true
    (try ignore (Datafile.table1d multi); false with Invalid_argument _ -> true)

let test_table_nd_view () =
  let multi =
    Datafile.of_rows
      [ ([| 0.0; 0.0 |], 0.0); ([| 1.0; 0.0 |], 1.0); ([| 0.0; 1.0 |], 2.0) ]
  in
  let t = Datafile.table_nd multi in
  checkf "exact hit" 1.0 (Repro_interp.Table_nd.eval t [| 1.0; 0.0 |])

let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 15 in
      let* cols = int_range 1 4 in
      let* data =
        list_size (return n)
          (pair
             (array_size (return cols) (float_range (-1e6) 1e6))
             (float_range (-1e6) 1e6))
      in
      return data)
  in
  QCheck.Test.make ~name:"datafile to_string/of_string roundtrip" ~count:100
    (QCheck.make gen) (fun rows ->
      let t = Datafile.of_rows rows in
      let t' = Datafile.of_string (Datafile.to_string t) in
      Datafile.rows t = Datafile.rows t'
      && Array.for_all2
           (fun a b -> Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a))
           t.Datafile.outputs t'.Datafile.outputs)

let suite =
  [
    Alcotest.test_case "of_rows" `Quick test_of_rows;
    Alcotest.test_case "of_rows ragged" `Quick test_of_rows_ragged;
    Alcotest.test_case "string roundtrip" `Quick test_roundtrip_string;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blank;
    Alcotest.test_case "SI suffixes" `Quick test_parse_si_suffixes;
    Alcotest.test_case "tab separation" `Quick test_parse_tabs;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "table1d view" `Quick test_table1d_view;
    Alcotest.test_case "table1d wrong columns" `Quick test_table1d_view_wrong_columns;
    Alcotest.test_case "table_nd view" `Quick test_table_nd_view;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
