(** NSGA-II: elitist non-dominated-sorting genetic algorithm (Deb et al.),
    the optimiser the paper uses at both hierarchy levels (§3.2, §4.2,
    §4.5).  Real-coded: simulated-binary crossover (SBX) + polynomial
    mutation, binary tournament on (rank, crowding), (µ+λ) elitism. *)

type individual = {
  x : float array;
  evaluation : Problem.evaluation;
}

type options = {
  population : int;       (** even, >= 4 *)
  generations : int;
  crossover_prob : float;
  eta_crossover : float;  (** SBX distribution index *)
  mutation_prob : float;  (** per-variable; <= 0 means 1/n_vars *)
  eta_mutation : float;   (** polynomial-mutation distribution index *)
}

val default_options : options
(** population 100, generations 30 (the paper's §4.2 settings),
    pc 0.9 / ηc 15, pm 1/n / ηm 20. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  individual array
(** Run the GA and return the final population.  Each generation's
    offspring are evaluated as one batch through [evaluator] (default:
    the serial path; pass {!Problem.parallel_evaluator} to spread
    evaluations over a domain pool and/or a cache — results are
    identical because all variation randomness is drawn before the
    batch is dispatched).  [on_generation] is called after each
    generation with the current population (for progress logging and
    convergence traces).

    [optimise] is [init] followed by [generations] calls to [step] —
    the step-wise API below gives callers the same loop one generation
    at a time, for checkpointing. *)

(* ---- step-wise API (checkpointable generation loop) ---- *)

type state
(** A paused GA: options, the evolving PRNG, the generation counter and
    the current (already evaluated) population. *)

val init :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  Problem.t ->
  Repro_util.Prng.t ->
  state
(** Draw and evaluate the initial population (generation 0).
    @raise Invalid_argument unless the population is even and >= 4. *)

val step : ?evaluator:Problem.evaluator -> Problem.t -> state -> unit
(** Advance one generation.  [optimise] ≡ [init] + [generations] × [step]
    bit-exactly. *)

val generation : state -> int
val population : state -> individual array

(* ---- state serialisation (resume support) ---- *)

val save_state : state -> Repro_engine.Snapshot.t -> key:string -> unit
(** Store generation counter, PRNG state and population under
    [key ^ ".generation" / ".prng" / ".population"].  A restored state
    continues bit-identically to the saved one. *)

val restore_state :
  options:options ->
  Problem.t ->
  Repro_engine.Snapshot.t ->
  key:string ->
  state option
(** [None] when the keys are absent or the stored state is malformed /
    inconsistent with [options] and the problem's arity (callers then
    cold-start). *)

val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
(** Drop the three state keys (after the phase's final artefact has been
    persisted, to keep snapshots small). *)

val pareto_front : individual array -> individual array
(** Feasible rank-0 subset of a population, deduplicated on objective
    vectors. *)

val evaluations : individual array -> Problem.evaluation array

(* ---- building blocks shared by the optimiser portfolio ---- *)

val eval_batch :
  Problem.evaluator -> Problem.t -> float array array -> individual array
(** Batch-evaluate raw decision vectors into individuals through the
    injected evaluation strategy — the one evaluation seam every
    portfolio optimiser ({!De}, {!Mopso}, {!Spea2}) shares. *)

val select_best : int -> individual array -> individual array
(** NSGA-II environmental selection: the best [target] individuals by
    (non-domination rank, crowding distance).  Reused as the truncation
    operator by {!De}. *)

val encode_individual : individual -> float array
(** One flat snapshot row: x | constraint_violation | objectives. *)

val decode_individual : n_vars:int -> float array -> individual option
(** Inverse of {!encode_individual}; [None] when the row is too short
    for [n_vars]. *)
