(** Left-looking (Gilbert–Peierls) sparse LU with partial pivoting,
    split into a one-off {e symbolic} analysis and a cheap {e numeric}
    refactorisation.

    MNA systems keep a fixed sparsity pattern across Newton iterations,
    timesteps and Monte-Carlo samples of the same netlist, so the
    expensive part — reachability DFS, fill-in discovery and pivot-order
    selection — runs once per circuit topology ({!factorise}) and every
    later solve only refills numbers along the frozen pattern
    ({!refactorise}: no search, no allocation, a single pass over the
    stored L/U columns).

    Pivot-tolerance semantics are shared with the dense kernel
    ({!Lu.pivot_threshold}): a column whose best pivot falls below the
    threshold relative to its pre-elimination magnitude raises
    {!Singular} with the same column diagnostic the dense path would
    give.  A refactorisation reuses the pivot {e order} chosen by the
    symbolic phase; if drifted values make a frozen pivot unacceptable
    it raises {!Singular} and the caller should fall back to a fresh
    {!factorise}. *)

type symbolic
(** Immutable: fill pattern, elimination (pivot) order, and the
    CSC traversal of the input pattern.  Safe to share across domains. *)

type numeric
(** Mutable L/U values plus scratch, sized by a [symbolic].  One per
    worker; never share across threads. *)

exception Singular of int
(** Column [i] has no pivot above the shared relative tolerance. *)

val factorise : Sparse.t -> symbolic * numeric
(** Full factorisation: symbolic analysis with partial pivoting driven
    by the matrix values, plus the numeric factors.
    @raise Singular on numerically singular input. *)

val create_numeric : symbolic -> numeric
(** Fresh (unfactorised) numeric workspace; fill it with
    {!refactorise} before solving. *)

val refactorise : numeric -> Sparse.t -> unit
(** Recompute the numeric factors of a same-pattern matrix along the
    frozen symbolic pattern and pivot order.
    @raise Singular when a frozen pivot falls below tolerance (caller
    should re-run {!factorise});
    @raise Invalid_argument when the pattern does not match. *)

val symbolic : numeric -> symbolic

val solve_into : numeric -> b:float array -> x:float array -> unit
(** Solve [A x = b] against the current factors.  [b] and [x] must be
    distinct arrays of size n. *)

val solve : numeric -> float array -> float array
(** Allocating wrapper over {!solve_into}. *)

val det : numeric -> float
(** Determinant from the factors (permutation sign included). *)

val lu_nnz : symbolic -> int
(** Stored nonzeros of L + U including the diagonal (fill-in
    reporting). *)

(** {2 Shared symbolic registry}

    Monte-Carlo samples and pool workers compile structurally identical
    netlists; the registry lets them share one symbolic analysis, keyed
    by the pattern fingerprint (verified against the actual pattern, so
    a hash collision can never return a wrong symbolic).  The table is
    mutex-protected and the stored values are immutable — workers share
    nothing mutable.  Bounded FIFO eviction keeps it small. *)

val find_symbolic : Sparse.t -> symbolic option
val store_symbolic : Sparse.t -> symbolic -> unit

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!find_symbolic} since start/clear. *)

val clear_cache : unit -> unit
(** Drop all cached symbolics and reset stats (tests, bench). *)
