module Telemetry = Repro_engine.Telemetry

exception Remote_unavailable of string

let model_query ?fallback ~client ~model () : Hieropt.Pll_problem.model_query =
 fun points ->
  match Client.query_points client ~model points with
  | Ok results ->
    Telemetry.incr "serve.remote_queries";
    results
  | Error err -> (
    let msg = Client.error_to_string err in
    match fallback with
    | Some table ->
      Telemetry.incr "serve.remote_fallbacks";
      Telemetry.warn ~key:"serve.remote" "falling back to local model: %s" msg;
      Hieropt.Perf_table.eval_points table points
    | None -> raise (Remote_unavailable msg))

let parse_endpoint spec =
  let hostport, model =
    match String.index_opt spec '/' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, "default")
  in
  match String.rindex_opt hostport ':' with
  | None -> Error "expected HOST:PORT or HOST:PORT/MODEL"
  | Some i -> (
    let host = String.sub hostport 0 i in
    let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" && model <> "" ->
      Ok (host, p, model)
    | _ -> Error "expected HOST:PORT or HOST:PORT/MODEL")
