(* Performance-regression gate: compare a fresh BENCH.json against the
   committed bench/BASELINE.json and fail when a watched metric moved
   more than [tolerance] in its bad direction.

   Usage: bench_check [CURRENT] [BASELINE]
   (defaults: BENCH.json bench/BASELINE.json)

   A watched metric missing from either file is a failure, so metric
   renames force a deliberate baseline refresh
   (dune exec bench -- --scale tiny --write-baseline). *)

module Json = Repro_serve.Json

type direction =
  | Lower_is_better
  | Higher_is_better
  | Bound of float
      (* absolute ceiling, for correctness metrics whose baseline value
         is noise-level (a relative threshold would be meaningless) *)

let tolerance = 0.25

let watched =
  [
    ("solver/transient_sparse_ms", Lower_is_better);
    ("solver/dcop_sparse_ms", Lower_is_better);
    ("solver/transient_speedup", Higher_is_better);
    ("solver/dense_sparse_max_diff", Bound 1e-9);
    ("engine/cache_speedup", Higher_is_better);
    ("engine/mc_speedup", Higher_is_better);
    ("serve/qps_r1", Higher_is_better);
    ("serve/qps_r2", Higher_is_better);
    ("serve/qps_r4", Higher_is_better);
    (* latency quantiles on a loaded shared host are dominated by
       scheduler time-slicing, so they gate on absolute ceilings
       rather than run-to-run ratios *)
    ("serve/p50_ms_r1", Bound 5.0);
    ("serve/p99_ms_r1", Bound 25.0);
    ("serve/p99_ms_r4", Bound 50.0);
    ("dist/speedup_2v1", Higher_is_better);
    ("dist/warm_hit_ratio", Higher_is_better);
    (* absolute ceiling: a mid-batch worker death must never stall the
       dispatch (retry storms, lost chunks); the wall time itself is
       dominated by machine-dependent evaluation cost *)
    ("dist/reassign_s", Bound 30.0);
    ("timings/substrate/mna-assemble_ns", Lower_is_better);
    ("timings/substrate/lu-solve_ns", Lower_is_better);
    (* optimiser portfolio: front quality at a fixed ZDT1 eval budget
       must not erode, the surrogate must keep avoiding exact evals
       without losing the front, and its screened circuit-level GA leg
       gates on an absolute wall ceiling (shared-runner noise) *)
    ("moo/hv_at_budget_nsga2", Higher_is_better);
    ("moo/hv_at_budget_de", Higher_is_better);
    ("moo/hv_at_budget_mopso", Higher_is_better);
    ("moo/surrogate.eval_avoided_ratio", Higher_is_better);
    ("moo/surrogate.front_agreement", Higher_is_better);
    ("moo/flow.wall_s", Bound 300.0);
  ]

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error msg -> Error msg

let parse_file path =
  match read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok body -> (
    match Json.of_string body with
    | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
    | Ok json -> (
      (* a repeated key silently shadows a metric (one leg of a bench
         overwriting another's numbers) — refuse to gate on such a file *)
      match Json.duplicate_key json with
      | Some where ->
        Error (Printf.sprintf "%s: duplicate JSON key %S" path where)
      | None -> Ok json))

(* metric paths are section/key; the key itself may contain slashes
   (the timings section), so split on the first one only *)
let lookup path json =
  match String.index_opt path '/' with
  | None -> Error (Printf.sprintf "metric %S has no section" path)
  | Some i ->
    let section = String.sub path 0 i in
    let key = String.sub path (i + 1) (String.length path - i - 1) in
    (match Json.member section json with
    | None -> Error (Printf.sprintf "section %S missing" section)
    | Some s -> (
      match Json.member key s with
      | None -> Error (Printf.sprintf "metric %S missing" path)
      | Some v -> Json.to_float v))

type verdict = Pass | Fail of string

let check direction ~baseline ~current =
  match direction with
  | Bound ceiling ->
    if current <= ceiling then Pass
    else Fail (Printf.sprintf "%.3g above ceiling %.3g" current ceiling)
  | Lower_is_better ->
    if current <= baseline *. (1.0 +. tolerance) then Pass
    else
      Fail
        (Printf.sprintf "+%.1f%% (limit +%.0f%%)"
           (100.0 *. ((current /. baseline) -. 1.0))
           (100.0 *. tolerance))
  | Higher_is_better ->
    if current >= baseline *. (1.0 -. tolerance) then Pass
    else
      Fail
        (Printf.sprintf "%.1f%% (limit -%.0f%%)"
           (100.0 *. ((current /. baseline) -. 1.0))
           (100.0 *. tolerance))

let () =
  let current_path, baseline_path =
    match Array.to_list Sys.argv with
    | [ _ ] -> ("BENCH.json", "bench/BASELINE.json")
    | [ _; c ] -> (c, "bench/BASELINE.json")
    | [ _; c; b ] -> (c, b)
    | _ ->
      prerr_endline "usage: bench_check [CURRENT] [BASELINE]";
      exit 2
  in
  let current, baseline =
    match (parse_file current_path, parse_file baseline_path) with
    | Ok c, Ok b -> (c, b)
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      exit 2
  in
  Printf.printf "%-40s %12s %12s   %s\n" "metric" "baseline" "current"
    "verdict";
  let failures = ref 0 in
  List.iter
    (fun (path, direction) ->
      match (lookup path baseline, lookup path current) with
      | Ok b, Ok c -> (
        match check direction ~baseline:b ~current:c with
        | Pass -> Printf.printf "%-40s %12.4g %12.4g   ok\n" path b c
        | Fail why ->
          incr failures;
          Printf.printf "%-40s %12.4g %12.4g   REGRESSION %s\n" path b c why)
      | Error msg, _ ->
        incr failures;
        Printf.printf "%-40s %12s %12s   FAIL baseline: %s\n" path "-" "-" msg
      | _, Error msg ->
        incr failures;
        Printf.printf "%-40s %12s %12s   FAIL current: %s\n" path "-" "-" msg)
    watched;
  if !failures > 0 then begin
    Printf.printf
      "\n%d metric(s) regressed beyond %.0f%%.  If intentional, refresh the \
       baseline with: dune exec bench -- --scale tiny --write-baseline\n"
      !failures (100.0 *. tolerance);
    exit 1
  end
  else Printf.printf "\nall %d watched metrics within tolerance\n"
      (List.length watched)
