(* MNA, DC operating point and transient analysis against analytic
   circuit theory *)
module C = Repro_circuit
module S = Repro_spice
module Source = C.Source
module Netlist = C.Netlist

let checkf tol msg = Alcotest.(check (float tol)) msg

let solve_dc net =
  let cm = S.Mna.compile net in
  (cm, S.Dcop.solve cm)

(* ---- DC ---- *)

let test_voltage_divider () =
  let cm, r = solve_dc (C.Topologies.voltage_divider ~r1:1e3 ~r2:3e3 ~vin:2.0) in
  checkf 1e-6 "divider" 1.5 (S.Dcop.node_voltage cm r "out");
  (* branch current: 2 V across 4 kOhm, flowing out of + terminal *)
  checkf 1e-8 "source current" (-5e-4) (S.Dcop.source_current cm r "Vin")

let test_series_parallel_resistors () =
  let net = Netlist.create () in
  Netlist.vsource net "V1" "a" "0" (Source.Dc 10.0);
  Netlist.resistor net "R1" "a" "b" 1e3;
  Netlist.resistor net "R2" "b" "0" 1e3;
  Netlist.resistor net "R3" "b" "0" 1e3;
  let cm, r = solve_dc net in
  (* 1k in series with 500: v(b) = 10 * 500/1500 *)
  checkf 1e-6 "parallel combination" (10.0 /. 3.0)
    (S.Dcop.node_voltage cm r "b")

let test_current_source () =
  let net = Netlist.create () in
  Netlist.isource net "I1" "0" "a" (Source.Dc 1e-3);
  Netlist.resistor net "R1" "a" "0" 2e3;
  let cm, r = solve_dc net in
  (* 1 mA pushed into node a through 2k: v = 2 V *)
  checkf 1e-6 "current source into resistor" 2.0
    (S.Dcop.node_voltage cm r "a")

let test_kcl_superposition () =
  (* V and I sources together: superposition check *)
  let net = Netlist.create () in
  Netlist.vsource net "V1" "a" "0" (Source.Dc 5.0);
  Netlist.resistor net "R1" "a" "b" 1e3;
  Netlist.resistor net "R2" "b" "0" 1e3;
  Netlist.isource net "I1" "0" "b" (Source.Dc 1e-3);
  let cm, r = solve_dc net in
  (* v(b) = 5*(1k||)/... : by superposition 2.5 + 0.5 = 3.0 *)
  checkf 1e-6 "superposition" 3.0 (S.Dcop.node_voltage cm r "b")

let test_caps_open_in_dc () =
  let net = Netlist.create () in
  Netlist.vsource net "V1" "a" "0" (Source.Dc 3.0);
  Netlist.resistor net "R1" "a" "b" 1e3;
  Netlist.capacitor net "C1" "b" "0" 1e-9;
  let cm, r = solve_dc net in
  (* no DC path through the cap: no current, so v(b) = v(a) *)
  checkf 1e-6 "cap open" 3.0 (S.Dcop.node_voltage cm r "b")

let test_inverter_vtc_monotone () =
  let out_at vin =
    let cm, r =
      solve_dc (C.Topologies.inverter ~wn:2e-6 ~wp:4e-6 ~l:0.12e-6 (Source.Dc vin))
    in
    S.Dcop.node_voltage cm r "out"
  in
  let prev = ref infinity in
  List.iter
    (fun vin ->
      let v = out_at vin in
      if v > !prev +. 1e-6 then Alcotest.failf "VTC not monotone at %g" vin;
      prev := v)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0; 1.2 ];
  Alcotest.(check bool) "low in -> high out" true (out_at 0.0 > 1.1);
  Alcotest.(check bool) "high in -> low out" true (out_at 1.2 < 0.1)

let test_common_source_gain () =
  (* gain magnitude = gm * Rl: finite-difference the DC transfer *)
  let out vb =
    let cm, r = solve_dc (C.Topologies.common_source ~w:10e-6 ~l:0.5e-6 ~rload:5e3 vb) in
    S.Dcop.node_voltage cm r "out"
  in
  let g = (out 0.61 -. out 0.59) /. 0.02 in
  Alcotest.(check bool) "inverting gain > 1" true (g < -1.0)

let test_dcop_seed_reuse () =
  let net = C.Topologies.voltage_divider ~r1:1e3 ~r2:1e3 ~vin:1.0 in
  let cm = S.Mna.compile net in
  let r1 = S.Dcop.solve cm in
  let r2 = S.Dcop.solve ~x0:r1.S.Dcop.solution cm in
  Alcotest.(check bool) "seeded solve converges fast" true
    (r2.S.Dcop.iterations <= r1.S.Dcop.iterations)

(* ---- transient ---- *)

let step_source =
  Source.Pulse
    { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-12; fall = 1e-12;
      width = 1.0; period = 0.0 }

let test_rc_step_response () =
  let net = C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:step_source in
  let cm = S.Mna.compile net in
  let res = S.Transient.run cm (S.Transient.default_options ~t_stop:5e-6 ~dt:5e-9) in
  let w = S.Transient.node_wave res "out" in
  (* compare against v(t) = 1 - exp(-t/tau) at several taus *)
  List.iter
    (fun k ->
      let t = k *. 1e-6 in
      let expected = 1.0 -. exp (-.k) in
      let got = S.Waveform.value_at w t in
      if Float.abs (got -. expected) > 2e-3 then
        Alcotest.failf "RC response at %g tau: %g vs %g" k got expected)
    [ 0.5; 1.0; 2.0; 3.0 ]

let test_rc_charge_conservation () =
  (* current through R equals C dv/dt: check final equilibrium *)
  let net = C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:step_source in
  let cm = S.Mna.compile net in
  let res = S.Transient.run cm (S.Transient.default_options ~t_stop:20e-6 ~dt:10e-9) in
  let w = S.Transient.node_wave res "out" in
  checkf 1e-3 "settles to input" 1.0
    (S.Waveform.value_at w 20e-6)

let test_rc_sine_attenuation () =
  (* at f = 1/(2 pi tau) the lowpass passes 1/sqrt(2) *)
  let tau = 1e-6 in
  let fc = 1.0 /. (2.0 *. Float.pi *. tau) in
  let net =
    C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9
      ~vin:(Source.Sin { offset = 0.0; ampl = 1.0; freq = fc; phase_deg = 0.0 })
  in
  let cm = S.Mna.compile net in
  let res =
    S.Transient.run cm (S.Transient.default_options ~t_stop:40e-6 ~dt:20e-9)
  in
  let w = S.Transient.node_wave res "out" in
  let settled = S.Waveform.window w ~t_start:20e-6 ~t_end:40e-6 in
  let amplitude = S.Waveform.peak_to_peak settled /. 2.0 in
  Alcotest.(check (float 0.02)) "-3 dB point" (1.0 /. sqrt 2.0) amplitude

let test_transient_ic_override () =
  let net = C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:(Source.Dc 0.0) in
  let cm = S.Mna.compile net in
  let opts =
    { (S.Transient.default_options ~t_stop:3e-6 ~dt:5e-9) with
      S.Transient.ic = [ ("out", 1.0) ] }
  in
  let res = S.Transient.run cm opts in
  let w = S.Transient.node_wave res "out" in
  (* discharges through R: v(tau) = exp(-1) *)
  checkf 5e-3 "discharge from IC" (exp (-1.0)) (S.Waveform.value_at w 1e-6)

let test_transient_records_branch_current () =
  let net = C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:step_source in
  let cm = S.Mna.compile net in
  let res = S.Transient.run cm (S.Transient.default_options ~t_stop:1e-6 ~dt:5e-9) in
  let i = S.Transient.source_current_wave res "Vin" in
  (* just after the step the full 1 V sits across R: i = -1 mA through the
     source (current convention: + to - inside the source) *)
  Alcotest.(check (float 5e-5)) "initial charging current" (-1e-3)
    (S.Waveform.value_at i 20e-9)

let test_ring_oscillator_oscillates () =
  let net = C.Topologies.ring_vco ~vctl:0.9 C.Topologies.vco_default in
  let cm = S.Mna.compile net in
  let opts =
    { (S.Transient.default_options ~t_stop:10e-9 ~dt:3e-12) with
      S.Transient.ic = [ ("s1", 1.2); ("s2", 0.0); ("s3", 1.2); ("s4", 0.0); ("s5", 0.6) ] }
  in
  let res = S.Transient.run cm opts in
  let w =
    S.Waveform.window (S.Transient.node_wave res "s1") ~t_start:5e-9 ~t_end:10e-9
  in
  match S.Waveform.frequency w ~level:0.6 with
  | Some f -> Alcotest.(check bool) "plausible frequency" true (f > 100e6 && f < 5e9)
  | None -> Alcotest.fail "ring did not oscillate"

let test_mna_invalid_resistor () =
  let net = Netlist.create () in
  Netlist.resistor net "R1" "a" "0" 0.0;
  Alcotest.(check bool) "zero resistor rejected" true
    (try ignore (S.Mna.compile net); false with Invalid_argument _ -> true)

let test_branch_lookup () =
  let net = C.Topologies.voltage_divider ~r1:1e3 ~r2:1e3 ~vin:1.0 in
  let cm = S.Mna.compile net in
  Alcotest.(check bool) "unknown source raises" true
    (try ignore (S.Mna.branch_index cm "nosuch"); false with Not_found -> true)

let test_transient_noise_jitter () =
  (* direct noisy simulation vs the analytic estimator: the injected
     thermal channel noise must produce measurable period jitter that is
     (a) far above the numerical floor of the clean run and (b) below the
     analytic total (which also includes flicker, not modelled by white
     injection) *)
  let p = C.Topologies.vco_default in
  let net = C.Topologies.ring_vco ~vctl:0.85 p in
  let cm = S.Mna.compile net in
  let run noise =
    let opts =
      { (S.Transient.default_options ~t_stop:40e-9 ~dt:4e-12) with
        S.Transient.ic =
          [ ("s1", 1.2); ("s2", 0.0); ("s3", 1.2); ("s4", 0.0); ("s5", 0.6) ];
        noise }
    in
    let res = S.Transient.run cm opts in
    let w =
      S.Waveform.window (S.Transient.node_wave res "s1") ~t_start:12e-9
        ~t_end:40e-9
    in
    S.Waveform.period_jitter_rms w ~level:0.6
  in
  match (run None, run (Some (Repro_util.Prng.create 17))) with
  | Some clean, Some noisy ->
    Alcotest.(check bool)
      (Printf.sprintf "noise dominates the floor (%.3g vs %.3g)" noisy clean)
      true
      (noisy > 3.0 *. clean);
    (match S.Vco_measure.characterise p with
    | Ok perf ->
      Alcotest.(check bool) "measured below the analytic total" true
        (noisy < perf.S.Vco_measure.jvco)
    | Error f -> Alcotest.failf "characterise: %s" (S.Vco_measure.failure_to_string f))
  | _ -> Alcotest.fail "jitter measurement failed"

(* Monte-Carlo engine plumbing *)
let test_monte_carlo_counts () =
  let net = C.Topologies.voltage_divider ~r1:1e3 ~r2:1e3 ~vin:1.0 in
  let prng = Repro_util.Prng.create 3 in
  let mc =
    S.Monte_carlo.run ~n:10 ~prng net (fun perturbed ->
        let cm = S.Mna.compile perturbed in
        let r = S.Dcop.solve cm in
        Ok (S.Dcop.node_voltage cm r "out"))
  in
  Alcotest.(check int) "all samples ok" 10 (Array.length mc.S.Monte_carlo.samples);
  Alcotest.(check int) "no failures" 0 mc.S.Monte_carlo.failures;
  (* resistor-only netlist: no MOS to perturb, so samples are identical *)
  Array.iter (fun v -> checkf 1e-6 "identical" 0.5 v) mc.S.Monte_carlo.samples

let test_monte_carlo_failures_counted () =
  let net = C.Topologies.voltage_divider ~r1:1e3 ~r2:1e3 ~vin:1.0 in
  let prng = Repro_util.Prng.create 3 in
  let count = ref 0 in
  let mc =
    S.Monte_carlo.run ~n:6 ~prng net (fun _ ->
        incr count;
        if !count mod 2 = 0 then Error "simulated failure" else Ok 1.0)
  in
  Alcotest.(check int) "3 failures" 3 mc.S.Monte_carlo.failures;
  Alcotest.(check int) "3 passes" 3 (Array.length mc.S.Monte_carlo.samples)

let test_spread_of_samples () =
  let s = S.Monte_carlo.spread_of_samples ~nominal:10.0 [| 9.0; 10.0; 11.0 |] in
  checkf 1e-9 "mean" 10.0 s.S.Monte_carlo.mc_mean;
  checkf 1e-9 "nominal kept" 10.0 s.S.Monte_carlo.nominal;
  checkf 1e-9 "rel spread" 0.1 s.S.Monte_carlo.rel_spread

(* ---- result-based solver API ---- *)

let test_solve_result_matches_solve () =
  let net = C.Topologies.voltage_divider ~r1:1e3 ~r2:3e3 ~vin:2.0 in
  let cm = S.Mna.compile net in
  (match S.Dcop.solve_result cm with
  | Error e -> Alcotest.failf "solve_result: %s" (S.Solver_error.to_string e)
  | Ok r ->
    Alcotest.(check bool) "same solution as the raising API" true
      (compare r (S.Dcop.solve cm) = 0));
  let opts = S.Transient.default_options ~t_stop:1e-6 ~dt:1e-8 in
  match S.Transient.run_result cm opts with
  | Error e -> Alcotest.failf "run_result: %s" (S.Solver_error.to_string e)
  | Ok res ->
    Alcotest.(check bool) "same transient as the raising API" true
      (compare res (S.Transient.run cm opts) = 0)

let test_solver_error_rendering () =
  Alcotest.(check string) "no-convergence"
    "dcop: direct, gmin and source stepping all failed"
    (S.Solver_error.to_string
       (S.Solver_error.No_convergence
          { stage = "dcop"; detail = "direct, gmin and source stepping all failed" }));
  Alcotest.(check string) "step underflow" "step failure at t=1e-09"
    (S.Solver_error.to_string (S.Solver_error.Step_underflow { time = 1e-9 }))

let suite =
  [
    Alcotest.test_case "voltage divider" `Quick test_voltage_divider;
    Alcotest.test_case "series/parallel" `Quick test_series_parallel_resistors;
    Alcotest.test_case "current source" `Quick test_current_source;
    Alcotest.test_case "superposition" `Quick test_kcl_superposition;
    Alcotest.test_case "caps open at DC" `Quick test_caps_open_in_dc;
    Alcotest.test_case "inverter VTC" `Quick test_inverter_vtc_monotone;
    Alcotest.test_case "common source gain" `Quick test_common_source_gain;
    Alcotest.test_case "dcop seeding" `Quick test_dcop_seed_reuse;
    Alcotest.test_case "RC step response" `Quick test_rc_step_response;
    Alcotest.test_case "RC settles" `Quick test_rc_charge_conservation;
    Alcotest.test_case "RC -3dB attenuation" `Quick test_rc_sine_attenuation;
    Alcotest.test_case "transient IC override" `Quick test_transient_ic_override;
    Alcotest.test_case "branch current recording" `Quick test_transient_records_branch_current;
    Alcotest.test_case "ring oscillates" `Quick test_ring_oscillator_oscillates;
    Alcotest.test_case "transient noise jitter" `Quick test_transient_noise_jitter;
    Alcotest.test_case "invalid resistor" `Quick test_mna_invalid_resistor;
    Alcotest.test_case "branch lookup" `Quick test_branch_lookup;
    Alcotest.test_case "monte carlo counts" `Quick test_monte_carlo_counts;
    Alcotest.test_case "monte carlo failures" `Quick test_monte_carlo_failures_counted;
    Alcotest.test_case "spread of samples" `Quick test_spread_of_samples;
    Alcotest.test_case "result-based solver API" `Quick test_solve_result_matches_solve;
    Alcotest.test_case "solver error rendering" `Quick test_solver_error_rendering;
  ]
