(* repro_engine: domain pool, deterministic parallel map, eval cache,
   telemetry — and the cross-stack determinism guarantee (NSGA-II /
   Monte-Carlo / yield identical at 1 vs 4 workers). *)

module E = Repro_engine
module Prng = Repro_util.Prng
module T = Repro_circuit.Topologies

let check = Alcotest.(check bool)

(* ---- config ------------------------------------------------------ *)

let test_config_jobs () =
  Unix.putenv "HIEROPT_JOBS" "3";
  E.Config.set_jobs 0;
  Alcotest.(check int) "env var honoured" 3 (E.Config.jobs ());
  E.Config.set_jobs 5;
  Alcotest.(check int) "override wins" 5 (E.Config.jobs ());
  E.Config.set_jobs 0;
  Unix.putenv "HIEROPT_JOBS" "not-a-number";
  check "garbage falls back to domain count" true (E.Config.jobs () >= 1);
  Unix.putenv "HIEROPT_JOBS" ""

let test_config_flag () =
  Unix.putenv "HIEROPT_FULL" "1";
  check "set" true (E.Config.full ());
  Unix.putenv "HIEROPT_FULL" "0";
  check "zero is off" false (E.Config.full ());
  Unix.putenv "HIEROPT_FULL" "";
  check "empty is off" false (E.Config.full ())

(* ---- pool / parmap ----------------------------------------------- *)

let test_parmap_matches_serial () =
  let input = Array.init 1000 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expect = Array.map f input in
  List.iter
    (fun size ->
      E.Pool.with_pool ~size (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "map @ %d workers" size)
            expect
            (E.Parmap.map ~pool f input);
          Alcotest.(check (array int))
            (Printf.sprintf "init @ %d workers" size)
            expect
            (E.Parmap.init ~pool 1000 f)))
    [ 1; 2; 4 ]

let test_parmap_order_preserved () =
  E.Pool.with_pool ~size:4 (fun pool ->
      let out = E.Parmap.mapi ~pool (fun i x -> (i, x * 2)) [| 5; 6; 7; 8 |] in
      Alcotest.(check (list (pair int int)))
        "indexed order"
        [ (0, 10); (1, 12); (2, 14); (3, 16) ]
        (Array.to_list out))

let test_parmap_empty_and_exception () =
  E.Pool.with_pool ~size:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (E.Parmap.map ~pool succ [||]);
      Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
          ignore
            (E.Parmap.map ~pool
               (fun i -> if i = 17 then failwith "boom" else i)
               (Array.init 64 Fun.id))))

let test_parmap_nested () =
  (* nested parallel regions serialise instead of deadlocking *)
  E.Pool.with_pool ~size:4 (fun pool ->
      let out =
        E.Parmap.map ~pool
          (fun i ->
            Array.fold_left ( + ) 0
              (E.Parmap.map ~pool (fun j -> i + j) (Array.init 8 Fun.id)))
          (Array.init 16 Fun.id)
      in
      Alcotest.(check (array int))
        "nested result"
        (Array.init 16 (fun i -> (8 * i) + 28))
        out)

let test_pool_shutdown () =
  let pool = E.Pool.create ~size:3 () in
  Alcotest.(check int) "size" 3 (E.Pool.size pool);
  E.Pool.shutdown pool;
  E.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      E.Pool.submit pool (fun () -> ()))

let test_map_seeded_deterministic () =
  let draw stream () = Prng.uniform stream in
  let run size =
    E.Pool.with_pool ~size (fun pool ->
        E.Parmap.map_seeded ~pool ~prng:(Prng.create 99) draw
          (Array.make 50 ()))
  in
  let serial = run 1 and parallel = run 4 in
  check "seeded map identical at 1 vs 4 workers" true (serial = parallel);
  (* and identical to the historical serial split-per-iteration idiom *)
  let prng = Prng.create 99 in
  let reference =
    Array.init 50 (fun _ ->
        let stream = Prng.split prng in
        Prng.uniform stream)
  in
  check "matches split-per-iteration loop" true (serial = reference)

(* ---- cache ------------------------------------------------------- *)

let test_cache_key_canonical () =
  let k1 = E.Cache.key ~kind:"m" [| 1.0; 0.0 |] in
  let k2 = E.Cache.key ~kind:"m" [| 1.0; -0.0 |] in
  let k3 = E.Cache.key ~kind:"m" [| 1.0; nan |] in
  let k4 = E.Cache.key ~kind:"m" [| 1.0; Float.nan |] in
  let cache = E.Cache.create () in
  E.Cache.store cache k1 [| 42.0 |];
  check "-0.0 aliases 0.0" true (E.Cache.find cache k2 = Some [| 42.0 |]);
  E.Cache.store cache k3 [| 7.0 |];
  check "nan payloads collapse" true (E.Cache.find cache k4 = Some [| 7.0 |]);
  check "kind distinguishes" true
    (E.Cache.find cache (E.Cache.key ~kind:"other" [| 1.0; 0.0 |]) = None);
  check "sample distinguishes" true
    (E.Cache.find cache (E.Cache.key ~sample:3 ~kind:"m" [| 1.0; 0.0 |])
    = None);
  check "vector distinguishes" true
    (E.Cache.find cache (E.Cache.key ~kind:"m" [| 1.0; 2.0 |]) = None);
  Alcotest.(check (option string))
    "kind accessor" (Some "m")
    (Some (E.Cache.key_kind k1));
  check "sample accessor" true
    (E.Cache.key_sample k1 = None
    && E.Cache.key_sample (E.Cache.key ~sample:3 ~kind:"m" [||]) = Some 3)

let test_cache_counters_eviction () =
  let cache = E.Cache.create ~capacity:4 () in
  for i = 0 to 5 do
    E.Cache.store cache
      (E.Cache.key ~kind:"k" [| float_of_int i |])
      [| float_of_int (i * 10) |]
  done;
  Alcotest.(check int) "capacity respected" 4 (E.Cache.length cache);
  Alcotest.(check int) "evictions counted" 2 (E.Cache.evictions cache);
  check "oldest evicted" true
    (E.Cache.find cache (E.Cache.key ~kind:"k" [| 0.0 |]) = None);
  check "newest kept" true
    (E.Cache.find cache (E.Cache.key ~kind:"k" [| 5.0 |]) = Some [| 50.0 |]);
  Alcotest.(check int) "hits" 1 (E.Cache.hits cache);
  Alcotest.(check int) "misses" 1 (E.Cache.misses cache);
  let v =
    E.Cache.find_or_compute cache
      (E.Cache.key ~kind:"k" [| 9.0 |])
      (fun () -> [| 90.0 |])
  in
  check "find_or_compute computes" true (v = [| 90.0 |]);
  check "then caches" true
    (E.Cache.find cache (E.Cache.key ~kind:"k" [| 9.0 |]) = Some [| 90.0 |])

let test_cache_roundtrip () =
  let cache = E.Cache.create () in
  let entries =
    [
      (E.Cache.key ~kind:"vco" [| 1.5e-6; 0.12e-6 |], [| 1.0; -2.5; 3.25e-12 |]);
      (E.Cache.key ~sample:7 ~kind:"mc" [| 0.0 |], [| infinity; 1e308 |]);
      (E.Cache.key ~kind:"empty" [||], [||]);
    ]
  in
  List.iter (fun (k, v) -> E.Cache.store cache k v) entries;
  let path = Filename.temp_file "hieropt" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      E.Cache.save cache path;
      let loaded = E.Cache.load path in
      Alcotest.(check int) "all entries survive" 3 (E.Cache.length loaded);
      List.iter
        (fun (k, v) ->
          check "value roundtrips losslessly" true
            (E.Cache.find loaded k = Some v))
        entries;
      check "load_if_exists hit" true (E.Cache.load_if_exists path <> None));
  check "load_if_exists miss" true
    (E.Cache.load_if_exists "/nonexistent/eval.cache" = None)

(* ---- telemetry --------------------------------------------------- *)

let test_telemetry () =
  E.Telemetry.reset ();
  E.Telemetry.incr "a";
  E.Telemetry.incr ~by:4 "a";
  E.Telemetry.set "b" 9;
  Alcotest.(check int) "incr" 5 (E.Telemetry.counter "a");
  Alcotest.(check int) "set" 9 (E.Telemetry.counter "b");
  Alcotest.(check int) "unknown reads 0" 0 (E.Telemetry.counter "nope");
  let x = E.Telemetry.time "t" (fun () -> 41 + 1) in
  Alcotest.(check int) "time passes result through" 42 x;
  check "timer accumulated" true (E.Telemetry.timer "t" >= 0.0);
  E.Telemetry.warn ~key:"w" "threshold %d exceeded" 3;
  Alcotest.(check int) "warn counts" 1 (E.Telemetry.counter "w");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "line mentions counters" true (contains (E.Telemetry.line ()) "a=5");
  E.Telemetry.reset ();
  Alcotest.(check int) "reset" 0 (E.Telemetry.counter "a")

let test_telemetry_warn_atomic_lines () =
  (* warnings racing in from several domains must never tear: redirect
     stderr to a file, hammer it, and check every line came out whole *)
  E.Telemetry.reset ();
  let path = Filename.temp_file "hieropt_warn" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  let payload = String.make 160 'x' in
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  flush stderr;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    (fun () ->
      let doms =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to 25 do
                  E.Telemetry.warn ~key:"warn.test" "d%d i%d %s" d i payload
                done))
      in
      List.iter Domain.join doms;
      flush stderr);
  Alcotest.(check int) "all warns counted" 100 (E.Telemetry.counter "warn.test");
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "100 whole lines" 100 (List.length !lines);
  let prefix = "WARNING [warn.test]: d" in
  List.iter
    (fun line ->
      let n = String.length line and np = String.length prefix in
      let starts = n >= np && String.sub line 0 np = prefix in
      let ends =
        n >= 160 && String.sub line (n - 160) 160 = payload
      in
      if not (starts && ends) then
        Alcotest.failf "torn warning line: %S" line)
    !lines;
  E.Telemetry.reset ()

let test_telemetry_concurrent_snapshot () =
  (* totals must be conserved under concurrent incr/add_time, and
     snapshots taken mid-flight must be internally consistent *)
  E.Telemetry.reset ();
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          List.iter
            (fun (_, v) ->
              match v with
              | `Counter c -> assert (c >= 0)
              | `Timer t -> assert (t >= 0.0))
            (E.Telemetry.snapshot ())
        done)
  in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              E.Telemetry.incr "snap.counter";
              E.Telemetry.add_time "snap.timer" 0.001
            done))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "counter conserved" 4000
    (E.Telemetry.counter "snap.counter");
  (* identical addends commute exactly in floating point *)
  Alcotest.(check (float 1e-9)) "timer conserved" 4.0
    (E.Telemetry.timer "snap.timer");
  (match List.assoc_opt "snap.counter" (E.Telemetry.snapshot ()) with
  | Some (`Counter 4000) -> ()
  | _ -> Alcotest.fail "snapshot disagrees with counter accessor");
  E.Telemetry.reset ()

let test_telemetry_sharded_set () =
  (* counters shard per domain; [set] is absolute, so increments that
     landed in other domains' shards must not resurface after it *)
  E.Telemetry.reset ();
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> E.Telemetry.incr "shard.set" ~by:100))
  in
  List.iter Domain.join writers;
  Alcotest.(check int) "incrs merged across shards" 400
    (E.Telemetry.counter "shard.set");
  E.Telemetry.set "shard.set" 7;
  Alcotest.(check int) "set is absolute" 7 (E.Telemetry.counter "shard.set");
  let d = Domain.spawn (fun () -> E.Telemetry.incr "shard.set") in
  Domain.join d;
  Alcotest.(check int) "accumulation resumes after set" 8
    (E.Telemetry.counter "shard.set");
  E.Telemetry.reset ()

(* ---- cross-stack determinism: 1 worker vs 4 workers -------------- *)

let zdt1 =
  Repro_moo.Problem.create ~name:"zdt1-engine"
    ~bounds:(Array.make 6 (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun v ->
      let f1 = v.(0) in
      let s = ref 0.0 in
      for i = 1 to 5 do
        s := !s +. v.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. 5.0) in
      {
        Repro_moo.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = 0.0;
      })

let population_fingerprint pop =
  Array.to_list pop
  |> List.concat_map (fun ind ->
         Array.to_list ind.Repro_moo.Nsga2.x
         @ Array.to_list ind.Repro_moo.Nsga2.evaluation.Repro_moo.Problem.objectives)

let test_nsga2_deterministic_under_parallelism () =
  let optimise evaluator =
    Repro_moo.Nsga2.optimise
      ~options:
        {
          Repro_moo.Nsga2.default_options with
          population = 12;
          generations = 3;
        }
      ?evaluator zdt1 (Prng.create 4242)
  in
  let serial = optimise None in
  let run size =
    E.Pool.with_pool ~size (fun pool ->
        let cache = E.Cache.create () in
        let ev = Repro_moo.Problem.parallel_evaluator ~pool ~cache () in
        let pop = optimise (Some ev) in
        check "cache saw traffic" true (E.Cache.misses cache > 0);
        pop)
  in
  Alcotest.(check (list (float 0.0)))
    "serial = 1 worker"
    (population_fingerprint serial)
    (population_fingerprint (run 1));
  Alcotest.(check (list (float 0.0)))
    "serial = 4 workers"
    (population_fingerprint serial)
    (population_fingerprint (run 4));
  (* SPEA2 goes through the same injected-evaluator path *)
  let spea evaluator =
    Repro_moo.Spea2.optimise
      ~options:
        {
          Repro_moo.Spea2.default_options with
          population = 12;
          archive = 8;
          generations = 2;
        }
      ?evaluator zdt1 (Prng.create 17)
  in
  let spea_serial = spea None in
  E.Pool.with_pool ~size:4 (fun pool ->
      let ev = Repro_moo.Problem.parallel_evaluator ~pool () in
      Alcotest.(check (list (float 0.0)))
        "spea2 serial = 4 workers"
        (population_fingerprint spea_serial)
        (population_fingerprint (spea (Some ev))))

let test_monte_carlo_deterministic_under_parallelism () =
  let net = T.ring_vco ~vctl:0.5 T.vco_default in
  let trial perturbed =
    let s = Repro_circuit.Netlist.to_spice perturbed in
    if Hashtbl.hash s mod 5 = 0 then Error "synthetic failure" else Ok s
  in
  let run size =
    E.Pool.with_pool ~size (fun pool ->
        Repro_spice.Monte_carlo.run ~pool ~n:40 ~prng:(Prng.create 2009) net
          trial)
  in
  let a = run 1 and b = run 4 in
  check "samples byte-identical" true
    (a.Repro_spice.Monte_carlo.samples = b.Repro_spice.Monte_carlo.samples);
  Alcotest.(check int)
    "failures identical" a.Repro_spice.Monte_carlo.failures
    b.Repro_spice.Monte_carlo.failures;
  Alcotest.(check int) "all seeds used" 40 a.Repro_spice.Monte_carlo.seeds_used

let test_monte_carlo_degenerate_warning () =
  E.Telemetry.reset ();
  let net = T.ring_vco ~vctl:0.5 T.vco_default in
  let r =
    Repro_spice.Monte_carlo.run ~n:10 ~prng:(Prng.create 1) net (fun _ ->
        Error "dead")
  in
  Alcotest.(check int) "all trials failed" 10 r.Repro_spice.Monte_carlo.failures;
  Alcotest.(check int)
    "loud warning recorded" 1
    (E.Telemetry.counter "mc.degenerate_runs");
  (* healthy runs stay quiet *)
  ignore
    (Repro_spice.Monte_carlo.run ~n:10 ~prng:(Prng.create 1) net (fun _ ->
         Ok ()));
  Alcotest.(check int)
    "no new warning" 1
    (E.Telemetry.counter "mc.degenerate_runs");
  E.Telemetry.reset ()

let test_yield_deterministic_under_parallelism () =
  let row =
    match
      Hieropt.Pll_problem.evaluate_point Test_core.pll_cfg ~kvco:600e6
        ~ivco:6e-3 ~c1:10e-12 ~c2:0.5e-12 ~r1:4e3
    with
    | Ok row -> row
    | Error e -> Alcotest.fail ("evaluate_point failed: " ^ e)
  in
  let run size =
    E.Pool.with_pool ~size (fun pool ->
        Hieropt.Yield.behavioural ~n:24 ~pool ~prng:(Prng.create 55)
          Test_core.pll_cfg row)
  in
  check "yield estimate identical at 1 vs 4 workers" true (run 1 = run 4)

let suite =
  [
    Alcotest.test_case "config: jobs resolution" `Quick test_config_jobs;
    Alcotest.test_case "config: HIEROPT_FULL flag" `Quick test_config_flag;
    Alcotest.test_case "parmap matches serial map" `Quick
      test_parmap_matches_serial;
    Alcotest.test_case "parmap preserves order" `Quick
      test_parmap_order_preserved;
    Alcotest.test_case "parmap empty + exception" `Quick
      test_parmap_empty_and_exception;
    Alcotest.test_case "parmap nested regions serialise" `Quick
      test_parmap_nested;
    Alcotest.test_case "pool shutdown" `Quick test_pool_shutdown;
    Alcotest.test_case "seeded map worker-count independent" `Quick
      test_map_seeded_deterministic;
    Alcotest.test_case "cache key canonicalisation" `Quick
      test_cache_key_canonical;
    Alcotest.test_case "cache counters + FIFO eviction" `Quick
      test_cache_counters_eviction;
    Alcotest.test_case "cache save/load roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "telemetry registry" `Quick test_telemetry;
    Alcotest.test_case "telemetry warn lines are atomic" `Quick
      test_telemetry_warn_atomic_lines;
    Alcotest.test_case "telemetry snapshot under concurrency" `Quick
      test_telemetry_concurrent_snapshot;
    Alcotest.test_case "telemetry sharded set semantics" `Quick
      test_telemetry_sharded_set;
    Alcotest.test_case "nsga2/spea2 identical at 1 vs 4 workers" `Quick
      test_nsga2_deterministic_under_parallelism;
    Alcotest.test_case "monte-carlo identical at 1 vs 4 workers" `Quick
      test_monte_carlo_deterministic_under_parallelism;
    Alcotest.test_case "monte-carlo degenerate-run warning" `Quick
      test_monte_carlo_degenerate_warning;
    Alcotest.test_case "yield identical at 1 vs 4 workers" `Quick
      test_yield_deterministic_under_parallelism;
  ]
