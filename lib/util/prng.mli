(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (NSGA-II, Monte-Carlo process
    sampling, behavioural jitter injection) threads an explicit [t] so that
    experiments are bit-reproducible from a single integer seed.  The
    generator is xoshiro256++ seeded through splitmix64, which gives
    high-quality 64-bit streams and cheap stream splitting. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Two generators
    created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t].
    Used to give each Monte-Carlo sample / GA island its own stream. *)

val split_n : t -> int -> t array
(** [split_n t n] pre-splits [n] independent child streams in index
    order, advancing [t] exactly [n] times.  This is the primitive the
    parallel evaluation engine uses: streams are split {e before}
    dispatch so results are bit-identical for any worker count. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps of the underlying xoshiro256
    sequence (the standard jump polynomial), yielding non-overlapping
    subsequences when interleaved with {!copy}.  Any buffered Gaussian
    deviate is discarded. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copy and the original then
    evolve independently). *)

val to_bits : t -> int64 array
(** [to_bits t] captures the complete generator state (including any
    buffered Gaussian deviate) as 6 opaque words, for checkpointing.
    [of_bits (to_bits t)] restores a generator whose future output is
    bit-identical to [t]'s. *)

val of_bits : int64 array -> t option
(** Inverse of {!to_bits}; [None] when the word array is not a valid
    capture (wrong length or malformed spare flag). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] draws uniformly from [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] draws uniformly from [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val normal : t -> float
(** Standard normal draw (Box-Muller, both antithetic values used). *)

val gaussian : t -> mean:float -> sigma:float -> float
(** [gaussian t ~mean ~sigma] draws from N(mean, sigma^2). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array.
    @raise Invalid_argument on an empty array. *)
