module P = Repro_moo.Problem
module Pareto = Repro_moo.Pareto
module Nsga2 = Repro_moo.Nsga2
module Baselines = Repro_moo.Baselines

let ev ?(cv = 0.0) objectives = { P.objectives; constraint_violation = cv }

(* ---- dominance ---- *)

let test_dominance_basic () =
  Alcotest.(check bool) "strictly better dominates" true
    (Pareto.compare_dominance (ev [| 1.0; 1.0 |]) (ev [| 2.0; 2.0 |])
    = Pareto.Dominates);
  Alcotest.(check bool) "strictly worse dominated" true
    (Pareto.compare_dominance (ev [| 3.0; 3.0 |]) (ev [| 2.0; 2.0 |])
    = Pareto.Dominated);
  Alcotest.(check bool) "trade-off incomparable" true
    (Pareto.compare_dominance (ev [| 1.0; 3.0 |]) (ev [| 3.0; 1.0 |])
    = Pareto.Incomparable);
  Alcotest.(check bool) "equal incomparable" true
    (Pareto.compare_dominance (ev [| 1.0; 1.0 |]) (ev [| 1.0; 1.0 |])
    = Pareto.Incomparable);
  Alcotest.(check bool) "weak dominance counts" true
    (Pareto.compare_dominance (ev [| 1.0; 2.0 |]) (ev [| 1.0; 3.0 |])
    = Pareto.Dominates)

let test_constraint_domination () =
  Alcotest.(check bool) "feasible beats infeasible" true
    (Pareto.compare_dominance (ev [| 9.0; 9.0 |]) (ev ~cv:1.0 [| 0.0; 0.0 |])
    = Pareto.Dominates);
  Alcotest.(check bool) "lower violation wins" true
    (Pareto.compare_dominance (ev ~cv:0.5 [| 9.0; 9.0 |]) (ev ~cv:1.0 [| 0.0; 0.0 |])
    = Pareto.Dominates);
  Alcotest.(check bool) "equal violation incomparable" true
    (Pareto.compare_dominance (ev ~cv:1.0 [| 9.0 |]) (ev ~cv:1.0 [| 0.0 |])
    = Pareto.Incomparable)

let test_non_dominated_sort () =
  let evals =
    [| ev [| 1.0; 4.0 |]; ev [| 2.0; 3.0 |]; ev [| 3.0; 3.5 |];
       ev [| 4.0; 1.0 |]; ev [| 5.0; 5.0 |] |]
  in
  let ranks, fronts = Pareto.non_dominated_sort evals in
  Alcotest.(check (array int)) "ranks" [| 0; 0; 1; 0; 2 |] ranks;
  Alcotest.(check int) "3 fronts" 3 (Array.length fronts);
  Alcotest.(check (array int)) "front0" [| 0; 1; 3 |] fronts.(0)

let test_sort_all_equal () =
  let evals = Array.make 4 (ev [| 1.0; 1.0 |]) in
  let ranks, fronts = Pareto.non_dominated_sort evals in
  Alcotest.(check (array int)) "all rank 0" [| 0; 0; 0; 0 |] ranks;
  Alcotest.(check int) "one front" 1 (Array.length fronts)

let test_crowding () =
  let evals =
    [| ev [| 0.0; 4.0 |]; ev [| 1.0; 2.0 |]; ev [| 2.0; 1.5 |]; ev [| 4.0; 0.0 |] |]
  in
  let front = [| 0; 1; 2; 3 |] in
  let d = Pareto.crowding_distance evals front in
  Alcotest.(check bool) "boundaries infinite" true
    (d.(0) = infinity && d.(3) = infinity);
  Alcotest.(check bool) "interior finite" true
    (Float.is_finite d.(1) && Float.is_finite d.(2));
  Alcotest.(check bool) "interior positive" true (d.(1) > 0.0 && d.(2) > 0.0)

let test_crowding_small_front () =
  let evals = [| ev [| 0.0; 1.0 |]; ev [| 1.0; 0.0 |] |] in
  let d = Pareto.crowding_distance evals [| 0; 1 |] in
  Alcotest.(check bool) "pairs infinite" true (d.(0) = infinity && d.(1) = infinity)

let test_hypervolume_2d () =
  (* single point (1,1) vs ref (2,2): area 1 *)
  Alcotest.(check (float 1e-12)) "single point" 1.0
    (Pareto.hypervolume_2d ~reference:[| 2.0; 2.0 |] [| ev [| 1.0; 1.0 |] |]);
  (* staircase of two points *)
  Alcotest.(check (float 1e-12)) "two points" 3.0
    (Pareto.hypervolume_2d ~reference:[| 3.0; 3.0 |]
       [| ev [| 1.0; 2.0 |]; ev [| 2.0; 1.0 |] |]);
  (* dominated point must not add volume *)
  Alcotest.(check (float 1e-12)) "dominated adds nothing" 3.0
    (Pareto.hypervolume_2d ~reference:[| 3.0; 3.0 |]
       [| ev [| 1.0; 2.0 |]; ev [| 2.0; 1.0 |]; ev [| 2.5; 2.5 |] |]);
  (* out-of-reference point ignored *)
  Alcotest.(check (float 1e-12)) "outside ref ignored" 0.0
    (Pareto.hypervolume_2d ~reference:[| 1.0; 1.0 |] [| ev [| 2.0; 0.5 |] |])

let test_hypervolume_mc_agrees () =
  let evals = [| ev [| 1.0; 2.0 |]; ev [| 2.0; 1.0 |] |] in
  let exact = Pareto.hypervolume_2d ~reference:[| 3.0; 3.0 |] evals in
  let prng = Repro_util.Prng.create 17 in
  let approx =
    Pareto.hypervolume_mc ~samples:40000 ~prng ~reference:[| 3.0; 3.0 |]
      ~ideal:[| 0.0; 0.0 |] evals
  in
  Alcotest.(check bool) "MC close to exact" true
    (Float.abs (approx -. exact) < 0.15)

let test_filter_front () =
  let tagged =
    [| ("a", ev [| 1.0; 2.0 |]); ("b", ev [| 2.0; 1.0 |]);
       ("c", ev [| 3.0; 3.0 |]); ("d", ev ~cv:2.0 [| 0.0; 0.0 |]) |]
  in
  let front = Pareto.filter_front tagged in
  let names = Array.to_list (Array.map fst front) in
  Alcotest.(check (list string)) "feasible non-dominated" [ "a"; "b" ] names

(* ---- problems ---- *)

let sphere n =
  P.create ~name:"sphere"
    ~bounds:(Array.make n (-5.0, 5.0))
    ~objective_names:[| "f" |]
    (fun x ->
      ev [| Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x |])

let zdt1 n =
  P.create ~name:"zdt1"
    ~bounds:(Array.make n (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun x ->
      let f1 = x.(0) in
      let s = ref 0.0 in
      for i = 1 to n - 1 do
        s := !s +. x.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. float_of_int (n - 1)) in
      ev [| f1; g *. (1.0 -. sqrt (f1 /. g)) |])

let constrained_problem =
  (* minimise (x, y) subject to x + y >= 1 *)
  P.create ~name:"constrained"
    ~bounds:[| (0.0, 2.0); (0.0, 2.0) |]
    ~objective_names:[| "x"; "y" |]
    (fun x ->
      {
        P.objectives = [| x.(0); x.(1) |];
        constraint_violation = Float.max 0.0 (1.0 -. (x.(0) +. x.(1)));
      })

let test_problem_validation () =
  Alcotest.(check bool) "empty bounds" true
    (try
       ignore (P.create ~name:"x" ~bounds:[||] ~objective_names:[| "f" |] (fun _ -> ev [| 0.0 |]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inverted bounds" true
    (try
       ignore
         (P.create ~name:"x" ~bounds:[| (1.0, 0.0) |] ~objective_names:[| "f" |]
            (fun _ -> ev [| 0.0 |]));
       false
     with Invalid_argument _ -> true)

let test_problem_clamp_random () =
  let p = sphere 3 in
  let clamped = P.clamp p [| -10.0; 0.0; 10.0 |] in
  Alcotest.(check (array (float 1e-12))) "clamped" [| -5.0; 0.0; 5.0 |] clamped;
  let prng = Repro_util.Prng.create 1 in
  for _ = 1 to 100 do
    let x = P.random_point p prng in
    Array.iter
      (fun v -> if v < -5.0 || v >= 5.0 then Alcotest.fail "random outside box")
      x
  done

(* ---- NSGA-II ---- *)

let test_nsga2_converges_zdt1 () =
  let prng = Repro_util.Prng.create 7 in
  let pop =
    Nsga2.optimise
      ~options:{ Nsga2.default_options with population = 60; generations = 60 }
      (zdt1 10) prng
  in
  let front = Nsga2.pareto_front pop in
  Alcotest.(check bool) "front is large" true (Array.length front > 20);
  let errs =
    Array.map
      (fun ind ->
        let o = ind.Nsga2.evaluation.P.objectives in
        Float.abs (o.(1) -. (1.0 -. sqrt o.(0))))
      front
  in
  Alcotest.(check bool) "front near the analytic Pareto curve" true
    (Repro_util.Stats.mean errs < 0.05)

let test_nsga2_deterministic () =
  let run seed =
    let prng = Repro_util.Prng.create seed in
    let pop =
      Nsga2.optimise
        ~options:{ Nsga2.default_options with population = 20; generations = 5 }
        (zdt1 5) prng
    in
    Array.map (fun ind -> ind.Nsga2.evaluation.P.objectives) pop
  in
  Alcotest.(check bool) "same seed same run" true (run 3 = run 3);
  Alcotest.(check bool) "different seeds differ" true (run 3 <> run 4)

let test_nsga2_respects_constraints () =
  let prng = Repro_util.Prng.create 11 in
  let pop =
    Nsga2.optimise
      ~options:{ Nsga2.default_options with population = 40; generations = 40 }
      constrained_problem prng
  in
  let front = Nsga2.pareto_front pop in
  Alcotest.(check bool) "nonempty feasible front" true (Array.length front > 0);
  Array.iter
    (fun ind ->
      let o = ind.Nsga2.evaluation.P.objectives in
      (* feasible front should hug the x + y = 1 line *)
      if o.(0) +. o.(1) < 0.999 then Alcotest.fail "constraint violated";
      if o.(0) +. o.(1) > 1.2 then Alcotest.fail "front far from the active constraint")
    front

let test_nsga2_generation_callback () =
  let prng = Repro_util.Prng.create 2 in
  let calls = ref 0 in
  ignore
    (Nsga2.optimise
       ~options:{ Nsga2.default_options with population = 10; generations = 4 }
       ~on_generation:(fun _ _ -> incr calls)
       (zdt1 3) prng);
  Alcotest.(check int) "initial + per-generation callbacks" 5 !calls

let test_nsga2_bad_options () =
  Alcotest.(check bool) "odd population rejected" true
    (try
       ignore
         (Nsga2.optimise
            ~options:{ Nsga2.default_options with population = 7 }
            (zdt1 3)
            (Repro_util.Prng.create 1));
       false
     with Invalid_argument _ -> true)

let test_pareto_front_dedup () =
  let x = [| 0.5 |] in
  let e = ev [| 1.0; 1.0 |] in
  let pop = [| { Nsga2.x; evaluation = e }; { Nsga2.x; evaluation = e } |] in
  Alcotest.(check int) "duplicates collapsed" 1
    (Array.length (Nsga2.pareto_front pop))

(* ---- baselines ---- *)

let test_random_search_count () =
  let prng = Repro_util.Prng.create 5 in
  let pop = Baselines.random_search ~evaluations:50 (zdt1 5) prng in
  Alcotest.(check int) "all evaluations returned" 50 (Array.length pop)

let test_weighted_sum_minimises_sphere () =
  let prng = Repro_util.Prng.create 5 in
  let best =
    Baselines.weighted_sum_ga
      ~options:{ Baselines.default_ws_options with generations = 60 }
      ~weights:[| 1.0 |] ~normalise:[| 1.0 |] (sphere 4) prng
  in
  Alcotest.(check bool) "sphere minimum approached" true
    (best.Nsga2.evaluation.P.objectives.(0) < 0.5)

let test_nsga2_beats_random_on_zdt1 () =
  let budget = 1200 in
  let nsga_pop =
    Nsga2.optimise
      ~options:{ Nsga2.default_options with population = 40; generations = 30 }
      (zdt1 8) (Repro_util.Prng.create 21)
  in
  let rs_pop =
    Baselines.random_search ~evaluations:budget (zdt1 8)
      (Repro_util.Prng.create 22)
  in
  let hv pop =
    Pareto.hypervolume_2d ~reference:[| 1.1; 7.0 |]
      (Nsga2.evaluations (Nsga2.pareto_front pop))
  in
  Alcotest.(check bool) "NSGA-II hypervolume wins at equal budget" true
    (hv nsga_pop > hv rs_pop)

(* ---- properties ---- *)

let eval_gen =
  QCheck.Gen.(
    let* n = int_range 2 3 in
    let* objs = array_size (return n) (float_range 0.0 10.0) in
    return (ev objs))

let evals_gen = QCheck.Gen.(array_size (int_range 2 25) eval_gen)

let prop_dominance_antisymmetric =
  QCheck.Test.make ~name:"dominance antisymmetry" ~count:300
    (QCheck.make QCheck.Gen.(pair eval_gen eval_gen))
    (fun (a, b) ->
      if Array.length a.P.objectives <> Array.length b.P.objectives then true
      else
        match (Pareto.compare_dominance a b, Pareto.compare_dominance b a) with
        | Pareto.Dominates, Pareto.Dominated
        | Pareto.Dominated, Pareto.Dominates
        | Pareto.Incomparable, Pareto.Incomparable -> true
        | _ -> false)

let prop_front0_mutually_incomparable =
  QCheck.Test.make ~name:"front 0 members don't dominate each other" ~count:200
    (QCheck.make evals_gen)
    (fun evals ->
      let same_dim =
        Array.for_all
          (fun (e : P.evaluation) ->
            Array.length e.P.objectives = Array.length evals.(0).P.objectives)
          evals
      in
      QCheck.assume same_dim;
      let front = Pareto.non_dominated evals in
      Array.for_all
        (fun i ->
          Array.for_all
            (fun j ->
              i = j
              || Pareto.compare_dominance evals.(i) evals.(j)
                 <> Pareto.Dominates)
            front)
        front)

let prop_ranks_consistent =
  QCheck.Test.make ~name:"dominator has rank <= dominated" ~count:200
    (QCheck.make evals_gen)
    (fun evals ->
      let same_dim =
        Array.for_all
          (fun (e : P.evaluation) ->
            Array.length e.P.objectives = Array.length evals.(0).P.objectives)
          evals
      in
      QCheck.assume same_dim;
      let ranks, _ = Pareto.non_dominated_sort evals in
      let n = Array.length evals in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Pareto.compare_dominance evals.(i) evals.(j) = Pareto.Dominates
          then if ranks.(i) >= ranks.(j) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "dominance basics" `Quick test_dominance_basic;
    Alcotest.test_case "constraint domination" `Quick test_constraint_domination;
    Alcotest.test_case "non-dominated sort" `Quick test_non_dominated_sort;
    Alcotest.test_case "sort all equal" `Quick test_sort_all_equal;
    Alcotest.test_case "crowding distance" `Quick test_crowding;
    Alcotest.test_case "crowding small front" `Quick test_crowding_small_front;
    Alcotest.test_case "hypervolume 2d" `Quick test_hypervolume_2d;
    Alcotest.test_case "hypervolume MC" `Quick test_hypervolume_mc_agrees;
    Alcotest.test_case "filter front" `Quick test_filter_front;
    Alcotest.test_case "problem validation" `Quick test_problem_validation;
    Alcotest.test_case "clamp and random point" `Quick test_problem_clamp_random;
    Alcotest.test_case "NSGA-II converges on ZDT1" `Quick test_nsga2_converges_zdt1;
    Alcotest.test_case "NSGA-II deterministic" `Quick test_nsga2_deterministic;
    Alcotest.test_case "NSGA-II constraints" `Quick test_nsga2_respects_constraints;
    Alcotest.test_case "generation callback" `Quick test_nsga2_generation_callback;
    Alcotest.test_case "bad options" `Quick test_nsga2_bad_options;
    Alcotest.test_case "front dedup" `Quick test_pareto_front_dedup;
    Alcotest.test_case "random search count" `Quick test_random_search_count;
    Alcotest.test_case "weighted sum on sphere" `Quick test_weighted_sum_minimises_sphere;
    Alcotest.test_case "NSGA-II beats random search" `Quick test_nsga2_beats_random_on_zdt1;
    QCheck_alcotest.to_alcotest prop_dominance_antisymmetric;
    QCheck_alcotest.to_alcotest prop_front0_mutually_incomparable;
    QCheck_alcotest.to_alcotest prop_ranks_consistent;
  ]
