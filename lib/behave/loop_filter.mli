(** Passive second-order charge-pump loop filter: series R1–C1 branch in
    parallel with C2 (the paper's system-level designables C1, C2, R1).

    Time-domain stepping uses backward Euler on the exact two-state ODE;
    {!impedance} feeds the s-domain loop analysis. *)

type params = {
  c1 : float;  (** F *)
  c2 : float;  (** F *)
  r1 : float;  (** ohm *)
}

val validate : params -> unit
(** @raise Invalid_argument on non-positive component values. *)

type state = {
  vctl : float;  (** control-node voltage (across C2) *)
  vc1 : float;   (** voltage across C1 *)
}

val initial : float -> state
(** Both capacitors precharged to the given voltage. *)

val step : params -> state -> i_in:float -> dt:float -> state
(** Advance by [dt] with charge-pump current [i_in] flowing into the
    control node. *)

val impedance : params -> float -> Complex.t
(** Filter impedance Z(jω) at angular frequency [w] (rad/s). *)

val pole_zero : params -> float * float * float
(** [(w_zero, w_pole3, c_total)]: the stabilising zero 1/(R1 C1), the
    third pole 1/(R1 C1C2/(C1+C2)) and the total capacitance. *)
