(** Variation modelling (§3.3, §4.3): Monte-Carlo analysis of every
    Pareto-optimal design, producing per-performance relative spreads —
    the ∆ columns of the paper's Table 1. *)

type entry = {
  design : Vco_problem.sized_design;
  d_kvco : float;  (** relative spread (σ/µ) of kvco *)
  d_jvco : float;
  d_ivco : float;
  d_fmin : float;
  d_fmax : float;
  mc_samples : int;
  mc_failures : int;
}

val pp_entry : Format.formatter -> entry -> unit

type options = {
  samples : int;                           (** paper: 100 per point *)
  process : Repro_circuit.Process.spec;
  measure : Repro_spice.Vco_measure.options;
}

val default_options : options

type mc_bulk =
  params:float array ->
  local:
    (Repro_util.Prng.t array ->
    (Repro_spice.Vco_measure.performance, string) result array) ->
  Repro_util.Prng.t array ->
  (Repro_spice.Vco_measure.performance, string) result array
(** The distributed Monte-Carlo hook: a bulk evaluator over the
    pre-split per-trial PRNG streams.  [params] is the 7-float
    {!Repro_circuit.Topologies.vco_params} vector a remote worker needs
    to rebuild the netlist; [local] evaluates streams in-process (the
    fallback when no worker can take the batch).  Implementations must
    return one outcome per stream, in order, bit-identical to [local] —
    determinism of the whole run rests on this contract. *)

val analyse_design :
  ?options:options ->
  ?mc_bulk:mc_bulk ->
  ?builder:(Repro_circuit.Topologies.vco_params -> Repro_circuit.Netlist.t) ->
  ?checkpoint:Repro_engine.Checkpoint.t * string ->
  prng:Repro_util.Prng.t ->
  Vco_problem.sized_design ->
  entry
(** MC-characterise one design.  [builder] swaps the built-in ring-VCO
    construction for a custom netlist factory (an elaborated [.sp]
    template); the default is the paper's
    {!Repro_circuit.Topologies.ring_vco}.  Failed trials (non-oscillating corners)
    are counted but excluded from the spread statistics; when fewer than
    3 trials survive the spreads fall back to 0.  [checkpoint:(ck, key)]
    persists/restores the completed Monte-Carlo sample prefix under
    [key] (see {!Repro_spice.Monte_carlo.run}).  [mc_bulk] routes the
    sample batch through a caller-supplied evaluator (the eval-worker
    farm) instead of the local pool. *)

val analyse_front :
  ?options:options ->
  ?mc_bulk:mc_bulk ->
  ?builder:(Repro_circuit.Topologies.vco_params -> Repro_circuit.Netlist.t) ->
  ?progress:(int -> int -> unit) ->
  ?already:entry array ->
  ?on_entry:(int -> entry -> unit) ->
  ?checkpoint:Repro_engine.Checkpoint.t ->
  prng:Repro_util.Prng.t ->
  Vco_problem.sized_design array ->
  entry array
(** The paper's loop over the whole Pareto front; [progress i n] is
    called before analysing design [i] of [n].

    Resume support: [already] supplies the completed entry prefix
    (restored designs still consume their PRNG splits, so the remaining
    designs see the same streams as an uninterrupted run), [on_entry] is
    called after each {e freshly} analysed design (the caller persists
    the growing prefix there), and [checkpoint] threads per-design
    Monte-Carlo sample checkpoints under keys ["mc.<i>"]. *)

val row_of_entry : entry -> float array
(** Flat 19-float snapshot encoding; round-trips losslessly. *)

val entry_of_row : float array -> entry option
