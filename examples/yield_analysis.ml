(* Yield exploration around a fixed design: how the paper's §4.5 spec
   margins translate into parametric yield, and why optimising on nominal
   values only (the paper's reference [10]) over-promises.

   Uses a saved table model when ./hieropt_model exists (run
   examples/pll_hierarchical.exe first); otherwise builds a small
   synthetic model so the example is always runnable.

   Run with: dune exec examples/yield_analysis.exe *)

module H = Hieropt
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies
module Stats = Repro_util.Stats

let synthetic_model () =
  let entries =
    Array.init 8 (fun i ->
        let kvco = 300e6 +. (float_of_int i *. 60e6) in
        let ivco = 6e-3 +. (float_of_int i *. 0.6e-3) in
        {
          H.Variation_model.design =
            {
              H.Vco_problem.params =
                { T.vco_default with T.wn = 12e-6 +. (float_of_int i *. 4e-6) };
              perf =
                {
                  V.kvco;
                  ivco;
                  jvco = 0.45e-12 -. (float_of_int i *. 0.02e-12);
                  fmin = 330e6 +. (float_of_int i *. 20e6);
                  fmax = 1.25e9 +. (float_of_int i *. 40e6);
                };
            };
          d_kvco = 0.025;
          d_jvco = 0.18;
          d_ivco = 0.02;
          d_fmin = 0.04;
          d_fmax = 0.02;
          mc_samples = 20;
          mc_failures = 0;
        })
  in
  H.Perf_table.build entries

let () =
  let model =
    if Sys.file_exists "hieropt_model/pareto.tbl" then begin
      Format.printf "loading the saved table model from ./hieropt_model@.";
      H.Perf_table.load ~dir:"hieropt_model"
    end
    else begin
      Format.printf "no saved model found - using a synthetic one@.";
      synthetic_model ()
    end
  in
  let cfg = H.Pll_problem.default_config ~model in
  let klo, khi = H.Perf_table.kvco_range model in
  let ilo, ihi = H.Perf_table.ivco_range model in
  let kvco = 0.5 *. (klo +. khi) and ivco = 0.5 *. (ilo +. ihi) in
  Format.printf "operating point: Kvco = %.0f MHz/V, Ivco = %.2f mA@."
    (kvco /. 1e6) (ivco *. 1e3);
  (* find a stable filter by scanning R1 at C1 = 10 pF *)
  let c1 = 10e-12 and c2 = 0.6e-12 in
  let candidates = [ 3e3; 4e3; 6e3; 8e3; 10e3; 14e3 ] in
  let rows =
    List.filter_map
      (fun r1 ->
        match H.Pll_problem.evaluate_point cfg ~kvco ~ivco ~c1 ~c2 ~r1 with
        | Ok row -> Some (r1, row)
        | Error _ -> None)
      candidates
  in
  if rows = [] then failwith "no stable loop found in the scan";
  Format.printf "@.%-8s %-10s %-10s %-10s %-22s@." "R1" "lock/us" "jit/ps"
    "curr/mA" "yield (500 samples)";
  let prng = Repro_util.Prng.create 99 in
  List.iter
    (fun (r1, (row : H.Pll_problem.table2_row)) ->
      let y = H.Yield.behavioural ~n:500 ~prng:(Repro_util.Prng.split prng) cfg row in
      Format.printf "%-8s %-10.3f %-10.2f %-10.1f %a@."
        (Repro_util.Si.format r1)
        (row.H.Pll_problem.lock *. 1e6)
        (row.H.Pll_problem.jit *. 1e12)
        (row.H.Pll_problem.curr *. 1e3)
        Stats.pp_yield y)
    rows;
  (* sensitivity: tighten the lock-time spec and watch yield collapse *)
  Format.printf "@.lock-time spec sensitivity at R1 = %s:@."
    (Repro_util.Si.format (fst (List.hd rows)));
  let r1, row = List.hd rows in
  ignore r1;
  List.iter
    (fun lock_max ->
      let cfg' =
        { cfg with H.Pll_problem.spec = { cfg.H.Pll_problem.spec with H.Spec.lock_time_max = lock_max } }
      in
      let y = H.Yield.behavioural ~n:300 ~prng:(Repro_util.Prng.split prng) cfg' row in
      Format.printf "  t_lock < %-6s : yield %a@."
        (Repro_util.Si.format_unit lock_max "s")
        Stats.pp_yield y)
    [ 1e-6; 0.8e-6; 0.6e-6; 0.45e-6; 0.35e-6 ]
