(** Smooth square-law MOSFET model with analytic derivatives.

    This is the repository's substitute for the foundry BSim3v3 models the
    paper simulates with (see DESIGN.md §2).  It blends an EKV-style
    softplus overdrive (smooth weak/strong-inversion transition — keeps
    Newton iterations differentiable), mobility reduction, a C¹
    triode/saturation transition and channel-length modulation whose
    strength scales inversely with channel length.  Gate/junction
    capacitances are bias-independent, which keeps transient stamps linear.

    Sign convention: [eval] works in source-referenced NMOS polarity
    ([vgs], [vds] both normally positive); the MNA stamping code flips
    polarities for PMOS devices and swaps drain/source when [vds < 0]. *)

type polarity = Nmos | Pmos

type model = {
  name : string;
  polarity : polarity;
  vth0 : float;        (** zero-bias threshold magnitude, V *)
  kp : float;          (** transconductance factor µCox, A/V² *)
  theta : float;       (** mobility-reduction coefficient, 1/V *)
  n_slope : float;     (** subthreshold slope factor *)
  clm : float;         (** channel-length modulation: λ = clm / L, m/V *)
  cox : float;         (** gate-oxide capacitance per area, F/m² *)
  cov : float;         (** overlap capacitance per width, F/m *)
  cj : float;          (** junction capacitance per width, F/m *)
  avt : float;         (** Pelgrom Vth-mismatch coefficient, V·m *)
  akp : float;         (** Pelgrom relative-Kp mismatch coefficient, m *)
}

val nmos_012 : model
(** Calibrated NMOS for the 0.12 µm-like process used throughout. *)

val pmos_012 : model
(** Matching PMOS. *)

type eval_result = {
  ids : float;  (** drain current (source-referenced polarity), A *)
  gm : float;   (** ∂ids/∂vgs, S *)
  gds : float;  (** ∂ids/∂vds, S *)
}

val eval :
  model ->
  w:float ->
  l:float ->
  vth_shift:float ->
  kp_scale:float ->
  vgs:float ->
  vds:float ->
  eval_result
(** Current and small-signal derivatives at the given bias.  [vth_shift]
    and [kp_scale] carry the sampled process/mismatch perturbation
    (0.0 / 1.0 nominally).  Requires [vds >= 0]; negative [vds] is the
    caller's terminal-swap case.  [w] and [l] in metres. *)

type caps = {
  cgs : float;
  cgd : float;
  cdb : float;
  csb : float;
}

val capacitances : model -> w:float -> l:float -> caps
(** Bias-independent device capacitances used by the transient stamps. *)

val sigma_vth : model -> w:float -> l:float -> float
(** Pelgrom mismatch: standard deviation of the per-device Vth shift. *)

val sigma_kp_rel : model -> w:float -> l:float -> float
(** Pelgrom mismatch: relative standard deviation of the per-device Kp. *)
