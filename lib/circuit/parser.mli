(** SPICE-like netlist deck parser.

    Supported cards (case-insensitive, [+] continuation lines, [*]/[;]
    comments, SPICE value suffixes):

    - [Rxxx n1 n2 value]
    - [Cxxx n1 n2 value]
    - [Vxxx n+ n- value] or [Vxxx n+ n- PULSE(v1 v2 td tr tf pw per)] or
      [SIN(off ampl freq)] or [PWL(t1 v1 t2 v2 ...)]
    - [Ixxx n+ n- value] (same source syntax as V)
    - [Mxxx d g s \[b\] model W=value L=value] (an optional bulk node is
      accepted and ignored — bulks are tied to the rails in this model)
    - [.model name NMOS|PMOS \[vth0=... kp=... theta=... clm=... ...\]]
      (parameters default to the built-in 0.12 µm-like models)
    - [.subckt name port1 port2 ...] ... [.ends] definitions with
      [Xinst n1 n2 ... name] instantiation (flattened; internal nodes and
      element names gain an ["xinst."] prefix; nesting instantiations is
      fine, nesting {e definitions} is rejected)
    - [.end] (optional)

    The paper's flow generates netlists programmatically
    ({!Topologies}); the parser exists so test benches and examples can
    also be written as decks. *)

exception Parse_error of int * string
(** [(line_number, message)] *)

val parse : string -> Netlist.t
(** Parse a full deck. @raise Parse_error. *)

val parse_file : string -> Netlist.t
