module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies
module I = Repro_interp

type t = {
  entries : Variation_model.entry array;
  (* delta tables, keyed on the corresponding nominal performance *)
  t_dkvco : I.Table1d.t;
  t_djvco : I.Table1d.t;
  t_divco : I.Table1d.t;
  t_dfmin : I.Table1d.t;
  t_dfmax : I.Table1d.t;
  (* performance over the (kvco, ivco) plane *)
  t_jvco : I.Table_nd.t;
  t_fmin : I.Table_nd.t;
  t_fmax : I.Table_nd.t;
  (* parameter recovery over the full 5-performance space *)
  t_params : I.Table_nd.t array; (* 7 tables *)
}

let perf_of (e : Variation_model.entry) = e.Variation_model.design.Vco_problem.perf

let build entries =
  if Array.length entries < 2 then
    invalid_arg "Perf_table.build: need at least 2 Pareto entries";
  let get f = Array.map (fun e -> f (perf_of e)) entries in
  let kvcos = get (fun p -> p.V.kvco) in
  let jvcos = get (fun p -> p.V.jvco) in
  let ivcos = get (fun p -> p.V.ivco) in
  let fmins = get (fun p -> p.V.fmin) in
  let fmaxs = get (fun p -> p.V.fmax) in
  let deltas f = Array.map f entries in
  (* a small or heavily-screened front can collapse onto a single value
     along one performance axis; with no spread to resolve, the delta
     along that axis degrades to a constant (mean) table instead of
     refusing to build the whole model *)
  let t1 xs ys =
    let x0 = xs.(0) in
    if Array.exists (fun x -> x <> x0) xs then
      I.Table1d.build ~control:"3E" xs ys
    else begin
      let y = Array.fold_left ( +. ) 0.0 ys /. float_of_int (Array.length ys) in
      let w = 1e-9 +. (Float.abs x0 *. 1e-6) in
      I.Table1d.build ~control:"3E" [| x0 -. w; x0 +. w |] [| y; y |]
    end
  in
  let ki = Array.map2 (fun k i -> [| k; i |]) kvcos ivcos in
  let full =
    Array.init (Array.length entries) (fun r ->
        [| kvcos.(r); ivcos.(r); jvcos.(r); fmins.(r); fmaxs.(r) |])
  in
  let param_col k =
    Array.map
      (fun e ->
        (T.vco_vector_of_params e.Variation_model.design.Vco_problem.params).(k))
      entries
  in
  {
    entries = Array.copy entries;
    t_dkvco = t1 kvcos (deltas (fun e -> e.Variation_model.d_kvco));
    t_djvco = t1 jvcos (deltas (fun e -> e.Variation_model.d_jvco));
    t_divco = t1 ivcos (deltas (fun e -> e.Variation_model.d_ivco));
    t_dfmin = t1 fmins (deltas (fun e -> e.Variation_model.d_fmin));
    t_dfmax = t1 fmaxs (deltas (fun e -> e.Variation_model.d_fmax));
    t_jvco = I.Table_nd.build ki jvcos;
    t_fmin = I.Table_nd.build ki fmins;
    t_fmax = I.Table_nd.build ki fmaxs;
    t_params = Array.init 7 (fun k -> I.Table_nd.build full (param_col k));
  }

let entries t = Array.copy t.entries
let size t = Array.length t.entries

(* the paper's "3E" control string refuses extrapolation; optimiser
   queries clamp to the sampled range instead of failing *)
let kvco_delta t x = I.Table1d.eval_clamped t.t_dkvco x
let jvco_delta t x = I.Table1d.eval_clamped t.t_djvco x
let ivco_delta t x = I.Table1d.eval_clamped t.t_divco x
let fmin_delta t x = I.Table1d.eval_clamped t.t_dfmin x
let fmax_delta t x = I.Table1d.eval_clamped t.t_dfmax x

let jvco_of t ~kvco ~ivco = I.Table_nd.eval t.t_jvco [| kvco; ivco |]
let fmin_of t ~kvco ~ivco = I.Table_nd.eval t.t_fmin [| kvco; ivco |]
let fmax_of t ~kvco ~ivco = I.Table_nd.eval t.t_fmax [| kvco; ivco |]

let params_of_perf t (p : V.performance) =
  let query = [| p.V.kvco; p.V.ivco; p.V.jvco; p.V.fmin; p.V.fmax |] in
  T.vco_params_of_vector
    (Array.map (fun tab -> I.Table_nd.eval tab query) t.t_params)

let range_of get t =
  Repro_util.Stats.min_max (Array.map (fun e -> get (perf_of e)) t.entries)

let kvco_range t = range_of (fun p -> p.V.kvco) t
let ivco_range t = range_of (fun p -> p.V.ivco) t

let min_max_of_delta ~nominal ~delta =
  (nominal -. (delta *. nominal), nominal +. (delta *. nominal))

type point_eval = {
  q_kvco : float * float * float;
  q_ivco : float * float * float;
  q_jvco : float * float * float;
  q_fmin : float;
  q_fmax : float;
}

let eval_point t ~kvco ~ivco =
  let bracket nominal delta =
    let lo, hi = min_max_of_delta ~nominal ~delta in
    (nominal, lo, hi)
  in
  let jvco = jvco_of t ~kvco ~ivco in
  {
    q_kvco = bracket kvco (kvco_delta t kvco);
    q_ivco = bracket ivco (ivco_delta t ivco);
    q_jvco = bracket jvco (jvco_delta t jvco);
    q_fmin = fmin_of t ~kvco ~ivco;
    q_fmax = fmax_of t ~kvco ~ivco;
  }

let eval_points t points =
  Array.map (fun (kvco, ivco) -> eval_point t ~kvco ~ivco) points

(* ---- persistence in the paper's .tbl layout ---- *)

let datafile_of_cols inputs output =
  let rows =
    List.init (Array.length output) (fun r ->
        (Array.map (fun col -> col.(r)) inputs, output.(r)))
  in
  I.Datafile.of_rows rows

let save ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name header file = I.Datafile.save ~header (Filename.concat dir name) file in
  let get f = Array.map (fun e -> f (perf_of e)) t.entries in
  let kvcos = get (fun p -> p.V.kvco) in
  let jvcos = get (fun p -> p.V.jvco) in
  let ivcos = get (fun p -> p.V.ivco) in
  let fmins = get (fun p -> p.V.fmin) in
  let fmaxs = get (fun p -> p.V.fmax) in
  let deltas f = Array.map f t.entries in
  write "kvco_delta.tbl" "kvco -> relative spread of kvco"
    (datafile_of_cols [| kvcos |] (deltas (fun e -> e.Variation_model.d_kvco)));
  write "jvco_delta.tbl" "jvco -> relative spread of jvco"
    (datafile_of_cols [| jvcos |] (deltas (fun e -> e.Variation_model.d_jvco)));
  write "ivco_delta.tbl" "ivco -> relative spread of ivco"
    (datafile_of_cols [| ivcos |] (deltas (fun e -> e.Variation_model.d_ivco)));
  write "fmin_delta.tbl" "fmin -> relative spread of fmin"
    (datafile_of_cols [| fmins |] (deltas (fun e -> e.Variation_model.d_fmin)));
  write "fmax_delta.tbl" "fmax -> relative spread of fmax"
    (datafile_of_cols [| fmaxs |] (deltas (fun e -> e.Variation_model.d_fmax)));
  write "data.tbl" "kvco ivco -> jvco" (datafile_of_cols [| kvcos; ivcos |] jvcos);
  write "fmin_data.tbl" "kvco ivco -> fmin"
    (datafile_of_cols [| kvcos; ivcos |] fmins);
  write "fmax_data.tbl" "kvco ivco -> fmax"
    (datafile_of_cols [| kvcos; ivcos |] fmaxs);
  Array.iteri
    (fun k name ->
      let col =
        Array.map
          (fun e ->
            (T.vco_vector_of_params e.Variation_model.design.Vco_problem.params).(k))
          t.entries
      in
      write
        (Printf.sprintf "p%d_data.tbl" (k + 1))
        (Printf.sprintf "kvco ivco jvco fmin fmax -> %s" name)
        (datafile_of_cols [| kvcos; ivcos; jvcos; fmins; fmaxs |] col))
    T.vco_param_names;
  (* one flat archive row per entry so [load] can rebuild everything *)
  let pareto_rows =
    List.map
      (fun e ->
        let p = perf_of e in
        let prm =
          T.vco_vector_of_params e.Variation_model.design.Vco_problem.params
        in
        let ins =
          Array.concat
            [
              prm;
              [| p.V.kvco; p.V.ivco; p.V.jvco; p.V.fmin; p.V.fmax |];
              [|
                e.Variation_model.d_kvco; e.Variation_model.d_ivco;
                e.Variation_model.d_jvco; e.Variation_model.d_fmin;
                e.Variation_model.d_fmax;
              |];
              [| float_of_int e.Variation_model.mc_samples |];
            ]
        in
        (ins, float_of_int e.Variation_model.mc_failures))
      (Array.to_list t.entries)
  in
  I.Datafile.save
    ~header:
      "w1 l1 w2 l2 w3 w4 l3 | kvco ivco jvco fmin fmax | dkvco divco djvco dfmin dfmax | n -> failures"
    (Filename.concat dir "pareto.tbl")
    (I.Datafile.of_rows pareto_rows)

exception
  Invalid_table_file of {
    path : string;
    expected_columns : int;
    found_columns : int;
  }

let () =
  Printexc.register_printer (function
    | Invalid_table_file { path; expected_columns; found_columns } ->
      Some
        (Printf.sprintf
           "Perf_table.load: %s has %d input columns, expected %d" path
           found_columns expected_columns)
    | _ -> None)

let load ~dir =
  let path = Filename.concat dir "pareto.tbl" in
  let file = I.Datafile.load path in
  let found = I.Datafile.columns file in
  if found <> 18 then
    raise
      (Invalid_table_file { path; expected_columns = 18; found_columns = found });
  let entries =
    Array.mapi
      (fun r row ->
        let params = T.vco_params_of_vector (Array.sub row 0 7) in
        let perf =
          {
            V.kvco = row.(7);
            ivco = row.(8);
            jvco = row.(9);
            fmin = row.(10);
            fmax = row.(11);
          }
        in
        {
          Variation_model.design = { Vco_problem.params; perf };
          d_kvco = row.(12);
          d_ivco = row.(13);
          d_jvco = row.(14);
          d_fmin = row.(15);
          d_fmax = row.(16);
          mc_samples = int_of_float row.(17);
          mc_failures = int_of_float file.I.Datafile.outputs.(r);
        })
      file.I.Datafile.inputs
  in
  build entries
