(** The model server: a listening socket, an accept loop and a fixed
    pool of worker domains, each handling whole keep-alive connections
    through {!Api.handle}.

    Lifecycle: {!start} binds and returns immediately (port 0 is
    resolved — read the bound port back from {!port}); {!stop} begins a
    graceful drain — the listener closes, queued connections are served
    a final [Connection: close] response, in-flight requests finish,
    and workers exit; past [drain_timeout] remaining connections are
    force-closed.  {!wait} blocks until the drain completes.
    {!install_signal_handlers} maps SIGTERM/SIGINT onto {!stop}.

    Per-connection reads are bounded by [request_timeout] (socket
    receive timeout), so a stalled client cannot pin a worker. *)

type t

type handler = Http.request -> int * (string * string) list * string
(** A request handler: returns (status, extra headers, body).  Must be
    safe to call from several worker domains at once. *)

val start_with :
  ?addr:string ->             (* bind address, default "127.0.0.1" *)
  ?port:int ->                (* default 8190; 0 = ephemeral *)
  ?workers:int ->             (* worker domains, default 2, min 1 *)
  ?request_timeout:float ->   (* seconds, default 10. *)
  handler:handler ->
  unit ->
  t
(** Start the HTTP machinery around an arbitrary request handler — the
    transport (accept loop, keep-alive, drain) is shared between the
    model server and the distributed eval-workers; only the routing
    differs.  @raise Unix.Unix_error if the address cannot be bound. *)

val start :
  ?addr:string ->
  ?port:int ->
  ?workers:int ->
  ?request_timeout:float ->
  api:Api.t ->
  unit ->
  t
(** {!start_with} over {!Api.handle} — the model server.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (useful after [?port:0]). *)

val stop : ?drain_timeout:float -> t -> unit
(** Begin graceful shutdown; idempotent.  [drain_timeout] (default 5
    seconds) bounds how long in-flight connections may take to finish
    before their descriptors are closed under them. *)

val wait : t -> unit
(** Block until the server has fully stopped (call {!stop} first, or
    rely on {!install_signal_handlers}). *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT trigger [stop t]; SIGPIPE is ignored (a client
    hanging up mid-response must not kill the process). *)
