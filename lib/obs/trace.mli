(** Span-based tracing with Chrome [trace_event] export.

    Spans nest by call structure per domain: every [span] emits a
    begin/end pair tagged with the domain id, so a viewer
    ([chrome://tracing], Perfetto) reconstructs the nesting from the
    per-thread event stacks.  Events buffer in per-domain sinks — the
    hot emit path touches only domain-local state plus one atomic
    fetch-add for the global ordering sequence.

    Tracing is off by default and every instrumentation point is a
    cheap no-op then (one atomic load), so instrumented code paths are
    safe to leave enabled everywhere.  Instrumentation must never
    change results: nothing here touches PRNG state or evaluation
    outputs (the zero-perturbation contract, enforced by test). *)

val start : unit -> unit
(** Drop any buffered events, restart the clock/sequence, and enable
    collection. *)

val stop : unit -> unit
(** Disable collection; buffered events stay available for [export]. *)

val enabled : unit -> bool

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], bracketing it with begin/end events when
    tracing is enabled (the end event is emitted even when [f] raises).
    When disabled this is just [f ()]. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (cache-hit ratios, one-off facts). *)

val event_count : unit -> int
(** Number of buffered events (tests, report sizing). *)

val export : string -> int
(** Write all buffered events (sequence order) to [path] as a Chrome
    [trace_event] JSON document; returns the event count.  Timestamps
    are microseconds since {!start}. *)
