(** Three-state phase-frequency detector (the paper's PFD block,
    behavioural per Kundert [13]).

    Rising edges on the reference input drive the state toward [Up]
    (pump current positive, speeding the VCO); rising edges on the
    divider feedback drive it toward [Down]; an edge in the opposite
    state resets to [Neutral] (the AND-reset of the classical
    flip-flop PFD). *)

type state = Up | Neutral | Down

type t

val create : unit -> t
val state : t -> state

val ref_edge : t -> unit
(** Rising edge of the reference clock. *)

val div_edge : t -> unit
(** Rising edge of the divided VCO clock. *)

val reset : t -> unit

val drive : state -> float
(** Charge-pump drive sign: [Up] -> +1, [Neutral] -> 0, [Down] -> -1. *)
