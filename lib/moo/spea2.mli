(** SPEA2 (Zitzler, Laumanns, Thiele 2001): strength-Pareto evolutionary
    algorithm with a fixed-size external archive, k-nearest-neighbour
    density estimation and archive truncation.

    Provided as a second multi-objective optimiser over the same
    {!Problem} abstraction — the optimiser-choice ablation in the bench
    compares it with {!Nsga2} on the circuit problem.  Constraint
    handling reuses {!Pareto.compare_dominance} (Deb constraint
    domination). *)

type options = {
  population : int;
  archive : int;       (** external archive size (the returned front) *)
  generations : int;
  crossover_prob : float;
  eta_crossover : float;
  mutation_prob : float;  (** <= 0 means 1/n_vars *)
  eta_mutation : float;
}

val default_options : options
(** population 100, archive 100, generations 30, same variation settings
    as {!Nsga2.default_options}. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> Nsga2.individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Run SPEA2 and return the final archive (use {!Nsga2.pareto_front} to
    extract the feasible non-dominated subset).  [evaluator] batches
    each generation's evaluations exactly as in {!Nsga2.optimise}. *)

(* ---- step-wise API (checkpointable generation loop), mirroring
   {!Nsga2}'s ---- *)

type state

val init :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  Problem.t ->
  Repro_util.Prng.t ->
  state
(** Draw and evaluate the initial population; archive starts empty.
    @raise Invalid_argument unless population >= 4 and archive >= 2. *)

val step : ?evaluator:Problem.evaluator -> Problem.t -> state -> unit
(** Advance one generation ([optimise] ≡ [init] + [generations] ×
    [step] bit-exactly). *)

val generation : state -> int
val archive : state -> Nsga2.individual array

val save_state : state -> Repro_engine.Snapshot.t -> key:string -> unit

val restore_state :
  options:options ->
  Problem.t ->
  Repro_engine.Snapshot.t ->
  key:string ->
  state option

val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
