(** System-level specification (the paper's §4: output 500 MHz – 1.2 GHz,
    locking time < 1 µs, current < 15 mA, jitter minimised). *)

type t = {
  f_out_low : float;      (** Hz; VCO band must reach down to this *)
  f_out_high : float;     (** Hz; ... and up to this *)
  f_target : float;       (** Hz; the lock point used for Table 2 *)
  fref : float;           (** Hz; reference input *)
  n_div : int;            (** divider modulus such that n_div * fref = f_target *)
  lock_time_max : float;  (** s *)
  current_max : float;    (** A *)
}

val default : t
(** 500 MHz – 1.2 GHz band, 800 MHz lock target from a 100 MHz reference
    (÷8), lock < 1 µs, current < 15 mA.

    The paper's PLL reference is not stated; 100 MHz/÷8 is the choice
    that makes pF/kΩ loop filters (Table 2's component ranges) stable —
    see DESIGN.md §5. *)

val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** @raise Invalid_argument when n_div * fref <> f_target or bounds are
    inconsistent. *)
