(** Runtime configuration shared by every entry point (CLI, bench,
    examples, tests).

    Centralises the environment-variable conventions that used to be
    re-implemented ad hoc per executable:

    - [HIEROPT_FULL] — any non-empty value other than ["0"] selects the
      paper-scale workload instead of the fast bench scale.
    - [HIEROPT_JOBS] — worker-domain count for the parallel evaluation
      engine; defaults to {!Domain.recommended_domain_count}.
    - [HIEROPT_SOLVER] — linear-solver selection for the MNA Newton
      kernels: [dense], [sparse], or [auto] (default; sparse above a
      small-n threshold). *)

val flag : string -> bool
(** [flag name] is [true] when the environment variable [name] is set to
    a non-empty value other than ["0"]. *)

val int_var : string -> int option
(** Integer environment variable, [None] when unset/empty/unparseable. *)

val full : unit -> bool
(** The [HIEROPT_FULL] switch: paper-scale workloads when set. *)

type solver_mode = Dense | Sparse | Auto

val solver : unit -> solver_mode
(** The value given to {!set_solver} if any, else [HIEROPT_SOLVER]
    ([dense]/[sparse]/[auto]), else [Auto].  [Auto] lets the MNA layer
    pick sparse above a small-n threshold. *)

val set_solver : solver_mode option -> unit
(** Programmatic override (the CLI's [--solver]); [None] clears it. *)

val solver_mode_name : solver_mode -> string
val solver_mode_of_string : string -> solver_mode option

val jobs : unit -> int
(** Worker count for {!Pool.create}: the value given to {!set_jobs} if
    any, else [HIEROPT_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val set_jobs : int -> unit
(** Programmatic override (the CLI's [-j]).  Values <= 0 clear the
    override. *)
