module Prng = Repro_util.Prng

type options = {
  population : int;
  generations : int;
  f : float;
  cr : float;
}

let default_options = { population = 50; generations = 30; f = 0.5; cr = 0.9 }

type state = {
  options : options;
  prng : Prng.t;
  mutable generation : int;
  mutable population : Nsga2.individual array;
}

let generation st = st.generation
let population st = st.population

let validate (options : options) =
  (* rand/1 needs the target plus three mutually distinct donors *)
  if options.population < 5 then
    invalid_arg "De: population must be >= 5 (DE/rand/1 donor indices)";
  if not (options.f > 0.0 && options.f <= 2.0) then
    invalid_arg "De: differential weight f must be in (0, 2]";
  if not (options.cr >= 0.0 && options.cr <= 1.0) then
    invalid_arg "De: crossover rate cr must be in [0, 1]"

let init ?(options = default_options) ?(evaluator = Problem.serial_evaluator)
    problem prng =
  validate options;
  (* decision vectors are drawn serially (PRNG order is part of the
     reproducibility contract); only the pure evaluations are batched *)
  let initial = Array.make options.population [||] in
  for i = 0 to options.population - 1 do
    initial.(i) <- Problem.random_point problem prng
  done;
  { options; prng; generation = 0;
    population = Nsga2.eval_batch evaluator problem initial }

let step ?(evaluator = Problem.serial_evaluator) problem st =
  Repro_obs.Trace.span "de.generation"
    ~args:
      [
        ("problem", problem.Problem.name);
        ("generation", string_of_int (st.generation + 1));
      ]
  @@ fun () ->
  let options = st.options and prng = st.prng in
  let np = options.population in
  let n = Problem.n_vars problem in
  let bounds = problem.Problem.bounds in
  let pop = st.population in
  let trials = Array.make np [||] in
  for i = 0 to np - 1 do
    let rec draw excl =
      let r = Prng.int prng np in
      if List.mem r excl then draw excl else r
    in
    let r1 = draw [ i ] in
    let r2 = draw [ i; r1 ] in
    let r3 = draw [ i; r1; r2 ] in
    (* binomial crossover: at least the forced [jrand] component comes
       from the mutant, the rest with probability cr *)
    let jrand = Prng.int prng n in
    let trial = Array.copy pop.(i).Nsga2.x in
    for j = 0 to n - 1 do
      let cross = Prng.float prng 1.0 < options.cr in
      if cross || j = jrand then begin
        let lo, hi = bounds.(j) in
        let v =
          pop.(r1).Nsga2.x.(j)
          +. (options.f *. (pop.(r2).Nsga2.x.(j) -. pop.(r3).Nsga2.x.(j)))
        in
        trial.(j) <- Repro_util.Floatx.clamp ~lo ~hi v
      end
    done;
    trials.(i) <- trial
  done;
  let evaluated = Nsga2.eval_batch evaluator problem trials in
  (* DEMO-style selection (Robič & Filipič 2005): each trial is compared
     to its parent under Deb constraint-domination — it replaces a
     dominated parent, is discarded when dominated itself, and is
     appended when incomparable; NSGA-II (rank, crowding) truncation
     then restores the population size *)
  let next = ref [] in
  for i = np - 1 downto 0 do
    let parent = pop.(i) and trial = evaluated.(i) in
    match
      Pareto.compare_dominance trial.Nsga2.evaluation parent.Nsga2.evaluation
    with
    | Pareto.Dominates -> next := trial :: !next
    | Pareto.Dominated -> next := parent :: !next
    | Pareto.Incomparable -> next := parent :: trial :: !next
  done;
  let combined = Array.of_list !next in
  st.population <-
    (if Array.length combined > np then Nsga2.select_best np combined
     else combined);
  st.generation <- st.generation + 1

let optimise ?options ?evaluator ?on_generation problem prng =
  let st = init ?options ?evaluator problem prng in
  (match on_generation with Some f -> f 0 st.population | None -> ());
  while st.generation < st.options.generations do
    step ?evaluator problem st;
    match on_generation with
    | Some f -> f st.generation st.population
    | None -> ()
  done;
  st.population

module Snapshot = Repro_engine.Snapshot

let save_state st snap ~key =
  Snapshot.set_int snap (key ^ ".generation") st.generation;
  Snapshot.set_bits snap (key ^ ".prng") (Prng.to_bits st.prng);
  Snapshot.set_rows snap (key ^ ".population")
    (Array.map Nsga2.encode_individual st.population)

let clear_state snap ~key =
  Snapshot.remove snap (key ^ ".generation");
  Snapshot.remove snap (key ^ ".prng");
  Snapshot.remove snap (key ^ ".population")

let restore_state ~options problem snap ~key =
  match
    ( Snapshot.get_int snap (key ^ ".generation"),
      Snapshot.get_bits snap (key ^ ".prng"),
      Snapshot.get_rows snap (key ^ ".population") )
  with
  | Some generation, Some bits, Some rows -> (
    match Prng.of_bits bits with
    | None -> None
    | Some prng ->
      let n_vars = Problem.n_vars problem in
      let inds = Array.map (Nsga2.decode_individual ~n_vars) rows in
      if
        generation < 0
        || generation > options.generations
        || Array.length inds <> options.population
        || Array.exists Option.is_none inds
      then None
      else
        Some
          { options; prng; generation;
            population = Array.map Option.get inds })
  | _ -> None
