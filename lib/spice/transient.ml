module Vec = Repro_linalg.Vec

type options = {
  t_stop : float;
  dt : float;
  dt_min : float;
  ic : (string * float) list;
  skip_dcop : bool;
  max_newton : int;
  noise : Repro_util.Prng.t option;
}

let default_options ~t_stop ~dt =
  { t_stop; dt; dt_min = dt /. 1024.0; ic = []; skip_dcop = false;
    max_newton = 30; noise = None }

exception Step_failure of float

type result = {
  compiled : Mna.compiled;
  rtimes : float array;
  states : float array array; (* per recorded step, full unknown vector *)
  newton_total : int;
  solver : string;
}

let times r = r.rtimes

let wave_of_index r idx =
  Waveform.create r.rtimes (Array.map (fun st -> st.(idx)) r.states)

let node_wave r name =
  let node = Mna.node_of_name r.compiled name in
  match Mna.node_index r.compiled node with
  | None -> Waveform.create r.rtimes (Array.map (fun _ -> 0.0) r.rtimes)
  | Some i -> wave_of_index r i

let source_current_wave r name = wave_of_index r (Mna.branch_index r.compiled name)

let final_solution r = r.states.(Array.length r.states - 1)
let total_newton_iterations r = r.newton_total
let solver r = r.solver

(* internal control-flow escape for the result-based driver *)
exception Abort of Solver_error.t

let run_result ?solver ?workspace compiled opts =
  if opts.t_stop <= 0.0 || opts.dt <= 0.0 then
    invalid_arg "Transient.run: t_stop and dt must be positive";
  (* default to the domain's persistent workspace: the DC start and the
     stepping loop share factors, and they survive into the next
     same-topology run on this domain (Monte-Carlo samples) *)
  let workspace =
    match workspace with Some w -> w | None -> Mna.domain_workspace ()
  in
  match
    begin
  let n = Mna.size compiled in
  let x =
    if opts.skip_dcop then Vec.create n
    else
      match Dcop.solve_result ?solver ~workspace compiled with
      | Ok dc -> Vec.copy dc.Dcop.solution
      | Error e -> raise (Abort e)
  in
  (* start-up kick: override chosen node voltages *)
  List.iter
    (fun (name, v) ->
      let node = Mna.node_of_name compiled name in
      match Mna.node_index compiled node with
      | None -> invalid_arg "Transient.run: cannot override ground"
      | Some i -> x.(i) <- v)
    opts.ic;
  let ncaps = Mna.cap_count compiled in
  let v_prev = Array.init ncaps (fun k -> Mna.cap_voltage compiled k x) in
  let i_prev = Array.make ncaps 0.0 in
  let geq = Array.make ncaps 0.0 in
  let ieq = Array.make ncaps 0.0 in
  let newton_total = ref 0 in
  let rec_times = ref [ 0.0 ] in
  let rec_states = ref [ Vec.copy x ] in
  (* first step uses BE (no cap-current history yet) *)
  let first = ref true in
  let t = ref 0.0 in
  let h = ref opts.dt in
  while !t < opts.t_stop -. (opts.dt /. 2.0) do
    let step_ok h_try =
      let use_be = !first in
      (* sample the thermal noise currents once per attempted step;
         white noise filled up to the step Nyquist bandwidth 1/(2 h) *)
      let injections =
        match opts.noise with
        | None -> [||]
        | Some prng ->
          let stamps = Mna.channel_noise_stamps compiled ~x in
          let out = ref [] in
          Array.iter
            (fun (hi, lo, density) ->
              let sigma = density /. sqrt (2.0 *. h_try) in
              let amps = Repro_util.Prng.gaussian prng ~mean:0.0 ~sigma in
              if hi >= 0 then out := (hi, amps) :: !out;
              if lo >= 0 then out := (lo, -.amps) :: !out)
            stamps;
          Array.of_list !out
      in
      Mna.companion_fill compiled ~use_be ~h:h_try ~v_prev ~i_prev ~geq ~ieq;
      let x_try = Vec.copy x in
      let report =
        Mna.newton ~max_iter:opts.max_newton ~injections ?solver ~workspace
          compiled ~x:x_try
          ~time:(!t +. h_try) ~gmin:1e-12 ~source_scale:1.0
          ~cap_mode:(Mna.Companion { geq; ieq })
      in
      newton_total := !newton_total + report.Mna.iterations;
      if report.Mna.converged then Some x_try else None
    in
    let rec attempt h_try =
      if h_try < opts.dt_min then
        raise (Abort (Solver_error.Step_underflow { time = !t }));
      match step_ok h_try with
      | Some x_new -> (h_try, x_new)
      | None -> attempt (h_try /. 2.0)
    in
    let h_used, x_new = attempt !h in
    (* update capacitor history from the accepted step *)
    Mna.cap_history compiled ~x:x_new ~geq ~ieq ~v_prev ~i_prev;
    Array.blit x_new 0 x 0 n;
    t := !t +. h_used;
    first := false;
    rec_times := !t :: !rec_times;
    rec_states := Vec.copy x :: !rec_states;
    (* recover the nominal step after a halving *)
    h := Float.min opts.dt (h_used *. 2.0)
  done;
  {
    compiled;
    rtimes = Array.of_list (List.rev !rec_times);
    states = Array.of_list (List.rev !rec_states);
    newton_total = !newton_total;
    solver = Mna.solver_name ?solver compiled;
  }
    end
  with
  | r -> Ok r
  | exception Abort e -> Error e

let run ?solver ?workspace compiled opts =
  match run_result ?solver ?workspace compiled opts with
  | Ok r -> r
  | Error (Solver_error.Step_underflow { time }) -> raise (Step_failure time)
  | Error (Solver_error.No_convergence { detail; _ }) ->
    raise (Dcop.No_convergence detail)
