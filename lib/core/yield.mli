(** Yield prediction and verification (§4.5 end): Monte-Carlo analysis of
    the selected system design against the specification.

    Two levels, mirroring the paper's verification story:

    - {!behavioural}: 500-sample MC at the behavioural level — Kvco and
      Ivco are drawn from the variation model's spreads, the PLL is
      re-evaluated, and the sample passes when it locks within the
      spec's time and current budgets (this is the "yield of 100%"
      check).
    - {!transistor}: the bottom-up cross-check — full process-perturbed
      transistor-level VCO characterisations feeding the same PLL
      evaluation (much slower; used with smaller N). *)

type outcome = {
  pass : bool;
  lock_time : float option;  (** [None] when the loop failed *)
  current : float;
  detail : string;           (** failure reason for diagnostics *)
}

val check_sample :
  Pll_problem.config ->
  kvco:float ->
  ivco:float ->
  c1:float ->
  c2:float ->
  r1:float ->
  outcome
(** Evaluate one (possibly perturbed) operating point against the spec. *)

val behavioural :
  ?n:int ->
  ?pool:Repro_engine.Pool.t ->
  ?checkpoint:Repro_engine.Checkpoint.t * string ->
  prng:Repro_util.Prng.t ->
  Pll_problem.config ->
  Pll_problem.table2_row ->
  Repro_util.Stats.yield_estimate
(** [n] defaults to 500 (the paper's count).  Samples are evaluated in
    parallel over [pool] (default: the shared engine pool); all
    perturbations are drawn before dispatch, so the estimate is
    bit-identical for any worker count.  [checkpoint:(ck, key)]
    persists/restores the completed-sample prefix under [key] and may
    raise {!Repro_engine.Checkpoint.Interrupted} at a sample
    boundary. *)

val transistor :
  ?n:int ->
  ?pool:Repro_engine.Pool.t ->
  ?process:Repro_circuit.Process.spec ->
  ?measure:Repro_spice.Vco_measure.options ->
  prng:Repro_util.Prng.t ->
  Pll_problem.config ->
  sizing:Repro_circuit.Topologies.vco_params ->
  row:Pll_problem.table2_row ->
  Repro_util.Stats.yield_estimate
(** [n] defaults to 20.  Each trial perturbs the transistor netlist,
    re-measures Kvco/Ivco/Jvco, and re-evaluates the PLL with the
    measured values.  Trials whose VCO fails to oscillate count as
    fails. *)
