(** Surrogate pre-screening for expensive evaluations: fit cheap
    scattered-data models ({!Repro_interp.Table_nd}, RBF by default) to
    the archive of already-evaluated points each generation, and skip
    the exact evaluation of candidates whose {e optimistic} predicted
    evaluation is still dominated by the archive's current front
    (GLOVA-style screening, arXiv:2505.11208).

    Screened-out candidates receive an infinitely-infeasible marker
    evaluation, so Deb constraint-domination discards them in selection
    and they can never reach a Pareto front.  The guard band shifts
    every prediction by [guard] × the archive spread towards "better"
    before the dominance test, bounding false rejects by the model's
    declared headroom: a candidate whose guarded prediction is
    non-dominated is {e always} evaluated exactly.

    Screening is a pure function of the archive, so runs stay
    deterministic; checkpointing the archive alongside the optimiser
    state ({!save_state}) makes interrupted runs resume bit-identically.

    Reports [eval.avoided] / [eval.paid] telemetry counters. *)

type options = {
  guard : float;      (** guard-band fraction of archive spread, >= 0 *)
  min_points : int;   (** archive size before screening starts, >= 2 *)
  max_points : int;   (** FIFO cap on the fit archive *)
  scheme : Repro_interp.Table_nd.scheme;  (** surrogate family *)
}

val default_options : options
(** guard 0.1, min_points 16, max_points 256, thin-plate RBF. *)

type t

val create : ?options:options -> unit -> t
(** Fresh screen with an empty archive.
    @raise Invalid_argument on out-of-range options. *)

val options : t -> options
val size : t -> int

val archive : t -> (float array * Problem.evaluation) array
(** The current fit window (newest last), for tests and diagnostics. *)

val observe : t -> float array array -> Problem.evaluation array -> unit
(** Append exactly-evaluated points (normally done by {!wrap}). *)

val rejected_evaluation : Problem.t -> Problem.evaluation
(** The marker returned for screened-out candidates: all-[infinity]
    objectives and infinite constraint violation. *)

val is_rejected : Problem.evaluation -> bool

val guarded_predictions :
  t -> Problem.t -> float array array -> Problem.evaluation array option
(** Optimistic surrogate predictions for each candidate ([None] while
    the archive has fewer than [min_points] points).  Objectives with
    too few finite samples predict [neg_infinity] (fail open). *)

val screen : t -> Problem.t -> float array array -> bool array option
(** Per-candidate verdicts ([true] = evaluate exactly): a candidate is
    screened out iff some member of the archive's non-dominated front
    constraint-dominates its guarded prediction. *)

val wrap : t -> Problem.evaluator -> Problem.evaluator
(** The pre-screen stage: screen the batch, forward only survivors to
    the wrapped evaluator, append their results to the archive, and
    fill rejected slots with {!rejected_evaluation}.  While the archive
    is below [min_points] every candidate is forwarded. *)

(* ---- state serialisation (resume support) ---- *)

val save_state : t -> Repro_engine.Snapshot.t -> key:string -> unit
(** Store the archive under [key ^ ".points"] (individual row codec). *)

val restore_state :
  ?options:options ->
  Problem.t ->
  Repro_engine.Snapshot.t ->
  key:string ->
  t option

val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
