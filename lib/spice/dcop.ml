module Vec = Repro_linalg.Vec

type result = {
  solution : Repro_linalg.Vec.t;
  iterations : int;
  strategy : string;
  solver : string;
}

exception No_convergence of string

let try_newton ?max_iter ?solver ~workspace c x ~gmin ~source_scale =
  Mna.newton ?max_iter ?solver ~workspace c ~x ~time:0.0 ~gmin ~source_scale
    ~cap_mode:Mna.Dc

let fail detail =
  Error (Solver_error.No_convergence { stage = "dcop"; detail })

let solve_result ?x0 ?solver ?workspace c =
  let solver_used = Mna.solver_name ?solver c in
  (* default to the domain's persistent workspace so numeric factors
     survive across the operating points of one Monte-Carlo trial (and
     across trials run on the same domain) *)
  let workspace =
    match workspace with Some w -> w | None -> Mna.domain_workspace ()
  in
  let n = Mna.size c in
  let fresh () =
    match x0 with
    | Some x ->
      if Array.length x <> n then invalid_arg "Dcop.solve: x0 size mismatch";
      Vec.copy x
    | None -> Vec.create n
  in
  let total = ref 0 in
  (* 1: direct *)
  let x = fresh () in
  let r = try_newton ?solver ~workspace c x ~gmin:1e-12 ~source_scale:1.0 in
  total := !total + r.Mna.iterations;
  if r.Mna.converged then
    Ok { solution = x; iterations = !total; strategy = "direct"; solver = solver_used }
  else begin
    (* 2: gmin stepping, reusing each stage's solution *)
    let x = fresh () in
    let gmins = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-12 ] in
    let ok =
      List.for_all
        (fun gmin ->
          let r = try_newton ?solver ~workspace c x ~gmin ~source_scale:1.0 in
          total := !total + r.Mna.iterations;
          r.Mna.converged)
        gmins
    in
    if ok then Ok { solution = x; iterations = !total; strategy = "gmin"; solver = solver_used }
    else begin
      (* 3: source stepping at a mild gmin *)
      let x = Vec.create n in
      let steps = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
      let ok =
        List.for_all
          (fun scale ->
            let r = try_newton ~max_iter:80 ?solver ~workspace c x ~gmin:1e-9 ~source_scale:scale in
            total := !total + r.Mna.iterations;
            r.Mna.converged)
          steps
      in
      if ok then begin
        (* polish without gmin *)
        let r = try_newton ?solver ~workspace c x ~gmin:1e-12 ~source_scale:1.0 in
        total := !total + r.Mna.iterations;
        if r.Mna.converged then
          Ok { solution = x; iterations = !total; strategy = "source"; solver = solver_used }
        else fail "source stepping converged but polish failed"
      end
      else fail "direct, gmin and source stepping all failed"
    end
  end

let solve ?x0 ?solver ?workspace c =
  match solve_result ?x0 ?solver ?workspace c with
  | Ok r -> r
  | Error (Solver_error.No_convergence { detail; _ }) ->
    raise (No_convergence detail)
  | Error (Solver_error.Step_underflow _ as e) ->
    (* unreachable from DC analysis, but keep the wrapper total *)
    raise (No_convergence (Solver_error.to_string e))

let node_voltage c result name =
  let node = Mna.node_of_name c name in
  match Mna.node_index c node with
  | None -> 0.0
  | Some i -> result.solution.(i)

let source_current c result name = result.solution.(Mna.branch_index c name)
