(** Behavioural VCO: phase accumulation with linear tuning, frequency
    clamping at the measured band edges and per-edge jitter injection —
    the OCaml equivalent of the paper's Listing 2 Verilog-A model
    ([$rdist_normal] per output transition). *)

type params = {
  f0 : float;       (** free-running frequency at [v0], Hz *)
  v0 : float;       (** control voltage at which f = f0 *)
  kvco : float;     (** Hz/V *)
  fmin : float;     (** lower clamp, Hz *)
  fmax : float;     (** upper clamp, Hz *)
  jitter : float;   (** RMS period jitter injected per cycle, s *)
}

val validate : params -> unit
(** @raise Invalid_argument on inverted clamps or negative jitter. *)

val frequency : params -> float -> float
(** Instantaneous (clamped) frequency at a control voltage. *)

type t

val create : ?prng:Repro_util.Prng.t -> params -> t
(** Jitter injection needs a [prng]; without one the model is
    noiseless. *)

val phase : t -> float
(** Accumulated phase in cycles. *)

val advance : t -> vctl:float -> dt:float -> int
(** Advance the oscillator by [dt] under control voltage [vctl]; returns
    the number of rising output edges produced during the interval
    (0 or more).  Jitter perturbs the phase increment as a random walk
    with the configured per-cycle RMS. *)

val reset : t -> unit
