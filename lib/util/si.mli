(** SI-prefixed engineering notation, as used in SPICE netlists and the
    paper's tables ("2.1p", "3.8k", "0.12u"). *)

val parse : string -> float
(** [parse s] reads a float with an optional SPICE suffix
    (f, p, n, u, m, k, meg, g, t — case-insensitive).  The grammar is
    strict: the suffix must consume the whole remainder of the string,
    so trailing garbage ("10ux", "2.2uF", "3kk") is rejected rather
    than silently truncated.
    @raise Failure on malformed input. *)

val parse_opt : string -> float option

val format : float -> string
(** [format x] renders with the closest engineering prefix and 4
    significant digits, e.g. [format 2.1e-12 = "2.1p"]. *)

val format_unit : float -> string -> string
(** [format_unit x u] appends a unit, e.g. [format_unit 800e6 "Hz" =
    "800MHz"]. *)
