module T = Repro_circuit.Topologies
module V = Repro_spice.Vco_measure
module P = Repro_moo.Problem

type sized_design = {
  params : T.vco_params;
  perf : V.performance;
}

let objective_names = [| "jvco"; "ivco"; "neg_kvco"; "fmin"; "neg_fmax" |]

let objectives_of_perf (p : V.performance) =
  [| p.V.jvco; p.V.ivco; -.p.V.kvco; p.V.fmin; -.p.V.fmax |]

let perf_of_objectives o =
  if Array.length o <> 5 then
    invalid_arg "Vco_problem.perf_of_objectives: need 5 objectives";
  { V.jvco = o.(0); ivco = o.(1); kvco = -.o.(2); fmin = o.(3); fmax = -.o.(4) }

(* Top-down specification propagation (the paper's Figure 3): the system
   level requires the VCO band to cover [f_out_low, f_out_high], so
   band coverage is a circuit-level constraint, keeping the GA away from
   degenerate ultra-slow sizings that would otherwise minimise fmin. *)
let band_violation (spec : Spec.t) (perf : V.performance) =
  let over v limit = Float.max 0.0 ((v -. limit) /. limit) in
  over perf.V.fmin spec.Spec.f_out_low
  +. over spec.Spec.f_out_high perf.V.fmax

let problem ?measure_options ?(spec = Spec.default) ?builder
    ?(bounds = T.vco_bounds) () =
  let characterise params =
    match builder with
    | None -> V.characterise ?options:measure_options params
    | Some build ->
      V.characterise_netlist ?options:measure_options (build params)
  in
  let evaluate x =
    let params = T.vco_params_of_vector x in
    match characterise params with
    | Ok perf ->
      {
        P.objectives = objectives_of_perf perf;
        constraint_violation = band_violation spec perf;
      }
    | Error _ ->
      (* un-simulatable designs lose every constraint-domination
         tournament but still carry gradient through the violation *)
      { P.objectives = Array.make 5 infinity; constraint_violation = 10.0 }
  in
  P.create ~name:"vco-sizing" ~bounds ~objective_names evaluate

let design_of_individual (ind : Repro_moo.Nsga2.individual) =
  if P.feasible ind.Repro_moo.Nsga2.evaluation then
    Some
      {
        params = T.vco_params_of_vector ind.Repro_moo.Nsga2.x;
        perf = perf_of_objectives ind.Repro_moo.Nsga2.evaluation.P.objectives;
      }
  else None

let vector_of_design d =
  Array.append (T.vco_vector_of_params d.params) (objectives_of_perf d.perf)

let design_of_vector v =
  if Array.length v <> 12 then None
  else
    Some
      {
        params = T.vco_params_of_vector (Array.sub v 0 7);
        perf = perf_of_objectives (Array.sub v 7 5);
      }

let front_designs pop =
  Repro_moo.Nsga2.pareto_front pop
  |> Array.to_list
  |> List.filter_map design_of_individual
  |> Array.of_list

let thin_front designs ~max_points =
  let n = Array.length designs in
  if max_points <= 0 then invalid_arg "Vco_problem.thin_front: max_points";
  if n <= max_points then Array.copy designs
  else begin
    let sorted = Array.copy designs in
    Array.sort (fun a b -> compare a.perf.V.kvco b.perf.V.kvco) sorted;
    (* evenly spaced picks along the gain axis, endpoints included *)
    Array.init max_points (fun k ->
        let idx =
          int_of_float
            (Float.round
               (float_of_int k *. float_of_int (n - 1)
               /. float_of_int (max_points - 1)))
        in
        sorted.(idx))
  end
