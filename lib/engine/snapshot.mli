(** Versioned, self-describing run snapshots.

    A snapshot is a typed key/value store persisted as plain text:

    {v
    hieropt-snapshot <format version>
    fingerprint "<config fingerprint>"
    <typed entries, one per line, keys sorted>
    end <entry count>
    v}

    The header makes a file self-describing (magic + format version), the
    fingerprint ties it to the configuration that produced it (same
    config-salting idea as the eval cache, so a snapshot can never be
    replayed against a different setup), and the trailing [end] line
    detects truncation.  Floats are stored with the lossless [%h]
    representation, PRNG states as raw hex words, so a save/load
    round-trip is bit-exact.

    {!save} is atomic: the file is written to [path ^ ".tmp"] and then
    renamed over [path], so a crash ([kill -9] included) at any instant
    leaves either the previous or the next complete snapshot on disk,
    never a torn one. *)

type t

val format_version : int
(** Current on-disk format version (1). *)

val create : fingerprint:string -> t
(** Fresh, empty snapshot bound to a config fingerprint. *)

val fingerprint : t -> string

(* ---- typed entries ---- *)

val set_int : t -> string -> int -> unit
val get_int : t -> string -> int option

val set_string : t -> string -> string -> unit
val get_string : t -> string -> string option

val set_floats : t -> string -> float array -> unit
val get_floats : t -> string -> float array option
(** Lossless ([%h] text) float vectors. *)

val set_rows : t -> string -> float array array -> unit
val get_rows : t -> string -> float array array option
(** A list of float vectors (GA populations, completed-sample
    prefixes, ...); each row round-trips losslessly. *)

val set_bits : t -> string -> int64 array -> unit
val get_bits : t -> string -> int64 array option
(** Raw 64-bit words (PRNG state captures). *)

val mem : t -> string -> bool
val remove : t -> string -> unit

(* ---- persistence ---- *)

val save : t -> string -> unit
(** Atomic write: tmp file + rename.  @raise Sys_error on I/O failure. *)

type load_error =
  | Missing of string  (** no snapshot file at this path *)
  | Corrupt of string  (** bad magic, torn/truncated body, malformed entry *)
  | Version_mismatch of { found : int; expected : int }
  | Fingerprint_mismatch of { found : string; expected : string }

val load_error_to_string : load_error -> string

val load : fingerprint:string -> string -> (t, load_error) result
(** Load and validate a snapshot.  Every failure mode is an [Error] —
    callers are expected to warn and cold-start, never crash. *)
