(* Source, Netlist, netlist front-end, Process, Topologies tests *)
module C = Repro_circuit
module Source = C.Source
module Netlist = C.Netlist
module Process = C.Process
module Topologies = C.Topologies

let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---- sources ---- *)

let test_dc () =
  checkf "dc" 1.5 (Source.value (Source.Dc 1.5) 42.0);
  checkf "dc_value" 1.5 (Source.dc_value (Source.Dc 1.5))

let pulse =
  Source.Pulse
    { v1 = 0.0; v2 = 1.0; delay = 1e-9; rise = 1e-9; fall = 1e-9;
      width = 2e-9; period = 10e-9 }

let test_pulse_phases () =
  checkf "before delay" 0.0 (Source.value pulse 0.5e-9);
  checkf "mid rise" 0.5 (Source.value pulse 1.5e-9);
  checkf "plateau" 1.0 (Source.value pulse 3e-9);
  checkf "mid fall" 0.5 (Source.value pulse 4.5e-9);
  checkf "after fall" 0.0 (Source.value pulse 6e-9);
  (* periodic repetition *)
  checkf "second period plateau" 1.0 (Source.value pulse 13e-9)

let test_pwl () =
  let s = Source.Pwl [| (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) |] in
  checkf "before first" 0.0 (Source.value s (-1.0));
  checkf "interp" 1.0 (Source.value s 0.5);
  checkf "flat" 2.0 (Source.value s 2.0);
  checkf "after last" 0.0 (Source.value s 10.0)

let test_sin () =
  let s = Source.Sin { offset = 1.0; ampl = 0.5; freq = 1.0; phase_deg = 0.0 } in
  checkf "t=0" 1.0 (Source.value s 0.0);
  Alcotest.(check (float 1e-6)) "quarter period" 1.5 (Source.value s 0.25)

(* ---- netlist ---- *)

let test_node_interning () =
  let n = Netlist.create () in
  Alcotest.(check int) "ground aliases gnd" Netlist.ground (Netlist.node n "gnd");
  Alcotest.(check int) "ground aliases 0" Netlist.ground (Netlist.node n "0");
  Alcotest.(check int) "ground aliases GND" Netlist.ground (Netlist.node n "GND");
  let a = Netlist.node n "a" in
  Alcotest.(check int) "same name same id" a (Netlist.node n "a");
  Alcotest.(check bool) "new name new id" true (Netlist.node n "b" <> a);
  Alcotest.(check int) "node count" 3 (Netlist.node_count n);
  Alcotest.(check string) "node_name inverse" "a" (Netlist.node_name n a)

let test_duplicate_names_rejected () =
  let n = Netlist.create () in
  Netlist.resistor n "R1" "a" "b" 1e3;
  Alcotest.(check bool) "duplicate element name" true
    (try Netlist.resistor n "R1" "a" "0" 1e3; false
     with Invalid_argument _ -> true)

let test_element_order_preserved () =
  let n = Netlist.create () in
  Netlist.resistor n "R1" "a" "b" 1e3;
  Netlist.capacitor n "C1" "b" "0" 1e-12;
  Netlist.vsource n "V1" "a" "0" (Source.Dc 1.0);
  let names = List.map Netlist.element_name (Netlist.elements n) in
  Alcotest.(check (list string)) "insertion order" [ "R1"; "C1"; "V1" ] names

let test_map_elements_copy_semantics () =
  let n = Netlist.create () in
  Netlist.resistor n "R1" "a" "0" 1e3;
  let n2 =
    Netlist.map_elements
      (fun el ->
        match el with
        | Netlist.Resistor r -> Netlist.Resistor { r with value = 2e3 }
        | other -> other)
      n
  in
  let value net =
    match Netlist.elements net with
    | [ Netlist.Resistor { value; _ } ] -> value
    | _ -> Alcotest.fail "unexpected netlist shape"
  in
  checkf "original untouched" 1e3 (value n);
  checkf "copy rewritten" 2e3 (value n2)

let test_mos_count () =
  let net = Topologies.ring_vco ~vctl:0.8 Topologies.vco_default in
  (* 2 bias + 4 per stage x 5 stages = 22 *)
  Alcotest.(check int) "ring VCO transistor count" 22 (Netlist.mos_count net)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_to_spice_mentions_all () =
  let net = Topologies.voltage_divider ~r1:1e3 ~r2:2e3 ~vin:1.0 in
  let deck = Netlist.to_spice net in
  List.iter
    (fun frag ->
      if not (contains deck frag) then Alcotest.failf "deck missing %S" frag)
    [ "R1"; "R2"; "Vin"; ".end" ]

(* ---- netlist front end (repro_netlist) ---- *)

let parse s = Repro_netlist.Elab.netlist_of_string s

let test_parse_rc () =
  let net = parse "R1 in out 1k\nC1 out 0 1n\nVin in 0 2.5\n.end\n" in
  Alcotest.(check int) "3 elements" 3 (List.length (Netlist.elements net));
  match Netlist.elements net with
  | [ Netlist.Resistor { value = r; _ }; Netlist.Capacitor { value = c; _ };
      Netlist.Vsource { source; _ } ] ->
    checkf "r" 1e3 r;
    checkf "c" 1e-9 c;
    checkf "v" 2.5 (Source.dc_value source)
  | _ -> Alcotest.fail "wrong element kinds"

let test_parse_continuation_and_comments () =
  let net =
    parse "* a comment\nR1 in out\n+ 2k ; trailing comment\nVin in 0 1\n"
  in
  match Netlist.elements net with
  | [ Netlist.Resistor { value; _ }; Netlist.Vsource _ ] -> checkf "r" 2e3 value
  | _ -> Alcotest.fail "continuation mishandled"

let test_parse_pulse_source () =
  let net = parse "V1 a 0 PULSE(0 1.2 0 10p 10p 1n 2n)\n" in
  match Netlist.elements net with
  | [ Netlist.Vsource { source = Source.Pulse { v2; width; _ }; _ } ] ->
    checkf "v2" 1.2 v2;
    checkf "width" 1e-9 width
  | _ -> Alcotest.fail "pulse not parsed"

let test_parse_mosfet_with_model () =
  let deck =
    ".model mynmos NMOS vth0=0.4 kp=300u\nM1 d g s mynmos W=10u L=0.2u\nVd d 0 1.2\nVg g 0 0.8\nVs s 0 0\n"
  in
  let net = parse deck in
  let mos =
    List.find_map
      (function
        | Netlist.Mos { w; l; model; _ } -> Some (w, l, model)
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
        | Netlist.Isource _ -> None)
      (Netlist.elements net)
  in
  match mos with
  | Some (w, l, model) ->
    checkf "W" 10e-6 w;
    checkf "L" 0.2e-6 l;
    checkf "vth0 override" 0.4 model.C.Mosfet.vth0;
    checkf "kp override" 300e-6 model.C.Mosfet.kp
  | None -> Alcotest.fail "no mosfet parsed"

let test_parse_mosfet_with_bulk () =
  let net = parse "M1 d g s b nmos W=1u L=0.2u\nVd d 0 1\nVg g 0 1\nVs s 0 0\nVb b 0 0\n" in
  Alcotest.(check int) "bulk accepted and ignored" 1 (Netlist.mos_count net)

let test_parse_errors () =
  let expect_error deck =
    try
      ignore (parse deck);
      Alcotest.failf "expected Netlist_error for %S" deck
    with Repro_netlist.Loc.Netlist_error _ -> ()
  in
  expect_error "R1 a b\n";
  expect_error "R1 a b abc\n";
  expect_error "Qx a b c\n";
  expect_error "M1 d g s unknown_model W=1u L=1u\n";
  expect_error "M1 d g s nmos W=1u\n";
  expect_error ".model foo BJT\n";
  expect_error "+ continuation first\n"

let test_parse_roundtrip_through_to_spice () =
  let net1 = Topologies.voltage_divider ~r1:1e3 ~r2:2e3 ~vin:1.0 in
  let net2 = parse (Netlist.to_spice net1) in
  Alcotest.(check int) "element count preserved"
    (List.length (Netlist.elements net1))
    (List.length (Netlist.elements net2))

let test_parse_subckt () =
  let deck = {|
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 1k
.ends
Vin in 0 2
Xa in 0 tap divider
Rload tap 0 1meg
|} in
  let net = parse deck in
  (* flattened: xa.R1, xa.R2, plus Vin and Rload *)
  let names = List.map Netlist.element_name (Netlist.elements net) in
  Alcotest.(check (list string)) "flattened names"
    [ "Vin"; "Xa.R1"; "Xa.R2"; "Rload" ] names;
  (* the port node "mid" maps to the outer "tap" *)
  Alcotest.(check bool) "outer node exists" true
    (Netlist.find_node net "tap" <> None);
  (* the divider actually divides under DC *)
  let cm = Repro_spice.Mna.compile net in
  let r = Repro_spice.Dcop.solve cm in
  Alcotest.(check (float 2e-3)) "divider works" 1.0
    (Repro_spice.Dcop.node_voltage cm r "tap")

let test_parse_subckt_internal_nodes_prefixed () =
  let deck = {|
.subckt cell a
R1 a internal 1k
R2 internal 0 1k
.ends
V1 n1 0 1
Xu n1 cell
Xv n1 cell
|} in
  let net = parse deck in
  Alcotest.(check bool) "instance-scoped internals" true
    (Netlist.find_node net "Xu.internal" <> None
    && Netlist.find_node net "Xv.internal" <> None);
  Alcotest.(check int) "4 resistors" 5 (List.length (Netlist.elements net))

let test_parse_subckt_nested_instantiation () =
  let deck = {|
.subckt leaf a b
R1 a b 2k
.ends
.subckt pair top bot
Xl top m leaf
Xr m bot leaf
.ends
V1 in 0 1
Xp in 0 pair
|} in
  let net = parse deck in
  (* two leaf resistors in series: 4k total from 1 V -> 0.25 mA *)
  let cm = Repro_spice.Mna.compile net in
  let r = Repro_spice.Dcop.solve cm in
  Alcotest.(check (float 1e-7)) "series through nested subckts" (-2.5e-4)
    (Repro_spice.Dcop.source_current cm r "V1");
  Alcotest.(check bool) "doubly-prefixed node" true
    (Netlist.find_node net "Xp.m" <> None)

let test_parse_subckt_errors () =
  let expect_error deck =
    try ignore (parse deck); Alcotest.failf "expected error for %S" deck
    with Repro_netlist.Loc.Netlist_error _ -> ()
  in
  expect_error ".subckt foo a
R1 a 0 1k
";          (* missing .ends *)
  expect_error "X1 a b nosuch
V1 a 0 1
";            (* unknown subckt *)
  expect_error ".subckt foo a b
R1 a b 1k
.ends
V1 n 0 1
X1 n foo
" (* port count mismatch *)

(* ---- process ---- *)

let test_sample_perturbs_only_mos () =
  let net = Topologies.ring_vco ~vctl:0.8 Topologies.vco_default in
  let prng = Repro_util.Prng.create 42 in
  let p = Process.sample Process.default prng net in
  let shifts =
    List.filter_map
      (function
        | Netlist.Mos { vth_shift; _ } -> Some vth_shift
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
        | Netlist.Isource _ -> None)
      (Netlist.elements p)
  in
  Alcotest.(check int) "all mos perturbed" 22 (List.length shifts);
  Alcotest.(check bool) "shifts non-trivial" true
    (List.exists (fun s -> Float.abs s > 1e-5) shifts);
  (* original untouched *)
  List.iter
    (function
      | Netlist.Mos { vth_shift; _ } ->
        checkf "nominal unchanged" 0.0 vth_shift
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
      | Netlist.Isource _ -> ())
    (Netlist.elements net)

let test_sample_determinism () =
  let net = Topologies.ring_vco ~vctl:0.8 Topologies.vco_default in
  let shifts_of seed =
    let prng = Repro_util.Prng.create seed in
    Process.sample Process.default prng net
    |> Netlist.elements
    |> List.filter_map (function
         | Netlist.Mos { vth_shift; _ } -> Some vth_shift
         | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
         | Netlist.Isource _ -> None)
  in
  Alcotest.(check (list (float 0.0))) "same seed same sample" (shifts_of 9)
    (shifts_of 9);
  Alcotest.(check bool) "different seeds differ" true
    (shifts_of 9 <> shifts_of 10)

let test_mismatch_only_no_global () =
  (* with mismatch-only, big devices get small shifts: check the spread
     scales down with area by comparing two topology sizes *)
  let small = { Topologies.vco_default with Topologies.wn = 10e-6 } in
  ignore small;
  let net = Topologies.ring_vco ~vctl:0.8 Topologies.vco_default in
  let prng = Repro_util.Prng.create 4 in
  let p = Process.sample Process.mismatch_only prng net in
  let shifts =
    List.filter_map
      (function
        | Netlist.Mos { vth_shift; _ } -> Some (Float.abs vth_shift)
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
        | Netlist.Isource _ -> None)
      (Netlist.elements p)
  in
  Alcotest.(check bool) "local shifts small (< 20 mV)" true
    (List.for_all (fun s -> s < 0.02) shifts)

let test_corners () =
  let net = Topologies.inverter ~wn:2e-6 ~wp:4e-6 ~l:0.12e-6 (Source.Dc 0.6) in
  let vth_of corner polarity =
    Process.corner corner net
    |> Netlist.elements
    |> List.find_map (function
         | Netlist.Mos { model; vth_shift; _ } when model.C.Mosfet.polarity = polarity ->
           Some vth_shift
         | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Capacitor _
         | Netlist.Vsource _ | Netlist.Isource _ -> None)
    |> Option.get
  in
  checkf "TT neutral" 0.0 (vth_of Process.Tt C.Mosfet.Nmos);
  Alcotest.(check bool) "SS slow NMOS" true (vth_of Process.Ss C.Mosfet.Nmos > 0.0);
  Alcotest.(check bool) "FF fast PMOS" true (vth_of Process.Ff C.Mosfet.Pmos < 0.0);
  Alcotest.(check bool) "SF splits" true
    (vth_of Process.Sf C.Mosfet.Nmos > 0.0 && vth_of Process.Sf C.Mosfet.Pmos < 0.0);
  Alcotest.(check string) "corner name" "FS" (Process.corner_name Process.Fs)

(* ---- topologies ---- *)

let test_vco_param_vector_roundtrip () =
  let p = Topologies.vco_default in
  let v = Topologies.vco_vector_of_params p in
  Alcotest.(check int) "7 designables" 7 (Array.length v);
  let p2 = Topologies.vco_params_of_vector v in
  Alcotest.(check bool) "roundtrip" true (p = p2)

let test_vco_bounds_match_paper () =
  Alcotest.(check int) "7 bounds" 7 (Array.length Topologies.vco_bounds);
  (* paper ranges: W in [10u, 100u], L in [0.12u, 1u] *)
  Array.iteri
    (fun i (lo, hi) ->
      let name = Topologies.vco_param_names.(i) in
      if String.length name > 0 && name.[0] = 'w' then begin
        checkf "W lower" 10e-6 lo;
        checkf "W upper" 100e-6 hi
      end
      else begin
        checkf "L lower" 0.12e-6 lo;
        checkf "L upper" 1e-6 hi
      end)
    Topologies.vco_bounds

let test_ring_vco_structure () =
  let net = Topologies.ring_vco ~stages:5 ~vctl:0.8 Topologies.vco_default in
  Alcotest.(check bool) "has s1..s5" true
    (List.for_all
       (fun i -> Netlist.find_node net (Printf.sprintf "s%d" i) <> None)
       [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "has bias node" true (Netlist.find_node net "vbp" <> None);
  Alcotest.(check bool) "even stages rejected" true
    (try ignore (Topologies.ring_vco ~stages:4 ~vctl:0.8 Topologies.vco_default); false
     with Invalid_argument _ -> true)

let test_ring_vco_stage_count_param () =
  let net3 = Topologies.ring_vco ~stages:3 ~vctl:0.8 Topologies.vco_default in
  Alcotest.(check int) "3-stage transistor count" (2 + (4 * 3))
    (Netlist.mos_count net3)

let suite =
  [
    Alcotest.test_case "dc source" `Quick test_dc;
    Alcotest.test_case "pulse phases" `Quick test_pulse_phases;
    Alcotest.test_case "pwl source" `Quick test_pwl;
    Alcotest.test_case "sin source" `Quick test_sin;
    Alcotest.test_case "node interning" `Quick test_node_interning;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names_rejected;
    Alcotest.test_case "element order" `Quick test_element_order_preserved;
    Alcotest.test_case "map_elements copies" `Quick test_map_elements_copy_semantics;
    Alcotest.test_case "ring VCO mos count" `Quick test_mos_count;
    Alcotest.test_case "to_spice contents" `Quick test_to_spice_mentions_all;
    Alcotest.test_case "parse RC deck" `Quick test_parse_rc;
    Alcotest.test_case "parse continuations" `Quick test_parse_continuation_and_comments;
    Alcotest.test_case "parse pulse" `Quick test_parse_pulse_source;
    Alcotest.test_case "parse mosfet + .model" `Quick test_parse_mosfet_with_model;
    Alcotest.test_case "parse mosfet with bulk" `Quick test_parse_mosfet_with_bulk;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "deck roundtrip" `Quick test_parse_roundtrip_through_to_spice;
    Alcotest.test_case "subckt flattening" `Quick test_parse_subckt;
    Alcotest.test_case "subckt internal scoping" `Quick test_parse_subckt_internal_nodes_prefixed;
    Alcotest.test_case "subckt nested instantiation" `Quick test_parse_subckt_nested_instantiation;
    Alcotest.test_case "subckt errors" `Quick test_parse_subckt_errors;
    Alcotest.test_case "process perturbs mos" `Quick test_sample_perturbs_only_mos;
    Alcotest.test_case "process determinism" `Quick test_sample_determinism;
    Alcotest.test_case "mismatch-only magnitudes" `Quick test_mismatch_only_no_global;
    Alcotest.test_case "corners" `Quick test_corners;
    Alcotest.test_case "vco param roundtrip" `Quick test_vco_param_vector_roundtrip;
    Alcotest.test_case "vco bounds = paper ranges" `Quick test_vco_bounds_match_paper;
    Alcotest.test_case "ring vco structure" `Quick test_ring_vco_structure;
    Alcotest.test_case "ring vco stage param" `Quick test_ring_vco_stage_count_param;
  ]
