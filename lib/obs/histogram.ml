type t = {
  lo : float;
  log_lo : float;
  scale : float; (* buckets / ln (hi / lo) *)
  counts : int array;
  mutex : Mutex.t;
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(buckets = 72) ?(lo = 1e-6) ?(hi = 1e3) () =
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be >= 1";
  if not (lo > 0.0 && hi > lo) then
    invalid_arg "Histogram.create: need 0 < lo < hi";
  {
    lo;
    log_lo = log lo;
    scale = float_of_int buckets /. (log hi -. log lo);
    counts = Array.make buckets 0;
    mutex = Mutex.create ();
    total = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let buckets t = Array.length t.counts

let bucket_of t v =
  if v <= t.lo then 0
  else
    let k = int_of_float ((log v -. t.log_lo) *. t.scale) in
    if k < 0 then 0 else if k >= buckets t then buckets t - 1 else k

(* geometric lower edge of bucket [k] *)
let edge t k = exp (t.log_lo +. (float_of_int k /. t.scale))

let observe t v =
  if Float.is_finite v then begin
    Mutex.lock t.mutex;
    t.counts.(bucket_of t v) <- t.counts.(bucket_of t v) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    Mutex.unlock t.mutex
  end

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f

(* quantile over an already-consistent copy of the counters: walk the
   cumulative counts to the target rank, interpolate geometrically
   inside the bucket, then clamp into the observed [min, max] — which
   makes single-bucket data (all values equal) exact and every quantile
   bounded by the true extremes *)
let quantile_of ~counts ~total ~vmin ~vmax t q =
  if total = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int (total - 1) in
    let k = ref 0 in
    let below = ref 0 in
    while
      !k < Array.length counts - 1
      && float_of_int (!below + counts.(!k)) <= rank
    do
      below := !below + counts.(!k);
      incr k
    done;
    let in_bucket = max 1 counts.(!k) in
    let frac = (rank -. float_of_int !below) /. float_of_int in_bucket in
    let est = edge t !k *. exp (frac /. t.scale) in
    Float.min vmax (Float.max vmin est)
  end

type stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let stats t =
  Mutex.lock t.mutex;
  let counts = Array.copy t.counts in
  let total = t.total and sum = t.sum in
  let vmin = t.vmin and vmax = t.vmax in
  Mutex.unlock t.mutex;
  if total = 0 then
    { count = 0; sum = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else
    let q p = quantile_of ~counts ~total ~vmin ~vmax t p in
    { count = total; sum; min = vmin; max = vmax;
      p50 = q 0.5; p90 = q 0.9; p99 = q 0.99 }

let quantile t q =
  Mutex.lock t.mutex;
  let counts = Array.copy t.counts in
  let total = t.total and vmin = t.vmin and vmax = t.vmax in
  Mutex.unlock t.mutex;
  quantile_of ~counts ~total ~vmin ~vmax t q

let count t =
  Mutex.lock t.mutex;
  let n = t.total in
  Mutex.unlock t.mutex;
  n

(* ---- named registry (the /metrics surface) ----------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let get ?buckets ?lo ?hi name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h = create ?buckets ?lo ?hi () in
      Hashtbl.add registry name h;
      h
  in
  Mutex.unlock registry_mutex;
  h

let all () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let clear_registry () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex
