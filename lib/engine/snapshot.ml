type value =
  | Int of int
  | Str of string
  | Floats of float array
  | Rows of float array array
  | Bits of int64 array

type t = {
  fp : string;
  table : (string, value) Hashtbl.t;
}

let magic = "hieropt-snapshot"
let format_version = 1

let create ~fingerprint = { fp = fingerprint; table = Hashtbl.create 64 }
let fingerprint t = t.fp

let set_int t k v = Hashtbl.replace t.table k (Int v)
let set_string t k v = Hashtbl.replace t.table k (Str v)
let set_floats t k v = Hashtbl.replace t.table k (Floats (Array.copy v))
let set_rows t k v = Hashtbl.replace t.table k (Rows (Array.map Array.copy v))
let set_bits t k v = Hashtbl.replace t.table k (Bits (Array.copy v))

let get_int t k =
  match Hashtbl.find_opt t.table k with Some (Int v) -> Some v | _ -> None

let get_string t k =
  match Hashtbl.find_opt t.table k with Some (Str v) -> Some v | _ -> None

let get_floats t k =
  match Hashtbl.find_opt t.table k with
  | Some (Floats v) -> Some (Array.copy v)
  | _ -> None

let get_rows t k =
  match Hashtbl.find_opt t.table k with
  | Some (Rows v) -> Some (Array.map Array.copy v)
  | _ -> None

let get_bits t k =
  match Hashtbl.find_opt t.table k with
  | Some (Bits v) -> Some (Array.copy v)
  | _ -> None

let mem t k = Hashtbl.mem t.table k
let remove t k = Hashtbl.remove t.table k

(* ---- persistence ------------------------------------------------- *)
(* One entry per line: a type tag, the %S-escaped key, then a payload
   with no embedded whitespace (floats as lossless %h, words as hex,
   rows '|'-separated).  Keys are written sorted so equal snapshots
   produce byte-equal files. *)

let floats_payload v =
  String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") v))

let bits_payload v =
  String.concat "," (Array.to_list (Array.map (Printf.sprintf "%Lx") v))

let parse_list f s =
  if s = "" then [||]
  else Array.of_list (List.map f (String.split_on_char ',' s))

let parse_floats s = parse_list float_of_string s
let parse_bits s = parse_list (fun w -> Scanf.sscanf w "%Lx%!" Fun.id) s

let entry_line k = function
  | Int v -> Printf.sprintf "i %S %d" k v
  | Str v -> Printf.sprintf "s %S %S" k v
  | Floats v -> Printf.sprintf "f %S %s" k (floats_payload v)
  | Bits v -> Printf.sprintf "b %S %s" k (bits_payload v)
  | Rows v ->
    Printf.sprintf "r %S %s" k
      (String.concat "|" (Array.to_list (Array.map floats_payload v)))

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Printf.fprintf oc "%s %d\n" magic format_version;
     Printf.fprintf oc "fingerprint %S\n" t.fp;
     let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []) in
     List.iter
       (fun k -> output_string oc (entry_line k (Hashtbl.find t.table k) ^ "\n"))
       keys;
     Printf.fprintf oc "end %d\n" (List.length keys);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

type load_error =
  | Missing of string
  | Corrupt of string
  | Version_mismatch of { found : int; expected : int }
  | Fingerprint_mismatch of { found : string; expected : string }

let load_error_to_string = function
  | Missing path -> Printf.sprintf "no snapshot at %s" path
  | Corrupt detail -> Printf.sprintf "corrupt snapshot (%s)" detail
  | Version_mismatch { found; expected } ->
    Printf.sprintf "snapshot format version %d, this build reads %d" found
      expected
  | Fingerprint_mismatch { found; expected } ->
    Printf.sprintf
      "snapshot fingerprint %s does not match this configuration (%s)" found
      expected

exception Bad of load_error

let parse_entry t line =
  let fail detail = raise (Bad (Corrupt detail)) in
  if String.length line < 2 then fail ("malformed entry: " ^ line);
  let tag = line.[0] in
  let rest = String.sub line 2 (String.length line - 2) in
  try
    match tag with
    | 'i' -> Scanf.sscanf rest "%S %d%!" (fun k v -> set_int t k v)
    | 's' -> Scanf.sscanf rest "%S %S%!" (fun k v -> set_string t k v)
    | 'f' ->
      Scanf.sscanf rest "%S %s%!" (fun k p -> set_floats t k (parse_floats p))
    | 'b' ->
      Scanf.sscanf rest "%S %s%!" (fun k p -> set_bits t k (parse_bits p))
    | 'r' ->
      Scanf.sscanf rest "%S %s%!" (fun k p ->
          let rows =
            if p = "" then [||]
            else
              Array.of_list
                (List.map parse_floats (String.split_on_char '|' p))
          in
          set_rows t k rows)
    | _ -> fail (Printf.sprintf "unknown entry tag %C" tag)
  with
  | Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail ("malformed entry: " ^ line)

let load ~fingerprint path =
  if not (Sys.file_exists path) then Error (Missing path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let line () =
            match input_line ic with
            | l -> l
            | exception End_of_file -> raise (Bad (Corrupt "truncated file"))
          in
          let found_magic, version =
            try Scanf.sscanf (line ()) "%s %d%!" (fun m v -> (m, v))
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              raise (Bad (Corrupt "bad header"))
          in
          if found_magic <> magic then raise (Bad (Corrupt "bad magic"));
          if version <> format_version then
            raise
              (Bad (Version_mismatch { found = version; expected = format_version }));
          let found_fp =
            try Scanf.sscanf (line ()) "fingerprint %S%!" Fun.id
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              raise (Bad (Corrupt "bad fingerprint line"))
          in
          if found_fp <> fingerprint then
            raise
              (Bad (Fingerprint_mismatch { found = found_fp; expected = fingerprint }));
          let t = create ~fingerprint in
          let count = ref 0 in
          let rec entries () =
            let l = line () in
            match Scanf.sscanf l "end %d%!" Fun.id with
            | n ->
              if n <> !count then
                raise
                  (Bad
                     (Corrupt
                        (Printf.sprintf "entry count mismatch: %d read, %d declared"
                           !count n)))
            | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
              parse_entry t l;
              incr count;
              entries ()
          in
          entries ();
          Ok t
        with Bad e -> Error e)
  end
