(** System-level hierarchical optimisation (§4.5): NSGA-II over the PLL
    designables (Kvco, Ivco, C1, C2, R1) evaluating the behavioural PLL
    through the combined performance-and-variation model.

    For each candidate the variation model interpolates the min/max VCO
    gain and current (nominal ∓ ∆·nominal, the paper's Listing 2), the
    performance model interpolates nominal/min/max VCO jitter at those
    operating points, and the behavioural PLL is evaluated for all three
    variants — producing the nominal/min/max performance triples of
    Table 2.

    Objectives (minimised): nominal lock time, jitter sum, current.
    Constraints: the VCO band must cover the spec range, and — when
    [use_variation] is on (the paper's contribution; off reproduces the
    nominal-only baseline [10]) — the {e worst-case} variant must meet
    the lock-time and current limits. *)

type table2_row = {
  kv : float;       (** Hz/V *)
  kv_min : float;
  kv_max : float;
  iv : float;       (** A *)
  iv_min : float;
  iv_max : float;
  c1 : float;
  c2 : float;
  r1 : float;
  lock : float;     (** s, nominal *)
  lock_min : float; (** best across variants *)
  lock_max : float; (** worst across variants *)
  jit : float;      (** s, nominal *)
  jit_min : float;
  jit_max : float;
  curr : float;     (** A, nominal *)
  curr_min : float;
  curr_max : float;
}

val pp_row : Format.formatter -> table2_row -> unit

type model_query = (float * float) array -> Perf_table.point_eval array
(** A batched table-model oracle: (kvco, ivco) pairs in, one
    {!Perf_table.point_eval} per pair, order preserved.  The local
    oracle is [Perf_table.eval_points model]; [Repro_serve.Remote]
    provides one backed by a running model server.  Evaluations may run
    on pool worker domains, so implementations must be safe to call
    concurrently. *)

type config = {
  spec : Spec.t;
  model : Perf_table.t;
  icp : float;                  (** charge-pump current, A *)
  overhead_current : float;     (** non-VCO PLL current, A *)
  use_variation : bool;
  c1_bounds : float * float;
  c2_bounds : float * float;
  r1_bounds : float * float;
  query : model_query option;
      (** when set, every table-model interpolation during evaluation
          goes through this oracle instead of [model] — the remote-model
          path.  [model] is still used for the design-space bounds and
          as the fallback the remote adapter degrades to.  A faithful
          oracle (the served model of the same table files) yields
          bit-identical optimisation results. *)
}

val default_config : model:Perf_table.t -> config
(** Paper-like component ranges (C1 1–12 pF, C2 0.1–1.2 pF, R1 1–20 kΩ —
    R1 scaled up vs the paper's 1–3.8 kΩ because our substitute VCO has
    ~5x less gain, see DESIGN.md), Icp 200 µA, 8 mA overhead,
    variation-aware constraints on, [query = None] (direct in-process
    interpolation). *)

val objective_names : string array

val variant_config :
  config ->
  kvco:float ->
  ivco:float ->
  c1:float ->
  c2:float ->
  r1:float ->
  Repro_behave.Pll.config * float * float * float
(** Assemble the behavioural PLL for one (kvco, ivco) operating point;
    also returns the interpolated (jvco, fmin, fmax).  Exposed for the
    yield engine and bottom-up verification. *)

val evaluate_point :
  config ->
  kvco:float ->
  ivco:float ->
  c1:float ->
  c2:float ->
  r1:float ->
  (table2_row, string) result
(** One full nominal/min/max evaluation (also used to rebuild Table 2
    rows outside the GA). *)

val problem : config -> Repro_moo.Problem.t
(** 5-variable, 3-objective NSGA-II problem. *)

val row_of_individual : config -> Repro_moo.Nsga2.individual -> table2_row option
(** Re-evaluate an individual into a full row ([None] when it fails). *)

val select_design : config -> table2_row array -> table2_row option
(** The paper's "shaded row": the smallest-jitter row that clears the
    spec with margin (60% of the lock budget, 95% of the current budget;
    falls back to bare feasibility).  With [use_variation] the screening
    uses worst-case values, otherwise nominal ones — the difference the
    ablation bench measures. *)
