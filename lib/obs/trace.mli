(** Span-based tracing with Chrome [trace_event] export.

    Spans nest by call structure per domain: every [span] emits a
    begin/end pair tagged with the domain id, so a viewer
    ([chrome://tracing], Perfetto) reconstructs the nesting from the
    per-thread event stacks.  Events buffer in per-domain sinks — the
    hot emit path touches only domain-local state plus one atomic
    fetch-add for the global ordering sequence.

    Tracing is off by default and every instrumentation point is a
    cheap no-op then (one atomic load), so instrumented code paths are
    safe to leave enabled everywhere.  Instrumentation must never
    change results: nothing here touches PRNG state or evaluation
    outputs (the zero-perturbation contract, enforced by test). *)

type event = {
  name : string;
  ph : char;  (** 'B' begin | 'E' end | 'i' instant | 'C' counter *)
  ts : float;  (** microseconds since the trace epoch *)
  tid : int;
  seq : int;
  args : (string * string) list;
}

val start : ?gc:bool -> unit -> unit
(** Drop any buffered events, restart the clock/sequence, mint a fresh
    trace id, and enable collection.  [~gc:true] additionally captures
    [Gc.quick_stat] deltas (minor/major/promoted words, collection
    counts) at every span boundary and attaches them as args on the
    span's end event. *)

val stop : unit -> unit
(** Disable collection; buffered events stay available for [export]. *)

val enabled : unit -> bool

val gc_capture : unit -> bool
val set_gc_capture : bool -> unit

val id : unit -> string
(** The current trace id (minted by {!start}; [""] before the first
    start).  Carried across processes by the dist protocol and HTTP
    headers so a merge step can stitch per-process traces together. *)

val set_process_label : string -> unit
(** Human-readable name for this process ("coordinator",
    "worker:9401", …), written into the export metadata and as a
    Chrome [process_name] metadata event. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], bracketing it with begin/end events when
    tracing is enabled (the end event is emitted even when [f] raises).
    When disabled this is just [f ()]. *)

val current_span : unit -> int option
(** Id (the begin event's [seq]) of the innermost open span on this
    domain, if any.  This is what gets propagated as the remote parent
    span id. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (cache-hit ratios, one-off facts). *)

val counter : string -> int -> unit
(** [counter name v] records a Chrome counter sample ('C' event): the
    viewer renders these as a stacked value track over time (e.g. busy
    domains). *)

val events : unit -> event list
(** All buffered events in sequence order (analysis, tests). *)

val event_count : unit -> int
(** Number of buffered events (tests, report sizing). *)

val export : string -> int
(** Write all buffered events (sequence order) to [path] as a Chrome
    [trace_event] JSON document; returns the event count.  Timestamps
    are microseconds since {!start}.  A top-level ["meta"] object
    records this process's pid, wall-clock epoch, trace id and label so
    that [trace merge] can place several processes on one timeline. *)
