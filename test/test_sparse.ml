module Vec = Repro_linalg.Vec
module Matrix = Repro_linalg.Matrix
module Lu = Repro_linalg.Lu
module Sparse = Repro_linalg.Sparse
module Sparse_lu = Repro_linalg.Sparse_lu

(* ---- CSR basics --------------------------------------------------- *)

let test_builder_duplicates () =
  let b = Sparse.Builder.create ~n:3 in
  Sparse.Builder.add b 0 0 1.0;
  Sparse.Builder.add b 0 0 2.0;
  Sparse.Builder.add b 2 1 (-1.0);
  Sparse.Builder.add b 1 2 4.0;
  let s = Sparse.Builder.build b in
  Alcotest.(check int) "nnz sums duplicates" 3 (Sparse.nnz s);
  Alcotest.(check (float 1e-12)) "dup summed" 3.0 (Sparse.get s 0 0);
  Alcotest.(check (float 1e-12)) "entry" (-1.0) (Sparse.get s 2 1);
  Alcotest.(check (float 1e-12)) "absent" 0.0 (Sparse.get s 1 1);
  Alcotest.(check int) "absent index" (-1) (Sparse.index s 1 1)

let test_like_shares_pattern () =
  let b = Sparse.Builder.create ~n:2 in
  Sparse.Builder.add b 0 0 1.0;
  Sparse.Builder.add b 1 1 2.0;
  let s = Sparse.Builder.build b in
  let t = Sparse.like s in
  Alcotest.(check bool) "same pattern" true (Sparse.same_pattern s t);
  Alcotest.(check bool) "same fingerprint" true
    (Sparse.fingerprint s = Sparse.fingerprint t);
  Alcotest.(check (float 1e-12)) "values zeroed" 0.0 (Sparse.get t 0 0)

let test_roundtrip () =
  let m =
    Matrix.of_arrays
      [| [| 2.0; 0.0; 1.0 |]; [| 0.0; 3.0; 0.0 |]; [| -1.0; 0.0; 4.0 |] |]
  in
  let s = Sparse.of_matrix m in
  Alcotest.(check int) "nnz drops zeros" 5 (Sparse.nnz s);
  Alcotest.(check (array (array (float 1e-12)))) "roundtrip"
    (Matrix.to_arrays m)
    (Matrix.to_arrays (Sparse.to_matrix s));
  Alcotest.(check (array (float 1e-12))) "mul_vec"
    (Matrix.mul_vec m [| 1.0; 2.0; 3.0 |])
    (Sparse.mul_vec s [| 1.0; 2.0; 3.0 |])

(* ---- sparse LU vs dense LU ---------------------------------------- *)

let test_known_solve () =
  let m = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let _, num = Sparse_lu.factorise (Sparse.of_matrix m) in
  Alcotest.(check (array (float 1e-9))) "2x2 solve" [| 1.0; 3.0 |]
    (Sparse_lu.solve num [| 5.0; 10.0 |])

let test_pivoting () =
  let m = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let _, num = Sparse_lu.factorise (Sparse.of_matrix ~keep_zeros:true m) in
  Alcotest.(check (array (float 1e-12))) "pivot solve" [| 3.0; 2.0 |]
    (Sparse_lu.solve num [| 2.0; 3.0 |])

let test_singular_agreement () =
  (* structurally singular inputs raise Singular on both paths *)
  let cases =
    [
      ("rank-deficient", [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]);
      ( "zero column",
        [| [| 1.0; 0.0; 1.0 |]; [| 2.0; 0.0; 3.0 |]; [| 0.5; 0.0; 7.0 |] |] );
      ( "duplicate rows",
        [| [| 1.0; 2.0; 3.0 |]; [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] );
    ]
  in
  List.iter
    (fun (name, rows) ->
      let m = Matrix.of_arrays rows in
      let dense =
        try
          ignore (Lu.factorise m);
          None
        with Lu.Singular k -> Some k
      in
      let sparse =
        try
          ignore (Sparse_lu.factorise (Sparse.of_matrix ~keep_zeros:true m));
          None
        with Sparse_lu.Singular k -> Some k
      in
      Alcotest.(check bool) (name ^ ": both singular") true
        (dense <> None && sparse <> None);
      Alcotest.(check (option int)) (name ^ ": same column diagnostic") dense
        sparse)
    cases

(* random sparse diagonally-dominant (SPD-ish) systems: the sparse and
   dense paths agree on solution and determinant sign *)
let prop_sparse_vs_dense_random =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 2 14) (fun n ->
          let* entries =
            array_size (return (n * n)) (float_range (-10.0) 10.0)
          in
          let* mask = array_size (return (n * n)) (float_range 0.0 1.0) in
          let* rhs = array_size (return n) (float_range (-10.0) 10.0) in
          return (n, entries, mask, rhs)))
  in
  QCheck.Test.make ~name:"sparse LU matches dense LU on random systems"
    ~count:300 (QCheck.make gen) (fun (n, entries, mask, rhs) ->
      let m = Matrix.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          (* ~60% structural zeros off the diagonal *)
          if i = j || mask.((i * n) + j) < 0.4 then
            Matrix.set m i j entries.((i * n) + j)
        done;
        Matrix.add_to m i i (50.0 *. float_of_int n)
      done;
      let s = Sparse.of_matrix m in
      let xd = Lu.solve m rhs in
      let _, num = Sparse_lu.factorise s in
      let xs = Sparse_lu.solve num rhs in
      let dd = Lu.det m and ds = Sparse_lu.det num in
      Vec.max_abs_diff xd xs < 1e-8 *. (1.0 +. Vec.norm_inf xd)
      && Float.abs (dd -. ds) <= 1e-9 *. (1.0 +. Float.abs dd)
      && (dd = 0.0 || Float.abs ((dd /. ds) -. 1.0) < 1e-9))

(* MNA-stamped systems: assemble the ring-VCO Jacobian both densely and
   sparsely at a random bias point — solutions must agree tightly *)
let prop_sparse_vs_dense_mna =
  let gen =
    QCheck.Gen.(
      let* vctl = float_range 0.2 1.0 in
      let* bias = array_size (return 64) (float_range 0.0 1.2) in
      return (vctl, bias))
  in
  QCheck.Test.make ~name:"sparse LU matches dense LU on MNA stamps" ~count:25
    (QCheck.make gen) (fun (vctl, bias) ->
      let net =
        Repro_circuit.Topologies.ring_vco ~vctl
          Repro_circuit.Topologies.vco_default
      in
      let c = Repro_spice.Mna.compile net in
      let n = Repro_spice.Mna.size c in
      let x = Array.init n (fun i -> bias.(i mod Array.length bias)) in
      let jac = Matrix.create n n in
      let residual = Vec.create n in
      Repro_spice.Mna.assemble c ~x ~time:0.0 ~gmin:1e-12 ~source_scale:1.0
        ~cap_mode:Repro_spice.Mna.Dc ~jacobian:jac ~residual;
      let rhs = Array.map (fun r -> -.r) residual in
      let xd = Lu.solve jac rhs in
      let _, num = Sparse_lu.factorise (Sparse.of_matrix ~keep_zeros:true jac) in
      let xs = Sparse_lu.solve num rhs in
      Vec.max_abs_diff xd xs < 1e-7 *. (1.0 +. Vec.norm_inf xd))

(* refactorisation along a frozen pattern must reproduce a fresh
   factorisation of the same values *)
let test_refactorise_matches () =
  let m =
    Matrix.of_arrays
      [|
        [| 4.0; -1.0; 0.0; 0.5 |];
        [| -1.0; 5.0; -2.0; 0.0 |];
        [| 0.0; -2.0; 6.0; -1.0 |];
        [| 0.5; 0.0; -1.0; 3.0 |];
      |]
  in
  let s = Sparse.of_matrix m in
  let sym, num0 = Sparse_lu.factorise s in
  let b = [| 1.0; -2.0; 3.0; 0.25 |] in
  let x0 = Sparse_lu.solve num0 b in
  (* perturb the values, keep the pattern *)
  let s2 = Sparse.like s in
  Array.blit (Sparse.values s) 0 (Sparse.values s2) 0 (Sparse.nnz s);
  let vals = Sparse.values s2 in
  Array.iteri (fun i v -> vals.(i) <- v *. 1.1) vals;
  let num = Sparse_lu.create_numeric sym in
  Sparse_lu.refactorise num s2;
  let x1 = Sparse_lu.solve num b in
  let xd = Lu.solve (Sparse.to_matrix s2) b in
  Alcotest.(check bool) "refactorised solve matches dense" true
    (Vec.max_abs_diff x1 xd < 1e-9);
  (* and refactorising back to the original values recovers x0 *)
  Array.iteri (fun i v -> vals.(i) <- v /. 1.1) vals;
  Sparse_lu.refactorise num s2;
  let x2 = Sparse_lu.solve num b in
  Alcotest.(check bool) "round-trip refactorise" true
    (Vec.max_abs_diff x0 x2 < 1e-9)

(* mis-scaled singularity: a resistor island disconnected from ground
   with huge resistances used to slip past the absolute 1e-300 pivot
   cutoff (cancellation leaves ~1e-34 remnants) and produce garbage;
   the relative threshold reports Singular on both paths *)
let test_mis_scaled_singularity () =
  let net = Repro_circuit.Netlist.create () in
  Repro_circuit.Netlist.vsource net "Vdd" "vdd" "0"
    (Repro_circuit.Source.Dc 1.0);
  Repro_circuit.Netlist.resistor net "Rload" "vdd" "out" 1e3;
  Repro_circuit.Netlist.resistor net "Rg" "out" "0" 1e3;
  (* floating triangle, deliberately mis-scaled: 1e18-ohm resistors *)
  Repro_circuit.Netlist.resistor net "Ra" "fa" "fb" 1.0e18;
  Repro_circuit.Netlist.resistor net "Rb" "fb" "fc" 2.0e18;
  Repro_circuit.Netlist.resistor net "Rc" "fc" "fa" 3.0e18;
  let c = Repro_spice.Mna.compile net in
  let n = Repro_spice.Mna.size c in
  let x = Vec.create n in
  let jac = Matrix.create n n in
  let residual = Vec.create n in
  (* gmin 0: nothing may paper over the island *)
  Repro_spice.Mna.assemble c ~x ~time:0.0 ~gmin:0.0 ~source_scale:1.0
    ~cap_mode:Repro_spice.Mna.Dc ~jacobian:jac ~residual;
  Alcotest.(check bool) "dense reports Singular" true
    (try
       ignore (Lu.factorise jac);
       false
     with Lu.Singular _ -> true);
  Alcotest.(check bool) "sparse reports Singular" true
    (try
       ignore (Sparse_lu.factorise (Sparse.of_matrix ~keep_zeros:true jac));
       false
     with Sparse_lu.Singular _ -> true)

(* well-conditioned but uniformly tiny systems must still solve: the
   relative threshold must not reintroduce absolute-scale failures *)
let test_tiny_scale_solves () =
  let m =
    Matrix.of_arrays
      [| [| 2e-200; 1e-200 |]; [| 1e-200; 3e-200 |] |]
  in
  let x = Lu.solve m [| 5e-200; 10e-200 |] in
  Alcotest.(check (array (float 1e-9))) "dense tiny-scale solve"
    [| 1.0; 3.0 |] x;
  let _, num = Sparse_lu.factorise (Sparse.of_matrix m) in
  Alcotest.(check (array (float 1e-9))) "sparse tiny-scale solve"
    [| 1.0; 3.0 |]
    (Sparse_lu.solve num [| 5e-200; 10e-200 |])

(* ---- symbolic registry -------------------------------------------- *)

let test_registry_reuse () =
  Sparse_lu.clear_cache ();
  let b = Sparse.Builder.create ~n:3 in
  Sparse.Builder.add b 0 0 4.0;
  Sparse.Builder.add b 1 1 5.0;
  Sparse.Builder.add b 2 2 6.0;
  Sparse.Builder.add b 0 2 1.0;
  Sparse.Builder.add b 2 0 1.0;
  let s = Sparse.Builder.build b in
  Alcotest.(check bool) "cold miss" true (Sparse_lu.find_symbolic s = None);
  let sym, _ = Sparse_lu.factorise s in
  Sparse_lu.store_symbolic s sym;
  let t = Sparse.like s in
  Array.blit (Sparse.values s) 0 (Sparse.values t) 0 (Sparse.nnz s);
  Alcotest.(check bool) "hit on same-pattern copy" true
    (Sparse_lu.find_symbolic t = Some sym);
  let hits, misses = Sparse_lu.cache_stats () in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "one miss" 1 misses;
  Sparse_lu.clear_cache ()

(* symbolic analysis runs once across Monte-Carlo-style numeric solves
   of structurally identical netlists, observable via the telemetry
   counters the solver layer maintains *)
let test_mc_symbolic_runs_once () =
  Sparse_lu.clear_cache ();
  let base = Repro_engine.Telemetry.counter "solver.symbolic" in
  let base_re = Repro_engine.Telemetry.counter "solver.refactorise" in
  let net =
    Repro_circuit.Topologies.ring_vco ~vctl:0.5
      Repro_circuit.Topologies.vco_default
  in
  let prng = Repro_util.Prng.create 77 in
  let solves = 100 in
  for _ = 1 to solves do
    let sampled =
      Repro_circuit.Process.sample Repro_circuit.Process.default
        (Repro_util.Prng.split prng) net
    in
    let c = Repro_spice.Mna.compile sampled in
    match Repro_spice.Dcop.solve_result ~solver:Repro_engine.Config.Sparse c with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "dcop failed: %s" (Repro_spice.Solver_error.to_string e)
  done;
  let symbolic = Repro_engine.Telemetry.counter "solver.symbolic" - base in
  let refact = Repro_engine.Telemetry.counter "solver.refactorise" - base_re in
  Alcotest.(check int) "symbolic analysis ran once" 1 symbolic;
  Alcotest.(check bool)
    (Printf.sprintf "refactorisations dominate (%d across %d solves)" refact
       solves)
    true
    (refact >= solves);
  Sparse_lu.clear_cache ()

(* dcop through the sparse path agrees with the dense path *)
let test_dcop_sparse_vs_dense () =
  let net =
    Repro_circuit.Topologies.ring_vco ~vctl:0.5
      Repro_circuit.Topologies.vco_default
  in
  let c = Repro_spice.Mna.compile net in
  let dense =
    match Repro_spice.Dcop.solve_result ~solver:Repro_engine.Config.Dense c with
    | Ok r -> r
    | Error e ->
      Alcotest.failf "dense dcop failed: %s"
        (Repro_spice.Solver_error.to_string e)
  in
  let sparse =
    match Repro_spice.Dcop.solve_result ~solver:Repro_engine.Config.Sparse c with
    | Ok r -> r
    | Error e ->
      Alcotest.failf "sparse dcop failed: %s"
        (Repro_spice.Solver_error.to_string e)
  in
  Alcotest.(check string) "dense tagged" "dense" dense.Repro_spice.Dcop.solver;
  Alcotest.(check string) "sparse tagged" "sparse" sparse.Repro_spice.Dcop.solver;
  Alcotest.(check bool) "operating points agree" true
    (Vec.max_abs_diff dense.Repro_spice.Dcop.solution
       sparse.Repro_spice.Dcop.solution
    < 1e-6)

let suite =
  [
    Alcotest.test_case "builder duplicates" `Quick test_builder_duplicates;
    Alcotest.test_case "like shares pattern" `Quick test_like_shares_pattern;
    Alcotest.test_case "dense roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "known solve" `Quick test_known_solve;
    Alcotest.test_case "pivoting" `Quick test_pivoting;
    Alcotest.test_case "singular agreement" `Quick test_singular_agreement;
    Alcotest.test_case "refactorise matches" `Quick test_refactorise_matches;
    Alcotest.test_case "mis-scaled singularity" `Quick
      test_mis_scaled_singularity;
    Alcotest.test_case "tiny-scale solves" `Quick test_tiny_scale_solves;
    Alcotest.test_case "symbolic registry" `Quick test_registry_reuse;
    Alcotest.test_case "MC symbolic runs once" `Quick
      test_mc_symbolic_runs_once;
    Alcotest.test_case "dcop sparse vs dense" `Quick test_dcop_sparse_vs_dense;
    QCheck_alcotest.to_alcotest prop_sparse_vs_dense_random;
    QCheck_alcotest.to_alcotest prop_sparse_vs_dense_mna;
  ]
