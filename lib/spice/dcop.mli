(** DC operating-point analysis with gmin-stepping and source-stepping
    continuation fallbacks. *)

type result = {
  solution : Repro_linalg.Vec.t;  (** MNA unknown vector *)
  iterations : int;               (** total Newton iterations spent *)
  strategy : string;              (** "direct" | "gmin" | "source" *)
  solver : string;                (** "dense" | "sparse" linear kernel *)
}

exception No_convergence of string

val solve_result :
  ?x0:Repro_linalg.Vec.t ->
  ?solver:Repro_engine.Config.solver_mode ->
  ?workspace:Mna.workspace ->
  Mna.compiled ->
  (result, Solver_error.t) Stdlib.result
(** Find the DC operating point.  [x0] seeds the Newton iteration (e.g.
    a previous solution during a sweep).  Non-convergence of every
    continuation strategy is an [Error] carrying the structured
    {!Solver_error.t} — this is the primary entry point; {!solve} is a
    thin raising wrapper kept for compatibility.  [workspace] defaults
    to {!Mna.domain_workspace} (a pure performance hint; results are
    identical either way).
    @raise Invalid_argument on an [x0] size mismatch (a programming
    error, not a solver failure). *)

val solve :
  ?x0:Repro_linalg.Vec.t ->
  ?solver:Repro_engine.Config.solver_mode ->
  ?workspace:Mna.workspace ->
  Mna.compiled ->
  result
(** Raising wrapper over {!solve_result}.
    @raise No_convergence when all continuation strategies fail. *)

val node_voltage : Mna.compiled -> result -> string -> float
(** Voltage of a named node in a solved operating point.
    @raise Not_found for unknown names. *)

val source_current : Mna.compiled -> result -> string -> float
(** Branch current of a named voltage source (positive when flowing from
    the + terminal through the source to the - terminal).
    @raise Not_found for unknown names. *)
