(** Adapter from the HTTP client to {!Hieropt.Pll_problem.model_query},
    so the system-level optimiser can evaluate candidates against a
    model server instead of an in-process table.

    Because the server evaluates the very same {!Hieropt.Perf_table}
    code and floats cross the wire losslessly, a remote run is
    bit-identical to a local one — the server is a faithful oracle, and
    checkpoints taken under either path resume under the other.

    [fallback] (a locally-loaded table) makes the adapter degrade
    gracefully: if the server stays unreachable after the client's
    retries, the batch is evaluated locally and a telemetry counter
    ([serve.remote_fallbacks]) records the downgrade.  Without a
    fallback, server failure raises {!Remote_unavailable}. *)

exception Remote_unavailable of string

val model_query :
  ?fallback:Hieropt.Perf_table.t ->
  client:Client.t ->
  model:string ->
  unit ->
  Hieropt.Pll_problem.model_query

val parse_endpoint : string -> (string * int * string, string) result
(** Parse a [HOST:PORT] or [HOST:PORT/MODEL] spec (model defaults to
    ["default"]) as taken by the CLI's [--remote] flags. *)
