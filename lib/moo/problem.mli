(** Multi-objective optimisation problems (the paper's equation (1)).

    All objectives are {e minimised}; wrap maximised quantities with a
    sign flip.  Constraints are folded into a single non-negative
    violation amount so selection can use Deb's constraint-domination. *)

type evaluation = {
  objectives : float array;       (** to minimise *)
  constraint_violation : float;   (** 0 when feasible, > 0 otherwise *)
}

val feasible : evaluation -> bool

type t = {
  name : string;
  bounds : (float * float) array;      (** per-variable (lo, hi) box *)
  objective_names : string array;
  evaluate : float array -> evaluation;
}

val n_vars : t -> int
val n_objectives : t -> int

val create :
  name:string ->
  bounds:(float * float) array ->
  objective_names:string array ->
  (float array -> evaluation) ->
  t
(** @raise Invalid_argument on empty bounds/objectives or inverted
    bounds. *)

val clamp : t -> float array -> float array
(** Project a decision vector into the box. *)

val random_point : t -> Repro_util.Prng.t -> float array

val violation_of_bounds : lo:float -> hi:float -> float -> float
(** Helper: 0 inside [lo, hi], distance outside (for building
    [constraint_violation] sums). *)

val infeasible_evaluation : t -> penalty:float -> evaluation
(** An evaluation marking a failed (un-simulatable) design: worst-case
    objectives and the given violation. *)

val pack : evaluation -> float array
(** Flat [|constraint_violation; objectives...|] encoding — the cache
    value layout and the distributed eval-protocol row format. *)

val unpack : float array -> evaluation
(** Inverse of {!pack}. *)

type evaluator = t -> float array array -> evaluation array
(** Batch evaluation strategy.  Must return one evaluation per input, in
    input order, equal to what [t.evaluate] would return — optimisers
    inject these to parallelise/memoise without changing results. *)

val serial_evaluator : evaluator
(** The reference strategy: [t.evaluate] applied left to right. *)

val evaluate_all : ?evaluator:evaluator -> t -> float array array -> evaluation array
(** Batch entry point; defaults to {!serial_evaluator}. *)

val cache_kind : salt:string -> t -> string
(** The {!Repro_engine.Cache} key namespace for this problem under
    [salt] (["eval:<name>[:<salt>]"]) — shared by {!parallel_evaluator},
    {!cached_evaluator} and the distributed cache-warming protocol. *)

val cached_evaluator :
  ?cache:Repro_engine.Cache.t ->
  ?salt:string ->
  bulk:(t -> float array array -> evaluation array) ->
  unit ->
  evaluator
(** The cache-then-bulk skeleton behind {!parallel_evaluator}: consult
    the (optional) cache on the calling domain, hand only the misses to
    [bulk] — a local pool map, or the distributed eval-worker farm —
    then store and reassemble by index.  [bulk] must return one
    evaluation per input, in order, semantically equal to
    [t.evaluate]; anything else raises [Failure].  The cache keying
    (problem name + [salt]) is shared with {!parallel_evaluator}, so
    local and remote runs warm the same persisted cache. *)

val parallel_evaluator :
  ?pool:Repro_engine.Pool.t ->
  ?cache:Repro_engine.Cache.t ->
  ?salt:string ->
  unit ->
  evaluator
(** Evaluate batches across a domain pool (default: the shared pool, so
    [-j] / [HIEROPT_JOBS] applies), optionally memoised through a
    content-addressed {!Repro_engine.Cache} keyed on (decision vector,
    problem name, [salt]).  [salt] should fingerprint any ambient
    configuration the objective closure captures (spec, measurement
    options) so persisted caches cannot alias across set-ups.  For pure
    objectives the result is bit-identical to {!serial_evaluator} for
    any worker count.  Reports [eval.runs] / [eval.cache_hits] /
    [eval.wall] telemetry. *)
