type extrapolation = Clamp | Extend | Error

type t = {
  spline : Spline.t;
  extrapolation : extrapolation;
  lo : float;
  hi : float;
}

exception Out_of_range of float

let parse_control s =
  let s = String.trim (String.uppercase_ascii s) in
  let fail () = failwith (Printf.sprintf "Table1d: bad control string %S" s) in
  let n = String.length s in
  if n = 0 || n > 2 then fail ();
  let method_ =
    match s.[0] with
    | '1' -> Spline.Linear
    | '2' -> Spline.Quadratic
    | '3' -> Spline.Cubic
    | _ -> fail ()
  in
  let extrapolation =
    if n = 1 then Error
    else
      match s.[1] with
      | 'C' -> Clamp
      | 'L' -> Extend
      | 'E' -> Error
      | _ -> fail ()
  in
  (method_, extrapolation)

let control_string t =
  let digit =
    match Spline.method_of t.spline with
    | Spline.Linear -> "1"
    | Spline.Quadratic -> "2"
    | Spline.Cubic -> "3"
  in
  let letter =
    match t.extrapolation with Clamp -> "C" | Extend -> "L" | Error -> "E"
  in
  digit ^ letter

(* sort by x and average duplicate abscissae so the spline knots are
   strictly increasing *)
let prepare xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Table1d.build: length mismatch";
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let out_x = ref [] and out_y = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    let sum = ref 0.0 in
    while !j < n && xs.(idx.(!j)) = xs.(idx.(!i)) do
      sum := !sum +. ys.(idx.(!j));
      incr j
    done;
    out_x := xs.(idx.(!i)) :: !out_x;
    out_y := (!sum /. float_of_int (!j - !i)) :: !out_y;
    i := !j
  done;
  ( Array.of_list (List.rev !out_x),
    Array.of_list (List.rev !out_y) )

let build ?(control = "3E") xs ys =
  let method_, extrapolation = parse_control control in
  let xs, ys = prepare xs ys in
  if Array.length xs < 2 then
    invalid_arg "Table1d.build: need at least 2 distinct abscissae";
  let spline = Spline.build ~method_ xs ys in
  { spline; extrapolation; lo = xs.(0); hi = xs.(Array.length xs - 1) }

let eval t x =
  if x >= t.lo && x <= t.hi then Spline.eval t.spline x
  else
    match t.extrapolation with
    | Error -> raise (Out_of_range x)
    | Clamp -> Spline.eval t.spline (if x < t.lo then t.lo else t.hi)
    | Extend ->
      (* linear continuation using the end-segment slope *)
      let edge = if x < t.lo then t.lo else t.hi in
      Spline.eval t.spline edge
      +. (Spline.eval_deriv t.spline edge *. (x -. edge))

let eval_clamped t x =
  let x = if x < t.lo then t.lo else if x > t.hi then t.hi else x in
  Spline.eval t.spline x

let domain t = (t.lo, t.hi)
let size t = Array.length (Spline.knots t.spline)
