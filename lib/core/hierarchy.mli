(** The full hierarchical flow of the paper's Figure 4:

    1. circuit-level NSGA-II over the VCO sizing (→ Figure 7 front);
    2. Monte-Carlo variation modelling of every front design (→ Table 1);
    3. combined performance+variation table model (→ Listings 1/2);
    4. system-level NSGA-II over the PLL using the model (→ Table 2);
    5. design selection, bottom-up verification (parameter recovery +
       transistor-level re-simulation) and yield confirmation (→ §4.5 /
       Figure 8).

    [run] executes the whole flow deterministically from a seed;
    [ablation] re-runs step 4–5 with the variation model ignored during
    optimisation (the method of the paper's reference [10]) for the
    improvement comparison. *)

type scale = {
  vco_population : int;
  vco_generations : int;
  mc_samples : int;       (** per Pareto point *)
  front_max : int;        (** Pareto points kept for MC (cost bound) *)
  pll_population : int;
  pll_generations : int;
  yield_samples : int;
}

val paper_scale : scale
(** The paper's §4 settings: 100×30 circuit GA, 100 MC samples/point,
    full front, 60×20 system GA, 500 yield samples. *)

val bench_scale : scale
(** Reduced workload for the few-minute bench harness: 24×10 circuit GA,
    20 MC samples over ≤ 10 points, 24×8 system GA, 200 yield samples.
    Every code path is identical; only loop counts differ. *)

val scale_of_env : unit -> scale
(** [paper_scale] when {!Repro_engine.Config.full} reports that
    HIEROPT_FULL is set, else [bench_scale]. *)

type config = {
  seed : int;
  scale : scale;
  spec : Spec.t;
  measure : Repro_spice.Vco_measure.options;
  process : Repro_circuit.Process.spec;
  use_variation : bool;
  model_dir : string option;  (** where to save the .tbl model files *)
}

val default_config : ?scale:scale -> unit -> config

type verification = {
  requested : Repro_spice.Vco_measure.performance;
      (** the performance point handed down from system level *)
  mapped : Repro_circuit.Topologies.vco_params;
      (** transistor dimensions recovered through the p1..p7 tables *)
  measured : (Repro_spice.Vco_measure.performance, string) result;
      (** transistor-level re-simulation of the mapped sizing *)
}

type result = {
  front : Vco_problem.sized_design array;      (** step 1 *)
  entries : Variation_model.entry array;       (** step 2 *)
  model : Perf_table.t;                        (** step 3 *)
  rows : Pll_problem.table2_row array;         (** step 4 *)
  selected : Pll_problem.table2_row option;    (** step 5 *)
  verification : verification option;
  yield : Repro_util.Stats.yield_estimate option;
  pll_config : Pll_problem.config;
}

val run : ?progress:(string -> unit) -> config -> result
(** Evaluations run through the {!Repro_engine} subsystem: NSGA-II
    generations, Monte-Carlo trials and yield samples are spread over
    the shared domain pool ([-j] / HIEROPT_JOBS) and memoised in a
    content-addressed cache; when [model_dir] is set the cache is
    loaded from / saved to [model_dir ^ "/eval.cache"] next to the
    [.tbl] artefacts.  Results are bit-identical for any worker count
    and with a cold or warm cache.  Engine telemetry is emitted through
    [progress].
    @raise Failure when the circuit-level front is empty (no oscillating
    design found — should not happen at the default scales). *)

val run_system_level :
  ?progress:(string -> unit) ->
  config ->
  model:Perf_table.t ->
  result
(** Steps 4–5 only, over an existing model — used by the ablation bench
    to compare variation-aware vs nominal-only optimisation without
    re-running the expensive circuit level. *)

val verify_design :
  config -> model:Perf_table.t -> Pll_problem.table2_row -> verification
(** Bottom-up verification of a chosen row. *)
