type spec = {
  sigma_vth_global : float;
  sigma_kp_global : float;
  mismatch : bool;
  global_variation : bool;
}

let default =
  {
    sigma_vth_global = 6e-3;
    sigma_kp_global = 0.02;
    mismatch = true;
    global_variation = true;
  }

let mismatch_only = { default with global_variation = false }

let perturb_mos spec ~dvth_global ~dkp_global prng el =
  match el with
  | Netlist.Mos m ->
    let model = m.model in
    let polarity_idx =
      match model.Mosfet.polarity with Mosfet.Nmos -> 0 | Mosfet.Pmos -> 1
    in
    let g_vth = if spec.global_variation then dvth_global.(polarity_idx) else 0.0 in
    let g_kp = if spec.global_variation then dkp_global.(polarity_idx) else 0.0 in
    let l_vth, l_kp =
      if spec.mismatch then
        ( Repro_util.Prng.gaussian prng ~mean:0.0
            ~sigma:(Mosfet.sigma_vth model ~w:m.w ~l:m.l),
          Repro_util.Prng.gaussian prng ~mean:0.0
            ~sigma:(Mosfet.sigma_kp_rel model ~w:m.w ~l:m.l) )
      else (0.0, 0.0)
    in
    (* threshold magnitude shifts add; PMOS Vth is stored as a magnitude,
       so a positive shift always means a slower device *)
    Netlist.Mos
      {
        m with
        vth_shift = m.vth_shift +. g_vth +. l_vth;
        kp_scale = m.kp_scale *. (1.0 +. g_kp) *. (1.0 +. l_kp);
      }
  | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
  | Netlist.Isource _ -> el

let sample spec prng net =
  let g () = Repro_util.Prng.gaussian prng ~mean:0.0 ~sigma:1.0 in
  let dvth_global =
    [| spec.sigma_vth_global *. g (); spec.sigma_vth_global *. g () |]
  in
  let dkp_global =
    [| spec.sigma_kp_global *. g (); spec.sigma_kp_global *. g () |]
  in
  Netlist.map_elements (perturb_mos spec ~dvth_global ~dkp_global prng) net

type corner = Tt | Ss | Ff | Sf | Fs

let corner_name = function
  | Tt -> "TT"
  | Ss -> "SS"
  | Ff -> "FF"
  | Sf -> "SF"
  | Fs -> "FS"

(* S = slow = +3 sigma Vth, -3 sigma Kp; F = fast = the opposite *)
let corner_shifts c =
  let slow = (3.0, -3.0) and fast = (-3.0, 3.0) and typ = (0.0, 0.0) in
  match c with
  | Tt -> (typ, typ)
  | Ss -> (slow, slow)
  | Ff -> (fast, fast)
  | Sf -> (slow, fast) (* slow NMOS, fast PMOS *)
  | Fs -> (fast, slow)

let corner c net =
  let (nv, nk), (pv, pk) = corner_shifts c in
  let s = default in
  let shift el =
    match el with
    | Netlist.Mos m ->
      let v_sig, k_sig =
        match m.model.Mosfet.polarity with
        | Mosfet.Nmos -> (nv, nk)
        | Mosfet.Pmos -> (pv, pk)
      in
      Netlist.Mos
        {
          m with
          vth_shift = m.vth_shift +. (v_sig *. s.sigma_vth_global);
          kp_scale = m.kp_scale *. (1.0 +. (k_sig *. s.sigma_kp_global));
        }
    | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
    | Netlist.Isource _ -> el
  in
  Netlist.map_elements shift net
