(** NSGA-II: elitist non-dominated-sorting genetic algorithm (Deb et al.),
    the optimiser the paper uses at both hierarchy levels (§3.2, §4.2,
    §4.5).  Real-coded: simulated-binary crossover (SBX) + polynomial
    mutation, binary tournament on (rank, crowding), (µ+λ) elitism. *)

type individual = {
  x : float array;
  evaluation : Problem.evaluation;
}

type options = {
  population : int;       (** even, >= 4 *)
  generations : int;
  crossover_prob : float;
  eta_crossover : float;  (** SBX distribution index *)
  mutation_prob : float;  (** per-variable; <= 0 means 1/n_vars *)
  eta_mutation : float;   (** polynomial-mutation distribution index *)
}

val default_options : options
(** population 100, generations 30 (the paper's §4.2 settings),
    pc 0.9 / ηc 15, pm 1/n / ηm 20. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  individual array
(** Run the GA and return the final population.  Each generation's
    offspring are evaluated as one batch through [evaluator] (default:
    the serial path; pass {!Problem.parallel_evaluator} to spread
    evaluations over a domain pool and/or a cache — results are
    identical because all variation randomness is drawn before the
    batch is dispatched).  [on_generation] is called after each
    generation with the current population (for progress logging and
    convergence traces). *)

val pareto_front : individual array -> individual array
(** Feasible rank-0 subset of a population, deduplicated on objective
    vectors. *)

val evaluations : individual array -> Problem.evaluation array
