(* The observability layer: trace span balance and export format,
   histogram quantile properties, journal round-trips, the exact
   hypervolume indicator — and the zero-perturbation contract (a fully
   observed GA run produces bit-identical results to a bare one). *)

module Obs = Repro_obs
module Json = Repro_serve.Json

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let temp_dir () =
  let dir = Filename.temp_file "hieropt_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- trace ---- *)

let json_of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s is not valid JSON: %s" path e

let trace_events j =
  match Json.member "traceEvents" j with
  | Some (Json.Arr evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "event missing string field %s" name

let tid_of j =
  match Json.member "tid" j with
  | Some (Json.Num v) -> int_of_float v
  | _ -> Alcotest.fail "event missing numeric tid"

let test_trace_spans_balance () =
  with_dir @@ fun dir ->
  Obs.Trace.start ();
  let out =
    Obs.Trace.span "outer" ~args:[ ("k", "v") ] @@ fun () ->
    Obs.Trace.instant "marker";
    (try Obs.Trace.span "inner" (fun () -> failwith "boom")
     with Failure _ -> ());
    17
  in
  Obs.Trace.stop ();
  Alcotest.(check int) "span returns" 17 out;
  (* B outer, i marker, B inner, E inner, E outer *)
  Alcotest.(check int) "event count" 5 (Obs.Trace.event_count ());
  let path = Filename.concat dir "t.json" in
  Alcotest.(check int) "export count" 5 (Obs.Trace.export path);
  let evs = trace_events (json_of_file path) in
  let phases = List.map (str_field "ph") evs in
  Alcotest.(check (list string)) "phases in sequence order"
    [ "B"; "i"; "B"; "E"; "E" ] phases;
  (* every B has a matching E per tid, even for the raising span *)
  let depth = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let tid = tid_of e in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
      match str_field "ph" e with
      | "B" -> Hashtbl.replace depth tid (d + 1)
      | "E" ->
        if d <= 0 then Alcotest.fail "E without B";
        Hashtbl.replace depth tid (d - 1)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d unbalanced" tid)
    depth;
  (* args survive the export *)
  let outer = List.hd evs in
  (match Json.member "args" outer with
  | Some args -> (
    match Json.member "k" args with
    | Some (Json.Str "v") -> ()
    | _ -> Alcotest.fail "span args lost")
  | None -> Alcotest.fail "no args object")

let test_trace_disabled_passthrough () =
  (* make sure a previous test's buffers are gone, then stay disabled *)
  Obs.Trace.start ();
  Obs.Trace.stop ();
  let before = Obs.Trace.event_count () in
  let r = Obs.Trace.span "nope" (fun () -> 3) in
  Obs.Trace.instant "nope";
  Alcotest.(check int) "result passes through" 3 r;
  Alcotest.(check int) "no events buffered" before (Obs.Trace.event_count ());
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ())

let test_trace_concurrent_domains () =
  Obs.Trace.start ();
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 25 do
              Obs.Trace.span "work"
                ~args:[ ("d", string_of_int d); ("i", string_of_int i) ]
                (fun () -> ())
            done))
  in
  List.iter Domain.join doms;
  Obs.Trace.stop ();
  Alcotest.(check int) "all events captured" (4 * 25 * 2)
    (Obs.Trace.event_count ());
  with_dir @@ fun dir ->
  let path = Filename.concat dir "t.json" in
  ignore (Obs.Trace.export path);
  let evs = trace_events (json_of_file path) in
  (* per-tid streams must each be balanced *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = tid_of e in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
      match str_field "ph" e with
      | "B" -> Hashtbl.replace depth tid (d + 1)
      | "E" ->
        if d <= 0 then Alcotest.failf "tid %d: E without B" tid;
        Hashtbl.replace depth tid (d - 1)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d unbalanced" tid)
    depth

(* ---- histogram ---- *)

let test_histogram_basics () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  let s0 = Obs.Histogram.stats h in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 s0.Obs.Histogram.p50;
  List.iter (Obs.Histogram.observe h) [ 0.001; 0.002; 0.004; Float.nan ];
  Alcotest.(check int) "nan dropped" 3 (Obs.Histogram.count h);
  let s = Obs.Histogram.stats h in
  Alcotest.(check (float 1e-12)) "sum" 0.007 s.Obs.Histogram.sum;
  Alcotest.(check (float 1e-12)) "min" 0.001 s.Obs.Histogram.min;
  Alcotest.(check (float 1e-12)) "max" 0.004 s.Obs.Histogram.max;
  Alcotest.(check bool) "p50 in range" true
    (s.Obs.Histogram.p50 >= 0.001 && s.Obs.Histogram.p50 <= 0.004);
  let v = Obs.Histogram.time h (fun () -> 42) in
  Alcotest.(check int) "time passes result" 42 v;
  Alcotest.(check int) "time observed" 4 (Obs.Histogram.count h)

let test_histogram_registry () =
  Obs.Histogram.clear_registry ();
  let a = Obs.Histogram.get "reg.a" in
  let a' = Obs.Histogram.get "reg.a" in
  Obs.Histogram.observe a 0.5;
  Alcotest.(check int) "same instance" 1 (Obs.Histogram.count a');
  ignore (Obs.Histogram.get "reg.b");
  let names = List.map fst (Obs.Histogram.all ()) in
  Alcotest.(check (list string)) "sorted listing" [ "reg.a"; "reg.b" ] names;
  Obs.Histogram.clear_registry ();
  Alcotest.(check (list string)) "cleared" []
    (List.map fst (Obs.Histogram.all ()))

let positive_floats =
  QCheck.(list_of_size Gen.(int_range 1 200) (float_range 1e-7 1e4))

let prop_histogram_quantiles_monotone_bounded =
  QCheck.Test.make ~name:"histogram quantiles are monotone and bounded"
    ~count:200 positive_floats (fun xs ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) xs;
      let lo = List.fold_left Float.min Float.infinity xs in
      let hi = List.fold_left Float.max Float.neg_infinity xs in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vs = List.map (Obs.Histogram.quantile h) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vs && List.for_all (fun v -> v >= lo && v <= hi) vs)

let prop_histogram_exact_on_equal =
  QCheck.Test.make ~name:"histogram quantiles are exact on constant data"
    ~count:200
    QCheck.(pair (float_range 1e-7 1e4) (int_range 1 50))
    (fun (x, n) ->
      let h = Obs.Histogram.create () in
      for _ = 1 to n do
        Obs.Histogram.observe h x
      done;
      List.for_all
        (fun q -> Obs.Histogram.quantile h q = x)
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

(* ---- journal ---- *)

let test_journal_roundtrip () =
  with_dir @@ fun dir ->
  let j = Obs.Journal.create ~run_id:"testrun" ~dir () in
  Alcotest.(check string) "path" (Filename.concat dir "run.journal")
    (Obs.Journal.path j);
  Obs.Journal.set_current j;
  Alcotest.(check bool) "active" true (Obs.Journal.active ());
  Obs.Journal.run_start j ~fingerprint:"fp-1"
    [ ("seed", Obs.Jfmt.I 42); ("note", Obs.Jfmt.S "x\"y") ];
  Obs.Journal.record_phase_start "circuit-ga";
  Obs.Journal.record_ga_generation ~label:"circuit-ga" ~generation:1
    ~front_size:7 ~spread:0.25 ~hypervolume:3.5;
  Obs.Journal.record_phase_finish "circuit-ga" ~seconds:1.5;
  Obs.Journal.record_checkpoint ~action:"flush" ~path:"snap";
  Repro_engine.Telemetry.warn ~key:"obs.test.warn" "journal %s" "mirror";
  Obs.Journal.run_finish j ~seconds:2.5 [];
  Obs.Journal.clear_current ();
  Alcotest.(check bool) "inactive" false (Obs.Journal.active ());
  Obs.Journal.close j;
  let ic = open_in (Filename.concat dir "run.journal") in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let parsed =
    List.rev_map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad journal line %S: %s" line e)
      !lines
  in
  let events =
    List.map
      (fun j ->
        (match Json.member "run" j with
        | Some (Json.Str "testrun") -> ()
        | _ -> Alcotest.fail "wrong run id");
        (match Json.member "ts" j with
        | Some (Json.Num _) -> ()
        | _ -> Alcotest.fail "no timestamp");
        match Json.member "event" j with
        | Some (Json.Str e) -> e
        | _ -> Alcotest.fail "no event name")
      parsed
  in
  Alcotest.(check (list string)) "event sequence"
    [ "run.start"; "phase.start"; "ga.generation"; "phase.finish";
      "checkpoint"; "warning"; "run.finish" ]
    events;
  (* spot-check the structured payloads *)
  let nth n = List.nth parsed n in
  (match Json.member "fingerprint" (nth 0) with
  | Some (Json.Str "fp-1") -> ()
  | _ -> Alcotest.fail "run.start fingerprint");
  (match Json.member "hypervolume" (nth 2) with
  | Some (Json.Num hv) -> Alcotest.(check (float 0.0)) "hv" 3.5 hv
  | _ -> Alcotest.fail "ga.generation hypervolume");
  (match Json.member "seconds" (nth 3) with
  | Some (Json.Num s) -> Alcotest.(check (float 0.0)) "phase seconds" 1.5 s
  | _ -> Alcotest.fail "phase.finish seconds");
  match (Json.member "key" (nth 5), Json.member "message" (nth 5)) with
  | Some (Json.Str "obs.test.warn"), Some (Json.Str "journal mirror") -> ()
  | _ -> Alcotest.fail "warning mirror payload"

let test_journal_record_noops_without_current () =
  (* the record_* family must be safe (and silent) with no journal *)
  Obs.Journal.clear_current ();
  Obs.Journal.record_phase_start "p";
  Obs.Journal.record_phase_finish "p" ~seconds:0.0;
  Obs.Journal.record_ga_generation ~label:"l" ~generation:0 ~front_size:0
    ~spread:0.0 ~hypervolume:0.0;
  Obs.Journal.record_checkpoint ~action:"flush" ~path:"x";
  Obs.Journal.record_warning ~key:"k" "msg";
  Alcotest.(check bool) "still inactive" false (Obs.Journal.active ())

(* ---- hypervolume ---- *)

let ev objectives =
  { Repro_moo.Problem.objectives; constraint_violation = 0.0 }

let test_hypervolume_exact () =
  let module Hv = Repro_moo.Hypervolume in
  (* d = 1: distance from the best point to the reference *)
  Alcotest.(check (float 1e-12)) "1-D" 2.5
    (Hv.exact ~reference:[| 3.0 |] [| [| 0.5 |]; [| 1.0 |] |]);
  (* d = 2: matches the independent staircase implementation *)
  let pts2 = [| [| 1.0; 3.0 |]; [| 2.0; 1.0 |]; [| 5.0; 5.0 |] |] in
  let reference = [| 4.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "2-D staircase" 7.0
    (Hv.exact ~reference pts2);
  Alcotest.(check (float 1e-12)) "2-D matches Pareto.hypervolume_2d"
    (Repro_moo.Pareto.hypervolume_2d ~reference
       (Array.map (fun o -> ev o) pts2))
    (Hv.exact ~reference pts2);
  (* d = 3 by inclusion-exclusion: 8 + 3 - 2 = 9 *)
  Alcotest.(check (float 1e-12)) "3-D union" 9.0
    (Hv.exact ~reference:[| 3.0; 3.0; 3.0 |]
       [| [| 1.0; 1.0; 1.0 |]; [| 2.0; 2.0; 0.0 |] |]);
  (* dominated points must not change the volume *)
  Alcotest.(check (float 1e-12)) "dominated point is free" 9.0
    (Hv.exact ~reference:[| 3.0; 3.0; 3.0 |]
       [| [| 1.0; 1.0; 1.0 |]; [| 2.0; 2.0; 0.0 |]; [| 2.5; 2.5; 2.5 |] |]);
  (* empty / non-dominating sets *)
  Alcotest.(check (float 0.0)) "empty" 0.0 (Hv.exact ~reference [||]);
  Alcotest.(check (float 0.0)) "outside reference" 0.0
    (Hv.exact ~reference:[| 1.0; 1.0 |] [| [| 2.0; 2.0 |] |])

let test_hypervolume_of_front () =
  let module Hv = Repro_moo.Hypervolume in
  let front =
    [|
      ev [| 1.0; 3.0; 99.0 |];
      ev [| 2.0; 1.0; -7.0 |];
      { Repro_moo.Problem.objectives = [| 0.0; 0.0; 0.0 |];
        constraint_violation = 1.0 };
    |]
  in
  (* infeasible point ignored; dims projects away the third objective *)
  Alcotest.(check (float 1e-12)) "projected + filtered" 7.0
    (Hv.of_front ~dims:[| 0; 1 |] ~reference:[| 4.0; 4.0 |] front);
  (* identity dims = no dims *)
  let front2 = [| ev [| 1.0; 1.0 |]; ev [| 0.5; 2.0 |] |] in
  Alcotest.(check (float 1e-12)) "dims identity"
    (Hv.of_front ~reference:[| 3.0; 3.0 |] front2)
    (Hv.of_front ~dims:[| 0; 1 |] ~reference:[| 3.0; 3.0 |] front2)

let prop_hypervolume_monotone =
  (* adding a point can only grow the dominated region *)
  QCheck.Test.make ~name:"hypervolume is monotone under union" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8)
           (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (pts, (x, y)) ->
      let module Hv = Repro_moo.Hypervolume in
      let reference = [| 2.0; 2.0 |] in
      let arr = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      let hv0 = Hv.exact ~reference arr in
      let hv1 = Hv.exact ~reference (Array.append arr [| [| x; y |] |]) in
      hv1 >= hv0 -. 1e-12)

(* ---- zero perturbation ---- *)

let zdt1 =
  Repro_moo.Problem.create ~name:"zdt1-obs"
    ~bounds:(Array.make 6 (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun v ->
      let f1 = v.(0) in
      let s = ref 0.0 in
      for i = 1 to 5 do
        s := !s +. v.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. 5.0) in
      {
        Repro_moo.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = 0.0;
      })

let test_zero_perturbation () =
  let options =
    { Repro_moo.Nsga2.default_options with population = 16; generations = 6 }
  in
  let run () =
    Repro_moo.Nsga2.optimise ~options
      ~evaluator:(Repro_moo.Problem.parallel_evaluator ())
      zdt1 (Repro_util.Prng.create 2009)
  in
  let bare = run () in
  (* the same run under full observability: tracing on with GC-delta
     capture, a journal current, histograms recording *)
  with_dir @@ fun dir ->
  let j = Obs.Journal.create ~run_id:"zp" ~dir () in
  Obs.Journal.set_current j;
  Obs.Trace.start ~gc:true ();
  let observed =
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.stop ();
        Obs.Journal.clear_current ();
        Obs.Journal.close j)
      run
  in
  Alcotest.(check bool) "spans were recorded" true
    (Obs.Trace.event_count () > 0);
  Alcotest.(check int) "same population size" (Array.length bare)
    (Array.length observed);
  Array.iteri
    (fun i (b : Repro_moo.Nsga2.individual) ->
      let o = observed.(i) in
      if b.Repro_moo.Nsga2.x <> o.Repro_moo.Nsga2.x
         || b.Repro_moo.Nsga2.evaluation <> o.Repro_moo.Nsga2.evaluation
      then Alcotest.failf "individual %d perturbed by observability" i)
    bare

let suite =
  [
    Alcotest.test_case "trace spans balance" `Quick test_trace_spans_balance;
    Alcotest.test_case "trace disabled passthrough" `Quick
      test_trace_disabled_passthrough;
    Alcotest.test_case "trace concurrent domains" `Quick
      test_trace_concurrent_domains;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram registry" `Quick test_histogram_registry;
    QCheck_alcotest.to_alcotest prop_histogram_quantiles_monotone_bounded;
    QCheck_alcotest.to_alcotest prop_histogram_exact_on_equal;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal no-ops without current" `Quick
      test_journal_record_noops_without_current;
    Alcotest.test_case "hypervolume exact" `Quick test_hypervolume_exact;
    Alcotest.test_case "hypervolume of_front" `Quick test_hypervolume_of_front;
    QCheck_alcotest.to_alcotest prop_hypervolume_monotone;
    Alcotest.test_case "zero perturbation" `Quick test_zero_perturbation;
  ]
