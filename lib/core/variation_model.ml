module V = Repro_spice.Vco_measure
module Mc = Repro_spice.Monte_carlo
module T = Repro_circuit.Topologies

type entry = {
  design : Vco_problem.sized_design;
  d_kvco : float;
  d_jvco : float;
  d_ivco : float;
  d_fmin : float;
  d_fmax : float;
  mc_samples : int;
  mc_failures : int;
}

let pp_entry ppf e =
  Format.fprintf ppf
    "kvco=%.0fMHz/V(∆%.2f%%) jvco=%.3fps(∆%.1f%%) ivco=%.2fmA(∆%.1f%%) [n=%d]"
    (e.design.Vco_problem.perf.V.kvco /. 1e6)
    (100.0 *. e.d_kvco)
    (e.design.Vco_problem.perf.V.jvco *. 1e12)
    (100.0 *. e.d_jvco)
    (e.design.Vco_problem.perf.V.ivco *. 1e3)
    (100.0 *. e.d_ivco)
    e.mc_samples

type options = {
  samples : int;
  process : Repro_circuit.Process.spec;
  measure : Repro_spice.Vco_measure.options;
}

let default_options =
  {
    samples = 100;
    process = Repro_circuit.Process.default;
    measure = V.default_options;
  }

let analyse_design ?(options = default_options) ~prng
    (design : Vco_problem.sized_design) =
  let net =
    T.ring_vco ~stages:options.measure.V.stages ~vdd:options.measure.V.vdd
      ~vctl:options.measure.V.vctl_lo design.Vco_problem.params
  in
  let trial perturbed =
    match V.characterise_netlist ~options:options.measure perturbed with
    | Ok p -> Ok p
    | Error f -> Error (V.failure_to_string f)
  in
  let mc = Mc.run ~spec:options.process ~n:options.samples ~prng net trial in
  let n_ok = Array.length mc.Mc.samples in
  let spread get =
    if n_ok < 3 then 0.0
    else Repro_util.Stats.relative_spread (Array.map get mc.Mc.samples)
  in
  {
    design;
    d_kvco = spread (fun p -> p.V.kvco);
    d_jvco = spread (fun p -> p.V.jvco);
    d_ivco = spread (fun p -> p.V.ivco);
    d_fmin = spread (fun p -> p.V.fmin);
    d_fmax = spread (fun p -> p.V.fmax);
    mc_samples = n_ok;
    mc_failures = mc.Mc.failures;
  }

let analyse_front ?options ?progress ~prng designs =
  let n = Array.length designs in
  Array.mapi
    (fun i design ->
      (match progress with Some f -> f i n | None -> ());
      analyse_design ?options ~prng:(Repro_util.Prng.split prng) design)
    designs
