(** Dense row-major matrices.  Circuit matrices in this project are tiny
    (tens of unknowns), so a dense representation beats sparse storage. *)

type t

val create : int -> int -> t
(** [create rows cols] — zero-filled. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] accumulates [x] into [m.(i).(j)] — the MNA "stamp"
    primitive. *)

val copy : t -> t
val clear : t -> unit
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val mul_vec : t -> Vec.t -> Vec.t
val mul : t -> t -> t
val transpose : t -> t
val map : (float -> float) -> t -> t
val norm_inf : t -> float
val pp : Format.formatter -> t -> unit
