type method_ = Linear | Quadratic | Cubic

type t = {
  method_ : method_;
  xs : float array;
  ys : float array;
  (* per-segment coefficients of a(x-xi)^3 + b(x-xi)^2 + c(x-xi) + d *)
  coeffs : (float * float * float * float) array;
}

let validate xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Spline.build: length mismatch";
  if n < 2 then invalid_arg "Spline.build: need at least 2 points";
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg "Spline.build: knots must be strictly increasing"
  done

let linear_coeffs xs ys =
  Array.init
    (Array.length xs - 1)
    (fun i ->
      let h = xs.(i + 1) -. xs.(i) in
      (0.0, 0.0, (ys.(i + 1) -. ys.(i)) /. h, ys.(i)))

(* quadratic through three points, expressed around x0 *)
let quad_through x0 y0 x1 y1 x2 y2 ~origin =
  (* Lagrange second-difference form *)
  let d01 = (y1 -. y0) /. (x1 -. x0) in
  let d12 = (y2 -. y1) /. (x2 -. x1) in
  let a2 = (d12 -. d01) /. (x2 -. x0) in
  (* p(x) = y0 + d01 (x - x0) + a2 (x - x0)(x - x1); re-centre at origin *)
  let t0 = x0 -. origin and t1 = x1 -. origin in
  (* p(u+origin) = y0 + d01 (u - t0) + a2 (u - t0)(u - t1) *)
  let b = a2 in
  let c = d01 -. (a2 *. (t0 +. t1)) in
  let d = y0 -. (d01 *. t0) +. (a2 *. t0 *. t1) in
  (0.0, b, c, d)

let quadratic_coeffs xs ys =
  let n = Array.length xs in
  if n = 2 then linear_coeffs xs ys
  else
    Array.init (n - 1) (fun i ->
        (* use the triple starting at i, except the last segment which
           reuses the final triple *)
        let j = if i <= n - 3 then i else n - 3 in
        quad_through xs.(j) ys.(j) xs.(j + 1) ys.(j + 1) xs.(j + 2) ys.(j + 2)
          ~origin:xs.(i))

(* natural cubic spline: second derivatives from the tridiagonal system,
   solved with the Thomas algorithm. *)
let cubic_coeffs xs ys =
  let n = Array.length xs in
  if n = 2 then linear_coeffs xs ys
  else begin
    let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
    (* system on interior second derivatives m.(1..n-2); m.(0)=m.(n-1)=0 *)
    let m = Array.make n 0.0 in
    let sub = Array.make n 0.0
    and diag = Array.make n 0.0
    and sup = Array.make n 0.0
    and rhs = Array.make n 0.0 in
    for i = 1 to n - 2 do
      sub.(i) <- h.(i - 1);
      diag.(i) <- 2.0 *. (h.(i - 1) +. h.(i));
      sup.(i) <- h.(i);
      rhs.(i) <-
        6.0
        *. (((ys.(i + 1) -. ys.(i)) /. h.(i))
           -. ((ys.(i) -. ys.(i - 1)) /. h.(i - 1)))
    done;
    (* Thomas forward sweep over 1..n-2 *)
    for i = 2 to n - 2 do
      let w = sub.(i) /. diag.(i - 1) in
      diag.(i) <- diag.(i) -. (w *. sup.(i - 1));
      rhs.(i) <- rhs.(i) -. (w *. rhs.(i - 1))
    done;
    if n >= 3 then m.(n - 2) <- rhs.(n - 2) /. diag.(n - 2);
    for i = n - 3 downto 1 do
      m.(i) <- (rhs.(i) -. (sup.(i) *. m.(i + 1))) /. diag.(i)
    done;
    Array.init (n - 1) (fun i ->
        let a = (m.(i + 1) -. m.(i)) /. (6.0 *. h.(i)) in
        let b = m.(i) /. 2.0 in
        let c =
          ((ys.(i + 1) -. ys.(i)) /. h.(i))
          -. (h.(i) *. ((2.0 *. m.(i)) +. m.(i + 1)) /. 6.0)
        in
        (a, b, c, ys.(i)))
  end

let build ?(method_ = Cubic) xs ys =
  validate xs ys;
  let xs = Array.copy xs and ys = Array.copy ys in
  let coeffs =
    match method_ with
    | Linear -> linear_coeffs xs ys
    | Quadratic -> quadratic_coeffs xs ys
    | Cubic -> cubic_coeffs xs ys
  in
  { method_; xs; ys; coeffs }

(* index of the segment containing x (clamped to end segments) *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    (* binary search: largest i with xs.(i) <= x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let i = segment t x in
  let a, b, c, d = t.coeffs.(i) in
  let u = x -. t.xs.(i) in
  d +. (u *. (c +. (u *. (b +. (u *. a)))))

let eval_deriv t x =
  let i = segment t x in
  let a, b, c, _ = t.coeffs.(i) in
  let u = x -. t.xs.(i) in
  c +. (u *. ((2.0 *. b) +. (3.0 *. a *. u)))

let knots t = Array.copy t.xs
let values t = Array.copy t.ys
let method_of t = t.method_
let coefficients t = Array.copy t.coeffs
