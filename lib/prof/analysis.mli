(** Profile analyses over reconstructed span trees: self-time and GC
    attribution per span name, per-domain utilization within a time
    window, and flamegraph-compatible folded stacks. *)

type row = {
  name : string;
  count : int;
  total_us : float;  (** inclusive duration, summed over instances *)
  self_us : float;  (** total minus direct children (clamped ≥ 0) *)
  gc_minor_total : float;  (** minor words allocated, incl. children *)
  gc_minor_self : float;
  gc_major_total : float;
  gc_minor_cols : int;
  gc_major_cols : int;
}

val self_time : Event.span list -> row list
(** Per-name aggregation over a span forest, sorted by self-time
    descending.  Because self = total − children telescopes, the
    self-times of all rows sum to the total duration of the roots —
    the property behind "report attributes ≥95% of wall time". *)

val total_self : row list -> float

val find_span : (string -> bool) -> Event.span list -> Event.span option
(** First span (preorder) whose name satisfies the predicate. *)

val utilization :
  ?busy:(string -> bool) ->
  Event.span list ->
  t0:float ->
  t1:float ->
  ((int * int) * float) list
(** [((pid, tid), busy_fraction)] per domain within the window, sorted.
    A domain is busy while inside a span accepted by [busy] (default:
    pool.chunk / pool.serial); nested busy spans count once.  Keyed by
    process too: in a merged trace every process has a tid 0, and
    pooling them would fabricate utilization. *)

val folded : ?labels:(int * string) list -> Event.span list -> string
(** Folded-stack lines ["proc/tN;span;span self_us"] suitable for
    flamegraph.pl; [labels] maps pids to process names. *)
