type t = { times : float array; values : float array }

let create times values =
  let n = Array.length times in
  if n <> Array.length values then invalid_arg "Waveform.create: length mismatch";
  if n < 1 then invalid_arg "Waveform.create: empty waveform";
  for i = 0 to n - 2 do
    if times.(i + 1) < times.(i) then
      invalid_arg "Waveform.create: times must be non-decreasing"
  done;
  { times; values }

let length w = Array.length w.times

let value_at w t =
  let n = length w in
  if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    let ta = w.times.(!lo) and tb = w.times.(!hi) in
    let va = w.values.(!lo) and vb = w.values.(!hi) in
    if tb > ta then va +. ((vb -. va) *. (t -. ta) /. (tb -. ta)) else va
  end

let window w ~t_start ~t_end =
  let keep = ref [] in
  for i = length w - 1 downto 0 do
    if w.times.(i) >= t_start && w.times.(i) <= t_end then
      keep := i :: !keep
  done;
  let idx = Array.of_list !keep in
  if Array.length idx = 0 then invalid_arg "Waveform.window: empty window";
  {
    times = Array.map (fun i -> w.times.(i)) idx;
    values = Array.map (fun i -> w.values.(i)) idx;
  }

type direction = Rising | Falling | Either

let crossings ?(direction = Either) w ~level =
  let out = ref [] in
  for i = 0 to length w - 2 do
    let va = w.values.(i) -. level and vb = w.values.(i + 1) -. level in
    let hit =
      match direction with
      | Rising -> va < 0.0 && vb >= 0.0
      | Falling -> va > 0.0 && vb <= 0.0
      | Either -> (va < 0.0 && vb >= 0.0) || (va > 0.0 && vb <= 0.0)
    in
    if hit && vb <> va then begin
      let frac = -.va /. (vb -. va) in
      let t = w.times.(i) +. (frac *. (w.times.(i + 1) -. w.times.(i))) in
      out := t :: !out
    end
  done;
  Array.of_list (List.rev !out)

let periods ?(direction = Rising) w ~level =
  let cs = crossings ~direction w ~level in
  if Array.length cs < 2 then [||]
  else Array.init (Array.length cs - 1) (fun i -> cs.(i + 1) -. cs.(i))

let frequency ?(direction = Rising) w ~level =
  let ps = periods ~direction w ~level in
  if Array.length ps = 0 then None
  else begin
    let mean_p = Repro_util.Stats.mean ps in
    if mean_p > 0.0 then Some (1.0 /. mean_p) else None
  end

let period_jitter_rms ?(direction = Rising) w ~level =
  let ps = periods ~direction w ~level in
  if Array.length ps < 3 then None
  else Some (Repro_util.Stats.stddev ps)

let mean w =
  let n = length w in
  if n = 1 then w.values.(0)
  else begin
    let span = w.times.(n - 1) -. w.times.(0) in
    if span <= 0.0 then w.values.(0)
    else begin
      let acc = ref 0.0 in
      for i = 0 to n - 2 do
        let dt = w.times.(i + 1) -. w.times.(i) in
        acc := !acc +. (0.5 *. (w.values.(i) +. w.values.(i + 1)) *. dt)
      done;
      !acc /. span
    end
  end

let rms w =
  let sq = { w with values = Array.map (fun v -> v *. v) w.values } in
  sqrt (mean sq)

let peak_to_peak w =
  let lo, hi = Repro_util.Stats.min_max w.values in
  hi -. lo

let slew_at_crossings ?(direction = Either) w ~level =
  let slopes = ref [] in
  for i = 0 to length w - 2 do
    let va = w.values.(i) -. level and vb = w.values.(i + 1) -. level in
    let hit =
      match direction with
      | Rising -> va < 0.0 && vb >= 0.0
      | Falling -> va > 0.0 && vb <= 0.0
      | Either -> (va < 0.0 && vb >= 0.0) || (va > 0.0 && vb <= 0.0)
    in
    if hit then begin
      let dt = w.times.(i + 1) -. w.times.(i) in
      if dt > 0.0 then
        slopes := Float.abs ((w.values.(i + 1) -. w.values.(i)) /. dt) :: !slopes
    end
  done;
  match !slopes with
  | [] -> 0.0
  | slopes -> Repro_util.Stats.mean (Array.of_list slopes)

let amplitude_ok w ~lo ~hi =
  let vmin, vmax = Repro_util.Stats.min_max w.values in
  vmin <= lo && vmax >= hi
