(** Multi-objective differential evolution: DE/rand/1/bin variation with
    DEMO-style selection (Robič & Filipič 2005) — each trial vector is
    compared to its parent under Deb constraint-domination
    ({!Pareto.compare_dominance}); incomparable trials are kept
    alongside their parents and NSGA-II (rank, crowding) truncation
    restores the population size.

    Part of the optimiser portfolio ({!Optimiser}): DE variants tend to
    need fewer evaluations than GAs on smooth analog-sizing landscapes
    (Rashid et al., arXiv:2310.12440). *)

type options = {
  population : int;   (** >= 5 (rand/1 needs 3 distinct donors) *)
  generations : int;
  f : float;          (** differential weight, in (0, 2] *)
  cr : float;         (** binomial crossover rate, in [0, 1] *)
}

val default_options : options
(** population 50, generations 30, f 0.5, cr 0.9. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> Nsga2.individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Run DE and return the final population.  Each generation's trial
    vectors are evaluated as one batch through [evaluator], with all
    variation randomness drawn first — results are bit-identical for
    any worker count.  [optimise] ≡ [init] + [generations] × [step]. *)

(* ---- step-wise API (checkpointable generation loop), mirroring
   {!Nsga2}'s ---- *)

type state

val init :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  Problem.t ->
  Repro_util.Prng.t ->
  state
(** Draw and evaluate the initial population (generation 0).
    @raise Invalid_argument on out-of-range options. *)

val step : ?evaluator:Problem.evaluator -> Problem.t -> state -> unit

val generation : state -> int
val population : state -> Nsga2.individual array

val save_state : state -> Repro_engine.Snapshot.t -> key:string -> unit
(** Same key layout as {!Nsga2.save_state}
    ([".generation" / ".prng" / ".population"]); a restored state
    continues bit-identically. *)

val restore_state :
  options:options ->
  Problem.t ->
  Repro_engine.Snapshot.t ->
  key:string ->
  state option

val clear_state : Repro_engine.Snapshot.t -> key:string -> unit
