module H = Hieropt
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies

let checkf tol msg = Alcotest.(check (float tol)) msg

(* ---- spec ---- *)

let test_spec_default_valid () = H.Spec.validate H.Spec.default

let test_spec_validation () =
  let bad f =
    try
      H.Spec.validate (f H.Spec.default);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "inverted band" true
    (bad (fun s -> { s with H.Spec.f_out_high = 1e6 }));
  Alcotest.(check bool) "target outside band" true
    (bad (fun s -> { s with H.Spec.f_target = 1e3 }));
  Alcotest.(check bool) "divider mismatch" true
    (bad (fun s -> { s with H.Spec.n_div = 9 }));
  Alcotest.(check bool) "negative budget" true
    (bad (fun s -> { s with H.Spec.current_max = -1.0 }))

(* ---- vco problem encoding ---- *)

let sample_perf =
  { V.kvco = 800e6; ivco = 6e-3; jvco = 0.2e-12; fmin = 450e6; fmax = 1.3e9 }

let test_objectives_roundtrip () =
  let o = H.Vco_problem.objectives_of_perf sample_perf in
  Alcotest.(check int) "5 objectives" 5 (Array.length o);
  let p = H.Vco_problem.perf_of_objectives o in
  Alcotest.(check bool) "roundtrip" true (p = sample_perf);
  (* signs: gain and fmax are maximised *)
  Alcotest.(check bool) "neg kvco" true (o.(2) < 0.0);
  Alcotest.(check bool) "neg fmax" true (o.(4) < 0.0);
  checkf 0.0 "jvco first" sample_perf.V.jvco o.(0)

let mk_design kvco ivco jvco =
  {
    H.Vco_problem.params =
      { T.vco_default with T.wn = 10e-6 +. (kvco /. 1e9 *. 10e-6) };
    perf = { V.kvco; ivco; jvco; fmin = kvco /. 2.0; fmax = kvco *. 1.5 };
  }

let test_thin_front () =
  let designs =
    Array.init 20 (fun i -> mk_design (float_of_int (i + 1) *. 1e8) 5e-3 1e-13)
  in
  let thin = H.Vco_problem.thin_front designs ~max_points:5 in
  Alcotest.(check int) "thinned" 5 (Array.length thin);
  (* endpoints preserved *)
  let kv = Array.map (fun d -> d.H.Vco_problem.perf.V.kvco) thin in
  checkf 1.0 "lowest kept" 1e8 kv.(0);
  checkf 1.0 "highest kept" 2e9 kv.(4);
  (* no thinning needed *)
  Alcotest.(check int) "small front untouched" 20
    (Array.length (H.Vco_problem.thin_front designs ~max_points:50))

(* ---- perf table over synthetic entries ---- *)

let synthetic_entries =
  (* a smooth family: jvco falls as ivco rises; deltas follow the paper's
     ordering *)
  Array.init 8 (fun i ->
      let kvco = 400e6 +. (float_of_int i *. 200e6) in
      let ivco = 3e-3 +. (float_of_int i *. 1e-3) in
      let jvco = 0.4e-12 -. (float_of_int i *. 0.03e-12) in
      let params =
        {
          T.wn = 10e-6 +. (float_of_int i *. 5e-6);
          ln = 0.2e-6;
          wp = 20e-6 +. (float_of_int i *. 8e-6);
          lp = 0.2e-6;
          wcn = 30e-6;
          wcp = 50e-6;
          lc = 0.24e-6;
        }
      in
      {
        H.Variation_model.design =
          {
            H.Vco_problem.params;
            perf =
              { V.kvco; ivco; jvco; fmin = 300e6 +. (float_of_int i *. 50e6);
                fmax = 1.0e9 +. (float_of_int i *. 100e6) };
          };
        d_kvco = 0.02;
        d_jvco = 0.20 +. (0.01 *. float_of_int i);
        d_ivco = 0.025;
        d_fmin = 0.03;
        d_fmax = 0.02;
        mc_samples = 20;
        mc_failures = 0;
      })

let model = H.Perf_table.build synthetic_entries

let test_perf_table_build_validation () =
  Alcotest.(check bool) "needs 2 entries" true
    (try ignore (H.Perf_table.build [| synthetic_entries.(0) |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "size" 8 (H.Perf_table.size model)

let test_delta_interpolation () =
  (* exact at sample points *)
  checkf 1e-9 "dkvco at sample" 0.02 (H.Perf_table.kvco_delta model 400e6);
  checkf 1e-9 "djvco at sample" 0.20 (H.Perf_table.jvco_delta model 0.4e-12);
  (* clamped outside range (3E policy -> clamp for optimiser queries) *)
  checkf 1e-9 "clamp below" 0.02 (H.Perf_table.kvco_delta model 1e6);
  checkf 1e-9 "clamp above" 0.02 (H.Perf_table.kvco_delta model 1e10)

let test_perf_interpolation () =
  (* exact hit recovers sample jvco *)
  checkf 1e-20 "jvco at sample" 0.4e-12
    (H.Perf_table.jvco_of model ~kvco:400e6 ~ivco:3e-3);
  (* interpolation between samples stays within the sample envelope *)
  let j = H.Perf_table.jvco_of model ~kvco:500e6 ~ivco:3.5e-3 in
  Alcotest.(check bool) "between samples" true (j < 0.4e-12 && j > 0.1e-12)

let test_param_recovery () =
  let e = synthetic_entries.(3) in
  let p =
    H.Perf_table.params_of_perf model e.H.Variation_model.design.H.Vco_problem.perf
  in
  (* exact performance hit must recover the exact sizing *)
  Alcotest.(check (float 1e-12)) "wn recovered"
    e.H.Variation_model.design.H.Vco_problem.params.T.wn p.T.wn

let test_ranges () =
  let klo, khi = H.Perf_table.kvco_range model in
  checkf 1.0 "kvco lo" 400e6 klo;
  checkf 1.0 "kvco hi" 1.8e9 khi;
  let lo, hi = H.Perf_table.min_max_of_delta ~nominal:100.0 ~delta:0.05 in
  checkf 1e-9 "min" 95.0 lo;
  checkf 1e-9 "max" 105.0 hi

let test_save_load_roundtrip () =
  let dir = Filename.temp_file "hieropt_model" "" in
  Sys.remove dir;
  H.Perf_table.save ~dir model;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      (* all the Listing-1 files exist *)
      List.iter
        (fun f ->
          if not (Sys.file_exists (Filename.concat dir f)) then
            Alcotest.failf "missing %s" f)
        [ "kvco_delta.tbl"; "jvco_delta.tbl"; "ivco_delta.tbl";
          "fmin_delta.tbl"; "fmax_delta.tbl"; "data.tbl"; "p1_data.tbl";
          "p7_data.tbl"; "pareto.tbl" ];
      let model2 = H.Perf_table.load ~dir in
      Alcotest.(check int) "entries preserved" 8 (H.Perf_table.size model2);
      checkf 1e-12 "delta preserved" 0.02 (H.Perf_table.kvco_delta model2 400e6);
      checkf 1e-24 "jvco preserved" 0.4e-12
        (H.Perf_table.jvco_of model2 ~kvco:400e6 ~ivco:3e-3))

(* ---- pll problem over the synthetic model ---- *)

let pll_cfg = H.Pll_problem.default_config ~model

let test_pll_evaluate_point () =
  match
    H.Pll_problem.evaluate_point pll_cfg ~kvco:600e6 ~ivco:6e-3 ~c1:10e-12
      ~c2:0.5e-12 ~r1:4e3
  with
  | Error e -> Alcotest.failf "evaluate_point: %s" e
  | Ok row ->
    Alcotest.(check bool) "kv brackets" true
      (row.H.Pll_problem.kv_min < row.H.Pll_problem.kv
      && row.H.Pll_problem.kv < row.H.Pll_problem.kv_max);
    Alcotest.(check bool) "iv brackets" true
      (row.H.Pll_problem.iv_min < row.H.Pll_problem.iv
      && row.H.Pll_problem.iv < row.H.Pll_problem.iv_max);
    Alcotest.(check bool) "lock bracket ordering" true
      (row.H.Pll_problem.lock_min <= row.H.Pll_problem.lock
      && row.H.Pll_problem.lock <= row.H.Pll_problem.lock_max +. 1e-12);
    Alcotest.(check bool) "positive everything" true
      (row.H.Pll_problem.lock > 0.0 && row.H.Pll_problem.jit > 0.0
      && row.H.Pll_problem.curr > 0.0);
    (* kv bracket width = 2 * 2% *)
    checkf 1e-6 "bracket width"
      (0.04 *. row.H.Pll_problem.kv)
      (row.H.Pll_problem.kv_max -. row.H.Pll_problem.kv_min)

let test_pll_unstable_point_fails () =
  match
    H.Pll_problem.evaluate_point pll_cfg ~kvco:1.0e9 ~ivco:6e-3 ~c1:5e-12
      ~c2:0.5e-12 ~r1:1.0
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tiny R1 should be unstable"

let test_select_design () =
  let row lock curr jit =
    {
      H.Pll_problem.kv = 1e9; kv_min = 0.99e9; kv_max = 1.01e9; iv = 6e-3;
      iv_min = 5.9e-3; iv_max = 6.1e-3; c1 = 5e-12; c2 = 0.5e-12; r1 = 4e3;
      lock; lock_min = lock; lock_max = lock; jit; jit_min = jit;
      jit_max = jit; curr; curr_min = curr; curr_max = curr;
    }
  in
  let rows =
    [| row 0.5e-6 14e-3 2e-12; (* feasible, jit 2 *)
       row 0.4e-6 14e-3 1e-12; (* feasible, jit 1 -> winner *)
       row 2.0e-6 10e-3 0.1e-12; (* lock too slow *)
       row 0.3e-6 20e-3 0.1e-12 (* current over budget *) |]
  in
  (match H.Pll_problem.select_design pll_cfg rows with
  | Some r -> checkf 1e-18 "lowest-jitter feasible" 1e-12 r.H.Pll_problem.jit
  | None -> Alcotest.fail "expected a selection");
  (* nothing feasible -> None *)
  Alcotest.(check bool) "no feasible -> None" true
    (H.Pll_problem.select_design pll_cfg [| row 2e-6 20e-3 1e-12 |] = None)

let test_pll_problem_objectives () =
  let problem = H.Pll_problem.problem pll_cfg in
  Alcotest.(check int) "5 designables" 5 (Repro_moo.Problem.n_vars problem);
  Alcotest.(check int) "3 objectives" 3 (Repro_moo.Problem.n_objectives problem);
  let e = problem.Repro_moo.Problem.evaluate [| 600e6; 6e-3; 10e-12; 0.5e-12; 4e3 |] in
  Alcotest.(check bool) "finite objectives" true
    (Array.for_all Float.is_finite e.Repro_moo.Problem.objectives)

(* ---- yield ---- *)

let test_check_sample () =
  let o =
    H.Yield.check_sample pll_cfg ~kvco:600e6 ~ivco:6e-3 ~c1:10e-12 ~c2:0.5e-12
      ~r1:4e3
  in
  Alcotest.(check bool) "sane sample passes" true o.H.Yield.pass;
  let bad =
    H.Yield.check_sample pll_cfg ~kvco:600e6 ~ivco:20e-3 ~c1:10e-12 ~c2:0.5e-12
      ~r1:4e3
  in
  Alcotest.(check bool) "over-current fails" false bad.H.Yield.pass;
  Alcotest.(check string) "reason" "current over budget" bad.H.Yield.detail

let test_behavioural_yield () =
  match
    H.Pll_problem.evaluate_point pll_cfg ~kvco:600e6 ~ivco:5e-3 ~c1:10e-12
      ~c2:0.5e-12 ~r1:4e3
  with
  | Error e -> Alcotest.failf "setup: %s" e
  | Ok row ->
    let prng = Repro_util.Prng.create 7 in
    let y = H.Yield.behavioural ~n:40 ~prng pll_cfg row in
    Alcotest.(check int) "40 samples" 40 y.Repro_util.Stats.total;
    Alcotest.(check bool) "high yield for a comfortable design" true
      (y.Repro_util.Stats.fraction > 0.8)

(* ---- experiments rendering ---- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_ascii_plot () =
  let pts = Array.init 50 (fun i -> (float_of_int i, sin (float_of_int i /. 5.0))) in
  let plot = H.Experiments.ascii_plot ~title:"test plot" pts in
  Alcotest.(check bool) "title present" true (contains plot "test plot");
  Alcotest.(check bool) "points plotted" true (contains plot "*");
  let tiny = H.Experiments.ascii_plot ~title:"tiny" [| (0.0, 0.0) |] in
  Alcotest.(check bool) "degenerate message" true (contains tiny "not enough")

let test_table1_rendering () =
  let s = H.Experiments.table1 synthetic_entries in
  Alcotest.(check bool) "header" true (contains s "Kvco(MHz/V)");
  Alcotest.(check bool) "8 rows numbered" true (contains s "\n8 ")

let test_fig7_rendering () =
  let designs = Array.map (fun e -> e.H.Variation_model.design) synthetic_entries in
  let s = H.Experiments.fig7_front designs in
  Alcotest.(check bool) "projection plot" true (contains s "projection");
  Alcotest.(check bool) "gain column" true (contains s "gain MHz/V")

let test_table2_rendering () =
  match
    H.Pll_problem.evaluate_point pll_cfg ~kvco:600e6 ~ivco:5e-3 ~c1:10e-12
      ~c2:0.5e-12 ~r1:4e3
  with
  | Error e -> Alcotest.failf "setup: %s" e
  | Ok row ->
    let s = H.Experiments.table2 ~selected:row [| row |] in
    Alcotest.(check bool) "selected marker" true (contains s "*");
    Alcotest.(check bool) "columns" true (contains s "Kvmin")

let test_fig8_rendering () =
  match
    H.Pll_problem.evaluate_point pll_cfg ~kvco:600e6 ~ivco:5e-3 ~c1:10e-12
      ~c2:0.5e-12 ~r1:4e3
  with
  | Error e -> Alcotest.failf "setup: %s" e
  | Ok row ->
    let s = H.Experiments.fig8_locking pll_cfg row in
    Alcotest.(check bool) "lock time reported" true (contains s "lock time");
    Alcotest.(check bool) "frequency plot" true (contains s "output frequency")

(* ---- hierarchy config plumbing ---- *)

let test_scales () =
  Alcotest.(check bool) "paper scale is bigger" true
    (H.Hierarchy.paper_scale.H.Hierarchy.vco_population
     > H.Hierarchy.bench_scale.H.Hierarchy.vco_population);
  Unix.putenv "HIEROPT_FULL" "";
  Alcotest.(check bool) "empty env -> bench" true
    (H.Hierarchy.scale_of_env () = H.Hierarchy.bench_scale);
  Unix.putenv "HIEROPT_FULL" "1";
  Alcotest.(check bool) "set env -> paper" true
    (H.Hierarchy.scale_of_env () = H.Hierarchy.paper_scale);
  Unix.putenv "HIEROPT_FULL" "0";
  Alcotest.(check bool) "zero env -> bench" true
    (H.Hierarchy.scale_of_env () = H.Hierarchy.bench_scale);
  Unix.putenv "HIEROPT_FULL" ""

(* ---- variation model on a stub (no simulator) ---- *)

let test_variation_entry_pp () =
  let s =
    Format.asprintf "%a" H.Variation_model.pp_entry synthetic_entries.(0)
  in
  Alcotest.(check bool) "pp mentions spread" true (contains s "∆")

(* ---- config construction ---- *)

let test_make_config_validation () =
  let rejected f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  (* the defaults are fine *)
  ignore (H.Hierarchy.make_config ());
  ignore (H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale ());
  Alcotest.(check bool) "odd population" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~scale:{ H.Hierarchy.tiny_scale with H.Hierarchy.vco_population = 13 }
           ()));
  Alcotest.(check bool) "tiny population" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~scale:{ H.Hierarchy.tiny_scale with H.Hierarchy.pll_population = 2 }
           ()));
  Alcotest.(check bool) "zero generations" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~scale:{ H.Hierarchy.tiny_scale with H.Hierarchy.vco_generations = 0 }
           ()));
  Alcotest.(check bool) "negative samples" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~scale:{ H.Hierarchy.tiny_scale with H.Hierarchy.mc_samples = -1 }
           ()));
  Alcotest.(check bool) "front_max of 1" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~scale:{ H.Hierarchy.tiny_scale with H.Hierarchy.front_max = 1 }
           ()));
  Alcotest.(check bool) "invalid spec" true
    (rejected (fun () ->
         H.Hierarchy.make_config
           ~spec:{ H.Spec.default with H.Spec.f_out_high = 1e6 }
           ()));
  Alcotest.(check bool) "checkpoint_every 0" true
    (rejected (fun () ->
         H.Hierarchy.make_config ~model_dir:"m" ~checkpoint_every:0 ()));
  Alcotest.(check bool) "checkpointing needs model_dir" true
    (rejected (fun () -> H.Hierarchy.make_config ~checkpoint_every:1 ()));
  Alcotest.(check bool) "resume needs model_dir" true
    (rejected (fun () -> H.Hierarchy.make_config ~resume:true ()))

(* micro integration run: the full 5-step flow at a tiny scale —
   tiny_spec narrows the band to what random sizings reach in two
   generations (they cluster around fmax ~ 200-400 MHz) *)
let test_micro_flow () =
  let cfg =
    H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale
      ~spec:H.Hierarchy.tiny_spec ()
  in
  let result = H.Hierarchy.run cfg in
  Alcotest.(check bool) "front non-empty" true
    (Array.length result.H.Hierarchy.front >= 2);
  Alcotest.(check bool) "entries produced" true
    (Array.length result.H.Hierarchy.entries >= 2);
  Alcotest.(check bool) "model built" true
    (H.Perf_table.size result.H.Hierarchy.model >= 2)

let suite =
  [
    Alcotest.test_case "spec default valid" `Quick test_spec_default_valid;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "objective encoding" `Quick test_objectives_roundtrip;
    Alcotest.test_case "thin front" `Quick test_thin_front;
    Alcotest.test_case "perf table validation" `Quick test_perf_table_build_validation;
    Alcotest.test_case "delta interpolation" `Quick test_delta_interpolation;
    Alcotest.test_case "performance interpolation" `Quick test_perf_interpolation;
    Alcotest.test_case "parameter recovery" `Quick test_param_recovery;
    Alcotest.test_case "ranges and brackets" `Quick test_ranges;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "pll evaluate point" `Quick test_pll_evaluate_point;
    Alcotest.test_case "pll unstable point" `Quick test_pll_unstable_point_fails;
    Alcotest.test_case "select design" `Quick test_select_design;
    Alcotest.test_case "pll problem shape" `Quick test_pll_problem_objectives;
    Alcotest.test_case "yield check sample" `Quick test_check_sample;
    Alcotest.test_case "behavioural yield" `Quick test_behavioural_yield;
    Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
    Alcotest.test_case "table1 rendering" `Quick test_table1_rendering;
    Alcotest.test_case "fig7 rendering" `Quick test_fig7_rendering;
    Alcotest.test_case "table2 rendering" `Quick test_table2_rendering;
    Alcotest.test_case "fig8 rendering" `Quick test_fig8_rendering;
    Alcotest.test_case "scales" `Quick test_scales;
    Alcotest.test_case "make_config validation" `Quick test_make_config_validation;
    Alcotest.test_case "variation entry pp" `Quick test_variation_entry_pp;
    Alcotest.test_case "micro end-to-end flow" `Slow test_micro_flow;
  ]
