type event = {
  name : string;
  ph : char; (* 'B' begin | 'E' end | 'i' instant | 'C' counter *)
  ts : float; (* microseconds since the trace epoch *)
  tid : int;
  seq : int;
  args : (string * string) list;
}

(* Per-domain sink: a domain only ever touches its own event list and
   span stack, so the common emit path contends on nothing shared
   except the global sequence counter (an atomic).  The sink mutex
   exists solely for the rare cross-domain readers ([start]'s reset and
   [export]). *)
type sink = {
  tid : int;
  mutex : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable stack : int list; (* open span ids (seq of their 'B'), innermost first *)
}

let sinks_mutex = Mutex.create ()
let sinks : sink list ref = ref []
let enabled_flag = Atomic.make false
let gc_flag = Atomic.make false
let epoch = Atomic.make 0.0
let seq = Atomic.make 0
let trace_id = ref ""
let process_label = ref None

let sink_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          tid = (Domain.self () :> int);
          mutex = Mutex.create ();
          events = [];
          stack = [];
        }
      in
      Mutex.lock sinks_mutex;
      sinks := s :: !sinks;
      Mutex.unlock sinks_mutex;
      s)

let enabled () = Atomic.get enabled_flag
let gc_capture () = Atomic.get gc_flag
let set_gc_capture on = Atomic.set gc_flag on
let id () = !trace_id
let set_process_label label = process_label := Some label

let all_sinks () =
  Mutex.lock sinks_mutex;
  let all = !sinks in
  Mutex.unlock sinks_mutex;
  all

let emit_to s ph name args =
  let e =
    {
      name;
      ph;
      ts = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6;
      tid = s.tid;
      seq = Atomic.fetch_and_add seq 1;
      args;
    }
  in
  Mutex.lock s.mutex;
  s.events <- e :: s.events;
  Mutex.unlock s.mutex;
  e.seq

let emit ph name args =
  ignore (emit_to (Domain.DLS.get sink_key) ph name args)

let start ?(gc = false) () =
  List.iter
    (fun s ->
      Mutex.lock s.mutex;
      s.events <- [];
      s.stack <- [];
      Mutex.unlock s.mutex)
    (all_sinks ());
  Atomic.set seq 0;
  let now = Unix.gettimeofday () in
  Atomic.set epoch now;
  (* the id only names the trace (propagation, merged files); it never
     feeds any computation, so wall-clock + pid uniqueness is enough *)
  trace_id :=
    Printf.sprintf "%x-%d"
      (Int64.to_int (Int64.logand (Int64.bits_of_float now) 0xffffffffL))
      (Unix.getpid ());
  Atomic.set gc_flag gc;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let instant ?(args = []) name = if enabled () then emit 'i' name args

let counter name value =
  if enabled () then emit 'C' name [ (name, string_of_int value) ]

let current_span () =
  let s = Domain.DLS.get sink_key in
  match s.stack with [] -> None | id :: _ -> Some id

(* GC deltas ride as 'E'-event args; word counts are integral floats so
   %.0f renders them losslessly and compactly.  [Gc.quick_stat]'s
   minor_words excludes the current domain's allocations since its last
   minor collection, so minor words come from the dedicated
   [Gc.minor_words] counter instead. *)
let gc_args (mw1, (g1 : Gc.stat)) (mw0, (g0 : Gc.stat)) =
  [
    ("gc.minor_w", Printf.sprintf "%.0f" (mw1 -. mw0));
    ("gc.major_w", Printf.sprintf "%.0f" (g1.major_words -. g0.major_words));
    ( "gc.promoted_w",
      Printf.sprintf "%.0f" (g1.promoted_words -. g0.promoted_words) );
    ("gc.minor_c", string_of_int (g1.minor_collections - g0.minor_collections));
    ("gc.major_c", string_of_int (g1.major_collections - g0.major_collections));
  ]

let gc_sample () = (Gc.minor_words (), Gc.quick_stat ())

let span ?(args = []) name f =
  (* [enabled] is sampled once: a span that emitted its 'B' always emits
     the matching 'E' (even if tracing stops mid-span), and a span that
     started disabled emits nothing, so exports stay balanced *)
  if not (enabled ()) then f ()
  else begin
    let s = Domain.DLS.get sink_key in
    let g0 = if gc_capture () then Some (gc_sample ()) else None in
    let id = emit_to s 'B' name args in
    s.stack <- id :: s.stack;
    Fun.protect
      ~finally:(fun () ->
        (match s.stack with _ :: rest -> s.stack <- rest | [] -> ());
        let gargs =
          match g0 with
          | Some g0 -> gc_args (gc_sample ()) g0
          | None -> []
        in
        ignore (emit_to s 'E' name gargs))
      f
  end

let events () =
  List.concat_map
    (fun s ->
      Mutex.lock s.mutex;
      let e = s.events in
      Mutex.unlock s.mutex;
      e)
    (all_sinks ())
  |> List.sort (fun a b -> compare a.seq b.seq)

let event_count () =
  List.fold_left
    (fun acc s ->
      Mutex.lock s.mutex;
      let n = List.length s.events in
      Mutex.unlock s.mutex;
      acc + n)
    0 (all_sinks ())

let render_event pid e =
  let fields =
    [
      ("name", Jfmt.S e.name);
      ("cat", Jfmt.S "hieropt");
      ("ph", Jfmt.S (String.make 1 e.ph));
      ("ts", Jfmt.F e.ts);
      ("pid", Jfmt.I pid);
      ("tid", Jfmt.I e.tid);
      (* not part of the trace_event spec (viewers ignore it): keeps
         span identity across export/parse so propagated parent ids
         stay resolvable in merged traces *)
      ("seq", Jfmt.I e.seq);
    ]
  in
  (* instants need a scope; "t" = thread-scoped tick mark *)
  let fields = if e.ph = 'i' then fields @ [ ("s", Jfmt.S "t") ] else fields in
  match e.args with
  | [] -> Jfmt.obj fields
  | args ->
    (* counter-series values must be JSON numbers for the viewer to
       draw the track; every other arg is an opaque string *)
    let arg_value v =
      if e.ph = 'C' then v
      else Jfmt.quote v
    in
    let rendered =
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Jfmt.quote k ^ ":" ^ arg_value v) args)
      ^ "}"
    in
    let body = Jfmt.obj fields in
    (* splice the args object in by hand: Jfmt.obj only takes scalars *)
    String.sub body 0 (String.length body - 1)
    ^ ",\"args\":" ^ rendered ^ "}"

let export path =
  let evs = events () in
  let pid = Unix.getpid () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"displayTimeUnit\":\"ms\",";
      (* process metadata for the merge step: which process this is,
         and where its microsecond clock sits on the wall clock *)
      output_string oc
        (Printf.sprintf "\"meta\":{\"pid\":%d,\"epoch\":%s,\"trace\":%s%s},"
           pid
           (Jfmt.float_repr (Atomic.get epoch))
           (Jfmt.quote !trace_id)
           (match !process_label with
           | Some l -> ",\"label\":" ^ Jfmt.quote l
           | None -> ""));
      output_string oc "\"traceEvents\":[";
      (match !process_label with
      | Some l ->
        output_string oc
          (Printf.sprintf
             "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}},"
             pid (Jfmt.quote l))
      | None -> ());
      List.iteri
        (fun i e ->
          if i > 0 then output_char oc ',';
          output_char oc '\n';
          output_string oc (render_event pid e))
        evs;
      output_string oc "\n]}\n");
  List.length evs
