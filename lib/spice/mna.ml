module Netlist = Repro_circuit.Netlist
module Mosfet = Repro_circuit.Mosfet
module Source = Repro_circuit.Source
module Vec = Repro_linalg.Vec
module Matrix = Repro_linalg.Matrix
module Lu = Repro_linalg.Lu
module Sparse = Repro_linalg.Sparse
module Sparse_lu = Repro_linalg.Sparse_lu
module Config = Repro_engine.Config
module Telemetry = Repro_engine.Telemetry
module Trace = Repro_obs.Trace
module Histogram = Repro_obs.Histogram

type res = { ra : int; rb : int; g : float }
type cap = { ca : int; cb : int; cval : float }
type vsrc = { vpos : int; vneg : int; vwave : Source.t; branch : int }
type isrc = { ipos : int; ineg : int; iwave : Source.t }

type mos = {
  md : int;
  mg : int;
  ms : int;
  model : Mosfet.model;
  w : float;
  l : float;
  vth_shift : float;
  kp_scale : float;
}

(* sparse stamping context: the structural pattern of the Jacobian
   (shared with the symbolic registry via its fingerprint) plus a dense
   (i,j) -> value-slot map for O(1) stamps.  Immutable once built. *)
type sp_ctx = { pattern : Sparse.t; slot : int array }

type compiled = {
  net : Netlist.t;
  n_nodes : int;
  n_branches : int;
  size : int;
  resistors : res array;
  caps : cap array;
  vsources : vsrc array;
  isources : isrc array;
  mosfets : mos array;
  branch_of_name : (string, int) Hashtbl.t;
  mutable sp : sp_ctx option;
      (* lazily discovered; a racing rebuild is benign — every build
         yields an equivalent immutable context *)
}

(* unknown index of a node id; ground (0) maps to -1 meaning "eliminated" *)
let ui node = node - 1

let compile net =
  let resistors = ref [] and caps = ref [] in
  let vsources = ref [] and isources = ref [] and mosfets = ref [] in
  let branch_of_name = Hashtbl.create 4 in
  let n_branches = ref 0 in
  List.iter
    (fun el ->
      match el with
      | Netlist.Resistor { n1; n2; value; name } ->
        if value <= 0.0 then
          invalid_arg (Printf.sprintf "Mna.compile: non-positive resistor %s" name);
        resistors := { ra = ui n1; rb = ui n2; g = 1.0 /. value } :: !resistors
      | Netlist.Capacitor { n1; n2; value; _ } ->
        caps := { ca = ui n1; cb = ui n2; cval = value } :: !caps
      | Netlist.Vsource { npos; nneg; source; name } ->
        let branch = !n_branches in
        incr n_branches;
        Hashtbl.replace branch_of_name name branch;
        vsources := { vpos = ui npos; vneg = ui nneg; vwave = source; branch } :: !vsources
      | Netlist.Isource { npos; nneg; source; _ } ->
        isources := { ipos = ui npos; ineg = ui nneg; iwave = source } :: !isources
      | Netlist.Mos { drain; gate; source; model; w; l; vth_shift; kp_scale; _ } ->
        mosfets :=
          { md = ui drain; mg = ui gate; ms = ui source; model; w; l; vth_shift; kp_scale }
          :: !mosfets;
        (* expand bias-independent parasitics; bulks sit at AC ground *)
        let c = Mosfet.capacitances model ~w ~l in
        caps :=
          { ca = ui gate; cb = ui source; cval = c.Mosfet.cgs }
          :: { ca = ui gate; cb = ui drain; cval = c.Mosfet.cgd }
          :: { ca = ui drain; cb = -1; cval = c.Mosfet.cdb }
          :: { ca = ui source; cb = -1; cval = c.Mosfet.csb }
          :: !caps)
    (Netlist.elements net);
  let n_nodes = Netlist.node_count net in
  {
    net;
    n_nodes;
    n_branches = !n_branches;
    size = n_nodes - 1 + !n_branches;
    resistors = Array.of_list (List.rev !resistors);
    caps = Array.of_list (List.rev !caps);
    vsources = Array.of_list (List.rev !vsources);
    isources = Array.of_list (List.rev !isources);
    mosfets = Array.of_list (List.rev !mosfets);
    branch_of_name;
    sp = None;
  }

let size c = c.size

let node_index c node =
  if node <= 0 then None
  else if node >= c.n_nodes then invalid_arg "Mna.node_index: bad node"
  else Some (node - 1)

let node_of_name c name =
  match Netlist.find_node c.net name with
  | Some n -> n
  | None -> raise Not_found

let branch_index c name =
  match Hashtbl.find_opt c.branch_of_name name with
  | Some b -> c.n_nodes - 1 + b
  | None -> raise Not_found

let cap_count c = Array.length c.caps

let volt x i = if i < 0 then 0.0 else x.(i)

let cap_voltage c i x =
  let cap = c.caps.(i) in
  volt x cap.ca -. volt x cap.cb

let cap_value c i = c.caps.(i).cval

let capacitance_stamps c =
  Array.map (fun { ca; cb; cval } -> (ca, cb, cval)) c.caps

(* Transient-integration helpers: one checked pass over the compiled
   capacitor table instead of per-capacitor [cap_value]/[cap_voltage]
   calls in the per-step hot path. *)

let check_cap_arrays c name ~v_prev ~i_prev ~geq ~ieq =
  let ncaps = Array.length c.caps in
  if
    Array.length v_prev < ncaps
    || Array.length i_prev < ncaps
    || Array.length geq < ncaps
    || Array.length ieq < ncaps
  then invalid_arg (name ^ ": arrays shorter than capacitor count")

let companion_fill c ~use_be ~h ~v_prev ~i_prev ~geq ~ieq =
  check_cap_arrays c "Mna.companion_fill" ~v_prev ~i_prev ~geq ~ieq;
  for k = 0 to Array.length c.caps - 1 do
    let cv = (Array.unsafe_get c.caps k).cval in
    if use_be then begin
      let g = cv /. h in
      Array.unsafe_set geq k g;
      Array.unsafe_set ieq k (-.g *. Array.unsafe_get v_prev k)
    end
    else begin
      let g = 2.0 *. cv /. h in
      Array.unsafe_set geq k g;
      Array.unsafe_set ieq k
        ((-.g *. Array.unsafe_get v_prev k) -. Array.unsafe_get i_prev k)
    end
  done

let cap_history c ~x ~geq ~ieq ~v_prev ~i_prev =
  check_cap_arrays c "Mna.cap_history" ~v_prev ~i_prev ~geq ~ieq;
  if Array.length x < c.size then
    invalid_arg "Mna.cap_history: solution vector shorter than system size";
  for k = 0 to Array.length c.caps - 1 do
    let { ca; cb; _ } = Array.unsafe_get c.caps k in
    let va = if ca < 0 then 0.0 else Array.unsafe_get x ca in
    let vb = if cb < 0 then 0.0 else Array.unsafe_get x cb in
    let v_new = va -. vb in
    Array.unsafe_set v_prev k v_new;
    Array.unsafe_set i_prev k
      ((Array.unsafe_get geq k *. v_new) +. Array.unsafe_get ieq k)
  done

type cap_mode =
  | Dc
  | Companion of { geq : float array; ieq : float array }

(* accumulate into row [i] only when it is a real unknown *)
let addf residual i v = if i >= 0 then residual.(i) <- residual.(i) +. v

(* guard for the unchecked accesses in {!eval_residual}: every public
   path into the assembly passes through here first *)
let check_stores c ~x ~residual ~cap_mode =
  if Array.length x < c.size || Array.length residual < c.size then
    invalid_arg "Mna: solution/residual vector shorter than system size";
  match cap_mode with
  | Dc -> ()
  | Companion { geq; ieq } ->
    if
      Array.length geq < Array.length c.caps
      || Array.length ieq < Array.length c.caps
    then invalid_arg "Mna: companion arrays shorter than capacitor count"

(* Per-MOSFET linearisation captured by the residual pass and replayed
   by the Jacobian pass, so each device is evaluated once per Newton
   iteration even though residual and Jacobian are built in separate
   passes.  Parallel arrays keep the floats unboxed. *)
type mos_scratch = {
  ms_hi : int array;      (* high channel terminal after orientation *)
  ms_lo : int array;
  ms_dhi : float array;   (* d ids / d v_hi *)
  ms_dlo : float array;
  ms_dg : float array;    (* d ids / d v_gate *)
}

let make_mos_scratch c =
  let nm = Array.length c.mosfets in
  {
    ms_hi = Array.make nm 0;
    ms_lo = Array.make nm 0;
    ms_dhi = Array.make nm 0.0;
    ms_dlo = Array.make nm 0.0;
    ms_dg = Array.make nm 0.0;
  }

(* Residual at candidate [x], plus the per-MOSFET linearisation into
   [mos] for {!stamp_jacobian} to replay.  Kept separate from the
   stamping pass so the Newton convergence check (which only needs the
   residual) pays no Jacobian work.

   This is the hottest loop of every SPICE-driven flow (twice per
   Newton iteration count across millions of transient steps), so it
   uses unchecked array accesses: the element indices were validated
   against the node/branch counts at compile time, and the public entry
   points check that [x], [residual] and any companion arrays are long
   enough before reaching here. *)
let eval_residual ?(injections = [||]) c ~x ~time ~gmin ~source_scale ~cap_mode
    ~mos ~residual =
  let v i = if i < 0 then 0.0 else Array.unsafe_get x i in
  let add i dv =
    if i >= 0 then
      Array.unsafe_set residual i (Array.unsafe_get residual i +. dv)
  in
  Vec.fill residual 0.0;
  let nb_base = c.n_nodes - 1 in
  (* resistors *)
  let rs = c.resistors in
  for k = 0 to Array.length rs - 1 do
    let { ra; rb; g } = Array.unsafe_get rs k in
    let i = g *. (v ra -. v rb) in
    add ra i;
    add rb (-.i)
  done;
  (* capacitors *)
  (match cap_mode with
  | Dc -> ()
  | Companion { geq; ieq } ->
    let caps = c.caps in
    for k = 0 to Array.length caps - 1 do
      let { ca; cb; _ } = Array.unsafe_get caps k in
      let i =
        (Array.unsafe_get geq k *. (v ca -. v cb)) +. Array.unsafe_get ieq k
      in
      add ca i;
      add cb (-.i)
    done);
  (* voltage sources: branch current row + KVL row *)
  Array.iter
    (fun { vpos; vneg; vwave; branch } ->
      let bi = nb_base + branch in
      let ib = x.(bi) in
      add vpos ib;
      add vneg (-.ib);
      let e = source_scale *. Source.value vwave time in
      residual.(bi) <- v vpos -. v vneg -. e)
    c.vsources;
  (* current sources *)
  Array.iter
    (fun { ipos; ineg; iwave } ->
      let i = source_scale *. Source.value iwave time in
      add ipos i;
      add ineg (-.i))
    c.isources;
  (* MOSFETs *)
  let mosfets = c.mosfets in
  for k = 0 to Array.length mosfets - 1 do
    let m = Array.unsafe_get mosfets k in
    let vd = v m.md and vg = v m.mg and vs = v m.ms in
    (* orient so the internal "drain" is the high node of the channel *)
    let polarity = m.model.Mosfet.polarity in
    let hi, lo, vhi, vlo =
      match polarity with
      | Mosfet.Nmos ->
        if vd >= vs then (m.md, m.ms, vd, vs) else (m.ms, m.md, vs, vd)
      | Mosfet.Pmos ->
        if vs >= vd then (m.ms, m.md, vs, vd) else (m.md, m.ms, vd, vs)
    in
    let vds = vhi -. vlo in
    let vgs =
      match polarity with
      | Mosfet.Nmos -> vg -. vlo
      | Mosfet.Pmos -> vhi -. vg
    in
    let { Mosfet.ids; gm; gds } =
      Mosfet.eval m.model ~w:m.w ~l:m.l ~vth_shift:m.vth_shift
        ~kp_scale:m.kp_scale ~vgs ~vds
    in
    (* current flows hi -> lo through the channel *)
    add hi ids;
    add lo (-.ids);
    (* d ids / d node voltages, per polarity-specific vgs definition *)
    let dhi, dlo, dg =
      match polarity with
      | Mosfet.Nmos ->
        (* vgs = vg - vlo, vds = vhi - vlo *)
        (gds, -.gm -. gds, gm)
      | Mosfet.Pmos ->
        (* vgs = vhi - vg, vds = vhi - vlo *)
        (gm +. gds, -.gds, -.gm)
    in
    Array.unsafe_set mos.ms_hi k hi;
    Array.unsafe_set mos.ms_lo k lo;
    Array.unsafe_set mos.ms_dhi k dhi;
    Array.unsafe_set mos.ms_dlo k dlo;
    Array.unsafe_set mos.ms_dg k dg
  done;
  (* fixed extra currents (transient noise injection); indices are
     caller-supplied, so keep the checked accessor *)
  Array.iter (fun (i, amps) -> addf residual i amps) injections;
  (* gmin from every node to ground *)
  if gmin > 0.0 then
    for i = 0 to nb_base - 1 do
      Array.unsafe_set residual i
        (Array.unsafe_get residual i +. (gmin *. Array.unsafe_get x i))
    done

(* Jacobian stamps for the linearisation captured by {!eval_residual}.
   The stamp sinks receive every (row, col, value) contribution,
   including negative (ground) indices they must skip.  [addj_static]
   gets the contributions that do not depend on [x] (resistors,
   companion capacitors, voltage-source unit entries, gmin) — fixed for
   the lifetime of one Newton call — while [addj_dyn] gets the MOSFET
   small-signal stamps that change every iteration; [statics:false]
   skips the static element loops entirely for the sparse blit path.
   The dense assembly, the sparse assembly and the sparsity-pattern
   discovery all drive this same pass, so they can never disagree about
   what gets stamped. *)
let stamp_jacobian ?(statics = true) c ~gmin ~cap_mode ~mos ~addj_static
    ~addj_dyn =
  let nb_base = c.n_nodes - 1 in
  if statics then begin
    Array.iter
      (fun { ra; rb; g } ->
        addj_static ra ra g;
        addj_static rb rb g;
        addj_static ra rb (-.g);
        addj_static rb ra (-.g))
      c.resistors;
    (match cap_mode with
    | Dc -> ()
    | Companion { geq; _ } ->
      Array.iteri
        (fun k { ca; cb; _ } ->
          let g = geq.(k) in
          addj_static ca ca g;
          addj_static cb cb g;
          addj_static ca cb (-.g);
          addj_static cb ca (-.g))
        c.caps);
    Array.iter
      (fun { vpos; vneg; branch; _ } ->
        let bi = nb_base + branch in
        addj_static vpos bi 1.0;
        addj_static vneg bi (-1.0);
        addj_static bi vpos 1.0;
        addj_static bi vneg (-1.0);
        (* ground-referenced entries when a terminal is ground are
           skipped by addj; the branch row still needs a diagonal-free
           entry, which the terms above provide unless both terminals
           are ground *)
        if vpos < 0 && vneg < 0 then addj_static bi bi 1.0)
      c.vsources;
    if gmin > 0.0 then
      for i = 0 to nb_base - 1 do
        addj_static i i gmin
      done
  end;
  Array.iteri
    (fun k m ->
      let hi = mos.ms_hi.(k) and lo = mos.ms_lo.(k) in
      let dhi = mos.ms_dhi.(k)
      and dlo = mos.ms_dlo.(k)
      and dg = mos.ms_dg.(k) in
      addj_dyn hi hi dhi;
      addj_dyn hi lo dlo;
      addj_dyn hi m.mg dg;
      addj_dyn lo hi (-.dhi);
      addj_dyn lo lo (-.dlo);
      addj_dyn lo m.mg (-.dg))
    c.mosfets

(* residual and Jacobian in one shot — the dense path and the pattern
   discovery use this combined form *)
let assemble_core ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~mos
    ~addj_static ~addj_dyn ~residual =
  eval_residual ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~mos
    ~residual;
  stamp_jacobian c ~gmin ~cap_mode ~mos ~addj_static ~addj_dyn

let assemble ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~jacobian
    ~residual =
  check_stores c ~x ~residual ~cap_mode;
  Matrix.clear jacobian;
  let mos = make_mos_scratch c in
  let addj i j v = if i >= 0 && j >= 0 then Matrix.add_to jacobian i j v in
  assemble_core ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~mos
    ~addj_static:addj ~addj_dyn:addj ~residual

(* ---- sparse stamping ---------------------------------------------- *)

(* One discovery pass over assemble_core records every position any
   assembly mode can touch: companion-cap stamps are forced on (dummy
   conductances), gmin forces the node diagonal, and x = 0 is enough
   for the MOSFETs because the channel-orientation swap permutes hi/lo
   within {drain, source} — the stamped position set
   {d,s} x {d,s,gate} is orientation-invariant. *)
let discover_pattern c =
  let n = c.size in
  let b = Sparse.Builder.create ~n in
  let x = Vec.create n in
  let residual = Vec.create n in
  let ncaps = Array.length c.caps in
  let cap_mode =
    Companion { geq = Array.make ncaps 1.0; ieq = Array.make ncaps 0.0 }
  in
  let addj i j _ = if i >= 0 && j >= 0 then Sparse.Builder.add b i j 0.0 in
  assemble_core c ~x ~time:0.0 ~gmin:1.0 ~source_scale:1.0 ~cap_mode
    ~mos:(make_mos_scratch c) ~addj_static:addj ~addj_dyn:addj ~residual;
  Sparse.Builder.build b

let sp_ctx c =
  match c.sp with
  | Some ctx -> ctx
  | None ->
    let pattern = discover_pattern c in
    let n = c.size in
    let slot = Array.make (n * n) (-1) in
    let row_ptr = Sparse.row_ptr pattern and col_idx = Sparse.col_idx pattern in
    for i = 0 to n - 1 do
      for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        slot.((i * n) + col_idx.(p)) <- p
      done
    done;
    let ctx = { pattern; slot } in
    c.sp <- Some ctx;
    ctx

(* Stamp into the values array of a same-pattern sparse matrix.  An
   out-of-pattern stamp would index slot -1 and fail loudly — the
   pattern is a structural superset of every assembly mode by
   construction, so that would be a discovery bug, not a user error. *)
let sparse_adder ctx ~n values i j v =
  if i >= 0 && j >= 0 then begin
    let p = Array.unsafe_get ctx.slot ((i * n) + j) in
    Array.unsafe_set values p (Array.unsafe_get values p +. v)
  end

let ignore_stamp _ _ _ = ()

(* ---- solver workspace --------------------------------------------- *)

(* Reusable state for a sequence of sparse Newton calls on one compiled
   circuit: the value/static stores, rhs/update vectors and the numeric
   factors survive across calls, so a transient's thousands of steps
   allocate nothing and touch the symbolic registry once.  Single
   owner, never share across threads. *)
type solver_ws = {
  ws_for : compiled;
  ws_ctx : sp_ctx;
  ws_a : Sparse.t;
  ws_static : float array;
  ws_rhs : float array;
  ws_dx : float array;
  ws_mos : mos_scratch;
  mutable ws_num : Sparse_lu.numeric option;
  (* key of the static stamps currently held in [ws_static]: valid flag,
     the gmin and cap-mode tag they were built under, and a private copy
     of the companion conductances.  Comparing 0(ncaps) floats is an
     order of magnitude cheaper than re-stamping, so consecutive
     transient steps (same gmin, same geq) reuse the static part across
     Newton calls, not just across the iterations of one call. *)
  mutable ws_static_valid : bool;
  mutable ws_static_gmin : float;
  mutable ws_static_dc : bool;
  ws_static_geq : float array;
}

type workspace = { mutable ws : solver_ws option }

let make_workspace () = { ws = None }

(* One persistent workspace per domain: Monte-Carlo trials dispatched to
   a pool domain rebind it from sample to sample, so sparse numeric
   factors (and the value stores) survive across structurally identical
   netlists instead of being reallocated per trial. *)
let domain_ws_key = Domain.DLS.new_key (fun () -> make_workspace ())
let domain_workspace () = Domain.DLS.get domain_ws_key

let build_solver_ws c =
  let ctx = sp_ctx c in
  let a = Sparse.like ctx.pattern in
  {
    ws_for = c;
    ws_ctx = ctx;
    ws_a = a;
    ws_static = Array.make (Sparse.nnz a) 0.0;
    ws_rhs = Vec.create c.size;
    ws_dx = Vec.create c.size;
    ws_mos = make_mos_scratch c;
    ws_num = None;
    ws_static_valid = false;
    ws_static_gmin = 0.0;
    ws_static_dc = false;
    ws_static_geq = Array.make (Array.length c.caps) 0.0;
  }

let statics_current ws ~gmin ~cap_mode =
  ws.ws_static_valid
  && ws.ws_static_gmin = gmin
  &&
  match cap_mode with
  | Dc -> ws.ws_static_dc
  | Companion { geq; _ } ->
    (not ws.ws_static_dc)
    &&
    let cached = ws.ws_static_geq in
    let nc = Array.length cached in
    let rec eq k =
      k >= nc
      || Array.unsafe_get geq k = Array.unsafe_get cached k && eq (k + 1)
    in
    eq 0

(* Bring the sparse value store up to date with the linearisation
   captured by the latest {!eval_residual}: restore the static stamps
   with a blit when the cached copy is still current, re-stamp them
   otherwise, then add the MOSFET stamps. *)
let stamp_sparse c ws ~gmin ~cap_mode ~mos =
  let ctx = ws.ws_ctx in
  let values = Sparse.values ws.ws_a in
  let static_values = ws.ws_static in
  let nnz = Array.length values in
  if statics_current ws ~gmin ~cap_mode then begin
    Array.blit static_values 0 values 0 nnz;
    stamp_jacobian ~statics:false c ~gmin ~cap_mode ~mos
      ~addj_static:ignore_stamp
      ~addj_dyn:(sparse_adder ctx ~n:c.size values)
  end
  else begin
    Array.fill static_values 0 nnz 0.0;
    Array.fill values 0 nnz 0.0;
    stamp_jacobian c ~gmin ~cap_mode ~mos
      ~addj_static:(sparse_adder ctx ~n:c.size static_values)
      ~addj_dyn:(sparse_adder ctx ~n:c.size values);
    for p = 0 to nnz - 1 do
      Array.unsafe_set values p
        (Array.unsafe_get values p +. Array.unsafe_get static_values p)
    done;
    ws.ws_static_gmin <- gmin;
    (match cap_mode with
    | Dc -> ws.ws_static_dc <- true
    | Companion { geq; _ } ->
      ws.ws_static_dc <- false;
      Array.blit geq 0 ws.ws_static_geq 0 (Array.length ws.ws_static_geq));
    ws.ws_static_valid <- true
  end

let solver_ws workspace c =
  match workspace with
  | None -> build_solver_ws c
  | Some w -> (
    match w.ws with
    | Some s when s.ws_for == c -> s
    | prev ->
      let s = build_solver_ws c in
      (* Rebinding to a structurally identical circuit (the Monte-Carlo
         case: every sample compiles the same topology with perturbed
         values): carry the numeric factors over, but only when their
         symbolic is the one the registry would hand out anyway — that
         makes the carried path identical, bit for bit, to building a
         fresh numeric from the registry symbolic, so reuse stays purely
         an allocation saving. *)
      (match prev with
      | Some p -> (
        match p.ws_num with
        | Some nm
          when Sparse.same_pattern p.ws_a s.ws_a
               && (match Sparse_lu.find_symbolic s.ws_a with
                  | Some sym -> sym == Sparse_lu.symbolic nm
                  | None -> false) ->
          s.ws_num <- Some nm
        | _ -> ())
      | None -> ());
      w.ws <- Some s;
      s)

(* ---- solver selection --------------------------------------------- *)

(* Resolved once: Histogram.get takes the registry mutex, and the solver
   loop below runs from every pool domain at once. *)
let factorise_hist = lazy (Histogram.get "solver.factorise")
let refactorise_hist = lazy (Histogram.get "solver.refactorise")

(* below this many unknowns the dense kernel's simplicity wins *)
let sparse_threshold = 8

let resolve_solver c solver =
  let mode = match solver with Some m -> m | None -> Config.solver () in
  match mode with
  | Config.Dense -> `Dense
  | Config.Sparse -> `Sparse
  | Config.Auto -> if c.size >= sparse_threshold then `Sparse else `Dense

let solver_name ?solver c =
  match resolve_solver c solver with `Dense -> "dense" | `Sparse -> "sparse"

type newton_report = {
  converged : bool;
  iterations : int;
  max_dx : float;
  max_residual : float;
}

let boltzmann_t = 4.14e-21 (* kT at 300 K *)
let gamma_noise = 2.0 (* short-channel excess noise factor *)

let channel_noise_stamps c ~x =
  Array.map
    (fun m ->
      let vd = volt x m.md and vg = volt x m.mg and vs = volt x m.ms in
      let polarity = m.model.Mosfet.polarity in
      let hi, lo, vhi, vlo =
        match polarity with
        | Mosfet.Nmos ->
          if vd >= vs then (m.md, m.ms, vd, vs) else (m.ms, m.md, vs, vd)
        | Mosfet.Pmos ->
          if vs >= vd then (m.ms, m.md, vs, vd) else (m.md, m.ms, vd, vs)
      in
      let vds = vhi -. vlo in
      let vgs =
        match polarity with
        | Mosfet.Nmos -> vg -. vlo
        | Mosfet.Pmos -> vhi -. vg
      in
      let { Mosfet.gm; _ } =
        Mosfet.eval m.model ~w:m.w ~l:m.l ~vth_shift:m.vth_shift
          ~kp_scale:m.kp_scale ~vgs ~vds
      in
      (hi, lo, sqrt (4.0 *. boltzmann_t *. gamma_noise *. Float.max gm 0.0)))
    c.mosfets

(* Newton driver shared by both linear-solver backends:
   [assemble_residual] refreshes the residual (and whatever the backend
   caches alongside it) at the current x, [prepare_jacobian] brings the
   backend's Jacobian store up to date — called only on iterations that
   actually solve, so a converged check pays no stamping — and [solve]
   returns the Newton update or None on a singular system. *)
let newton_loop ~max_iter ~vtol ~rtol ~itol ~dv_limit ~nb_base ~x ~residual
    ~assemble_residual ~prepare_jacobian ~solve =
  let rec loop iter last_dx =
    assemble_residual ();
    let max_res =
      let acc = ref 0.0 in
      for i = 0 to nb_base - 1 do
        acc := Float.max !acc (Float.abs residual.(i))
      done;
      !acc
    in
    if last_dx < vtol +. (rtol *. Vec.norm_inf x) && max_res < itol && iter > 0
    then { converged = true; iterations = iter; max_dx = last_dx; max_residual = max_res }
    else if iter >= max_iter then
      { converged = false; iterations = iter; max_dx = last_dx; max_residual = max_res }
    else begin
      prepare_jacobian ();
      match solve () with
      | None ->
        { converged = false; iterations = iter; max_dx = last_dx; max_residual = max_res }
      | Some dx ->
        (* damp on node-voltage updates only *)
        let max_node_dx = ref 0.0 in
        for i = 0 to nb_base - 1 do
          max_node_dx := Float.max !max_node_dx (Float.abs dx.(i))
        done;
        let alpha = if !max_node_dx > dv_limit then dv_limit /. !max_node_dx else 1.0 in
        Vec.axpy ~alpha dx x;
        loop (iter + 1) (alpha *. Float.max !max_node_dx (Vec.norm_inf dx))
    end
  in
  loop 0 infinity

let newton ?(max_iter = 50) ?(vtol = 1e-6) ?(rtol = 1e-6) ?(itol = 1e-9)
    ?(dv_limit = 0.5) ?injections ?solver ?workspace c ~x ~time ~gmin
    ~source_scale ~cap_mode =
  let n = c.size in
  let nb_base = c.n_nodes - 1 in
  let residual = Vec.create n in
  check_stores c ~x ~residual ~cap_mode;
  let choice = resolve_solver c solver in
  let run () =
    match choice with
    | `Dense ->
      let jacobian = Matrix.create n n in
      (* the combined assembly refreshes the Jacobian together with the
         residual, so the solve needs no separate stamping step *)
      let assemble_residual () =
        assemble ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~jacobian
          ~residual
      in
      let solve () =
        match Lu.solve jacobian (Array.map (fun r -> -.r) residual) with
        | exception Lu.Singular _ -> None
        | dx -> Some dx
      in
      newton_loop ~max_iter ~vtol ~rtol ~itol ~dv_limit ~nb_base ~x ~residual
        ~assemble_residual ~prepare_jacobian:ignore ~solve
    | `Sparse ->
      let ws = solver_ws workspace c in
      let a = ws.ws_a in
      let rhs = ws.ws_rhs and dx = ws.ws_dx in
      let mos = ws.ws_mos in
      let assemble_residual () =
        eval_residual ?injections c ~x ~time ~gmin ~source_scale ~cap_mode
          ~mos ~residual
      in
      let prepare_jacobian () = stamp_sparse c ws ~gmin ~cap_mode ~mos in
      (* symbolic analysis runs once per circuit topology: the registry
         shares it across Newton calls, timesteps and Monte-Carlo
         samples of structurally identical netlists; every later solve
         is a cheap numeric refactorisation along the frozen pattern.
         A frozen pivot gone stale raises Singular and falls back to a
         fresh factorisation (new pivot order). *)
      let full_factorise () =
        match
          Histogram.time (Lazy.force factorise_hist) (fun () ->
              Sparse_lu.factorise a)
        with
        | exception Sparse_lu.Singular _ -> None
        | sym, nm ->
          Telemetry.incr "solver.symbolic";
          Sparse_lu.store_symbolic a sym;
          ws.ws_num <- Some nm;
          Some nm
      in
      (* The refactorise counter/histogram updates are batched over the
         whole Newton call: both sit behind global mutexes, and hitting
         them per iteration from every pool domain serialises the
         Monte-Carlo trials that this solver exists to parallelise
         (ROADMAP item 1).  The counter total is exact; the histogram
         records one observation per Newton call (the summed
         refactorisation time of its iterations). *)
      let refact_n = ref 0 and refact_s = ref 0.0 in
      let refactorise nm =
        let t0 = Unix.gettimeofday () in
        match Sparse_lu.refactorise nm a with
        | () ->
          refact_s := !refact_s +. (Unix.gettimeofday () -. t0);
          incr refact_n;
          ws.ws_num <- Some nm;
          Some nm
        | exception Sparse_lu.Singular _ ->
          Telemetry.incr "solver.refactorise_fallback";
          full_factorise ()
      in
      let solve () =
        let nm =
          match ws.ws_num with
          | Some nm -> refactorise nm
          | None -> (
            match Sparse_lu.find_symbolic a with
            | Some sym -> refactorise (Sparse_lu.create_numeric sym)
            | None -> full_factorise ())
        in
        match nm with
        | None -> None
        | Some nm ->
          for i = 0 to n - 1 do
            rhs.(i) <- -.residual.(i)
          done;
          Sparse_lu.solve_into nm ~b:rhs ~x:dx;
          Some dx
      in
      let report =
        newton_loop ~max_iter ~vtol ~rtol ~itol ~dv_limit ~nb_base ~x ~residual
          ~assemble_residual ~prepare_jacobian ~solve
      in
      if !refact_n > 0 then begin
        Telemetry.incr "solver.refactorise" ~by:!refact_n;
        Histogram.observe (Lazy.force refactorise_hist) !refact_s
      end;
      report
  in
  if Trace.enabled () then
    Trace.span "mna.newton"
      ~args:
        [
          ("solver", (match choice with `Dense -> "dense" | `Sparse -> "sparse"));
          ("n", string_of_int n);
        ]
      run
  else run ()
