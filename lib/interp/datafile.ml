type t = { inputs : float array array; outputs : float array }

let columns t = if Array.length t.inputs = 0 then 0 else Array.length t.inputs.(0)
let rows t = Array.length t.outputs

let of_rows rows_list =
  match rows_list with
  | [] -> { inputs = [||]; outputs = [||] }
  | (first, _) :: _ ->
    let cols = Array.length first in
    List.iter
      (fun (ins, _) ->
        if Array.length ins <> cols then
          invalid_arg "Datafile.of_rows: ragged rows")
      rows_list;
    {
      inputs = Array.of_list (List.map fst rows_list);
      outputs = Array.of_list (List.map snd rows_list);
    }

let to_string ?header t =
  let buf = Buffer.create 1024 in
  (match header with
  | Some h ->
    String.split_on_char '\n' h
    |> List.iter (fun line -> Buffer.add_string buf ("# " ^ line ^ "\n"))
  | None -> ());
  Array.iteri
    (fun i ins ->
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%.9e " x)) ins;
      Buffer.add_string buf (Printf.sprintf "%.9e\n" t.outputs.(i)))
    t.inputs;
  Buffer.contents buf

let is_comment line =
  let line = String.trim line in
  String.length line = 0
  || line.[0] = '#'
  || line.[0] = '*'
  || (String.length line >= 2 && line.[0] = '/' && line.[1] = '/')

let of_string text =
  let parse_line lineno line =
    let fields =
      String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
      |> List.filter (fun f -> f <> "")
    in
    let values =
      List.map
        (fun f ->
          match Repro_util.Si.parse_opt f with
          | Some v -> v
          | None ->
            failwith
              (Printf.sprintf "Datafile.of_string: bad number %S on line %d" f
                 lineno))
        fields
    in
    match List.rev values with
    | [] | [ _ ] ->
      failwith
        (Printf.sprintf "Datafile.of_string: need >= 2 columns on line %d"
           lineno)
    | out :: ins_rev -> (Array.of_list (List.rev ins_rev), out)
  in
  let rows_list =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter (fun (_, line) -> not (is_comment line))
    |> List.map (fun (i, line) -> parse_line i line)
  in
  of_rows rows_list

let save ?header path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?header t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let table1d ?control t =
  if columns t <> 1 then
    invalid_arg "Datafile.table1d: table does not have exactly 1 input column";
  let xs = Array.map (fun row -> row.(0)) t.inputs in
  Table1d.build ?control xs t.outputs

let table_nd ?scheme t = Table_nd.build ?scheme t.inputs t.outputs
