type node = int

let ground = 0

type element =
  | Resistor of { name : string; n1 : node; n2 : node; value : float }
  | Capacitor of { name : string; n1 : node; n2 : node; value : float }
  | Vsource of { name : string; npos : node; nneg : node; source : Source.t }
  | Isource of { name : string; npos : node; nneg : node; source : Source.t }
  | Mos of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      model : Mosfet.model;
      w : float;
      l : float;
      vth_shift : float;
      kp_scale : float;
    }

let element_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Mos { name; _ } -> name

let element_nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } -> [ n1; n2 ]
  | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ } -> [ npos; nneg ]
  | Mos { drain; gate; source; _ } -> [ drain; gate; source ]

type t = {
  mutable rev_elements : element list;
  mutable names : (string, unit) Hashtbl.t;
  node_ids : (string, int) Hashtbl.t;
  mutable node_names : string list; (* reversed; index = count - 1 - pos *)
  mutable next_node : int;
}

let create () =
  let t =
    {
      rev_elements = [];
      names = Hashtbl.create 16;
      node_ids = Hashtbl.create 16;
      node_names = [ "0" ];
      next_node = 1;
    }
  in
  Hashtbl.replace t.node_ids "0" 0;
  t

let normalise_node_name s =
  let s = String.trim s in
  match String.lowercase_ascii s with "gnd" | "0" -> "0" | _ -> s

let node t name =
  let name = normalise_node_name name in
  match Hashtbl.find_opt t.node_ids name with
  | Some id -> id
  | None ->
    let id = t.next_node in
    t.next_node <- id + 1;
    Hashtbl.replace t.node_ids name id;
    t.node_names <- name :: t.node_names;
    id

let node_count t = t.next_node

let node_name t id =
  if id < 0 || id >= t.next_node then invalid_arg "Netlist.node_name";
  List.nth t.node_names (t.next_node - 1 - id)

let find_node t name = Hashtbl.find_opt t.node_ids (normalise_node_name name)

let add t el =
  let name = element_name el in
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate element %S" name);
  List.iter
    (fun n ->
      if n < 0 || n >= t.next_node then
        invalid_arg (Printf.sprintf "Netlist.add: dangling node %d in %S" n name))
    (element_nodes el);
  Hashtbl.replace t.names name ();
  t.rev_elements <- el :: t.rev_elements

let resistor t name a b value =
  let n1 = node t a and n2 = node t b in
  add t (Resistor { name; n1; n2; value })

let capacitor t name a b value =
  let n1 = node t a and n2 = node t b in
  add t (Capacitor { name; n1; n2; value })

let vsource t name a b source =
  let npos = node t a and nneg = node t b in
  add t (Vsource { name; npos; nneg; source })

let isource t name a b source =
  let npos = node t a and nneg = node t b in
  add t (Isource { name; npos; nneg; source })

let mosfet t name ~drain ~gate ~source ~model ~w ~l =
  let d = node t drain and g = node t gate and s = node t source in
  add t
    (Mos
       {
         name;
         drain = d;
         gate = g;
         source = s;
         model;
         w;
         l;
         vth_shift = 0.0;
         kp_scale = 1.0;
       })

let elements t = List.rev t.rev_elements

let copy t =
  {
    rev_elements = t.rev_elements;
    names = Hashtbl.copy t.names;
    node_ids = Hashtbl.copy t.node_ids;
    node_names = t.node_names;
    next_node = t.next_node;
  }

let map_elements f t =
  let t' = copy t in
  t'.rev_elements <- List.rev_map f (elements t);
  t'

let mos_count t =
  List.fold_left
    (fun acc el ->
      match el with
      | Mos _ -> acc + 1
      | Resistor _ | Capacitor _ | Vsource _ | Isource _ -> acc)
    0 (elements t)

let to_spice t =
  let buf = Buffer.create 512 in
  let n = node_name t in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "* netlist (%d nodes, %d elements)" (node_count t)
    (List.length (elements t));
  List.iter
    (fun el ->
      match el with
      | Resistor { name; n1; n2; value } ->
        line "%s %s %s %s" name (n n1) (n n2) (Repro_util.Si.format value)
      | Capacitor { name; n1; n2; value } ->
        line "%s %s %s %s" name (n n1) (n n2) (Repro_util.Si.format value)
      | Vsource { name; npos; nneg; source } ->
        line "%s %s %s %s" name (n npos) (n nneg)
          (Format.asprintf "%a" Source.pp source)
      | Isource { name; npos; nneg; source } ->
        line "%s %s %s %s" name (n npos) (n nneg)
          (Format.asprintf "%a" Source.pp source)
      | Mos { name; drain; gate; source; model; w; l; _ } ->
        line "%s %s %s %s %s W=%s L=%s" name (n drain) (n gate) (n source)
          model.Mosfet.name (Repro_util.Si.format w) (Repro_util.Si.format l))
    (elements t);
  line ".end";
  Buffer.contents buf
