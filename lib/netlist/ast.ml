(* Typed card AST produced by {!Parse} and consumed by {!Elab}.

   Numeric fields are unevaluated expressions: a plain SPICE number
   ("2.2k"), a bare parameter reference, or a braced arithmetic
   expression ("{wn*2}").  Node and element names keep their source
   spelling; model/subcircuit/parameter names are matched
   case-insensitively at elaboration time. *)

type expr =
  | Num of float
  | Ref of string * Loc.pos  (* parameter reference, lowercased *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr * Loc.pos
  | Call of string * expr list * Loc.pos  (* min max pow sqrt abs *)

(* a .param right-hand side: a value, or an optimisation range template *)
type pvalue =
  | Value of expr
  | Range of expr * expr  (* {range lo hi} *)

type source_def =
  | Dc of expr
  | Pulse of expr list  (* v1 v2 delay rise fall width [period] *)
  | Sin of expr list    (* offset ampl freq [delay damp phase] *)
  | Pwl of expr list    (* t v pairs *)

type element =
  | R of { name : string; pos : Loc.pos; n1 : string; n2 : string;
           value : expr }
  | C of { name : string; pos : Loc.pos; n1 : string; n2 : string;
           value : expr }
  | V of { name : string; pos : Loc.pos; npos : string; nneg : string;
           src : source_def }
  | I of { name : string; pos : Loc.pos; npos : string; nneg : string;
           src : source_def }
  | M of { name : string; pos : Loc.pos; drain : string; gate : string;
           source : string; bulk : string option; model : string;
           model_pos : Loc.pos; w : expr; l : expr }
  | X of { name : string; pos : Loc.pos; nodes : string list; sub : string;
           sub_pos : Loc.pos; overrides : (string * expr) list }

let element_name = function
  | R { name; _ } | C { name; _ } | V { name; _ } | I { name; _ }
  | M { name; _ } | X { name; _ } -> name

let element_pos = function
  | R { pos; _ } | C { pos; _ } | V { pos; _ } | I { pos; _ } | M { pos; _ }
  | X { pos; _ } -> pos

type param_def = { p_name : string; p_pos : Loc.pos; p_value : pvalue }

type model_def = {
  m_name : string;  (* source spelling; matched case-insensitively *)
  m_pos : Loc.pos;
  m_kind : [ `Nmos | `Pmos ];
  m_params : (string * Loc.pos * expr) list;
}

(* .subckt definitions nest lexically: [s_subs] are the definitions
   local to this body, visible only from inside it (shadowing outer
   names); [s_params] are the header/body parameter defaults *)
type subckt = {
  s_name : string;  (* lowercased *)
  s_pos : Loc.pos;
  ports : string list;
  s_params : param_def list;
  s_elements : element list;
  s_subs : subckt list;
}

type deck = {
  elements : element list;  (* top level, in source order *)
  subs : subckt list;
  models : model_def list;
  params : param_def list;
}

let rec expr_refs acc = function
  | Num _ -> acc
  | Ref (n, _) -> n :: acc
  | Neg e -> expr_refs acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b, _) ->
    expr_refs (expr_refs acc a) b
  | Call (_, args, _) -> List.fold_left expr_refs acc args

let pvalue_refs = function
  | Value e -> expr_refs [] e
  | Range (lo, hi) -> expr_refs (expr_refs [] lo) hi
