(** Process-wide counters and wall-clock timers for the evaluation
    engine (evaluations run, cache hits, failures, per-phase time).

    The registry is global and mutex-protected so pool workers can
    report from any domain.  Names are free-form dotted strings, e.g.
    ["eval.runs"], ["mc.failures"], ["phase.circuit"]. *)

val incr : ?by:int -> string -> unit
val set : string -> int -> unit
val counter : string -> int
(** Unknown counters read as 0. *)

val add_time : string -> float -> unit
(** Accumulate wall-clock seconds onto a named timer. *)

val timer : string -> float
(** Total accumulated seconds (0 when never touched). *)

val time : string -> (unit -> 'a) -> 'a
(** Run a thunk, accumulating its wall-clock duration (also on
    exceptions). *)

val warn : key:string -> ('a, unit, string, unit) format4 -> 'a
(** Loud failure-channel warning: increments counter [key], prints
    ["WARNING [key]: ..."] to stderr as one atomic line (warnings from
    concurrent domains never tear), and mirrors the warning into the
    current {!Repro_obs.Journal} as a structured event when a run is
    active. *)

val reset : unit -> unit
(** Clear every counter and timer (bench sections, tests). *)

val snapshot : unit -> (string * [ `Counter of int | `Timer of float ]) list
(** A consistent point-in-time copy of the whole registry, keys sorted
    (counters and timers interleaved by name).  This is the structured
    export surface — [line], [report] and [to_json_string] are all
    renderings of it; consumers should branch on the tags rather than
    scrape the formatted strings. *)

val to_json_string : unit -> string
(** {!snapshot} as a JSON object
    [{"counters": {name: int, ...}, "timers": {name: seconds, ...}}].
    Timer values render with enough digits to parse back to the exact
    float.  Served by the model server's [GET /metrics]. *)

val line : unit -> string
(** One-line ["telemetry: k=v ..."] summary, keys sorted. *)

val report : unit -> string
(** Multi-line aligned report. *)
