module V = Repro_spice.Vco_measure
module B = Repro_behave

let buf_printf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let ascii_plot ?(width = 72) ?(height = 18) ~title ?(y_label = "") points =
  let buf = Buffer.create 2048 in
  if Array.length points < 2 then begin
    buf_printf buf "%s: (not enough points to plot)\n" title;
    Buffer.contents buf
  end
  else begin
    let xs = Array.map fst points and ys = Array.map snd points in
    let x0, x1 = Repro_util.Stats.min_max xs in
    let y0, y1 = Repro_util.Stats.min_max ys in
    let y0, y1 = if y1 > y0 then (y0, y1) else (y0 -. 1.0, y1 +. 1.0) in
    let x0, x1 = if x1 > x0 then (x0, x1) else (x0 -. 1.0, x1 +. 1.0) in
    let grid = Array.make_matrix height width ' ' in
    Array.iter
      (fun (x, y) ->
        let cx =
          int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
        in
        let cy =
          int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
        in
        let cx = max 0 (min (width - 1) cx)
        and cy = max 0 (min (height - 1) cy) in
        grid.(height - 1 - cy).(cx) <- '*')
      points;
    buf_printf buf "%s\n" title;
    for r = 0 to height - 1 do
      let label =
        if r = 0 then Printf.sprintf "%10.3g" y1
        else if r = height - 1 then Printf.sprintf "%10.3g" y0
        else if r = height / 2 && y_label <> "" then
          Printf.sprintf "%10s" y_label
        else String.make 10 ' '
      in
      buf_printf buf "%s |%s\n" label (String.init width (fun c -> grid.(r).(c)))
    done;
    buf_printf buf "%10s +%s\n" "" (String.make width '-');
    buf_printf buf "%10s  %-10.3g%*s%10.3g\n" "" x0 (width - 20) "" x1;
    Buffer.contents buf
  end

let fig7_front designs =
  let buf = Buffer.create 4096 in
  buf_printf buf
    "Figure 7 — circuit-level Pareto front (3 of the 5 objectives shown: jitter, current, gain)\n";
  buf_printf buf "%-4s %10s %10s %12s %10s %10s\n" "#" "jitter/ps" "curr/mA"
    "gain MHz/V" "fmin/MHz" "fmax/MHz";
  let sorted = Array.copy designs in
  Array.sort
    (fun a b ->
      compare a.Vco_problem.perf.V.jvco b.Vco_problem.perf.V.jvco)
    sorted;
  Array.iteri
    (fun i d ->
      let p = d.Vco_problem.perf in
      buf_printf buf "%-4d %10.3f %10.2f %12.0f %10.0f %10.0f\n" (i + 1)
        (p.V.jvco *. 1e12) (p.V.ivco *. 1e3) (p.V.kvco /. 1e6)
        (p.V.fmin /. 1e6) (p.V.fmax /. 1e6))
    sorted;
  let jitter_vs_current =
    Array.map
      (fun d ->
        (d.Vco_problem.perf.V.ivco *. 1e3, d.Vco_problem.perf.V.jvco *. 1e12))
      sorted
  in
  Buffer.add_string buf
    (ascii_plot ~title:"jitter/ps (y) vs current/mA (x) projection"
       jitter_vs_current);
  Buffer.contents buf

let table1 entries =
  let buf = Buffer.create 4096 in
  buf_printf buf "Table 1 — performance and variation values\n";
  buf_printf buf "%-8s %12s %8s %10s %8s %10s %8s\n" "Design" "Kvco(MHz/V)"
    "dKvco" "Jvco(ps)" "dJvco" "Ivco(mA)" "dIvco";
  Array.iteri
    (fun i (e : Variation_model.entry) ->
      let p = e.Variation_model.design.Vco_problem.perf in
      buf_printf buf "%-8d %12.0f %7.2f%% %10.3f %7.1f%% %10.2f %7.1f%%\n"
        (i + 1) (p.V.kvco /. 1e6)
        (100.0 *. e.Variation_model.d_kvco)
        (p.V.jvco *. 1e12)
        (100.0 *. e.Variation_model.d_jvco)
        (p.V.ivco *. 1e3)
        (100.0 *. e.Variation_model.d_ivco))
    entries;
  Buffer.contents buf

let table2 ?selected rows =
  let buf = Buffer.create 4096 in
  buf_printf buf
    "Table 2 — PLL system-level solution samples (selected design marked *)\n";
  buf_printf buf
    "%-2s %7s %7s %7s %6s %6s %6s %7s %7s %7s %6s %6s %6s %6s %6s %6s %6s\n"
    "" "Kv" "Kvmin" "Kvmax" "Iv" "Ivmin" "Ivmax" "C1" "C2" "R1" "Lt" "Jit"
    "Jmin" "Jmax" "Curr" "Cmin" "Cmax";
  buf_printf buf
    "%-2s %7s %7s %7s %6s %6s %6s %7s %7s %7s %6s %6s %6s %6s %6s %6s %6s\n"
    "" "MHz/V" "" "" "mA" "" "" "" "" "" "us" "ps" "" "" "mA" "" "";
  let is_selected r =
    match selected with
    | Some s -> s.Pll_problem.kv = r.Pll_problem.kv && s.Pll_problem.c1 = r.Pll_problem.c1
    | None -> false
  in
  Array.iter
    (fun (r : Pll_problem.table2_row) ->
      buf_printf buf
        "%-2s %7.0f %7.0f %7.0f %6.2f %6.2f %6.2f %7s %7s %7s %6.2f %6.2f %6.2f %6.2f %6.1f %6.1f %6.1f\n"
        (if is_selected r then "*" else "")
        (r.Pll_problem.kv /. 1e6)
        (r.Pll_problem.kv_min /. 1e6)
        (r.Pll_problem.kv_max /. 1e6)
        (r.Pll_problem.iv *. 1e3)
        (r.Pll_problem.iv_min *. 1e3)
        (r.Pll_problem.iv_max *. 1e3)
        (Repro_util.Si.format r.Pll_problem.c1)
        (Repro_util.Si.format r.Pll_problem.c2)
        (Repro_util.Si.format r.Pll_problem.r1)
        (r.Pll_problem.lock *. 1e6)
        (r.Pll_problem.jit *. 1e12)
        (r.Pll_problem.jit_min *. 1e12)
        (r.Pll_problem.jit_max *. 1e12)
        (r.Pll_problem.curr *. 1e3)
        (r.Pll_problem.curr_min *. 1e3)
        (r.Pll_problem.curr_max *. 1e3))
    rows;
  Buffer.contents buf

let fig8_locking cfg (row : Pll_problem.table2_row) =
  let pll_cfg, _, _, _ =
    Pll_problem.variant_config cfg ~kvco:row.Pll_problem.kv
      ~ivco:row.Pll_problem.iv ~c1:row.Pll_problem.c1 ~c2:row.Pll_problem.c2
      ~r1:row.Pll_problem.r1
  in
  let sim = B.Pll.simulate pll_cfg (B.Pll.default_sim_options pll_cfg) in
  let buf = Buffer.create 4096 in
  buf_printf buf "Figure 8 — PLL locking transient of the selected design\n";
  (match sim.B.Pll.lock_time with
  | Some t -> buf_printf buf "lock time: %.3f us (spec < %.2f us)\n" (t *. 1e6)
                (cfg.Pll_problem.spec.Spec.lock_time_max *. 1e6)
  | None -> buf_printf buf "loop did not lock within the window!\n");
  let trace =
    Array.map (fun (t, f) -> (t *. 1e9, f /. 1e6)) sim.B.Pll.freq_trace
  in
  Buffer.add_string buf
    (ascii_plot ~title:"output frequency / MHz vs time / ns" ~y_label:"f/MHz"
       trace);
  let vtrace =
    Array.map (fun (t, v) -> (t *. 1e9, v)) sim.B.Pll.vctl_trace
  in
  Buffer.add_string buf
    (ascii_plot ~title:"control voltage / V vs time / ns" ~y_label:"vctl"
       vtrace);
  Buffer.contents buf

let pp_perf_line buf tag (p : V.performance) =
  buf_printf buf
    "  %-22s kvco=%7.0f MHz/V  ivco=%6.2f mA  jvco=%6.3f ps  f=[%5.0f, %5.0f] MHz\n"
    tag (p.V.kvco /. 1e6) (p.V.ivco *. 1e3) (p.V.jvco *. 1e12)
    (p.V.fmin /. 1e6) (p.V.fmax /. 1e6)

let yield_report estimate ~verification =
  let buf = Buffer.create 2048 in
  buf_printf buf "Yield verification (paper: 500 MC samples -> 100%%)\n";
  buf_printf buf "  behavioural MC: %s\n"
    (Format.asprintf "%a" Repro_util.Stats.pp_yield estimate);
  (match verification with
  | None -> buf_printf buf "  (no selected design to verify)\n"
  | Some v ->
    buf_printf buf "bottom-up verification of the selected design:\n";
    pp_perf_line buf "model (top-down ask)" v.Hierarchy.requested;
    let p = v.Hierarchy.mapped in
    buf_printf buf
      "  mapped sizing: wn=%s ln=%s wp=%s lp=%s wcn=%s wcp=%s lc=%s\n"
      (Repro_util.Si.format p.Repro_circuit.Topologies.wn)
      (Repro_util.Si.format p.Repro_circuit.Topologies.ln)
      (Repro_util.Si.format p.Repro_circuit.Topologies.wp)
      (Repro_util.Si.format p.Repro_circuit.Topologies.lp)
      (Repro_util.Si.format p.Repro_circuit.Topologies.wcn)
      (Repro_util.Si.format p.Repro_circuit.Topologies.wcp)
      (Repro_util.Si.format p.Repro_circuit.Topologies.lc);
    (match v.Hierarchy.measured with
    | Ok m ->
      pp_perf_line buf "transistor (measured)" m;
      let err a b = 100.0 *. Float.abs (a -. b) /. Float.abs b in
      buf_printf buf
        "  prediction error: kvco %.1f%%  ivco %.1f%%  jvco %.1f%%\n"
        (err m.V.kvco v.Hierarchy.requested.V.kvco)
        (err m.V.ivco v.Hierarchy.requested.V.ivco)
        (err m.V.jvco v.Hierarchy.requested.V.jvco)
    | Error e -> buf_printf buf "  transistor re-simulation failed: %s\n" e));
  Buffer.contents buf

let ablation_report ~(with_variation : Hierarchy.result)
    ~(without_variation : Hierarchy.result) ~prng =
  let buf = Buffer.create 2048 in
  buf_printf buf
    "Ablation — variation-aware optimisation (this paper) vs nominal-only ([10])\n";
  let describe tag (r : Hierarchy.result) =
    match r.Hierarchy.selected with
    | None -> buf_printf buf "  %-16s no feasible design selected\n" tag
    | Some row ->
      (* evaluate both selections under the SAME variation-aware yield model *)
      let vcfg =
        { r.Hierarchy.pll_config with Pll_problem.use_variation = true }
      in
      let y =
        Yield.behavioural ~n:300 ~prng:(Repro_util.Prng.split prng) vcfg row
      in
      buf_printf buf
        "  %-16s jit=%5.2f ps  lock(worst)=%5.3f us  curr(worst)=%5.2f mA  yield=%s\n"
        tag
        (row.Pll_problem.jit *. 1e12)
        (row.Pll_problem.lock_max *. 1e6)
        (row.Pll_problem.curr_max *. 1e3)
        (Format.asprintf "%a" Repro_util.Stats.pp_yield y)
  in
  describe "with variation" with_variation;
  describe "nominal-only" without_variation;
  Buffer.contents buf
