(** SPEA2 (Zitzler, Laumanns, Thiele 2001): strength-Pareto evolutionary
    algorithm with a fixed-size external archive, k-nearest-neighbour
    density estimation and archive truncation.

    Provided as a second multi-objective optimiser over the same
    {!Problem} abstraction — the optimiser-choice ablation in the bench
    compares it with {!Nsga2} on the circuit problem.  Constraint
    handling reuses {!Pareto.compare_dominance} (Deb constraint
    domination). *)

type options = {
  population : int;
  archive : int;       (** external archive size (the returned front) *)
  generations : int;
  crossover_prob : float;
  eta_crossover : float;
  mutation_prob : float;  (** <= 0 means 1/n_vars *)
  eta_mutation : float;
}

val default_options : options
(** population 100, archive 100, generations 30, same variation settings
    as {!Nsga2.default_options}. *)

val optimise :
  ?options:options ->
  ?evaluator:Problem.evaluator ->
  ?on_generation:(int -> Nsga2.individual array -> unit) ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Run SPEA2 and return the final archive (use {!Nsga2.pareto_front} to
    extract the feasible non-dominated subset).  [evaluator] batches
    each generation's evaluations exactly as in {!Nsga2.optimise}. *)
