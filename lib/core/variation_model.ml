module V = Repro_spice.Vco_measure
module Mc = Repro_spice.Monte_carlo
module T = Repro_circuit.Topologies

type entry = {
  design : Vco_problem.sized_design;
  d_kvco : float;
  d_jvco : float;
  d_ivco : float;
  d_fmin : float;
  d_fmax : float;
  mc_samples : int;
  mc_failures : int;
}

let pp_entry ppf e =
  Format.fprintf ppf
    "kvco=%.0fMHz/V(∆%.2f%%) jvco=%.3fps(∆%.1f%%) ivco=%.2fmA(∆%.1f%%) [n=%d]"
    (e.design.Vco_problem.perf.V.kvco /. 1e6)
    (100.0 *. e.d_kvco)
    (e.design.Vco_problem.perf.V.jvco *. 1e12)
    (100.0 *. e.d_jvco)
    (e.design.Vco_problem.perf.V.ivco *. 1e3)
    (100.0 *. e.d_ivco)
    e.mc_samples

type options = {
  samples : int;
  process : Repro_circuit.Process.spec;
  measure : Repro_spice.Vco_measure.options;
}

let default_options =
  {
    samples = 100;
    process = Repro_circuit.Process.default;
    measure = V.default_options;
  }

(* lossless sample codec for Monte-Carlo checkpoint rows *)
let perf_codec =
  {
    Mc.encode =
      (fun (p : V.performance) ->
        [| p.V.kvco; p.V.ivco; p.V.jvco; p.V.fmin; p.V.fmax |]);
    decode =
      (fun a ->
        if Array.length a <> 5 then
          failwith "Variation_model: malformed performance row"
        else
          {
            V.kvco = a.(0);
            ivco = a.(1);
            jvco = a.(2);
            fmin = a.(3);
            fmax = a.(4);
          });
  }

type mc_bulk =
  params:float array ->
  local:(Repro_util.Prng.t array -> (V.performance, string) result array) ->
  Repro_util.Prng.t array ->
  (V.performance, string) result array

let analyse_design ?(options = default_options) ?mc_bulk ?builder ?checkpoint
    ~prng (design : Vco_problem.sized_design) =
  let net =
    match builder with
    | Some build -> build design.Vco_problem.params
    | None ->
      T.ring_vco ~stages:options.measure.V.stages ~vdd:options.measure.V.vdd
        ~vctl:options.measure.V.vctl_lo design.Vco_problem.params
  in
  let trial perturbed =
    match V.characterise_netlist ~options:options.measure perturbed with
    | Ok p -> Ok p
    | Error f -> Error (V.failure_to_string f)
  in
  let checkpoint =
    Option.map (fun (ck, key) -> (ck, key, perf_codec)) checkpoint
  in
  (* the distributed-farm hook: hand the pre-split streams (plus the
     7-float parameter vector a remote worker needs to rebuild [net])
     to the caller, together with a [local] evaluator it can fall back
     on — the local closure owns net/spec/measure so the seam never
     leaks circuit types into the coordinator *)
  let bulk =
    Option.map
      (fun (mb : mc_bulk) ->
        let local streams =
          Repro_engine.Parmap.map
            (fun s -> trial (Repro_circuit.Process.sample options.process s net))
            streams
        in
        mb ~params:(T.vco_vector_of_params design.Vco_problem.params) ~local)
      mc_bulk
  in
  let mc =
    Mc.run ~spec:options.process ?checkpoint ?bulk ~n:options.samples ~prng net
      trial
  in
  let n_ok = Array.length mc.Mc.samples in
  let spread get =
    if n_ok < 3 then 0.0
    else Repro_util.Stats.relative_spread (Array.map get mc.Mc.samples)
  in
  {
    design;
    d_kvco = spread (fun p -> p.V.kvco);
    d_jvco = spread (fun p -> p.V.jvco);
    d_ivco = spread (fun p -> p.V.ivco);
    d_fmin = spread (fun p -> p.V.fmin);
    d_fmax = spread (fun p -> p.V.fmax);
    mc_samples = n_ok;
    mc_failures = mc.Mc.failures;
  }

(* flat 19-float entry encoding for run snapshots: design (7 params +
   5 objectives) | 5 deltas | mc_samples | mc_failures *)
let row_of_entry e =
  Array.concat
    [
      Vco_problem.vector_of_design e.design;
      [| e.d_kvco; e.d_jvco; e.d_ivco; e.d_fmin; e.d_fmax |];
      [| float_of_int e.mc_samples; float_of_int e.mc_failures |];
    ]

let entry_of_row row =
  if Array.length row <> 19 then None
  else
    Option.map
      (fun design ->
        {
          design;
          d_kvco = row.(12);
          d_jvco = row.(13);
          d_ivco = row.(14);
          d_fmin = row.(15);
          d_fmax = row.(16);
          mc_samples = int_of_float row.(17);
          mc_failures = int_of_float row.(18);
        })
      (Vco_problem.design_of_vector (Array.sub row 0 12))

let analyse_front ?options ?mc_bulk ?builder ?progress ?(already = [||])
    ?on_entry ?checkpoint ~prng designs =
  let n = Array.length designs in
  let k = min (Array.length already) n in
  let out = Array.make n None in
  (* every design consumes its prng split in index order, including the
     restored prefix, so a resumed run sees the same streams *)
  for i = 0 to n - 1 do
    let prng_i = Repro_util.Prng.split prng in
    if i < k then out.(i) <- Some already.(i)
    else begin
      (match progress with Some f -> f i n | None -> ());
      let design_ck =
        Option.map (fun ck -> (ck, "mc." ^ string_of_int i)) checkpoint
      in
      let e =
        analyse_design ?options ?mc_bulk ?builder ?checkpoint:design_ck
          ~prng:prng_i designs.(i)
      in
      out.(i) <- Some e;
      match on_entry with Some f -> f i e | None -> ()
    end
  done;
  Array.map Option.get out
