(** s-domain analysis of the charge-pump PLL loop: open-loop gain,
    unity-gain bandwidth and phase margin.

    Open loop (type-II, third order):
    G(s) = Icp · Kvco · Z(s) / (N · s), with Kvco in Hz/V — the 2π of the
    phase-detector gain Icp/2π and of the VCO gain 2π·Kvco cancel. *)

type loop = {
  kvco : float;   (** Hz/V *)
  icp : float;    (** A *)
  n_div : int;
  filter : Loop_filter.params;
}

val open_loop_gain : loop -> float -> Complex.t
(** Gain at frequency [f] (Hz). *)

type analysis = {
  unity_freq : float;        (** Hz; loop bandwidth fc *)
  phase_margin_deg : float;
  zero_freq : float;         (** Hz, stabilising zero *)
  pole3_freq : float;        (** Hz, third pole from C2 *)
  stable : bool;             (** phase margin > 0 and zero below fc *)
}

val analyse : loop -> analysis option
(** [None] when no unity-gain crossing exists in [1 Hz, 100 GHz]. *)

val settling_estimate : loop -> tolerance:float -> float option
(** Linear lock-time estimate: ln(1/tolerance) time constants of the
    closed-loop dominant pole (≈ 1 / (2π · fc · damping-ish)); used as a
    cross-check against the behavioural simulation. *)
