(** Piecewise-polynomial interpolation over strictly increasing knots.

    Verilog-A's [$table_model] offers linear ("1"), quadratic ("2") and
    cubic-spline ("3") interpolation; the paper uses cubic splines
    (its equation (3)).  All three are provided here with a shared
    evaluation interface. *)

type method_ =
  | Linear      (** piecewise linear, C0 *)
  | Quadratic   (** piecewise quadratic through knot triples, C0 *)
  | Cubic       (** natural cubic spline, C2 *)

type t

val build : ?method_:method_ -> float array -> float array -> t
(** [build xs ys] fits a spline through [(xs.(i), ys.(i))].
    [xs] must be strictly increasing and have the same length as [ys]
    (at least 2 points; methods degrade gracefully: 2 points always give
    the linear segment).  Default method: [Cubic].
    @raise Invalid_argument on bad input. *)

val eval : t -> float -> float
(** Evaluate inside the knot range; outside, the behaviour is
    extrapolation of the end segment (callers wanting clamping use
    {!Table1d}). *)

val eval_deriv : t -> float -> float
(** First derivative of the interpolant. *)

val knots : t -> float array
val values : t -> float array
val method_of : t -> method_

val coefficients : t -> (float * float * float * float) array
(** Per-segment cubic coefficients [(a, b, c, d)] of
    S_i(x) = a (x-x_i)^3 + b (x-x_i)^2 + c (x-x_i) + d — the paper's
    equation (3) layout. Lower-order methods report zero high-order
    coefficients. *)
