type symbolic = {
  n : int;
  nnz_a : int;
  (* the pattern this symbolic was built from; physically shared with
     every [Sparse.like] copy, so the registry's verification is
     usually a pointer comparison *)
  pat_row_ptr : int array;
  pat_col_idx : int array;
  fp : int;
  perm : int array; (* pivot position -> original row *)
  pinv : int array; (* original row -> pivot position *)
  sign : float; (* permutation parity *)
  (* CSC traversal of A: for column j, entries a_ptr.(j)..a_ptr.(j+1)-1
     give the pivot-space row and the CSR value index of each stamp *)
  a_ptr : int array;
  a_prow : int array;
  a_src : int array;
  (* U columns: strictly-above-diagonal pivot-space rows, ascending
     (ascending is topological because reach patterns are closed) *)
  u_ptr : int array;
  u_rows : int array;
  (* L columns: strictly-below-diagonal pivot-space rows, ascending *)
  l_ptr : int array;
  l_rows : int array;
}

type numeric = {
  sym : symbolic;
  u_vals : float array;
  l_vals : float array;
  udiag : float array;
  x : float array; (* dense scratch, zero between uses *)
}

exception Singular of int

let symbolic num = num.sym
let lu_nnz sym = sym.n + Array.length sym.u_rows + Array.length sym.l_rows

let create_numeric sym =
  {
    sym;
    u_vals = Array.make (Array.length sym.u_rows) 0.0;
    l_vals = Array.make (Array.length sym.l_rows) 0.0;
    udiag = Array.make sym.n 0.0;
    x = Array.make sym.n 0.0;
  }

(* permutation parity by cycle decomposition *)
let parity perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let sign = ref 1.0 in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      let len = ref 0 in
      let i = ref s in
      while not seen.(!i) do
        seen.(!i) <- true;
        incr len;
        i := perm.(!i)
      done;
      if !len land 1 = 0 then sign := -. !sign
    end
  done;
  !sign

(* CSC view of [a]'s pattern: per-column (original row, CSR value
   index) pairs *)
let csc_of a =
  let n = Sparse.n a in
  let row_ptr = Sparse.row_ptr a and col_idx = Sparse.col_idx a in
  let nnz = Sparse.nnz a in
  let a_ptr = Array.make (n + 1) 0 in
  for p = 0 to nnz - 1 do
    a_ptr.(col_idx.(p) + 1) <- a_ptr.(col_idx.(p) + 1) + 1
  done;
  for j = 0 to n - 1 do
    a_ptr.(j + 1) <- a_ptr.(j + 1) + a_ptr.(j)
  done;
  let fill = Array.copy a_ptr in
  let a_row = Array.make nnz 0 in
  let a_src = Array.make nnz 0 in
  for i = 0 to n - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = col_idx.(p) in
      a_row.(fill.(j)) <- i;
      a_src.(fill.(j)) <- p;
      fill.(j) <- fill.(j) + 1
    done
  done;
  (a_ptr, a_row, a_src)

let factorise a =
  let n = Sparse.n a in
  let vals = Sparse.values a in
  let a_ptr, a_row, a_src = csc_of a in
  let pinv = Array.make n (-1) in
  let perm = Array.make n (-1) in
  (* growing factors; L holds original rows until the permutation is
     complete *)
  let u_cols = Array.make n ([] : (int * float) list) in
  let l_cols = Array.make n ([] : (int * float) list) in
  let udiag = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  let visited = Array.make n (-1) in
  let topo = ref [] in
  (* depth-first reach of original row [i] through the columns of L
     factorised so far; reverse post-order = topological order *)
  let rec dfs j i =
    if visited.(i) <> j then begin
      visited.(i) <- j;
      let r = pinv.(i) in
      if r >= 0 then List.iter (fun (i2, _) -> dfs j i2) l_cols.(r);
      topo := i :: !topo
    end
  in
  for j = 0 to n - 1 do
    topo := [];
    let col_max = ref 0.0 in
    for p = a_ptr.(j) to a_ptr.(j + 1) - 1 do
      dfs j a_row.(p)
    done;
    for p = a_ptr.(j) to a_ptr.(j + 1) - 1 do
      let v = vals.(a_src.(p)) in
      x.(a_row.(p)) <- x.(a_row.(p)) +. v;
      let av = Float.abs v in
      if av > !col_max then col_max := av
    done;
    let order = !topo in
    (* sparse triangular solve L y = A(:,j) along the reach *)
    List.iter
      (fun i ->
        let r = pinv.(i) in
        if r >= 0 then begin
          let xi = x.(i) in
          if xi <> 0.0 then
            List.iter
              (fun (i2, lv) -> x.(i2) <- x.(i2) -. (xi *. lv))
              l_cols.(r)
        end)
      order;
    (* partial pivot among not-yet-pivotal rows of the pattern; ties
       break to the smallest original row, mirroring the dense scan *)
    let piv = ref (-1) and best = ref 0.0 in
    List.iter
      (fun i ->
        if pinv.(i) < 0 then begin
          let v = Float.abs x.(i) in
          if v > !best || (v = !best && (!piv < 0 || i < !piv)) then begin
            best := v;
            piv := i
          end
        end)
      order;
    if !piv < 0 || !best < Lu.pivot_threshold ~col_max:!col_max then begin
      List.iter (fun i -> x.(i) <- 0.0) order;
      raise (Singular j)
    end;
    let pr = !piv in
    pinv.(pr) <- j;
    perm.(j) <- pr;
    let pivot = x.(pr) in
    udiag.(j) <- pivot;
    let u = ref [] and l = ref [] in
    List.iter
      (fun i ->
        if i <> pr then begin
          let r = pinv.(i) in
          if r >= 0 && r < j then u := (r, x.(i)) :: !u
          else l := (i, x.(i) /. pivot) :: !l
        end;
        x.(i) <- 0.0)
      order;
    u_cols.(j) <- List.sort (fun (r1, _) (r2, _) -> compare r1 r2) !u;
    l_cols.(j) <- !l
  done;
  (* flatten; L rows remapped to pivot space now that pinv is total *)
  let l_sorted =
    Array.map
      (fun col ->
        List.sort
          (fun (r1, _) (r2, _) -> compare r1 r2)
          (List.map (fun (i, v) -> (pinv.(i), v)) col))
      l_cols
  in
  let flatten cols =
    let ptr = Array.make (n + 1) 0 in
    for j = 0 to n - 1 do
      ptr.(j + 1) <- ptr.(j) + List.length cols.(j)
    done;
    let rows = Array.make ptr.(n) 0 in
    let vs = Array.make ptr.(n) 0.0 in
    for j = 0 to n - 1 do
      List.iteri
        (fun k (r, v) ->
          rows.(ptr.(j) + k) <- r;
          vs.(ptr.(j) + k) <- v)
        cols.(j)
    done;
    (ptr, rows, vs)
  in
  let u_ptr, u_rows, u_vals = flatten u_cols in
  let l_ptr, l_rows, l_vals = flatten l_sorted in
  let a_prow = Array.map (fun i -> pinv.(i)) a_row in
  let sym =
    {
      n;
      nnz_a = Sparse.nnz a;
      pat_row_ptr = Sparse.row_ptr a;
      pat_col_idx = Sparse.col_idx a;
      fp = Sparse.fingerprint a;
      perm;
      pinv;
      sign = parity perm;
      a_ptr;
      a_prow;
      a_src;
      u_ptr;
      u_rows;
      l_ptr;
      l_rows;
    }
  in
  (sym, { sym; u_vals; l_vals; udiag; x = Array.make n 0.0 })

let pattern_matches sym a =
  sym.n = Sparse.n a
  && sym.nnz_a = Sparse.nnz a
  && (sym.pat_row_ptr == Sparse.row_ptr a || sym.pat_row_ptr = Sparse.row_ptr a)
  && (sym.pat_col_idx == Sparse.col_idx a || sym.pat_col_idx = Sparse.col_idx a)

let refactorise num a =
  let sym = num.sym in
  if not (pattern_matches sym a) then
    invalid_arg "Sparse_lu.refactorise: pattern mismatch";
  let n = sym.n in
  let vals = Sparse.values a in
  let x = num.x in
  let a_ptr = sym.a_ptr
  and a_prow = sym.a_prow
  and a_src = sym.a_src
  and u_ptr = sym.u_ptr
  and u_rows = sym.u_rows
  and l_ptr = sym.l_ptr
  and l_rows = sym.l_rows in
  let u_vals = num.u_vals and l_vals = num.l_vals in
  for j = 0 to n - 1 do
    let col_max = ref 0.0 in
    for p = a_ptr.(j) to a_ptr.(j + 1) - 1 do
      let v = Array.unsafe_get vals a_src.(p) in
      let r = a_prow.(p) in
      Array.unsafe_set x r (Array.unsafe_get x r +. v);
      let av = Float.abs v in
      if av > !col_max then col_max := av
    done;
    (* left-looking update along the frozen U pattern; ascending order
       is topological because the symbolic reach sets are closed *)
    for q = u_ptr.(j) to u_ptr.(j + 1) - 1 do
      let k = Array.unsafe_get u_rows q in
      let xk = Array.unsafe_get x k in
      Array.unsafe_set u_vals q xk;
      Array.unsafe_set x k 0.0;
      if xk <> 0.0 then
        for p = l_ptr.(k) to l_ptr.(k + 1) - 1 do
          let i = Array.unsafe_get l_rows p in
          Array.unsafe_set x i
            (Array.unsafe_get x i -. (xk *. Array.unsafe_get l_vals p))
        done
    done;
    let pivot = x.(j) in
    x.(j) <- 0.0;
    if Float.abs pivot < Lu.pivot_threshold ~col_max:!col_max then begin
      (* scrub so the workspace stays reusable after the caller's
         full-factorisation fallback *)
      for p = l_ptr.(j) to l_ptr.(j + 1) - 1 do
        x.(l_rows.(p)) <- 0.0
      done;
      raise (Singular j)
    end;
    num.udiag.(j) <- pivot;
    for p = l_ptr.(j) to l_ptr.(j + 1) - 1 do
      let i = Array.unsafe_get l_rows p in
      Array.unsafe_set l_vals p (Array.unsafe_get x i /. pivot);
      Array.unsafe_set x i 0.0
    done
  done

let solve_into num ~b ~x =
  let sym = num.sym in
  let n = sym.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Sparse_lu.solve_into: size mismatch";
  if b == x then invalid_arg "Sparse_lu.solve_into: b and x must be distinct";
  (* forward: L y = P b (unit diagonal), column-oriented *)
  for j = 0 to n - 1 do
    x.(j) <- b.(sym.perm.(j))
  done;
  for j = 0 to n - 1 do
    let xj = Array.unsafe_get x j in
    if xj <> 0.0 then
      for p = sym.l_ptr.(j) to sym.l_ptr.(j + 1) - 1 do
        let i = Array.unsafe_get sym.l_rows p in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (xj *. Array.unsafe_get num.l_vals p))
      done
  done;
  (* backward: U x = y, column-oriented *)
  for j = n - 1 downto 0 do
    let xj = Array.unsafe_get x j /. num.udiag.(j) in
    Array.unsafe_set x j xj;
    if xj <> 0.0 then
      for q = sym.u_ptr.(j) to sym.u_ptr.(j + 1) - 1 do
        let r = Array.unsafe_get sym.u_rows q in
        Array.unsafe_set x r
          (Array.unsafe_get x r -. (xj *. Array.unsafe_get num.u_vals q))
      done
  done

let solve num b =
  let x = Array.make num.sym.n 0.0 in
  solve_into num ~b ~x;
  x

let det num =
  let acc = ref num.sym.sign in
  Array.iter (fun d -> acc := !acc *. d) num.udiag;
  !acc

(* ---- shared symbolic registry ------------------------------------- *)

let cache : (int, symbolic) Hashtbl.t = Hashtbl.create 16
let cache_fifo : int Queue.t = Queue.create ()
let cache_mutex = Mutex.create ()
let cache_limit = 64
let cache_hits = ref 0
let cache_misses = ref 0

let find_symbolic a =
  Mutex.lock cache_mutex;
  let r =
    match Hashtbl.find_opt cache (Sparse.fingerprint a) with
    | Some sym when pattern_matches sym a ->
      incr cache_hits;
      Some sym
    | Some _ | None ->
      incr cache_misses;
      None
  in
  Mutex.unlock cache_mutex;
  r

let store_symbolic a sym =
  if not (pattern_matches sym a) then
    invalid_arg "Sparse_lu.store_symbolic: symbolic does not match matrix";
  Mutex.lock cache_mutex;
  if not (Hashtbl.mem cache sym.fp) then begin
    if Queue.length cache_fifo >= cache_limit then
      Hashtbl.remove cache (Queue.pop cache_fifo);
    Hashtbl.replace cache sym.fp sym;
    Queue.push sym.fp cache_fifo
  end;
  Mutex.unlock cache_mutex

let cache_stats () =
  Mutex.lock cache_mutex;
  let r = (!cache_hits, !cache_misses) in
  Mutex.unlock cache_mutex;
  r

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Queue.clear cache_fifo;
  cache_hits := 0;
  cache_misses := 0;
  Mutex.unlock cache_mutex
