module Prng = Repro_util.Prng

type options = {
  population : int;
  generations : int;
  archive : int;
  inertia : float;
  c_personal : float;
  c_global : float;
  mutation_prob : float;
  eta_mutation : float;
}

let default_options =
  {
    population = 50;
    generations = 30;
    archive = 50;
    inertia = 0.4;
    c_personal = 1.5;
    c_global = 1.5;
    mutation_prob = 0.0;
    eta_mutation = 20.0;
  }

type state = {
  options : options;
  prng : Prng.t;
  mutable generation : int;
  mutable swarm : Nsga2.individual array;
  mutable velocities : float array array;
  mutable pbest : Nsga2.individual array;
  mutable archive : Nsga2.individual array;
}

let generation st = st.generation

(* the reporting population: the external archive (the front under
   construction) plus the personal bests, so front extraction works even
   before the archive has filled *)
let population st = Array.append st.archive st.pbest

let validate (options : options) =
  if options.population < 2 then
    invalid_arg "Mopso: population must be >= 2";
  if options.archive < 2 then invalid_arg "Mopso: archive must be >= 2";
  if not (options.inertia >= 0.0 && options.inertia < 1.0) then
    invalid_arg "Mopso: inertia must be in [0, 1)";
  if options.c_personal < 0.0 || options.c_global < 0.0 then
    invalid_arg "Mopso: acceleration coefficients must be >= 0"

(* keep the [target] least-crowded members (boundary points carry
   infinite crowding distance, so the extremes always survive) *)
let truncate_archive target arch =
  if Array.length arch <= target then arch
  else begin
    let evals = Nsga2.evaluations arch in
    let idx = Array.init (Array.length arch) Fun.id in
    let d = Pareto.crowding_distance evals idx in
    let order = Array.init (Array.length arch) Fun.id in
    Array.sort
      (fun a b ->
        if d.(a) <> d.(b) then compare d.(b) d.(a) else compare a b)
      order;
    let keep = Array.sub order 0 target in
    Array.sort compare keep;
    Array.map (fun i -> arch.(i)) keep
  end

let update_archive (options : options) arch candidates =
  let front = Nsga2.pareto_front (Array.append arch candidates) in
  truncate_archive options.archive front

let init ?(options = default_options) ?(evaluator = Problem.serial_evaluator)
    problem prng =
  validate options;
  (* positions are drawn serially (PRNG order is part of the
     reproducibility contract); only the pure evaluations are batched *)
  let initial = Array.make options.population [||] in
  for i = 0 to options.population - 1 do
    initial.(i) <- Problem.random_point problem prng
  done;
  let swarm = Nsga2.eval_batch evaluator problem initial in
  let n = Problem.n_vars problem in
  {
    options;
    prng;
    generation = 0;
    swarm;
    velocities = Array.init options.population (fun _ -> Array.make n 0.0);
    pbest = Array.copy swarm;
    archive = update_archive options [||] swarm;
  }

(* binary tournament on crowding distance: leaders come preferentially
   from sparse regions of the archive *)
let pick_leader prng crowd =
  let n = Array.length crowd in
  if n = 1 then 0
  else begin
    let a = Prng.int prng n and b = Prng.int prng n in
    if crowd.(a) > crowd.(b) then a else b
  end

let step ?(evaluator = Problem.serial_evaluator) problem st =
  Repro_obs.Trace.span "mopso.generation"
    ~args:
      [
        ("problem", problem.Problem.name);
        ("generation", string_of_int (st.generation + 1));
      ]
  @@ fun () ->
  let options = st.options and prng = st.prng in
  let np = options.population in
  let n = Problem.n_vars problem in
  let bounds = problem.Problem.bounds in
  let pm =
    if options.mutation_prob > 0.0 then options.mutation_prob
    else 1.0 /. float_of_int n
  in
  let arch = st.archive in
  let crowd =
    if Array.length arch = 0 then [||]
    else
      Pareto.crowding_distance (Nsga2.evaluations arch)
        (Array.init (Array.length arch) Fun.id)
  in
  let moved = Array.make np [||] in
  for i = 0 to np - 1 do
    let leader =
      if Array.length arch = 0 then st.pbest.(i).Nsga2.x
      else arch.(pick_leader prng crowd).Nsga2.x
    in
    let v = st.velocities.(i) in
    let x = st.swarm.(i).Nsga2.x in
    let pb = st.pbest.(i).Nsga2.x in
    let x' = Array.make n 0.0 in
    for j = 0 to n - 1 do
      let r1 = Prng.float prng 1.0 and r2 = Prng.float prng 1.0 in
      v.(j) <-
        (options.inertia *. v.(j))
        +. (options.c_personal *. r1 *. (pb.(j) -. x.(j)))
        +. (options.c_global *. r2 *. (leader.(j) -. x.(j)));
      let lo, hi = bounds.(j) in
      let xj = x.(j) +. v.(j) in
      (* clamp to the box and reverse the velocity component so the
         particle flies back in (Coello et al. 2004) *)
      if xj < lo then begin
        x'.(j) <- lo;
        v.(j) <- -.v.(j)
      end
      else if xj > hi then begin
        x'.(j) <- hi;
        v.(j) <- -.v.(j)
      end
      else x'.(j) <- xj
    done;
    (* turbulence: polynomial mutation keeps the swarm exploring *)
    Variation.mutate_in_place prng ~bounds ~mutation_prob:pm
      ~eta_mutation:options.eta_mutation x';
    moved.(i) <- x'
  done;
  let evaluated = Nsga2.eval_batch evaluator problem moved in
  (* personal bests: dominance update, random winner when incomparable.
     These draws come after the batch, but the batch is bit-identical
     for any worker count, so the sequence is still deterministic. *)
  for i = 0 to np - 1 do
    match
      Pareto.compare_dominance evaluated.(i).Nsga2.evaluation
        st.pbest.(i).Nsga2.evaluation
    with
    | Pareto.Dominates -> st.pbest.(i) <- evaluated.(i)
    | Pareto.Dominated -> ()
    | Pareto.Incomparable ->
      if Prng.float prng 1.0 < 0.5 then st.pbest.(i) <- evaluated.(i)
  done;
  st.swarm <- evaluated;
  st.archive <- update_archive options st.archive evaluated;
  st.generation <- st.generation + 1

let optimise ?options ?evaluator ?on_generation problem prng =
  let st = init ?options ?evaluator problem prng in
  (match on_generation with Some f -> f 0 (population st) | None -> ());
  while st.generation < st.options.generations do
    step ?evaluator problem st;
    match on_generation with
    | Some f -> f st.generation (population st)
    | None -> ()
  done;
  population st

module Snapshot = Repro_engine.Snapshot

let save_state st snap ~key =
  Snapshot.set_int snap (key ^ ".generation") st.generation;
  Snapshot.set_bits snap (key ^ ".prng") (Prng.to_bits st.prng);
  Snapshot.set_rows snap (key ^ ".swarm")
    (Array.map Nsga2.encode_individual st.swarm);
  Snapshot.set_rows snap (key ^ ".velocity") st.velocities;
  Snapshot.set_rows snap (key ^ ".pbest")
    (Array.map Nsga2.encode_individual st.pbest);
  Snapshot.set_rows snap (key ^ ".archive")
    (Array.map Nsga2.encode_individual st.archive)

let clear_state snap ~key =
  Snapshot.remove snap (key ^ ".generation");
  Snapshot.remove snap (key ^ ".prng");
  Snapshot.remove snap (key ^ ".swarm");
  Snapshot.remove snap (key ^ ".velocity");
  Snapshot.remove snap (key ^ ".pbest");
  Snapshot.remove snap (key ^ ".archive")

let restore_state ~options problem snap ~key =
  match
    ( Snapshot.get_int snap (key ^ ".generation"),
      Snapshot.get_bits snap (key ^ ".prng"),
      Snapshot.get_rows snap (key ^ ".swarm"),
      Snapshot.get_rows snap (key ^ ".velocity"),
      Snapshot.get_rows snap (key ^ ".pbest"),
      Snapshot.get_rows snap (key ^ ".archive") )
  with
  | ( Some generation,
      Some bits,
      Some swarm_rows,
      Some velocities,
      Some pbest_rows,
      Some archive_rows ) -> (
    match Prng.of_bits bits with
    | None -> None
    | Some prng ->
      let n_vars = Problem.n_vars problem in
      let decode rows = Array.map (Nsga2.decode_individual ~n_vars) rows in
      let swarm = decode swarm_rows in
      let pbest = decode pbest_rows in
      let archive = decode archive_rows in
      let bad inds = Array.exists Option.is_none inds in
      if
        generation < 0
        || generation > options.generations
        || Array.length swarm <> options.population
        || Array.length pbest <> options.population
        || Array.length velocities <> options.population
        || Array.exists (fun v -> Array.length v <> n_vars) velocities
        || Array.length archive > options.archive
        || bad swarm || bad pbest || bad archive
      then None
      else
        Some
          {
            options;
            prng;
            generation;
            swarm = Array.map Option.get swarm;
            velocities = Array.map Array.copy velocities;
            pbest = Array.map Option.get pbest;
            archive = Array.map Option.get archive;
          })
  | _ -> None
