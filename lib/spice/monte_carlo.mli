(** Monte-Carlo analysis over process variation — the paper's §3.3 /
    §4.3 step: run N perturbed-netlist trials of a measurement and report
    per-performance spreads. *)

type 'a trial = Repro_circuit.Netlist.t -> ('a, string) result
(** A measurement over one (already perturbed) netlist instance. *)

type 'a run_result = {
  samples : 'a array;      (** successful trials *)
  failures : int;          (** trials whose measurement failed *)
  seeds_used : int;        (** total trials attempted *)
}

type 'a codec = {
  encode : 'a -> float array;
  decode : float array -> 'a;  (** may raise on a malformed row *)
}
(** Lossless flat-float serialisation of a sample, for checkpointing. *)

val run :
  ?spec:Repro_circuit.Process.spec ->
  ?pool:Repro_engine.Pool.t ->
  ?warn_threshold:float ->
  ?checkpoint:Repro_engine.Checkpoint.t * string * 'a codec ->
  ?bulk:(Repro_util.Prng.t array -> ('a, string) result array) ->
  n:int ->
  prng:Repro_util.Prng.t ->
  Repro_circuit.Netlist.t ->
  'a trial ->
  'a run_result
(** [run ~n ~prng net trial] draws [n] process instances of [net] (each
    from an independent PRNG split) and collects the successful
    measurements.

    Trials execute in parallel over [pool] (default: the shared engine
    pool, sized by [-j] / [HIEROPT_JOBS]); streams are pre-split per
    trial so the result is bit-identical for any worker count.  Trial
    and failure counts are reported to {!Repro_engine.Telemetry}
    ([mc.trials] / [mc.failures] / [mc.wall]), and when the failure
    fraction exceeds [warn_threshold] (default 0.5) a loud
    [mc.degenerate_runs] warning is emitted so a degenerate corner
    cannot masquerade as a valid spread.

    [checkpoint:(ck, key, codec)] persists the completed-sample prefix
    under [key] in [ck]'s snapshot (flushed every
    {!Repro_engine.Checkpoint.every} samples) and resumes from it on
    restart, skipping the already-completed trials.  Per-trial streams
    are index-stable, so the checkpointed, resumed and plain paths all
    produce bit-identical results.  May raise
    {!Repro_engine.Checkpoint.Interrupted} at a sample boundary.

    [bulk] replaces the local parallel map with a caller-supplied bulk
    evaluator over the pre-split per-trial streams (the distributed
    farm hook).  It must return one outcome per stream, in order, and
    be semantically identical to running [trial (Process.sample spec
    stream net)] per stream; checkpointing composes with it unchanged,
    which is what makes a worker failure resumable from the
    completed-sample prefix. *)

type spread = {
  nominal : float;      (** measurement of the unperturbed netlist *)
  mc_mean : float;
  mc_std : float;
  rel_spread : float;   (** mc_std / |mc_mean| — the paper's ∆ columns *)
  n_samples : int;
}

val spread_of_samples : nominal:float -> float array -> spread
(** @raise Invalid_argument on an empty sample array. *)

val pp_spread : Format.formatter -> spread -> unit
