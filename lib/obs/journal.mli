(** Append-only JSONL run journal.

    One line per event, each a flat JSON object with at least
    [{"ts": unix-seconds, "run": id, "event": name}].  Lines are
    written with a single [output_string] under a mutex and flushed
    immediately, so concurrent writers never tear a line and a killed
    run keeps everything it logged.  The journal lives at
    [dir/run.journal] and is append-only across runs — [hieropt
    report] groups lines by run id.

    A process-global "current" journal lets low-level libraries
    (Telemetry warnings, checkpoint flushes) record structured events
    without threading a handle through every call: the [record_*]
    helpers are no-ops when no journal is current. *)

type t

val default_file : string
(** ["run.journal"]. *)

val create : ?run_id:string -> dir:string -> unit -> t
(** Open (append) [dir/run.journal], creating [dir] when missing.  The
    default run id is timestamp+pid based — the journal is diagnostic
    output, deliberately outside the byte-identical artefact set. *)

val close : t -> unit
val path : t -> string
val run_id : t -> string

val event : t -> string -> (string * Jfmt.value) list -> unit
(** Append one event line with extra fields. *)

(** {2 Process-current journal} *)

val set_current : t -> unit
val clear_current : unit -> unit
val active : unit -> bool

(** {2 Typed events} *)

val run_start : t -> fingerprint:string -> (string * Jfmt.value) list -> unit

val run_finish : t -> seconds:float -> (string * Jfmt.value) list -> unit
(** The extra fields carry run-level summary numbers (e.g. the
    avoided/paid/cached evaluation split) into the finish event, where
    [hieropt report] renders them. *)

(* the [record_*] family writes to the current journal, or nowhere *)

val record_phase_start : string -> unit
val record_phase_finish : string -> seconds:float -> unit

val record_ga_generation :
  label:string ->
  generation:int ->
  front_size:int ->
  spread:float ->
  hypervolume:float ->
  unit

val record_evals : label:string -> avoided:int -> paid:int -> unit
(** Surrogate pre-screen outcome of one GA run: how many exact
    evaluations were avoided vs paid under [label]. *)

val record_checkpoint : action:string -> path:string -> unit
val record_warning : key:string -> string -> unit
