module PT = Hieropt.Perf_table
module VM = Hieropt.Variation_model
module VP = Hieropt.Vco_problem
module T = Repro_circuit.Topologies
module V = Repro_spice.Vco_measure

(* shortest decimal representation that round-trips exactly: the .param
   cards must re-parse to the very floats the table holds *)
let repr x =
  let try_fmt fmt =
    let s = Printf.sprintf fmt x in
    if float_of_string s = x then Some s else None
  in
  match try_fmt "%.15g" with
  | Some s -> s
  | None -> (
    match try_fmt "%.16g" with
    | Some s -> s
    | None -> Printf.sprintf "%.17g" x)

let median_entry table =
  let entries = PT.entries table in
  entries.((Array.length entries - 1) / 2)

let header_rows buf ~lead table =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (lead ^ s ^ "\n")) fmt in
  line "Pareto front with variation spreads (sigma/mu), %d entries:"
    (PT.size table);
  line "kvco ivco jvco fmin fmax d_kvco d_jvco d_ivco d_fmin d_fmax";
  Array.iter
    (fun (e : VM.entry) ->
      let p = e.VM.design.VP.perf in
      line "%s %s %s %s %s %s %s %s %s %s" (repr p.V.kvco) (repr p.V.ivco)
        (repr p.V.jvco) (repr p.V.fmin) (repr p.V.fmax) (repr e.VM.d_kvco)
        (repr e.VM.d_jvco) (repr e.VM.d_ivco) (repr e.VM.d_fmin)
        (repr e.VM.d_fmax))
    (PT.entries table)

let spice ?stages ?vdd ?vctl table =
  let d = V.default_options in
  let stages = Option.value stages ~default:d.V.stages in
  let vdd = Option.value vdd ~default:d.V.vdd in
  let vctl = Option.value vctl ~default:d.V.vctl_lo in
  let entry = median_entry table in
  let p = entry.VM.design.VP.params in
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "* hieropt VCO model export: median Pareto sizing as a subcircuit";
  line "* (re-parses into the current-starved ring of DESIGN.md / Figure 6)";
  header_rows buf ~lead:"* " table;
  line "* selected entry: %d of %d (median along the front)"
    (((PT.size table - 1) / 2) + 1)
    (PT.size table);
  List.iter
    (fun (n, v) -> line ".param %s = %s" n (repr v))
    [ ("wn", p.T.wn); ("ln", p.T.ln); ("wp", p.T.wp); ("lp", p.T.lp);
      ("wcn", p.T.wcn); ("wcp", p.T.wcp); ("lc", p.T.lc) ];
  line ".subckt hieropt_vco vdd vctl s1";
  line "Vdd vdd 0 DC %s" (repr vdd);
  line "Vctl vctl 0 DC %s" (repr vctl);
  line "mbn vbp vctl 0 nmos_012 W={wcn} L={lc}";
  line "mbp vbp vbp vdd pmos_012 W={wcp} L={lc}";
  for i = 1 to stages do
    let input = if i = 1 then Printf.sprintf "s%d" stages
      else Printf.sprintf "s%d" (i - 1)
    in
    line "mcp%d sp%d vbp vdd pmos_012 W={wcp} L={lc}" i i;
    line "mp%d s%d %s sp%d pmos_012 W={wp} L={lp}" i i input i;
    line "mn%d s%d %s sn%d nmos_012 W={wn} L={ln}" i i input i;
    line "mcn%d sn%d vctl 0 nmos_012 W={wcn} L={lc}" i i
  done;
  line ".ends hieropt_vco";
  line ".end";
  Buffer.contents buf

let verilog_a ?(vctl_lo = V.default_options.V.vctl_lo) table =
  let entry = median_entry table in
  let mid = entry.VM.design.VP.perf in
  let kvco_lo, kvco_hi = PT.kvco_range table in
  let ivco_lo, ivco_hi = PT.ivco_range table in
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "// hieropt VCO combined performance + variation model";
  line "// (paper Listings 1-2; \"3E\" = cubic spline, no extrapolation)";
  line "// table files are the model directory written by Perf_table.save";
  header_rows buf ~lead:"// " table;
  line "";
  line "`include \"constants.vams\"";
  line "`include \"disciplines.vams\"";
  line "";
  line "module hieropt_vco(vctl, out);";
  line "  inout vctl, out;";
  line "  electrical vctl, out;";
  line "  // operating point on the Pareto surface (design variables of";
  line "  // the system-level optimisation)";
  line "  parameter real kvco = %s from [%s:%s];" (repr mid.V.kvco)
    (repr kvco_lo) (repr kvco_hi);
  line "  parameter real ivco = %s from [%s:%s];" (repr mid.V.ivco)
    (repr ivco_lo) (repr ivco_hi);
  line "";
  line "  real jvco, fmin, fmax, freq;";
  line "  real kvco_var, ivco_var, jvco_var, fmin_var, fmax_var;";
  line "  real kvco_min, kvco_max, ivco_min, ivco_max, jvco_min, jvco_max;";
  line "  real p1, p2, p3, p4, p5, p6, p7;";
  line "";
  line "  analog begin";
  line "    @(initial_step) begin";
  line "      // Listing 2: nominal performance surfaces over (kvco, ivco)";
  line "      jvco = $table_model(kvco, ivco, \"data.tbl\", \"3E,3E\");";
  line "      fmin = $table_model(kvco, ivco, \"fmin_data.tbl\", \"3E,3E\");";
  line "      fmax = $table_model(kvco, ivco, \"fmax_data.tbl\", \"3E,3E\");";
  line "      // Listing 1: relative spreads and min/max bracketing";
  line "      kvco_var = $table_model(kvco, \"kvco_delta.tbl\", \"3E\");";
  line "      ivco_var = $table_model(ivco, \"ivco_delta.tbl\", \"3E\");";
  line "      jvco_var = $table_model(jvco, \"jvco_delta.tbl\", \"3E\");";
  line "      fmin_var = $table_model(fmin, \"fmin_delta.tbl\", \"3E\");";
  line "      fmax_var = $table_model(fmax, \"fmax_delta.tbl\", \"3E\");";
  line "      kvco_min = kvco - kvco_var * kvco;";
  line "      kvco_max = kvco + kvco_var * kvco;";
  line "      ivco_min = ivco - ivco_var * ivco;";
  line "      ivco_max = ivco + ivco_var * ivco;";
  line "      jvco_min = jvco - jvco_var * jvco;";
  line "      jvco_max = jvco + jvco_var * jvco;";
  line "      // Listing 1: bottom-up recovery of the transistor sizing";
  line
    "      p1 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p1_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p2 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p2_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p3 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p3_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p4 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p4_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p5 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p5_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p6 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p6_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line
    "      p7 = $table_model(kvco, ivco, jvco, fmin, fmax, \"p7_data.tbl\", \
     \"3E,3E,3E,3E,3E\");";
  line "    end";
  line "    // behavioural oscillator: frequency follows V(vctl) at the";
  line "    // interpolated gain, clamped to the interpolated band";
  line "    freq = fmin + kvco * (V(vctl) - %s);" (repr vctl_lo);
  line "    if (freq < fmin) freq = fmin;";
  line "    if (freq > fmax) freq = fmax;";
  line "    V(out) <+ sin(2.0 * `M_PI * idt(freq));";
  line "  end";
  line "endmodule";
  Buffer.contents buf
