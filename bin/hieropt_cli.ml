(* hieropt — command-line driver for the hierarchical performance and
   variation flow.

   Sub-commands:
     simulate      parse a SPICE-like deck, run DC + transient, report
     characterise  measure a ring-VCO sizing (the paper's testbench)
     flow          run the full hierarchical flow (Figure 4)
     system        re-run the system level over a saved table model
     yield         Monte-Carlo a design point from a saved table model
     export        render a saved table model as Verilog-A or SPICE
     serve         serve saved table models over HTTP
     query         query a table model (local dir or running server)
     worker        run a distributed eval-worker (for flow/system --workers)
     report        summarise a run journal (and optionally a trace)

   Exit codes: 0 success; 1 generic failure; 3 circuit solver error;
   4 invalid/unloadable table model; 5 model-server error (bind,
   unreachable, bad response); 6 netlist parse/elaboration error;
   130 interrupted. *)

open Cmdliner

let version = "1.0.0"

let exit_solver = 3
let exit_model = 4
let exit_serve = 5
let exit_netlist = 6

let die code fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "%s@." msg;
      exit code)
    fmt

(* every netlist front-end entry point funnels through here so a bad
   deck always exits 6 with a file:line:col diagnostic *)
let with_netlist_errors f =
  try f ()
  with
  | Repro_netlist.Loc.Netlist_error _ as e ->
    die exit_netlist "%s" (Repro_netlist.Loc.error_to_string e)
  | Sys_error msg -> die exit_netlist "%s" msg

let load_model dir =
  match Hieropt.Perf_table.load ~dir with
  | model -> model
  | exception Hieropt.Perf_table.Invalid_table_file
      { path; expected_columns; found_columns } ->
    die exit_model "invalid table model: %s has %d columns, expected %d" path
      found_columns expected_columns
  | exception Sys_error msg -> die exit_model "cannot load table model: %s" msg
  | exception Failure msg -> die exit_model "cannot load table model: %s" msg

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chattier progress output.")

let seed_t =
  Arg.(
    value
    & opt int 2009
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (flows are deterministic).")

let full_t =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Use the paper-scale workload (100x30 circuit GA, 100 MC \
           samples/point, 500 yield samples) instead of the fast bench \
           scale.  Equivalent to HIEROPT_FULL=1 or --scale paper.")

let scale_t =
  Arg.(
    value
    & opt (some (enum [ ("tiny", `Tiny); ("bench", `Bench); ("paper", `Paper) ]))
        None
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Workload scale: $(b,tiny) (seconds; also narrows the spec to \
           the smoke-test band), $(b,bench) (minutes) or $(b,paper) (the \
           paper's settings).  Overrides --full.")

(* --scale wins over --full; tiny swaps in the smoke-test spec too *)
let resolve_scale full scale =
  match scale with
  | Some `Tiny -> (Hieropt.Hierarchy.tiny_scale, Some Hieropt.Hierarchy.tiny_spec)
  | Some `Bench -> (Hieropt.Hierarchy.bench_scale, None)
  | Some `Paper -> (Hieropt.Hierarchy.paper_scale, None)
  | None ->
    ( (if full then Hieropt.Hierarchy.paper_scale
       else Hieropt.Hierarchy.scale_of_env ()),
      None )

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel evaluation engine.  Defaults \
           to HIEROPT_JOBS, or the machine's recommended domain count.  \
           Results are bit-identical for any worker count; -j 1 forces \
           fully serial evaluation.")

let setup_jobs jobs = Option.iter Repro_engine.Config.set_jobs jobs

let solver_t =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("dense", Repro_engine.Config.Dense);
                ("sparse", Repro_engine.Config.Sparse);
                ("auto", Repro_engine.Config.Auto);
              ]))
        None
    & info [ "solver" ] ~docv:"KIND"
        ~doc:
          "Linear solver for the MNA Newton kernels: $(b,dense), \
           $(b,sparse) (symbolic factorisation reused across \
           iterations/timesteps/samples) or $(b,auto) (sparse above a \
           small-n threshold).  Defaults to HIEROPT_SOLVER, else auto.")

let setup_solver solver = Repro_engine.Config.set_solver solver

(* ---- optimiser-portfolio flags ---- *)

let optimiser_t =
  let choices =
    List.map (fun n -> (n, n)) Repro_moo.Optimiser.names
  in
  Arg.(
    value
    & opt (enum choices) "nsga2"
    & info [ "optimiser" ] ~docv:"ALGO"
        ~doc:
          "Portfolio member running both GA levels: $(b,nsga2), \
           $(b,spea2), $(b,de) (differential evolution with \
           Pareto-domination selection) or $(b,mopso) (multi-objective \
           particle swarm).  All four share the evaluation engine, \
           checkpointing and telemetry; the choice is salted into eval \
           cache keys and snapshot fingerprints, so switching never \
           aliases a previous run's artefacts.")

let surrogate_t =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) false
    & info [ "surrogate" ] ~docv:"on|off"
        ~doc:
          "Surrogate pre-screening: fit RBF models to the evaluated \
           archive each generation and skip exact evaluation of \
           candidates predicted (with a guard band) to be dominated by \
           the current front.  Avoided/paid counts land in telemetry, \
           the run journal and $(b,hieropt report).  Salted into cache \
           keys and snapshot fingerprints like --optimiser.")

(* ---- run-lifecycle flags ---- *)

let checkpoint_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot run state into the model directory every $(docv) GA \
           generations / Monte-Carlo chunks (and at every phase \
           boundary).  Snapshots are written atomically; Ctrl-C flushes \
           a final snapshot and exits cleanly (a second Ctrl-C kills \
           immediately).")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the model directory's snapshot.  A missing, \
           corrupt or configuration-mismatched snapshot warns and \
           restarts cold.  An interrupted-then-resumed run produces \
           byte-identical artefacts to an uninterrupted one.")

let interrupt_after_t =
  let phases =
    List.map
      (fun p -> (Hieropt.Hierarchy.phase_name p, p))
      Hieropt.Hierarchy.[ Circuit_ga; Variation; Model; System_ga ]
  in
  Arg.(
    value
    & opt (some (enum phases)) None
    & info [ "interrupt-after" ] ~docv:"PHASE"
        ~doc:
          "Testing hook: flush the snapshot and stop (exit 130) once \
           $(docv) completes, as an external interrupt at that boundary \
           would.")

let exit_interrupted () =
  Fmt.epr "interrupted — snapshot flushed; re-run with --resume to continue@.";
  exit 130

let with_lifecycle ~checkpoint_every f =
  if checkpoint_every <> None then
    Repro_engine.Checkpoint.install_signal_handler ();
  try f () with Repro_engine.Checkpoint.Interrupted -> exit_interrupted ()

(* ---- tracing ---- *)

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span timeline of the run and write it to $(docv) as \
           Chrome trace_event JSON on exit (load in chrome://tracing or \
           Perfetto).  Tracing is zero-perturbation: results and \
           artefacts are byte-identical with or without it.")

(* sits INSIDE with_lifecycle so the trace is exported (via the
   Fun.protect finaliser) even when Checkpoint.Interrupted unwinds the
   run before with_lifecycle turns it into exit 130.

   GC capture is always on for CLI traces (quick_stat deltas on span
   ends feed report --profile's allocation attribution), and the whole
   run sits under a root "run" span so the self-time table telescopes
   to exactly the traced wall time. *)
let with_trace ?label trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Repro_obs.Trace.start ~gc:true ();
    Option.iter Repro_obs.Trace.set_process_label label;
    Fun.protect
      ~finally:(fun () ->
        Repro_obs.Trace.stop ();
        match Repro_obs.Trace.export path with
        | n -> Fmt.epr "trace: %d events written to %s@." n path
        | exception Sys_error msg ->
          Fmt.epr "trace: cannot write %s: %s@." path msg)
      (fun () -> Repro_obs.Trace.span "run" f)

(* ---- simulate ---- *)

let simulate_cmd =
  let deck_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DECK" ~doc:"SPICE-like netlist file.")
  in
  let tstop_t =
    Arg.(
      value
      & opt string "10n"
      & info [ "t-stop" ] ~docv:"TIME" ~doc:"Transient length (SPICE units).")
  in
  let dt_t =
    Arg.(
      value
      & opt string "10p"
      & info [ "dt" ] ~docv:"TIME" ~doc:"Transient step (SPICE units).")
  in
  let node_t =
    Arg.(
      value
      & opt_all string []
      & info [ "probe" ] ~docv:"NODE" ~doc:"Node(s) to report (repeatable).")
  in
  let run deck tstop dt probes solver verbose =
    setup_logging verbose;
    setup_solver solver;
    let net =
      with_netlist_errors (fun () -> Repro_netlist.Elab.netlist_of_file deck)
    in
    let cm = Repro_spice.Mna.compile net in
    let dc =
      match Repro_spice.Dcop.solve_result cm with
      | Ok dc -> dc
      | Error e ->
        Fmt.epr "DC operating point failed: %s@."
          (Repro_spice.Solver_error.to_string e);
        exit exit_solver
    in
    Fmt.pr "DC operating point (%s, %d iterations, %s solver)@."
      dc.Repro_spice.Dcop.strategy dc.Repro_spice.Dcop.iterations
      dc.Repro_spice.Dcop.solver;
    let t_stop = Repro_util.Si.parse tstop and dt = Repro_util.Si.parse dt in
    let res =
      match
        Repro_spice.Transient.run_result cm
          (Repro_spice.Transient.default_options ~t_stop ~dt)
      with
      | Ok res -> res
      | Error e ->
        Fmt.epr "transient failed: %s@." (Repro_spice.Solver_error.to_string e);
        exit exit_solver
    in
    let probes =
      if probes <> [] then probes
      else
        (* default: every named non-ground node *)
        List.init (Repro_circuit.Netlist.node_count net - 1) (fun i ->
            Repro_circuit.Netlist.node_name net (i + 1))
    in
    List.iter
      (fun node ->
        let w = Repro_spice.Transient.node_wave res node in
        Fmt.pr "v(%s): dc=%.4f V, mean=%.4f V, ptp=%.4f V%a@." node
          (Repro_spice.Dcop.node_voltage cm dc node)
          (Repro_spice.Waveform.mean w)
          (Repro_spice.Waveform.peak_to_peak w)
          (fun ppf w ->
            match Repro_spice.Waveform.frequency w ~level:(Repro_spice.Waveform.mean w) with
            | Some f -> Fmt.pf ppf ", f=%s" (Repro_util.Si.format_unit f "Hz")
            | None -> ())
          w)
      probes
  in
  let info =
    Cmd.info "simulate" ~doc:"Simulate a SPICE-like deck (DC + transient)."
  in
  Cmd.v info
    Term.(const run $ deck_t $ tstop_t $ dt_t $ node_t $ solver_t $ verbose_t)

(* ---- characterise ---- *)

let characterise_cmd =
  let params_t =
    let doc =
      "The 7 designable parameters wn,ln,wp,lp,wcn,wcp,lc with SPICE \
       suffixes, e.g. '20u,0.2u,40u,0.2u,30u,60u,0.24u'."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "sizing" ] ~docv:"W/L LIST" ~doc)
  in
  let run sizing solver verbose =
    setup_logging verbose;
    setup_solver solver;
    let params =
      match sizing with
      | None -> Repro_circuit.Topologies.vco_default
      | Some s ->
        let fields = String.split_on_char ',' s in
        if List.length fields <> 7 then
          failwith "need exactly 7 comma-separated values";
        Repro_circuit.Topologies.vco_params_of_vector
          (Array.of_list (List.map Repro_util.Si.parse fields))
    in
    match Repro_spice.Vco_measure.characterise params with
    | Ok perf -> Fmt.pr "%a@." Repro_spice.Vco_measure.pp_performance perf
    | Error f ->
      Fmt.epr "characterisation failed: %s@."
        (Repro_spice.Vco_measure.failure_to_string f);
      exit exit_solver
  in
  let info =
    Cmd.info "characterise"
      ~doc:"Measure a ring-VCO sizing at transistor level (kvco, ivco, jvco, fmin, fmax)."
  in
  Cmd.v info Term.(const run $ params_t $ solver_t $ verbose_t)

(* ---- flow ---- *)

let model_dir_t =
  Arg.(
    value
    & opt string "hieropt_model"
    & info [ "model-dir" ] ~docv:"DIR" ~doc:"Where the .tbl table model lives.")

let netlist_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "netlist" ] ~docv:"DECK"
        ~doc:
          "Optimise the circuit described by $(docv) — a SPICE-like deck \
           whose designable parameters carry $(b,.param name = {range lo \
           hi}) templates — instead of the built-in ring-VCO builder.  A \
           deck that elaborates to exactly the built-in topology and \
           bounds is canonicalised onto the builder, so its artefacts, \
           cache keys and snapshots are byte-identical to a run without \
           this flag.")

(* A --netlist deck replaces the built-in circuit builder.  When the
   deck is provably the built-in ring VCO (same parameter vector, same
   bounds, and structurally identical netlists at the midpoint and both
   design-space corners) we canonicalise to [circuit = None]: the run is
   then indistinguishable — salt, fingerprint, cache keys, artefacts —
   from one that never passed --netlist.  Anything else becomes a
   [Hierarchy.circuit] tagged with the template fingerprint, which
   perturbs the salt exactly when the circuit actually differs. *)
let circuit_of_netlist ~measure path =
  with_netlist_errors @@ fun () ->
  let module T = Repro_circuit.Topologies in
  let module V = Repro_spice.Vco_measure in
  let t = Repro_netlist.Elab.template_of_file path in
  let builtin_equivalent =
    t.Repro_netlist.Elab.param_names = T.vco_param_names
    && t.Repro_netlist.Elab.bounds = T.vco_bounds
    &&
    let same x =
      Repro_netlist.Elab.same_netlist
        (t.Repro_netlist.Elab.instantiate x)
        (T.ring_vco ~stages:measure.V.stages ~vdd:measure.V.vdd
           ~vctl:measure.V.vctl_lo
           (T.vco_params_of_vector x))
    in
    List.for_all same
      [
        t.Repro_netlist.Elab.default;
        Array.map fst t.Repro_netlist.Elab.bounds;
        Array.map snd t.Repro_netlist.Elab.bounds;
      ]
  in
  if builtin_equivalent then None
  else begin
    let n = Array.length t.Repro_netlist.Elab.param_names in
    if n <> Array.length T.vco_param_names then
      die exit_netlist
        "%s: the flow sizes %d designable parameters, but the deck \
         declares %d {range} template(s)"
        path
        (Array.length T.vco_param_names)
        n;
    Some
      {
        Hieropt.Hierarchy.tag = t.Repro_netlist.Elab.fingerprint;
        bounds = t.Repro_netlist.Elab.bounds;
        build =
          (fun p ->
            t.Repro_netlist.Elab.instantiate (T.vco_vector_of_params p));
      }
  end

(* ---- distributed evaluation ---- *)

let workers_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "workers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Distribute evaluation batches over running $(b,hieropt \
           worker) instances (comma-separated endpoints).  Workers must \
           be started with the same scale/spec/solver options (checked \
           via the config salt).  Results are byte-identical to a local \
           run for any worker count; a worker dying mid-run only costs \
           re-evaluating its last chunk.")

let remote_of_workers ?model_hash ~cfg workers =
  match workers with
  | None -> None
  | Some spec ->
    let endpoints =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if endpoints = [] then None
    else begin
      let salt = Hieropt.Hierarchy.config_salt cfg in
      match
        Repro_dist.Coordinator.create ?model_hash ~salt ~endpoints ()
      with
      | Error msg -> die exit_serve "--workers: %s" msg
      | Ok c ->
        if Repro_dist.Coordinator.live_workers c = 0 then
          Fmt.epr
            "warning: no eval worker reachable; evaluating locally@.";
        Some (Repro_dist.Coordinator.remote c)
    end

let flow_cmd =
  let ablation_t =
    Arg.(
      value & flag
      & info [ "nominal-only" ]
          ~doc:
            "Ignore the variation model during system-level optimisation \
             (the method of the paper's reference [10]); for the ablation \
             comparison.")
  in
  let run seed full scale jobs solver nominal_only optimiser surrogate netlist
      model_dir workers checkpoint_every resume interrupt_after trace verbose =
    setup_logging verbose;
    setup_jobs jobs;
    setup_solver solver;
    let scale, spec = resolve_scale full scale in
    let make ?circuit () =
      Hieropt.Hierarchy.make_config ~seed ~scale ?spec
        ~use_variation:(not nominal_only) ~optimiser ~surrogate ~model_dir
        ?checkpoint_every ~resume ?circuit ()
    in
    let cfg = make () in
    let cfg =
      match netlist with
      | None -> cfg
      | Some path -> (
        match
          circuit_of_netlist ~measure:cfg.Hieropt.Hierarchy.measure path
        with
        | None -> cfg
        | Some _ as circuit -> make ?circuit ())
    in
    (* the flow builds its table model mid-run in memory, so only the
       circuit GA and Monte-Carlo batches distribute; system-level
       evaluation stays local (no shared model to check against) *)
    let remote = remote_of_workers ~cfg workers in
    with_lifecycle ~checkpoint_every @@ fun () ->
    with_trace ~label:"coordinator" trace @@ fun () ->
    let result =
      Hieropt.Hierarchy.run
        ~progress:(fun s -> Fmt.pr "[flow] %s@." s)
        ?remote ?interrupt_after cfg
    in
    Fmt.pr "@.%s@." (Hieropt.Experiments.fig7_front result.Hieropt.Hierarchy.front);
    Fmt.pr "%s@." (Hieropt.Experiments.table1 result.Hieropt.Hierarchy.entries);
    Fmt.pr "%s@."
      (Hieropt.Experiments.table2 ?selected:result.Hieropt.Hierarchy.selected
         result.Hieropt.Hierarchy.rows);
    (match result.Hieropt.Hierarchy.selected with
    | Some row ->
      Fmt.pr "%s@."
        (Hieropt.Experiments.fig8_locking result.Hieropt.Hierarchy.pll_config row)
    | None -> Fmt.pr "no design met the specification@.");
    (match result.Hieropt.Hierarchy.yield with
    | Some y ->
      Fmt.pr "%s@."
        (Hieropt.Experiments.yield_report y
           ~verification:result.Hieropt.Hierarchy.verification)
    | None -> ());
    Fmt.pr "%s@." (Repro_engine.Telemetry.line ())
  in
  let info =
    Cmd.info "flow"
      ~doc:"Run the complete hierarchical flow (Figure 4 of the paper)."
  in
  Cmd.v info
    Term.(
      const run $ seed_t $ full_t $ scale_t $ jobs_t $ solver_t $ ablation_t
      $ optimiser_t $ surrogate_t $ netlist_t $ model_dir_t $ workers_t
      $ checkpoint_every_t $ resume_t $ interrupt_after_t $ trace_t
      $ verbose_t)

(* ---- system ---- *)

let remote_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"HOST:PORT[/MODEL]"
        ~doc:
          "Evaluate candidates against a running $(b,hieropt serve) \
           instance instead of the in-process table (MODEL defaults to \
           $(b,default)).  The server runs the same interpolation code \
           and floats cross the wire losslessly, so results are \
           bit-identical to a local run; if the server becomes \
           unreachable the run falls back to the local model.")

let pll_query_of_remote ~fallback remote =
  match remote with
  | None -> None
  | Some spec -> (
    match Repro_serve.Remote.parse_endpoint spec with
    | Error msg -> die exit_serve "--remote %s: %s" spec msg
    | Ok (host, port, model) ->
      let client = Repro_serve.Client.create ~host ~port () in
      if not (Repro_serve.Client.wait_ready ~deadline:5. client) then
        die exit_serve "--remote %s: server not reachable" spec;
      Some (Repro_serve.Remote.model_query ~fallback ~client ~model ()))

let system_cmd =
  let run seed full scale jobs solver optimiser surrogate model_dir remote
      workers checkpoint_every resume trace verbose =
    setup_logging verbose;
    setup_jobs jobs;
    setup_solver solver;
    let model = load_model model_dir in
    let pll_query = pll_query_of_remote ~fallback:model remote in
    let scale, spec = resolve_scale full scale in
    let cfg =
      Hieropt.Hierarchy.make_config ~seed ~scale ?spec ~optimiser ~surrogate
        ~model_dir ?checkpoint_every ~resume ()
    in
    (* both ends load the model from disk, so PLL shards distribute to
       workers started with --model-dir on the same artefacts *)
    let remote_eval =
      remote_of_workers
        ~model_hash:(Repro_dist.Protocol.model_fingerprint model)
        ~cfg workers
    in
    with_lifecycle ~checkpoint_every @@ fun () ->
    with_trace ~label:"coordinator" trace @@ fun () ->
    let result =
      Hieropt.Hierarchy.run_system_level
        ~progress:(fun s -> Fmt.pr "[system] %s@." s)
        ?remote:remote_eval ?pll_query cfg ~model
    in
    Fmt.pr "%s@."
      (Hieropt.Experiments.table2 ?selected:result.Hieropt.Hierarchy.selected
         result.Hieropt.Hierarchy.rows)
  in
  let info =
    Cmd.info "system"
      ~doc:"Re-run the system-level optimisation over a saved table model."
  in
  Cmd.v info
    Term.(
      const run $ seed_t $ full_t $ scale_t $ jobs_t $ solver_t $ optimiser_t
      $ surrogate_t $ model_dir_t $ remote_t $ workers_t $ checkpoint_every_t
      $ resume_t $ trace_t $ verbose_t)

(* ---- yield ---- *)

let yield_cmd =
  let kvco_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "kvco" ] ~docv:"HZ_PER_V" ~doc:"VCO gain, e.g. 400meg.")
  in
  let ivco_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "ivco" ] ~docv:"A" ~doc:"VCO current, e.g. 8m.")
  in
  let filt_t name ~doc ~default =
    Arg.(value & opt string default & info [ name ] ~doc)
  in
  let samples_t =
    Arg.(value & opt int 500 & info [ "samples" ] ~doc:"MC sample count.")
  in
  let run model_dir kvco ivco c1 c2 r1 samples seed jobs solver verbose =
    setup_logging verbose;
    setup_jobs jobs;
    setup_solver solver;
    let model = load_model model_dir in
    let cfg = Hieropt.Pll_problem.default_config ~model in
    let p = Repro_util.Si.parse in
    match
      Hieropt.Pll_problem.evaluate_point cfg ~kvco:(p kvco) ~ivco:(p ivco)
        ~c1:(p c1) ~c2:(p c2) ~r1:(p r1)
    with
    | Error e ->
      Fmt.epr "design point failed: %s@." e;
      exit 1
    | Ok row ->
      Fmt.pr "%a@." Hieropt.Pll_problem.pp_row row;
      let y =
        Hieropt.Yield.behavioural ~n:samples
          ~prng:(Repro_util.Prng.create seed)
          cfg row
      in
      Fmt.pr "yield: %a@." Repro_util.Stats.pp_yield y
  in
  let info =
    Cmd.info "yield" ~doc:"Monte-Carlo yield of a system design point."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ kvco_t $ ivco_t
      $ filt_t "c1" ~doc:"Loop filter C1." ~default:"10p"
      $ filt_t "c2" ~doc:"Loop filter C2." ~default:"0.6p"
      $ filt_t "r1" ~doc:"Loop filter R1." ~default:"6k"
      $ samples_t $ seed_t $ jobs_t $ solver_t $ verbose_t)

(* ---- export ---- *)

let export_cmd =
  let format_t =
    Arg.(
      value
      & opt (enum [ ("va", `Va); ("verilog-a", `Va); ("spice", `Spice) ]) `Va
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,va) (Verilog-A \\$table_model module over \
             the saved .tbl files, the paper's Listings 1-2) or \
             $(b,spice) (subcircuit of the median Pareto sizing, \
             re-parseable by this tool).")
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of standard output.")
  in
  let run model_dir format output verbose =
    setup_logging verbose;
    let table = load_model model_dir in
    let body =
      match format with
      | `Va -> Repro_netlist.Export.verilog_a table
      | `Spice -> Repro_netlist.Export.spice table
    in
    match output with
    | None -> print_string body
    | Some path -> (
      try Out_channel.with_open_bin path (fun oc -> output_string oc body)
      with Sys_error msg -> die 1 "cannot write %s: %s" path msg)
  in
  let info =
    Cmd.info "export"
      ~doc:
        "Render a saved table model as a Verilog-A behavioural module or \
         a SPICE subcircuit (byte-identical to the server's \
         /v1/models/:id/export)."
  in
  Cmd.v info Term.(const run $ model_dir_t $ format_t $ output_t $ verbose_t)

(* ---- serve ---- *)

let serve_cmd =
  let addr_t =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_t =
    Arg.(
      value & opt int 8190
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks a free one).")
  in
  let reactors_t =
    Arg.(
      value & opt int 2
      & info
          [ "reactors"; "workers" ]
          ~docv:"N"
          ~doc:
            "Reactor domains (event loops) handling connections. \
             $(b,--workers) is a deprecated alias.")
  in
  let timeout_t =
    Arg.(
      value & opt float 10.
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection idle/stall timeout.")
  in
  let run model_dir addr port reactors request_timeout trace verbose =
    setup_logging verbose;
    let registry = Repro_serve.Registry.create ~root:model_dir () in
    let api = Repro_serve.Api.create ~version ~registry () in
    with_trace ~label:"serve" trace @@ fun () ->
    let server =
      match
        Repro_serve.Server.start ~addr ~port ~reactors ~request_timeout ~api ()
      with
      | server -> server
      | exception Unix.Unix_error (code, _, _) ->
        die exit_serve "cannot bind %s:%d: %s" addr port
          (Unix.error_message code)
      | exception Failure msg -> die exit_serve "cannot start server: %s" msg
    in
    Repro_serve.Server.install_signal_handlers server;
    Fmt.pr "serving %s on http://%s:%d (%d reactors)@." model_dir addr
      (Repro_serve.Server.port server)
      reactors;
    Repro_serve.Server.wait server;
    Fmt.pr "%s@." (Repro_engine.Telemetry.line ())
  in
  let info =
    Cmd.info "serve"
      ~doc:"Serve saved table models over HTTP (SIGTERM drains gracefully)."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ addr_t $ port_t $ reactors_t $ timeout_t
      $ trace_t $ verbose_t)

(* ---- worker ---- *)

let worker_cmd =
  let addr_t =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_t =
    Arg.(
      value & opt int 8191
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks a free one).")
  in
  let reactors_t =
    Arg.(
      value & opt int 2
      & info
          [ "reactors"; "http-workers" ]
          ~docv:"N"
          ~doc:
            "Reactor domains (event loops) handling connections. \
             $(b,--http-workers) is a deprecated alias.")
  in
  let timeout_t =
    Arg.(
      value & opt float 10.
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection socket read timeout.")
  in
  let nominal_only_t =
    Arg.(
      value & flag
      & info [ "nominal-only" ]
          ~doc:
            "Match a coordinator running with --nominal-only (the flag \
             is part of the config salt).")
  in
  let worker_model_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "model-dir" ] ~docv:"DIR"
          ~doc:
            "Load a saved table model so this worker can also evaluate \
             system-level (PLL) shards for $(b,hieropt system \
             --workers) runs over the same model.")
  in
  let run full scale jobs solver nominal_only optimiser surrogate netlist
      model_dir addr port reactors request_timeout trace verbose =
    setup_logging verbose;
    setup_jobs jobs;
    setup_solver solver;
    let scale, spec = resolve_scale full scale in
    (* the worker's evaluation closures must capture the same ambient
       configuration as the coordinator's run — the config salt checks
       exactly the fields that matter (spec, measure, process,
       variation flag, optimiser/surrogate choice, solver mode, circuit
       tag); seed and model_dir do not.  A --netlist deck must match
       the coordinator's (same deck → same fingerprint tag → same
       salt); a builtin-equivalent deck canonicalises away exactly as
       it does in the flow. *)
    let make ?circuit () =
      Hieropt.Hierarchy.make_config ~scale ?spec
        ~use_variation:(not nominal_only) ~optimiser ~surrogate ?circuit ()
    in
    let cfg = make () in
    let cfg =
      match netlist with
      | None -> cfg
      | Some path -> (
        match
          circuit_of_netlist ~measure:cfg.Hieropt.Hierarchy.measure path
        with
        | None -> cfg
        | Some _ as circuit -> make ?circuit ())
    in
    let model = Option.map load_model model_dir in
    let worker = Repro_dist.Worker.create ~version ?model ~config:cfg () in
    with_trace ~label:"worker" trace @@ fun () ->
    let server =
      match
        Repro_dist.Worker.serve ~addr ~port ~reactors ~request_timeout worker
      with
      | server -> server
      | exception Unix.Unix_error (code, _, _) ->
        die exit_serve "cannot bind %s:%d: %s" addr port
          (Unix.error_message code)
      | exception Failure msg -> die exit_serve "cannot start worker: %s" msg
    in
    (* the bound port is only known now (--port 0 picks a free one);
       re-label so trace merge can pair this process with the
       coordinator's per-endpoint clock offsets *)
    Repro_obs.Trace.set_process_label
      (Printf.sprintf "worker:%d" (Repro_serve.Server.port server));
    Repro_serve.Server.install_signal_handlers server;
    Fmt.pr "eval worker on http://%s:%d (salt %s, problems: %s, %d jobs)@."
      addr
      (Repro_serve.Server.port server)
      (Repro_dist.Worker.salt worker)
      (String.concat ", " (Repro_dist.Worker.problems worker))
      (Repro_engine.Config.jobs ());
    Repro_serve.Server.wait server;
    Fmt.pr "%s@." (Repro_engine.Telemetry.line ())
  in
  let info =
    Cmd.info "worker"
      ~doc:
        "Run a distributed eval-worker serving batched evaluations to \
         $(b,hieropt flow --workers) / $(b,hieropt system --workers) \
         coordinators (SIGTERM drains gracefully)."
  in
  Cmd.v info
    Term.(
      const run $ full_t $ scale_t $ jobs_t $ solver_t $ nominal_only_t
      $ optimiser_t $ surrogate_t $ netlist_t $ worker_model_dir_t $ addr_t
      $ port_t $ reactors_t $ timeout_t $ trace_t $ verbose_t)

(* ---- query ---- *)

let query_cmd =
  let point_t =
    Arg.(
      value
      & opt_all string []
      & info [ "point" ] ~docv:"KVCO,IVCO"
          ~doc:
            "Query point with SPICE suffixes, e.g. '400meg,8m' \
             (repeatable; one request carries the whole batch).")
  in
  let metrics_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the telemetry snapshot (server's when --remote).")
  in
  let verify_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "verify" ] ~docv:"KVCO,IVCO,JVCO,FMIN,FMAX"
          ~doc:
            "Map a 5-performance point back to the 7 transistor \
             dimensions instead of querying performances.")
  in
  let wait_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "wait-ready" ] ~docv:"SECONDS"
          ~doc:"Poll the server's /healthz up to $(docv) before querying.")
  in
  let parse_fields ~what ~n s =
    let fields = String.split_on_char ',' s in
    if List.length fields <> n then
      die 124 "%s: expected %d comma-separated values, got %S" what n s;
    match List.map Repro_util.Si.parse fields with
    | values -> Array.of_list values
    | exception Invalid_argument msg -> die 124 "%s: %s" what msg
  in
  let print_json j = Fmt.pr "%s@." (Repro_serve.Json.to_string j) in
  let run model_dir remote points metrics verify wait_ready verbose =
    setup_logging verbose;
    let points =
      List.map
        (fun s ->
          let v = parse_fields ~what:"--point" ~n:2 s in
          (v.(0), v.(1)))
        points
      |> Array.of_list
    in
    let perf =
      Option.map
        (fun s ->
          let v = parse_fields ~what:"--verify" ~n:5 s in
          {
            Repro_spice.Vco_measure.kvco = v.(0);
            ivco = v.(1);
            jvco = v.(2);
            fmin = v.(3);
            fmax = v.(4);
          })
        verify
    in
    if points = [||] && perf = None && not metrics then
      die 124 "nothing to do: pass --point, --verify and/or --metrics";
    match remote with
    | Some spec -> (
      let host, port, model =
        match Repro_serve.Remote.parse_endpoint spec with
        | Ok v -> v
        | Error msg -> die exit_serve "--remote %s: %s" spec msg
      in
      let client = Repro_serve.Client.create ~host ~port () in
      (match wait_ready with
      | Some deadline
        when not (Repro_serve.Client.wait_ready ~deadline client) ->
        die exit_serve "--remote %s: server not ready after %gs" spec deadline
      | _ -> ());
      let check = function
        | Ok v -> v
        | Error e ->
          die exit_serve "%s" (Repro_serve.Client.error_to_string e)
      in
      if Array.length points > 0 then begin
        let results = check (Repro_serve.Client.query_points client ~model points) in
        print_json
          (Repro_serve.Json.Obj
             [
               ( "results",
                 Repro_serve.Json.Arr
                   (Array.to_list
                      (Array.map Repro_serve.Api.point_eval_to_json results)) );
             ])
      end;
      (match perf with
      | Some perf ->
        let params = check (Repro_serve.Client.verify_point client ~model perf) in
        print_json
          (Repro_serve.Json.Obj
             [
               ( "params",
                 Repro_serve.Json.Obj
                   (List.map
                      (fun (k, v) -> (k, Repro_serve.Json.Num v))
                      params) );
             ])
      | None -> ());
      if metrics then
        print_json (check (Repro_serve.Client.get_json client "/v1/metrics")))
    | None ->
      (* local mode shares the remote path's JSON rendering, so the CI
         smoke test can diff the two outputs byte-for-byte *)
      let model = if points = [||] && perf = None then None
        else Some (load_model model_dir)
      in
      Option.iter
        (fun table ->
          if Array.length points > 0 then
            print_json
              (Repro_serve.Json.Obj
                 [
                   ( "results",
                     Repro_serve.Json.Arr
                       (Array.to_list
                          (Array.map Repro_serve.Api.point_eval_to_json
                             (Hieropt.Perf_table.eval_points table points))) );
                 ]);
          match perf with
          | Some perf ->
            print_json
              (Repro_serve.Json.Obj
                 [
                   ( "params",
                     Repro_serve.Api.params_to_json
                       (Hieropt.Perf_table.params_of_perf table perf) );
                 ])
          | None -> ())
        model;
      if metrics then print_json (Repro_serve.Api.metrics_json ())
  in
  let info =
    Cmd.info "query"
      ~doc:
        "Query a table model — a local directory, or a running $(b,hieropt \
         serve) via --remote — with byte-identical output either way."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ remote_t $ point_t $ metrics_t $ verify_t
      $ wait_t $ verbose_t)

(* ---- loadgen ---- *)

let loadgen_cmd =
  let host_t =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port_t =
    Arg.(
      value & opt int 8190 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let model_t =
    Arg.(
      value
      & opt string "default"
      & info [ "model" ] ~docv:"ID" ~doc:"Model id to query.")
  in
  let connections_t =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"N"
          ~doc:"Concurrent keep-alive connections.")
  in
  let duration_t =
    Arg.(
      value & opt float 2.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measured window length.")
  in
  let warmup_t =
    Arg.(
      value & opt float 0.25
      & info [ "warmup" ] ~docv:"SECONDS"
          ~doc:"Unrecorded lead-in before the measured window.")
  in
  let target_qps_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-qps" ] ~docv:"QPS"
          ~doc:
            "Open-loop mode: fire on a fixed schedule at $(docv) instead \
             of back-to-back (closed-loop, the default).")
  in
  let batch_t =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N" ~doc:"Points per query request.")
  in
  let assert_qps_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "assert-qps-min" ] ~docv:"QPS"
          ~doc:"Exit non-zero when measured qps falls below $(docv).")
  in
  let assert_p99_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "assert-p99-max" ] ~docv:"MS"
          ~doc:"Exit non-zero when p99 latency exceeds $(docv) ms.")
  in
  let allow_errors_t =
    Arg.(
      value & flag
      & info [ "allow-errors" ]
          ~doc:
            "Do not fail on request errors (e.g. when the server is \
             deliberately drained mid-run).")
  in
  let run model_dir host port model connections duration warmup target_qps
      batch assert_qps assert_p99 allow_errors verbose =
    setup_logging verbose;
    (* sample points spanning the served model's own input ranges, so
       every request exercises real interpolation *)
    let table = load_model model_dir in
    let klo, khi = Hieropt.Perf_table.kvco_range table in
    let ilo, ihi = Hieropt.Perf_table.ivco_range table in
    let n = max 1 batch in
    let point i =
      let f =
        if n = 1 then 0.5 else float_of_int i /. float_of_int (n - 1)
      in
      Repro_serve.Json.Obj
        [
          ("kvco", Repro_serve.Json.Num (klo +. (f *. (khi -. klo))));
          ("ivco", Repro_serve.Json.Num (ilo +. (f *. (ihi -. ilo))));
        ]
    in
    let body =
      Repro_serve.Json.to_string
        (Repro_serve.Json.Obj
           [ ("points", Repro_serve.Json.Arr (List.init n point)) ])
    in
    let mode =
      match target_qps with
      | None -> Repro_serve.Loadgen.Closed
      | Some q -> Repro_serve.Loadgen.Open_target q
    in
    let r =
      Repro_serve.Loadgen.run ~mode ~connections ~duration ~warmup ~host ~port
        ~target:(Printf.sprintf "/v1/models/%s/query" model)
        ~body ()
    in
    Repro_serve.Loadgen.pp stdout r;
    print_newline ();
    let failures = ref [] in
    let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
    if (not allow_errors) && r.Repro_serve.Loadgen.errors > 0 then
      fail "%d request(s) failed" r.Repro_serve.Loadgen.errors;
    (match assert_qps with
    | Some floor when r.Repro_serve.Loadgen.qps < floor ->
      fail "qps %.0f below floor %.0f" r.Repro_serve.Loadgen.qps floor
    | _ -> ());
    (match assert_p99 with
    | Some ceiling when r.Repro_serve.Loadgen.p99_ms > ceiling ->
      fail "p99 %.2f ms above ceiling %.2f ms" r.Repro_serve.Loadgen.p99_ms
        ceiling
    | _ -> ());
    match !failures with
    | [] -> ()
    | fs -> die exit_serve "load test failed: %s" (String.concat "; " fs)
  in
  let info =
    Cmd.info "loadgen"
      ~doc:
        "Drive a running $(b,hieropt serve) with a closed- or open-loop \
         query load and report qps + latency quantiles (optionally \
         asserting floors/ceilings, for CI)."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ host_t $ port_t $ model_t $ connections_t
      $ duration_t $ warmup_t $ target_qps_t $ batch_t $ assert_qps_t
      $ assert_p99_t $ allow_errors_t $ verbose_t)

(* ---- trace files ---- *)

let read_file_or_die ~what path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> die 1 "cannot read %s: %s" what msg

(* decode a --trace export (traceEvents plus the process "meta" header)
   back into the typed form repro_prof analyses.  Unknown or malformed
   events are skipped rather than fatal: a trace from a crashed process
   should still merge and profile. *)
let load_trace_process path =
  let module J = Repro_serve.Json in
  let body = read_file_or_die ~what:("trace " ^ path) path in
  let j =
    match J.of_string body with
    | Ok j -> j
    | Error msg -> die 1 "trace %s: invalid JSON: %s" path msg
  in
  let jstr name j =
    match J.member name j with Some (J.Str s) -> Some s | _ -> None
  in
  let jnum name j =
    match J.member name j with Some (J.Num x) -> Some x | _ -> None
  in
  let meta = J.member "meta" j in
  let events =
    match J.member "traceEvents" j with
    | Some (J.Arr evs) -> evs
    | _ -> die 1 "trace %s: no traceEvents array" path
  in
  (* args come back as strings exactly as the tracer recorded them;
     counter values were emitted as JSON numbers, so re-render those
     losslessly *)
  let arg_string = function
    | J.Str s -> s
    | J.Num x -> J.float_repr x
    | v -> J.to_string v
  in
  let event e =
    match (jstr "name" e, jstr "ph" e) with
    | Some name, Some ph when String.length ph = 1 ->
      Some
        {
          Repro_prof.Event.name;
          ph = ph.[0];
          ts = Option.value ~default:0.0 (jnum "ts" e);
          pid = int_of_float (Option.value ~default:0.0 (jnum "pid" e));
          tid = int_of_float (Option.value ~default:0.0 (jnum "tid" e));
          seq = int_of_float (Option.value ~default:(-1.0) (jnum "seq" e));
          args =
            (match J.member "args" e with
            | Some (J.Obj kvs) ->
              List.map (fun (k, v) -> (k, arg_string v)) kvs
            | _ -> []);
        }
    | _ -> None
  in
  {
    Repro_prof.Merge.label = Option.bind meta (jstr "label");
    pid =
      (match Option.bind meta (jnum "pid") with
      | Some x -> int_of_float x
      | None -> 0);
    epoch = Option.value ~default:0.0 (Option.bind meta (jnum "epoch"));
    trace = Option.value ~default:"" (Option.bind meta (jstr "trace"));
    events = List.filter_map event events;
  }

(* ---- trace ---- *)

let trace_merge_cmd =
  let out_t =
    Arg.(
      value
      & opt string "merged.trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the merged trace.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the merged trace (balanced begin/end events, \
             resolvable propagated parent ids, remote spans contained \
             in their parents) and exit non-zero on problems.")
  in
  let files_t =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:"Coordinator trace first, then one file per worker.")
  in
  let run out check files verbose =
    setup_logging verbose;
    match files with
    | [] -> assert false (* non_empty *)
    | base_path :: worker_paths ->
      let base = load_trace_process base_path in
      let workers = List.map load_trace_process worker_paths in
      (* every process mints its own file-level id; participation in the
         coordinator's trace shows up as worker spans tagged with the
         propagated id.  A worker whose tagged spans all name a
         different trace heard from some other coordinator — almost
         certainly the wrong file. *)
      List.iter2
        (fun path (w : Repro_prof.Merge.process) ->
          let tags =
            List.filter_map
              (fun (e : Repro_prof.Event.t) ->
                if e.ph = 'B' then Repro_prof.Event.arg "trace" e.args
                else None)
              w.events
          in
          if
            base.Repro_prof.Merge.trace <> ""
            && tags <> []
            && not (List.mem base.Repro_prof.Merge.trace tags)
          then
            Fmt.epr
              "warning: no span in %s carries the coordinator's trace id \
               %s — is it from this run? (merging anyway)@."
              path base.Repro_prof.Merge.trace)
        worker_paths workers;
      let events, labels = Repro_prof.Merge.merge ~base ~workers in
      let n = Repro_prof.Merge.export ~path:out ~labels events in
      Fmt.pr "merged %d process%s, %d events -> %s@."
        (1 + List.length workers)
        (if workers = [] then "" else "es")
        n out;
      if check then begin
        let errors =
          Repro_prof.Merge.validate
            ~coordinator_pid:base.Repro_prof.Merge.pid events
        in
        match errors with
        | [] -> Fmt.pr "trace is coherent@."
        | errors ->
          List.iter (fun e -> Fmt.epr "error: %s@." e) errors;
          die 1 "%d validation error%s" (List.length errors)
            (if List.length errors = 1 then "" else "s")
      end
  in
  let info =
    Cmd.info "merge"
      ~doc:
        "Assemble per-process --trace files from a distributed run into \
         one Chrome trace on the coordinator's timeline, correcting \
         worker clocks with the per-endpoint offsets estimated from the \
         request/response envelopes."
  in
  Cmd.v info Term.(const run $ out_t $ check_t $ files_t $ verbose_t)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Work with Chrome traces recorded by --trace.")
    [ trace_merge_cmd ]

(* ---- report ---- *)

let report_cmd =
  let module J = Repro_serve.Json in
  let journal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Journal to read (default: MODEL_DIR/run.journal).")
  in
  let trace_file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Also analyse a Chrome trace recorded with --trace and list \
             the slowest spans.")
  in
  let top_t =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"How many slowest spans to list.")
  in
  let profile_t =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Full profile of the --trace file instead of the slowest-span \
             list: per-span-name self-time table, GC/allocation \
             attribution, and per-domain utilization for the whole run \
             and each phase.")
  in
  let folded_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write self-time-weighted folded stacks to FILE, ready for \
             flamegraph.pl (implies $(b,--profile)).")
  in
  let jstr name j =
    match J.member name j with Some (J.Str s) -> Some s | _ -> None
  in
  let jnum name j =
    match J.member name j with Some (J.Num x) -> Some x | _ -> None
  in
  let read_journal path =
    let ic =
      try open_in path
      with Sys_error msg -> die 1 "cannot read journal: %s" msg
    in
    let rec loop acc =
      match input_line ic with
      | line -> (
        match J.of_string line with
        | Ok j -> loop (j :: acc)
        | Error _ -> loop acc (* a torn trailing line is not fatal *))
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    loop []
  in
  let report_journal events =
    (* the journal is append-only across runs: report the newest run *)
    let run_id =
      List.fold_left
        (fun acc j ->
          if jstr "event" j = Some "run.start" then jstr "run" j else acc)
        None events
    in
    let run_id =
      match run_id with
      | Some id -> id
      | None -> (
        match List.rev events with
        | last :: _ -> Option.value ~default:"?" (jstr "run" last)
        | [] -> die 1 "journal is empty")
    in
    let events = List.filter (fun j -> jstr "run" j = Some run_id) events in
    let of_event name = List.filter (fun j -> jstr "event" j = Some name) events in
    (match of_event "run.start" with
    | start :: _ ->
      Fmt.pr "run %s  (fingerprint %s, %d events)@." run_id
        (Option.value ~default:"?" (jstr "fingerprint" start))
        (List.length events)
    | [] -> Fmt.pr "run %s  (%d events)@." run_id (List.length events));
    (* per-phase wall-clock breakdown, in completion order *)
    let phases =
      List.filter_map
        (fun j ->
          match (jstr "phase" j, jnum "seconds" j) with
          | Some p, Some s -> Some (p, s)
          | _ -> None)
        (of_event "phase.finish")
    in
    if phases <> [] then begin
      let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 phases in
      Fmt.pr "@.phase breakdown:@.";
      List.iter
        (fun (p, s) ->
          Fmt.pr "  %-14s %9.3f s  %5.1f%%@." p s
            (if total > 0.0 then 100.0 *. s /. total else 0.0))
        phases;
      Fmt.pr "  %-14s %9.3f s@." "total" total
    end;
    (* generation-by-generation convergence, one table per GA label *)
    let generations = of_event "ga.generation" in
    let labels =
      List.fold_left
        (fun acc j ->
          match jstr "label" j with
          | Some l when not (List.mem l acc) -> acc @ [ l ]
          | _ -> acc)
        [] generations
    in
    List.iter
      (fun label ->
        Fmt.pr "@.%s-level convergence:@." label;
        Fmt.pr "  %4s  %5s  %12s  %12s@." "gen" "front" "spread" "hypervolume";
        List.iter
          (fun j ->
            if jstr "label" j = Some label then
              Fmt.pr "  %4.0f  %5.0f  %12.5g  %12.5g@."
                (Option.value ~default:0.0 (jnum "generation" j))
                (Option.value ~default:0.0 (jnum "front_size" j))
                (Option.value ~default:0.0 (jnum "spread" j))
                (Option.value ~default:0.0 (jnum "hypervolume" j)))
          generations)
      labels;
    let checkpoints = of_event "checkpoint" in
    if checkpoints <> [] then begin
      let count a =
        List.length
          (List.filter (fun j -> jstr "action" j = Some a) checkpoints)
      in
      Fmt.pr "@.checkpoints: %d flushed, %d resumed@." (count "flush")
        (count "resume")
    end;
    let warnings = of_event "warning" in
    if warnings <> [] then begin
      Fmt.pr "@.warnings (%d):@." (List.length warnings);
      List.iter
        (fun j ->
          Fmt.pr "  [%s] %s@."
            (Option.value ~default:"?" (jstr "key" j))
            (Option.value ~default:"" (jstr "message" j)))
        warnings
    end;
    (* per-label surrogate pre-screen outcomes (one "evals" event per
       screened GA run) ... *)
    let evals = of_event "evals" in
    if evals <> [] then begin
      Fmt.pr "@.surrogate pre-screen:@.";
      Fmt.pr "  %-8s %8s %8s %8s@." "label" "avoided" "paid" "ratio";
      List.iter
        (fun j ->
          let avoided = Option.value ~default:0.0 (jnum "avoided" j) in
          let paid = Option.value ~default:0.0 (jnum "paid" j) in
          let total = avoided +. paid in
          Fmt.pr "  %-8s %8.0f %8.0f %7.1f%%@."
            (Option.value ~default:"?" (jstr "label" j))
            avoided paid
            (if total > 0.0 then 100.0 *. avoided /. total else 0.0))
        evals
    end;
    match of_event "run.finish" with
    | finish :: _ ->
      let f name = Option.value ~default:0.0 (jnum name finish) in
      (* ... and the run-wide avoided/cached/simulated split carried on
         the finish event — one table covering both the surrogate and
         the eval cache, so the whole evaluation budget is readable in
         one place *)
      let avoided = f "eval_avoided" in
      let hits = f "eval_cache_hits" in
      let runs = f "eval_runs" in
      let requested = avoided +. hits +. runs in
      if requested > 0.0 then begin
        let pct x =
          if requested > 0.0 then 100.0 *. x /. requested else 0.0
        in
        Fmt.pr "@.evals:@.";
        Fmt.pr "  %-10s %8.0f@." "requested" requested;
        Fmt.pr "  %-10s %8.0f  %5.1f%%  (surrogate pre-screen)@." "avoided"
          avoided (pct avoided);
        Fmt.pr "  %-10s %8.0f  %5.1f%%  (eval cache)@." "cached" hits
          (pct hits);
        Fmt.pr "  %-10s %8.0f  %5.1f%%@." "simulated" runs (pct runs)
      end;
      Fmt.pr "@.run finished in %.3f s@." (f "seconds")
    | [] -> Fmt.pr "@.run did not record a finish event (still running or killed)@."
  in
  let report_trace path top =
    let body =
      try
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error msg -> die 1 "cannot read trace: %s" msg
    in
    let j =
      match J.of_string body with
      | Ok j -> j
      | Error msg -> die 1 "trace %s: invalid JSON: %s" path msg
    in
    let events =
      match J.member "traceEvents" j with
      | Some (J.Arr evs) -> evs
      | _ -> die 1 "trace %s: no traceEvents array" path
    in
    (* pair B/E per thread with a stack — events are in emission order *)
    let stacks : (int, (string * float) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let spans = ref [] in
    let unbalanced = ref 0 in
    List.iter
      (fun e ->
        let tid = int_of_float (Option.value ~default:0.0 (jnum "tid" e)) in
        let stack =
          match Hashtbl.find_opt stacks tid with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add stacks tid s;
            s
        in
        match (jstr "ph" e, jstr "name" e, jnum "ts" e) with
        | Some "B", Some name, Some ts -> stack := (name, ts) :: !stack
        | Some "E", _, Some ts -> (
          match !stack with
          | (name, t0) :: rest ->
            stack := rest;
            spans := (name, ts -. t0, t0, tid) :: !spans
          | [] -> incr unbalanced)
        | _ -> ())
      events;
    Hashtbl.iter (fun _ s -> unbalanced := !unbalanced + List.length !s) stacks;
    let spans =
      List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a) !spans
    in
    Fmt.pr "@.slowest spans (%d total%s):@." (List.length spans)
      (if !unbalanced > 0 then
         Printf.sprintf ", %d unbalanced events" !unbalanced
       else "");
    Fmt.pr "  %12s  %-24s  %4s  %12s@." "duration" "span" "tid" "start";
    List.iteri
      (fun i (name, dur, t0, tid) ->
        if i < top then
          Fmt.pr "  %9.3f ms  %-24s  %4d  %9.3f ms@." (dur /. 1e3) name tid
            (t0 /. 1e3))
      spans
  in
  let report_profile path top folded =
    let module A = Repro_prof.Analysis in
    let module Ev = Repro_prof.Event in
    let p = load_trace_process path in
    let events = p.Repro_prof.Merge.events in
    let roots = Ev.spans events in
    if roots = [] then die 1 "trace %s contains no spans" path;
    let unbalanced = Ev.unbalanced events in
    let t0 = List.fold_left (fun a s -> min a s.Ev.t0) infinity roots in
    let t1 = List.fold_left (fun a s -> max a s.Ev.t1) neg_infinity roots in
    (* process names: the meta label for a single-process file, the
       process_name metadata events for a merged one *)
    let plabels =
      let from_meta =
        match p.Repro_prof.Merge.label with
        | Some l -> [ (p.Repro_prof.Merge.pid, l) ]
        | None -> []
      in
      List.fold_left
        (fun acc (e : Ev.t) ->
          match
            (e.Ev.ph, e.Ev.name, Repro_prof.Event.arg "name" e.Ev.args)
          with
          | 'M', "process_name", Some l when not (List.mem_assoc e.Ev.pid acc)
            ->
            (e.Ev.pid, l) :: acc
          | _ -> acc)
        from_meta events
    in
    let pname pid =
      match List.assoc_opt pid plabels with
      | Some l -> l
      | None -> Printf.sprintf "pid%d" pid
    in
    (* The CLI wraps every traced run in a root "run" span, so its
       duration IS that process's traced wall time; self-times
       telescope to the root durations, which is how the table accounts
       for ~100% of it.  In a merged trace every process has a "run"
       span and workers outlive the coordinator, so prefer the process
       labelled coordinator as the wall reference. *)
    let wall =
      let runs =
        List.filter (fun (s : Ev.span) -> s.Ev.name = "run") roots
      in
      let coord =
        List.find_opt (fun (s : Ev.span) -> pname s.Ev.pid = "coordinator")
          runs
      in
      match (coord, runs) with
      | Some s, _ | None, s :: _ -> Ev.dur s
      | None, [] -> t1 -. t0
    in
    let rows = A.self_time roots in
    let attributed = A.total_self rows in
    Fmt.pr "@.profile of %s  (%d events, %d spans%s)@." path
      (List.length events)
      (List.length (Ev.flatten roots))
      (if unbalanced > 0 then
         Printf.sprintf ", %d unbalanced events" unbalanced
       else "");
    Fmt.pr
      "wall %9.3f ms;  %.3f ms (%.1f%%) attributed to %d span names \
       (concurrent domains can push this past 100%%)@."
      (wall /. 1e3) (attributed /. 1e3)
      (if wall > 0.0 then 100.0 *. attributed /. wall else 0.0)
      (List.length rows);
    Fmt.pr "@.self-time by span name (top %d of %d):@."
      (min top (List.length rows))
      (List.length rows);
    Fmt.pr "  %-20s %7s %12s %12s %7s@." "span" "count" "total" "self"
      "self%";
    List.iteri
      (fun i (r : A.row) ->
        if i < top then
          Fmt.pr "  %-20s %7d %9.3f ms %9.3f ms %6.1f%%@." r.A.name r.A.count
            (r.A.total_us /. 1e3) (r.A.self_us /. 1e3)
            (if wall > 0.0 then 100.0 *. r.A.self_us /. wall else 0.0))
      rows;
    (* allocation attribution — present when the trace was recorded with
       GC capture (hieropt --trace always switches it on) *)
    let gc_rows =
      List.filter
        (fun (r : A.row) ->
          r.A.gc_minor_total > 0.0 || r.A.gc_major_total > 0.0)
        rows
      |> List.sort (fun (a : A.row) b ->
             compare b.A.gc_minor_self a.A.gc_minor_self)
    in
    if gc_rows <> [] then begin
      Fmt.pr "@.allocation by span name (top %d of %d, minor words):@."
        (min top (List.length gc_rows))
        (List.length gc_rows);
      Fmt.pr "  %-20s %12s %12s %10s %10s@." "span" "self" "total"
        "minor gcs" "major gcs";
      List.iteri
        (fun i (r : A.row) ->
          if i < top then
            Fmt.pr "  %-20s %12.4g %12.4g %10d %10d@." r.A.name
              r.A.gc_minor_self r.A.gc_minor_total r.A.gc_minor_cols
              r.A.gc_major_cols)
        gc_rows
    end;
    let print_utilization ~what ~t0 ~t1 =
      match A.utilization roots ~t0 ~t1 with
      | [] -> ()
      | util ->
        Fmt.pr "  %-18s" what;
        List.iter
          (fun ((pid, tid), f) ->
            Fmt.pr "  %s/d%d %5.1f%%" (pname pid) tid (100.0 *. f))
          util;
        Fmt.pr "@."
    in
    Fmt.pr "@.domain utilization (pool busy-time over window):@.";
    print_utilization ~what:"whole run" ~t0 ~t1;
    List.iter
      (fun (s : Ev.span) ->
        if String.length s.Ev.name > 6 && String.sub s.Ev.name 0 6 = "phase."
        then print_utilization ~what:s.Ev.name ~t0:s.Ev.t0 ~t1:s.Ev.t1)
      (Ev.flatten roots);
    match folded with
    | None -> ()
    | Some out ->
      let oc =
        try open_out out
        with Sys_error msg -> die 1 "cannot write %s: %s" out msg
      in
      output_string oc (A.folded ~labels:plabels roots);
      close_out oc;
      Fmt.pr "@.folded stacks -> %s@." out
  in
  let run model_dir journal trace top profile folded verbose =
    setup_logging verbose;
    let profiling = profile || folded <> None in
    if profiling && trace = None then
      die 1 "--profile needs --trace FILE (a trace recorded with --trace)";
    (* --profile is a trace analysis: only read the journal when one was
       named explicitly, or in the default journal-report mode *)
    if (not profiling) || journal <> None then begin
      let journal_path =
        Option.value journal
          ~default:(Filename.concat model_dir Repro_obs.Journal.default_file)
      in
      report_journal (read_journal journal_path)
    end;
    Option.iter
      (fun path ->
        if profiling then report_profile path top folded
        else report_trace path top)
      trace
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Summarise a run journal: per-phase time breakdown, \
         generation-by-generation GA convergence (front size, spread, \
         hypervolume), checkpoint activity and warnings — plus the \
         slowest spans of a recorded trace, or with $(b,--profile) a \
         full self-time/GC/utilization profile of it."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ journal_t $ trace_file_t $ top_t $ profile_t
      $ folded_t $ verbose_t)

let main_cmd =
  let doc =
    "hierarchical performance-and-variation optimisation of analogue \
     circuits (DATE 2009 reproduction)"
  in
  Cmd.group (Cmd.info "hieropt" ~version ~doc)
    [
      simulate_cmd;
      characterise_cmd;
      flow_cmd;
      system_cmd;
      yield_cmd;
      export_cmd;
      serve_cmd;
      query_cmd;
      loadgen_cmd;
      worker_cmd;
      trace_cmd;
      report_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
