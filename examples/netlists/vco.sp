* Current-starved ring VCO (paper Figure 6) — the built-in topology,
* written out as an optimisable netlist.  The seven .param cards carry
* {range lo hi} templates spanning the paper's §4.2 design space, so
* `hieropt flow --netlist examples/netlists/vco.sp` optimises exactly
* the space the built-in builder does.  Because this deck elaborates to
* the identical topology and bounds, the flow canonicalises it onto the
* builder: artefacts, cache keys and snapshots are byte-identical to a
* run without --netlist.
*
* Designable parameters, in optimisation-vector order (wn ln wp lp wcn
* wcp lc).  Bounds are plain scientific literals so they round-trip to
* exactly the builder's floats.
.param wn  = {range 10e-6 100e-6}
.param ln  = {range 0.12e-6 1e-6}
.param wp  = {range 10e-6 100e-6}
.param lp  = {range 0.12e-6 1e-6}
.param wcn = {range 10e-6 100e-6}
.param wcp = {range 10e-6 100e-6}
.param lc  = {range 0.12e-6 1e-6}

* supplies — the characterisation testbench re-drives Vctl over the
* control sweep; 1.2 V / 0.5 V are the measurement defaults
Vdd vdd 0 DC 1.2
Vctl vctl 0 DC 0.5

* bias mirror: Vctl sets the starving current through mbn, mirrored by
* the diode-connected mbp onto vbp (the PMOS starving gates)
mbn vbp vctl 0 nmos_012 W={wcn} L={lc}
mbp vbp vbp vdd pmos_012 W={wcp} L={lc}

* five current-starved inverter stages; s5 feeds back into stage 1
mcp1 sp1 vbp vdd pmos_012 W={wcp} L={lc}
mp1 s1 s5 sp1 pmos_012 W={wp} L={lp}
mn1 s1 s5 sn1 nmos_012 W={wn} L={ln}
mcn1 sn1 vctl 0 nmos_012 W={wcn} L={lc}

mcp2 sp2 vbp vdd pmos_012 W={wcp} L={lc}
mp2 s2 s1 sp2 pmos_012 W={wp} L={lp}
mn2 s2 s1 sn2 nmos_012 W={wn} L={ln}
mcn2 sn2 vctl 0 nmos_012 W={wcn} L={lc}

mcp3 sp3 vbp vdd pmos_012 W={wcp} L={lc}
mp3 s3 s2 sp3 pmos_012 W={wp} L={lp}
mn3 s3 s2 sn3 nmos_012 W={wn} L={ln}
mcn3 sn3 vctl 0 nmos_012 W={wcn} L={lc}

mcp4 sp4 vbp vdd pmos_012 W={wcp} L={lc}
mp4 s4 s3 sp4 pmos_012 W={wp} L={lp}
mn4 s4 s3 sn4 nmos_012 W={wn} L={ln}
mcn4 sn4 vctl 0 nmos_012 W={wcn} L={lc}

mcp5 sp5 vbp vdd pmos_012 W={wcp} L={lc}
mp5 s5 s4 sp5 pmos_012 W={wp} L={lp}
mn5 s5 s4 sn5 nmos_012 W={wn} L={ln}
mcn5 sn5 vctl 0 nmos_012 W={wcn} L={lc}

.end
