module Prng = Repro_util.Prng
module Snapshot = Repro_engine.Snapshot

type options = {
  population : int;
  generations : int;
}

module type S = sig
  val name : string

  type state

  val init :
    options:options -> evaluator:Problem.evaluator -> Problem.t -> Prng.t ->
    state

  val step : evaluator:Problem.evaluator -> Problem.t -> state -> unit
  val generation : state -> int
  val population : state -> Nsga2.individual array
  val save_state : state -> Snapshot.t -> key:string -> unit

  val restore_state :
    options:options -> Problem.t -> Snapshot.t -> key:string -> state option

  val clear_state : Snapshot.t -> key:string -> unit
end

type t = (module S)

(* Adapters: each maps the portfolio-level (population, generations)
   onto the algorithm's native options, keeping its other knobs at the
   library defaults — the same convention Hierarchy already used for
   NSGA-II, so default-path artefacts are unchanged. *)

module Nsga2_optimiser : S = struct
  let name = "nsga2"

  type state = Nsga2.state

  let native o =
    {
      Nsga2.default_options with
      population = o.population;
      generations = o.generations;
    }

  let init ~options ~evaluator problem prng =
    Nsga2.init ~options:(native options) ~evaluator problem prng

  let step ~evaluator problem st = Nsga2.step ~evaluator problem st
  let generation = Nsga2.generation
  let population = Nsga2.population
  let save_state = Nsga2.save_state

  let restore_state ~options problem snap ~key =
    Nsga2.restore_state ~options:(native options) problem snap ~key

  let clear_state = Nsga2.clear_state
end

module Spea2_optimiser : S = struct
  let name = "spea2"

  type state = Spea2.state

  let native o =
    {
      Spea2.default_options with
      population = o.population;
      archive = o.population;
      generations = o.generations;
    }

  let init ~options ~evaluator problem prng =
    Spea2.init ~options:(native options) ~evaluator problem prng

  let step ~evaluator problem st = Spea2.step ~evaluator problem st
  let generation = Spea2.generation
  let population = Spea2.archive
  let save_state = Spea2.save_state

  let restore_state ~options problem snap ~key =
    Spea2.restore_state ~options:(native options) problem snap ~key

  let clear_state = Spea2.clear_state
end

module De_optimiser : S = struct
  let name = "de"

  type state = De.state

  let native o =
    {
      De.default_options with
      population = o.population;
      generations = o.generations;
    }

  let init ~options ~evaluator problem prng =
    De.init ~options:(native options) ~evaluator problem prng

  let step ~evaluator problem st = De.step ~evaluator problem st
  let generation = De.generation
  let population = De.population
  let save_state = De.save_state

  let restore_state ~options problem snap ~key =
    De.restore_state ~options:(native options) problem snap ~key

  let clear_state = De.clear_state
end

module Mopso_optimiser : S = struct
  let name = "mopso"

  type state = Mopso.state

  let native o =
    {
      Mopso.default_options with
      population = o.population;
      generations = o.generations;
      archive = o.population;
    }

  let init ~options ~evaluator problem prng =
    Mopso.init ~options:(native options) ~evaluator problem prng

  let step ~evaluator problem st = Mopso.step ~evaluator problem st
  let generation = Mopso.generation
  let population = Mopso.population
  let save_state = Mopso.save_state

  let restore_state ~options problem snap ~key =
    Mopso.restore_state ~options:(native options) problem snap ~key

  let clear_state = Mopso.clear_state
end

let all : (string * t) list =
  [
    ("nsga2", (module Nsga2_optimiser));
    ("spea2", (module Spea2_optimiser));
    ("de", (module De_optimiser));
    ("mopso", (module Mopso_optimiser));
  ]

let names = List.map fst all
let of_name name = List.assoc_opt name all
let name (module M : S) = M.name

let optimise (module M : S) ~options
    ?(evaluator = Problem.serial_evaluator) ?on_generation problem prng =
  let st = M.init ~options ~evaluator problem prng in
  (match on_generation with Some f -> f 0 (M.population st) | None -> ());
  while M.generation st < options.generations do
    M.step ~evaluator problem st;
    match on_generation with
    | Some f -> f (M.generation st) (M.population st)
    | None -> ()
  done;
  M.population st
