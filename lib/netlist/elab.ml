open Ast
module Netlist = Repro_circuit.Netlist
module Mosfet = Repro_circuit.Mosfet
module Source = Repro_circuit.Source

type template = {
  param_names : string array;
  bounds : (float * float) array;
  default : float array;
  instantiate : float array -> Netlist.t;
  fingerprint : string;
}

(* ---- expression evaluation ------------------------------------------ *)

let rec eval ?file env = function
  | Num v -> v
  | Ref (n, pos) -> (
    match Hashtbl.find_opt env n with
    | Some v -> v
    | None -> Loc.fail ?file pos "unknown parameter %S" n)
  | Neg e -> -.eval ?file env e
  | Add (a, b) -> eval ?file env a +. eval ?file env b
  | Sub (a, b) -> eval ?file env a -. eval ?file env b
  | Mul (a, b) -> eval ?file env a *. eval ?file env b
  | Div (a, b, pos) ->
    let d = eval ?file env b in
    if d = 0.0 then Loc.fail ?file pos "division by zero";
    eval ?file env a /. d
  | Call (name, args, pos) -> (
    match (name, List.map (eval ?file env) args) with
    | "min", [ a; b ] -> Float.min a b
    | "max", [ a; b ] -> Float.max a b
    | "pow", [ a; b ] -> Float.pow a b
    | "sqrt", [ a ] -> Float.sqrt a
    | "abs", [ a ] -> Float.abs a
    | ("min" | "max" | "pow"), _ ->
      Loc.fail ?file pos "%s takes 2 arguments" name
    | ("sqrt" | "abs"), _ -> Loc.fail ?file pos "%s takes 1 argument" name
    | _ -> Loc.fail ?file pos "unknown function %S" name)

(* ---- parameter resolution ------------------------------------------- *)

let check_duplicates ?file defs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.p_name then
        Loc.fail ?file p.p_pos "duplicate parameter %S" p.p_name;
      Hashtbl.replace seen p.p_name ())
    defs

(* resolve plain (non-range) definitions into [env] in dependency order.
   A definition may reference parameters defined later in the deck;
   cycles error at the definition that closes them.  With [tolerant],
   a definition whose evaluation fails (e.g. it references a ranged
   parameter that is not bound yet) is skipped instead — used when
   computing range bounds, where only the parameters the bounds actually
   reach must resolve. *)
let resolve ?file ~tolerant defs env =
  let tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace tbl p.p_name p) defs;
  let state = Hashtbl.create 16 in
  let rec visit p =
    match Hashtbl.find_opt state p.p_name with
    | Some `Done -> ()
    | Some `Visiting ->
      Loc.fail ?file p.p_pos "parameter cycle involving %S" p.p_name
    | None ->
      Hashtbl.replace state p.p_name `Visiting;
      List.iter
        (fun r ->
          if not (Hashtbl.mem env r) then
            match Hashtbl.find_opt tbl r with
            | Some q -> visit q
            | None -> () (* eval reports the unknown reference precisely *))
        (pvalue_refs p.p_value);
      (match p.p_value with
      | Range _ -> assert false (* callers filter ranges out *)
      | Value e -> (
        match eval ?file env e with
        | v -> Hashtbl.replace env p.p_name v
        | exception Loc.Netlist_error _ when tolerant -> ()));
      Hashtbl.replace state p.p_name `Done
  in
  List.iter visit defs

let split_params defs =
  List.partition_map
    (fun p ->
      match p.p_value with
      | Range (lo, hi) -> Left (p, lo, hi)
      | Value _ -> Right p)
    defs

(* ---- models ---------------------------------------------------------- *)

let builtin_models =
  [ ("nmos", Mosfet.nmos_012); ("pmos", Mosfet.pmos_012);
    ("nmos_012", Mosfet.nmos_012); ("pmos_012", Mosfet.pmos_012) ]

let apply_model_param ?file (m : Mosfet.model) (k, pos, v) =
  match k with
  | "vth0" -> { m with Mosfet.vth0 = v }
  | "kp" -> { m with Mosfet.kp = v }
  | "theta" -> { m with Mosfet.theta = v }
  | "n" -> { m with Mosfet.n_slope = v }
  | "clm" -> { m with Mosfet.clm = v }
  | "cox" -> { m with Mosfet.cox = v }
  | "cov" -> { m with Mosfet.cov = v }
  | "cj" -> { m with Mosfet.cj = v }
  | "avt" -> { m with Mosfet.avt = v }
  | "akp" -> { m with Mosfet.akp = v }
  | k -> Loc.fail ?file pos "unknown model parameter %S" k

let model_table ?file models env =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, m) -> Hashtbl.replace tbl k m) builtin_models;
  List.iter
    (fun md ->
      let base =
        match md.m_kind with `Nmos -> Mosfet.nmos_012 | `Pmos -> Mosfet.pmos_012
      in
      let m =
        List.fold_left
          (fun m (k, pos, e) ->
            apply_model_param ?file m (k, pos, eval ?file env e))
          base md.m_params
      in
      Hashtbl.replace tbl
        (String.lowercase_ascii md.m_name)
        { m with Mosfet.name = md.m_name })
    models;
  tbl

(* ---- flattening ------------------------------------------------------ *)

let to_source ?file env = function
  | Dc e -> Source.Dc (eval ?file env e)
  | Pulse es -> (
    match List.map (eval ?file env) es with
    | [ v1; v2; delay; rise; fall; width; period ] ->
      Source.Pulse { v1; v2; delay; rise; fall; width; period }
    | [ v1; v2; delay; rise; fall; width ] ->
      Source.Pulse { v1; v2; delay; rise; fall; width; period = 0.0 }
    | _ -> assert false (* arity checked at parse time *))
  | Sin es -> (
    match List.map (eval ?file env) es with
    | [ offset; ampl; freq ] -> Source.Sin { offset; ampl; freq; phase_deg = 0.0 }
    | [ offset; ampl; freq; _delay; _damp; phase_deg ] ->
      Source.Sin { offset; ampl; freq; phase_deg }
    | _ -> assert false)
  | Pwl es ->
    let rec pairs = function
      | [] -> []
      | t :: v :: rest -> (eval ?file env t, eval ?file env v) :: pairs rest
      | [ _ ] -> assert false
    in
    Source.Pwl (Array.of_list (pairs es))

let max_depth = 64

(* subcircuit scope: a chain of frames, innermost first.  Finding a
   definition in some frame means it was defined there, so its body
   sees its own locals on top of the chain from that frame outward —
   lexical scoping. *)
let rec lookup_sub scope name =
  match scope with
  | [] -> None
  | frame :: rest -> (
    match List.find_opt (fun s -> s.s_name = name) frame with
    | Some s -> Some (s, scope)
    | None -> lookup_sub rest name)

let emit_deck ?file net ~models ~scope ~env ?(root_port_map = [])
    ~deck_elements () =
  let guarded pos f =
    try f () with Invalid_argument msg -> Loc.fail ?file pos "%s" msg
  in
  let rec emit ~scope ~env ~prefix ~port_map ~depth el =
    let ctx_name name = prefix ^ name in
    let ctx_node node =
      let key = String.lowercase_ascii (String.trim node) in
      if key = "0" || key = "gnd" then node
      else
        match List.assoc_opt key port_map with
        | Some outer -> outer
        | None -> prefix ^ node
    in
    match el with
    | R { name; pos; n1; n2; value } ->
      guarded pos (fun () ->
          Netlist.resistor net (ctx_name name) (ctx_node n1) (ctx_node n2)
            (eval ?file env value))
    | C { name; pos; n1; n2; value } ->
      guarded pos (fun () ->
          Netlist.capacitor net (ctx_name name) (ctx_node n1) (ctx_node n2)
            (eval ?file env value))
    | V { name; pos; npos; nneg; src } ->
      guarded pos (fun () ->
          Netlist.vsource net (ctx_name name) (ctx_node npos) (ctx_node nneg)
            (to_source ?file env src))
    | I { name; pos; npos; nneg; src } ->
      guarded pos (fun () ->
          Netlist.isource net (ctx_name name) (ctx_node npos) (ctx_node nneg)
            (to_source ?file env src))
    | M { name; pos; drain; gate; source; bulk = _; model; model_pos; w; l } ->
      let m =
        match Hashtbl.find_opt models (String.lowercase_ascii model) with
        | Some m -> m
        | None -> Loc.fail ?file model_pos "unknown MOS model %S" model
      in
      guarded pos (fun () ->
          Netlist.mosfet net (ctx_name name) ~drain:(ctx_node drain)
            ~gate:(ctx_node gate) ~source:(ctx_node source) ~model:m
            ~w:(eval ?file env w) ~l:(eval ?file env l))
    | X { name; pos; nodes; sub; sub_pos; overrides } ->
      if depth >= max_depth then
        Loc.fail ?file pos "subcircuit nesting deeper than %d (recursion?)"
          max_depth;
      let s, def_scope =
        match lookup_sub scope sub with
        | Some found -> found
        | None -> Loc.fail ?file sub_pos "unknown subcircuit %S" sub
      in
      if List.length s.ports <> List.length nodes then
        Loc.fail ?file pos "subcircuit %S expects %d ports, got %d" sub
          (List.length s.ports) (List.length nodes);
      let inner_map =
        List.map2
          (fun port outer -> (String.lowercase_ascii port, ctx_node outer))
          s.ports nodes
      in
      (* overrides evaluate in the caller's scope and shadow the
         definition's defaults *)
      let inner_env = Hashtbl.copy env in
      List.iter
        (fun (k, e) -> Hashtbl.replace inner_env k (eval ?file env e))
        overrides;
      let defaults =
        List.filter
          (fun p -> not (List.mem_assoc p.p_name overrides))
          s.s_params
      in
      check_duplicates ?file s.s_params;
      resolve ?file ~tolerant:false defaults inner_env;
      List.iter
        (emit ~scope:(s.s_subs :: def_scope) ~env:inner_env
           ~prefix:(ctx_name name ^ ".") ~port_map:inner_map
           ~depth:(depth + 1))
        s.s_elements
  in
  List.iter
    (emit ~scope ~env ~prefix:"" ~port_map:root_port_map ~depth:0)
    deck_elements

let reject_range ?file what (p, _, _) =
  Loc.fail ?file p.p_pos
    "parameter %S has an optimisation {range}; %s" p.p_name what

let flatten ?file deck =
  check_duplicates ?file deck.params;
  let ranged, plain = split_params deck.params in
  (match ranged with
  | r :: _ ->
    reject_range ?file
      "a ranged deck must be instantiated (flow --netlist, or the \
       template API)"
      r
  | [] -> ());
  let env = Hashtbl.create 16 in
  resolve ?file ~tolerant:false plain env;
  let models = model_table ?file deck.models env in
  let net = Netlist.create () in
  emit_deck ?file net ~models ~scope:[ deck.subs ] ~env
    ~deck_elements:deck.elements ();
  net

(* ---- range templates ------------------------------------------------- *)

let rec first_ranged_ref ranged = function
  | Num _ -> None
  | Ref (n, pos) -> if Hashtbl.mem ranged n then Some (n, pos) else None
  | Neg e -> first_ranged_ref ranged e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b, _) -> (
    match first_ranged_ref ranged a with
    | Some _ as r -> r
    | None -> first_ranged_ref ranged b)
  | Call (_, args, _) ->
    List.find_map (first_ranged_ref ranged) args

let template ?file deck =
  check_duplicates ?file deck.params;
  let ranged, plain = split_params deck.params in
  if ranged = [] then
    Loc.fail ?file { Loc.line = 1; col = 1 }
      "deck has no {range lo hi} parameters to optimise";
  let ranged_names = Hashtbl.create 8 in
  List.iter (fun (p, _, _) -> Hashtbl.replace ranged_names p.p_name ()) ranged;
  (* bounds see the plain parameters that do not depend on ranged ones *)
  let bounds_env = Hashtbl.create 16 in
  resolve ?file ~tolerant:true plain bounds_env;
  let bound_of (p, lo, hi) =
    List.iter
      (fun e ->
        match first_ranged_ref ranged_names e with
        | Some (n, pos) ->
          Loc.fail ?file pos
            "range bounds may not reference ranged parameter %S" n
        | None -> ())
      [ lo; hi ];
    let lo = eval ?file bounds_env lo and hi = eval ?file bounds_env hi in
    if not (lo < hi) then
      Loc.fail ?file p.p_pos "empty range [%g, %g] for parameter %S" lo hi
        p.p_name;
    (lo, hi)
  in
  let ranged = Array.of_list ranged in
  let param_names = Array.map (fun (p, _, _) -> p.p_name) ranged in
  let bounds = Array.map bound_of ranged in
  let default = Array.map (fun (lo, hi) -> 0.5 *. (lo +. hi)) bounds in
  let instantiate x =
    if Array.length x <> Array.length param_names then
      invalid_arg
        (Printf.sprintf "Elab.instantiate: need %d parameters, got %d"
           (Array.length param_names) (Array.length x));
    let env = Hashtbl.create 16 in
    Array.iteri (fun i n -> Hashtbl.replace env n x.(i)) param_names;
    resolve ?file ~tolerant:false plain env;
    let models = model_table ?file deck.models env in
    let net = Netlist.create () in
    emit_deck ?file net ~models ~scope:[ deck.subs ] ~env
      ~deck_elements:deck.elements ();
    net
  in
  let fingerprint =
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i n ->
        let lo, hi = bounds.(i) in
        Buffer.add_string buf (Printf.sprintf "%s %.17g %.17g\n" n lo hi))
      param_names;
    Buffer.add_string buf (Netlist.to_spice (instantiate default));
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  { param_names; bounds; default; instantiate; fingerprint }

(* ---- standalone subcircuit elaboration ------------------------------- *)

let subckt_netlist ?file deck name =
  check_duplicates ?file deck.params;
  let ranged, plain = split_params deck.params in
  (match ranged with
  | r :: _ -> reject_range ?file "cannot elaborate a subcircuit from it" r
  | [] -> ());
  let key = String.lowercase_ascii name in
  let s =
    match List.find_opt (fun s -> s.s_name = key) deck.subs with
    | Some s -> s
    | None ->
      Loc.fail ?file { Loc.line = 1; col = 1 } "no .subckt %S in deck" name
  in
  let env = Hashtbl.create 16 in
  resolve ?file ~tolerant:false plain env;
  check_duplicates ?file s.s_params;
  resolve ?file ~tolerant:false s.s_params env;
  let models = model_table ?file deck.models env in
  let net = Netlist.create () in
  (* ports first, in declaration order, mapped to themselves so the body
     elaborates unprefixed *)
  List.iter (fun p -> ignore (Netlist.node net p)) s.ports;
  let port_map = List.map (fun p -> (String.lowercase_ascii p, p)) s.ports in
  emit_deck ?file net ~models
    ~scope:(s.s_subs :: [ deck.subs ])
    ~env ~root_port_map:port_map ~deck_elements:s.s_elements ();
  net

(* ---- structural equivalence ------------------------------------------ *)

type norm_el =
  | NR of string * string * string * float
  | NC of string * string * string * float
  | NV of string * string * string * Source.t
  | NI of string * string * string * Source.t
  | NM of
      string * string * string * string * Mosfet.model * float * float * float
      * float

let normalise net =
  let n id = String.lowercase_ascii (Netlist.node_name net id) in
  List.map
    (fun el ->
      match el with
      | Netlist.Resistor { name; n1; n2; value } -> NR (name, n n1, n n2, value)
      | Netlist.Capacitor { name; n1; n2; value } ->
        NC (name, n n1, n n2, value)
      | Netlist.Vsource { name; npos; nneg; source } ->
        NV (name, n npos, n nneg, source)
      | Netlist.Isource { name; npos; nneg; source } ->
        NI (name, n npos, n nneg, source)
      | Netlist.Mos { name; drain; gate; source; model; w; l; vth_shift;
                      kp_scale } ->
        NM (name, n drain, n gate, n source, model, w, l, vth_shift, kp_scale))
    (Netlist.elements net)

let same_netlist a b = normalise a = normalise b

(* ---- convenience ----------------------------------------------------- *)

let netlist_of_string ?file text = flatten ?file (Parse.deck ?file text)
let netlist_of_file path = flatten ~file:path (Parse.deck_of_file path)
let template_of_file path = template ~file:path (Parse.deck_of_file path)
