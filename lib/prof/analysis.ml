type row = {
  name : string;
  count : int;
  total_us : float;
  self_us : float;
  gc_minor_total : float; (* minor words allocated, incl. children *)
  gc_minor_self : float;
  gc_major_total : float;
  gc_minor_cols : int;
  gc_major_cols : int;
}

let child_sum f s =
  List.fold_left (fun acc c -> acc +. f c) 0.0 s.Event.children

(* self = total − direct children; clamped at 0 so clock jitter (or a
   child whose GC delta exceeds the parent's due to another domain's
   collection) never produces negative attribution *)
let self_dur s = Float.max 0.0 (Event.dur s -. child_sum Event.dur s)

let self_gc s key =
  Float.max 0.0
    (Event.gc_field s key -. child_sum (fun c -> Event.gc_field c key) s)

let self_time roots =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let r =
        match Hashtbl.find_opt tbl s.Event.name with
        | Some r -> r
        | None ->
          {
            name = s.Event.name;
            count = 0;
            total_us = 0.0;
            self_us = 0.0;
            gc_minor_total = 0.0;
            gc_minor_self = 0.0;
            gc_major_total = 0.0;
            gc_minor_cols = 0;
            gc_major_cols = 0;
          }
      in
      Hashtbl.replace tbl s.Event.name
        {
          r with
          count = r.count + 1;
          total_us = r.total_us +. Event.dur s;
          self_us = r.self_us +. self_dur s;
          gc_minor_total = r.gc_minor_total +. Event.gc_field s "gc.minor_w";
          gc_minor_self = r.gc_minor_self +. self_gc s "gc.minor_w";
          gc_major_total = r.gc_major_total +. Event.gc_field s "gc.major_w";
          gc_minor_cols =
            r.gc_minor_cols + int_of_float (Event.gc_field s "gc.minor_c");
          gc_major_cols =
            r.gc_major_cols + int_of_float (Event.gc_field s "gc.major_c");
        })
    (Event.flatten roots);
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare (b.self_us, b.name) (a.self_us, a.name))

let total_self rows = List.fold_left (fun acc r -> acc +. r.self_us) 0.0 rows

let default_busy name = name = "pool.chunk" || name = "pool.serial"

let find_span pred roots =
  let rec first = function
    | [] -> None
    | s :: rest -> (
      if pred s.Event.name then Some s
      else
        match first s.Event.children with
        | Some _ as r -> r
        | None -> first rest)
  in
  first roots

(* Per-domain busy fraction inside [t0, t1]: the time each tid spends
   inside "busy" spans (pool work by default), clipped to the window.
   Busy spans of one tid nest, so only the outermost matching span per
   tid/interval is counted (a pool.serial inside a pool.chunk would
   otherwise double-count). *)
let utilization ?(busy = default_busy) roots ~t0 ~t1 =
  let window = t1 -. t0 in
  if window <= 0.0 then []
  else begin
    (* keyed (pid, tid): in a merged trace every process has a tid 0,
       and mixing their busy time would fabricate utilization *)
    let acc : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
    let doms : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
    let rec walk s =
      let key = (s.Event.pid, s.Event.tid) in
      Hashtbl.replace doms key ();
      if busy s.Event.name then begin
        let overlap =
          Float.max 0.0 (Float.min t1 s.Event.t1 -. Float.max t0 s.Event.t0)
        in
        Hashtbl.replace acc key
          (overlap +. Option.value ~default:0.0 (Hashtbl.find_opt acc key))
        (* stop: nested busy spans are already covered *)
      end
      else List.iter walk s.Event.children
    in
    List.iter walk roots;
    Hashtbl.fold (fun key () acc' -> key :: acc') doms []
    |> List.sort compare
    |> List.map (fun key ->
           ( key,
             Option.value ~default:0.0 (Hashtbl.find_opt acc key) /. window ))
  end

(* flamegraph.pl-compatible folded stacks: "frame;frame;frame value"
   with self-time microseconds as the value, aggregated per path *)
let folded ?(labels = []) roots =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let root_frame s =
    let plabel =
      match List.assoc_opt s.Event.pid labels with
      | Some l -> l
      | None -> Printf.sprintf "pid%d" s.Event.pid
    in
    Printf.sprintf "%s/t%d" plabel s.Event.tid
  in
  let add path v =
    match Hashtbl.find_opt tbl path with
    | Some cur -> Hashtbl.replace tbl path (cur +. v)
    | None ->
      Hashtbl.add tbl path v;
      order := path :: !order
  in
  let rec walk prefix s =
    let path = prefix ^ ";" ^ s.Event.name in
    add path (self_dur s);
    List.iter (walk path) s.Event.children
  in
  List.iter (fun s -> walk (root_frame s) s) roots;
  let buf = Buffer.create 1024 in
  List.iter
    (fun path ->
      let v = int_of_float (Float.round (Hashtbl.find tbl path)) in
      if v > 0 then Printf.ksprintf (Buffer.add_string buf) "%s %d\n" path v)
    (List.rev !order);
  Buffer.contents buf
