module V = Repro_spice.Vco_measure
module Nsga2 = Repro_moo.Nsga2
module Prng = Repro_util.Prng
module E = Repro_engine

type scale = {
  vco_population : int;
  vco_generations : int;
  mc_samples : int;
  front_max : int;
  pll_population : int;
  pll_generations : int;
  yield_samples : int;
}

let paper_scale =
  {
    vco_population = 100;
    vco_generations = 30;
    mc_samples = 100;
    front_max = max_int;
    pll_population = 60;
    pll_generations = 20;
    yield_samples = 500;
  }

let bench_scale =
  {
    vco_population = 24;
    vco_generations = 10;
    mc_samples = 20;
    front_max = 10;
    pll_population = 24;
    pll_generations = 8;
    yield_samples = 200;
  }

let scale_of_env () = if E.Config.full () then paper_scale else bench_scale

type config = {
  seed : int;
  scale : scale;
  spec : Spec.t;
  measure : V.options;
  process : Repro_circuit.Process.spec;
  use_variation : bool;
  model_dir : string option;
}

let default_config ?(scale = bench_scale) () =
  {
    seed = 2009;
    scale;
    spec = Spec.default;
    measure = V.default_options;
    process = Repro_circuit.Process.default;
    use_variation = true;
    model_dir = None;
  }

type verification = {
  requested : V.performance;
  mapped : Repro_circuit.Topologies.vco_params;
  measured : (V.performance, string) result;
}

type result = {
  front : Vco_problem.sized_design array;
  entries : Variation_model.entry array;
  model : Perf_table.t;
  rows : Pll_problem.table2_row array;
  selected : Pll_problem.table2_row option;
  verification : verification option;
  yield : Repro_util.Stats.yield_estimate option;
  pll_config : Pll_problem.config;
}

let say progress fmt = Printf.ksprintf (fun s -> progress s) fmt

(* ---- evaluation-engine wiring ------------------------------------ *)

let cache_path cfg =
  Option.map (fun dir -> Filename.concat dir "eval.cache") cfg.model_dir

(* The cache persists across runs, so keys must change whenever the
   ambient configuration captured by the objective closures changes. *)
let config_salt cfg =
  Printf.sprintf "%08x"
    (Hashtbl.hash_param 256 256
       (cfg.spec, cfg.measure, cfg.process, cfg.use_variation))

let load_cache cfg =
  match cache_path cfg with
  | None -> E.Cache.create ()
  | Some path -> (
    match E.Cache.load_if_exists path with
    | Some cache -> cache
    | None -> E.Cache.create ())

let save_cache cfg cache progress =
  match cache_path cfg with
  | None -> ()
  | Some path -> (
    try
      E.Cache.save cache path;
      say progress "engine: %s saved to %s" (E.Cache.stats_line cache) path
    with Sys_error _ -> ())

let evaluator_of cfg cache =
  Repro_moo.Problem.parallel_evaluator ~cache ~salt:(config_salt cfg) ()

let pll_config_of cfg model =
  {
    (Pll_problem.default_config ~model) with
    Pll_problem.spec = cfg.spec;
    use_variation = cfg.use_variation;
  }

let verify_design cfg ~model (row : Pll_problem.table2_row) =
  let kvco = row.Pll_problem.kv and ivco = row.Pll_problem.iv in
  let requested =
    {
      V.kvco;
      ivco;
      jvco = Perf_table.jvco_of model ~kvco ~ivco;
      fmin = Perf_table.fmin_of model ~kvco ~ivco;
      fmax = Perf_table.fmax_of model ~kvco ~ivco;
    }
  in
  let mapped = Perf_table.params_of_perf model requested in
  let measured =
    match V.characterise ~options:cfg.measure mapped with
    | Ok p -> Ok p
    | Error f -> Error (V.failure_to_string f)
  in
  { requested; mapped; measured }

let run_system_level_inner ?(progress = fun _ -> ()) ?evaluator cfg ~model
    ~front ~entries =
  let scale = cfg.scale in
  let pll_cfg = pll_config_of cfg model in
  say progress "system level: NSGA-II %dx%d over (Kvco, Ivco, C1, C2, R1)%s"
    scale.pll_population scale.pll_generations
    (if cfg.use_variation then " with variation model"
     else " (nominal-only ablation)");
  let prng = Prng.create (cfg.seed + 77) in
  let pll_problem = Pll_problem.problem pll_cfg in
  let pll_pop =
    E.Telemetry.time "phase.system-ga" @@ fun () ->
    Nsga2.optimise
      ~options:
        {
          Nsga2.default_options with
          population = scale.pll_population;
          generations = scale.pll_generations;
        }
      ?evaluator pll_problem prng
  in
  let pll_front = Nsga2.pareto_front pll_pop in
  say progress "system level: %d Pareto solutions" (Array.length pll_front);
  let rows =
    Array.to_list pll_front
    |> List.filter_map (Pll_problem.row_of_individual pll_cfg)
    |> Array.of_list
  in
  let selected = Pll_problem.select_design pll_cfg rows in
  let verification =
    Option.map (fun row -> verify_design cfg ~model row) selected
  in
  let yield =
    Option.map
      (fun row ->
        say progress "yield: %d behavioural MC samples" scale.yield_samples;
        E.Telemetry.time "phase.yield" @@ fun () ->
        Yield.behavioural ~n:scale.yield_samples
          ~prng:(Prng.create (cfg.seed + 99))
          pll_cfg row)
      selected
  in
  say progress "engine: %s" (E.Telemetry.line ());
  { front; entries; model; rows; selected; verification; yield;
    pll_config = pll_cfg }

let run_system_level ?(progress = fun _ -> ()) cfg ~model =
  let cache = load_cache cfg in
  let result =
    run_system_level_inner ~progress ~evaluator:(evaluator_of cfg cache) cfg
      ~model
      ~front:
        (Array.map
           (fun e -> e.Variation_model.design)
           (Perf_table.entries model))
      ~entries:(Perf_table.entries model)
  in
  save_cache cfg cache progress;
  result

let run ?(progress = fun _ -> ()) cfg =
  let scale = cfg.scale in
  let cache = load_cache cfg in
  let evaluator = evaluator_of cfg cache in
  say progress "engine: %d worker(s), %s" (E.Config.jobs ())
    (E.Cache.stats_line cache);
  (* step 1: circuit-level MOO *)
  say progress "circuit level: NSGA-II %dx%d over 7 W/L parameters"
    scale.vco_population scale.vco_generations;
  let prng = Prng.create cfg.seed in
  let vco_problem = Vco_problem.problem ~measure_options:cfg.measure ~spec:cfg.spec () in
  let pop =
    E.Telemetry.time "phase.circuit-ga" @@ fun () ->
    Nsga2.optimise
      ~options:
        {
          Nsga2.default_options with
          population = scale.vco_population;
          generations = scale.vco_generations;
        }
      ~evaluator vco_problem prng
  in
  let full_front = Vco_problem.front_designs pop in
  if Array.length full_front < 2 then
    failwith "Hierarchy.run: circuit-level Pareto front is degenerate";
  say progress "circuit level: %d Pareto designs" (Array.length full_front);
  let front =
    if scale.front_max = max_int then full_front
    else Vco_problem.thin_front full_front ~max_points:scale.front_max
  in
  (* step 2: variation modelling *)
  say progress "variation model: %d MC samples x %d designs" scale.mc_samples
    (Array.length front);
  let entries =
    E.Telemetry.time "phase.variation-mc" @@ fun () ->
    Variation_model.analyse_front
      ~options:
        {
          Variation_model.samples = scale.mc_samples;
          process = cfg.process;
          measure = cfg.measure;
        }
      ~progress:(fun i n -> say progress "variation model: design %d/%d" (i + 1) n)
      ~prng:(Prng.create (cfg.seed + 13))
      front
  in
  (* step 3: combined table model *)
  let model = Perf_table.build entries in
  (match cfg.model_dir with
  | Some dir ->
    Perf_table.save ~dir model;
    say progress "table model saved to %s" dir
  | None -> ());
  (* steps 4-5 *)
  let result =
    run_system_level_inner ~progress ~evaluator cfg ~model ~front ~entries
  in
  save_cache cfg cache progress;
  result
