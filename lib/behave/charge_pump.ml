type t = { i_up : float; i_down : float; leakage : float }

let ideal icp =
  if icp <= 0.0 then invalid_arg "Charge_pump.ideal: icp must be positive";
  { i_up = icp; i_down = icp; leakage = 0.0 }

let with_mismatch ~icp ~mismatch =
  if icp <= 0.0 then invalid_arg "Charge_pump.with_mismatch: icp must be positive";
  {
    i_up = icp *. (1.0 +. (mismatch /. 2.0));
    i_down = icp *. (1.0 -. (mismatch /. 2.0));
    leakage = 0.0;
  }

let current t = function
  | Pfd.Up -> t.i_up -. t.leakage
  | Pfd.Neutral -> -.t.leakage
  | Pfd.Down -> -.t.i_down -. t.leakage

let average_current t ~duty =
  (duty *. 0.5 *. (t.i_up +. t.i_down)) +. Float.abs t.leakage
