module Prng = Repro_util.Prng

let sbx prng ~eta ~lo ~hi x1 x2 =
  if Float.abs (x1 -. x2) < 1e-14 then (x1, x2)
  else begin
    let u = Prng.uniform prng in
    let beta =
      if u <= 0.5 then (2.0 *. u) ** (1.0 /. (eta +. 1.0))
      else (1.0 /. (2.0 *. (1.0 -. u))) ** (1.0 /. (eta +. 1.0))
    in
    let c1 = 0.5 *. ((x1 +. x2) -. (beta *. Float.abs (x2 -. x1))) in
    let c2 = 0.5 *. ((x1 +. x2) +. (beta *. Float.abs (x2 -. x1))) in
    let clampv = Repro_util.Floatx.clamp ~lo ~hi in
    (clampv c1, clampv c2)
  end

let polynomial_mutation prng ~eta ~lo ~hi x =
  let span = hi -. lo in
  let u = Prng.uniform prng in
  let delta =
    if u < 0.5 then ((2.0 *. u) ** (1.0 /. (eta +. 1.0))) -. 1.0
    else 1.0 -. ((2.0 *. (1.0 -. u)) ** (1.0 /. (eta +. 1.0)))
  in
  Repro_util.Floatx.clamp ~lo ~hi (x +. (delta *. span))

let crossover_pair prng ~bounds ~crossover_prob ~eta_crossover p1 p2 =
  let c1 = Array.copy p1 and c2 = Array.copy p2 in
  if Prng.uniform prng < crossover_prob then
    Array.iteri
      (fun k (lo, hi) ->
        if Prng.bool prng then begin
          let a, b = sbx prng ~eta:eta_crossover ~lo ~hi c1.(k) c2.(k) in
          c1.(k) <- a;
          c2.(k) <- b
        end)
      bounds;
  (c1, c2)

let mutate_in_place prng ~bounds ~mutation_prob ~eta_mutation c =
  Array.iteri
    (fun k (lo, hi) ->
      if Prng.uniform prng < mutation_prob then
        c.(k) <- polynomial_mutation prng ~eta:eta_mutation ~lo ~hi c.(k))
    bounds
