(* splitmix64 finaliser, used to mix key components into one hash *)
let mix64 h k =
  let open Int64 in
  let z = add h (mul k 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Canonical bit pattern: all NaNs collapse to one payload and -0.0 to
   +0.0, so semantically equal vectors always share a key. *)
let canonical_bits v =
  if Float.is_nan v then Int64.bits_of_float Float.nan
  else if v = 0.0 then 0L
  else Int64.bits_of_float v

type key = {
  kind : string;
  sample : int; (* min_int encodes "no process-sample id" *)
  bits : int64 array;
  h : int;
}

let no_sample = min_int

let key ?(sample = no_sample) ~kind x =
  let bits = Array.map canonical_bits x in
  let h = ref (mix64 0L (Int64.of_int (Hashtbl.hash kind))) in
  h := mix64 !h (Int64.of_int sample);
  Array.iter (fun b -> h := mix64 !h b) bits;
  { kind; sample; bits; h = Int64.to_int !h land max_int }

let key_kind k = k.kind
let key_sample k = if k.sample = no_sample then None else Some k.sample
let key_id k = Printf.sprintf "%016x" k.h

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.h = b.h && a.sample = b.sample && String.equal a.kind b.kind
    && a.bits = b.bits

  let hash k = k.h
end)

type t = {
  capacity : int;
  table : float array Tbl.t;
  order : key Queue.t; (* insertion order, for FIFO eviction *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 200_000) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Tbl.create 1024;
    order = Queue.create ();
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t k =
  locked t (fun () ->
      match Tbl.find_opt t.table k with
      | Some v ->
        t.hits <- t.hits + 1;
        Some (Array.copy v)
      | None ->
        t.misses <- t.misses + 1;
        None)

let store t k v =
  locked t (fun () ->
      if not (Tbl.mem t.table k) then begin
        while Tbl.length t.table >= t.capacity do
          match Queue.take_opt t.order with
          | None -> Tbl.reset t.table (* unreachable: order covers table *)
          | Some oldest ->
            if Tbl.mem t.table oldest then begin
              Tbl.remove t.table oldest;
              t.evictions <- t.evictions + 1
            end
        done;
        Tbl.replace t.table k (Array.copy v);
        Queue.push k t.order
      end)

let find_or_compute t k f =
  match find t k with
  | Some v -> v
  | None ->
    let v = f () in
    store t k v;
    v

let length t = locked t (fun () -> Tbl.length t.table)
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_counters t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let stats_line t =
  locked t (fun () ->
      Printf.sprintf "cache: %d entries, %d hits / %d misses%s"
        (Tbl.length t.table) t.hits t.misses
        (if t.evictions > 0 then Printf.sprintf ", %d evicted" t.evictions
         else ""))

(* ---- persistence ------------------------------------------------- *)
(* Text format, one entry per line:
     kind <TAB> sample <TAB> b0,b1,... <TAB> v0,v1,...
   with key bits as hex int64 and values as lossless %h floats. *)

let magic = "hieropt-eval-cache 1"

let entry_to_line k v =
  let bits =
    String.concat ","
      (Array.to_list (Array.map (Printf.sprintf "%Lx") k.bits))
  in
  let vals =
    String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") v))
  in
  Printf.sprintf "%s\t%d\t%s\t%s" k.kind k.sample bits vals

let save t path =
  locked t (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (magic ^ "\n");
          Queue.iter
            (fun k ->
              match Tbl.find_opt t.table k with
              | None -> ()
              | Some v ->
                output_string oc (entry_to_line k v);
                output_char oc '\n')
            t.order))

let parse_line line =
  match String.split_on_char '\t' line with
  | [ kind; sample; bits; vals ] -> (
    try
      let sample = int_of_string sample in
      let parse_list f s =
        if s = "" then [||]
        else Array.of_list (List.map f (String.split_on_char ',' s))
      in
      let bits =
        parse_list (fun s -> Scanf.sscanf s "%Lx" Fun.id) bits
      in
      let vals = parse_list float_of_string vals in
      let h = ref (mix64 0L (Int64.of_int (Hashtbl.hash kind))) in
      h := mix64 !h (Int64.of_int sample);
      Array.iter (fun b -> h := mix64 !h b) bits;
      Some ({ kind; sample; bits; h = Int64.to_int !h land max_int }, vals)
    with _ -> None)
  | _ -> None

let entry_of_line = parse_line

let fold t f init =
  (* snapshot entries in insertion order under the mutex, then fold
     outside it so [f] may call back into the cache *)
  let entries =
    locked t (fun () ->
        Queue.fold
          (fun acc k ->
            match Tbl.find_opt t.table k with
            | None -> acc
            | Some v -> (k, Array.copy v) :: acc)
          [] t.order)
  in
  List.fold_left (fun acc (k, v) -> f acc k v) init (List.rev entries)

let find_by_id t id =
  locked t (fun () ->
      let found = ref None in
      (try
         Queue.iter
           (fun k ->
             if !found = None && key_id k = id then
               match Tbl.find_opt t.table k with
               | Some v ->
                 found := Some (k, Array.copy v);
                 raise Exit
               | None -> ())
           t.order
       with Exit -> ());
      !found)

let load ?capacity path =
  let t = create ?capacity () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | header when header = magic -> ()
      | _ -> failwith ("Cache.load: not a cache file: " ^ path)
      | exception End_of_file ->
        failwith ("Cache.load: empty cache file: " ^ path));
      (try
         while true do
           match parse_line (input_line ic) with
           | Some (k, v) -> store t k v
           | None -> () (* skip malformed lines *)
         done
       with End_of_file -> ());
      reset_counters t;
      t)

let load_if_exists ?capacity path =
  if Sys.file_exists path then try Some (load ?capacity path) with _ -> None
  else None
