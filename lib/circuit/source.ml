type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) array
  | Sin of { offset : float; ampl : float; freq : float; phase_deg : float }

let pulse_value p t =
  match p with
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    if t < delay then v1
    else begin
      let t = t -. delay in
      let t = if period > 0.0 then Float.rem t period else t in
      if t < rise then v1 +. ((v2 -. v1) *. t /. Float.max rise 1e-18)
      else if t < rise +. width then v2
      else if t < rise +. width +. fall then
        v2 +. ((v1 -. v2) *. (t -. rise -. width) /. Float.max fall 1e-18)
      else v1
    end
  | Dc _ | Pwl _ | Sin _ -> assert false

let pwl_value points t =
  let n = Array.length points in
  if n = 0 then 0.0
  else begin
    let t0, v0 = points.(0) in
    let tn, vn = points.(n - 1) in
    if t <= t0 then v0
    else if t >= tn then vn
    else begin
      (* largest i with time <= t *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if fst points.(mid) <= t then lo := mid else hi := mid
      done;
      let ta, va = points.(!lo) and tb, vb = points.(!hi) in
      va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
    end
  end

let value src t =
  match src with
  | Dc v -> v
  | Pulse _ -> pulse_value src t
  | Pwl points -> pwl_value points t
  | Sin { offset; ampl; freq; phase_deg } ->
    offset
    +. (ampl
       *. sin ((2.0 *. Float.pi *. freq *. t) +. (phase_deg *. Float.pi /. 180.0)))

let dc_value src = value src 0.0

let pp ppf = function
  | Dc v -> Format.fprintf ppf "DC %g" v
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    Format.fprintf ppf "PULSE(%g %g %g %g %g %g %g)" v1 v2 delay rise fall
      width period
  | Pwl points ->
    Format.fprintf ppf "PWL(";
    Array.iter (fun (t, v) -> Format.fprintf ppf "%g %g " t v) points;
    Format.fprintf ppf ")"
  | Sin { offset; ampl; freq; phase_deg } ->
    Format.fprintf ppf "SIN(%g %g %g 0 0 %g)" offset ampl freq phase_deg
