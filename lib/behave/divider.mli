(** Integer frequency divider (÷N) driven by VCO output edges. *)

type t

val create : int -> t
(** @raise Invalid_argument unless N >= 1. *)

val modulus : t -> int

val clock_edge : t -> bool
(** Feed one rising edge of the VCO output; returns [true] when the
    divider output produces its own rising edge (every N input edges). *)

val reset : t -> unit
