type params = { c1 : float; c2 : float; r1 : float }

let validate p =
  if p.c1 <= 0.0 || p.c2 <= 0.0 || p.r1 <= 0.0 then
    invalid_arg "Loop_filter: component values must be positive"

type state = { vctl : float; vc1 : float }

let initial v = { vctl = v; vc1 = v }

(* Backward Euler on
     C2 dvctl/dt = i_in - (vctl - vc1)/R1
     C1 dvc1/dt  = (vctl - vc1)/R1
   Solving the 2x2 implicit system analytically. *)
let step p s ~i_in ~dt =
  let a = dt /. (p.r1 *. p.c2) in
  let b = dt /. (p.r1 *. p.c1) in
  (* unknowns v = vctl', u = vc1':
     v (1 + a) - a u = vctl + dt i/C2
     -b v + (1 + b) u = vc1 *)
  let rhs1 = s.vctl +. (dt *. i_in /. p.c2) in
  let rhs2 = s.vc1 in
  let det = ((1.0 +. a) *. (1.0 +. b)) -. (a *. b) in
  let vctl = (((1.0 +. b) *. rhs1) +. (a *. rhs2)) /. det in
  let vc1 = ((b *. rhs1) +. ((1.0 +. a) *. rhs2)) /. det in
  { vctl; vc1 }

let impedance p w =
  let open Complex in
  let s = { re = 0.0; im = w } in
  (* Z = (1 + s R1 C1) / (s (C1 + C2) (1 + s R1 Cs)), Cs = C1 C2/(C1+C2) *)
  let cs = p.c1 *. p.c2 /. (p.c1 +. p.c2) in
  let one = { re = 1.0; im = 0.0 } in
  let num = add one (mul s { re = p.r1 *. p.c1; im = 0.0 }) in
  let den =
    mul
      (mul s { re = p.c1 +. p.c2; im = 0.0 })
      (add one (mul s { re = p.r1 *. cs; im = 0.0 }))
  in
  div num den

let pole_zero p =
  let cs = p.c1 *. p.c2 /. (p.c1 +. p.c2) in
  (1.0 /. (p.r1 *. p.c1), 1.0 /. (p.r1 *. cs), p.c1 +. p.c2)
