(* Circuit-level multi-objective sizing (the paper's §4.1-4.3): run a
   small NSGA-II over the 7 W/L parameters, print the Pareto trade-off
   and compare against random search at the same simulation budget.

   Run with:              dune exec examples/vco_sizing.exe
   Bigger GA (paper-ish): HIEROPT_FULL=1 dune exec examples/vco_sizing.exe *)

module H = Hieropt
module M = Repro_moo
module V = Repro_spice.Vco_measure

let () =
  let scale = H.Hierarchy.scale_of_env () in
  let pop = scale.H.Hierarchy.vco_population
  and gens = scale.H.Hierarchy.vco_generations in
  Format.printf "NSGA-II %dx%d over the ring-VCO design space %a@." pop gens
    H.Spec.pp H.Spec.default;
  let problem = H.Vco_problem.problem () in
  let prng = Repro_util.Prng.create 7 in
  let t0 = Sys.time () in
  let population =
    M.Nsga2.optimise
      ~options:{ M.Nsga2.default_options with population = pop; generations = gens }
      ~on_generation:(fun gen p ->
        let feasible =
          Array.length
            (Array.of_list
               (List.filter
                  (fun ind -> M.Problem.feasible ind.M.Nsga2.evaluation)
                  (Array.to_list p)))
        in
        Format.printf "  generation %2d: %d/%d band-covering designs@." gen
          feasible (Array.length p))
      problem prng
  in
  Format.printf "GA done in %.0f s CPU@." (Sys.time () -. t0);
  let front = H.Vco_problem.front_designs population in
  Format.printf "@.%s@." (H.Experiments.fig7_front front);
  (* the headline comparison: same budget of transistor-level evaluations
     spent on pure random search finds a much worse front *)
  let budget = pop * (gens + 1) in
  Format.printf "random search at the same budget (%d evaluations)...@." budget;
  let rs =
    M.Baselines.random_search ~evaluations:budget problem
      (Repro_util.Prng.create 8)
  in
  let rs_front = H.Vco_problem.front_designs rs in
  let best_jitter designs =
    Array.fold_left
      (fun acc d -> Float.min acc d.H.Vco_problem.perf.V.jvco)
      infinity designs
  in
  Format.printf "  NSGA-II:       %d feasible Pareto designs, best jitter %.3f ps@."
    (Array.length front)
    (1e12 *. best_jitter front);
  Format.printf "  random search: %d feasible Pareto designs, best jitter %s@."
    (Array.length rs_front)
    (match best_jitter rs_front with
    | j when Float.is_finite j -> Printf.sprintf "%.3f ps" (1e12 *. j)
    | _ -> "none found")
