let flag name =
  match Sys.getenv_opt name with
  | Some v when v <> "" && v <> "0" -> true
  | Some _ | None -> false

let int_var name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some v -> int_of_string_opt (String.trim v)

let full () = flag "HIEROPT_FULL"

type solver_mode = Dense | Sparse | Auto

let solver_mode_name = function
  | Dense -> "dense"
  | Sparse -> "sparse"
  | Auto -> "auto"

let solver_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | "auto" | "" -> Some Auto
  | _ -> None

let solver_override = ref None
let set_solver m = solver_override := m

let solver () =
  match !solver_override with
  | Some m -> m
  | None -> (
    match Sys.getenv_opt "HIEROPT_SOLVER" with
    | None -> Auto
    | Some v -> (
      match solver_mode_of_string v with
      | Some m -> m
      | None ->
        Printf.eprintf
          "warning: HIEROPT_SOLVER=%s not recognised (dense|sparse|auto); \
           using auto\n\
           %!"
          v;
        Auto))

let jobs_override = ref None
let set_jobs n = jobs_override := if n <= 0 then None else Some n

let jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
    match int_var "HIEROPT_JOBS" with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
