(** Blocking HTTP client for the model server — stdlib sockets only,
    with keep-alive: one connection is cached per client and reused
    across calls (calls on one [t] are serialised by a mutex; use one
    client per thread for parallel traffic).  A reused socket the
    server idled out in the meantime is replaced transparently.  The
    typed helpers target the [/v1] API.  Transient failures (connection
    refused, reset, timeout) are retried with full-jitter exponential
    backoff (uniform in [0, 50ms·2^n], capped at 2s), so a fleet of
    clients losing one endpoint never retries in lockstep;
    protocol-level errors (4xx/5xx, malformed JSON) are not retried.
    Connection refused counts as transient on purpose — the retry loop
    doubles as the startup-readiness wait against a worker that is
    still binding.

    Because both ends use {!Json}'s lossless float encoding,
    {!query_points} returns floats bit-identical to calling
    {!Hieropt.Perf_table.eval_points} on the served table directly. *)

type t

type error =
  | Connect_failure of string  (** could not reach the server (after retries) *)
  | Http_error of { status : int; body : string }
  | Protocol_error of string   (** malformed response *)

val error_to_string : error -> string

val create :
  ?host:string ->      (* default "127.0.0.1" *)
  ?port:int ->         (* default 8190 *)
  ?timeout:float ->    (* per-call socket timeout, seconds, default 10. *)
  ?retries:int ->      (* transient-failure retries, default 2 *)
  unit ->
  t

val shutdown : t -> unit
(** Close the cached keep-alive connection (if any).  The client
    remains usable — the next call reconnects.  Call it when a client
    is done, to release the socket promptly. *)

val get :
  ?headers:(string * string) list -> t -> string ->
  (Http.response, error) result

val post :
  ?headers:(string * string) list -> t -> string -> body:string ->
  (Http.response, error) result

val put :
  ?headers:(string * string) list -> t -> string -> body:string ->
  (Http.response, error) result
(** Extra request headers ride alongside Host.  When this process is
    tracing, every call additionally carries [X-Trace-Id] and
    [X-Parent-Span] (the innermost open span) so traced servers can tag
    their handler spans with the caller's context. *)

val get_json : t -> string -> (Json.t, error) result
(** GET expecting a 200 with a JSON body. *)

val query_points :
  t ->
  model:string ->
  (float * float) array ->
  (Hieropt.Perf_table.point_eval array, error) result
(** POST the (kvco, ivco) batch to [/v1/models/:model/query] and decode
    the results, checking count and order. *)

val verify_point :
  t ->
  model:string ->
  Repro_spice.Vco_measure.performance ->
  ((string * float) list, error) result
(** POST to [/v1/models/:model/verify]; returns the recovered parameter
    (name, value) pairs in vector order. *)

val wait_ready : ?deadline:float -> t -> bool
(** Poll [/v1/healthz] until it answers 200 or [deadline] seconds
    (default 5) elapse.  For scripts that just forked a server. *)
