type t = {
  size : int;
  mutable domains : unit Domain.t array;
  mutex : Mutex.t;
  ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
}

(* Set while a task runs on a worker domain: nested parallel calls fall
   back to the serial path instead of deadlocking on a busy pool. *)
let in_worker = Domain.DLS.new_key (fun () -> false)
let inside_worker () = Domain.DLS.get in_worker

let worker_loop t () =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock t.mutex;
    let rec await () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if not t.live then None
      else begin
        Condition.wait t.ready t.mutex;
        await ()
      end
    in
    let task = await () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
      (try task () with _ -> ());
      next ()
  in
  next ()

let create ?size () =
  let size = match size with Some s -> max 1 s | None -> Config.jobs () in
  let t =
    {
      size;
      domains = [||];
      mutex = Mutex.create ();
      ready = Condition.create ();
      queue = Queue.create ();
      live = true;
    }
  in
  (* the caller participates in every parallel region, so a pool of
     [size] workers spawns [size - 1] domains *)
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

(* time-in-queue between [submit] and a worker picking the task up —
   the pool-level starvation signal (always-on: histograms never touch
   evaluation state, matching dist/serve latency instrumentation) *)
let queue_wait = lazy (Repro_obs.Histogram.get "pool.queue_wait")

let submit t task =
  let enqueued = Unix.gettimeofday () in
  let task () =
    Repro_obs.Histogram.observe (Lazy.force queue_wait)
      (Unix.gettimeofday () -. enqueued);
    task ()
  in
  Mutex.lock t.mutex;
  if not t.live then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.ready;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.ready;
  Mutex.unlock t.mutex;
  if was_live then Array.iter Domain.join t.domains

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_pool = ref None

let get_default () =
  match !default_pool with
  | Some t when t.live -> t
  | _ ->
    let t = create () in
    (match !default_pool with
    | None -> at_exit (fun () -> match !default_pool with
        | Some p -> shutdown p
        | None -> ())
    | Some _ -> ());
    default_pool := Some t;
    t

(* How many domains are inside a chunk right now; sampled into a Chrome
   counter track so a trace shows utilization (and starvation) over
   time.  Only touched while tracing is on. *)
let busy = Atomic.make 0

(* Chunked index dispatch: every participating domain repeatedly claims a
   contiguous index range from a shared counter and runs [body] on it.
   [body] must not raise (callers wrap exceptions themselves) and writes
   only to per-index slots, so any worker count yields the same output. *)
let run_items ?chunk t n body =
  if n > 0 then begin
    let workers = min t.size n in
    if workers <= 1 || inside_worker () then
      Repro_obs.Trace.span "pool.serial"
        ~args:[ ("items", string_of_int n) ]
        (fun () ->
          for i = 0 to n - 1 do
            body i
          done)
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (n / (workers * 8))
      in
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let m = Mutex.create () in
      let finished = Condition.create () in
      let driver () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else begin
            let stop = min n (start + chunk) in
            (* [traced] sampled once so the counter track stays balanced
               even if tracing stops mid-chunk *)
            let traced = Repro_obs.Trace.enabled () in
            if traced then
              Repro_obs.Trace.counter "pool.busy_domains"
                (Atomic.fetch_and_add busy 1 + 1);
            Repro_obs.Trace.span "pool.chunk"
              ~args:
                [
                  ("first", string_of_int start);
                  ("items", string_of_int (stop - start));
                ]
              (fun () ->
                for i = start to stop - 1 do
                  body i
                done);
            if traced then
              Repro_obs.Trace.counter "pool.busy_domains"
                (Atomic.fetch_and_add busy (-1) - 1);
            let done_now =
              Atomic.fetch_and_add completed (stop - start) + (stop - start)
            in
            if done_now >= n then begin
              Mutex.lock m;
              Condition.broadcast finished;
              Mutex.unlock m
            end
          end
        done
      in
      for _ = 2 to workers do
        submit t driver
      done;
      driver ();
      Mutex.lock m;
      while Atomic.get completed < n do
        Condition.wait finished m
      done;
      Mutex.unlock m
    end
  end
