(** Minimal HTTP/1.1 message layer over [Unix] file descriptors: just
    enough protocol for the model server and its blocking client —
    request/response lines, headers, [Content-Length] bodies,
    keep-alive.  No chunked transfer, no TLS, no pipelined writes.

    Every read goes through a {!Reader}, a small pull buffer that can
    also wrap an in-memory string (unit tests parse messages without a
    socket).  Hard limits (line length, header count, body size) turn
    hostile or corrupt input into [`Bad_request]/[`Too_large] instead
    of unbounded allocation. *)

module Reader : sig
  type t

  val of_fd : Unix.file_descr -> t
  val of_string : string -> t
end

val max_body : int
(** Largest accepted [Content-Length], in bytes. *)

val max_head : int
(** Backstop for incremental parsing: the largest head block (request
    line + headers + blank line) a {!Conn} will buffer before giving up
    with [`Too_large].  Looser than the per-line/per-count limits that
    apply once the block parses. *)

type request = {
  meth : string;         (** verb, uppercased: GET, POST, ... *)
  target : string;       (** raw request target, e.g. /models/a/query?x=1 *)
  path : string list;    (** decoded, non-empty segments: ["models"; "a"; "query"] *)
  version : string;      (** "HTTP/1.0" or "HTTP/1.1" *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;  (** names lowercased *)
  resp_body : string;
}

type error =
  [ `Eof           (** clean end of stream before a message started *)
  | `Timeout       (** the fd's receive timeout expired *)
  | `Bad_request of string
  | `Too_large of string ]

val error_to_string : error -> string

val header : string -> (string * string) list -> string option
(** Case-insensitive header lookup (names are stored lowercased). *)

val read_request : Reader.t -> (request, error) result
val read_response : Reader.t -> (response, error) result

val body_length : (string * string) list -> (int, error) result
(** Bytes of body the headers announce: [Content-Length] validated
    against {!max_body}, 0 when absent, [`Bad_request] on
    [Transfer-Encoding] (chunked is not supported). *)

val parse_request_head : string -> (request, error) result
(** Parse a complete head block — request line through the terminating
    blank line — delivered by the incremental state machine.  The
    returned [body] is [""]; callers read {!body_length} more bytes. *)

val parse_response_head : string -> (response, error) result
(** Same, for the client side ([resp_body] is [""]). *)

val keep_alive : request -> bool
(** HTTP/1.1 defaults to persistent connections; [Connection: close]
    (or HTTP/1.0 without [Connection: keep-alive]) turns it off. *)

val reason_phrase : int -> string

val render_response :
  ?headers:(string * string) list ->
  keep_alive:bool ->
  status:int ->
  body:string ->
  Buffer.t ->
  unit
(** Serialise one response into [buf] — the single source of response
    bytes, shared by {!write_response} and the event-loop write path so
    both emit identical wire output. *)

val write_response :
  ?headers:(string * string) list ->
  keep_alive:bool ->
  status:int ->
  body:string ->
  Unix.file_descr ->
  unit
(** Serialise one response (status line, supplied headers,
    [Content-Length], [Connection]) and write it fully.
    [Content-Type: application/json] is added unless [headers] already
    carries a content type.
    @raise Unix.Unix_error when the peer is gone. *)

val write_request :
  ?headers:(string * string) list ->
  meth:string ->
  target:string ->
  body:string ->
  Unix.file_descr ->
  unit
