type config = {
  fref : float;
  n_div : int;
  cp : Charge_pump.t;
  filter : Loop_filter.params;
  vco : Vco_model.params;
  ivco : float;
  overhead_current : float;
  vctl_init : float;
}

let target_frequency cfg = float_of_int cfg.n_div *. cfg.fref

type sim_options = {
  t_stop : float;
  dt : float;
  lock_tolerance : float;
  lock_hold : float;
  record_stride : int;
}

let default_sim_options cfg =
  let tref = 1.0 /. cfg.fref in
  {
    t_stop = 2e-6;
    dt = tref /. 200.0;
    lock_tolerance = 5e-3;
    lock_hold = 10.0 *. tref;
    record_stride = 20;
  }

type sim_result = {
  locked : bool;
  lock_time : float option;
  vctl_trace : (float * float) array;
  freq_trace : (float * float) array;
  final_vctl : float;
  final_freq : float;
  cp_duty : float;
}

let simulate ?prng cfg opts =
  Loop_filter.validate cfg.filter;
  Vco_model.validate cfg.vco;
  if opts.dt <= 0.0 || opts.t_stop <= opts.dt then
    invalid_arg "Pll.simulate: bad time settings";
  let pfd = Pfd.create () in
  let divider = Divider.create cfg.n_div in
  let vco = Vco_model.create ?prng cfg.vco in
  let filter = ref (Loop_filter.initial cfg.vctl_init) in
  let f_target = target_frequency cfg in
  let n_steps = int_of_float (Float.ceil (opts.t_stop /. opts.dt)) in
  let vctl_trace = ref [] and freq_trace = ref [] in
  let ref_phase = ref 0.0 in
  (* Lock detection runs on the frequency averaged over each reference
     cycle: the instantaneous frequency carries the Icp*R1 ripple step
     whenever the pump fires, which would bounce a sample-based detector
     out of band forever. *)
  let in_band_since = ref None in
  let lock_time = ref None in
  let active_steps = ref 0 and post_lock_steps = ref 0 in
  let freq_acc = ref 0.0 and cycle_start = ref 0.0 in
  let f_cycle_avg = ref None in
  for step = 0 to n_steps - 1 do
    let t = float_of_int step *. opts.dt in
    (* reference edge *)
    let before = !ref_phase in
    ref_phase := before +. (cfg.fref *. opts.dt);
    let ref_edge_now = Float.floor !ref_phase > Float.floor before in
    if ref_edge_now then Pfd.ref_edge pfd;
    (* VCO + divider *)
    let edges = Vco_model.advance vco ~vctl:!filter.Loop_filter.vctl ~dt:opts.dt in
    for _ = 1 to edges do
      if Divider.clock_edge divider then Pfd.div_edge pfd
    done;
    (* charge pump into the filter *)
    let state = Pfd.state pfd in
    let i = Charge_pump.current cfg.cp state in
    if state <> Pfd.Neutral then begin
      incr active_steps;
      if !lock_time <> None then incr post_lock_steps
    end;
    filter := Loop_filter.step cfg.filter !filter ~i_in:i ~dt:opts.dt;
    let f_now = Vco_model.frequency cfg.vco !filter.Loop_filter.vctl in
    freq_acc := !freq_acc +. (f_now *. opts.dt);
    if ref_edge_now && t > !cycle_start then begin
      let f_avg = !freq_acc /. (t -. !cycle_start) in
      f_cycle_avg := Some f_avg;
      freq_acc := 0.0;
      cycle_start := t;
      let err = Float.abs (f_avg -. f_target) /. f_target in
      if err <= opts.lock_tolerance then begin
        (match !in_band_since with
        | None -> in_band_since := Some t
        | Some _ -> ());
        match (!lock_time, !in_band_since) with
        | None, Some t0 when t -. t0 >= opts.lock_hold -> lock_time := Some t0
        | (None | Some _), _ -> ()
      end
      else begin
        in_band_since := None;
        lock_time := None
      end
    end;
    if step mod opts.record_stride = 0 then begin
      vctl_trace := (t, !filter.Loop_filter.vctl) :: !vctl_trace;
      let f_plot = match !f_cycle_avg with Some f -> f | None -> f_now in
      freq_trace := (t, f_plot) :: !freq_trace
    end
  done;
  let final_vctl = !filter.Loop_filter.vctl in
  let final_freq = Vco_model.frequency cfg.vco final_vctl in
  let cp_duty =
    (* activity after lock (near zero for a clean loop); falls back to the
       whole-run duty when lock never happened *)
    match !lock_time with
    | Some t0 ->
      let steps_after = n_steps - int_of_float (t0 /. opts.dt) in
      if steps_after > 0 then
        float_of_int !post_lock_steps /. float_of_int steps_after
      else 0.0
    | None -> float_of_int !active_steps /. float_of_int n_steps
  in
  {
    locked = !lock_time <> None;
    lock_time = !lock_time;
    vctl_trace = Array.of_list (List.rev !vctl_trace);
    freq_trace = Array.of_list (List.rev !freq_trace);
    final_vctl;
    final_freq;
    cp_duty;
  }

type performance = {
  lock_time : float;
  jitter_sum : float;
  current : float;
}

let pp_performance ppf p =
  Format.fprintf ppf "lock=%.3f us jitter=%.2f ps current=%.2f mA"
    (p.lock_time *. 1e6) (p.jitter_sum *. 1e12) (p.current *. 1e3)

let loop_of_config cfg =
  {
    Pll_linear.kvco = cfg.vco.Vco_model.kvco;
    icp = 0.5 *. (cfg.cp.Charge_pump.i_up +. cfg.cp.Charge_pump.i_down);
    n_div = cfg.n_div;
    filter = cfg.filter;
  }

let evaluate ?sim_options cfg =
  let opts =
    match sim_options with Some o -> o | None -> default_sim_options cfg
  in
  match Pll_linear.analyse (loop_of_config cfg) with
  | None -> Error "loop has no unity-gain crossing"
  | Some a ->
    if not a.Pll_linear.stable then
      Error
        (Printf.sprintf "unstable loop (phase margin %.1f deg)"
           a.Pll_linear.phase_margin_deg)
    else begin
      (* No hard Gardner-limit rejection here: the time-domain simulation
         already models the discrete charge-pump granularity, so loops
         with bandwidth too close to the reference simply fail to settle
         and are caught by the lock check below. *)
      let sim = simulate cfg opts in
      match sim.lock_time with
      | None -> Error "did not lock within the simulated window"
      | Some lock_time ->
        let f_out = target_frequency cfg in
        (* Kundert accumulation: the loop stops correcting phase drift
           faster than its bandwidth, so jitter accumulates over
           tau_loop = 1/(2 pi fc) and J = jvco sqrt(2 fout tau). *)
        let tau = 1.0 /. (2.0 *. Float.pi *. a.Pll_linear.unity_freq) in
        let jitter_sum =
          cfg.vco.Vco_model.jitter *. sqrt (2.0 *. f_out *. tau)
        in
        let current =
          cfg.ivco +. cfg.overhead_current
          +. Charge_pump.average_current cfg.cp ~duty:sim.cp_duty
        in
        Ok { lock_time; jitter_sum; current }
    end

(* open-loop accumulation probe: RMS time error after [cycles] cycles,
   averaged over independent trials — approximates the closed-loop jitter
   sum when cycles ~ 2 fout tau_loop *)
let measured_output_jitter ~prng cfg ~cycles =
  if cycles <= 0 then invalid_arg "Pll.measured_output_jitter: cycles";
  let f_out = target_frequency cfg in
  let vctl_lock =
    cfg.vco.Vco_model.v0
    +. ((f_out -. cfg.vco.Vco_model.f0) /. cfg.vco.Vco_model.kvco)
  in
  let trials = 32 in
  let errors =
    Array.init trials (fun _ ->
        let vco = Vco_model.create ~prng:(Repro_util.Prng.split prng) cfg.vco in
        let dt = 1.0 /. (4.0 *. f_out) in
        let target_phi = float_of_int cycles in
        let rec spin t =
          if Vco_model.phase vco >= target_phi then begin
            (* interpolate the time at which phase hit the target *)
            let f = Vco_model.frequency cfg.vco vctl_lock in
            let overshoot = (Vco_model.phase vco -. target_phi) /. f in
            t -. overshoot
          end
          else begin
            ignore (Vco_model.advance vco ~vctl:vctl_lock ~dt);
            spin (t +. dt)
          end
        in
        let t_hit = spin 0.0 in
        t_hit -. (target_phi /. f_out))
  in
  Repro_util.Stats.stddev errors

let reference_spur_dbc cfg =
  let mismatch_current =
    (* residual correction charge per cycle due to up/down imbalance,
       spread over the reference period at a small locked duty *)
    0.05 *. Float.abs (cfg.cp.Charge_pump.i_up -. cfg.cp.Charge_pump.i_down)
  in
  let i_err = Float.abs cfg.cp.Charge_pump.leakage +. mismatch_current in
  if i_err <= 0.0 then neg_infinity
  else begin
    let z =
      Complex.norm
        (Loop_filter.impedance cfg.filter (2.0 *. Float.pi *. cfg.fref))
    in
    let v_ripple = i_err *. z in
    let deviation = cfg.vco.Vco_model.kvco *. v_ripple in
    20.0 *. log10 (deviation /. (2.0 *. cfg.fref))
  end
