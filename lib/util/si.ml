let suffix_value = function
  | "f" -> Some 1e-15
  | "p" -> Some 1e-12
  | "n" -> Some 1e-9
  | "u" -> Some 1e-6
  | "m" -> Some 1e-3
  | "k" -> Some 1e3
  | "meg" -> Some 1e6
  | "g" -> Some 1e9
  | "t" -> Some 1e12
  | "" -> Some 1.0
  | _ -> None

let parse_opt s =
  let s = String.trim (String.lowercase_ascii s) in
  let n = String.length s in
  if n = 0 then None
  else begin
    (* longest numeric prefix *)
    let is_num_char c =
      match c with
      | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
      | _ -> false
    in
    (* 'e' is numeric only when followed by digits/sign; handle "meg" whose
       'm' terminates the number. Scan greedily, then backtrack on parse
       failure. *)
    let rec split i =
      if i < n && is_num_char s.[i] then split (i + 1) else i
    in
    let rec try_at i =
      if i = 0 then None
      else
        let num = String.sub s 0 i and suf = String.sub s i (n - i) in
        match (float_of_string_opt num, suffix_value suf) with
        | Some v, Some m -> Some (v *. m)
        | _ -> try_at (i - 1)
    in
    try_at (split 0)
  end

let parse s =
  match parse_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Si.parse: malformed value %S" s)

(* SPICE suffixes are case-insensitive, so the parseable rendering must
   use "meg" (not "M", which reads back as milli) *)
let spice_prefixes =
  [| (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
     (1.0, ""); (1e3, "k"); (1e6, "meg"); (1e9, "g"); (1e12, "t") |]

let display_prefixes =
  [| (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
     (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G"); (1e12, "T") |]

let format_with prefixes x =
  if x = 0.0 then "0"
  else if not (Float.is_finite x) then string_of_float x
  else begin
    let ax = Float.abs x in
    let scale, suffix =
      let chosen = ref prefixes.(0) in
      Array.iter
        (fun (s, _ as p) -> if ax >= s *. 0.9999995 then chosen := p)
        prefixes;
      !chosen
    in
    let v = x /. scale in
    Printf.sprintf "%.4g%s" v suffix
  end

let format x = format_with spice_prefixes x
let format_unit x u = format_with display_prefixes x ^ u
