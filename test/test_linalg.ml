module Vec = Repro_linalg.Vec
module Matrix = Repro_linalg.Matrix
module Lu = Repro_linalg.Lu

let checkf msg = Alcotest.(check (float 1e-9)) msg

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  checkf "dot" 32.0 (Vec.dot x y);
  checkf "norm2" (sqrt 14.0) (Vec.norm2 x);
  checkf "norm_inf" 3.0 (Vec.norm_inf x);
  checkf "max_abs_diff" 3.0 (Vec.max_abs_diff x y);
  let z = Vec.copy y in
  Vec.axpy ~alpha:2.0 x z;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] z;
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add x y);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub x y)

let test_matrix_basics () =
  let m = Matrix.create 2 3 in
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 3 (Matrix.cols m);
  Matrix.set m 1 2 5.0;
  checkf "set/get" 5.0 (Matrix.get m 1 2);
  Matrix.add_to m 1 2 2.0;
  checkf "add_to" 7.0 (Matrix.get m 1 2);
  Matrix.clear m;
  checkf "clear" 0.0 (Matrix.get m 1 2)

let test_matrix_bad_index () =
  let m = Matrix.create 2 2 in
  Alcotest.(check bool) "oob raises" true
    (try ignore (Matrix.get m 2 0); false with Invalid_argument _ -> true)

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  Alcotest.(check (array (array (float 1e-12)))) "mul"
    [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]
    (Matrix.to_arrays c)

let test_matrix_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 5.0; 11.0 |]
    (Matrix.mul_vec a [| 1.0; 2.0 |])

let test_transpose () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Matrix.transpose a in
  Alcotest.(check (array (array (float 1e-12)))) "transpose"
    [| [| 1.0; 4.0 |]; [| 2.0; 5.0 |]; [| 3.0; 6.0 |] |]
    (Matrix.to_arrays t)

let test_identity () =
  let i3 = Matrix.identity 3 in
  let a =
    Matrix.of_arrays
      [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 1.0; 3.0 |]; [| 4.0; 0.0; 1.0 |] |]
  in
  Alcotest.(check (array (array (float 1e-12)))) "I * A = A"
    (Matrix.to_arrays a)
    (Matrix.to_arrays (Matrix.mul i3 a))

let test_lu_solve_known () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve a [| 5.0; 10.0 |] in
  Alcotest.(check (array (float 1e-9))) "2x2 solve" [| 1.0; 3.0 |] x

let test_lu_needs_pivoting () =
  (* zero on the leading diagonal forces a row swap *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve a [| 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "pivot solve" [| 3.0; 2.0 |] x

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular raises" true
    (try ignore (Lu.solve a [| 1.0; 1.0 |]); false with Lu.Singular _ -> true);
  checkf "det of singular" 0.0 (Lu.det a)

let test_det () =
  let a = Matrix.of_arrays [| [| 3.0; 8.0 |]; [| 4.0; 6.0 |] |] in
  checkf "det 2x2" (-14.0) (Lu.det a);
  let b =
    Matrix.of_arrays
      [| [| 6.0; 1.0; 1.0 |]; [| 4.0; -2.0; 5.0 |]; [| 2.0; 8.0; 7.0 |] |]
  in
  Alcotest.(check (float 1e-6)) "det 3x3" (-306.0) (Lu.det b)

let test_inverse () =
  let a = Matrix.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse a in
  let prod = Matrix.mul a inv in
  let i = Matrix.identity 2 in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Matrix.norm_inf
       (Matrix.of_arrays
          (Array.map2 (Array.map2 ( -. )) (Matrix.to_arrays prod)
             (Matrix.to_arrays i)))
    < 1e-12)

let test_condition () =
  Alcotest.(check bool) "identity well-conditioned" true
    (Lu.condition_estimate (Matrix.identity 4) = 1.0);
  let sing = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  Alcotest.(check bool) "singular condition infinite" true
    (Lu.condition_estimate sing = infinity)

(* property: LU solves random diagonally-dominant systems accurately *)
let prop_lu_random_solve =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 1 8) (fun n ->
          let* entries =
            array_size (return (n * n)) (float_range (-10.0) 10.0)
          in
          let* rhs = array_size (return n) (float_range (-10.0) 10.0) in
          return (n, entries, rhs)))
  in
  QCheck.Test.make ~name:"LU solves random dominant systems" ~count:200
    (QCheck.make gen) (fun (n, entries, rhs) ->
      let m = Matrix.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Matrix.set m i j entries.((i * n) + j)
        done;
        (* force diagonal dominance so the system is well-posed *)
        Matrix.add_to m i i (50.0 *. float_of_int n)
      done;
      let x = Lu.solve m rhs in
      let r = Vec.sub (Matrix.mul_vec m x) rhs in
      Vec.norm_inf r < 1e-8)

let prop_det_transpose =
  QCheck.Test.make ~name:"det(A) = det(A^T)" ~count:100
    QCheck.(array_of_size (QCheck.Gen.return 9) (float_range (-5.0) 5.0))
    (fun entries ->
      let m = Matrix.create 3 3 in
      Array.iteri (fun k v -> Matrix.set m (k / 3) (k mod 3) v) entries;
      let d1 = Lu.det m and d2 = Lu.det (Matrix.transpose m) in
      Float.abs (d1 -. d2) <= 1e-9 *. (1.0 +. Float.abs d1))

let suite =
  [
    Alcotest.test_case "vector ops" `Quick test_vec_ops;
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "matrix bad index" `Quick test_matrix_bad_index;
    Alcotest.test_case "matrix mul" `Quick test_matrix_mul;
    Alcotest.test_case "matrix mul_vec" `Quick test_matrix_mul_vec;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "lu known solve" `Quick test_lu_solve_known;
    Alcotest.test_case "lu pivoting" `Quick test_lu_needs_pivoting;
    Alcotest.test_case "lu singular" `Quick test_lu_singular;
    Alcotest.test_case "determinant" `Quick test_det;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "condition estimate" `Quick test_condition;
    QCheck_alcotest.to_alcotest prop_lu_random_solve;
    QCheck_alcotest.to_alcotest prop_det_transpose;
  ]
