type state = Up | Neutral | Down

type t = { mutable s : state }

let create () = { s = Neutral }
let state t = t.s

let ref_edge t =
  t.s <- (match t.s with Down -> Neutral | Neutral -> Up | Up -> Up)

let div_edge t =
  t.s <- (match t.s with Up -> Neutral | Neutral -> Down | Down -> Down)

let reset t = t.s <- Neutral

let drive = function Up -> 1.0 | Neutral -> 0.0 | Down -> -1.0
