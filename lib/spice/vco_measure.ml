module C = Repro_circuit
module Netlist = Repro_circuit.Netlist

type performance = {
  kvco : float;
  ivco : float;
  jvco : float;
  fmin : float;
  fmax : float;
}

let pp_performance ppf p =
  Format.fprintf ppf "kvco=%.0f MHz/V ivco=%.2f mA jvco=%.3f ps f=[%.0f, %.0f] MHz"
    (p.kvco /. 1e6) (p.ivco *. 1e3) (p.jvco *. 1e12) (p.fmin /. 1e6)
    (p.fmax /. 1e6)

type options = {
  vdd : float;
  vctl_lo : float;
  vctl_hi : float;
  stages : int;
  t_stop : float;
  dt : float;
  max_extensions : int;
  min_cycles : int;
  thermal_xi : float;
  flicker_coeff : float;
}

let default_options =
  {
    vdd = 1.2;
    vctl_lo = 0.5;
    vctl_hi = 1.2;
    stages = 5;
    t_stop = 12e-9;
    dt = 5e-12;
    max_extensions = 1;
    min_cycles = 3;
    thermal_xi = 4.0;
    flicker_coeff = 1.2e-3;
  }

type failure = No_oscillation | Too_slow | Analysis_error of string

exception Characterise_failure of failure

let failure_to_string = function
  | No_oscillation -> "no oscillation"
  | Too_slow -> "too slow to measure"
  | Analysis_error msg -> "analysis error: " ^ msg

let boltzmann_t = 4.14e-21 (* kT at 300 K *)

let set_vctl net v =
  Netlist.map_elements
    (fun el ->
      match el with
      | Netlist.Vsource ({ name = "Vctl"; _ } as s) ->
        Netlist.Vsource { s with source = C.Source.Dc v }
      | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Resistor _
      | Netlist.Capacitor _ | Netlist.Mos _ -> el)
    net

type osc_measure = {
  freq : float;
  idd : float;
  slew_asym : float;
      (* mean over stages of |slew_r - slew_f| / (slew_r + slew_f), the
         ISF-asymmetry driver of flicker up-conversion *)
  mean_slew : float;
  swing_ok : bool;
}

(* ring start-up kick: alternate the stage outputs around the rails *)
let startup_ic opts =
  List.init opts.stages (fun i ->
      let name = Printf.sprintf "s%d" (i + 1) in
      let v =
        if i = opts.stages - 1 then opts.vdd /. 2.0
        else if i mod 2 = 0 then opts.vdd
        else 0.0
      in
      (name, v))

let run_osc opts net vctl =
  let net = set_vctl net vctl in
  let compiled = Mna.compile net in
  let mid = opts.vdd /. 2.0 in
  let rec attempt ext =
    let stretch = Float.of_int (1 lsl (2 * ext)) in
    let t_stop = opts.t_stop *. stretch in
    let dt = opts.dt *. Float.min 2.0 stretch in
    let tr_opts =
      {
        (Transient.default_options ~t_stop ~dt) with
        Transient.ic = startup_ic opts;
      }
    in
    match Transient.run_result compiled tr_opts with
    | Error (Solver_error.No_convergence { detail; _ }) ->
      Error (Analysis_error detail)
    | Error (Solver_error.Step_underflow _ as e) ->
      Error (Analysis_error (Solver_error.to_string e))
    | Ok res ->
      let t_start = 0.5 *. t_stop in
      let stage_wave i =
        Waveform.window
          (Transient.node_wave res (Printf.sprintf "s%d" i))
          ~t_start ~t_end:t_stop
      in
      let w1 = stage_wave 1 in
      let crossings = Waveform.crossings ~direction:Waveform.Rising w1 ~level:mid in
      if Array.length crossings >= opts.min_cycles + 1 then begin
        match Waveform.frequency ~direction:Waveform.Rising w1 ~level:mid with
        | None -> Error No_oscillation
        | Some freq ->
          let idd_w =
            Waveform.window
              (Transient.source_current_wave res "Vdd")
              ~t_start ~t_end:t_stop
          in
          let idd = -.Waveform.mean idd_w in
          let asyms, slews =
            let per_stage =
              Array.init opts.stages (fun i ->
                  let w = stage_wave (i + 1) in
                  let sr =
                    Waveform.slew_at_crossings ~direction:Waveform.Rising w
                      ~level:mid
                  in
                  let sf =
                    Waveform.slew_at_crossings ~direction:Waveform.Falling w
                      ~level:mid
                  in
                  if sr +. sf <= 0.0 then (0.0, 0.0)
                  else (Float.abs (sr -. sf) /. (sr +. sf), 0.5 *. (sr +. sf)))
            in
            (Array.map fst per_stage, Array.map snd per_stage)
          in
          let slew_asym =
            Repro_util.Stats.mean asyms +. Repro_util.Stats.stddev asyms
          in
          let mean_slew = Repro_util.Stats.mean slews in
          let swing_ok =
            Waveform.amplitude_ok w1 ~lo:(0.25 *. opts.vdd) ~hi:(0.75 *. opts.vdd)
          in
          Ok { freq; idd; slew_asym; mean_slew; swing_ok }
      end
      else if ext < opts.max_extensions then attempt (ext + 1)
      else begin
        let ptp = Waveform.peak_to_peak w1 in
        if ptp < 0.2 *. opts.vdd then Error No_oscillation else Error Too_slow
      end
  in
  attempt 0

(* per-stage output capacitance: parasitics of the four devices on the
   output node plus the next stage's gate loading *)
let stage_capacitance net =
  let acc = ref 0.0 in
  (match Netlist.find_node net "s1" with
  | None -> ()
  | Some s1 ->
    List.iter
      (fun el ->
        match el with
        | Netlist.Mos { drain; gate; source; model; w; l; _ } ->
          let c = C.Mosfet.capacitances model ~w ~l in
          if drain = s1 then acc := !acc +. c.C.Mosfet.cdb +. c.C.Mosfet.cgd;
          if source = s1 then acc := !acc +. c.C.Mosfet.csb +. c.C.Mosfet.cgs;
          if gate = s1 then acc := !acc +. c.C.Mosfet.cgs +. c.C.Mosfet.cgd
        | Netlist.Capacitor { n1; n2; value; _ } ->
          if n1 = s1 || n2 = s1 then acc := !acc +. value
        | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ -> ())
      (Netlist.elements net));
  !acc

(* Die-to-die 1/f-noise-magnitude factor.  Foundry noise models carry a
   strongly corner-dependent flicker coefficient (oxide trap density
   tracks the threshold corner), so the flicker term is scaled by the
   netlist's sampled mean Vth shift: ±6 mV of global corner swings the
   flicker magnitude by roughly ±33%, which is what produces the paper's
   ~20-25% die-to-die jitter spread (Table 1's ∆Jvco) while ∆Ivco and
   ∆Kvco stay at a few percent. *)
let flicker_corner_scale net =
  let sum = ref 0.0 and count = ref 0 in
  List.iter
    (fun el ->
      match el with
      | Netlist.Mos { vth_shift; _ } ->
        sum := !sum +. vth_shift;
        incr count
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vsource _
      | Netlist.Isource _ -> ())
    (Netlist.elements net);
  if !count = 0 then 1.0
  else begin
    let mean_shift = !sum /. float_of_int !count in
    Float.max 0.2 (1.0 +. (mean_shift /. 0.018))
  end

(* Thermal kT/C term referred through the measured slew, plus flicker
   up-conversion growing with the period and rise/fall asymmetry
   (Hajimiri ISF), scaled by the die's flicker corner. *)
let jitter_estimate opts net (m : osc_measure) =
  let c_node = Float.max (stage_capacitance net) 1e-18 in
  let sigma_v = sqrt (opts.thermal_xi *. boltzmann_t /. c_node) in
  let slew = Float.max m.mean_slew 1.0 in
  let sigma_stage = sigma_v /. slew in
  let thermal = sqrt (2.0 *. float_of_int opts.stages) *. sigma_stage in
  let period = 1.0 /. m.freq in
  let flicker =
    opts.flicker_coeff *. period *. (m.slew_asym +. 0.05)
    *. flicker_corner_scale net
  in
  sqrt ((thermal *. thermal) +. (flicker *. flicker))

(* slowest frequency the crossing detector can resolve after all window
   extensions — used as the reported fmin when the oscillator is slower
   than that at the bottom of the control range *)
let measurement_floor opts =
  let stretch = Float.of_int (1 lsl (2 * opts.max_extensions)) in
  float_of_int opts.min_cycles /. (0.5 *. opts.t_stop *. stretch)

let characterise_netlist_exn ?(options = default_options) net =
  let ( let* ) = Result.bind in
  let vmid = 0.5 *. (options.vctl_lo +. options.vctl_hi) in
  let* hi = run_osc options net options.vctl_hi in
  let* mid = run_osc options net vmid in
  (* The bottom of the control range may legitimately be slower than the
     transient window can resolve (or below the oscillation threshold);
     both cases mean "fmin is at most the measurement floor", which can
     only help the band-coverage spec — so they are not failures. *)
  let fmin =
    match run_osc options net options.vctl_lo with
    | Ok lo when lo.swing_ok -> lo.freq
    | Ok _ | Error (Too_slow | No_oscillation) -> measurement_floor options
    | Error (Analysis_error _ as e) -> raise (Characterise_failure e)
  in
  if not (hi.swing_ok && mid.swing_ok) then Error No_oscillation
  else begin
    (* gain about the upper half of the band: the common-mode process
       shift of f(vmid) and f(vhi) cancels in the difference, which is
       what keeps the paper's ∆Kvco well below ∆Ivco *)
    let kvco = (hi.freq -. mid.freq) /. (options.vctl_hi -. vmid) in
    let jvco = jitter_estimate options net mid in
    Ok { kvco; ivco = mid.idd; jvco; fmin; fmax = hi.freq }
  end

let characterise_netlist ?options net =
  try characterise_netlist_exn ?options net
  with Characterise_failure f -> Error f

let characterise ?(options = default_options) params =
  let net =
    C.Topologies.ring_vco ~stages:options.stages ~vdd:options.vdd
      ~vctl:options.vctl_lo params
  in
  characterise_netlist ~options net
