type process = {
  label : string option;
  pid : int;
  epoch : float; (* wall-clock seconds at this process's ts = 0 *)
  trace : string; (* trace id (the coordinator's id propagates) *)
  events : Event.t list;
}

(* NTP-style offset from one request/response envelope: all four stamps
   are wall-clock seconds; [t_send]/[t_reply_recv] on the local clock,
   [t_recv]/[t_reply_sent] on the remote one.  Assuming symmetric
   network delay, the remote clock leads the local one by the mean of
   the two one-way discrepancies. *)
let offset ~t_send ~t_recv ~t_reply_sent ~t_reply_recv =
  ((t_recv -. t_send) +. (t_reply_sent -. t_reply_recv)) /. 2.0

let median = function
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* per-endpoint median clock delta from the coordinator's dist.clock
   instant events (one per remote round trip) *)
let endpoint_offsets events =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      if e.name = "dist.clock" && e.ph = 'i' then
        match (Event.arg "endpoint" e.args, Event.arg "delta_s" e.args) with
        | Some ep, Some d -> (
          match float_of_string_opt d with
          | Some d -> (
            match Hashtbl.find_opt tbl ep with
            | Some l -> l := d :: !l
            | None -> Hashtbl.add tbl ep (ref [ d ]))
          | None -> ())
        | _ -> ())
    events;
  Hashtbl.fold (fun ep l acc -> (ep, median !l) :: acc) tbl []
  |> List.sort compare

let port_of s =
  match String.rindex_opt s ':' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* A worker only knows its own port ("worker:9401"); the coordinator
   keys offsets by the endpoint it dialled ("127.0.0.1:9401").  Match
   on the port suffix; an unmatched worker gets offset 0 (same host,
   same clock — the common case). *)
let worker_offset ~endpoints w =
  match w.label with
  | None -> 0.0
  | Some label -> (
    let port = port_of label in
    match
      List.find_opt (fun (ep, _) -> port_of ep = port) endpoints
    with
    | Some (_, d) -> d
    | None -> 0.0)

(* Merge worker traces onto the coordinator's timeline.  Workers get
   deterministic fresh pids (base + 1 + index) so same-host pid reuse
   can never collide; their timestamps move by the epoch difference
   minus the estimated clock offset.  Returns the merged events plus
   the pid → label table for rendering. *)
let merge ~base ~workers =
  let endpoints = endpoint_offsets base.events in
  let labels =
    ref [ (base.pid, Option.value ~default:"coordinator" base.label) ]
  in
  let merged =
    List.concat
      (List.map (fun (e : Event.t) -> { e with pid = base.pid }) base.events
      :: List.mapi
           (fun i w ->
             let pid = base.pid + 1 + i in
             labels :=
               ( pid,
                 Option.value ~default:(Printf.sprintf "worker%d" (i + 1))
                   w.label )
               :: !labels;
             let delta = worker_offset ~endpoints w in
             let shift = (w.epoch -. delta -. base.epoch) *. 1e6 in
             List.filter_map
               (fun (e : Event.t) ->
                 if e.ph = 'M' then None
                 else Some { e with pid; ts = e.ts +. shift })
               w.events)
           workers)
  in
  (merged, List.rev !labels)

(* Sanity checks on a merged trace: balanced begin/ends everywhere, no
   remote span referencing a parent id the coordinator never emitted,
   and every remote child temporally contained in its parent (within
   [slack_us], absorbing clock-estimate error). *)
let validate ?(slack_us = 50_000.0) ~coordinator_pid events =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Event.unbalanced events in
  if n > 0 then err "%d unbalanced begin/end events" n;
  let coord_spans : (int, Event.span) Hashtbl.t = Hashtbl.create 64 in
  let all = Event.flatten (Event.spans events) in
  List.iter
    (fun (s : Event.span) ->
      if s.pid = coordinator_pid then Hashtbl.replace coord_spans s.id s)
    all;
  List.iter
    (fun (s : Event.span) ->
      if s.pid <> coordinator_pid then
        match Event.arg "parent" s.args with
        | None -> ()
        | Some p -> (
          match int_of_string_opt p with
          | None -> err "span %s: unparseable parent id %S" s.name p
          | Some p -> (
            match Hashtbl.find_opt coord_spans p with
            | None -> err "span %s: orphan parent id %d" s.name p
            | Some parent ->
              if
                s.t0 < parent.t0 -. slack_us
                || s.t1 > parent.t1 +. slack_us
              then
                err
                  "span %s [%.0f,%.0f] escapes parent %s [%.0f,%.0f]"
                  s.name s.t0 s.t1 parent.name parent.t0 parent.t1)))
    all;
  List.rev !errors

let render_event (e : Event.t) =
  let fields =
    [
      ("name", Repro_obs.Jfmt.S e.name);
      ("cat", Repro_obs.Jfmt.S "hieropt");
      ("ph", Repro_obs.Jfmt.S (String.make 1 e.ph));
      ("ts", Repro_obs.Jfmt.F e.ts);
      ("pid", Repro_obs.Jfmt.I e.pid);
      ("tid", Repro_obs.Jfmt.I e.tid);
      ("seq", Repro_obs.Jfmt.I e.seq);
    ]
  in
  let fields =
    if e.ph = 'i' then fields @ [ ("s", Repro_obs.Jfmt.S "t") ] else fields
  in
  match e.args with
  | [] -> Repro_obs.Jfmt.obj fields
  | args ->
    let arg_value v = if e.ph = 'C' then v else Repro_obs.Jfmt.quote v in
    let rendered =
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Repro_obs.Jfmt.quote k ^ ":" ^ arg_value v)
             args)
      ^ "}"
    in
    let body = Repro_obs.Jfmt.obj fields in
    String.sub body 0 (String.length body - 1) ^ ",\"args\":" ^ rendered ^ "}"

let export ~path ?(labels = []) events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
      let first = ref true in
      let emit line =
        if !first then first := false else output_char oc ',';
        output_char oc '\n';
        output_string oc line
      in
      List.iter
        (fun (pid, label) ->
          emit
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
               pid
               (Repro_obs.Jfmt.quote label)))
        labels;
      let sorted =
        List.sort
          (fun (a : Event.t) (b : Event.t) ->
            compare (a.ts, a.pid, a.seq) (b.ts, b.pid, b.seq))
          events
      in
      List.iter (fun e -> emit (render_event e)) sorted;
      output_string oc "\n]}\n");
  List.length events
