(** A distributed eval-worker: the request-handling half of the farm.

    A worker owns a full local evaluation stack — the same
    {!Hieropt.Vco_problem} / {!Hieropt.Pll_problem} construction, the
    same {!Repro_moo.Problem.parallel_evaluator} over the shared domain
    pool, its own content-addressed eval cache — and exposes it over
    the {!Repro_serve} HTTP transport (routes documented in
    {!Protocol}).  Because the evaluation code path is identical to a
    local run's and floats cross the wire losslessly, a shard computed
    here is bit-identical to the same shard computed in-process.

    System-level (PLL) evaluations are servable only when the worker
    was created with a table [model]; its {!Protocol.model_fingerprint}
    is advertised on [/healthz] and checked against the coordinator's
    on every request. *)

type t

val create :
  ?version:string ->
  ?model:Hieropt.Perf_table.t ->
  config:Hieropt.Hierarchy.config ->
  unit ->
  t
(** Build the worker state for [config].  The config must match the
    coordinator's run configuration — {!Hieropt.Hierarchy.config_salt}
    is how both ends verify that. *)

val salt : t -> string
val cache : t -> Repro_engine.Cache.t
val problems : t -> string list
(** Problem names this worker can evaluate. *)

val handler :
  t -> Repro_serve.Http.request -> int * (string * string) list * string
(** The request handler, for {!Repro_serve.Server.start_with}.  Routes
    live under [/v1/*] (bare paths remain as aliases for one release,
    counted by [dist.legacy_requests]).  Safe to call from several
    reactor domains at once.  Per-endpoint request latencies are
    recorded under [dist.latency.*] histograms. *)

val serve :
  ?addr:string ->
  ?port:int ->
  ?reactors:int ->
  ?request_timeout:float ->
  t ->
  Repro_serve.Server.t
(** Start serving {!handler} (defaults: 127.0.0.1:8190, 2 reactor
    domains).  The returned server follows the usual
    {!Repro_serve.Server} lifecycle (stop/wait/signal handlers).
    @raise Unix.Unix_error if the address cannot be bound. *)
