(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sections fig7 / table1 / table2 / fig8 / yield / ablation)
   and times one Bechamel kernel per experiment plus the substrate
   hot paths.

   Workload: the fast bench scale by default; HIEROPT_FULL=1 switches to
   the paper's §4 settings (100x30 circuit GA, 100 MC samples per Pareto
   point, 500-sample yield check). *)

module H = Hieropt
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies
module E = Repro_engine

let section title =
  let bar = String.make 74 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" bar title bar

(* cumulative engine counters, printed at the end of every section *)
let telemetry_line () = Printf.printf "[%s]\n%!" (E.Telemetry.line ())

(* ------------------------------------------------------------------ *)
(* machine-readable metrics: every section records (section, key, value)
   and the whole run lands in BENCH.json, so the perf trajectory is
   diffable across PRs without scraping the human-readable report      *)
(* ------------------------------------------------------------------ *)

let bench_metrics : (string * string * float) list ref = ref []
let metric section key value = bench_metrics := (section, key, value) :: !bench_metrics

let write_bench_json path =
  let module J = Repro_serve.Json in
  (* recorded newest-first; the file reads in run order *)
  let ms = List.rev !bench_metrics in
  (* fail loudly instead of emitting a file where one leg's numbers
     silently shadow another's (bench_check rejects duplicates too) *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s, k, _) ->
      if Hashtbl.mem seen (s, k) then
        failwith (Printf.sprintf "duplicate bench metric %s/%s" s k)
      else Hashtbl.add seen (s, k) ())
    ms;
  let sections =
    List.fold_left
      (fun acc (s, _, _) -> if List.mem s acc then acc else acc @ [ s ])
      [] ms
  in
  let doc =
    J.Obj
      (List.map
         (fun s ->
           ( s,
             J.Obj
               (List.filter_map
                  (fun (s', k, v) -> if s' = s then Some (k, J.Num v) else None)
                  ms) ))
         sections)
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[%d metrics written to %s]\n%!"
    (List.length !bench_metrics) path

(* ------------------------------------------------------------------ *)
(* experiment harness: one full flow run drives every artefact         *)
(* ------------------------------------------------------------------ *)

(* Leave-one-out cross-validation of the scattered (kvco, ivco) -> jvco
   table over the real Pareto data: which interpolation scheme would the
   Verilog-A model be best served by? *)
let interp_ablation (result : H.Hierarchy.result) =
  let entries = result.H.Hierarchy.entries in
  let n = Array.length entries in
  let buf = Buffer.create 512 in
  if n < 4 then begin
    Buffer.add_string buf "(front too small for cross-validation)\n";
    Buffer.contents buf
  end
  else begin
    let perf e = e.H.Variation_model.design.H.Vco_problem.perf in
    let loo scheme =
      let errs =
        Array.init n (fun leave ->
            let keep = Array.of_list
                (List.filteri (fun i _ -> i <> leave) (Array.to_list entries))
            in
            let pts =
              Array.map (fun e -> [| (perf e).V.kvco; (perf e).V.ivco |]) keep
            in
            let vals = Array.map (fun e -> (perf e).V.jvco) keep in
            let table = Repro_interp.Table_nd.build ~scheme pts vals in
            let p = perf entries.(leave) in
            let predicted =
              Repro_interp.Table_nd.eval table [| p.V.kvco; p.V.ivco |]
            in
            Float.abs (predicted -. p.V.jvco) /. p.V.jvco)
      in
      100.0 *. Repro_util.Stats.mean errs
    in
    Printf.ksprintf (Buffer.add_string buf)
      "leave-one-out relative error of the jvco(kvco, ivco) table (%d points):\n"
      n;
    List.iter
      (fun (name, scheme) ->
        Printf.ksprintf (Buffer.add_string buf) "  %-24s %6.1f %%\n" name
          (loo scheme))
      [ ("nearest neighbour", Repro_interp.Table_nd.Nearest);
        ("IDW (paper-equivalent)", Repro_interp.Table_nd.Idw { power = 2.0; neighbours = 4 });
        ("RBF thin-plate", Repro_interp.Table_nd.Rbf Repro_interp.Table_nd.Thin_plate) ];
    Buffer.contents buf
  end

(* NSGA-II vs SPEA2 vs random search on the (cheap) system-level PLL
   problem at an identical evaluation budget, scored by Monte-Carlo
   hypervolume of the feasible front. *)
let optimiser_ablation (result : H.Hierarchy.result) =
  let buf = Buffer.create 512 in
  let problem = H.Pll_problem.problem result.H.Hierarchy.pll_config in
  let pop = 24 and gens = 8 in
  let budget = pop * (gens + 1) in
  let reference = [| 2e-6; 5e-12; 20e-3 |] in
  let ideal = [| 0.0; 0.0; 0.0 |] in
  let hv front =
    Repro_moo.Pareto.hypervolume_mc ~samples:20000
      ~prng:(Repro_util.Prng.create 55)
      ~reference ~ideal
      (Repro_moo.Nsga2.evaluations front)
  in
  let score name front =
    Printf.ksprintf (Buffer.add_string buf)
      "  %-14s %2d feasible Pareto designs, hypervolume %.3e\n" name
      (Array.length front) (hv front)
  in
  let nsga =
    Repro_moo.Nsga2.optimise
      ~options:{ Repro_moo.Nsga2.default_options with population = pop; generations = gens }
      problem (Repro_util.Prng.create 41)
  in
  score "NSGA-II" (Repro_moo.Nsga2.pareto_front nsga);
  let spea =
    Repro_moo.Spea2.optimise
      ~options:
        { Repro_moo.Spea2.default_options with population = pop; archive = pop; generations = gens }
      problem (Repro_util.Prng.create 42)
  in
  score "SPEA2" (Repro_moo.Nsga2.pareto_front spea);
  let rs =
    Repro_moo.Baselines.random_search ~evaluations:budget problem
      (Repro_util.Prng.create 43)
  in
  score "random" (Repro_moo.Nsga2.pareto_front rs);
  Printf.ksprintf (Buffer.add_string buf) "  (budget: %d evaluations each)\n"
    budget;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* engine section: parallel + memoised evaluation on a real workload   *)
(* ------------------------------------------------------------------ *)

(* The table1 Monte-Carlo workload (perturb + re-characterise one Pareto
   design) run serially and over the pool, then a system-level batch
   evaluated cold and warm through the content-addressed cache.  Both
   legs assert bit-identical results — the engine's core guarantee. *)
let engine_bench (result : H.Hierarchy.result) =
  let design =
    match Array.length result.H.Hierarchy.front with
    | 0 -> T.vco_default
    | _ -> result.H.Hierarchy.front.(0).H.Vco_problem.params
  in
  let net = T.ring_vco ~vctl:0.5 design in
  let trial perturbed =
    match V.characterise_netlist perturbed with
    | Ok p -> Ok p.V.kvco
    | Error f -> Error (V.failure_to_string f)
  in
  let n = 32 in
  let mc_with size =
    E.Pool.with_pool ~size (fun pool ->
        let t0 = Unix.gettimeofday () in
        let r =
          Repro_spice.Monte_carlo.run ~pool ~n
            ~prng:(Repro_util.Prng.create 2009) net trial
        in
        (r, Unix.gettimeofday () -. t0))
  in
  (* pooled leg at the engine's own job policy: a pool never runs more
     domains than cores, so on a single-core host it degenerates to the
     caller-serial path and the ratio records pure dispatch overhead —
     forcing extra domains here would measure multi-domain GC thrash on
     a timeshared core, not the engine *)
  let workers = E.Config.jobs () in
  let serial, t_serial = mc_with 1 in
  let pooled, t_pooled = mc_with workers in
  metric "engine" "mc_serial_s" t_serial;
  metric "engine" "mc_pooled_s" t_pooled;
  metric "engine" "mc_speedup" (t_serial /. Float.max t_pooled 1e-9);
  Printf.printf
    "table1-style MC workload, %d trials (perturb + re-characterise):\n" n;
  Printf.printf "  1 worker   %7.2f s\n" t_serial;
  Printf.printf "  %d workers  %7.2f s   speedup %.2fx   bit-identical: %b\n"
    workers t_pooled
    (t_serial /. Float.max t_pooled 1e-9)
    (serial.Repro_spice.Monte_carlo.samples
       = pooled.Repro_spice.Monte_carlo.samples
    && serial.Repro_spice.Monte_carlo.failures
         = pooled.Repro_spice.Monte_carlo.failures);
  (* cache leg: one system-level NSGA-II batch, cold then warm *)
  let problem = H.Pll_problem.problem result.H.Hierarchy.pll_config in
  let prng = Repro_util.Prng.create 7 in
  let batch =
    Array.init 64 (fun _ -> Repro_moo.Problem.random_point problem prng)
  in
  let cache = E.Cache.create () in
  let evaluator = Repro_moo.Problem.parallel_evaluator ~cache () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let cold, t_cold =
    timed (fun () -> Repro_moo.Problem.evaluate_all ~evaluator problem batch)
  in
  let warm, t_warm =
    timed (fun () -> Repro_moo.Problem.evaluate_all ~evaluator problem batch)
  in
  metric "engine" "cache_cold_s" t_cold;
  metric "engine" "cache_warm_s" t_warm;
  metric "engine" "cache_speedup" (t_cold /. Float.max t_warm 1e-9);
  Printf.printf "system-level batch of %d candidates through the eval cache:\n"
    (Array.length batch);
  Printf.printf "  cold cache %7.3f s\n" t_cold;
  Printf.printf "  warm cache %7.3f s   speedup %.1fx   bit-identical: %b\n"
    t_warm
    (t_cold /. Float.max t_warm 1e-9)
    (cold = warm);
  Printf.printf "  %s\n" (E.Cache.stats_line cache)

(* cold checkpointed run vs resume-from-completed-snapshot: the resumed
   run replays every phase from the snapshot, so it measures pure
   restore overhead — and must reproduce the artefacts byte-for-byte. *)
let checkpoint_bench (result : H.Hierarchy.result) =
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hieropt_ckpt_bench" in
  rm_rf dir;
  let cfg ~resume =
    H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale ~model_dir:dir
      ~checkpoint_every:1 ~resume ()
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let model = result.H.Hierarchy.model in
  let cold, t_cold =
    timed (fun () -> H.Hierarchy.run_system_level (cfg ~resume:false) ~model)
  in
  let resumed, t_resumed =
    timed (fun () -> H.Hierarchy.run_system_level (cfg ~resume:true) ~model)
  in
  metric "checkpoint" "cold_s" t_cold;
  metric "checkpoint" "resumed_s" t_resumed;
  Printf.printf
    "system-level run (tiny scale), snapshot flushed every generation:\n";
  Printf.printf "  cold    %7.2f s\n" t_cold;
  Printf.printf "  resumed %7.2f s   speedup %.1fx   bit-identical: %b\n"
    t_resumed
    (t_cold /. Float.max t_resumed 1e-9)
    (compare
       ( cold.H.Hierarchy.rows,
         cold.H.Hierarchy.selected,
         cold.H.Hierarchy.yield )
       ( resumed.H.Hierarchy.rows,
         resumed.H.Hierarchy.selected,
         resumed.H.Hierarchy.yield )
    = 0);
  rm_rf dir

(* loopback model server under saturation: queries/sec and latency
   quantiles at 1/2/4 reactors (offered concurrency scaled with the
   reactor count so every leg can saturate), plus the served-vs-local
   bit-identity check that justifies offloading evaluation at all.
   Each leg keeps the best of a few reps to shave scheduler noise. *)
let serve_bench (result : H.Hierarchy.result) =
  let module S = Repro_serve in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "hieropt_serve_bench"
  in
  rm_rf dir;
  H.Perf_table.save ~dir result.H.Hierarchy.model;
  let local = H.Perf_table.load ~dir in
  let klo, khi = H.Perf_table.kvco_range local in
  let ilo, ihi = H.Perf_table.ivco_range local in
  let batch =
    Array.init 16 (fun i ->
        let f = float_of_int i /. 15.0 in
        (klo +. (f *. (khi -. klo)), ilo +. (f *. (ihi -. ilo))))
  in
  let expected = H.Perf_table.eval_points local batch in
  (* the load legs probe protocol throughput with single-point queries
     (batched evaluation is compute-bound and would hide the serving
     core's own ceiling behind spline math) *)
  let body =
    S.Json.to_string
      (S.Json.Obj
         [
           ("kvco", S.Json.Num ((klo +. khi) /. 2.0));
           ("ivco", S.Json.Num ((ilo +. ihi) /. 2.0));
         ])
  in
  let duration = 1.5 and warmup = 0.3 and reps = 3 in
  let bench_reactors (reactors, connections) =
    let registry = S.Registry.create ~root:dir () in
    let api = S.Api.create ~registry () in
    let server = S.Server.start ~port:0 ~reactors ~api () in
    let port = S.Server.port server in
    Fun.protect
      ~finally:(fun () ->
        S.Server.stop ~drain_timeout:2. server;
        S.Server.wait server)
    @@ fun () ->
    (* the equivalence guarantee first: one served batch must come back
       byte-for-byte the local evaluation (same floats, same order) *)
    let client = S.Client.create ~port () in
    let identical =
      match S.Client.query_points client ~model:"default" batch with
      | Ok got -> got = expected
      | Error _ -> false
    in
    S.Client.shutdown client;
    let best = ref None in
    for _ = 1 to reps do
      let r =
        S.Loadgen.run ~connections ~duration ~warmup ~port
          ~target:"/v1/models/default/query" ~body ()
      in
      match !best with
      | Some b when b.S.Loadgen.qps >= r.S.Loadgen.qps -> ()
      | _ -> best := Some r
    done;
    let r = Option.get !best in
    let tag key v = metric "serve" (Printf.sprintf "%s_r%d" key reactors) v in
    tag "qps" r.S.Loadgen.qps;
    tag "p50_ms" r.S.Loadgen.p50_ms;
    tag "p99_ms" r.S.Loadgen.p99_ms;
    Printf.printf
      "  %d reactor(s) %2d conns  %8.0f queries/s   p50 %6.2f ms   p99 \
       %6.2f ms   errors %d   bit-identical: %b\n%!"
      reactors connections r.S.Loadgen.qps r.S.Loadgen.p50_ms
      r.S.Loadgen.p99_ms r.S.Loadgen.errors identical
  in
  Printf.printf
    "loopback HTTP saturation: closed-loop keep-alive clients, \
     single-point queries (identity checked on a %d-point batch):\n"
    (Array.length batch);
  (* offered load is fixed across legs: scaling connections with
     reactors would conflate accept-sharding gains with queueing delay
     on hosts with fewer cores than reactors *)
  List.iter bench_reactors [ (1, 4); (2, 4); (4, 4) ];
  rm_rf dir

(* loopback distributed-eval farm: dispatch overhead and scaling of a
   circuit-level GA batch over 1 vs 2 in-process eval-workers, the
   cache-warming hit ratio, and what losing a worker mid-batch costs *)
let dist_bench () =
  let module D = Repro_dist in
  let module S = Repro_serve in
  let cfg =
    H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale
      ~spec:H.Hierarchy.tiny_spec ()
  in
  let salt = H.Hierarchy.config_salt cfg in
  let problem =
    H.Vco_problem.problem ~measure_options:cfg.H.Hierarchy.measure
      ~spec:cfg.H.Hierarchy.spec ()
  in
  let prng = Repro_util.Prng.create 17 in
  let points =
    Array.init 8 (fun _ -> Repro_moo.Problem.random_point problem prng)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let with_workers n f =
    let workers =
      List.init n (fun _ ->
          let w = D.Worker.create ~config:cfg () in
          (w, D.Worker.serve ~port:0 w))
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (_, srv) ->
            S.Server.stop ~drain_timeout:2. srv;
            S.Server.wait srv)
          workers)
    @@ fun () ->
    let endpoints =
      List.map
        (fun (_, srv) -> Printf.sprintf "127.0.0.1:%d" (S.Server.port srv))
        workers
    in
    match D.Coordinator.create ~salt ~endpoints () with
    | Error msg -> failwith ("dist bench: " ^ msg)
    | Ok c -> f c (List.map fst workers) (List.map snd workers)
  in
  (* chunk queue-wait (time between a chunk entering the coordinator's
     work queue and a dispatcher picking it up) separates "waiting for
     a free worker" from "worker computing" in the scaling numbers *)
  let queue_wait = Repro_obs.Histogram.get "dist.queue_wait" in
  let qsnap () =
    let s = Repro_obs.Histogram.stats queue_wait in
    (s.Repro_obs.Histogram.count, s.Repro_obs.Histogram.sum)
  in
  let qdelta (c0, s0) =
    let c1, s1 = qsnap () in
    if c1 > c0 then (s1 -. s0) /. float_of_int (c1 - c0) else 0.0
  in
  let local, t_local =
    timed (fun () -> Repro_moo.Problem.serial_evaluator problem points)
  in
  let q_1w = qsnap () in
  let r1, t_1w =
    with_workers 1 (fun c _ _ ->
        timed (fun () -> D.Coordinator.eval_bulk c ~salt problem points))
  in
  let qw_1w = qdelta q_1w in
  let q_2w = qsnap () in
  let r2, t_2w, qw_2w, t_warm, hit_ratio =
    with_workers 2 (fun c ws _ ->
        let r2, t_2w =
          timed (fun () -> D.Coordinator.eval_bulk c ~salt problem points)
        in
        let qw_2w = qdelta q_2w in
        let hits_before =
          List.fold_left (fun a w -> a + E.Cache.hits (D.Worker.cache w)) 0 ws
        in
        let _, t_warm =
          timed (fun () -> D.Coordinator.eval_bulk c ~salt problem points)
        in
        let warm_hits =
          List.fold_left (fun a w -> a + E.Cache.hits (D.Worker.cache w)) 0 ws
          - hits_before
        in
        ( r2,
          t_2w,
          qw_2w,
          t_warm,
          float_of_int warm_hits /. float_of_int (Array.length points) ))
  in
  (* one worker is killed a moment into the batch: the wall time of the
     still-completing dispatch bounds the reassignment cost *)
  let r_kill, t_kill =
    with_workers 2 (fun c _ srvs ->
        let killer =
          Thread.create
            (fun srv ->
              Thread.delay 0.3;
              S.Server.stop ~drain_timeout:0.5 srv)
            (List.nth srvs 1)
        in
        let r = timed (fun () -> D.Coordinator.eval_bulk c ~salt problem points) in
        Thread.join killer;
        r)
  in
  let identical (a : Repro_moo.Problem.evaluation array) b = a = b in
  metric "dist" "eval_local_s" t_local;
  metric "dist" "eval_1w_s" t_1w;
  metric "dist" "eval_2w_s" t_2w;
  metric "dist" "speedup_2v1" (t_1w /. Float.max t_2w 1e-9);
  metric "dist" "queue_wait_1w_ms" (qw_1w *. 1e3);
  metric "dist" "queue_wait_2w_ms" (qw_2w *. 1e3);
  metric "dist" "warm_s" t_warm;
  metric "dist" "warm_hit_ratio" hit_ratio;
  metric "dist" "reassign_s" t_kill;
  Printf.printf
    "circuit-level batch of %d candidates over loopback eval-workers:\n"
    (Array.length points);
  Printf.printf "  local        %7.2f s\n" t_local;
  Printf.printf "  1 worker     %7.2f s   mean chunk queue-wait %6.1f ms   bit-identical: %b\n"
    t_1w (qw_1w *. 1e3) (identical local r1);
  Printf.printf
    "  2 workers    %7.2f s   mean chunk queue-wait %6.1f ms   speedup %.2fx   bit-identical: %b\n"
    t_2w (qw_2w *. 1e3)
    (t_1w /. Float.max t_2w 1e-9)
    (identical local r2);
  Printf.printf "  warm re-run  %7.2f s   hit ratio %.2f\n" t_warm hit_ratio;
  Printf.printf
    "  1 of 2 workers killed mid-batch: %7.2f s   bit-identical: %b\n" t_kill
    (identical local r_kill)

(* ------------------------------------------------------------------ *)
(* moo section: optimiser portfolio + surrogate pre-screen             *)
(* ------------------------------------------------------------------ *)

(* the standard two-objective ZDT1 kernel: cheap, convex true front,
   so hypervolume at a small fixed budget separates the portfolio
   members cleanly *)
let zdt1_problem () =
  Repro_moo.Problem.create ~name:"zdt1"
    ~bounds:(Array.make 10 (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun v ->
      let f1 = v.(0) in
      let s = ref 0.0 in
      for i = 1 to 9 do
        s := !s +. v.(i)
      done;
      let g = 1.0 +. !s in
      {
        Repro_moo.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = 0.0;
      })

(* Portfolio shoot-out at one identical evaluation budget on ZDT1,
   scored by the exact 2-D hypervolume (the CI portfolio-smoke HV
   floor), then the surrogate pre-screen on the flow's own
   circuit-level GA: the avoided/paid split from the telemetry
   counters and whether the screened front still agrees with the
   exhaustive one. *)
let moo_bench () =
  let module O = Repro_moo.Optimiser in
  let zdt1 = zdt1_problem () in
  let pop = 24 and gens = 30 in
  let options = { O.population = pop; generations = gens } in
  let reference = [| 1.1; 1.1 |] in
  Printf.printf "ZDT1 at an identical budget (%d evaluations each):\n"
    (pop * (gens + 1));
  List.iter
    (fun name ->
      let opt = Option.get (O.of_name name) in
      let t0 = Unix.gettimeofday () in
      let final =
        O.optimise opt ~options zdt1 (Repro_util.Prng.create 29)
      in
      let dt = Unix.gettimeofday () -. t0 in
      let front = Repro_moo.Nsga2.pareto_front final in
      let hv =
        Repro_moo.Pareto.hypervolume_2d ~reference
          (Repro_moo.Nsga2.evaluations front)
      in
      metric "moo" (Printf.sprintf "hv_at_budget_%s" name) hv;
      Printf.printf
        "  %-8s %2d front designs, hypervolume %.4f   (%.2f s)\n" name
        (Array.length front) hv dt)
    [ "nsga2"; "de"; "mopso" ];
  (* surrogate leg: the reference flow's circuit-level problem (tiny
     spec), same seed with screening off then on.  A fresh cold cache
     per leg keeps the wall times comparable and the avoided/paid
     split purely the surrogate's.  The screened member is DE: its
     differential mutation keeps proposing trials in dominated or
     infeasible territory deep into the run, so the screen has real
     work (NSGA-II's tournament+SBX offspring hug the front and leave
     it little to reject), and the tighter guard matches DE's
     sentinel-free trial distribution. *)
  let cfg =
    H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale
      ~spec:H.Hierarchy.tiny_spec ()
  in
  let problem = H.Hierarchy.circuit_problem cfg in
  let ga_pop = 16 and ga_gens = 14 in
  let ga_options = { O.population = ga_pop; generations = ga_gens } in
  let de = Option.get (O.of_name "de") in
  let sur_options =
    { Repro_moo.Surrogate.default_options with Repro_moo.Surrogate.guard = 0.05 }
  in
  let counter = E.Telemetry.counter in
  let leg ~surrogate =
    let evaluator =
      Repro_moo.Problem.parallel_evaluator ~cache:(E.Cache.create ()) ()
    in
    let evaluator =
      if surrogate then
        Repro_moo.Surrogate.wrap
          (Repro_moo.Surrogate.create ~options:sur_options ())
          evaluator
      else evaluator
    in
    let avoided0 = counter "eval.avoided" in
    let t0 = Unix.gettimeofday () in
    let final =
      O.optimise de ~options:ga_options ~evaluator problem
        (Repro_util.Prng.create cfg.H.Hierarchy.seed)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let avoided = counter "eval.avoided" - avoided0 in
    let hv =
      Repro_moo.Hypervolume.of_front ~dims:H.Hierarchy.circuit_hv_dims
        ~reference:H.Hierarchy.circuit_hv_reference
        (Repro_moo.Nsga2.evaluations (Repro_moo.Nsga2.pareto_front final))
    in
    (wall, avoided, hv)
  in
  let requested = ga_pop * (ga_gens + 1) in
  let wall_off, _, hv_off = leg ~surrogate:false in
  let wall_on, avoided, hv_on = leg ~surrogate:true in
  let ratio = float_of_int avoided /. float_of_int requested in
  (* front agreement: the screened run's hypervolume as a fraction of
     the exhaustive run's — 1.0 means screening lost nothing *)
  let agreement = if hv_off > 0.0 then hv_on /. hv_off else 0.0 in
  metric "moo" "surrogate.eval_avoided_ratio" ratio;
  metric "moo" "surrogate.front_agreement" agreement;
  metric "moo" "flow.wall_s" wall_on;
  Printf.printf
    "circuit-level DE (%dx%d, tiny spec), surrogate pre-screen off vs on:\n"
    ga_pop ga_gens;
  Printf.printf "  off  %7.2f s   hypervolume %.4g\n" wall_off hv_off;
  Printf.printf
    "  on   %7.2f s   hypervolume %.4g   avoided %d/%d exact evals \
     (%.0f%%)   front agreement %.3f\n"
    wall_on hv_on avoided requested (100.0 *. ratio) agreement

(* ------------------------------------------------------------------ *)
(* solver shoot-out: dense vs sparse on the reference VCO              *)
(* ------------------------------------------------------------------ *)

let solver_bench () =
  let module S = Repro_spice in
  let module L = Repro_linalg in
  let net = T.ring_vco ~vctl:0.5 T.vco_default in
  let cm = S.Mna.compile net in
  let n = S.Mna.size cm in
  (* Best-of-reps with the two solvers interleaved rep by rep: the
     minimum is the standard robust wall-clock estimator (scheduler
     preemptions and frequency ramps only ever add time), and the
     interleaving makes load drift hit both solvers equally instead of
     biasing whichever runs second. *)
  let time_pair reps fa fb =
    fa ();
    fb ();
    (* warm caches and the symbolic registry *)
    let ba = ref infinity and bb = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      fa ();
      let t1 = Unix.gettimeofday () in
      fb ();
      let t2 = Unix.gettimeofday () in
      ba := Float.min !ba (t1 -. t0);
      bb := Float.min !bb (t2 -. t1)
    done;
    (!ba, !bb)
  in
  (* DC operating point *)
  let dcop solver () =
    match S.Dcop.solve_result ~solver cm with
    | Ok r -> r
    | Error e -> failwith (S.Solver_error.to_string e)
  in
  let dc_dense = dcop E.Config.Dense () in
  let dc_sparse = dcop E.Config.Sparse () in
  let dc_diff =
    L.Vec.max_abs_diff dc_dense.S.Dcop.solution dc_sparse.S.Dcop.solution
  in
  let t_dc_dense, t_dc_sparse =
    time_pair 50
      (fun () -> ignore (dcop E.Config.Dense ()))
      (fun () -> ignore (dcop E.Config.Sparse ()))
  in
  (* transient at the simulate default scale: 10 ns / 10 ps *)
  let opts = S.Transient.default_options ~t_stop:10e-9 ~dt:10e-12 in
  let transient solver () =
    match S.Transient.run_result ~solver cm opts with
    | Ok r -> r
    | Error e -> failwith (S.Solver_error.to_string e)
  in
  let tr_dense = transient E.Config.Dense () in
  let tr_sparse = transient E.Config.Sparse () in
  let tr_diff =
    L.Vec.max_abs_diff
      (S.Transient.final_solution tr_dense)
      (S.Transient.final_solution tr_sparse)
  in
  let t_tr_dense, t_tr_sparse =
    time_pair 5
      (fun () -> ignore (transient E.Config.Dense ()))
      (fun () -> ignore (transient E.Config.Sparse ()))
  in
  let dc_speedup = t_dc_dense /. Float.max t_dc_sparse 1e-12 in
  let tr_speedup = t_tr_dense /. Float.max t_tr_sparse 1e-12 in
  let hits, misses = L.Sparse_lu.cache_stats () in
  Printf.printf "ring VCO: %d unknowns\n" n;
  Printf.printf "  dcop      dense %8.3f ms   sparse %8.3f ms   speedup %5.2fx   |dx| %.2e\n"
    (1e3 *. t_dc_dense) (1e3 *. t_dc_sparse) dc_speedup dc_diff;
  Printf.printf "  transient dense %8.3f ms   sparse %8.3f ms   speedup %5.2fx   |dx| %.2e\n"
    (1e3 *. t_tr_dense) (1e3 *. t_tr_sparse) tr_speedup tr_diff;
  Printf.printf "  symbolic registry: %d hits / %d misses\n" hits misses;
  metric "solver" "n" (float_of_int n);
  metric "solver" "dcop_dense_ms" (1e3 *. t_dc_dense);
  metric "solver" "dcop_sparse_ms" (1e3 *. t_dc_sparse);
  metric "solver" "dcop_speedup" dc_speedup;
  metric "solver" "transient_dense_ms" (1e3 *. t_tr_dense);
  metric "solver" "transient_sparse_ms" (1e3 *. t_tr_sparse);
  metric "solver" "transient_speedup" tr_speedup;
  metric "solver" "dense_sparse_max_diff" (Float.max dc_diff tr_diff)

let run_experiments ~scale ~spec () =
  let cfg = H.Hierarchy.make_config ~scale ?spec ~model_dir:"hieropt_model" () in
  section
    (Printf.sprintf "hierarchical flow — %s scale (seed %d, %d worker(s)); spec: %s"
       (if scale = H.Hierarchy.paper_scale then "paper"
        else if scale = H.Hierarchy.tiny_scale then "tiny"
        else "bench")
       cfg.H.Hierarchy.seed (E.Config.jobs ())
       (Format.asprintf "%a" H.Spec.pp cfg.H.Hierarchy.spec));
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let progress s =
    Printf.printf "[%6.1fs] %s\n%!" (Unix.gettimeofday () -. wall0) s
  in
  let result = H.Hierarchy.run ~progress cfg in
  ignore t0;
  telemetry_line ();
  section "Figure 7 — circuit-level Pareto front";
  print_string (H.Experiments.fig7_front result.H.Hierarchy.front);
  telemetry_line ();
  section "Table 1 — performance and variation values";
  print_string (H.Experiments.table1 result.H.Hierarchy.entries);
  telemetry_line ();
  section "Table 2 — PLL system-level solution samples";
  print_string
    (H.Experiments.table2 ?selected:result.H.Hierarchy.selected
       result.H.Hierarchy.rows);
  telemetry_line ();
  section "Figure 8 — PLL locking transient";
  (match result.H.Hierarchy.selected with
  | Some row ->
    print_string (H.Experiments.fig8_locking result.H.Hierarchy.pll_config row)
  | None -> print_endline "(no selected design)");
  telemetry_line ();
  section "Yield verification (§4.5)";
  (match result.H.Hierarchy.yield with
  | Some y ->
    print_string
      (H.Experiments.yield_report y
         ~verification:result.H.Hierarchy.verification)
  | None -> print_endline "(no selected design)");
  telemetry_line ();
  section "Ablation — variation-aware vs nominal-only system optimisation";
  let ablation_cfg =
    H.Hierarchy.make_config ~scale ~model_dir:"hieropt_model"
      ~use_variation:false ()
  in
  let without =
    H.Hierarchy.run_system_level ~progress ablation_cfg
      ~model:result.H.Hierarchy.model
  in
  print_string
    (H.Experiments.ablation_report ~with_variation:result
       ~without_variation:without
       ~prng:(Repro_util.Prng.create 123));
  telemetry_line ();
  section "Ablation — table-model interpolation scheme (DESIGN.md §5)";
  print_string (interp_ablation result);
  telemetry_line ();
  section "Ablation — optimiser choice at the system level (equal budget)";
  print_string (optimiser_ablation result);
  telemetry_line ();
  section "Moo — optimiser portfolio + surrogate pre-screen";
  moo_bench ();
  telemetry_line ();
  section "Solver — dense vs sparse MNA kernels (reference VCO)";
  solver_bench ();
  telemetry_line ();
  section "Engine — deterministic parallel evaluation + cache";
  engine_bench result;
  telemetry_line ();
  section "Run lifecycle — cold vs resumed checkpointed run";
  checkpoint_bench result;
  telemetry_line ();
  section "Serve — model server throughput and latency";
  serve_bench result;
  telemetry_line ();
  section "Dist — loopback eval-worker farm";
  dist_bench ();
  telemetry_line ();
  section "Engine — full telemetry";
  print_string (E.Telemetry.report ());
  let wall = Unix.gettimeofday () -. wall0 in
  metric "flow" "wall_s" wall;
  Printf.printf "\n[experiments complete in %.1f s wall]\n%!" wall;
  result

(* ------------------------------------------------------------------ *)
(* Bechamel timing kernels: one per experiment + substrate hot paths   *)
(* ------------------------------------------------------------------ *)

let timing_tests (result : H.Hierarchy.result) =
  let open Bechamel in
  let model = result.H.Hierarchy.model in
  let pll_cfg = result.H.Hierarchy.pll_config in
  let design =
    match Array.length result.H.Hierarchy.front with
    | 0 -> T.vco_default
    | _ -> result.H.Hierarchy.front.(0).H.Vco_problem.params
  in
  let klo, khi = H.Perf_table.kvco_range model in
  let ilo, ihi = H.Perf_table.ivco_range model in
  let kvco = 0.5 *. (klo +. khi) and ivco = 0.5 *. (ilo +. ihi) in
  (* fig7 kernel: one transistor-level evaluation (the unit of GA cost) *)
  let fig7 =
    Test.make ~name:"fig7/vco-characterise"
      (Staged.stage (fun () -> ignore (V.characterise design)))
  in
  (* table1 kernel: one Monte-Carlo sample (perturb + re-characterise) *)
  let mc_prng = Repro_util.Prng.create 5 in
  let nominal_net = T.ring_vco ~vctl:0.5 design in
  let table1 =
    Test.make ~name:"table1/mc-sample"
      (Staged.stage (fun () ->
           let net =
             Repro_circuit.Process.sample Repro_circuit.Process.default
               (Repro_util.Prng.split mc_prng) nominal_net
           in
           ignore (V.characterise_netlist net)))
  in
  (* table2 kernel: one system-level candidate evaluation (3 PLL variants) *)
  let table2 =
    Test.make ~name:"table2/pll-evaluate-point"
      (Staged.stage (fun () ->
           ignore
             (H.Pll_problem.evaluate_point pll_cfg ~kvco ~ivco ~c1:10e-12
                ~c2:0.6e-12 ~r1:8e3)))
  in
  (* fig8 kernel: one behavioural PLL locking transient *)
  let pll_sim_cfg, _, _, _ =
    H.Pll_problem.variant_config pll_cfg ~kvco ~ivco ~c1:10e-12 ~c2:0.6e-12
      ~r1:8e3
  in
  let fig8 =
    Test.make ~name:"fig8/pll-transient"
      (Staged.stage (fun () ->
           ignore
             (Repro_behave.Pll.simulate pll_sim_cfg
                (Repro_behave.Pll.default_sim_options pll_sim_cfg))))
  in
  (* yield kernel: one behavioural MC sample *)
  let yield_prng = Repro_util.Prng.create 11 in
  let yield_test =
    Test.make ~name:"yield/mc-sample"
      (Staged.stage (fun () ->
           let dk = H.Perf_table.kvco_delta model kvco in
           let k =
             Repro_util.Prng.gaussian yield_prng ~mean:kvco ~sigma:(dk *. kvco)
           in
           ignore
             (H.Yield.check_sample pll_cfg ~kvco:k ~ivco ~c1:10e-12
                ~c2:0.6e-12 ~r1:8e3)))
  in
  (* substrate hot paths *)
  let cm = Repro_spice.Mna.compile nominal_net in
  let n = Repro_spice.Mna.size cm in
  let jac = Repro_linalg.Matrix.create n n in
  let res_vec = Array.make n 0.0 in
  let x = Array.make n 0.5 in
  let geq = Array.make (Repro_spice.Mna.cap_count cm) 1e-3 in
  let ieq = Array.make (Repro_spice.Mna.cap_count cm) 0.0 in
  let assemble =
    Test.make ~name:"substrate/mna-assemble"
      (Staged.stage (fun () ->
           Repro_spice.Mna.assemble cm ~x ~time:0.0 ~gmin:1e-12
             ~source_scale:1.0
             ~cap_mode:(Repro_spice.Mna.Companion { geq; ieq })
             ~jacobian:jac ~residual:res_vec))
  in
  Repro_spice.Mna.assemble cm ~x ~time:0.0 ~gmin:1e-12 ~source_scale:1.0
    ~cap_mode:(Repro_spice.Mna.Companion { geq; ieq })
    ~jacobian:jac ~residual:res_vec;
  let lu =
    Test.make ~name:"substrate/lu-solve"
      (Staged.stage (fun () ->
           try ignore (Repro_linalg.Lu.solve jac res_vec)
           with Repro_linalg.Lu.Singular _ -> ()))
  in
  let xs = Repro_util.Floatx.linspace 0.0 10.0 32 in
  let spline = Repro_interp.Spline.build xs (Array.map sin xs) in
  let spline_test =
    Test.make ~name:"substrate/cubic-spline-eval"
      (Staged.stage (fun () -> ignore (Repro_interp.Spline.eval spline 4.321)))
  in
  let zdt1 = zdt1_problem () in
  let nsga_prng = Repro_util.Prng.create 9 in
  let nsga =
    Test.make ~name:"substrate/nsga2-40x5-zdt1"
      (Staged.stage (fun () ->
           ignore
             (Repro_moo.Nsga2.optimise
                ~options:
                  {
                    Repro_moo.Nsga2.default_options with
                    population = 40;
                    generations = 5;
                  }
                zdt1
                (Repro_util.Prng.split nsga_prng))))
  in
  (* netlist front end + exporter: render the fitted table as SPICE and
     elaborate it back — the full text -> deck -> flat netlist path *)
  let spice_export = Repro_netlist.Export.spice model in
  let netlist_roundtrip =
    Test.make ~name:"netlist/export-parse-elaborate"
      (Staged.stage (fun () ->
           ignore
             (Repro_netlist.Elab.subckt_netlist
                (Repro_netlist.Parse.deck spice_export)
                "hieropt_vco")))
  in
  [
    fig7; table1; table2; fig8; yield_test; assemble; lu; spline_test; nsga;
    netlist_roundtrip;
  ]

let run_timings result =
  let open Bechamel in
  section "Bechamel timings — one kernel per experiment + substrate paths";
  let tests = timing_tests result in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            metric "timings" (name ^ "_ns") est;
            Printf.printf "  %-32s %s\n%!" name
              (if est > 1e9 then Printf.sprintf "%8.3f s/run" (est /. 1e9)
               else if est > 1e6 then Printf.sprintf "%8.3f ms/run" (est /. 1e6)
               else Printf.sprintf "%8.3f us/run" (est /. 1e3))
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
        analysed)
    tests

let usage () =
  prerr_endline
    "usage: bench [--scale tiny|bench|paper] [--moo-only] [--write-baseline]\n\
     \n\
     --scale           workload scale (default: HIEROPT_FULL / bench)\n\
     --moo-only        run only the optimiser-portfolio / surrogate\n\
     \                  section (the CI portfolio-smoke workload)\n\
     --write-baseline  also write bench/BASELINE.json, the reference the\n\
     \                  CI bench-regression job compares BENCH.json against";
  exit 2

let () =
  let write_baseline = ref false in
  let moo_only = ref false in
  let scale = ref None in
  let rec parse = function
    | [] -> ()
    | "--write-baseline" :: rest ->
      write_baseline := true;
      parse rest
    | "--moo-only" :: rest ->
      moo_only := true;
      parse rest
    | "--scale" :: v :: rest ->
      (match v with
      | "tiny" -> scale := Some (H.Hierarchy.tiny_scale, Some H.Hierarchy.tiny_spec)
      | "bench" -> scale := Some (H.Hierarchy.bench_scale, None)
      | "paper" -> scale := Some (H.Hierarchy.paper_scale, None)
      | _ ->
        Printf.eprintf "bench: unknown scale %S\n" v;
        usage ());
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale, spec =
    match !scale with
    | Some (s, spec) -> (s, spec)
    | None -> (H.Hierarchy.scale_of_env (), None)
  in
  if !moo_only then begin
    section "Moo — optimiser portfolio + surrogate pre-screen";
    moo_bench ();
    telemetry_line ();
    write_bench_json "BENCH.json"
  end
  else begin
    let result = run_experiments ~scale ~spec () in
    run_timings result;
    write_bench_json "BENCH.json";
    if !write_baseline then write_bench_json "bench/BASELINE.json"
  end;
  print_newline ()
