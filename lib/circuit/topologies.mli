(** Parameterised circuit generators.

    [ring_vco] is the paper's Figure 6: a 5-stage current-starved ring
    oscillator with 7 designable parameters.  The small test fixtures
    below it are used by the simulator's unit tests and the examples. *)

type vco_params = {
  wn : float;  (** inverter NMOS width, m *)
  ln : float;  (** inverter NMOS length, m *)
  wp : float;  (** inverter PMOS width, m *)
  lp : float;  (** inverter PMOS length, m *)
  wcn : float; (** current-starving NMOS width, m *)
  wcp : float; (** current-starving PMOS width, m *)
  lc : float;  (** starving/bias device length, m *)
}

val vco_param_names : string array
(** The 7 designable-parameter names, in vector order. *)

val vco_params_of_vector : float array -> vco_params
(** @raise Invalid_argument unless the vector has length 7. *)

val vco_vector_of_params : vco_params -> float array

val vco_bounds : (float * float) array
(** Paper §4.2 design space: every L in [0.12µ, 1µ], every W in
    [10µ, 100µ]. *)

val vco_default : vco_params
(** A mid-range sizing that oscillates — used by quickstarts and tests. *)

val ring_vco :
  ?stages:int -> ?vdd:float -> vctl:float -> vco_params -> Netlist.t
(** Build the ring VCO netlist.  Node names: ["vdd"], ["vctl"], ["vbp"]
    (PMOS bias mirror), stage outputs ["s1" .. "sN"].  The supply is
    ["Vdd"], the control source ["Vctl"]; supply current is measured as
    the current through ["Vdd"].  [stages] must be odd and >= 3
    (default 5, the paper's case). *)

(* Test fixtures *)

val rc_lowpass : r:float -> c:float -> vin:Source.t -> Netlist.t
(** ["in"] -- R -- ["out"] -- C -- ground, driven by ["Vin"]. *)

val voltage_divider : r1:float -> r2:float -> vin:float -> Netlist.t
(** ["in"] -- R1 -- ["out"] -- R2 -- ground. *)

val inverter :
  ?vdd:float -> wn:float -> wp:float -> l:float -> Source.t -> Netlist.t
(** [inverter ~wn ~wp ~l vin]: static CMOS inverter with input source
    ["Vin"], output ["out"], 100 fF load. *)

val common_source :
  ?vdd:float -> w:float -> l:float -> rload:float -> float -> Netlist.t
(** [common_source ~w ~l ~rload vbias]: resistor-loaded common-source
    NMOS stage, output ["out"]. *)

(** Two-stage Miller-compensated OTA — used by the {!Repro_spice.Ota_measure}
    AC characterisation and the beyond-the-paper sizing example, showing
    the flow generalises past the ring VCO. *)

type ota_params = {
  w_diff : float;  (** input differential pair width, m *)
  w_load : float;  (** PMOS mirror load width, m *)
  w_p2 : float;    (** second-stage PMOS width, m *)
  l_ota : float;   (** shared channel length, m *)
  cc : float;      (** Miller compensation capacitor, F *)
  ibias : float;   (** reference bias current, A *)
}

val ota_default : ota_params
(** A sizing with high gain and a modest phase margin — the sizing
    example trades margin against bandwidth and power. *)

val ota_bounds : (float * float) array
(** Design box for the OTA sizing example (order:
    w_diff, w_load, w_p2, l_ota, cc, ibias). *)

val ota_params_of_vector : float array -> ota_params
val ota_vector_of_params : ota_params -> float array

val two_stage_ota :
  ?vdd:float -> ?vcm:float -> ?cload:float -> ota_params -> Netlist.t
(** Build the amplifier with single-ended AC stimulus on ["Vinp"], the
    inverting input tied to the common mode, output node ["out"], load
    [cload] (default 1 pF).  Supply is ["Vdd"]. *)
