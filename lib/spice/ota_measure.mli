(** AC characterisation of the two-stage OTA: the amplifier-domain
    counterpart of {!Vco_measure}, driven entirely by the {!Ac} engine.

    Demonstrates that the hierarchical methodology is not VCO-specific —
    the sizing example in [examples/ota_sizing.ml] optimises these
    figures with the same NSGA-II machinery the paper uses. *)

type performance = {
  dc_gain_db : float;
  gbw : float;               (** unity-gain frequency, Hz *)
  phase_margin_deg : float;
  power : float;             (** supply power, W *)
  slew_rate : float;         (** analytic tail-current / Cc estimate, V/s *)
}

val pp_performance : Format.formatter -> performance -> unit

type failure =
  | Bias_failure of string   (** DC operating point did not converge *)
  | No_gain                  (** |H| never crosses unity *)

val failure_to_string : failure -> string

val characterise :
  ?vdd:float ->
  ?cload:float ->
  ?f_start:float ->
  ?f_stop:float ->
  ?points:int ->
  Repro_circuit.Topologies.ota_params ->
  (performance, failure) result
(** DC operating point + log AC sweep (defaults 10 Hz – 50 GHz,
    160 points) + Bode extraction. *)
