let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let linspace lo hi n =
  if n < 2 then invalid_arg "Floatx.linspace: need at least 2 points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      if i = n - 1 then hi else lo +. (float_of_int i *. step))

let logspace lo hi n =
  if lo <= 0.0 || hi <= 0.0 then
    invalid_arg "Floatx.logspace: bounds must be positive";
  Array.map exp (linspace (log lo) (log hi) n)

let lerp a b t = a +. (t *. (b -. a))
let is_finite x = Float.is_finite x

let sum xs =
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s
