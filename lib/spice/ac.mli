(** AC small-signal analysis.

    The circuit is linearised at a DC operating point (the Newton
    Jacobian there {e is} the small-signal conductance matrix G) and the
    complex system (G + jωC)·x = b is solved per frequency with a
    real-valued 2n×2n embedding, so the MNA linear kernels are reused.
    On the sparse backend the embedding's structure is fixed across the
    sweep (only ω scales the C stamps), so its symbolic factorisation
    runs once and every frequency point costs one numeric
    refactorisation.

    The stimulus is a unit AC magnitude on a named voltage source; every
    node voltage is then directly the transfer function to that node.
    Used for loop-filter verification, amplifier Bode/GBW/phase-margin
    extraction ({!Ota_measure}) and cross-checking the behavioural PLL's
    s-domain analysis. *)

type t
(** A linearised circuit ready for frequency sweeps. *)

val linearise : Mna.compiled -> Dcop.result -> t
(** Capture G (at the operating point) and C once; sweeps then cost one
    complex solve per frequency. *)

val transfer :
  ?solver:Repro_engine.Config.solver_mode ->
  t ->
  input:string ->
  output:string ->
  float ->
  Complex.t
(** [transfer t ~input ~output f]: complex gain from a unit AC stimulus
    on voltage source [input] to node [output] at frequency [f] (Hz).
    @raise Not_found for unknown source/node names. *)

type sweep_point = {
  freq : float;          (** Hz *)
  gain : Complex.t;
  magnitude_db : float;
  phase_deg : float;
}

val sweep :
  ?solver:Repro_engine.Config.solver_mode ->
  t ->
  input:string ->
  output:string ->
  freqs:float array ->
  sweep_point array

val logsweep :
  ?solver:Repro_engine.Config.solver_mode ->
  t ->
  input:string ->
  output:string ->
  f_start:float ->
  f_stop:float ->
  points:int ->
  sweep_point array
(** Logarithmically spaced {!sweep}. *)

type bode_summary = {
  dc_gain_db : float;        (** magnitude at the lowest swept frequency *)
  unity_gain_freq : float option;  (** Hz; None when |H| never crosses 1 *)
  phase_margin_deg : float option; (** 180° + phase at unity gain *)
  bandwidth_3db : float option;    (** Hz; first -3 dB point *)
}

val bode_summary : sweep_point array -> bode_summary
(** Classical amplifier figures extracted from a (log-spaced) sweep.
    @raise Invalid_argument on an empty sweep. *)
