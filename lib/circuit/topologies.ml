type vco_params = {
  wn : float;
  ln : float;
  wp : float;
  lp : float;
  wcn : float;
  wcp : float;
  lc : float;
}

let vco_param_names = [| "wn"; "ln"; "wp"; "lp"; "wcn"; "wcp"; "lc" |]

let vco_params_of_vector v =
  if Array.length v <> 7 then
    invalid_arg "Topologies.vco_params_of_vector: need 7 parameters";
  {
    wn = v.(0);
    ln = v.(1);
    wp = v.(2);
    lp = v.(3);
    wcn = v.(4);
    wcp = v.(5);
    lc = v.(6);
  }

let vco_vector_of_params p =
  [| p.wn; p.ln; p.wp; p.lp; p.wcn; p.wcp; p.lc |]

let w_range = (10e-6, 100e-6)
let l_range = (0.12e-6, 1e-6)

let vco_bounds =
  [| w_range; l_range; w_range; l_range; w_range; w_range; l_range |]

let vco_default =
  {
    wn = 20e-6;
    ln = 0.2e-6;
    wp = 40e-6;
    lp = 0.2e-6;
    wcn = 30e-6;
    wcp = 60e-6;
    lc = 0.24e-6;
  }

(* Current-starved ring oscillator (paper Figure 6).

   Bias branch: Vctl drives NMOS [mbn] whose current is mirrored through
   the diode-connected PMOS [mbp] onto node vbp; vbp gates the top
   starving PMOS of each stage while vctl gates the bottom starving NMOS
   directly, so the stage current (and hence frequency) follows Vctl. *)
let ring_vco ?(stages = 5) ?(vdd = 1.2) ~vctl p =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Topologies.ring_vco: stages must be odd and >= 3";
  let net = Netlist.create () in
  Netlist.vsource net "Vdd" "vdd" "0" (Source.Dc vdd);
  Netlist.vsource net "Vctl" "vctl" "0" (Source.Dc vctl);
  (* bias mirror *)
  Netlist.mosfet net "mbn" ~drain:"vbp" ~gate:"vctl" ~source:"0"
    ~model:Mosfet.nmos_012 ~w:p.wcn ~l:p.lc;
  Netlist.mosfet net "mbp" ~drain:"vbp" ~gate:"vbp" ~source:"vdd"
    ~model:Mosfet.pmos_012 ~w:p.wcp ~l:p.lc;
  let out i = Printf.sprintf "s%d" (((i - 1) mod stages) + 1) in
  for i = 1 to stages do
    let input = out (i - 1 + stages) (* previous stage output; s_stages feeds s1 *)
    and output = out i in
    let sp = Printf.sprintf "sp%d" i and sn = Printf.sprintf "sn%d" i in
    Netlist.mosfet net
      (Printf.sprintf "mcp%d" i)
      ~drain:sp ~gate:"vbp" ~source:"vdd" ~model:Mosfet.pmos_012 ~w:p.wcp
      ~l:p.lc;
    Netlist.mosfet net
      (Printf.sprintf "mp%d" i)
      ~drain:output ~gate:input ~source:sp ~model:Mosfet.pmos_012 ~w:p.wp
      ~l:p.lp;
    Netlist.mosfet net
      (Printf.sprintf "mn%d" i)
      ~drain:output ~gate:input ~source:sn ~model:Mosfet.nmos_012 ~w:p.wn
      ~l:p.ln;
    Netlist.mosfet net
      (Printf.sprintf "mcn%d" i)
      ~drain:sn ~gate:"vctl" ~source:"0" ~model:Mosfet.nmos_012 ~w:p.wcn
      ~l:p.lc
  done;
  net

let rc_lowpass ~r ~c ~vin =
  let net = Netlist.create () in
  Netlist.vsource net "Vin" "in" "0" vin;
  Netlist.resistor net "R1" "in" "out" r;
  Netlist.capacitor net "C1" "out" "0" c;
  net

let voltage_divider ~r1 ~r2 ~vin =
  let net = Netlist.create () in
  Netlist.vsource net "Vin" "in" "0" (Source.Dc vin);
  Netlist.resistor net "R1" "in" "out" r1;
  Netlist.resistor net "R2" "out" "0" r2;
  net

let inverter ?(vdd = 1.2) ~wn ~wp ~l vin =
  let net = Netlist.create () in
  Netlist.vsource net "Vdd" "vdd" "0" (Source.Dc vdd);
  Netlist.vsource net "Vin" "in" "0" vin;
  Netlist.mosfet net "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
    ~model:Mosfet.pmos_012 ~w:wp ~l;
  Netlist.mosfet net "mn" ~drain:"out" ~gate:"in" ~source:"0"
    ~model:Mosfet.nmos_012 ~w:wn ~l;
  Netlist.capacitor net "Cl" "out" "0" 100e-15;
  net

let common_source ?(vdd = 1.2) ~w ~l ~rload vbias =
  let net = Netlist.create () in
  Netlist.vsource net "Vdd" "vdd" "0" (Source.Dc vdd);
  Netlist.vsource net "Vb" "in" "0" (Source.Dc vbias);
  Netlist.resistor net "Rl" "vdd" "out" rload;
  Netlist.mosfet net "m1" ~drain:"out" ~gate:"in" ~source:"0"
    ~model:Mosfet.nmos_012 ~w ~l;
  net

type ota_params = {
  w_diff : float;
  w_load : float;
  w_p2 : float;
  l_ota : float;
  cc : float;
  ibias : float;
}

let ota_default =
  {
    w_diff = 20e-6;
    w_load = 10e-6;
    w_p2 = 40e-6;
    l_ota = 0.5e-6;
    cc = 1.5e-12;
    ibias = 50e-6;
  }

let ota_bounds =
  [| (5e-6, 80e-6); (4e-6, 40e-6); (10e-6, 120e-6); (0.24e-6, 1e-6);
     (0.5e-12, 5e-12); (10e-6, 200e-6) |]

let ota_params_of_vector v =
  if Array.length v <> 6 then
    invalid_arg "Topologies.ota_params_of_vector: need 6 parameters";
  { w_diff = v.(0); w_load = v.(1); w_p2 = v.(2); l_ota = v.(3); cc = v.(4);
    ibias = v.(5) }

let ota_vector_of_params p =
  [| p.w_diff; p.w_load; p.w_p2; p.l_ota; p.cc; p.ibias |]

(* Classic two-stage Miller OTA:
   - bias: Ibias into diode M8, mirrored by the tail M5 and the
     second-stage sink M7;
   - first stage: NMOS pair M1/M2 with PMOS mirror load M3/M4;
   - second stage: PMOS common-source M6 compensated by Cc. *)
let two_stage_ota ?(vdd = 1.2) ?(vcm = 0.7) ?(cload = 1e-12) p =
  let net = Netlist.create () in
  Netlist.vsource net "Vdd" "vdd" "0" (Source.Dc vdd);
  Netlist.vsource net "Vinp" "inp" "0" (Source.Dc vcm);
  Netlist.vsource net "Vinn" "inn" "0" (Source.Dc vcm);
  (* bias chain: push ibias from the supply into the diode-connected M8
     (SPICE convention: current flows n+ -> n- inside the source) *)
  Netlist.isource net "Ibias" "vdd" "nbias" (Source.Dc p.ibias);
  Netlist.mosfet net "m8" ~drain:"nbias" ~gate:"nbias" ~source:"0"
    ~model:Mosfet.nmos_012 ~w:(p.w_diff /. 2.0) ~l:p.l_ota;
  Netlist.mosfet net "m5" ~drain:"ntail" ~gate:"nbias" ~source:"0"
    ~model:Mosfet.nmos_012 ~w:p.w_diff ~l:p.l_ota;
  (* first stage *)
  Netlist.mosfet net "m1" ~drain:"n1" ~gate:"inp" ~source:"ntail"
    ~model:Mosfet.nmos_012 ~w:p.w_diff ~l:p.l_ota;
  Netlist.mosfet net "m2" ~drain:"n2" ~gate:"inn" ~source:"ntail"
    ~model:Mosfet.nmos_012 ~w:p.w_diff ~l:p.l_ota;
  Netlist.mosfet net "m3" ~drain:"n1" ~gate:"n1" ~source:"vdd"
    ~model:Mosfet.pmos_012 ~w:p.w_load ~l:p.l_ota;
  Netlist.mosfet net "m4" ~drain:"n2" ~gate:"n1" ~source:"vdd"
    ~model:Mosfet.pmos_012 ~w:p.w_load ~l:p.l_ota;
  (* second stage with Miller compensation *)
  Netlist.mosfet net "m6" ~drain:"out" ~gate:"n2" ~source:"vdd"
    ~model:Mosfet.pmos_012 ~w:p.w_p2 ~l:p.l_ota;
  Netlist.mosfet net "m7" ~drain:"out" ~gate:"nbias" ~source:"0"
    ~model:Mosfet.nmos_012 ~w:(2.0 *. p.w_diff) ~l:p.l_ota;
  Netlist.capacitor net "Cc" "n2" "out" p.cc;
  Netlist.capacitor net "Cl" "out" "0" cload;
  net
