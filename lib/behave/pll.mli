(** Behavioural charge-pump PLL (the paper's Figure 5 system): PFD +
    charge pump + passive loop filter + ÷N divider + behavioural VCO,
    co-simulated at a fixed time step.

    [evaluate] produces the three system performances of Table 2 —
    lock time (from the time-domain transient), jitter sum (Kundert's
    accumulation formula J·√(2·fout·τloop), τloop from the linear
    analysis — reference [13] of the paper) and current consumption
    (VCO + charge pump + fixed overhead). *)

type config = {
  fref : float;                   (** reference frequency, Hz *)
  n_div : int;                    (** feedback divider modulus *)
  cp : Charge_pump.t;
  filter : Loop_filter.params;
  vco : Vco_model.params;
  ivco : float;                   (** VCO supply current, A *)
  overhead_current : float;      (** PFD/CP/divider static+dynamic, A *)
  vctl_init : float;              (** control voltage at t = 0 *)
}

val target_frequency : config -> float
(** n_div * fref. *)

type sim_options = {
  t_stop : float;
  dt : float;                (** <= fref period / 50 recommended *)
  lock_tolerance : float;    (** relative output-frequency error *)
  lock_hold : float;         (** s the error must stay in-band *)
  record_stride : int;       (** trace decimation *)
}

val default_sim_options : config -> sim_options
(** 2 µs, Tref/200 step, 0.5% tolerance held for 10 reference cycles. *)

type sim_result = {
  locked : bool;
  lock_time : float option;       (** s; [None] when never locked *)
  vctl_trace : (float * float) array;
  freq_trace : (float * float) array;
  final_vctl : float;
  final_freq : float;
  cp_duty : float;                (** pump activity after lock *)
}

val simulate : ?prng:Repro_util.Prng.t -> config -> sim_options -> sim_result
(** Time-domain transient from [vctl_init].  Passing [prng] enables VCO
    jitter injection (Listing 2's [$rdist_normal]). *)

type performance = {
  lock_time : float;    (** s *)
  jitter_sum : float;   (** s, accumulated output jitter *)
  current : float;      (** A *)
}

val pp_performance : Format.formatter -> performance -> unit

val evaluate :
  ?sim_options:sim_options -> config -> (performance, string) result
(** Full evaluation: linear stability screen, transient lock check, and
    the three Table-2 performances.  [Error] explains unstable /
    unlocked configurations. *)

val measured_output_jitter :
  prng:Repro_util.Prng.t -> config -> cycles:int -> float
(** Monte-Carlo check of the jitter-accumulation formula: simulate the
    locked loop with jitter injection for [cycles] VCO cycles and return
    the RMS edge-time deviation (tests compare this against
    [jitter_sum]). *)

val reference_spur_dbc : config -> float
(** Leakage/mismatch reference-spur estimate (Banerjee): the charge pump
    corrects the control-node error once per reference cycle, producing
    ripple v = i_err·|Z(j2πfref)| that frequency-modulates the VCO;
    narrowband FM puts the spur at
    20·log10(Kvco·v_ripple / (2·fref)) dBc.  [i_err] combines the pump
    leakage with the up/down mismatch at the locked duty cycle.  More
    negative is better; an ideal pump with zero leakage returns
    [neg_infinity]. *)
