type polarity = Nmos | Pmos

type model = {
  name : string;
  polarity : polarity;
  vth0 : float;
  kp : float;
  theta : float;
  n_slope : float;
  clm : float;
  cox : float;
  cov : float;
  cj : float;
  avt : float;
  akp : float;
}

let nmos_012 =
  {
    name = "nmos_012";
    polarity = Nmos;
    vth0 = 0.35;
    kp = 350e-6;
    theta = 0.6;
    n_slope = 1.4;
    clm = 0.02e-6;
    cox = 13.0e-3; (* F/m^2, ~2.65 nm oxide *)
    cov = 0.35e-9; (* F/m *)
    cj = 0.8e-9; (* F/m *)
    avt = 3.5e-9; (* V*m : 3.5 mV*um *)
    akp = 1.0e-8; (* m   : 1 %*um *)
  }

let pmos_012 =
  {
    nmos_012 with
    name = "pmos_012";
    polarity = Pmos;
    vth0 = 0.32;
    kp = 120e-6;
    theta = 0.4;
  }

type eval_result = { ids : float; gm : float; gds : float }

let thermal_voltage = 0.02585 (* kT/q at 300 K *)

(* softplus overdrive: vov = 2 n vt ln(1 + exp u), u = (vgs - vth)/(2 n vt).
   sigma = d vov / d vgs is the logistic function of u. *)
let smooth_overdrive n_slope vgs vth =
  let s = 2.0 *. n_slope *. thermal_voltage in
  let u = (vgs -. vth) /. s in
  if u > 30.0 then (s *. u, 1.0)
  else if u < -30.0 then
    let e = exp u in
    (s *. e, e /. (1.0 +. e))
  else
    let e = exp u in
    (s *. log (1.0 +. e), e /. (1.0 +. e))

let eval model ~w ~l ~vth_shift ~kp_scale ~vgs ~vds =
  assert (vds >= 0.0);
  assert (w > 0.0 && l > 0.0);
  let vth = model.vth0 +. vth_shift in
  let vov, sigma = smooth_overdrive model.n_slope vgs vth in
  let vov = Float.max vov 1e-12 in
  let lambda = model.clm /. l in
  (* mobility reduction: kp_eff = kp / (1 + theta vov) *)
  let mob = 1.0 +. (model.theta *. vov) in
  let kp_eff = model.kp *. kp_scale /. mob in
  let dkp_dvgs = -.kp_eff *. model.theta *. sigma /. mob in
  let beta = kp_eff *. w /. l in
  let dbeta_dvgs = dkp_dvgs *. w /. l in
  (* C1 triode/saturation blend: g(x) = x(2-x) below vdsat, 1 above *)
  let x = vds /. vov in
  let g, g' = if x < 1.0 then ((x *. (2.0 -. x)), 2.0 -. (2.0 *. x)) else (1.0, 0.0) in
  let clm_f = 1.0 +. (lambda *. vds) in
  let half_bv2 = 0.5 *. beta *. vov *. vov in
  let ids = half_bv2 *. g *. clm_f in
  let gds =
    (half_bv2 *. g' /. vov *. clm_f) +. (half_bv2 *. g *. lambda)
  in
  (* dx/dvgs = -vds sigma / vov^2 *)
  let gm =
    clm_f
    *. ((0.5 *. dbeta_dvgs *. vov *. vov *. g)
       +. (beta *. vov *. sigma *. g)
       -. (0.5 *. beta *. g' *. vds *. sigma))
  in
  { ids; gm; gds }

type caps = { cgs : float; cgd : float; cdb : float; csb : float }

let capacitances model ~w ~l =
  let cgate = 0.5 *. model.cox *. w *. l in
  let cover = model.cov *. w in
  let cjunc = model.cj *. w in
  { cgs = cgate +. cover; cgd = cgate +. cover; cdb = cjunc; csb = cjunc }

let sigma_vth model ~w ~l = model.avt /. sqrt (w *. l)
let sigma_kp_rel model ~w ~l = model.akp /. sqrt (w *. l)
