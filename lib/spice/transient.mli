(** Transient analysis: trapezoidal integration (backward-Euler start)
    with Newton per step and step-halving on non-convergence. *)

type options = {
  t_stop : float;
  dt : float;             (** nominal step *)
  dt_min : float;         (** below this a failing step raises *)
  ic : (string * float) list;
      (** node-voltage overrides applied on top of the DC solution —
          the oscillator start-up "kick" *)
  skip_dcop : bool;       (** start from all-zero state instead of DC *)
  max_newton : int;
  noise : Repro_util.Prng.t option;
      (** transient-noise mode: inject per-device thermal channel noise
          currents each step ({!Mna.channel_noise_stamps}), white up to
          the step Nyquist rate 1/(2 dt).  Used to cross-validate the
          analytic jitter estimator against a direct noisy simulation. *)
}

val default_options : t_stop:float -> dt:float -> options

exception Step_failure of float
(** Raised with the simulation time at which the step size underflowed. *)

type result

val run_result :
  ?solver:Repro_engine.Config.solver_mode ->
  ?workspace:Mna.workspace ->
  Mna.compiled ->
  options ->
  (result, Solver_error.t) Stdlib.result
(** Run the transient analysis.  DC-start non-convergence and step-size
    underflow are returned as structured {!Solver_error.t} values — this
    is the primary entry point; {!run} is a thin raising wrapper kept
    for compatibility.  [workspace] defaults to {!Mna.domain_workspace}
    and is shared between the DC start and the stepping loop (a pure
    performance hint; results are identical either way).
    @raise Invalid_argument on non-positive [t_stop]/[dt] or an [ic]
    override of ground (programming errors, not solver failures). *)

val run :
  ?solver:Repro_engine.Config.solver_mode ->
  ?workspace:Mna.workspace ->
  Mna.compiled ->
  options ->
  result
(** Raising wrapper over {!run_result}.
    @raise Step_failure on step-size underflow.
    @raise Dcop.No_convergence when the starting DC solve fails. *)

val times : result -> float array

val node_wave : result -> string -> Waveform.t
(** Recorded voltage waveform of a named node.
    @raise Not_found for unknown names. *)

val source_current_wave : result -> string -> Waveform.t
(** Branch-current waveform of a named voltage source. *)

val final_solution : result -> Repro_linalg.Vec.t

val total_newton_iterations : result -> int

val solver : result -> string
(** Linear kernel used for the run's Newton solves ("dense"/"sparse"). *)
