type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

exception Netlist_error of { file : string option; pos : pos; msg : string }

let fail ?file pos fmt =
  Printf.ksprintf (fun msg -> raise (Netlist_error { file; pos; msg })) fmt

let error_to_string = function
  | Netlist_error { file; pos; msg } ->
    Printf.sprintf "%s:%d:%d: %s"
      (Option.value ~default:"<netlist>" file)
      pos.line pos.col msg
  | e -> Printexc.to_string e

let () =
  Printexc.register_printer (function
    | Netlist_error _ as e -> Some (error_to_string e)
    | _ -> None)
