type kernel = Thin_plate | Gaussian of float

type scheme =
  | Nearest
  | Idw of { power : float; neighbours : int }
  | Rbf of kernel

type engine =
  | E_nearest
  | E_idw of { power : float; neighbours : int }
  | E_rbf of { kernel : kernel; weights : float array }

type t = {
  engine : engine;
  points : float array array; (* normalised coordinates *)
  values : float array;
  bounds : (float * float) array;
}

let dist2 a b =
  let acc = ref 0.0 in
  for d = 0 to Array.length a - 1 do
    let dx = a.(d) -. b.(d) in
    acc := !acc +. (dx *. dx)
  done;
  !acc

let kernel_value kernel r2 =
  match kernel with
  | Thin_plate ->
    (* phi(r) = r^2 ln r, with phi(0) = 0 *)
    if r2 < 1e-30 then 0.0 else 0.5 *. r2 *. log r2
  | Gaussian eps ->
    exp (-.(eps *. eps) *. r2)

(* fit RBF weights by solving (Phi + lambda I) w = y *)
let fit_rbf kernel points values =
  let n = Array.length points in
  let phi = Repro_linalg.Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Repro_linalg.Matrix.set phi i j
        (kernel_value kernel (dist2 points.(i) points.(j)))
    done;
    (* ridge term keeps near-duplicate samples solvable *)
    Repro_linalg.Matrix.add_to phi i i 1e-9
  done;
  Repro_linalg.Lu.solve phi values

let build ?(scheme = Idw { power = 2.0; neighbours = 4 }) points values =
  let n = Array.length points in
  if n = 0 then invalid_arg "Table_nd.build: no sample points";
  if n <> Array.length values then invalid_arg "Table_nd.build: length mismatch";
  let dim = Array.length points.(0) in
  if dim = 0 then invalid_arg "Table_nd.build: zero-dimensional points";
  Array.iter
    (fun p ->
      if Array.length p <> dim then invalid_arg "Table_nd.build: ragged points")
    points;
  let bounds =
    Array.init dim (fun d ->
        Array.fold_left
          (fun (lo, hi) p -> (Float.min lo p.(d), Float.max hi p.(d)))
          (points.(0).(d), points.(0).(d))
          points)
  in
  let normalise p =
    Array.mapi
      (fun d x ->
        let lo, hi = bounds.(d) in
        if hi > lo then (x -. lo) /. (hi -. lo) else 0.0)
      p
  in
  let npoints = Array.map normalise points in
  let engine =
    match scheme with
    | Nearest -> E_nearest
    | Idw { power; neighbours } -> E_idw { power; neighbours }
    | Rbf kernel ->
      let weights =
        match fit_rbf kernel npoints values with
        | w -> w
        | exception Repro_linalg.Lu.Singular _ ->
          invalid_arg "Table_nd.build: RBF system is singular (duplicate points?)"
      in
      E_rbf { kernel; weights }
  in
  { engine; points = npoints; values = Array.copy values; bounds }

let dimension t = Array.length t.bounds
let size t = Array.length t.values
let bounds t = Array.copy t.bounds

let eval t query =
  let dim = dimension t in
  if Array.length query <> dim then invalid_arg "Table_nd.eval: dimension mismatch";
  let q =
    Array.mapi
      (fun d x ->
        let lo, hi = t.bounds.(d) in
        if hi > lo then (x -. lo) /. (hi -. lo) else 0.0)
      query
  in
  let n = Array.length t.points in
  match t.engine with
  | E_nearest ->
    let d2 = Array.init n (fun i -> dist2 q t.points.(i)) in
    let best = ref 0 in
    for i = 1 to n - 1 do
      if d2.(i) < d2.(!best) then best := i
    done;
    t.values.(!best)
  | E_idw { power; neighbours } ->
    let d2 = Array.init n (fun i -> dist2 q t.points.(i)) in
    (* exact hit short-circuits to avoid a division by zero *)
    let hit = ref None in
    for i = 0 to n - 1 do
      if !hit = None && d2.(i) < 1e-24 then hit := Some i
    done;
    begin
      match !hit with
      | Some i -> t.values.(i)
      | None ->
        let order = Array.init n (fun i -> i) in
        let k =
          if neighbours <= 0 || neighbours >= n then n
          else begin
            Array.sort (fun a b -> compare d2.(a) d2.(b)) order;
            neighbours
          end
        in
        let wsum = ref 0.0 and vsum = ref 0.0 in
        for r = 0 to k - 1 do
          let i = order.(r) in
          let w = d2.(i) ** (-.power /. 2.0) in
          wsum := !wsum +. w;
          vsum := !vsum +. (w *. t.values.(i))
        done;
        !vsum /. !wsum
    end
  | E_rbf { kernel; weights } ->
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) *. kernel_value kernel (dist2 q t.points.(i)))
    done;
    !acc
