(* SPEA2, the shared variation operators, LHS sampling and the spur
   estimator *)
module M = Repro_moo
module Prng = Repro_util.Prng
module Sampling = Repro_util.Sampling
module B = Repro_behave

let zdt1 n =
  M.Problem.create ~name:"zdt1"
    ~bounds:(Array.make n (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun x ->
      let f1 = x.(0) in
      let s = ref 0.0 in
      for i = 1 to n - 1 do
        s := !s +. x.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. float_of_int (n - 1)) in
      {
        M.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = 0.0;
      })

(* ---- variation operators ---- *)

let test_sbx_bounds_and_mean () =
  let prng = Prng.create 3 in
  for _ = 1 to 500 do
    let x1 = Prng.range prng 0.0 1.0 and x2 = Prng.range prng 0.0 1.0 in
    let c1, c2 = M.Variation.sbx prng ~eta:15.0 ~lo:0.0 ~hi:1.0 x1 x2 in
    if c1 < 0.0 || c1 > 1.0 || c2 < 0.0 || c2 > 1.0 then
      Alcotest.fail "SBX child escaped the bounds"
  done;
  (* unclipped SBX preserves the parent sum (symmetric spread) *)
  let c1, c2 = M.Variation.sbx prng ~eta:15.0 ~lo:(-100.0) ~hi:100.0 2.0 4.0 in
  Alcotest.(check (float 1e-9)) "midpoint preserved" 6.0 (c1 +. c2)

let test_sbx_equal_parents () =
  let prng = Prng.create 4 in
  let c1, c2 = M.Variation.sbx prng ~eta:15.0 ~lo:0.0 ~hi:1.0 0.5 0.5 in
  Alcotest.(check (float 0.0)) "identical parents pass through c1" 0.5 c1;
  Alcotest.(check (float 0.0)) "identical parents pass through c2" 0.5 c2

let test_polynomial_mutation_bounds () =
  let prng = Prng.create 5 in
  for _ = 1 to 500 do
    let x = Prng.range prng (-2.0) 3.0 in
    let y = M.Variation.polynomial_mutation prng ~eta:20.0 ~lo:(-2.0) ~hi:3.0 x in
    if y < -2.0 || y > 3.0 then Alcotest.fail "mutation escaped the bounds"
  done

let test_mutate_in_place_rate () =
  (* mutation_prob 0 leaves vectors untouched *)
  let prng = Prng.create 6 in
  let x = [| 0.3; 0.7; 0.1 |] in
  let y = Array.copy x in
  M.Variation.mutate_in_place prng
    ~bounds:(Array.make 3 (0.0, 1.0))
    ~mutation_prob:0.0 ~eta_mutation:20.0 y;
  Alcotest.(check (array (float 0.0))) "no mutation at rate 0" x y

(* ---- SPEA2 ---- *)

let test_spea2_converges_zdt1 () =
  let arch =
    M.Spea2.optimise
      ~options:
        { M.Spea2.default_options with population = 40; archive = 40; generations = 50 }
      (zdt1 8) (Prng.create 3)
  in
  let front = M.Nsga2.pareto_front arch in
  Alcotest.(check bool) "large front" true (Array.length front > 15);
  let errs =
    Array.map
      (fun ind ->
        let o = ind.M.Nsga2.evaluation.M.Problem.objectives in
        Float.abs (o.(1) -. (1.0 -. sqrt o.(0))))
      front
  in
  Alcotest.(check bool) "near analytic front" true
    (Repro_util.Stats.mean errs < 0.05)

let test_spea2_archive_size () =
  let arch =
    M.Spea2.optimise
      ~options:
        { M.Spea2.default_options with population = 30; archive = 12; generations = 15 }
      (zdt1 5) (Prng.create 7)
  in
  Alcotest.(check int) "archive bounded" 12 (Array.length arch)

let test_spea2_deterministic () =
  let run seed =
    M.Spea2.optimise
      ~options:
        { M.Spea2.default_options with population = 16; archive = 8; generations = 5 }
      (zdt1 4) (Prng.create seed)
    |> Array.map (fun ind -> ind.M.Nsga2.evaluation.M.Problem.objectives)
  in
  Alcotest.(check bool) "same seed same archive" true (run 3 = run 3);
  Alcotest.(check bool) "seeds differ" true (run 3 <> run 4)

let test_spea2_respects_constraints () =
  let problem =
    M.Problem.create ~name:"c"
      ~bounds:[| (0.0, 2.0); (0.0, 2.0) |]
      ~objective_names:[| "x"; "y" |]
      (fun x ->
        {
          M.Problem.objectives = [| x.(0); x.(1) |];
          constraint_violation = Float.max 0.0 (1.0 -. (x.(0) +. x.(1)));
        })
  in
  let arch =
    M.Spea2.optimise
      ~options:
        { M.Spea2.default_options with population = 30; archive = 20; generations = 40 }
      problem (Prng.create 9)
  in
  let front = M.Nsga2.pareto_front arch in
  Alcotest.(check bool) "feasible front found" true (Array.length front > 0);
  Array.iter
    (fun ind ->
      let o = ind.M.Nsga2.evaluation.M.Problem.objectives in
      if o.(0) +. o.(1) < 0.999 then Alcotest.fail "constraint violated")
    front

let test_spea2_invalid_options () =
  Alcotest.(check bool) "tiny archive rejected" true
    (try
       ignore
         (M.Spea2.optimise
            ~options:{ M.Spea2.default_options with archive = 1 }
            (zdt1 3) (Prng.create 1));
       false
     with Invalid_argument _ -> true)

(* ---- LHS ---- *)

let test_lhs_stratified () =
  let prng = Prng.create 11 in
  let pts = Sampling.latin_hypercube prng ~dims:3 ~samples:16 in
  Alcotest.(check int) "sample count" 16 (Array.length pts);
  for d = 0 to 2 do
    let col = Array.map (fun p -> p.(d)) pts in
    Array.sort compare col;
    Array.iteri
      (fun i v ->
        let lo = float_of_int i /. 16.0 and hi = float_of_int (i + 1) /. 16.0 in
        if v < lo || v >= hi then
          Alcotest.failf "dimension %d not stratified at bin %d" d i)
      col
  done

let test_lhs_invalid () =
  Alcotest.(check bool) "zero samples rejected" true
    (try
       ignore (Sampling.latin_hypercube (Prng.create 1) ~dims:1 ~samples:0);
       false
     with Invalid_argument _ -> true)

let test_scale_to_box () =
  let pts = [| [| 0.0; 0.5 |]; [| 1.0; 0.25 |] |] in
  let scaled = Sampling.scale_to_box [| (10.0, 20.0); (-1.0, 1.0) |] pts in
  Alcotest.(check (float 1e-12)) "lo corner" 10.0 scaled.(0).(0);
  Alcotest.(check (float 1e-12)) "mid" 0.0 scaled.(0).(1);
  Alcotest.(check (float 1e-12)) "hi corner" 20.0 scaled.(1).(0)

let test_inverse_cdf () =
  List.iter
    (fun (p, expected) ->
      let v = Sampling.normal_inverse_cdf p in
      if Float.abs (v -. expected) > 2e-4 then
        Alcotest.failf "quantile(%g) = %g, expected %g" p v expected)
    [ (0.5, 0.0); (0.975, 1.95996); (0.84134, 1.0); (0.001, -3.09023) ];
  Alcotest.(check bool) "p=0 rejected" true
    (try ignore (Sampling.normal_inverse_cdf 0.0); false
     with Invalid_argument _ -> true)

let test_gaussian_lhs_moments () =
  let prng = Prng.create 13 in
  let pts = Sampling.gaussian_lhs prng ~dims:1 ~samples:2000 in
  let xs = Array.map (fun p -> p.(0)) pts in
  Alcotest.(check (float 0.01)) "mean" 0.0 (Repro_util.Stats.mean xs);
  Alcotest.(check (float 0.01)) "std" 1.0 (Repro_util.Stats.stddev xs)

let test_lhs_variance_reduction () =
  (* estimating E[x] of U(0,1): LHS beats plain MC at equal n *)
  let trials = 60 and n = 32 in
  let err_mc = ref 0.0 and err_lhs = ref 0.0 in
  let prng = Prng.create 17 in
  for _ = 1 to trials do
    let mc = Array.init n (fun _ -> Prng.uniform prng) in
    let lhs =
      Array.map
        (fun p -> p.(0))
        (Sampling.latin_hypercube prng ~dims:1 ~samples:n)
    in
    let e xs = Float.abs (Repro_util.Stats.mean xs -. 0.5) in
    err_mc := !err_mc +. e mc;
    err_lhs := !err_lhs +. e lhs
  done;
  Alcotest.(check bool)
    (Printf.sprintf "LHS error %.4f << MC error %.4f" !err_lhs !err_mc)
    true
    (!err_lhs < 0.5 *. !err_mc)

(* ---- reference spur ---- *)

let spur_cfg leakage mismatch =
  {
    B.Pll.fref = 100e6;
    n_div = 8;
    cp =
      {
        (B.Charge_pump.with_mismatch ~icp:200e-6 ~mismatch) with
        B.Charge_pump.leakage;
      };
    filter = { B.Loop_filter.c1 = 10e-12; c2 = 0.6e-12; r1 = 6e3 };
    vco =
      { B.Vco_model.f0 = 800e6; v0 = 0.85; kvco = 500e6; fmin = 300e6;
        fmax = 1.5e9; jitter = 0.2e-12 };
    ivco = 5e-3;
    overhead_current = 8e-3;
    vctl_init = 0.2;
  }

let test_spur_ideal_pump () =
  Alcotest.(check bool) "ideal pump has no spur" true
    (B.Pll.reference_spur_dbc (spur_cfg 0.0 0.0) = neg_infinity)

let test_spur_grows_with_leakage () =
  let s1 = B.Pll.reference_spur_dbc (spur_cfg 1e-9 0.0) in
  let s2 = B.Pll.reference_spur_dbc (spur_cfg 1e-6 0.0) in
  Alcotest.(check bool) "more leakage, bigger spur" true (s2 > s1);
  (* 1000x leakage = +60 dB exactly in the leakage-dominated regime *)
  Alcotest.(check (float 0.1)) "60 dB per 1000x" 60.0 (s2 -. s1);
  Alcotest.(check bool) "realistic leakage spur below -40 dBc" true (s1 < -40.0)

let test_spur_mismatch_contributes () =
  let s = B.Pll.reference_spur_dbc (spur_cfg 0.0 0.1) in
  Alcotest.(check bool) "mismatch alone produces a finite spur" true
    (Float.is_finite s)

let suite =
  [
    Alcotest.test_case "sbx bounds and mean" `Quick test_sbx_bounds_and_mean;
    Alcotest.test_case "sbx equal parents" `Quick test_sbx_equal_parents;
    Alcotest.test_case "polynomial mutation bounds" `Quick test_polynomial_mutation_bounds;
    Alcotest.test_case "mutation rate 0" `Quick test_mutate_in_place_rate;
    Alcotest.test_case "SPEA2 converges on ZDT1" `Quick test_spea2_converges_zdt1;
    Alcotest.test_case "SPEA2 archive size" `Quick test_spea2_archive_size;
    Alcotest.test_case "SPEA2 deterministic" `Quick test_spea2_deterministic;
    Alcotest.test_case "SPEA2 constraints" `Quick test_spea2_respects_constraints;
    Alcotest.test_case "SPEA2 invalid options" `Quick test_spea2_invalid_options;
    Alcotest.test_case "LHS stratification" `Quick test_lhs_stratified;
    Alcotest.test_case "LHS invalid" `Quick test_lhs_invalid;
    Alcotest.test_case "scale to box" `Quick test_scale_to_box;
    Alcotest.test_case "inverse normal CDF" `Quick test_inverse_cdf;
    Alcotest.test_case "gaussian LHS moments" `Quick test_gaussian_lhs_moments;
    Alcotest.test_case "LHS variance reduction" `Quick test_lhs_variance_reduction;
    Alcotest.test_case "spur: ideal pump" `Quick test_spur_ideal_pump;
    Alcotest.test_case "spur: leakage scaling" `Quick test_spur_grows_with_leakage;
    Alcotest.test_case "spur: mismatch" `Quick test_spur_mismatch_contributes;
  ]
