(** Run-lifecycle checkpointing: a {!Snapshot} bound to an on-disk path
    plus a flush cadence and a process-wide interrupt flag.

    The long loops (GA generations, Monte-Carlo sample prefixes, flow
    phases) mutate the in-memory snapshot as they complete units of work
    and call {!flush} every [every] units; {!guard} is called at loop
    boundaries so a requested interrupt (SIGINT or
    {!request_interrupt}) flushes a final snapshot and raises
    {!Interrupted} at a clean, resumable boundary.  Because every
    stochastic loop in the code base draws from pre-split, index-stable
    PRNG streams, resuming from any such boundary reproduces the
    uninterrupted run bit-for-bit. *)

exception Interrupted
(** Raised by {!guard} at a loop boundary after the final snapshot has
    been flushed. *)

type t

val create : ?every:int -> fingerprint:string -> string -> t
(** [create ~fingerprint path] starts a fresh (cold) checkpoint writing
    to [path].  [every] (default 1) is the flush cadence in work units
    (GA generations, MC samples).  @raise Invalid_argument when
    [every < 1]. *)

val resume : ?every:int -> fingerprint:string -> string -> (t, string) result
(** Load the snapshot at [path] and validate its version and
    fingerprint.  [Error reason] covers every failure (missing, corrupt,
    version or fingerprint mismatch) — callers warn and fall back to
    {!create}. *)

val path : t -> string
val every : t -> int
val snapshot : t -> Snapshot.t

val flush : t -> unit
(** Atomically persist the current snapshot state to disk. *)

(* ---- interruption ---- *)

val request_interrupt : unit -> unit
(** Set the process-wide interrupt flag (signal-safe); the next {!guard}
    will flush and raise.  Also the deterministic test/CI hook. *)

val interrupted : unit -> bool
val clear_interrupt : unit -> unit

val install_signal_handler : unit -> unit
(** Route SIGINT to {!request_interrupt}.  A second SIGINT restores the
    default behaviour, so a stuck run can still be killed. *)

val guard : t option -> unit
(** [guard (Some t)] flushes [t] and raises {!Interrupted} when an
    interrupt was requested; [guard None] is a no-op (un-checkpointed
    runs keep the default SIGINT behaviour). *)

(* ---- resumable bulk evaluation ---- *)

val resumable_map :
  ?pool:Pool.t ->
  ?chunk:int ->
  ?bulk:('a array -> 'b array) ->
  t ->
  key:string ->
  encode:('b -> float array) ->
  decode:(float array -> 'b) ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [resumable_map t ~key ~encode ~decode f items] behaves like
    {!Parmap.map f items} but persists the completed-result prefix under
    [key] in the snapshot, flushing every {!every} items, and restores
    that prefix (skipping the corresponding calls to [f]) on resume.
    [decode] may raise on a malformed row, in which case the whole
    stored prefix is discarded and the map restarts cold.  Calls
    {!guard} between chunks, so it raises {!Interrupted} at an
    item-prefix boundary.  Results are identical to the plain map
    because item order and any per-item PRNG streams are index-stable.

    [chunk] forwards to {!Parmap.map} (dispatch granularity only).
    [bulk] replaces the local parallel map for each uncompleted chunk
    with a caller-supplied bulk evaluator (e.g. a remote worker farm);
    it must return one result per input, in order, and must be
    semantically identical to mapping [f] — the checkpoint/restore
    machinery around it is unchanged, which is what makes a mid-run
    worker failure resumable from the completed prefix.
    @raise Failure when [bulk] returns the wrong number of results. *)
