(** The combined performance-and-variation lookup-table model — the OCaml
    equivalent of the paper's Listings 1 & 2.

    Built from the Monte-Carlo-annotated Pareto front, it exposes exactly
    the interpolations the Verilog-A model performs:

    - ∆ tables ([$table_model(kvco, "kvco_delta.tbl", "3E")] etc.):
      1-D cubic-spline tables mapping each nominal performance to its
      relative spread;
    - performance tables ([jvco = $table_model(kvco, ivco, "data.tbl")]):
      scattered-data interpolation of jitter / fmin / fmax over the
      (kvco, ivco) plane;
    - parameter-recovery tables ([p1..p7 = $table_model(kvco, ivco,
      jvco, fmin, fmax, "p1_data.tbl" ...)]): the bottom-up mapping from
      a chosen performance point back to the 7 transistor dimensions.

    [save]/[load] round-trip the model through the same whitespace
    ".tbl" files the paper's flow writes, so a model directory is
    interchangeable with the Verilog-A artefacts. *)

type t

val build : Variation_model.entry array -> t
(** @raise Invalid_argument with fewer than 2 entries. *)

val entries : t -> Variation_model.entry array

val size : t -> int

(* ∆ interpolations (Listing 1) — inputs are clamped to the table range,
   matching the paper's no-extrapolation "3E" policy *)

val kvco_delta : t -> float -> float
val jvco_delta : t -> float -> float
val ivco_delta : t -> float -> float
val fmin_delta : t -> float -> float
val fmax_delta : t -> float -> float

(* performance interpolations (Listing 2) *)

val jvco_of : t -> kvco:float -> ivco:float -> float
val fmin_of : t -> kvco:float -> ivco:float -> float
val fmax_of : t -> kvco:float -> ivco:float -> float

(* bottom-up parameter recovery (Listing 1's p1..p7) *)

val params_of_perf :
  t -> Repro_spice.Vco_measure.performance -> Repro_circuit.Topologies.vco_params

(* design-space ranges for the system-level optimiser *)

val kvco_range : t -> float * float
val ivco_range : t -> float * float

val min_max_of_delta : nominal:float -> delta:float -> float * float
(** The paper's §4.5 bracketing: nominal ∓ delta·nominal. *)

(* combined query entry points (the model-server / remote-evaluation
   surface).

   A built table is immutable and every interpolation below is pure, so
   [eval_point]/[eval_points] — like all the query functions above —
   are safe to call concurrently from any number of domains or threads
   on a shared [t] without external locking. *)

type point_eval = {
  q_kvco : float * float * float;
      (** (nominal, min, max) — the ∆-table bracketing of the queried
          gain, Listing 1's [kvco_var] pair around the nominal *)
  q_ivco : float * float * float;  (** same bracketing for the current *)
  q_jvco : float * float * float;
      (** nominal jitter interpolated at (kvco, ivco), bracketed by the
          jitter ∆ table *)
  q_fmin : float;  (** interpolated band bottom at (kvco, ivco) *)
  q_fmax : float;  (** interpolated band top *)
}

val eval_point : t -> kvco:float -> ivco:float -> point_eval
(** Everything the system level needs about one (kvco, ivco) operating
    point in a single call: exactly the floats the individual
    [jvco_of]/[fmin_of]/[fmax_of]/[*_delta]/[min_max_of_delta] calls
    produce — served and local evaluation are bit-identical. *)

val eval_points : t -> (float * float) array -> point_eval array
(** Batched [eval_point] over (kvco, ivco) pairs, preserving order —
    the payload shape of the model server's [POST /models/:id/query]. *)

val save : dir:string -> t -> unit
(** Write kvco_delta.tbl, jvco_delta.tbl, ivco_delta.tbl, fmin_delta.tbl,
    fmax_delta.tbl, data.tbl (jvco), fmin_data.tbl, fmax_data.tbl,
    p1_data.tbl .. p7_data.tbl and pareto.tbl into [dir] (created if
    missing). *)

exception
  Invalid_table_file of {
    path : string;           (** the offending file *)
    expected_columns : int;
    found_columns : int;     (** what the file actually contains *)
  }
(** Structured rejection of an archive file with the wrong shape. *)

val load : dir:string -> t
(** Rebuild a model from a saved directory.
    @raise Invalid_table_file when [dir/pareto.tbl] does not have the 18
    input columns the archive format requires.
    @raise Sys_error / Failure on missing or otherwise malformed
    files. *)
