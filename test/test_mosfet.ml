module Mosfet = Repro_circuit.Mosfet

let nominal = (0.0, 1.0) (* vth_shift, kp_scale *)

let eval_n ?(m = Mosfet.nmos_012) ?(w = 10e-6) ?(l = 0.5e-6) vgs vds =
  let vth_shift, kp_scale = nominal in
  Mosfet.eval m ~w ~l ~vth_shift ~kp_scale ~vgs ~vds

let test_cutoff_current_small () =
  let r = eval_n 0.0 1.0 in
  Alcotest.(check bool) "cutoff current tiny" true (r.Mosfet.ids < 1e-7);
  Alcotest.(check bool) "cutoff current positive" true (r.Mosfet.ids >= 0.0)

let test_current_increases_with_vgs () =
  let prev = ref (-1.0) in
  List.iter
    (fun vgs ->
      let r = eval_n vgs 1.2 in
      if r.Mosfet.ids <= !prev then
        Alcotest.failf "ids not increasing at vgs=%g" vgs;
      prev := r.Mosfet.ids)
    [ 0.2; 0.4; 0.6; 0.8; 1.0; 1.2 ]

let test_current_increases_with_vds () =
  let prev = ref (-1.0) in
  List.iter
    (fun vds ->
      let r = eval_n 1.0 vds in
      if r.Mosfet.ids < !prev then Alcotest.failf "ids decreasing at vds=%g" vds;
      prev := r.Mosfet.ids)
    [ 0.05; 0.1; 0.3; 0.5; 0.8; 1.2 ]

let test_saturation_clm_slope () =
  (* beyond vdsat the only vds dependence is channel-length modulation *)
  let r1 = eval_n 0.8 1.0 in
  let r2 = eval_n 0.8 1.2 in
  let slope = (r2.Mosfet.ids -. r1.Mosfet.ids) /. 0.2 in
  Alcotest.(check bool) "small positive saturation slope" true
    (slope > 0.0 && slope < 0.2 *. r1.Mosfet.ids /. 0.2)

let test_width_scaling () =
  let r1 = eval_n ~w:10e-6 1.0 1.2 in
  let r2 = eval_n ~w:20e-6 1.0 1.2 in
  Alcotest.(check (float 1e-9)) "ids scales with W"
    (2.0 *. r1.Mosfet.ids) r2.Mosfet.ids

let test_vth_shift_slows_device () =
  let fast = Mosfet.eval Mosfet.nmos_012 ~w:10e-6 ~l:0.5e-6 ~vth_shift:(-0.05)
      ~kp_scale:1.0 ~vgs:0.8 ~vds:1.2 in
  let slow = Mosfet.eval Mosfet.nmos_012 ~w:10e-6 ~l:0.5e-6 ~vth_shift:0.05
      ~kp_scale:1.0 ~vgs:0.8 ~vds:1.2 in
  Alcotest.(check bool) "vth shift ordering" true
    (fast.Mosfet.ids > slow.Mosfet.ids)

let test_kp_scale_proportional () =
  let a = Mosfet.eval Mosfet.nmos_012 ~w:10e-6 ~l:0.5e-6 ~vth_shift:0.0
      ~kp_scale:1.0 ~vgs:1.0 ~vds:1.2 in
  let b = Mosfet.eval Mosfet.nmos_012 ~w:10e-6 ~l:0.5e-6 ~vth_shift:0.0
      ~kp_scale:1.1 ~vgs:1.0 ~vds:1.2 in
  Alcotest.(check (float 1e-6)) "kp scaling" (1.1 *. a.Mosfet.ids) b.Mosfet.ids

let fd_check ~vgs ~vds =
  (* analytic gm/gds must match central finite differences *)
  let h = 1e-7 in
  let r = eval_n vgs vds in
  let rp = eval_n (vgs +. h) vds and rm = eval_n (vgs -. h) vds in
  let gm_fd = (rp.Mosfet.ids -. rm.Mosfet.ids) /. (2.0 *. h) in
  let rp2 = eval_n vgs (vds +. h) and rm2 = eval_n vgs (vds -. h) in
  let gds_fd = (rp2.Mosfet.ids -. rm2.Mosfet.ids) /. (2.0 *. h) in
  let close a b =
    Float.abs (a -. b) <= 1e-4 *. (Float.max (Float.abs a) (Float.abs b) +. 1e-9)
  in
  if not (close r.Mosfet.gm gm_fd) then
    Alcotest.failf "gm mismatch at (%.2f, %.2f): analytic %g vs fd %g" vgs vds
      r.Mosfet.gm gm_fd;
  if not (close r.Mosfet.gds gds_fd) then
    Alcotest.failf "gds mismatch at (%.2f, %.2f): analytic %g vs fd %g" vgs vds
      r.Mosfet.gds gds_fd

let test_derivatives_match_fd () =
  (* sweep both regions; avoid the exact vds = vdsat corner where the
     model is only C1 *)
  List.iter
    (fun (vgs, vds) -> fd_check ~vgs ~vds)
    [ (0.3, 0.6); (0.5, 0.05); (0.7, 0.1); (0.8, 1.1); (1.0, 0.2); (1.2, 1.2);
      (0.1, 0.5); (0.45, 0.9) ]

let test_continuity_across_vdsat () =
  (* walk vds finely through the triode/saturation blend: no jumps *)
  let prev = ref None in
  let steps = 400 in
  for k = 0 to steps do
    let vds = 1.4 *. float_of_int k /. float_of_int steps in
    let r = eval_n 0.9 vds in
    (match !prev with
    | Some (ids_prev, vds_prev) ->
      let dv = vds -. vds_prev in
      if Float.abs (r.Mosfet.ids -. ids_prev) > (0.05 *. Float.abs ids_prev) +. 2e-5
      then
        Alcotest.failf "current jump at vds=%g (step %g)" vds dv
    | None -> ());
    prev := Some (r.Mosfet.ids, vds)
  done

let test_capacitances_scale () =
  let c1 = Mosfet.capacitances Mosfet.nmos_012 ~w:10e-6 ~l:0.2e-6 in
  let c2 = Mosfet.capacitances Mosfet.nmos_012 ~w:20e-6 ~l:0.2e-6 in
  Alcotest.(check bool) "cgs positive" true (c1.Mosfet.cgs > 0.0);
  Alcotest.(check (float 1e-20)) "cdb scales with W" (2.0 *. c1.Mosfet.cdb)
    c2.Mosfet.cdb;
  Alcotest.(check bool) "cgs grows with W" true (c2.Mosfet.cgs > c1.Mosfet.cgs)

let test_pelgrom_scaling () =
  let s1 = Mosfet.sigma_vth Mosfet.nmos_012 ~w:10e-6 ~l:0.1e-6 in
  let s2 = Mosfet.sigma_vth Mosfet.nmos_012 ~w:40e-6 ~l:0.1e-6 in
  Alcotest.(check (float 1e-9)) "sigma halves when area x4" (s1 /. 2.0) s2;
  let k1 = Mosfet.sigma_kp_rel Mosfet.nmos_012 ~w:10e-6 ~l:0.1e-6 in
  Alcotest.(check bool) "kp mismatch positive and small" true
    (k1 > 0.0 && k1 < 0.2)

let test_pmos_parameters () =
  Alcotest.(check bool) "pmos weaker" true
    (Mosfet.pmos_012.Mosfet.kp < Mosfet.nmos_012.Mosfet.kp);
  Alcotest.(check bool) "pmos polarity" true
    (Mosfet.pmos_012.Mosfet.polarity = Mosfet.Pmos)

let prop_ids_nonnegative =
  QCheck.Test.make ~name:"ids >= 0 over the bias box" ~count:500
    QCheck.(pair (float_range (-0.5) 1.5) (float_range 0.0 1.5))
    (fun (vgs, vds) ->
      let r = eval_n vgs vds in
      r.Mosfet.ids >= 0.0 && Float.is_finite r.Mosfet.ids
      && Float.is_finite r.Mosfet.gm && Float.is_finite r.Mosfet.gds)

let prop_gm_nonnegative =
  QCheck.Test.make ~name:"gm >= 0 (monotone in vgs)" ~count:300
    QCheck.(pair (float_range (-0.2) 1.4) (float_range 0.01 1.4))
    (fun (vgs, vds) -> (eval_n vgs vds).Mosfet.gm >= -1e-12)

let suite =
  [
    Alcotest.test_case "cutoff current" `Quick test_cutoff_current_small;
    Alcotest.test_case "monotone in vgs" `Quick test_current_increases_with_vgs;
    Alcotest.test_case "monotone in vds" `Quick test_current_increases_with_vds;
    Alcotest.test_case "saturation CLM slope" `Quick test_saturation_clm_slope;
    Alcotest.test_case "width scaling" `Quick test_width_scaling;
    Alcotest.test_case "vth shift ordering" `Quick test_vth_shift_slows_device;
    Alcotest.test_case "kp scaling" `Quick test_kp_scale_proportional;
    Alcotest.test_case "analytic derivatives vs FD" `Quick test_derivatives_match_fd;
    Alcotest.test_case "continuity across vdsat" `Quick test_continuity_across_vdsat;
    Alcotest.test_case "capacitance scaling" `Quick test_capacitances_scale;
    Alcotest.test_case "Pelgrom scaling" `Quick test_pelgrom_scaling;
    Alcotest.test_case "pmos parameters" `Quick test_pmos_parameters;
    QCheck_alcotest.to_alcotest prop_ids_nonnegative;
    QCheck_alcotest.to_alcotest prop_gm_nonnegative;
  ]
