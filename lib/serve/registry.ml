module Telemetry = Repro_engine.Telemetry

type error =
  | Unknown_model of string
  | Invalid_id of string
  | Load_failure of { id : string; message : string }

let error_to_string = function
  | Unknown_model id -> Printf.sprintf "unknown model %S" id
  | Invalid_id id -> Printf.sprintf "invalid model id %S" id
  | Load_failure { id; message } ->
    Printf.sprintf "model %S failed to load: %s" id message

type entry = {
  table : Hieropt.Perf_table.t;
  mtime : float;
  size : int;
  mutable last_used : int;  (** registry tick at last access (LRU order) *)
}

type t = {
  root : string;
  capacity : int;
  mutex : Mutex.t;
  cache : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 8) ~root () =
  {
    root;
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    cache = Hashtbl.create 8;
    tick = 0;
  }

let root t = t.root

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* "default", or a plain directory name: no separators, no leading dot *)
let valid_id id =
  id <> ""
  && id.[0] <> '.'
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

let dir_of t id =
  if id = "default" then t.root else Filename.concat t.root id

let archive_of dir = Filename.concat dir "pareto.tbl"

let stat_archive dir =
  match Unix.stat (archive_of dir) with
  | { Unix.st_mtime; st_size; st_kind = Unix.S_REG; _ } ->
    Some (st_mtime, st_size)
  | _ -> None
  | exception Unix.Unix_error _ -> None

let evict_beyond_capacity t =
  while Hashtbl.length t.cache > t.capacity do
    let victim =
      Hashtbl.fold
        (fun id e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (id, e))
        t.cache None
    in
    match victim with
    | Some (id, _) ->
      Hashtbl.remove t.cache id;
      Telemetry.incr "serve.model_evictions"
    | None -> ()
  done

let load_entry t id dir (mtime, size) =
  match Hieropt.Perf_table.load ~dir with
  | table ->
    Telemetry.incr "serve.model_loads";
    let e = { table; mtime; size; last_used = t.tick } in
    Hashtbl.replace t.cache id e;
    evict_beyond_capacity t;
    Ok table
  | exception exn ->
    let message =
      match exn with
      | Hieropt.Perf_table.Invalid_table_file _ -> Printexc.to_string exn
      | Sys_error msg | Failure msg -> msg
      | Invalid_argument msg -> msg
      | exn -> raise exn
    in
    Telemetry.incr "serve.model_load_failures";
    Error (Load_failure { id; message })

let get t id =
  if not (valid_id id) then Error (Invalid_id id)
  else
    locked t @@ fun () ->
    t.tick <- t.tick + 1;
    let dir = dir_of t id in
    match stat_archive dir with
    | None ->
      (* a model that vanished from disk must also leave the cache *)
      Hashtbl.remove t.cache id;
      Error (Unknown_model id)
    | Some ((mtime, size) as fp) -> (
      match Hashtbl.find_opt t.cache id with
      | Some e when e.mtime = mtime && e.size = size ->
        e.last_used <- t.tick;
        Ok e.table
      | Some _ ->
        Telemetry.incr "serve.model_reloads";
        load_entry t id dir fp
      | None -> load_entry t id dir fp)

(* lock-free on purpose: the hot query path revalidates its per-domain
   handle against the on-disk archive with one stat, no mutex *)
let fingerprint t id =
  if not (valid_id id) then Error (Invalid_id id)
  else
    match stat_archive (dir_of t id) with
    | None -> Error (Unknown_model id)
    | Some fp -> Ok fp

type info = {
  id : string;
  dir : string;
  loaded : bool;
  entries : int option;
}

let list t =
  locked t @@ fun () ->
  let candidates =
    let subdirs =
      match Sys.readdir t.root with
      | names ->
        Array.to_list names
        |> List.filter (fun name ->
               valid_id name && name <> "default"
               && Sys.is_directory (Filename.concat t.root name))
      | exception Sys_error _ -> []
    in
    ("default" :: subdirs) |> List.sort String.compare
  in
  List.filter_map
    (fun id ->
      let dir = dir_of t id in
      match stat_archive dir with
      | None -> None
      | Some _ ->
        let entry = Hashtbl.find_opt t.cache id in
        Some
          {
            id;
            dir;
            loaded = entry <> None;
            entries =
              Option.map (fun e -> Hieropt.Perf_table.size e.table) entry;
          })
    candidates

let loaded_count t = locked t @@ fun () -> Hashtbl.length t.cache
