(* Pull-based HTTP/1.1 connection state machine.  The reactor owns the
   sockets and the syscalls; this module owns the bytes: [feed] absorbs
   whatever arrived and returns the complete requests found (several at
   once for pipelined clients, none while a message is still partial),
   [push_response] appends wire bytes to the output buffer for the
   reactor to drain as the socket allows. *)

type event = Request of Http.request | Protocol_error of Http.error

type state =
  | Head  (* accumulating request line + headers *)
  | Body of { head : Http.request; need : int }
  | Broken  (* protocol error emitted; no further parsing *)

type t = {
  mutable inp : Bytes.t;
  mutable in_start : int;  (* valid input region is [in_start, in_len) *)
  mutable in_len : int;
  mutable scan : int;  (* head-terminator scan resumes here, >= in_start *)
  mutable state : state;
  mutable out : Bytes.t;
  mutable out_start : int;  (* unwritten output is [out_start, out_len) *)
  mutable out_len : int;
  render : Buffer.t;  (* response serialisation scratch, reused *)
  mutable close_after_flush : bool;
}

let create () =
  {
    inp = Bytes.create 4096;
    in_start = 0;
    in_len = 0;
    scan = 0;
    state = Head;
    out = Bytes.create 4096;
    out_start = 0;
    out_len = 0;
    render = Buffer.create 1024;
    close_after_flush = false;
  }

(* make room for [extra] more bytes at [in_len]: compact the consumed
   prefix away first, grow only if still needed *)
let ensure_in t extra =
  if t.in_len + extra > Bytes.length t.inp then begin
    let used = t.in_len - t.in_start in
    if used + extra > Bytes.length t.inp then begin
      let cap = ref (max 8 (2 * Bytes.length t.inp)) in
      while used + extra > !cap do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.inp t.in_start grown 0 used;
      t.inp <- grown
    end
    else Bytes.blit t.inp t.in_start t.inp 0 used;
    t.scan <- t.scan - t.in_start;
    t.in_start <- 0;
    t.in_len <- used
  end

let consume t n =
  t.in_start <- t.in_start + n;
  t.scan <- t.in_start;
  if t.in_start = t.in_len then begin
    t.in_start <- 0;
    t.in_len <- 0;
    t.scan <- 0
  end

(* absolute offset one past the head-terminating blank line, or None if
   it has not arrived yet.  [scan] parks on a trailing '\n' (or
   "\n\r") so a terminator split across feeds is still found without
   rescanning the whole buffer. *)
let find_head_end t =
  let rec go i =
    if i >= t.in_len then begin
      t.scan <- max t.in_start (t.in_len - 2);
      None
    end
    else if Bytes.get t.inp i <> '\n' then go (i + 1)
    else if i + 1 < t.in_len && Bytes.get t.inp (i + 1) = '\n' then Some (i + 2)
    else if
      i + 2 < t.in_len
      && Bytes.get t.inp (i + 1) = '\r'
      && Bytes.get t.inp (i + 2) = '\n'
    then Some (i + 3)
    else if
      i + 1 >= t.in_len || (Bytes.get t.inp (i + 1) = '\r' && i + 2 >= t.in_len)
    then begin
      t.scan <- i;
      None
    end
    else go (i + 1)
  in
  go (max t.scan t.in_start)

let rec drive t acc =
  match t.state with
  | Broken -> acc
  | Body { head; need } ->
    if t.in_len - t.in_start >= need then begin
      let body = Bytes.sub_string t.inp t.in_start need in
      consume t need;
      t.state <- Head;
      drive t (Request { head with body } :: acc)
    end
    else acc
  | Head -> (
    match find_head_end t with
    | None ->
      if t.in_len - t.in_start > Http.max_head then begin
        t.state <- Broken;
        Protocol_error (`Too_large "head") :: acc
      end
      else acc
    | Some head_end ->
      let head_str = Bytes.sub_string t.inp t.in_start (head_end - t.in_start) in
      consume t (head_end - t.in_start);
      (match Http.parse_request_head head_str with
      | Error err ->
        t.state <- Broken;
        Protocol_error err :: acc
      | Ok head -> (
        match Http.body_length head.Http.headers with
        | Error err ->
          t.state <- Broken;
          Protocol_error err :: acc
        | Ok 0 -> drive t (Request head :: acc)
        | Ok need ->
          t.state <- Body { head; need };
          drive t acc)))

let feed t buf off len =
  match t.state with
  | Broken -> []
  | _ ->
    ensure_in t len;
    Bytes.blit buf off t.inp t.in_len len;
    t.in_len <- t.in_len + len;
    List.rev (drive t [])

let push_response ?headers ~keep_alive ~status ~body t =
  Buffer.clear t.render;
  Http.render_response ?headers ~keep_alive ~status ~body t.render;
  let n = Buffer.length t.render in
  if t.out_len + n > Bytes.length t.out then begin
    let used = t.out_len - t.out_start in
    if used + n > Bytes.length t.out then begin
      let cap = ref (max 8 (2 * Bytes.length t.out)) in
      while used + n > !cap do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.out t.out_start grown 0 used;
      t.out <- grown
    end
    else Bytes.blit t.out t.out_start t.out 0 used;
    t.out_start <- 0;
    t.out_len <- used
  end;
  Buffer.blit t.render 0 t.out t.out_len n;
  t.out_len <- t.out_len + n;
  if not keep_alive then t.close_after_flush <- true

let output_pending t = t.out_len - t.out_start

let output t = (t.out, t.out_start, t.out_len - t.out_start)

let output_consumed t n =
  t.out_start <- t.out_start + n;
  if t.out_start = t.out_len then begin
    t.out_start <- 0;
    t.out_len <- 0;
    (* a one-off huge response must not pin its buffer forever *)
    if Bytes.length t.out > 1 lsl 20 then t.out <- Bytes.create 4096
  end

let close_after_flush t = t.close_after_flush
let set_close_after_flush t = t.close_after_flush <- true
let broken t = t.state = Broken
let input_pending t = t.in_len - t.in_start > 0

let mid_request t =
  match t.state with
  | Body _ -> true
  | Head -> t.in_len - t.in_start > 0
  | Broken -> false
