(* shortest float rendering that parses back to the exact value, same
   contract as the serve-layer encoder: a number written to a trace or
   journal can be reconstructed bit-for-bit *)
let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let exact fmt =
      let s = Printf.sprintf fmt x in
      if float_of_string s = x then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> (
      match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" x)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

type value = S of string | F of float | I of int

let value_repr = function
  | S s -> quote s
  | F x -> float_repr x
  | I n -> string_of_int n

(* one compact JSON object from already-ordered fields *)
let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (quote k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (value_repr v))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf
