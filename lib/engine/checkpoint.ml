exception Interrupted

type t = {
  path : string;
  every : int;
  snap : Snapshot.t;
}

let create ?(every = 1) ~fingerprint path =
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  { path; every; snap = Snapshot.create ~fingerprint }

let resume ?(every = 1) ~fingerprint path =
  if every < 1 then invalid_arg "Checkpoint.resume: every must be >= 1";
  match Snapshot.load ~fingerprint path with
  | Ok snap -> Ok { path; every; snap }
  | Error e -> Error (Snapshot.load_error_to_string e)

let path t = t.path
let every t = t.every
let snapshot t = t.snap
let flush t =
  Snapshot.save t.snap t.path;
  Repro_obs.Journal.record_checkpoint ~action:"flush" ~path:t.path

(* ---- interruption ------------------------------------------------ *)

let interrupt_flag = Atomic.make false
let request_interrupt () = Atomic.set interrupt_flag true
let interrupted () = Atomic.get interrupt_flag
let clear_interrupt () = Atomic.set interrupt_flag false

let install_signal_handler () =
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         request_interrupt ();
         (* a second Ctrl-C kills the process the normal way *)
         Sys.set_signal Sys.sigint Sys.Signal_default))

let guard = function
  | None -> ()
  | Some t ->
    if interrupted () then begin
      flush t;
      raise Interrupted
    end

(* ---- resumable bulk evaluation ----------------------------------- *)

let resumable_map ?pool ?chunk ?bulk t ~key ~encode ~decode f items =
  let n = Array.length items in
  let stored =
    match Snapshot.get_rows t.snap key with
    | Some rows when Array.length rows <= n -> (
      (* a row that fails to decode invalidates the whole prefix: better
         a cold restart than a silently wrong tail *)
      try Array.map decode rows with _ -> [||])
    | _ -> [||]
  in
  let out = Array.make n None in
  Array.iteri (fun i v -> out.(i) <- Some v) stored;
  let i = ref (Array.length stored) in
  while !i < n do
    guard (Some t);
    let stop = min n (!i + t.every) in
    let sub = Array.sub items !i (stop - !i) in
    let fresh =
      match bulk with
      | Some b -> b sub
      | None -> Parmap.map ?pool ?chunk f sub
    in
    if Array.length fresh <> Array.length sub then
      failwith "Checkpoint.resumable_map: bulk evaluator returned wrong arity";
    Array.iteri (fun d r -> out.(!i + d) <- Some r) fresh;
    i := stop;
    Snapshot.set_rows t.snap key
      (Array.map (fun o -> encode (Option.get o)) (Array.sub out 0 !i));
    flush t
  done;
  Array.map Option.get out
