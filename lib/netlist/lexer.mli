(** Location-tracking tokenizer for the SPICE dialect.

    The lexer turns raw deck text into {e logical cards} — token lists
    with one entry per card, continuation lines ([+ ...]) already joined
    — while every token keeps the line/column of its first character in
    the {e original} text, so errors raised much later (during parsing
    or elaboration) still point at the exact spot.

    Lexical rules, matching the classic SPICE conventions this repo's
    decks already use:
    - [*] in the first column starts a full-line comment; [;] starts a
      trailing comment anywhere;
    - a line whose first non-blank character is [+] continues the
      previous card;
    - outside braces, whitespace, [( ) ,] separate tokens (and are
      dropped — [PULSE(0 1 ...)] and [PULSE 0 1 ...] lex identically)
      and [=] is a token of its own;
    - [{ ... }] delimits an arithmetic expression: inside braces the
      operators [+ - * / ( ) =] and the braces themselves become
      single-character tokens, with one exception — a [+]/[-]
      immediately after the [e] of a number's exponent stays part of
      the number, so [{10e-6}] is one token. *)

type token = { text : string; pos : Loc.pos }

val tokenize : ?file:string -> string -> token list list
(** Logical cards in source order, blank/comment lines removed.
    @raise Loc.Netlist_error on a continuation line with no preceding
    card or an unterminated [{] expression. *)
