(** Source positions and structured front-end errors.

    Every diagnostic the netlist front end produces carries the file
    (when known) and the 1-based line/column of the offending token, so
    the CLI can print [file:line:col: message] and editors can jump to
    the spot.  Nothing in [repro_netlist] raises a bare [Failure]. *)

type pos = { line : int; col : int }
(** 1-based position in the original source text — columns refer to the
    physical line, before continuation-line joining. *)

val pp_pos : Format.formatter -> pos -> unit

exception
  Netlist_error of { file : string option; pos : pos; msg : string }
(** The only exception the front end raises on malformed input. *)

val fail : ?file:string -> pos -> ('a, unit, string, 'b) format4 -> 'a
(** [fail pos fmt ...] raises {!Netlist_error} at [pos]. *)

val error_to_string : exn -> string
(** ["file:line:col: message"] for a {!Netlist_error} ([<netlist>] when
    the file is unknown); falls back to [Printexc.to_string]. *)
