(* The paper's complete hierarchical flow (Figure 4): circuit-level MOO,
   Monte-Carlo variation modelling, combined table model, system-level
   PLL optimisation with the variation model, selection, bottom-up
   verification and yield confirmation.

   Run with:             dune exec examples/pll_hierarchical.exe
   Paper-scale workload: HIEROPT_FULL=1 dune exec examples/pll_hierarchical.exe
   After a Ctrl-C:       dune exec examples/pll_hierarchical.exe -- --resume

   The table model is written to ./hieropt_model/ in the same .tbl format
   the Verilog-A listings of the paper consume; run state is snapshotted
   there too, so an interrupted run resumes from the last completed
   boundary and still produces byte-identical artefacts. *)

module H = Hieropt

let () =
  let resume = Array.exists (( = ) "--resume") Sys.argv in
  let cfg =
    H.Hierarchy.make_config
      ~scale:(H.Hierarchy.scale_of_env ())
      ~model_dir:"hieropt_model" ~checkpoint_every:1 ~resume ()
  in
  Repro_engine.Checkpoint.install_signal_handler ();
  Format.printf "spec: %a@.@." H.Spec.pp cfg.H.Hierarchy.spec;
  let result =
    try H.Hierarchy.run ~progress:(fun s -> Format.printf "[flow] %s@." s) cfg
    with Repro_engine.Checkpoint.Interrupted ->
      Format.eprintf "interrupted — re-run with --resume to continue@.";
      exit 130
  in
  Format.printf "@.%s@." (H.Experiments.fig7_front result.H.Hierarchy.front);
  Format.printf "%s@." (H.Experiments.table1 result.H.Hierarchy.entries);
  Format.printf "%s@."
    (H.Experiments.table2 ?selected:result.H.Hierarchy.selected
       result.H.Hierarchy.rows);
  (match result.H.Hierarchy.selected with
  | Some row ->
    Format.printf "%s@."
      (H.Experiments.fig8_locking result.H.Hierarchy.pll_config row)
  | None -> Format.printf "no design met the specification@.");
  match result.H.Hierarchy.yield with
  | Some y ->
    Format.printf "%s@."
      (H.Experiments.yield_report y
         ~verification:result.H.Hierarchy.verification)
  | None -> ()
