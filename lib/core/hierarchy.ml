module V = Repro_spice.Vco_measure
module Nsga2 = Repro_moo.Nsga2
module Prng = Repro_util.Prng
module E = Repro_engine
module Obs = Repro_obs

type scale = {
  vco_population : int;
  vco_generations : int;
  mc_samples : int;
  front_max : int;
  pll_population : int;
  pll_generations : int;
  yield_samples : int;
}

let paper_scale =
  {
    vco_population = 100;
    vco_generations = 30;
    mc_samples = 100;
    front_max = max_int;
    pll_population = 60;
    pll_generations = 20;
    yield_samples = 500;
  }

let bench_scale =
  {
    vco_population = 24;
    vco_generations = 10;
    mc_samples = 20;
    front_max = 10;
    pll_population = 24;
    pll_generations = 8;
    yield_samples = 200;
  }

let tiny_scale =
  {
    vco_population = 12;
    vco_generations = 4;
    mc_samples = 4;
    front_max = 4;
    pll_population = 12;
    pll_generations = 3;
    yield_samples = 30;
  }

(* a narrowed band the tiny GA can cover reliably — the smoke-test spec
   used by CI and the checkpoint tests *)
let tiny_spec =
  {
    Spec.default with
    Spec.f_out_low = 200e6;
    f_out_high = 280e6;
    f_target = 250e6;
    fref = 50e6;
    n_div = 5;
  }

let scale_of_env () = if E.Config.full () then paper_scale else bench_scale

(* a pluggable circuit front end: how to turn the 7-float sizing vector
   into a measurable netlist.  [tag] is the template's content
   fingerprint — the only part of the record that may enter cache salts
   and snapshot fingerprints (the closure must never be hashed).  A
   template equivalent to the built-in ring VCO is canonicalised to
   [None] by the CLI so its artefacts stay byte-identical. *)
type circuit = {
  tag : string;
  bounds : (float * float) array;
  build : Repro_circuit.Topologies.vco_params -> Repro_circuit.Netlist.t;
}

type config = {
  seed : int;
  scale : scale;
  spec : Spec.t;
  measure : V.options;
  process : Repro_circuit.Process.spec;
  use_variation : bool;
  model_dir : string option;
  checkpoint_every : int option;
  resume : bool;
  circuit : circuit option;
  optimiser : string;
  surrogate : bool;
}

let default_config ?(scale = bench_scale) () =
  {
    seed = 2009;
    scale;
    spec = Spec.default;
    measure = V.default_options;
    process = Repro_circuit.Process.default;
    use_variation = true;
    model_dir = None;
    checkpoint_every = None;
    resume = false;
    circuit = None;
    optimiser = "nsga2";
    surrogate = false;
  }

let validate_scale s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let even_pop name v =
    if v < 4 || v mod 2 <> 0 then
      fail "Hierarchy.make_config: %s must be even and >= 4 (got %d)" name v
  in
  let positive name v =
    if v <= 0 then fail "Hierarchy.make_config: %s must be positive (got %d)" name v
  in
  even_pop "vco_population" s.vco_population;
  even_pop "pll_population" s.pll_population;
  positive "vco_generations" s.vco_generations;
  positive "pll_generations" s.pll_generations;
  positive "mc_samples" s.mc_samples;
  positive "yield_samples" s.yield_samples;
  if s.front_max < 2 then
    fail "Hierarchy.make_config: front_max must be >= 2 (got %d)" s.front_max

let validate_circuit c =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if c.tag = "" then fail "Hierarchy.make_config: circuit tag must be non-empty";
  let n = Array.length c.bounds in
  if n <> Array.length Repro_circuit.Topologies.vco_param_names then
    fail "Hierarchy.make_config: circuit needs %d parameter bounds (got %d)"
      (Array.length Repro_circuit.Topologies.vco_param_names)
      n;
  Array.iteri
    (fun i (lo, hi) ->
      if not (lo < hi) then
        fail "Hierarchy.make_config: circuit bound %d is empty [%g, %g]" i lo
          hi)
    c.bounds

let make_config ?(seed = 2009) ?(scale = bench_scale) ?(spec = Spec.default)
    ?(measure = V.default_options) ?(process = Repro_circuit.Process.default)
    ?(use_variation = true) ?model_dir ?checkpoint_every ?(resume = false)
    ?circuit ?(optimiser = "nsga2") ?(surrogate = false) () =
  validate_scale scale;
  Spec.validate spec;
  Option.iter validate_circuit circuit;
  if Repro_moo.Optimiser.of_name optimiser = None then
    Printf.ksprintf invalid_arg
      "Hierarchy.make_config: unknown optimiser %S (expected one of %s)"
      optimiser
      (String.concat ", " Repro_moo.Optimiser.names);
  (match checkpoint_every with
  | Some n when n < 1 ->
    Printf.ksprintf invalid_arg
      "Hierarchy.make_config: checkpoint_every must be >= 1 (got %d)" n
  | _ -> ());
  if (resume || checkpoint_every <> None) && model_dir = None then
    invalid_arg
      "Hierarchy.make_config: resume/checkpointing requires a model_dir to \
       hold the snapshot";
  { seed; scale; spec; measure; process; use_variation; model_dir;
    checkpoint_every; resume; circuit; optimiser; surrogate }

exception Degenerate_front of { stage : string; found : int; minimum : int }

let () =
  Printexc.register_printer (function
    | Degenerate_front { stage; found; minimum } ->
      Some
        (Printf.sprintf
           "Hierarchy: %s Pareto front is degenerate (%d designs, need >= %d)"
           stage found minimum)
    | _ -> None)

type phase = Circuit_ga | Variation | Model | System_ga

let phase_name = function
  | Circuit_ga -> "circuit-ga"
  | Variation -> "variation"
  | Model -> "model"
  | System_ga -> "system-ga"

let phase_of_string = function
  | "circuit-ga" -> Some Circuit_ga
  | "variation" -> Some Variation
  | "model" -> Some Model
  | "system-ga" -> Some System_ga
  | _ -> None

type verification = {
  requested : V.performance;
  mapped : Repro_circuit.Topologies.vco_params;
  measured : (V.performance, string) result;
}

type result = {
  front : Vco_problem.sized_design array;
  entries : Variation_model.entry array;
  model : Perf_table.t;
  rows : Pll_problem.table2_row array;
  selected : Pll_problem.table2_row option;
  verification : verification option;
  yield : Repro_util.Stats.yield_estimate option;
  pll_config : Pll_problem.config;
}

let say progress fmt = Printf.ksprintf (fun s -> progress s) fmt

(* ---- observability ------------------------------------------------ *)

(* Fixed hypervolume reference points: generous per-objective upper
   bounds that every plausible front dominates, kept constant so the
   indicator is comparable across generations, runs and PRs.  The
   circuit level tracks the paper's three headline objectives (jitter,
   current, -gain — Figure 7); the system level all three PLL
   objectives (lock time, jitter sum, current). *)
let circuit_hv_reference = [| 1e-9; 0.1; 0.0 |]
let circuit_hv_dims = [| 0; 1; 2 |]
let system_hv_reference = [| 2e-6; 5e-12; 20e-3 |]

(* phase bracket: journal start/finish events and a trace span around
   the existing telemetry timer, preserving the "phase.<name>" keys *)
let timed_phase name f =
  Obs.Journal.record_phase_start name;
  let t0 = Unix.gettimeofday () in
  Obs.Trace.span ("phase." ^ name) @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.record_phase_finish name
        ~seconds:(Unix.gettimeofday () -. t0))
    (fun () -> E.Telemetry.time ("phase." ^ name) f)

(* The journal is diagnostic output riding alongside the model
   artefacts, so it lives in [model_dir] and an IO failure only costs
   the journal, never the run. *)
let open_journal ?(meta = []) ~fingerprint cfg =
  match cfg.model_dir with
  | None -> None
  | Some dir -> (
    try
      let j = Obs.Journal.create ~dir () in
      Obs.Journal.set_current j;
      Obs.Journal.run_start j ~fingerprint
        ([
           ("seed", Obs.Jfmt.I cfg.seed);
           ("jobs", Obs.Jfmt.I (E.Config.jobs ()));
         ]
        @ meta);
      Some j
    with Sys_error _ | Unix.Unix_error _ -> None)

(* the avoided / paid / cached / run split of this process's evaluation
   counters — [close_journal] records per-run deltas against a baseline
   taken at run start, [report] renders them as one table *)
let eval_counters () =
  ( E.Telemetry.counter "eval.avoided",
    E.Telemetry.counter "eval.paid",
    E.Telemetry.counter "eval.cache_hits",
    E.Telemetry.counter "eval.runs" )

let close_journal t0 c0 = function
  | None -> ()
  | Some j ->
    let a0, p0, h0, r0 = c0 and a1, p1, h1, r1 = eval_counters () in
    Obs.Journal.run_finish j
      ~seconds:(Unix.gettimeofday () -. t0)
      [
        ("eval_avoided", Obs.Jfmt.I (a1 - a0));
        ("eval_paid", Obs.Jfmt.I (p1 - p0));
        ("eval_cache_hits", Obs.Jfmt.I (h1 - h0));
        ("eval_runs", Obs.Jfmt.I (r1 - r0));
      ];
    Obs.Journal.clear_current ();
    Obs.Journal.close j

(* ---- evaluation-engine wiring ------------------------------------ *)

let cache_path cfg =
  Option.map (fun dir -> Filename.concat dir "eval.cache") cfg.model_dir

(* The cache persists across runs, so keys must change whenever the
   ambient configuration captured by the objective closures changes. *)
(* only the circuit's content tag goes into hashes: the record holds a
   closure, and closure hashing is not stable across builds *)
let circuit_tag cfg =
  match cfg.circuit with None -> "" | Some c -> c.tag

let config_salt cfg =
  Printf.sprintf "%08x"
    (Hashtbl.hash_param 256 256
       ( cfg.spec,
         cfg.measure,
         cfg.process,
         cfg.use_variation,
         circuit_tag cfg,
         (* optimiser choice and screening are salted so a screened
            run's cache can never alias an exhaustive run's *)
         (cfg.optimiser, cfg.surrogate),
         (* dense and sparse solves agree only to rounding, so cached
            entries must not leak across solver modes *)
         E.Config.solver_mode_name (E.Config.solver ()) ))

let load_cache cfg =
  match cache_path cfg with
  | None -> E.Cache.create ()
  | Some path -> (
    match E.Cache.load_if_exists path with
    | Some cache -> cache
    | None -> E.Cache.create ())

let save_cache cfg cache progress =
  match cache_path cfg with
  | None -> ()
  | Some path -> (
    try
      E.Cache.save cache path;
      say progress "engine: %s saved to %s" (E.Cache.stats_line cache) path
    with Sys_error _ -> ())

let evaluator_of cfg cache =
  Repro_moo.Problem.parallel_evaluator ~cache ~salt:(config_salt cfg) ()

let portfolio_of cfg =
  match Repro_moo.Optimiser.of_name cfg.optimiser with
  | Some m -> m
  | None ->
    (* reachable only through hand-built config records; [make_config]
       validates the name *)
    invalid_arg ("Hierarchy: unknown optimiser " ^ cfg.optimiser)

(* the human-facing algorithm label for progress lines *)
let optimiser_label cfg =
  (match cfg.optimiser with
  | "nsga2" -> "NSGA-II"
  | "spea2" -> "SPEA2"
  | "de" -> "DE"
  | "mopso" -> "MOPSO"
  | other -> other)
  ^ if cfg.surrogate then "+surrogate" else ""

(* ---- remote (distributed) evaluation hooks ----------------------- *)

(* The flow stays ignorant of HTTP: a coordinator (lib/dist) injects
   its evaluator and Monte-Carlo bulk hook here, pre-bound to the run's
   cache salt so remote and local runs share one persisted cache
   keyspace.  [topology] is journal metadata only — like the worker
   count, it must never influence results. *)
type remote = {
  topology : string list;  (** worker endpoints, for the run journal *)
  remote_evaluator :
    salt:string -> cache:E.Cache.t -> Repro_moo.Problem.evaluator;
  remote_mc : salt:string -> Variation_model.mc_bulk;
}

let remote_meta = function
  | None -> []
  | Some r -> [ ("workers", Obs.Jfmt.S (String.concat "," r.topology)) ]

let evaluator_for ?remote cfg cache =
  match remote with
  | None -> evaluator_of cfg cache
  | Some r -> r.remote_evaluator ~salt:(config_salt cfg) ~cache

let mc_bulk_for ?remote cfg =
  Option.map (fun r -> r.remote_mc ~salt:(config_salt cfg)) remote

(* ---- circuit front end -------------------------------------------- *)

(* the two construction seams every consumer (flow, verification,
   eval-workers) must share: with [circuit = None] both are exactly the
   built-in paths, so built-in artefacts stay byte-identical *)
let circuit_problem cfg =
  match cfg.circuit with
  | None -> Vco_problem.problem ~measure_options:cfg.measure ~spec:cfg.spec ()
  | Some c ->
    Vco_problem.problem ~measure_options:cfg.measure ~spec:cfg.spec
      ~builder:c.build ~bounds:c.bounds ()

let circuit_netlist cfg params =
  match cfg.circuit with
  | None ->
    Repro_circuit.Topologies.ring_vco ~stages:cfg.measure.V.stages
      ~vdd:cfg.measure.V.vdd ~vctl:cfg.measure.V.vctl_lo params
  | Some c -> c.build params

let circuit_builder cfg = Option.map (fun c -> c.build) cfg.circuit

(* ---- checkpoint wiring ------------------------------------------- *)

(* Unlike the cache salt, the snapshot fingerprint also covers seed and
   scale: a snapshot replays intermediate state, so it must bind to the
   exact run.  Worker count is deliberately excluded — results are
   bit-identical for any [-j], so resuming with a different worker count
   is sound.  [extra] binds standalone system-level snapshots to their
   input model. *)
let fingerprint ?(extra = "") cfg =
  Printf.sprintf "%08x%s"
    (Hashtbl.hash_param 256 256
       ( cfg.seed,
         cfg.scale,
         cfg.spec,
         cfg.measure,
         cfg.process,
         cfg.use_variation,
         circuit_tag cfg,
         (cfg.optimiser, cfg.surrogate),
         E.Config.solver_mode_name (E.Config.solver ()) ))
    extra

let setup_checkpoint ?extra ~file cfg progress =
  if cfg.checkpoint_every = None && not cfg.resume then None
  else
    match cfg.model_dir with
    | None ->
      (* reachable only through hand-built config records;
         [make_config] rejects this combination *)
      E.Telemetry.warn ~key:"checkpoint.no_model_dir"
        "checkpointing requested without a model_dir — running without \
         snapshots";
      None
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir file in
      let every = Option.value ~default:1 cfg.checkpoint_every in
      let fp = fingerprint ?extra cfg in
      if cfg.resume then begin
        match E.Checkpoint.resume ~every ~fingerprint:fp path with
        | Ok ck ->
          say progress "checkpoint: resuming from %s" path;
          Obs.Journal.record_checkpoint ~action:"resume" ~path;
          Some ck
        | Error reason ->
          E.Telemetry.warn ~key:"checkpoint.cold_start"
            "cannot resume from %s (%s) — starting cold" path reason;
          Some (E.Checkpoint.create ~every ~fingerprint:fp path)
      end
      else Some (E.Checkpoint.create ~every ~fingerprint:fp path)

let snapshot_of = Option.map E.Checkpoint.snapshot

(* flush-and-raise at a phase boundary when the testing hook asks for it *)
let maybe_stop_after ~interrupt_after ck phase =
  match interrupt_after with
  | Some p when p = phase ->
    Option.iter E.Checkpoint.flush ck;
    raise E.Checkpoint.Interrupted
  | _ -> ()

(* one checkpointable optimiser run: restore a paused generation loop
   when the snapshot has one under [key], then step to completion,
   saving state each generation and flushing every [every].  The
   algorithm is any portfolio member; with [surrogate] its evaluator is
   wrapped in a pre-screen whose archive rides along in the snapshot
   (under [key ^ ".surrogate"]) so post-resume screening decisions are
   identical to the uninterrupted run's. *)
let run_ga ~progress ~label ~key ~optimiser ~options ~evaluator ~surrogate
    ~hv_of ~ck problem prng =
  let module O = (val (optimiser : Repro_moo.Optimiser.t)) in
  let skey = key ^ ".surrogate" in
  let with_screen sur =
    match sur with
    | None -> evaluator
    | Some s -> Repro_moo.Surrogate.wrap s evaluator
  in
  let a0 = E.Telemetry.counter "eval.avoided"
  and p0 = E.Telemetry.counter "eval.paid" in
  (* per-generation convergence entry for the journal: front size,
     objective-space spread, and the exact hypervolume indicator.
     Pure functions of the population — skipped entirely (not even
     computed) when no journal is active, and unable to perturb the GA
     either way. *)
  let record st =
    if Obs.Journal.active () then begin
      let front = Nsga2.pareto_front (O.population st) in
      let evals = Nsga2.evaluations front in
      Obs.Journal.record_ga_generation ~label
        ~generation:(O.generation st)
        ~front_size:(Array.length front)
        ~spread:(Repro_moo.Pareto.spread_2d evals)
        ~hypervolume:(hv_of evals)
    end
  in
  (* a resumable pair is optimiser state plus (when screening) the
     surrogate archive: one without the other would replay a different
     trajectory, so either restores both or the run cold-starts *)
  let restored =
    Option.bind (snapshot_of ck) (fun snap ->
        match O.restore_state ~options problem snap ~key with
        | None -> None
        | Some st ->
          if not surrogate then Some (st, None)
          else
            Option.map
              (fun s -> (st, Some s))
              (Repro_moo.Surrogate.restore_state problem snap ~key:skey))
  in
  let st, sur =
    match restored with
    | Some (st, sur) ->
      say progress "%s level: resumed %s at generation %d/%d" label O.name
        (O.generation st) options.Repro_moo.Optimiser.generations;
      (st, sur)
    | None ->
      let sur =
        if surrogate then Some (Repro_moo.Surrogate.create ()) else None
      in
      (O.init ~options ~evaluator:(with_screen sur) problem prng, sur)
  in
  let evaluator = with_screen sur in
  record st;
  while O.generation st < options.Repro_moo.Optimiser.generations do
    O.step ~evaluator problem st;
    record st;
    match ck with
    | None -> ()
    | Some c ->
      let snap = E.Checkpoint.snapshot c in
      O.save_state st snap ~key;
      Option.iter
        (fun s -> Repro_moo.Surrogate.save_state s snap ~key:skey)
        sur;
      if O.generation st mod E.Checkpoint.every c = 0
         || O.generation st = options.Repro_moo.Optimiser.generations
      then E.Checkpoint.flush c;
      E.Checkpoint.guard (Some c)
  done;
  if surrogate then begin
    let avoided = E.Telemetry.counter "eval.avoided" - a0
    and paid = E.Telemetry.counter "eval.paid" - p0 in
    say progress "%s level: surrogate screen avoided %d/%d exact evals"
      label avoided (avoided + paid);
    Obs.Journal.record_evals ~label ~avoided ~paid
  end;
  O.population st

(* ---- phase persistence ------------------------------------------- *)

let store_front snap front =
  E.Snapshot.set_rows snap "front"
    (Array.map Vco_problem.vector_of_design front);
  E.Snapshot.set_int snap "front.done" 1

let restore_front snap =
  match snap with
  | None -> None
  | Some snap ->
    if E.Snapshot.get_int snap "front.done" <> Some 1 then None
    else
      Option.bind (E.Snapshot.get_rows snap "front") (fun rows ->
          let designs = Array.map Vco_problem.design_of_vector rows in
          if Array.exists Option.is_none designs then None
          else Some (Array.map Option.get designs))

let store_entry_prefix snap entries =
  E.Snapshot.set_rows snap "entries"
    (Array.map Variation_model.row_of_entry entries)

let restore_entries snap ~expect =
  match snap with
  | None -> (false, [||])
  | Some snap -> (
    match E.Snapshot.get_rows snap "entries" with
    | None -> (false, [||])
    | Some rows ->
      let entries = Array.map Variation_model.entry_of_row rows in
      if Array.exists Option.is_none entries || Array.length entries > expect
      then (false, [||])
      else
        ( E.Snapshot.get_int snap "entries.done" = Some 1
          && Array.length entries = expect,
          Array.map Option.get entries ))

(* ---- the flow ----------------------------------------------------- *)

let pll_config_of ?pll_query cfg model =
  {
    (Pll_problem.default_config ~model) with
    Pll_problem.spec = cfg.spec;
    use_variation = cfg.use_variation;
    query = pll_query;
  }

let verify_design cfg ~model (row : Pll_problem.table2_row) =
  let kvco = row.Pll_problem.kv and ivco = row.Pll_problem.iv in
  let requested =
    {
      V.kvco;
      ivco;
      jvco = Perf_table.jvco_of model ~kvco ~ivco;
      fmin = Perf_table.fmin_of model ~kvco ~ivco;
      fmax = Perf_table.fmax_of model ~kvco ~ivco;
    }
  in
  let mapped = Perf_table.params_of_perf model requested in
  let measured =
    let outcome =
      match cfg.circuit with
      | None -> V.characterise ~options:cfg.measure mapped
      | Some c -> V.characterise_netlist ~options:cfg.measure (c.build mapped)
    in
    match outcome with
    | Ok p -> Ok p
    | Error f -> Error (V.failure_to_string f)
  in
  { requested; mapped; measured }

let run_system_level_inner ?(progress = fun _ -> ()) ?evaluator ?ck
    ?interrupt_after ?pll_query cfg ~model ~front ~entries =
  let scale = cfg.scale in
  let pll_cfg = pll_config_of ?pll_query cfg model in
  say progress "system level: %s %dx%d over (Kvco, Ivco, C1, C2, R1)%s"
    (optimiser_label cfg) scale.pll_population scale.pll_generations
    (if cfg.use_variation then " with variation model"
     else " (nominal-only ablation)");
  let prng = Prng.create (cfg.seed + 77) in
  let pll_problem = Pll_problem.problem pll_cfg in
  let pll_pop =
    timed_phase "system-ga" @@ fun () ->
    run_ga ~progress ~label:"system" ~key:"ga.system"
      ~optimiser:(portfolio_of cfg)
      ~options:
        {
          Repro_moo.Optimiser.population = scale.pll_population;
          generations = scale.pll_generations;
        }
      ~evaluator:(Option.value evaluator ~default:Repro_moo.Problem.serial_evaluator)
      ~surrogate:cfg.surrogate
      ~hv_of:(Repro_moo.Hypervolume.of_front ~reference:system_hv_reference)
      ~ck pll_problem prng
  in
  maybe_stop_after ~interrupt_after ck System_ga;
  let pll_front = Nsga2.pareto_front pll_pop in
  say progress "system level: %d Pareto solutions" (Array.length pll_front);
  (* rows, selection and verification are cheap, pure functions of the
     GA output and the model — recomputed rather than persisted *)
  let rows =
    Array.to_list pll_front
    |> List.filter_map (Pll_problem.row_of_individual pll_cfg)
    |> Array.of_list
  in
  let selected = Pll_problem.select_design pll_cfg rows in
  let verification =
    Option.map (fun row -> verify_design cfg ~model row) selected
  in
  let yield =
    Option.map
      (fun row ->
        say progress "yield: %d behavioural MC samples" scale.yield_samples;
        timed_phase "yield" @@ fun () ->
        Yield.behavioural ~n:scale.yield_samples
          ~prng:(Prng.create (cfg.seed + 99))
          ?checkpoint:(Option.map (fun c -> (c, "yield")) ck)
          pll_cfg row)
      selected
  in
  (match ck with
  | Some c ->
    E.Snapshot.set_int (E.Checkpoint.snapshot c) "run.done" 1;
    E.Checkpoint.flush c
  | None -> ());
  say progress "engine: %s" (E.Telemetry.line ());
  { front; entries; model; rows; selected; verification; yield;
    pll_config = pll_cfg }

let run_system_level ?(progress = fun _ -> ()) ?remote ?pll_query cfg ~model =
  let t_run = Unix.gettimeofday () in
  let c_run = eval_counters () in
  let cache = load_cache cfg in
  (* bind the snapshot to the input model too: the same config re-run
     over a different saved model must not resume from stale state.
     [pll_query] is deliberately excluded, like the worker count: a
     faithful remote oracle produces bit-identical results, so resuming
     a local run against a served model (or vice versa) is sound. *)
  let extra =
    Printf.sprintf "-%08x"
      (Hashtbl.hash_param 1000 1000 (Perf_table.entries model))
  in
  let journal =
    open_journal ~meta:(remote_meta remote)
      ~fingerprint:(fingerprint ~extra cfg) cfg
  in
  let ck = setup_checkpoint ~extra ~file:"system.snapshot" cfg progress in
  let finish () =
    let result =
      run_system_level_inner ~progress
        ~evaluator:(evaluator_for ?remote cfg cache) ?ck ?pll_query cfg ~model
        ~front:
          (Array.map
             (fun e -> e.Variation_model.design)
             (Perf_table.entries model))
        ~entries:(Perf_table.entries model)
    in
    save_cache cfg cache progress;
    result
  in
  Fun.protect
    ~finally:(fun () -> close_journal t_run c_run journal)
    (fun () ->
      try finish ()
      with E.Checkpoint.Interrupted as e ->
        save_cache cfg cache progress;
        raise e)

let run ?(progress = fun _ -> ()) ?remote ?interrupt_after cfg =
  let t_run = Unix.gettimeofday () in
  let c_run = eval_counters () in
  let scale = cfg.scale in
  let cache = load_cache cfg in
  let evaluator = evaluator_for ?remote cfg cache in
  let journal =
    open_journal ~meta:(remote_meta remote) ~fingerprint:(fingerprint cfg) cfg
  in
  let ck = setup_checkpoint ~file:"run.snapshot" cfg progress in
  let snap = snapshot_of ck in
  say progress "engine: %d worker(s), %s" (E.Config.jobs ())
    (E.Cache.stats_line cache);
  (match remote with
  | Some r when r.topology <> [] ->
    say progress "engine: remote eval workers: %s"
      (String.concat ", " r.topology)
  | _ -> ());
  let body () =
    (* step 1: circuit-level MOO *)
    let front =
      match restore_front snap with
      | Some front ->
        say progress "circuit level: restored %d Pareto designs from snapshot"
          (Array.length front);
        front
      | None ->
        say progress "circuit level: %s %dx%d over 7 W/L parameters"
          (optimiser_label cfg) scale.vco_population scale.vco_generations;
        let prng = Prng.create cfg.seed in
        let vco_problem = circuit_problem cfg in
        let pop =
          timed_phase "circuit-ga" @@ fun () ->
          run_ga ~progress ~label:"circuit" ~key:"ga.circuit"
            ~optimiser:(portfolio_of cfg)
            ~options:
              {
                Repro_moo.Optimiser.population = scale.vco_population;
                generations = scale.vco_generations;
              }
            ~evaluator ~surrogate:cfg.surrogate
            ~hv_of:
              (Repro_moo.Hypervolume.of_front ~dims:circuit_hv_dims
                 ~reference:circuit_hv_reference)
            ~ck vco_problem prng
        in
        let full_front = Vco_problem.front_designs pop in
        if Array.length full_front < 2 then
          raise
            (Degenerate_front
               {
                 stage = "circuit-level";
                 found = Array.length full_front;
                 minimum = 2;
               });
        say progress "circuit level: %d Pareto designs"
          (Array.length full_front);
        let front =
          if scale.front_max = max_int then full_front
          else Vco_problem.thin_front full_front ~max_points:scale.front_max
        in
        (match ck with
        | Some c ->
          let s = E.Checkpoint.snapshot c in
          store_front s front;
          (* GA state is superseded by the stored front *)
          let module O = (val portfolio_of cfg) in
          O.clear_state s ~key:"ga.circuit";
          Repro_moo.Surrogate.clear_state s ~key:"ga.circuit.surrogate";
          E.Checkpoint.flush c
        | None -> ());
        front
    in
    maybe_stop_after ~interrupt_after ck Circuit_ga;
    (* step 2: variation modelling *)
    let entries =
      let n_front = Array.length front in
      let complete, already = restore_entries snap ~expect:n_front in
      if complete then begin
        say progress "variation model: restored %d entries from snapshot"
          (Array.length already);
        already
      end
      else begin
        if Array.length already > 0 then
          say progress "variation model: %d/%d designs restored from snapshot"
            (Array.length already) n_front;
        say progress "variation model: %d MC samples x %d designs"
          scale.mc_samples n_front;
        let prefix = ref already in
        let on_entry =
          Option.map
            (fun c i entry ->
              let s = E.Checkpoint.snapshot c in
              prefix := Array.append !prefix [| entry |];
              store_entry_prefix s !prefix;
              (* per-sample MC rows are superseded by the entry *)
              E.Snapshot.remove s ("mc." ^ string_of_int i);
              E.Checkpoint.flush c;
              E.Checkpoint.guard (Some c))
            ck
        in
        let entries =
          timed_phase "variation-mc" @@ fun () ->
          Variation_model.analyse_front
            ~options:
              {
                Variation_model.samples = scale.mc_samples;
                process = cfg.process;
                measure = cfg.measure;
              }
            ?mc_bulk:(mc_bulk_for ?remote cfg)
            ?builder:(circuit_builder cfg)
            ~progress:(fun i n ->
              say progress "variation model: design %d/%d" (i + 1) n)
            ~already ?on_entry ?checkpoint:ck
            ~prng:(Prng.create (cfg.seed + 13))
            front
        in
        (match ck with
        | Some c ->
          let s = E.Checkpoint.snapshot c in
          store_entry_prefix s entries;
          E.Snapshot.set_int s "entries.done" 1;
          E.Checkpoint.flush c
        | None -> ());
        entries
      end
    in
    maybe_stop_after ~interrupt_after ck Variation;
    (* step 3: combined table model (cheap, pure — rebuilt every run) *)
    let model =
      timed_phase "model" @@ fun () ->
      let model = Perf_table.build entries in
      (match cfg.model_dir with
      | Some dir ->
        Perf_table.save ~dir model;
        say progress "table model saved to %s" dir
      | None -> ());
      model
    in
    maybe_stop_after ~interrupt_after ck Model;
    (* steps 4-5 *)
    let result =
      run_system_level_inner ~progress ~evaluator ?ck ?interrupt_after cfg
        ~model ~front ~entries
    in
    save_cache cfg cache progress;
    result
  in
  Fun.protect
    ~finally:(fun () -> close_journal t_run c_run journal)
    (fun () ->
      try body ()
      with E.Checkpoint.Interrupted as e ->
        (* keep the warm cache for the resumed run *)
        save_cache cfg cache progress;
        raise e)
