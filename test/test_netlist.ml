(* The repro_netlist front end: tokenizer locations, parameter
   resolution, {range} templating, nested subcircuits, structural
   equivalence, and the Verilog-A / SPICE exporters. *)

module N = Repro_netlist
module C = Repro_circuit
module T = C.Topologies
module H = Hieropt
module V = Repro_spice.Vco_measure

let parse = N.Elab.netlist_of_string

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let expect_netlist_error ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected a netlist error mentioning %S" substring
  | exception N.Loc.Netlist_error { msg; _ } ->
    if not (contains_sub (String.lowercase_ascii msg) substring) then
      Alcotest.failf "error %S does not mention %S" msg substring

(* ---- error positions and rendering ---- *)

let test_error_to_string () =
  (match parse "R1 a b\n.end" with
  | _ -> Alcotest.fail "expected an error"
  | exception (N.Loc.Netlist_error { file; pos; _ } as e) ->
    Alcotest.(check (option string)) "no file" None file;
    Alcotest.(check int) "line" 1 pos.N.Loc.line;
    let s = N.Loc.error_to_string e in
    Alcotest.(check bool)
      (Printf.sprintf "%S has the <netlist>:line:col: prefix" s)
      true
      (String.length s > 12 && String.sub s 0 11 = "<netlist>:1"));
  match N.Elab.netlist_of_string ~file:"x.sp" "R1 a b\n.end" with
  | _ -> Alcotest.fail "expected an error"
  | exception (N.Loc.Netlist_error _ as e) ->
    let s = N.Loc.error_to_string e in
    Alcotest.(check bool)
      (Printf.sprintf "%S carries the file name" s)
      true
      (String.sub s 0 7 = "x.sp:1:")

(* ---- tokenizer location properties ---- *)

(* random decks assembled from known words, blank lines, comments and
   continuations: every reported (line, col) must point at the exact
   spot in the original text where the token's spelling starts *)
let deck_text_gen =
  QCheck.Gen.(
    let word =
      string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_range 0 25))
        (int_range 1 6)
    in
    let words = list_size (int_range 1 4) word in
    let line =
      words >>= fun ws ->
      let card = String.concat " " ws in
      frequency
        [
          (4, return card);
          (1, return ("+ " ^ card)); (* continuation *)
          (1, return ("* " ^ card)); (* comment *)
          (1, return "");
        ]
    in
    list_size (int_range 1 12) line >>= fun lines ->
    (* a leading continuation is a (tested elsewhere) error; anchor the
       deck with a plain first card *)
    return (String.concat "\n" ("head card" :: lines)))

let prop_tokenizer_locations =
  QCheck.Test.make ~name:"token positions point into the source" ~count:300
    (QCheck.make deck_text_gen) (fun text ->
      let lines = Array.of_list (String.split_on_char '\n' text) in
      let cards = N.Lexer.tokenize text in
      List.for_all
        (fun card ->
          List.for_all
            (fun tok ->
              let { N.Loc.line; col } = tok.N.Lexer.pos in
              let w = tok.N.Lexer.text in
              line >= 1
              && line <= Array.length lines
              && col >= 1
              && col + String.length w - 1 <= String.length lines.(line - 1)
              && String.sub lines.(line - 1) (col - 1) (String.length w) = w)
            card)
        cards)

let prop_tokenizer_card_order =
  QCheck.Test.make ~name:"tokens advance monotonically within a card"
    ~count:300 (QCheck.make deck_text_gen) (fun text ->
      let pos_le a b =
        a.N.Loc.line < b.N.Loc.line
        || (a.N.Loc.line = b.N.Loc.line && a.N.Loc.col < b.N.Loc.col)
      in
      List.for_all
        (fun card ->
          let rec ordered = function
            | a :: (b :: _ as rest) ->
              pos_le a.N.Lexer.pos b.N.Lexer.pos && ordered rest
            | _ -> true
          in
          ordered card)
        (N.Lexer.tokenize text))

(* ---- parameter resolution ---- *)

let test_param_forward_reference () =
  let net =
    parse
      {|.param total = {2 * half}
.param half = 500
Vin in 0 DC 1
R1 in 0 {total}
.end|}
  in
  match C.Netlist.elements net with
  | [ _; C.Netlist.Resistor { value; _ } ] ->
    Alcotest.(check (float 0.0)) "forward reference resolved" 1000.0 value
  | _ -> Alcotest.fail "unexpected elements"

let test_param_cycle () =
  expect_netlist_error ~substring:"cycle" (fun () ->
      parse ".param a = {b + 1}\n.param b = {a + 1}\nR1 x 0 {a}\n.end")

let test_param_expressions () =
  let net =
    parse
      {|.param base = 2k
.param big = {max(base, 3k) + sqrt(4) * 500}
Vin in 0 DC 1
R1 in 0 {big}
R2 in 0 {-base + (base / 2)}
.end|}
  in
  match C.Netlist.elements net with
  | [ _; C.Netlist.Resistor { value = v1; _ };
      C.Netlist.Resistor { value = v2; _ } ] ->
    Alcotest.(check (float 1e-9)) "max/sqrt arithmetic" 4000.0 v1;
    Alcotest.(check (float 1e-9)) "unary minus" (-1000.0) v2
  | _ -> Alcotest.fail "unexpected elements"

let test_division_by_zero () =
  expect_netlist_error ~substring:"zero" (fun () ->
      parse ".param z = 0\nR1 a 0 {1 / z}\n.end")

(* ---- {range} templating ---- *)

let ranged_deck =
  {|.param r = {range 1k 2k}
.param rload = {2 * r}
Vin in 0 DC 1
R1 in out {r}
R2 out 0 {rload}
.end|}

let test_template_basics () =
  let t = N.Elab.template (N.Parse.deck ranged_deck) in
  Alcotest.(check (array string)) "ranged names" [| "r" |] t.N.Elab.param_names;
  Alcotest.(check bool) "bounds" true (t.N.Elab.bounds = [| (1000.0, 2000.0) |]);
  Alcotest.(check bool) "midpoint default" true (t.N.Elab.default = [| 1500.0 |]);
  match C.Netlist.elements (t.N.Elab.instantiate [| 1250.0 |]) with
  | [ _; C.Netlist.Resistor { value = r1; _ };
      C.Netlist.Resistor { value = r2; _ } ] ->
    Alcotest.(check (float 0.0)) "bound directly" 1250.0 r1;
    Alcotest.(check (float 0.0)) "derived param follows" 2500.0 r2
  | _ -> Alcotest.fail "unexpected elements"

let test_template_requires_range () =
  expect_netlist_error ~substring:"range" (fun () ->
      N.Elab.template (N.Parse.deck "R1 a 0 1k\n.end"))

let test_flatten_rejects_range () =
  expect_netlist_error ~substring:"range" (fun () -> parse ranged_deck)

let test_empty_range () =
  expect_netlist_error ~substring:"empty" (fun () ->
      N.Elab.template (N.Parse.deck ".param r = {range 2k 1k}\nR1 a 0 {r}\n.end"))

let test_template_fingerprint_tracks_content () =
  let fp deck = (N.Elab.template (N.Parse.deck deck)).N.Elab.fingerprint in
  Alcotest.(check string) "deterministic" (fp ranged_deck) (fp ranged_deck);
  let widened =
    ".param r = {range 1k 3k}\n.param rload = {2 * r}\n\
     Vin in 0 DC 1\nR1 in out {r}\nR2 out 0 {rload}\n.end"
  in
  Alcotest.(check bool) "bounds change the fingerprint" true
    (fp ranged_deck <> fp widened)

(* ---- nested subcircuits (the old front end rejected these) ---- *)

let nested_deck =
  {|.param runit = 1k
.subckt ladder a b scale=2
.subckt half p q r={runit * scale}
R1 p m {r}
R2 m q {r}
.ends half
Xtop a mid half
Xbot mid b half r={runit / scale}
.ends ladder
Vin in 0 DC 1
Xl in out ladder scale=4
Rload out 0 1k
.end|}

let test_nested_subckt () =
  let net = parse nested_deck in
  let names = List.map C.Netlist.element_name (C.Netlist.elements net) in
  Alcotest.(check (list string)) "flattening prefixes"
    [ "Vin"; "Xl.Xtop.R1"; "Xl.Xtop.R2"; "Xl.Xbot.R1"; "Xl.Xbot.R2"; "Rload" ]
    names;
  let value name =
    List.find_map
      (function
        | C.Netlist.Resistor { name = n; value; _ } when n = name -> Some value
        | _ -> None)
      (C.Netlist.elements net)
    |> Option.get
  in
  (* header default uses the caller's override of scale=4; the Xbot
     instance overrides r itself *)
  Alcotest.(check (float 1e-9)) "default from overridden scale" 4000.0
    (value "Xl.Xtop.R1");
  Alcotest.(check (float 1e-9)) "per-instance override" 250.0
    (value "Xl.Xbot.R2")

let test_nested_subckt_is_lexically_scoped () =
  (* `half` is defined inside `ladder` and must not leak to the top *)
  expect_netlist_error ~substring:"half" (fun () ->
      parse (nested_deck ^ "\nXoops a b half\n.end"))

let test_subckt_depth_limit () =
  expect_netlist_error ~substring:"deeper" (fun () ->
      parse ".subckt loop a\nXagain a loop\n.ends\nXgo n1 loop\n.end")

(* ---- structural equivalence ---- *)

let test_same_netlist () =
  let a = T.voltage_divider ~r1:1e3 ~r2:2e3 ~vin:1.0 in
  let b = parse "Vin in 0 DC 1\nR1 in out 1k\nR2 out 0 2k\n.end" in
  Alcotest.(check bool) "builder = parsed" true (N.Elab.same_netlist a b);
  let c = parse "Vin in 0 DC 1\nR1 in out 1k\nR2 out 0 2.0001k\n.end" in
  Alcotest.(check bool) "value change detected" false (N.Elab.same_netlist a c);
  let d = parse "Vin in 0 DC 1\nR1 in tap 1k\nR2 tap 0 2k\n.end" in
  Alcotest.(check bool) "node rename detected" false (N.Elab.same_netlist a d)

(* ---- netlist -> to_spice -> parse round trip ---- *)

(* values must survive the Si.format codec exactly for the round trip
   to be byte-exact; normalising through one encode/decode and assuming
   stability pins that down without weakening the equality check *)
let si_stable_gen =
  QCheck.Gen.(
    let* m = int_range 1 9999 in
    let* e = int_range (-9) 6 in
    let v = float_of_int m *. (10.0 ** float_of_int e) in
    let v = Repro_util.Si.parse (Repro_util.Si.format v) in
    return v)

let dc_stable_gen =
  QCheck.Gen.(
    let* m = int_range (-999) 999 in
    let* e = int_range (-3) 2 in
    let v = float_of_int m *. (10.0 ** float_of_int e) in
    let v = float_of_string (Printf.sprintf "%g" v) in
    return v)

let netlist_gen =
  QCheck.Gen.(
    let node = oneofl [ "a"; "b"; "n1"; "out"; "0" ] in
    let two_terminal make =
      let* n1 = node and* n2 = node and* v = si_stable_gen in
      return (make n1 n2 v)
    in
    let element i =
      oneof
        [
          two_terminal (fun n1 n2 v net ->
              C.Netlist.resistor net (Printf.sprintf "R%d" i) n1 n2 v);
          two_terminal (fun n1 n2 v net ->
              C.Netlist.capacitor net (Printf.sprintf "C%d" i) n1 n2 v);
          (let* n1 = node and* n2 = node and* v = dc_stable_gen in
           return (fun net ->
               C.Netlist.vsource net
                 (Printf.sprintf "V%d" i)
                 n1 n2 (C.Source.Dc v)));
          (let* d = node and* g = node and* s = node in
           let* w = si_stable_gen and* l = si_stable_gen in
           let* model = oneofl [ C.Mosfet.nmos_012; C.Mosfet.pmos_012 ] in
           return (fun net ->
               C.Netlist.mosfet net
                 (Printf.sprintf "m%d" i)
                 ~drain:d ~gate:g ~source:s ~model ~w ~l));
        ]
    in
    let* n = int_range 1 8 in
    let rec build i acc =
      if i > n then return (List.rev acc)
      else
        let* el = element i in
        build (i + 1) (el :: acc)
    in
    let* builders = build 1 [] in
    let net = C.Netlist.create () in
    List.iter (fun f -> f net) builders;
    return net)

let codec_stable v =
  Repro_util.Si.parse (Repro_util.Si.format v) = v

let prop_to_spice_roundtrip =
  QCheck.Test.make ~name:"to_spice re-parses to the same netlist" ~count:200
    (QCheck.make netlist_gen) (fun net ->
      let stable = function
        | C.Netlist.Resistor { value; _ } | C.Netlist.Capacitor { value; _ }
          ->
          codec_stable value
        | C.Netlist.Vsource { source = C.Source.Dc v; _ }
        | C.Netlist.Isource { source = C.Source.Dc v; _ } ->
          float_of_string (Printf.sprintf "%g" v) = v
        | C.Netlist.Vsource _ | C.Netlist.Isource _ -> true
        | C.Netlist.Mos { w; l; _ } -> codec_stable w && codec_stable l
      in
      QCheck.assume (List.for_all stable (C.Netlist.elements net));
      N.Elab.same_netlist net (parse (C.Netlist.to_spice net)))

(* ---- the example decks ---- *)

(* dune runtest runs in _build/default/test (the deck files are staged
   as test deps); running the executable by hand from the repo root
   also works via the second candidate *)
let examples_dir =
  List.find Sys.file_exists [ "../examples/netlists"; "examples/netlists" ]

let test_vco_deck_matches_builtin () =
  let t = N.Elab.template_of_file (Filename.concat examples_dir "vco.sp") in
  Alcotest.(check (array string))
    "parameter vector order" T.vco_param_names t.N.Elab.param_names;
  Alcotest.(check bool) "bounds bit-equal" true (t.N.Elab.bounds = T.vco_bounds);
  let opts = V.default_options in
  List.iter
    (fun (label, x) ->
      if
        not
          (N.Elab.same_netlist
             (t.N.Elab.instantiate x)
             (T.ring_vco ~stages:opts.V.stages ~vdd:opts.V.vdd
                ~vctl:opts.V.vctl_lo
                (T.vco_params_of_vector x)))
      then Alcotest.failf "vco.sp differs from the builder at the %s" label)
    [
      ("midpoint", t.N.Elab.default);
      ("lower corner", Array.map fst t.N.Elab.bounds);
      ("upper corner", Array.map snd t.N.Elab.bounds);
    ]

let test_example_decks_parse () =
  List.iter
    (fun name ->
      let net = N.Elab.netlist_of_file (Filename.concat examples_dir name) in
      Alcotest.(check bool)
        (name ^ " has elements")
        true
        (C.Netlist.elements net <> []))
    [ "ota.sp"; "divider.sp" ]

(* ---- exporters ---- *)

let median_params =
  (* Export.spice picks the middle Pareto entry; with the 8 synthetic
     entries that is index 3 *)
  Test_core.synthetic_entries.(3).H.Variation_model.design.H.Vco_problem.params

let test_export_spice_roundtrip () =
  let deck = N.Export.spice Test_core.model in
  let net = N.Elab.subckt_netlist (N.Parse.deck deck) "hieropt_vco" in
  let opts = V.default_options in
  Alcotest.(check bool) "export re-parses into the median ring VCO" true
    (N.Elab.same_netlist net
       (T.ring_vco ~stages:opts.V.stages ~vdd:opts.V.vdd ~vctl:opts.V.vctl_lo
          median_params))

let test_export_determinism () =
  Alcotest.(check string) "spice is a pure function of the table"
    (N.Export.spice Test_core.model)
    (N.Export.spice Test_core.model);
  Alcotest.(check string) "verilog-a is a pure function of the table"
    (N.Export.verilog_a Test_core.model)
    (N.Export.verilog_a Test_core.model)

let test_export_verilog_a_shape () =
  let va = N.Export.verilog_a Test_core.model in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S" needle)
        true (contains_sub va needle))
    [
      "module hieropt_vco";
      "$table_model";
      "\"data.tbl\"";
      "\"kvco_delta.tbl\"";
      "\"p7_data.tbl\"";
      "\"3E,3E\"";
      "endmodule";
    ]

let suite =
  [
    Alcotest.test_case "error rendering" `Quick test_error_to_string;
    QCheck_alcotest.to_alcotest prop_tokenizer_locations;
    QCheck_alcotest.to_alcotest prop_tokenizer_card_order;
    Alcotest.test_case "param forward reference" `Quick
      test_param_forward_reference;
    Alcotest.test_case "param cycle" `Quick test_param_cycle;
    Alcotest.test_case "param expressions" `Quick test_param_expressions;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "template basics" `Quick test_template_basics;
    Alcotest.test_case "template requires a range" `Quick
      test_template_requires_range;
    Alcotest.test_case "flatten rejects ranges" `Quick
      test_flatten_rejects_range;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "fingerprint tracks content" `Quick
      test_template_fingerprint_tracks_content;
    Alcotest.test_case "nested subckt" `Quick test_nested_subckt;
    Alcotest.test_case "nested subckt scoping" `Quick
      test_nested_subckt_is_lexically_scoped;
    Alcotest.test_case "recursion depth limit" `Quick test_subckt_depth_limit;
    Alcotest.test_case "same_netlist" `Quick test_same_netlist;
    QCheck_alcotest.to_alcotest prop_to_spice_roundtrip;
    Alcotest.test_case "vco.sp = builtin" `Quick test_vco_deck_matches_builtin;
    Alcotest.test_case "example decks parse" `Quick test_example_decks_parse;
    Alcotest.test_case "export spice roundtrip" `Quick
      test_export_spice_roundtrip;
    Alcotest.test_case "export determinism" `Quick test_export_determinism;
    Alcotest.test_case "verilog-a shape" `Quick test_export_verilog_a_shape;
  ]
