type t = {
  mutex : Mutex.t;
  counters : (string, int) Hashtbl.t;
  timers : (string, float) Hashtbl.t;
}

let registry =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    timers = Hashtbl.create 16;
  }

let locked f =
  Mutex.lock registry.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.mutex) f

let incr ?(by = 1) name =
  locked (fun () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt registry.counters name) in
      Hashtbl.replace registry.counters name (cur + by))

let set name v = locked (fun () -> Hashtbl.replace registry.counters name v)

let counter name =
  locked (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt registry.counters name))

let add_time name seconds =
  locked (fun () ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt registry.timers name) in
      Hashtbl.replace registry.timers name (cur +. seconds))

let timer name =
  locked (fun () ->
      Option.value ~default:0.0 (Hashtbl.find_opt registry.timers name))

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0))
    f

let reset () =
  locked (fun () ->
      Hashtbl.reset registry.counters;
      Hashtbl.reset registry.timers)

(* separate from the registry mutex so stderr I/O never blocks counter
   updates from other domains *)
let warn_mutex = Mutex.create ()

let warn ~key fmt =
  Printf.ksprintf
    (fun msg ->
      incr key;
      Repro_obs.Journal.record_warning ~key msg;
      (* the whole line is formatted first and written with a single
         [output_string] under a mutex, so warnings racing in from
         several domains never interleave mid-line *)
      let line = Printf.sprintf "WARNING [%s]: %s\n" key msg in
      Mutex.lock warn_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock warn_mutex)
        (fun () ->
          output_string stderr line;
          flush stderr))
    fmt

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* both tables copied under one lock acquisition, so the snapshot is a
   consistent point-in-time view even while workers keep reporting *)
let split_snapshot () =
  locked (fun () -> (sorted registry.counters, sorted registry.timers))

let snapshot () =
  let counters, timers = split_snapshot () in
  List.merge
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (k, v) -> (k, `Counter v)) counters)
    (List.map (fun (k, v) -> (k, `Timer v)) timers)

(* shortest float rendering that parses back to the exact value, so a
   /metrics consumer can reconstruct timers bit-for-bit *)
let json_float x =
  if not (Float.is_finite x) then "null"
  else
    let exact fmt =
      let s = Printf.sprintf fmt x in
      if float_of_string s = x then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> (
      match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" x)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_string () =
  let counters, timers = split_snapshot () in
  let buf = Buffer.create 256 in
  let fields render entries =
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.ksprintf (Buffer.add_string buf) "\"%s\":%s" (json_escape k)
          (render v))
      entries
  in
  Buffer.add_string buf "{\"counters\":{";
  fields string_of_int counters;
  Buffer.add_string buf "},\"timers\":{";
  fields json_float timers;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let line () =
  let counters, timers = split_snapshot () in
  let parts =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%.2fs" k v) timers
  in
  match parts with
  | [] -> "telemetry: (empty)"
  | _ -> "telemetry: " ^ String.concat " " parts

let report () =
  let counters, timers = split_snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "telemetry report\n";
  if counters = [] && timers = [] then Buffer.add_string buf "  (empty)\n"
  else begin
    List.iter
      (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) "  %-32s %12d\n" k v)
      counters;
    List.iter
      (fun (k, v) ->
        Printf.ksprintf (Buffer.add_string buf) "  %-32s %10.3f s\n" k v)
      timers
  end;
  Buffer.contents buf
