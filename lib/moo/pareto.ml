type dominance = Dominates | Dominated | Incomparable

let objective_dominance a b =
  let better = ref false and worse = ref false in
  let n = Array.length a in
  for i = 0 to n - 1 do
    if a.(i) < b.(i) then better := true
    else if a.(i) > b.(i) then worse := true
  done;
  match (!better, !worse) with
  | true, false -> Dominates
  | false, true -> Dominated
  | true, true | false, false -> Incomparable

let compare_dominance (a : Problem.evaluation) (b : Problem.evaluation) =
  let fa = Problem.feasible a and fb = Problem.feasible b in
  match (fa, fb) with
  | true, false -> Dominates
  | false, true -> Dominated
  | false, false ->
    if a.constraint_violation < b.constraint_violation then Dominates
    else if a.constraint_violation > b.constraint_violation then Dominated
    else Incomparable
  | true, true -> objective_dominance a.objectives b.objectives

(* Deb's fast non-dominated sort, O(M N^2) *)
let non_dominated_sort evals =
  let n = Array.length evals in
  let dominated_by = Array.make n [] in
  (* dominated_by.(i): indices that i dominates *)
  let dom_count = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match compare_dominance evals.(i) evals.(j) with
      | Dominates ->
        dominated_by.(i) <- j :: dominated_by.(i);
        dom_count.(j) <- dom_count.(j) + 1
      | Dominated ->
        dominated_by.(j) <- i :: dominated_by.(j);
        dom_count.(i) <- dom_count.(i) + 1
      | Incomparable -> ()
    done
  done;
  let ranks = Array.make n (-1) in
  let fronts = ref [] in
  let current = ref [] in
  for i = 0 to n - 1 do
    if dom_count.(i) = 0 then begin
      ranks.(i) <- 0;
      current := i :: !current
    end
  done;
  let rank = ref 0 in
  while !current <> [] do
    let this_front = List.rev !current in
    fronts := Array.of_list this_front :: !fronts;
    let next = ref [] in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            dom_count.(j) <- dom_count.(j) - 1;
            if dom_count.(j) = 0 then begin
              ranks.(j) <- !rank + 1;
              next := j :: !next
            end)
          dominated_by.(i))
      this_front;
    incr rank;
    current := List.rev !next
  done;
  (ranks, Array.of_list (List.rev !fronts))

let crowding_distance evals front =
  let m = Array.length front in
  let dist = Array.make m 0.0 in
  if m <= 2 then Array.map (fun _ -> infinity) dist
  else begin
    let n_obj = Array.length evals.(front.(0)).Problem.objectives in
    let order = Array.init m (fun i -> i) in
    for k = 0 to n_obj - 1 do
      let value i = evals.(front.(i)).Problem.objectives.(k) in
      Array.sort (fun a b -> compare (value a) (value b)) order;
      let vmin = value order.(0) and vmax = value order.(m - 1) in
      dist.(order.(0)) <- infinity;
      dist.(order.(m - 1)) <- infinity;
      let span = vmax -. vmin in
      if span > 0.0 then
        for r = 1 to m - 2 do
          let i = order.(r) in
          if dist.(i) <> infinity then
            dist.(i) <-
              dist.(i) +. ((value order.(r + 1) -. value order.(r - 1)) /. span)
        done
    done;
    dist
  end

let non_dominated evals =
  let _, fronts = non_dominated_sort evals in
  if Array.length fronts = 0 then [||] else fronts.(0)

let filter_front tagged =
  let evals = Array.map snd tagged in
  let front = non_dominated evals in
  Array.of_list
    (List.filter_map
       (fun i ->
         if Problem.feasible evals.(i) then Some tagged.(i) else None)
       (Array.to_list front))

let hypervolume_2d ~reference evals =
  Array.iter
    (fun (e : Problem.evaluation) ->
      if Array.length e.objectives <> 2 then
        invalid_arg "Pareto.hypervolume_2d: need 2 objectives")
    evals;
  if Array.length reference <> 2 then
    invalid_arg "Pareto.hypervolume_2d: reference must have 2 entries";
  let pts =
    Array.to_list evals
    |> List.filter_map (fun (e : Problem.evaluation) ->
           let x = e.objectives.(0) and y = e.objectives.(1) in
           if x < reference.(0) && y < reference.(1) then Some (x, y) else None)
  in
  (* keep only the non-dominated staircase, sweep by x *)
  let sorted = List.sort compare pts in
  let rec sweep last_y acc = function
    | [] -> acc
    | (x, y) :: rest ->
      if y >= last_y then sweep last_y acc rest
      else
        let area = (reference.(0) -. x) *. (last_y -. y) in
        sweep y (acc +. area) rest
  in
  sweep reference.(1) 0.0 sorted

let hypervolume_mc ?(samples = 20000) ~prng ~reference ~ideal evals =
  let d = Array.length reference in
  if Array.length ideal <> d then
    invalid_arg "Pareto.hypervolume_mc: ideal/reference mismatch";
  let pts =
    Array.to_list evals
    |> List.filter (fun (e : Problem.evaluation) ->
           Array.length e.objectives = d)
    |> List.map (fun (e : Problem.evaluation) -> e.objectives)
  in
  if pts = [] then 0.0
  else begin
    let hits = ref 0 in
    let probe = Array.make d 0.0 in
    for _ = 1 to samples do
      for k = 0 to d - 1 do
        probe.(k) <- Repro_util.Prng.range prng ideal.(k) reference.(k)
      done;
      let dominated =
        List.exists
          (fun p ->
            let ok = ref true in
            for k = 0 to d - 1 do
              if p.(k) > probe.(k) then ok := false
            done;
            !ok)
          pts
      in
      if dominated then incr hits
    done;
    let volume_box =
      Array.to_list (Array.init d (fun k -> reference.(k) -. ideal.(k)))
      |> List.fold_left ( *. ) 1.0
    in
    volume_box *. float_of_int !hits /. float_of_int samples
  end

let spread_2d evals =
  let pts =
    Array.to_list evals
    |> List.map (fun (e : Problem.evaluation) ->
           (e.objectives.(0), e.objectives.(1)))
    |> List.sort compare
  in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> 0.0
  | pts ->
    let dists =
      let rec consecutive = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          sqrt (((x2 -. x1) ** 2.0) +. ((y2 -. y1) ** 2.0)) :: consecutive rest
        | [ _ ] | [] -> []
      in
      Array.of_list (consecutive pts)
    in
    let mean = Repro_util.Stats.mean dists in
    if mean = 0.0 then 0.0
    else
      Array.fold_left (fun acc d -> acc +. Float.abs (d -. mean)) 0.0 dists
      /. (float_of_int (Array.length dists) *. mean)
