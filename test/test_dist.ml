(* repro_dist: wire-format roundtrips, worker routing, loopback
   coordinator/worker bit-identity, fault tolerance and the shared
   cache protocol. *)

module D = Repro_dist
module E = Repro_engine
module S = Repro_serve
module H = Hieropt
module P = Repro_moo.Problem
module Prng = Repro_util.Prng
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies

let check = Alcotest.(check bool)

let tiny_cfg () =
  H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale
    ~spec:H.Hierarchy.tiny_spec ()

let vco_problem_of cfg =
  H.Vco_problem.problem ~measure_options:cfg.H.Hierarchy.measure
    ~spec:cfg.H.Hierarchy.spec ()

(* deterministic decision vectors; a mix of sensible and degenerate
   (infeasible, infinity-objective) sizings *)
let sample_points problem n =
  let prng = Prng.create 42 in
  Array.init n (fun _ -> P.random_point problem prng)

let same_evaluations msg (a : P.evaluation array) (b : P.evaluation array) =
  Alcotest.(check int) (msg ^ ": count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i ea ->
      let eb = b.(i) in
      check
        (Printf.sprintf "%s: evaluation %d identical" msg i)
        true
        (ea.P.constraint_violation = eb.P.constraint_violation
        && ea.P.objectives = eb.P.objectives))
    a

(* ---- protocol ----------------------------------------------------- *)

let test_stream_codec () =
  let prng = Prng.create 7 in
  Array.iter
    (fun s ->
      let hex = D.Protocol.stream_to_hex s in
      match D.Protocol.stream_of_hex hex with
      | Error msg -> Alcotest.failf "decode failed: %s" msg
      | Ok s' ->
        for _ = 1 to 8 do
          check "restored stream continues identically" true
            (Prng.bits64 s = Prng.bits64 s')
        done)
    (Prng.split_n prng 5);
  check "garbage rejected" true
    (Result.is_error (D.Protocol.stream_of_hex "zz:1"));
  check "short words rejected" true
    (Result.is_error (D.Protocol.stream_of_hex "0:1:2:3:4:5"))

let json_roundtrip j =
  match S.Json.of_string (S.Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "json reparse failed: %s" msg

let test_eval_request_roundtrip () =
  let req =
    {
      D.Protocol.problem = "vco-sizing";
      salt = "abc123";
      model_hash = Some "deadbeef";
      points = [| [| 1.5e-6; 0.25 |]; [| infinity; neg_infinity; nan |] |];
    }
  in
  match
    D.Protocol.eval_request_of_json
      (json_roundtrip (D.Protocol.eval_request_to_json req))
  with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok r ->
    check "fields survive" true
      (r.D.Protocol.problem = req.D.Protocol.problem
      && r.D.Protocol.salt = req.D.Protocol.salt
      && r.D.Protocol.model_hash = req.D.Protocol.model_hash);
    check "finite points bit-identical" true
      (r.D.Protocol.points.(0) = req.D.Protocol.points.(0));
    check "specials survive" true
      (r.D.Protocol.points.(1).(0) = infinity
      && r.D.Protocol.points.(1).(1) = neg_infinity
      && Float.is_nan r.D.Protocol.points.(1).(2))

let test_mc_request_roundtrip () =
  let prng = Prng.create 11 in
  let req =
    {
      D.Protocol.mc_salt = "s";
      params = T.vco_vector_of_params T.vco_default;
      streams = Prng.split_n prng 3;
    }
  in
  let expect = Array.map (fun s -> Prng.bits64 (Prng.copy s)) req.D.Protocol.streams in
  match
    D.Protocol.mc_request_of_json
      (json_roundtrip (D.Protocol.mc_request_to_json req))
  with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok r ->
    check "params bit-identical" true
      (r.D.Protocol.params = req.D.Protocol.params);
    Array.iteri
      (fun i s ->
        check "stream restored" true (Prng.bits64 s = expect.(i)))
      r.D.Protocol.streams

let test_outcome_rows () =
  let perf =
    { V.kvco = 2.3e8; ivco = 5.4e-3; jvco = 1.2e-12; fmin = 1.1e8; fmax = 5.0e8 }
  in
  (match
     D.Protocol.outcome_of_perf_row (D.Protocol.perf_row_of_outcome (Ok perf))
   with
  | Ok p -> check "success roundtrip" true (p = perf)
  | Error _ -> Alcotest.fail "expected Ok");
  (match
     D.Protocol.outcome_of_perf_row
       (D.Protocol.perf_row_of_outcome (Error "boom"))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error");
  check "malformed raises" true
    (try
       ignore (D.Protocol.outcome_of_perf_row [| 2.0; 3.0 |]);
       false
     with Failure _ -> true)

(* ---- worker routing (handler called directly, no sockets) --------- *)

let request ?(meth = "GET") ?(body = "") target path =
  {
    S.Http.meth;
    target;
    path;
    version = "HTTP/1.1";
    headers = [];
    body;
  }

let body_json body =
  match S.Json.of_string body with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON: %s" msg

let test_worker_routing () =
  let cfg = tiny_cfg () in
  let w = D.Worker.create ~version:"test" ~config:cfg () in
  let status, _, body = D.Worker.handler w (request "/healthz" [ "healthz" ]) in
  Alcotest.(check int) "healthz ok" 200 status;
  let j = body_json body in
  check "role" true (S.Json.member "role" j = Some (S.Json.Str "worker"));
  check "salt advertised" true
    (S.Json.member "salt" j = Some (S.Json.Str (D.Worker.salt w)));
  check "problems advertised" true
    (D.Worker.problems w = [ "vco-sizing" ]);
  (* wrong salt -> 409, not an evaluation *)
  let bad =
    S.Json.to_string
      (D.Protocol.eval_request_to_json
         {
           D.Protocol.problem = "vco-sizing";
           salt = "not-the-salt";
           model_hash = None;
           points = [| [| 0.0 |] |];
         })
  in
  let status, _, _ =
    D.Worker.handler w (request ~meth:"POST" ~body:bad "/eval" [ "eval" ])
  in
  Alcotest.(check int) "salt mismatch conflicts" 409 status;
  (* unknown problem -> 404; pll-system without a model too *)
  List.iter
    (fun name ->
      let body =
        S.Json.to_string
          (D.Protocol.eval_request_to_json
             {
               D.Protocol.problem = name;
               salt = D.Worker.salt w;
               model_hash = None;
               points = [| [| 0.0 |] |];
             })
      in
      let status, _, _ =
        D.Worker.handler w (request ~meth:"POST" ~body "/eval" [ "eval" ])
      in
      Alcotest.(check int) (name ^ " rejected") 404 status)
    [ "nonsense"; "pll-system" ];
  (* malformed body -> 400 *)
  let status, _, _ =
    D.Worker.handler w (request ~meth:"POST" ~body:"{" "/eval" [ "eval" ])
  in
  Alcotest.(check int) "malformed body" 400 status;
  (* wrong verbs *)
  let status, _, _ = D.Worker.handler w (request ~meth:"POST" "/healthz" [ "healthz" ]) in
  Alcotest.(check int) "POST /healthz" 405 status;
  let status, _, _ = D.Worker.handler w (request "/eval" [ "eval" ]) in
  Alcotest.(check int) "GET /eval" 405 status;
  let status, _, _ = D.Worker.handler w (request "/nope" [ "nope" ]) in
  Alcotest.(check int) "unknown route" 404 status

let test_worker_cache_protocol () =
  let cfg = tiny_cfg () in
  let w = D.Worker.create ~config:cfg () in
  let key = E.Cache.key ~kind:"eval:test:s" [| 1.0; 2.5e-7 |] in
  let id = E.Cache.key_id key in
  let line = E.Cache.entry_to_line key [| 0.0; 3.25 |] in
  (* miss first *)
  let status, _, _ = D.Worker.handler w (request ("/cache/" ^ id) [ "cache"; id ]) in
  Alcotest.(check int) "miss is 404" 404 status;
  (* PUT then GET roundtrips the exact line *)
  let status, _, _ =
    D.Worker.handler w
      (request ~meth:"PUT" ~body:line ("/cache/" ^ id) [ "cache"; id ])
  in
  Alcotest.(check int) "put accepted" 204 status;
  let status, _, got =
    D.Worker.handler w (request ("/cache/" ^ id) [ "cache"; id ])
  in
  Alcotest.(check int) "hit" 200 status;
  Alcotest.(check string) "line roundtrips" line got;
  (* id / line mismatch and garbage are 400s *)
  let status, _, _ =
    D.Worker.handler w
      (request ~meth:"PUT" ~body:line "/cache/ffff" [ "cache"; "ffff" ])
  in
  Alcotest.(check int) "wrong id rejected" 400 status;
  let status, _, _ =
    D.Worker.handler w
      (request ~meth:"PUT" ~body:"not a line" ("/cache/" ^ id) [ "cache"; id ])
  in
  Alcotest.(check int) "garbage rejected" 400 status;
  (* bulk warm: n lines, malformed ones skipped *)
  let key2 = E.Cache.key ~kind:"eval:test:s" [| 9.0 |] in
  let lines =
    String.concat "\n"
      [ line; E.Cache.entry_to_line key2 [| 1.0 |]; "garbage line" ]
  in
  let status, _, body =
    D.Worker.handler w (request ~meth:"PUT" ~body:lines "/cache" [ "cache" ])
  in
  Alcotest.(check int) "bulk accepted" 200 status;
  check "bulk stored 2" true
    (S.Json.member "stored" (body_json body) = Some (S.Json.Num 2.0));
  check "entries present" true (E.Cache.length (D.Worker.cache w) = 2)

(* ---- loopback farm ------------------------------------------------ *)

let with_worker ?model cfg f =
  let w = D.Worker.create ?model ~config:cfg () in
  let server = D.Worker.serve ~port:0 w in
  Fun.protect
    ~finally:(fun () ->
      S.Server.stop ~drain_timeout:2. server;
      S.Server.wait server)
    (fun () -> f w (Printf.sprintf "127.0.0.1:%d" (S.Server.port server)))

let coordinator ?model_hash ~salt endpoints =
  match
    D.Coordinator.create ?model_hash ~timeout:60. ~retries:1 ~salt
      ~endpoints ()
  with
  | Ok c -> c
  | Error msg -> Alcotest.failf "coordinator: %s" msg

let test_loopback_eval_identity () =
  let cfg = tiny_cfg () in
  let salt = H.Hierarchy.config_salt cfg in
  let problem = vco_problem_of cfg in
  let points = sample_points problem 3 in
  let expect = P.serial_evaluator problem points in
  with_worker cfg @@ fun w endpoint ->
  let c = coordinator ~salt [ endpoint ] in
  Alcotest.(check int) "worker live" 1 (D.Coordinator.live_workers c);
  let remote = D.Coordinator.eval_bulk c ~salt problem points in
  same_evaluations "remote vs serial" expect remote;
  check "worker actually evaluated" true
    (E.Cache.length (D.Worker.cache w) >= 3);
  (* the remote_evaluator hook composes with a coordinator-side cache *)
  let cache = E.Cache.create () in
  let hook = D.Coordinator.remote c in
  let via_hook =
    hook.H.Hierarchy.remote_evaluator ~salt ~cache problem points
  in
  same_evaluations "hook vs serial" expect via_hook;
  let again = hook.H.Hierarchy.remote_evaluator ~salt ~cache problem points in
  same_evaluations "cached re-eval" expect again;
  check "second round served from coordinator cache" true
    (E.Cache.hits cache >= 3)

let test_loopback_mc_identity () =
  let cfg = tiny_cfg () in
  let salt = H.Hierarchy.config_salt cfg in
  let options =
    {
      H.Variation_model.samples = 4;
      process = cfg.H.Hierarchy.process;
      measure = cfg.H.Hierarchy.measure;
    }
  in
  let design =
    match V.characterise T.vco_default with
    | Ok perf -> { H.Vco_problem.params = T.vco_default; perf }
    | Error f -> Alcotest.failf "characterise: %s" (V.failure_to_string f)
  in
  let local_entry =
    H.Variation_model.analyse_design ~options ~prng:(Prng.create 5) design
  in
  with_worker cfg @@ fun _w endpoint ->
  let c = coordinator ~salt [ endpoint ] in
  let hook = D.Coordinator.remote c in
  let remote_entry =
    H.Variation_model.analyse_design ~options
      ~mc_bulk:(hook.H.Hierarchy.remote_mc ~salt)
      ~prng:(Prng.create 5) design
  in
  check "variation entry identical" true (local_entry = remote_entry)

let test_dead_endpoint_fallback () =
  (* nothing listens on port 9: the coordinator warns, marks the worker
     dead and every batch falls back to the caller's local evaluator *)
  let c =
    match
      D.Coordinator.create ~timeout:1. ~retries:0 ~salt:"s"
        ~endpoints:[ "127.0.0.1:9" ] ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "unreachable should not fail create: %s" msg
  in
  Alcotest.(check int) "no live workers" 0 (D.Coordinator.live_workers c);
  let perf =
    { V.kvco = 1.0; ivco = 2.0; jvco = 3.0; fmin = 4.0; fmax = 5.0 }
  in
  let calls = ref 0 in
  let local streams =
    incr calls;
    Array.map (fun _ -> Ok perf) streams
  in
  let streams = Prng.split_n (Prng.create 3) 6 in
  let out =
    D.Coordinator.mc_bulk c ~salt:"s" ~params:[| 0.0 |] ~local streams
  in
  Alcotest.(check int) "local evaluator used once" 1 !calls;
  Alcotest.(check int) "all outcomes present" 6 (Array.length out);
  Array.iter (fun o -> check "outcome is the local one" true (o = Ok perf)) out

let test_salt_mismatch_fails_create () =
  let cfg = tiny_cfg () in
  with_worker cfg @@ fun _w endpoint ->
  match
    D.Coordinator.create ~salt:"different-salt" ~endpoints:[ endpoint ] ()
  with
  | Error msg -> check "creation refused" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "mismatched salt must fail creation"

let test_worker_loss_falls_back () =
  let cfg = tiny_cfg () in
  let salt = H.Hierarchy.config_salt cfg in
  let w = D.Worker.create ~config:cfg () in
  let server = D.Worker.serve ~port:0 w in
  let endpoint = Printf.sprintf "127.0.0.1:%d" (S.Server.port server) in
  let c =
    match
      D.Coordinator.create ~timeout:60. ~retries:0 ~salt
        ~endpoints:[ endpoint ] ()
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "coordinator: %s" msg
  in
  let perf =
    { V.kvco = 6.0; ivco = 7.0; jvco = 8.0; fmin = 9.0; fmax = 10.0 }
  in
  let local streams = Array.map (fun _ -> Ok perf) streams in
  let params = T.vco_vector_of_params T.vco_default in
  (* batch 1: served remotely (the local stub would return [perf]) *)
  let streams = Prng.split_n (Prng.create 4) 2 in
  let out = D.Coordinator.mc_bulk c ~salt ~params ~local streams in
  check "batch 1 computed remotely" true
    (Array.for_all (fun o -> o <> Ok perf) out);
  (* the worker dies; the next batch must still complete, locally *)
  S.Server.stop ~drain_timeout:2. server;
  S.Server.wait server;
  let out2 = D.Coordinator.mc_bulk c ~salt ~params ~local streams in
  check "batch 2 fell back to local" true
    (Array.for_all (fun o -> o = Ok perf) out2);
  Alcotest.(check int) "worker marked dead" 0 (D.Coordinator.live_workers c)

let test_cache_warming_spreads () =
  let cfg = tiny_cfg () in
  let salt = H.Hierarchy.config_salt cfg in
  let problem = vco_problem_of cfg in
  let points = sample_points problem 2 in
  with_worker cfg @@ fun w1 ep1 ->
  with_worker cfg @@ fun w2 ep2 ->
  let c = coordinator ~salt [ ep1; ep2 ] in
  Alcotest.(check int) "both live" 2 (D.Coordinator.live_workers c);
  let first = D.Coordinator.eval_bulk c ~salt problem points in
  (* every fresh result is pushed to every live worker, so both caches
     hold the full batch regardless of who computed what *)
  Alcotest.(check int) "w1 warmed" 2 (E.Cache.length (D.Worker.cache w1));
  Alcotest.(check int) "w2 warmed" 2 (E.Cache.length (D.Worker.cache w2));
  let again = D.Coordinator.eval_bulk c ~salt problem points in
  same_evaluations "warm re-eval identical" first again;
  check "a worker served from cache" true
    (E.Cache.hits (D.Worker.cache w1) + E.Cache.hits (D.Worker.cache w2) >= 2)

let test_system_level_remote_identity () =
  let model = Test_core.model in
  let cfg = tiny_cfg () in
  let salt = H.Hierarchy.config_salt cfg in
  let local = H.Hierarchy.run_system_level cfg ~model in
  with_worker ~model cfg @@ fun w endpoint ->
  check "worker advertises pll" true
    (List.mem "pll-system" (D.Worker.problems w));
  let c =
    coordinator ~model_hash:(D.Protocol.model_fingerprint model) ~salt
      [ endpoint ]
  in
  let remote =
    H.Hierarchy.run_system_level ~remote:(D.Coordinator.remote c) cfg ~model
  in
  check "table 2 rows identical" true
    (local.H.Hierarchy.rows = remote.H.Hierarchy.rows);
  check "selection identical" true
    (local.H.Hierarchy.selected = remote.H.Hierarchy.selected);
  check "pll shards went remote" true
    (E.Cache.length (D.Worker.cache w) > 0)

(* ---- concurrent cache access (the protocol's server side) --------- *)

let test_cache_concurrent () =
  (* two threads hammer the same key space while FIFO eviction churns:
     every successful find must return the exact stored value (no torn
     reads) and the counters must account for every find *)
  let cache = E.Cache.create ~capacity:32 () in
  let value_of i = [| float_of_int i; float_of_int (i * i) |] in
  let torn = Atomic.make 0 in
  let finds = Atomic.make 0 in
  let worker () =
    for round = 0 to 2 do
      ignore round;
      for i = 0 to 199 do
        let key = E.Cache.key ~kind:"eval:conc" [| float_of_int i |] in
        E.Cache.store cache key (value_of i);
        match E.Cache.find cache key with
        | None -> Atomic.incr finds
        | Some v ->
          Atomic.incr finds;
          if v <> value_of i then Atomic.incr torn
      done
    done
  in
  let t1 = Thread.create worker () in
  let t2 = Thread.create worker () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
  Alcotest.(check int) "every find counted" (Atomic.get finds)
    (E.Cache.hits cache + E.Cache.misses cache);
  check "eviction happened" true (E.Cache.evictions cache > 0);
  check "capacity respected" true (E.Cache.length cache <= 32)

let suite =
  [
    Alcotest.test_case "stream codec" `Quick test_stream_codec;
    Alcotest.test_case "eval request roundtrip" `Quick
      test_eval_request_roundtrip;
    Alcotest.test_case "mc request roundtrip" `Quick test_mc_request_roundtrip;
    Alcotest.test_case "outcome rows" `Quick test_outcome_rows;
    Alcotest.test_case "worker routing" `Quick test_worker_routing;
    Alcotest.test_case "worker cache protocol" `Quick
      test_worker_cache_protocol;
    Alcotest.test_case "dead endpoint fallback" `Quick
      test_dead_endpoint_fallback;
    Alcotest.test_case "cache concurrent access" `Quick test_cache_concurrent;
    Alcotest.test_case "salt mismatch fails create" `Quick
      test_salt_mismatch_fails_create;
    Alcotest.test_case "loopback eval bit-identical" `Slow
      test_loopback_eval_identity;
    Alcotest.test_case "loopback mc bit-identical" `Slow
      test_loopback_mc_identity;
    Alcotest.test_case "worker loss falls back" `Slow
      test_worker_loss_falls_back;
    Alcotest.test_case "cache warming spreads" `Slow
      test_cache_warming_spreads;
    Alcotest.test_case "system level remote identity" `Slow
      test_system_level_remote_identity;
  ]
