type event = {
  name : string;
  ph : char; (* 'B' begin | 'E' end | 'i' instant *)
  ts : float; (* microseconds since the trace epoch *)
  tid : int;
  seq : int;
  args : (string * string) list;
}

(* Per-domain sink: a domain only ever touches its own event list, so
   the common emit path contends on nothing shared except the global
   sequence counter (an atomic).  The sink mutex exists solely for the
   rare cross-domain readers ([start]'s reset and [export]). *)
type sink = {
  tid : int;
  mutex : Mutex.t;
  mutable events : event list; (* newest first *)
}

let sinks_mutex = Mutex.create ()
let sinks : sink list ref = ref []
let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0
let seq = Atomic.make 0

let sink_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          tid = (Domain.self () :> int);
          mutex = Mutex.create ();
          events = [];
        }
      in
      Mutex.lock sinks_mutex;
      sinks := s :: !sinks;
      Mutex.unlock sinks_mutex;
      s)

let enabled () = Atomic.get enabled_flag

let all_sinks () =
  Mutex.lock sinks_mutex;
  let all = !sinks in
  Mutex.unlock sinks_mutex;
  all

let emit ph name args =
  let s = Domain.DLS.get sink_key in
  let e =
    {
      name;
      ph;
      ts = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6;
      tid = s.tid;
      seq = Atomic.fetch_and_add seq 1;
      args;
    }
  in
  Mutex.lock s.mutex;
  s.events <- e :: s.events;
  Mutex.unlock s.mutex

let start () =
  List.iter
    (fun s ->
      Mutex.lock s.mutex;
      s.events <- [];
      Mutex.unlock s.mutex)
    (all_sinks ());
  Atomic.set seq 0;
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let instant ?(args = []) name = if enabled () then emit 'i' name args

let span ?(args = []) name f =
  (* [enabled] is sampled once: a span that emitted its 'B' always emits
     the matching 'E' (even if tracing stops mid-span), and a span that
     started disabled emits nothing, so exports stay balanced *)
  if not (enabled ()) then f ()
  else begin
    emit 'B' name args;
    Fun.protect ~finally:(fun () -> emit 'E' name []) f
  end

let events () =
  List.concat_map
    (fun s ->
      Mutex.lock s.mutex;
      let e = s.events in
      Mutex.unlock s.mutex;
      e)
    (all_sinks ())
  |> List.sort (fun a b -> compare a.seq b.seq)

let event_count () =
  List.fold_left
    (fun acc s ->
      Mutex.lock s.mutex;
      let n = List.length s.events in
      Mutex.unlock s.mutex;
      acc + n)
    0 (all_sinks ())

let render_event pid e =
  let fields =
    [
      ("name", Jfmt.S e.name);
      ("cat", Jfmt.S "hieropt");
      ("ph", Jfmt.S (String.make 1 e.ph));
      ("ts", Jfmt.F e.ts);
      ("pid", Jfmt.I pid);
      ("tid", Jfmt.I e.tid);
    ]
  in
  (* instants need a scope; "t" = thread-scoped tick mark *)
  let fields = if e.ph = 'i' then fields @ [ ("s", Jfmt.S "t") ] else fields in
  match e.args with
  | [] -> Jfmt.obj fields
  | args ->
    let rendered = Jfmt.obj (List.map (fun (k, v) -> (k, Jfmt.S v)) args) in
    let body = Jfmt.obj fields in
    (* splice the args object in by hand: Jfmt.obj only takes scalars *)
    String.sub body 0 (String.length body - 1)
    ^ ",\"args\":" ^ rendered ^ "}"

let export path =
  let evs = events () in
  let pid = Unix.getpid () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
      List.iteri
        (fun i e ->
          if i > 0 then output_char oc ',';
          output_char oc '\n';
          output_string oc (render_event pid e))
        evs;
      output_string oc "\n]}\n");
  List.length evs
