(* Quickstart: size a ring VCO, measure it at transistor level, wrap it in
   a behavioural PLL and check the lock — the library's three layers in
   thirty lines.

   Run with: dune exec examples/quickstart.exe *)

module T = Repro_circuit.Topologies
module V = Repro_spice.Vco_measure
module B = Repro_behave

let () =
  (* 1. transistor level: build the paper's 5-stage current-starved ring
     oscillator at a mid-range sizing and characterise it *)
  let sizing = T.vco_default in
  Format.printf "characterising the 5-stage ring VCO (22 transistors)...@.";
  let perf =
    match V.characterise sizing with
    | Ok p -> p
    | Error f -> failwith (V.failure_to_string f)
  in
  Format.printf "  %a@." V.pp_performance perf;
  (* 2. behavioural level: wrap the measured VCO in a charge-pump PLL *)
  let pll =
    {
      B.Pll.fref = 100e6;
      n_div = 8;
      cp = B.Charge_pump.ideal 200e-6;
      filter = { B.Loop_filter.c1 = 10e-12; c2 = 0.6e-12; r1 = 6e3 };
      vco =
        {
          B.Vco_model.f0 = 0.5 *. (perf.V.fmin +. perf.V.fmax);
          v0 = 0.85;
          kvco = perf.V.kvco;
          fmin = perf.V.fmin;
          fmax = perf.V.fmax;
          jitter = perf.V.jvco;
        };
      ivco = perf.V.ivco;
      overhead_current = 8e-3;
      vctl_init = 0.2;
    }
  in
  Format.printf "locking an 800 MHz PLL around it...@.";
  (match B.Pll.evaluate pll with
  | Ok p -> Format.printf "  %a@." B.Pll.pp_performance p
  | Error e -> Format.printf "  did not lock: %s@." e);
  (* 3. statistical level: how much does this design spread over process? *)
  let net = T.ring_vco ~vctl:0.5 sizing in
  let prng = Repro_util.Prng.create 42 in
  Format.printf "10-sample Monte-Carlo over process + mismatch...@.";
  let mc =
    Repro_spice.Monte_carlo.run ~n:10 ~prng net (fun perturbed ->
        Result.map_error V.failure_to_string (V.characterise_netlist perturbed))
  in
  let samples = mc.Repro_spice.Monte_carlo.samples in
  let spread get =
    Repro_spice.Monte_carlo.spread_of_samples ~nominal:(get perf)
      (Array.map get samples)
  in
  Format.printf "  jitter  %a@." Repro_spice.Monte_carlo.pp_spread
    (spread (fun p -> p.V.jvco));
  Format.printf "  current %a@." Repro_spice.Monte_carlo.pp_spread
    (spread (fun p -> p.V.ivco))
