(* The model server end to end: JSON codec exactness, HTTP parsing,
   registry lifecycle, and a loopback server whose answers must be
   bit-identical to querying the in-process table. *)

module H = Hieropt
module S = Repro_serve
module Json = S.Json
module Http = S.Http

let bits = Int64.bits_of_float

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.Arr [ Json.Null; Json.Bool true; Json.Str "x\"y\n" ]);
        ("empty", Json.Obj []);
        ("neg", Json.Num (-0.0078125));
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrips" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_strictness () =
  let rejected s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  List.iter rejected
    [ "{\"a\":1} x"; "[1,]"; "{\"a\":}"; "01"; "+1"; "nul"; "\"\\q\"";
      "[1 2]"; "{'a':1}"; "" ];
  (* \u escapes, including a surrogate pair, decode to UTF-8 *)
  match Json.of_string "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape decode failed"

let test_json_duplicate_key () =
  let dup s =
    match Json.of_string s with
    | Ok j -> Json.duplicate_key j
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check (option string)) "clean" None
    (dup "{\"a\":1,\"b\":{\"a\":2},\"c\":[{\"a\":3}]}");
  Alcotest.(check (option string)) "top-level" (Some "a")
    (dup "{\"a\":1,\"a\":2}");
  Alcotest.(check (option string)) "nested path" (Some "serve.qps")
    (dup "{\"serve\":{\"qps\":1,\"p50\":2,\"qps\":3}}");
  Alcotest.(check (option string)) "inside array" (Some "xs[1].k")
    (dup "{\"xs\":[{\"k\":1},{\"k\":1,\"k\":2}]}")

let prop_json_float_exact =
  (* the float codec is the bit-identity guarantee: every finite float
     must survive encode/decode with the same bit pattern *)
  QCheck.Test.make ~name:"JSON float codec is lossless" ~count:1000
    QCheck.(
      oneof
        [
          float;
          float_range (-1e18) 1e18;
          float_range (-1e-6) 1e-6;
          oneofl [ 0.0; -0.0; 1e-312; Float.max_float; Float.min_float ];
        ])
    (fun x ->
      QCheck.assume (Float.is_finite x);
      match Json.of_string (Json.float_repr x) with
      | Ok (Json.Num y) -> bits y = bits x
      | _ -> false)

(* ---- http ---- *)

let test_http_parse_request () =
  let raw =
    "POST /models/m-1/query?trace=1 HTTP/1.1\r\nHost: x\r\n\
     Content-Length: 4\r\nX-Mixed-Case: Kept\r\n\r\nbodyEXTRA"
  in
  match Http.read_request (Http.Reader.of_string raw) with
  | Error e -> Alcotest.failf "parse failed: %s" (Http.error_to_string e)
  | Ok req ->
    Alcotest.(check string) "meth" "POST" req.Http.meth;
    Alcotest.(check (list string)) "path"
      [ "models"; "m-1"; "query" ]
      req.Http.path;
    Alcotest.(check string) "body" "body" req.Http.body;
    Alcotest.(check (option string)) "header, case-insensitive" (Some "Kept")
      (Http.header "x-mixed-case" req.Http.headers);
    Alcotest.(check bool) "1.1 keeps alive" true (Http.keep_alive req)

let test_http_parse_errors () =
  let parse raw = Http.read_request (Http.Reader.of_string raw) in
  (match parse "" with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "empty stream should be Eof");
  (match parse "GARBAGE\r\n\r\n" with
  | Error (`Bad_request _) -> ()
  | _ -> Alcotest.fail "malformed request line should be Bad_request");
  (match parse "GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n" with
  | Error (`Bad_request _) -> ()
  | _ -> Alcotest.fail "bad content-length should be Bad_request");
  match parse "GET / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n" with
  | Error (`Too_large _) -> ()
  | _ -> Alcotest.fail "huge content-length should be Too_large"

let test_http_connection_header () =
  let with_conn v =
    Printf.sprintf "GET / HTTP/1.1\r\nConnection: %s\r\n\r\n" v
  in
  let ka raw =
    match Http.read_request (Http.Reader.of_string raw) with
    | Ok req -> Http.keep_alive req
    | Error e -> Alcotest.failf "parse failed: %s" (Http.error_to_string e)
  in
  Alcotest.(check bool) "close" false (ka (with_conn "close"));
  Alcotest.(check bool) "Close" false (ka (with_conn "Close"));
  Alcotest.(check bool) "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 keep-alive" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

(* ---- conn state machine ---- *)

let feed_str conn s =
  S.Conn.feed conn (Bytes.of_string s) 0 (String.length s)

let test_conn_split_feeds () =
  (* a request arriving one byte at a time, terminator split across
     feeds, must yield exactly one Request with the right body *)
  let conn = S.Conn.create () in
  let raw =
    "POST /v1/models/m/query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody"
  in
  let events = ref [] in
  String.iter
    (fun c -> events := !events @ feed_str conn (String.make 1 c))
    raw;
  match !events with
  | [ S.Conn.Request req ] ->
    Alcotest.(check string) "body" "body" req.Http.body;
    Alcotest.(check (list string)) "path"
      [ "v1"; "models"; "m"; "query" ]
      req.Http.path;
    Alcotest.(check bool) "no input parked" false (S.Conn.input_pending conn)
  | evs -> Alcotest.failf "expected one request, got %d events" (List.length evs)

let test_conn_pipelined () =
  (* two requests in one feed → two events, in order *)
  let conn = S.Conn.create () in
  let one = "GET /v1/healthz HTTP/1.1\r\n\r\n" in
  let two = "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi" in
  match feed_str conn (one ^ two) with
  | [ S.Conn.Request a; S.Conn.Request b ] ->
    Alcotest.(check string) "first" "GET" a.Http.meth;
    Alcotest.(check string) "second" "POST" b.Http.meth;
    Alcotest.(check string) "second body" "hi" b.Http.body
  | evs -> Alcotest.failf "expected two requests, got %d events" (List.length evs)

let test_conn_protocol_error_breaks () =
  (* an oversized header line is one Protocol_error; the machine then
     parses nothing more, no matter what arrives *)
  let conn = S.Conn.create () in
  let raw =
    "GET / HTTP/1.1\r\nX-Big: " ^ String.make 9000 'a' ^ "\r\n\r\n"
  in
  (match feed_str conn raw with
  | [ S.Conn.Protocol_error (`Too_large _) ] -> ()
  | _ -> Alcotest.fail "oversized header line must be Too_large");
  Alcotest.(check bool) "broken" true (S.Conn.broken conn);
  Alcotest.(check int) "inert after break" 0
    (List.length (feed_str conn "GET / HTTP/1.1\r\n\r\n"))

let test_conn_response_bytes () =
  (* push_response queues exactly the blocking writer's bytes and the
     drain bookkeeping adds up *)
  let conn = S.Conn.create () in
  S.Conn.push_response ~keep_alive:true ~status:200 ~body:"{}" conn;
  let buf, off, len = S.Conn.output conn in
  let first = Bytes.sub_string buf off len in
  Alcotest.(check bool) "status line" true
    (String.length first > 17 && String.sub first 0 17 = "HTTP/1.1 200 OK\r\n");
  Alcotest.(check bool) "not closing" false (S.Conn.close_after_flush conn);
  S.Conn.output_consumed conn len;
  Alcotest.(check int) "drained" 0 (S.Conn.output_pending conn);
  S.Conn.push_response ~keep_alive:false ~status:503 ~body:"x" conn;
  Alcotest.(check bool) "close requested" true (S.Conn.close_after_flush conn)

(* ---- registry ---- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let temp_root () =
  let dir = Filename.temp_file "hieropt_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let with_root f =
  let root = temp_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

(* a second, distinguishable model: same grid, different jitter *)
let other_entries =
  Array.map
    (fun e ->
      {
        e with
        Hieropt.Variation_model.design =
          {
            e.Hieropt.Variation_model.design with
            Hieropt.Vco_problem.perf =
              {
                e.Hieropt.Variation_model.design.Hieropt.Vco_problem.perf with
                Repro_spice.Vco_measure.jvco =
                  e.Hieropt.Variation_model.design.Hieropt.Vco_problem.perf
                    .Repro_spice.Vco_measure.jvco *. 2.0;
              };
          };
      })
    Test_core.synthetic_entries

let other_model = H.Perf_table.build other_entries

let test_registry_load_and_ids () =
  with_root @@ fun root ->
  H.Perf_table.save ~dir:root Test_core.model;
  let reg = S.Registry.create ~root () in
  (match S.Registry.get reg "default" with
  | Ok table -> Alcotest.(check int) "entries" 8 (H.Perf_table.size table)
  | Error e -> Alcotest.failf "load failed: %s" (S.Registry.error_to_string e));
  (match S.Registry.get reg "../etc" with
  | Error (S.Registry.Invalid_id _) -> ()
  | _ -> Alcotest.fail "path traversal must be an invalid id");
  (match S.Registry.get reg "no_such_model" with
  | Error (S.Registry.Unknown_model _) -> ()
  | _ -> Alcotest.fail "missing dir must be unknown");
  Alcotest.(check int) "one model cached" 1 (S.Registry.loaded_count reg)

let test_registry_invalidation () =
  with_root @@ fun root ->
  H.Perf_table.save ~dir:root Test_core.model;
  let reg = S.Registry.create ~root () in
  let jvco_of reg =
    match S.Registry.get reg "default" with
    | Ok t -> H.Perf_table.jvco_of t ~kvco:400e6 ~ivco:3e-3
    | Error e -> Alcotest.failf "load failed: %s" (S.Registry.error_to_string e)
  in
  let before = jvco_of reg in
  (* overwrite the model on disk and force a different mtime — a cached
     table must not survive its archive changing under it *)
  H.Perf_table.save ~dir:root other_model;
  let bumped = Unix.time () +. 10. in
  Unix.utimes (Filename.concat root "pareto.tbl") bumped bumped;
  let after = jvco_of reg in
  Alcotest.(check bool) "reloaded" true (bits after <> bits before);
  Alcotest.(check (float 1e-30)) "doubled jitter" (before *. 2.0) after

let test_registry_concurrent () =
  (* several threads resolve the same ids through an LRU registry whose
     capacity forces constant eviction/reload churn; every get must
     return a structurally complete table and the registry must stay
     within capacity afterwards *)
  with_root @@ fun root ->
  List.iter
    (fun id ->
      let dir = Filename.concat root id in
      Unix.mkdir dir 0o755;
      H.Perf_table.save ~dir Test_core.model)
    [ "a"; "b"; "c" ];
  let reg = S.Registry.create ~capacity:1 ~root () in
  let failures = Atomic.make 0 in
  let worker seed () =
    let ids = [| "a"; "b"; "c" |] in
    for i = 0 to 149 do
      match S.Registry.get reg ids.((i + seed) mod 3) with
      | Ok table ->
        if H.Perf_table.size table <> 8 then Atomic.incr failures
      | Error _ -> Atomic.incr failures
    done
  in
  let threads = [ Thread.create (worker 0) (); Thread.create (worker 1) () ] in
  List.iter Thread.join threads;
  Alcotest.(check int) "every concurrent get succeeded" 0
    (Atomic.get failures);
  Alcotest.(check int) "capacity respected after churn" 1
    (S.Registry.loaded_count reg)

let test_registry_lru () =
  with_root @@ fun root ->
  List.iter
    (fun id ->
      let dir = Filename.concat root id in
      Unix.mkdir dir 0o755;
      H.Perf_table.save ~dir Test_core.model)
    [ "a"; "b" ];
  let reg = S.Registry.create ~capacity:1 ~root () in
  ignore (S.Registry.get reg "a");
  Alcotest.(check int) "a loaded" 1 (S.Registry.loaded_count reg);
  ignore (S.Registry.get reg "b");
  Alcotest.(check int) "a evicted for b" 1 (S.Registry.loaded_count reg);
  let ids = List.map (fun i -> i.S.Registry.id) (S.Registry.list reg) in
  Alcotest.(check (list string)) "listing" [ "a"; "b" ] ids

(* ---- loopback server ---- *)

(* the server serves what it loads from disk, and the archive keeps 10
   significant digits (%.9e) — so bit-identity claims must compare
   against the same loaded table, exactly as a real run would *)
let with_server ?(reactors = 2) ?request_timeout f =
  with_root @@ fun root ->
  H.Perf_table.save ~dir:root Test_core.model;
  let loaded = H.Perf_table.load ~dir:root in
  let registry = S.Registry.create ~root () in
  let api = S.Api.create ~version:"test" ~registry () in
  let server = S.Server.start ~port:0 ~reactors ?request_timeout ~api () in
  Fun.protect
    ~finally:(fun () ->
      S.Server.stop ~drain_timeout:2. server;
      S.Server.wait server)
    (fun () ->
      f ~loaded server
        (S.Client.create ~port:(S.Server.port server) ~retries:1 ()))

let query_batch =
  (* sample points, interpolated points, and out-of-range clamps *)
  [| (400e6, 3e-3); (1.8e9, 10e-3); (512.5e6, 4.25e-3); (1e5, 1e-6);
     (1e12, 1.0); (777e6, 6.125e-3) |]

let check_client = function
  | Ok v -> v
  | Error e -> Alcotest.failf "client error: %s" (S.Client.error_to_string e)

let test_serve_query_bit_identical () =
  with_server @@ fun ~loaded _server client ->
  let remote = check_client (S.Client.query_points client ~model:"default" query_batch) in
  let local = H.Perf_table.eval_points loaded query_batch in
  Alcotest.(check int) "count" (Array.length local) (Array.length remote);
  Array.iteri
    (fun i (l : H.Perf_table.point_eval) ->
      if l <> remote.(i) then
        Alcotest.failf "point %d differs after the HTTP roundtrip" i)
    local

let test_serve_verify () =
  with_server @@ fun ~loaded _server client ->
  let e = Test_core.synthetic_entries.(3) in
  let perf = e.H.Variation_model.design.H.Vco_problem.perf in
  let params = check_client (S.Client.verify_point client ~model:"default" perf) in
  let expected =
    Repro_circuit.Topologies.vco_vector_of_params
      (H.Perf_table.params_of_perf loaded perf)
  in
  Alcotest.(check int) "7 params" 7 (List.length params);
  List.iteri
    (fun i (name, v) ->
      Alcotest.(check string)
        "param order" Repro_circuit.Topologies.vco_param_names.(i) name;
      if bits v <> bits expected.(i) then
        Alcotest.failf "param %s differs after the HTTP roundtrip" name)
    params

let test_serve_endpoints () =
  with_server @@ fun ~loaded:_ _server client ->
  (* healthz *)
  let health = check_client (S.Client.get_json client "/v1/healthz") in
  (match Json.member "status" health with
  | Some (Json.Str "ok") -> ()
  | _ -> Alcotest.fail "healthz status");
  (* metrics: well-formed JSON with counters/timers objects *)
  let metrics = check_client (S.Client.get_json client "/v1/metrics") in
  (match (Json.member "counters" metrics, Json.member "timers" metrics) with
  | Some (Json.Obj _), Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "metrics shape");
  (* model listing *)
  let models = check_client (S.Client.get_json client "/v1/models") in
  (match Json.member "models" models with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "models listing");
  (* status mapping *)
  let status path meth body =
    match
      (if meth = "GET" then S.Client.get client path
       else S.Client.post client path ~body)
    with
    | Ok r -> r.Http.status
    | Error e -> Alcotest.failf "request failed: %s" (S.Client.error_to_string e)
  in
  Alcotest.(check int) "404 unknown path" 404 (status "/nope" "GET" "");
  Alcotest.(check int) "404 unknown v1 path" 404 (status "/v1/nope" "GET" "");
  Alcotest.(check int) "404 unknown model" 404
    (status "/v1/models/missing/query" "POST" "{\"kvco\":1,\"ivco\":1}");
  Alcotest.(check int) "405 wrong verb" 405
    (status "/v1/models/default/query" "GET" "");
  Alcotest.(check int) "400 bad body" 400
    (status "/v1/models/default/query" "POST" "{");
  Alcotest.(check int) "400 missing field" 400
    (status "/v1/models/default/query" "POST" "{\"kvco\":1}")

let test_serve_export () =
  with_server @@ fun ~loaded _server client ->
  let get path =
    match S.Client.get client path with
    | Ok r -> r
    | Error e -> Alcotest.failf "GET %s: %s" path (S.Client.error_to_string e)
  in
  (* the served bytes must equal the CLI exporter's output over the
     same loaded table — both call the same pure renderers *)
  let va = get "/v1/models/default/export?format=va" in
  Alcotest.(check int) "va status" 200 va.Http.status;
  Alcotest.(check (option string))
    "plain text" (Some "text/plain; charset=utf-8")
    (Http.header "content-type" va.Http.resp_headers);
  Alcotest.(check string) "va = local renderer"
    (Repro_netlist.Export.verilog_a loaded)
    va.Http.resp_body;
  Alcotest.(check string) "va is the default format" va.Http.resp_body
    (get "/v1/models/default/export").Http.resp_body;
  let spice = get "/v1/models/default/export?format=spice" in
  Alcotest.(check string) "spice = local renderer"
    (Repro_netlist.Export.spice loaded)
    spice.Http.resp_body;
  (* and the SPICE body round-trips through the front end *)
  let net =
    Repro_netlist.Elab.subckt_netlist
      (Repro_netlist.Parse.deck spice.Http.resp_body)
      "hieropt_vco"
  in
  Alcotest.(check bool) "served deck re-parses" true
    (Repro_circuit.Netlist.mos_count net > 0);
  Alcotest.(check int) "unknown format is a 400" 400
    (get "/v1/models/default/export?format=vhdl").Http.status;
  match S.Client.post client "/v1/models/default/export" ~body:"" with
  | Ok r -> Alcotest.(check int) "wrong verb is a 405" 405 r.Http.status
  | Error e -> Alcotest.failf "POST export: %s" (S.Client.error_to_string e)

let test_serve_legacy_aliases () =
  with_server @@ fun ~loaded:_ _server client ->
  let counter name =
    let metrics = check_client (S.Client.get_json client "/v1/metrics") in
    match Json.member "counters" metrics with
    | Some c -> (
      match Json.member name c with Some (Json.Num v) -> v | _ -> 0.0)
    | _ -> Alcotest.fail "metrics has no counters"
  in
  let body path =
    match S.Client.get client path with
    | Ok r -> r.Http.resp_body
    | Error e -> Alcotest.failf "GET %s: %s" path (S.Client.error_to_string e)
  in
  (* the unversioned alias serves the same bytes as the /v1 route *)
  Alcotest.(check string) "alias = /v1 bytes" (body "/v1/models")
    (body "/models");
  (* legacy hits are counted (for the removal decision); /v1 hits are not *)
  let c0 = counter "serve.legacy_requests" in
  ignore (body "/healthz");
  ignore (body "/models");
  ignore (body "/v1/healthz");
  let c1 = counter "serve.legacy_requests" in
  Alcotest.(check (float 0.0)) "two legacy hits counted" (c0 +. 2.0) c1

(* the hot-path serialiser must emit byte-for-byte what Json.to_string
   produces for the equivalent tree — the property the bit-identity
   guarantee (and every JSON consumer) rests on *)
let test_serve_query_fast_path_bytes () =
  with_server @@ fun ~loaded server _client ->
  let results = H.Perf_table.eval_points loaded query_batch in
  let triple (nominal, lo, hi) =
    Json.Obj
      [ ("nominal", Json.Num nominal); ("min", Json.Num lo);
        ("max", Json.Num hi) ]
  in
  let expected =
    Json.to_string
      (Json.Obj
         [
           ("model", Json.Str "default");
           ("count", Json.Num (float_of_int (Array.length results)));
           ( "results",
             Json.Arr
               (Array.to_list
                  (Array.map
                     (fun (pe : H.Perf_table.point_eval) ->
                       Json.Obj
                         [
                           ("kvco", triple pe.q_kvco);
                           ("ivco", triple pe.q_ivco);
                           ("jvco", triple pe.q_jvco);
                           ("fmin", Json.Num pe.q_fmin);
                           ("fmax", Json.Num pe.q_fmax);
                         ])
                     results)) );
         ])
  in
  let body =
    Json.to_string
      (Json.Obj
         [ ( "points",
             Json.Arr
               (Array.to_list
                  (Array.map
                     (fun (k, i) ->
                       Json.Obj
                         [ ("kvco", Json.Num k); ("ivco", Json.Num i) ])
                     query_batch)) ) ])
  in
  let client = S.Client.create ~port:(S.Server.port server) () in
  match S.Client.post client "/v1/models/default/query" ~body with
  | Error e -> Alcotest.failf "query: %s" (S.Client.error_to_string e)
  | Ok r ->
    Alcotest.(check int) "200" 200 r.Http.status;
    Alcotest.(check string) "wire bytes = Json.to_string tree" expected
      r.Http.resp_body

let test_serve_healthz_info () =
  with_server @@ fun ~loaded:_ _server client ->
  (* load a model so models_loaded is non-zero *)
  ignore
    (check_client (S.Client.query_points client ~model:"default" query_batch));
  let health = check_client (S.Client.get_json client "/v1/healthz") in
  let num name =
    match Json.member name health with
    | Some (Json.Num v) -> v
    | _ -> Alcotest.failf "healthz missing numeric %s" name
  in
  (match Json.member "version" health with
  | Some (Json.Str "test") -> ()
  | _ -> Alcotest.fail "healthz version");
  Alcotest.(check bool) "started_at plausible" true (num "started_at" > 0.0);
  Alcotest.(check bool) "uptime non-negative" true (num "uptime_seconds" >= 0.0);
  Alcotest.(check (float 0.0)) "one servable model" 1.0 (num "models");
  Alcotest.(check (float 0.0)) "one loaded model" 1.0 (num "models_loaded")

let test_serve_metrics_histograms () =
  with_server @@ fun ~loaded:_ _server client ->
  (* at least one query so the per-endpoint latency histogram exists *)
  ignore
    (check_client (S.Client.query_points client ~model:"default" query_batch));
  let metrics = check_client (S.Client.get_json client "/v1/metrics") in
  let hists =
    match Json.member "histograms" metrics with
    | Some (Json.Obj h) -> h
    | _ -> Alcotest.fail "metrics has no histograms object"
  in
  let q =
    match List.assoc_opt "serve.latency.query" hists with
    | Some j -> j
    | None -> Alcotest.fail "no serve.latency.query histogram"
  in
  let field name =
    match Json.member name q with
    | Some (Json.Num v) -> v
    | _ -> Alcotest.failf "histogram missing %s" name
  in
  Alcotest.(check bool) "count >= 1" true (field "count" >= 1.0);
  Alcotest.(check bool) "p50 <= p99" true (field "p50" <= field "p99");
  Alcotest.(check bool) "quantiles within [min, max]" true
    (field "min" <= field "p50" && field "p99" <= field "max")

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let test_serve_graceful_drain () =
  with_server @@ fun ~loaded:_ server _client ->
  let port = S.Server.port server in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let body = "{\"kvco\":400000000,\"ivco\":0.003}" in
  (* half a request: the server is now mid-read on a worker *)
  write_all fd
    (Printf.sprintf "POST /models/default/query HTTP/1.1\r\nContent-Length: %d\r\n"
       (String.length body));
  Thread.delay 0.1;
  S.Server.stop ~drain_timeout:5. server;
  Thread.delay 0.1;
  (* the in-flight request must still complete... *)
  write_all fd ("\r\n" ^ body);
  (match Http.read_response (Http.Reader.of_fd fd) with
  | Ok resp ->
    Alcotest.(check int) "drained request answered" 200 resp.Http.status;
    Alcotest.(check (option string)) "told to close" (Some "close")
      (Http.header "connection" resp.Http.resp_headers)
  | Error e -> Alcotest.failf "drain response: %s" (Http.error_to_string e));
  S.Server.wait server;
  (* ...and the drained server must accept nothing new *)
  let fd2 = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
  @@ fun () ->
  match Unix.connect fd2 (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> Alcotest.fail "stopped server still accepting connections"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()

(* ---- adversarial connections ---- *)

let connect_raw port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let with_raw port f =
  let fd = connect_raw port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

(* whatever the hostile connection did, the server must still answer a
   well-behaved client afterwards *)
let still_serving client =
  let health = check_client (S.Client.get_json client "/v1/healthz") in
  match Json.member "status" health with
  | Some (Json.Str "ok") -> ()
  | _ -> Alcotest.fail "server no longer healthy"

let test_serve_pipelined_keepalive () =
  with_server @@ fun ~loaded:_ server client ->
  with_raw (S.Server.port server) @@ fun fd ->
  (* three requests in one burst on one connection: three responses, in
     order, all on the same socket *)
  let req = "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n" in
  write_all fd (req ^ req ^ req);
  let reader = Http.Reader.of_fd fd in
  for i = 1 to 3 do
    match Http.read_response reader with
    | Ok resp -> Alcotest.(check int) (Printf.sprintf "pipelined %d" i) 200
                   resp.Http.status
    | Error e ->
      Alcotest.failf "pipelined response %d: %s" i (Http.error_to_string e)
  done;
  still_serving client

let test_serve_slowloris () =
  (* a client trickling a request slower than request_timeout must be
     reaped, not allowed to pin a reactor *)
  with_server ~reactors:1 ~request_timeout:0.4
  @@ fun ~loaded:_ server client ->
  with_raw (S.Server.port server) @@ fun fd ->
  write_all fd "GET /v1/health";
  (* server should cut us off while we stall mid-head *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  let closed =
    match Unix.read fd (Bytes.create 64) 0 64 with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      false
  in
  Alcotest.(check bool) "slow connection reaped" true closed;
  still_serving client

let test_serve_oversized_requests () =
  with_server @@ fun ~loaded:_ server client ->
  let port = S.Server.port server in
  (* a header line beyond the per-line cap: 413 and close *)
  (with_raw port @@ fun fd ->
   write_all fd
     ("GET /v1/healthz HTTP/1.1\r\nX-Big: " ^ String.make 9000 'a'
    ^ "\r\n\r\n");
   match Http.read_response (Http.Reader.of_fd fd) with
   | Ok resp ->
     Alcotest.(check int) "oversized header -> 413" 413 resp.Http.status;
     Alcotest.(check (option string)) "told to close" (Some "close")
       (Http.header "connection" resp.Http.resp_headers)
   | Error e -> Alcotest.failf "oversized header: %s" (Http.error_to_string e));
  (* an announced body beyond max_body: rejected from the headers alone,
     without reading (or allocating) the body *)
  (with_raw port @@ fun fd ->
   write_all fd
     (Printf.sprintf
        "POST /v1/models/default/query HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
        (Http.max_body + 1));
   match Http.read_response (Http.Reader.of_fd fd) with
   | Ok resp -> Alcotest.(check int) "oversized body -> 413" 413 resp.Http.status
   | Error e -> Alcotest.failf "oversized body: %s" (Http.error_to_string e));
  still_serving client

let test_serve_mid_request_disconnect () =
  with_server @@ fun ~loaded:_ server client ->
  let port = S.Server.port server in
  (* clients vanishing at every interesting point of the exchange *)
  List.iter
    (fun partial ->
      let fd = connect_raw port in
      write_all fd partial;
      Unix.close fd)
    [
      "";  (* connect and vanish *)
      "POST /v1/mo";  (* mid request-line *)
      "POST /v1/models/default/query HTTP/1.1\r\nContent-Le";  (* mid header *)
      "POST /v1/models/default/query HTTP/1.1\r\nContent-Length: 30\r\n\r\n{\"kv";
      (* mid body *)
    ];
  Thread.delay 0.1;
  still_serving client;
  (* and real work still round-trips bit-identically *)
  ignore
    (check_client (S.Client.query_points client ~model:"default" query_batch))

(* ---- remote evaluation ---- *)

let design_point = (600e6, 4.5e-3, 10e-12, 0.6e-12, 6e3)

let eval cfg =
  let kvco, ivco, c1, c2, r1 = design_point in
  match H.Pll_problem.evaluate_point cfg ~kvco ~ivco ~c1 ~c2 ~r1 with
  | Ok row -> row
  | Error e -> Alcotest.failf "evaluate failed: %s" e

let test_remote_pll_bit_identical () =
  with_server @@ fun ~loaded _server client ->
  let local_cfg = H.Pll_problem.default_config ~model:loaded in
  let remote_cfg =
    {
      local_cfg with
      H.Pll_problem.query =
        Some (S.Remote.model_query ~client ~model:"default" ());
    }
  in
  let local = eval local_cfg and remote = eval remote_cfg in
  Alcotest.(check bool) "rows bit-identical" true (local = remote)

let test_remote_fallback () =
  (* a client pointed at a dead port: with a fallback table the query
     degrades to local evaluation; without one it raises *)
  let dead = S.Client.create ~port:1 ~timeout:0.2 ~retries:0 () in
  let with_fb =
    S.Remote.model_query ~fallback:Test_core.model ~client:dead
      ~model:"default" ()
  in
  let local = H.Perf_table.eval_points Test_core.model query_batch in
  Alcotest.(check bool) "fallback = local" true (with_fb query_batch = local);
  let without_fb = S.Remote.model_query ~client:dead ~model:"default" () in
  match without_fb query_batch with
  | _ -> Alcotest.fail "dead server without fallback should raise"
  | exception S.Remote.Remote_unavailable _ -> ()

let test_parse_endpoint () =
  let ok s = match S.Remote.parse_endpoint s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse_endpoint %S: %s" s e
  in
  Alcotest.(check (triple string int string)) "host:port"
    ("localhost", 8190, "default") (ok "localhost:8190");
  Alcotest.(check (triple string int string)) "with model"
    ("10.0.0.1", 9000, "vco_a") (ok "10.0.0.1:9000/vco_a");
  List.iter
    (fun s ->
      match S.Remote.parse_endpoint s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "localhost"; "host:"; ":80"; "host:0"; "host:99999"; "host:80/" ]

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json strictness" `Quick test_json_strictness;
    Alcotest.test_case "json duplicate key" `Quick test_json_duplicate_key;
    QCheck_alcotest.to_alcotest prop_json_float_exact;
    Alcotest.test_case "http parse request" `Quick test_http_parse_request;
    Alcotest.test_case "http parse errors" `Quick test_http_parse_errors;
    Alcotest.test_case "http connection header" `Quick test_http_connection_header;
    Alcotest.test_case "conn split feeds" `Quick test_conn_split_feeds;
    Alcotest.test_case "conn pipelined" `Quick test_conn_pipelined;
    Alcotest.test_case "conn protocol error breaks" `Quick
      test_conn_protocol_error_breaks;
    Alcotest.test_case "conn response bytes" `Quick test_conn_response_bytes;
    Alcotest.test_case "registry load and ids" `Quick test_registry_load_and_ids;
    Alcotest.test_case "registry invalidation" `Quick test_registry_invalidation;
    Alcotest.test_case "registry lru" `Quick test_registry_lru;
    Alcotest.test_case "registry concurrent gets" `Quick
      test_registry_concurrent;
    Alcotest.test_case "serve query bit-identical" `Quick
      test_serve_query_bit_identical;
    Alcotest.test_case "serve verify" `Quick test_serve_verify;
    Alcotest.test_case "serve endpoints" `Quick test_serve_endpoints;
    Alcotest.test_case "serve export" `Quick test_serve_export;
    Alcotest.test_case "serve legacy aliases" `Quick test_serve_legacy_aliases;
    Alcotest.test_case "serve query fast-path bytes" `Quick
      test_serve_query_fast_path_bytes;
    Alcotest.test_case "serve healthz info" `Quick test_serve_healthz_info;
    Alcotest.test_case "serve metrics histograms" `Quick
      test_serve_metrics_histograms;
    Alcotest.test_case "serve graceful drain" `Quick test_serve_graceful_drain;
    Alcotest.test_case "serve pipelined keep-alive" `Quick
      test_serve_pipelined_keepalive;
    Alcotest.test_case "serve slowloris reaped" `Quick test_serve_slowloris;
    Alcotest.test_case "serve oversized requests" `Quick
      test_serve_oversized_requests;
    Alcotest.test_case "serve mid-request disconnect" `Quick
      test_serve_mid_request_disconnect;
    Alcotest.test_case "remote pll bit-identical" `Quick
      test_remote_pll_bit_identical;
    Alcotest.test_case "remote fallback" `Quick test_remote_fallback;
    Alcotest.test_case "parse endpoint" `Quick test_parse_endpoint;
  ]
