let max_line = 8192
let max_headers = 100
let max_body = 8 * 1024 * 1024

(* backstop for incremental parsing: a head block larger than every
   per-line/per-count limit combined is hostile by construction *)
let max_head = max_line * (max_headers + 2)

module Reader = struct
  type t = {
    refill : bytes -> int -> int -> int;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
  }

  let of_fd fd =
    {
      refill = Unix.read fd;
      buf = Bytes.create 16384;
      pos = 0;
      len = 0;
    }

  let of_string s =
    let consumed = ref false in
    {
      refill =
        (fun buf off cap ->
          if !consumed then 0
          else begin
            consumed := true;
            let n = min cap (String.length s) in
            (* strings longer than the buffer are not needed by tests *)
            Bytes.blit_string s 0 buf off n;
            n
          end);
      buf = Bytes.create (max 1 (String.length s));
      pos = 0;
      len = 0;
    }

  exception Timeout

  (* returns false on end of stream *)
  let ensure t =
    if t.pos < t.len then true
    else begin
      t.pos <- 0;
      t.len <-
        (try t.refill t.buf 0 (Bytes.length t.buf) with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise Timeout);
      t.len > 0
    end

  let read_byte t = if ensure t then Some (Bytes.get t.buf t.pos) else None

  let advance t = t.pos <- t.pos + 1

  (* one CRLF- (or bare-LF-) terminated line, terminator stripped *)
  let read_line t =
    let buf = Buffer.create 64 in
    let rec loop () =
      match read_byte t with
      | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | Some '\n' ->
        advance t;
        let s = Buffer.contents buf in
        let l = String.length s in
        Some (if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s)
      | Some c ->
        if Buffer.length buf >= max_line then
          invalid_arg "Http: line too long"
        else begin
          advance t;
          Buffer.add_char buf c;
          loop ()
        end
    in
    loop ()

  let read_exact t n =
    let out = Bytes.create n in
    let filled = ref 0 in
    let ok = ref true in
    while !ok && !filled < n do
      if ensure t then begin
        let take = min (n - !filled) (t.len - t.pos) in
        Bytes.blit t.buf t.pos out !filled take;
        t.pos <- t.pos + take;
        filled := !filled + take
      end
      else ok := false
    done;
    if !ok then Some (Bytes.to_string out) else None
end

type request = {
  meth : string;
  target : string;
  path : string list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

type error =
  [ `Eof | `Timeout | `Bad_request of string | `Too_large of string ]

let error_to_string = function
  | `Eof -> "end of stream"
  | `Timeout -> "read timed out"
  | `Bad_request msg -> "bad request: " ^ msg
  | `Too_large msg -> "message too large: " ^ msg

let header name headers = List.assoc_opt (String.lowercase_ascii name) headers

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec loop i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          loop (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          loop (i + 1))
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
  in
  loop 0;
  Buffer.contents buf

let split_target target =
  (* drop the query string, split on '/', decode, ignore empty segments *)
  let path_part =
    match String.index_opt target '?' with
    | Some q -> String.sub target 0 q
    | None -> target
  in
  String.split_on_char '/' path_part
  |> List.filter (fun seg -> seg <> "")
  |> List.map percent_decode

let parse_headers reader =
  let rec loop acc count =
    match Reader.read_line reader with
    | None -> Error (`Bad_request "eof inside headers")
    | Some "" -> Ok (List.rev acc)
    | Some _ when count >= max_headers -> Error (`Too_large "header count")
    | Some line -> (
      match String.index_opt line ':' with
      | None -> Error (`Bad_request "malformed header line")
      | Some colon ->
        let name =
          String.lowercase_ascii (String.trim (String.sub line 0 colon))
        in
        let value =
          String.trim
            (String.sub line (colon + 1) (String.length line - colon - 1))
        in
        loop ((name, value) :: acc) (count + 1))
  in
  loop [] 0

let body_length headers =
  match header "transfer-encoding" headers with
  | Some _ -> Error (`Bad_request "chunked transfer encoding not supported")
  | None -> (
    match header "content-length" headers with
    | None -> Ok 0
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | None -> Error (`Bad_request "malformed content-length")
      | Some len when len < 0 -> Error (`Bad_request "negative content-length")
      | Some len when len > max_body -> Error (`Too_large "body")
      | Some len -> Ok len))

let read_body reader headers =
  match body_length headers with
  | Error _ as e -> e
  | Ok 0 -> Ok ""
  | Ok len -> (
    match Reader.read_exact reader len with
    | Some body -> Ok body
    | None -> Error (`Bad_request "eof inside body"))

let guard_io f =
  match f () with
  | v -> v
  | exception Reader.Timeout -> Error `Timeout
  | exception Invalid_argument _ -> Error (`Too_large "line")
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error `Eof

(* request line + headers from [reader]; the body (if any) is read by
   the caller — shared between the blocking and incremental paths *)
let request_head_of_reader reader =
  match Reader.read_line reader with
  | None -> Error `Eof
  | Some line -> (
    match String.split_on_char ' ' line with
    | [ meth; target; version ]
      when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
      let ( let* ) = Result.bind in
      let* headers = parse_headers reader in
      Ok
        {
          meth = String.uppercase_ascii meth;
          target;
          path = split_target target;
          version;
          headers;
          body = "";
        })
    | _ -> Error (`Bad_request "malformed request line"))

let response_head_of_reader reader =
  match Reader.read_line reader with
  | None -> Error `Eof
  | Some line -> (
    let parts = String.split_on_char ' ' line in
    match parts with
    | version :: code :: rest
      when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
      match int_of_string_opt code with
      | None -> Error (`Bad_request "malformed status line")
      | Some status ->
        let ( let* ) = Result.bind in
        let* headers = parse_headers reader in
        Ok
          {
            status;
            reason = String.concat " " rest;
            resp_headers = headers;
            resp_body = "";
          })
    | _ -> Error (`Bad_request "malformed status line"))

let read_request reader =
  guard_io @@ fun () ->
  let ( let* ) = Result.bind in
  let* head = request_head_of_reader reader in
  let* body = read_body reader head.headers in
  Ok { head with body }

let read_response reader =
  guard_io @@ fun () ->
  let ( let* ) = Result.bind in
  let* head = response_head_of_reader reader in
  let* body = read_body reader head.resp_headers in
  Ok { head with resp_body = body }

(* the incremental entry points: a complete head block (everything up
   to and including the blank line) parsed in one go, body left to the
   state machine *)
let parse_request_head s =
  guard_io @@ fun () -> request_head_of_reader (Reader.of_string s)

let parse_response_head s =
  guard_io @@ fun () -> response_head_of_reader (Reader.of_string s)

let keep_alive req =
  match (req.version, header "connection" req.headers) with
  | _, Some c when String.lowercase_ascii c = "close" -> false
  | "HTTP/1.0", Some c -> String.lowercase_ascii c = "keep-alive"
  | "HTTP/1.0", None -> false
  | _ -> true

let reason_phrase = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let has_header name headers =
  List.exists (fun (k, _) -> String.lowercase_ascii k = name) headers

let render_response ?(headers = []) ~keep_alive ~status ~body buf =
  Printf.ksprintf (Buffer.add_string buf) "HTTP/1.1 %d %s\r\n" status
    (reason_phrase status);
  if not (has_header "content-type" headers) then
    Buffer.add_string buf "Content-Type: application/json\r\n";
  List.iter
    (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) "%s: %s\r\n" k v)
    headers;
  Printf.ksprintf (Buffer.add_string buf) "Content-Length: %d\r\n"
    (String.length body);
  Printf.ksprintf (Buffer.add_string buf) "Connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body

let write_response ?headers ~keep_alive ~status ~body fd =
  let buf = Buffer.create (256 + String.length body) in
  render_response ?headers ~keep_alive ~status ~body buf;
  write_all fd (Buffer.contents buf)

let write_request ?(headers = []) ~meth ~target ~body fd =
  let buf = Buffer.create (256 + String.length body) in
  Printf.ksprintf (Buffer.add_string buf) "%s %s HTTP/1.1\r\n" meth target;
  if body <> "" && not (has_header "content-type" headers) then
    Buffer.add_string buf "Content-Type: application/json\r\n";
  List.iter
    (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) "%s: %s\r\n" k v)
    headers;
  Printf.ksprintf (Buffer.add_string buf) "Content-Length: %d\r\n"
    (String.length body);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)
