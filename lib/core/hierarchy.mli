(** The full hierarchical flow of the paper's Figure 4:

    1. circuit-level NSGA-II over the VCO sizing (→ Figure 7 front);
    2. Monte-Carlo variation modelling of every front design (→ Table 1);
    3. combined performance+variation table model (→ Listings 1/2);
    4. system-level NSGA-II over the PLL using the model (→ Table 2);
    5. design selection, bottom-up verification (parameter recovery +
       transistor-level re-simulation) and yield confirmation (→ §4.5 /
       Figure 8).

    [run] executes the whole flow deterministically from a seed;
    [ablation] re-runs step 4–5 with the variation model ignored during
    optimisation (the method of the paper's reference [10]) for the
    improvement comparison.

    {2 Run lifecycle}

    With [checkpoint_every = Some n] the flow snapshots its state into
    [model_dir ^ "/run.snapshot"] at every phase boundary and every [n]
    GA generations / MC samples, using atomic tmp-file+rename writes.
    With [resume = true] a matching snapshot (same format version and
    config fingerprint) restarts the flow from the last completed
    boundary; a missing, corrupt or mismatched snapshot degrades to a
    loudly-warned cold start.  An interrupted-then-resumed run produces
    byte-identical artefacts to an uninterrupted one. *)

type scale = {
  vco_population : int;
  vco_generations : int;
  mc_samples : int;       (** per Pareto point *)
  front_max : int;        (** Pareto points kept for MC (cost bound) *)
  pll_population : int;
  pll_generations : int;
  yield_samples : int;
}

val paper_scale : scale
(** The paper's §4 settings: 100×30 circuit GA, 100 MC samples/point,
    full front, 60×20 system GA, 500 yield samples. *)

val bench_scale : scale
(** Reduced workload for the few-minute bench harness: 24×10 circuit GA,
    20 MC samples over ≤ 10 points, 24×8 system GA, 200 yield samples.
    Every code path is identical; only loop counts differ. *)

val tiny_scale : scale
(** Smoke-test workload (seconds): 12×4 circuit GA, 4 MC samples over
    ≤ 4 points, 12×3 system GA, 30 yield samples.  Pair with
    {!tiny_spec} — the default spec's band is too wide for a GA this
    small to cover reliably. *)

val tiny_spec : Spec.t
(** A narrowed 200–280 MHz band spec sized for {!tiny_scale}; used by
    the checkpoint tests and the CI interrupt-resume smoke job. *)

val scale_of_env : unit -> scale
(** [paper_scale] when {!Repro_engine.Config.full} reports that
    HIEROPT_FULL is set, else [bench_scale]. *)

(** {2 Pluggable circuit front end}

    By default the flow sizes the built-in
    {!Repro_circuit.Topologies.ring_vco}.  A [circuit] record swaps in
    any netlist factory over the same 7-float sizing vector — in
    practice an elaborated [.sp] template from [repro_netlist] — while
    keeping every downstream phase (measurement, Monte-Carlo,
    verification, distributed evaluation) unchanged. *)

type circuit = {
  tag : string;
      (** content fingerprint of the template; the only part of the
          record entering {!config_salt} and snapshot fingerprints (the
          closure is never hashed).  Must be non-empty. *)
  bounds : (float * float) array;
      (** design box of the 7 ranged parameters, declaration order *)
  build : Repro_circuit.Topologies.vco_params -> Repro_circuit.Netlist.t;
      (** sizing vector to measurable netlist; must be pure and
          deterministic *)
}

type config = {
  seed : int;
  scale : scale;
  spec : Spec.t;
  measure : Repro_spice.Vco_measure.options;
  process : Repro_circuit.Process.spec;
  use_variation : bool;
  model_dir : string option;  (** where to save the .tbl model files *)
  checkpoint_every : int option;
      (** flush a snapshot every N generations / MC chunks; [None]
          disables checkpointing *)
  resume : bool;  (** restart from [model_dir]'s snapshot if compatible *)
  circuit : circuit option;
      (** custom circuit front end; [None] is the built-in ring VCO *)
  optimiser : string;
      (** portfolio member running both GA levels: one of
          {!Repro_moo.Optimiser.names} (["nsga2"], ["spea2"], ["de"],
          ["mopso"]).  Salted into cache keys and snapshot
          fingerprints. *)
  surrogate : bool;
      (** surrogate pre-screening ({!Repro_moo.Surrogate}): skip exact
          evaluation of candidates predicted dominated by the current
          front.  Also salted into cache keys and fingerprints. *)
}

val default_config : ?scale:scale -> unit -> config

val make_config :
  ?seed:int ->
  ?scale:scale ->
  ?spec:Spec.t ->
  ?measure:Repro_spice.Vco_measure.options ->
  ?process:Repro_circuit.Process.spec ->
  ?use_variation:bool ->
  ?model_dir:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?circuit:circuit ->
  ?optimiser:string ->
  ?surrogate:bool ->
  unit ->
  config
(** Validating constructor — prefer this over record literals.
    @raise Invalid_argument when a count is non-positive, a population
    is odd or < 4, [front_max < 2], [checkpoint_every < 1], the spec is
    inconsistent (see {!Spec.validate}), resume/checkpointing is
    requested without a [model_dir] to hold the snapshot, [circuit]
    has an empty tag, the wrong number of bounds, or an empty bound, or
    [optimiser] is not a registered portfolio member. *)

exception Degenerate_front of { stage : string; found : int; minimum : int }
(** The named Pareto front has too few designs to build a model from. *)

val config_salt : config -> string
(** Fingerprint of the configuration captured by the objective closures
    (spec, measurement, process, variation flag, circuit tag, solver
    mode) — the eval-cache keyspace salt.  A remote eval-worker must be started
    from a config with the same salt to serve a run; the distributed
    protocol carries it on every request so mismatched set-ups are
    rejected instead of silently poisoning caches. *)

(** {2 Distributed evaluation}

    The flow itself never speaks HTTP; a coordinator (the [repro_dist]
    library) injects remote evaluation through this record.  Every hook
    must be bit-identical to its local counterpart — worker topology,
    like the [-j] worker count, can never influence artefacts. *)

type remote = {
  topology : string list;
      (** worker endpoints, recorded as run-journal metadata *)
  remote_evaluator :
    salt:string -> cache:Repro_engine.Cache.t -> Repro_moo.Problem.evaluator;
      (** GA population evaluator; [salt] is {!config_salt}, [cache] the
          run's persisted eval cache (consulted before dispatch) *)
  remote_mc : salt:string -> Variation_model.mc_bulk;
      (** Monte-Carlo sample-batch evaluator for the variation phase *)
}

(** {2 Observability}

    When [model_dir] is set, a run appends structured events to
    [model_dir/run.journal] ({!Repro_obs.Journal}): run start/finish
    with the config fingerprint, phase boundaries with durations,
    per-generation GA convergence entries (front size, spread and the
    exact {!Repro_moo.Hypervolume} indicator against the fixed
    reference points below), checkpoint flush/resume events and every
    {!Repro_engine.Telemetry.warn}.  Phases, GA generations, evaluation
    batches and MC batches additionally emit {!Repro_obs.Trace} spans
    when tracing is enabled (the CLI's [--trace]).  All of it is
    zero-perturbation: artefacts are byte-identical with observability
    on or off. *)

val circuit_hv_reference : float array
(** Fixed reference point for the circuit-level hypervolume, over the
    paper's three headline objectives (jitter, current, -gain). *)

val circuit_hv_dims : int array
(** The objective indices of the VCO problem those references cover. *)

val system_hv_reference : float array
(** Fixed reference point for the system-level (PLL) hypervolume. *)

type phase = Circuit_ga | Variation | Model | System_ga

val phase_name : phase -> string
(** ["circuit-ga"], ["variation"], ["model"], ["system-ga"]. *)

val phase_of_string : string -> phase option

type verification = {
  requested : Repro_spice.Vco_measure.performance;
      (** the performance point handed down from system level *)
  mapped : Repro_circuit.Topologies.vco_params;
      (** transistor dimensions recovered through the p1..p7 tables *)
  measured : (Repro_spice.Vco_measure.performance, string) result;
      (** transistor-level re-simulation of the mapped sizing *)
}

type result = {
  front : Vco_problem.sized_design array;      (** step 1 *)
  entries : Variation_model.entry array;       (** step 2 *)
  model : Perf_table.t;                        (** step 3 *)
  rows : Pll_problem.table2_row array;         (** step 4 *)
  selected : Pll_problem.table2_row option;    (** step 5 *)
  verification : verification option;
  yield : Repro_util.Stats.yield_estimate option;
  pll_config : Pll_problem.config;
}

val run :
  ?progress:(string -> unit) ->
  ?remote:remote ->
  ?interrupt_after:phase ->
  config ->
  result
(** Evaluations run through the {!Repro_engine} subsystem: NSGA-II
    generations, Monte-Carlo trials and yield samples are spread over
    the shared domain pool ([-j] / HIEROPT_JOBS) and memoised in a
    content-addressed cache; when [model_dir] is set the cache is
    loaded from / saved to [model_dir ^ "/eval.cache"] next to the
    [.tbl] artefacts.  Results are bit-identical for any worker count
    and with a cold or warm cache.  Engine telemetry is emitted through
    [progress].

    [remote] routes GA evaluation batches and Monte-Carlo sample
    batches through a distributed coordinator (see {!remote}); because
    every hook is bit-identical to its local counterpart, artefacts —
    and snapshot compatibility — are unchanged for any topology.

    [interrupt_after] is a testing hook: flush the snapshot and raise
    {!Repro_engine.Checkpoint.Interrupted} once the given phase
    completes, exactly as an external interrupt at that boundary would.
    The same exception is raised mid-phase when
    {!Repro_engine.Checkpoint.request_interrupt} fires (e.g. from the
    CLI's SIGINT handler) — in both cases the eval cache is saved
    before re-raising, so the resumed run starts warm.
    @raise Degenerate_front when the circuit-level front has fewer than
    2 designs (no oscillating design found — should not happen at the
    default scales). *)

val run_system_level :
  ?progress:(string -> unit) ->
  ?remote:remote ->
  ?pll_query:Pll_problem.model_query ->
  config ->
  model:Perf_table.t ->
  result
(** Steps 4–5 only, over an existing model — used by the ablation bench
    to compare variation-aware vs nominal-only optimisation without
    re-running the expensive circuit level.  Checkpoints (if enabled)
    go to [model_dir ^ "/system.snapshot"], fingerprinted by config
    {e and} the input model.

    [pll_query] routes every table-model interpolation through an
    external oracle (e.g. [Repro_serve.Remote] against a running model
    server) instead of [model]; a faithful oracle yields bit-identical
    results, so it is excluded from the snapshot fingerprint just like
    the worker count. *)

val verify_design :
  config -> model:Perf_table.t -> Pll_problem.table2_row -> verification
(** Bottom-up verification of a chosen row (re-simulated through the
    config's circuit front end). *)

val circuit_problem : config -> Repro_moo.Problem.t
(** The circuit-level optimisation problem the flow runs: the built-in
    {!Vco_problem.problem} with [circuit = None], otherwise the same
    problem with the circuit's builder and bounds.  Exposed so a
    distributed eval-worker builds the {e same} problem (hence
    bit-identical evaluations) from its own copy of the config. *)

val circuit_netlist :
  config ->
  Repro_circuit.Topologies.vco_params ->
  Repro_circuit.Netlist.t
(** The netlist the flow measures at a sizing: built-in ring VCO (at
    the config's measurement stage count / supplies) or the custom
    circuit's build — the Monte-Carlo seam eval-workers must match. *)

val pll_config_of :
  ?pll_query:Pll_problem.model_query ->
  config ->
  Perf_table.t ->
  Pll_problem.config
(** The system-level problem configuration {!run_system_level} derives
    from a flow config and a model.  Exposed so a distributed
    eval-worker can build the {e same} PLL problem (hence bit-identical
    evaluations) from its own copy of the config and model. *)
