module Prng = Repro_util.Prng

type options = {
  population : int;
  archive : int;
  generations : int;
  crossover_prob : float;
  eta_crossover : float;
  mutation_prob : float;
  eta_mutation : float;
}

let default_options =
  {
    population = 100;
    archive = 100;
    generations = 30;
    crossover_prob = 0.9;
    eta_crossover = 15.0;
    mutation_prob = 0.0;
    eta_mutation = 20.0;
  }

(* Euclidean distance in objective space (the paper's density metric);
   infeasible individuals use their violation as a 1-D coordinate so they
   never cluster with feasible ones *)
let objective_distance (a : Problem.evaluation) (b : Problem.evaluation) =
  let da =
    if Problem.feasible a then a.Problem.objectives
    else [| 1e9 +. a.Problem.constraint_violation |]
  and db =
    if Problem.feasible b then b.Problem.objectives
    else [| 1e9 +. b.Problem.constraint_violation |]
  in
  if Array.length da <> Array.length db then 1e12
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = x -. db.(i) in
        acc := !acc +. (d *. d))
      da;
    sqrt !acc
  end

(* SPEA2 fitness: raw dominated-strength plus kNN density *)
let fitness (pool : Nsga2.individual array) =
  let n = Array.length pool in
  let evals = Array.map (fun ind -> ind.Nsga2.evaluation) pool in
  let strength = Array.make n 0 in
  let dominators = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match Pareto.compare_dominance evals.(i) evals.(j) with
        | Pareto.Dominates ->
          strength.(i) <- strength.(i) + 1;
          dominators.(j) <- i :: dominators.(j)
        | Pareto.Dominated | Pareto.Incomparable -> ()
    done
  done;
  let k = int_of_float (sqrt (float_of_int n)) in
  Array.init n (fun i ->
      let raw =
        List.fold_left (fun acc j -> acc + strength.(j)) 0 dominators.(i)
      in
      let dists =
        Array.init n (fun j ->
            if i = j then infinity else objective_distance evals.(i) evals.(j))
      in
      Array.sort compare dists;
      let sigma_k = dists.(Stdlib.min k (n - 2)) in
      let density = 1.0 /. (sigma_k +. 2.0) in
      float_of_int raw +. density)

(* archive truncation: repeatedly drop the member with the smallest
   nearest-neighbour distance (ties broken by the next distance) *)
let truncate target (members : Nsga2.individual array) =
  let members = ref (Array.to_list members) in
  while List.length !members > target do
    let arr = Array.of_list !members in
    let n = Array.length arr in
    let dist_profile i =
      let d =
        Array.init n (fun j ->
            if i = j then infinity
            else
              objective_distance arr.(i).Nsga2.evaluation
                arr.(j).Nsga2.evaluation)
      in
      Array.sort compare d;
      d
    in
    let profiles = Array.init n dist_profile in
    let worst = ref 0 in
    for i = 1 to n - 1 do
      (* lexicographic comparison of distance profiles: smaller = denser *)
      if compare profiles.(i) profiles.(!worst) < 0 then worst := i
    done;
    members := List.filteri (fun i _ -> i <> !worst) !members
  done;
  Array.of_list !members

let environmental_selection target pool fit =
  let n = Array.length pool in
  let nondominated =
    List.filter (fun i -> fit.(i) < 1.0) (List.init n Fun.id)
  in
  let chosen =
    if List.length nondominated > target then
      truncate target
        (Array.of_list (List.map (fun i -> pool.(i)) nondominated))
    else begin
      (* fill with the best dominated individuals by fitness *)
      let order = Array.init n Fun.id in
      Array.sort (fun a b -> compare fit.(a) fit.(b)) order;
      Array.map (fun i -> pool.(i)) (Array.sub order 0 (Stdlib.min target n))
    end
  in
  chosen

let binary_tournament prng fit n =
  let a = Prng.int prng n and b = Prng.int prng n in
  if fit.(a) <= fit.(b) then a else b

(* ---- step-wise API ------------------------------------------------ *)

type state = {
  options : options;
  prng : Prng.t;
  mutable generation : int;
  mutable population : Nsga2.individual array;
  mutable archive : Nsga2.individual array;
}

let generation st = st.generation
let archive st = st.archive

let eval_batch evaluator problem xs =
  let evs = Problem.evaluate_all ~evaluator problem xs in
  Array.map2 (fun x evaluation -> { Nsga2.x; evaluation }) xs evs

let init ?(options = default_options) ?(evaluator = Problem.serial_evaluator)
    problem prng =
  if options.population < 4 || options.archive < 2 then
    invalid_arg "Spea2.optimise: population >= 4 and archive >= 2 required";
  let initial = Array.make options.population [||] in
  for i = 0 to options.population - 1 do
    initial.(i) <- Problem.random_point problem prng
  done;
  { options; prng; generation = 0;
    population = eval_batch evaluator problem initial; archive = [||] }

let step ?(evaluator = Problem.serial_evaluator) problem st =
  Repro_obs.Trace.span "spea2.generation"
    ~args:
      [
        ("problem", problem.Problem.name);
        ("generation", string_of_int (st.generation + 1));
      ]
  @@ fun () ->
  let options = st.options and prng = st.prng in
  let pm =
    if options.mutation_prob > 0.0 then options.mutation_prob
    else 1.0 /. float_of_int (Problem.n_vars problem)
  in
  let pool = Array.append st.population st.archive in
  let fit = fitness pool in
  st.archive <- environmental_selection options.archive pool fit;
  (* mating selection happens on the (already truncated) archive *)
  let arch_fit = fitness st.archive in
  let na = Array.length st.archive in
  let children = ref [] in
  for _ = 1 to (options.population + 1) / 2 do
    let p1 = st.archive.(binary_tournament prng arch_fit na).Nsga2.x in
    let p2 = st.archive.(binary_tournament prng arch_fit na).Nsga2.x in
    let c1, c2 =
      Variation.crossover_pair prng ~bounds:problem.Problem.bounds
        ~crossover_prob:options.crossover_prob
        ~eta_crossover:options.eta_crossover p1 p2
    in
    Variation.mutate_in_place prng ~bounds:problem.Problem.bounds
      ~mutation_prob:pm ~eta_mutation:options.eta_mutation c1;
    Variation.mutate_in_place prng ~bounds:problem.Problem.bounds
      ~mutation_prob:pm ~eta_mutation:options.eta_mutation c2;
    children := c1 :: c2 :: !children
  done;
  let offspring = eval_batch evaluator problem (Array.of_list !children) in
  st.population <-
    Array.of_list
      (List.filteri
         (fun i _ -> i < options.population)
         (Array.to_list offspring));
  st.generation <- st.generation + 1

let optimise ?options ?evaluator ?on_generation problem prng =
  let st = init ?options ?evaluator problem prng in
  (match on_generation with Some f -> f 0 st.population | None -> ());
  while st.generation < st.options.generations do
    step ?evaluator problem st;
    match on_generation with
    | Some f -> f st.generation st.archive
    | None -> ()
  done;
  st.archive

(* ---- state serialisation ------------------------------------------ *)

module Snapshot = Repro_engine.Snapshot

let encode_individual (ind : Nsga2.individual) =
  Array.concat
    [ ind.Nsga2.x;
      [| ind.Nsga2.evaluation.Problem.constraint_violation |];
      ind.Nsga2.evaluation.Problem.objectives ]

let decode_individual ~n_vars row =
  let len = Array.length row in
  if len < n_vars + 1 then None
  else
    Some
      {
        Nsga2.x = Array.sub row 0 n_vars;
        evaluation =
          {
            Problem.constraint_violation = row.(n_vars);
            objectives = Array.sub row (n_vars + 1) (len - n_vars - 1);
          };
      }

let save_state st snap ~key =
  Snapshot.set_int snap (key ^ ".generation") st.generation;
  Snapshot.set_bits snap (key ^ ".prng") (Prng.to_bits st.prng);
  Snapshot.set_rows snap (key ^ ".population")
    (Array.map encode_individual st.population);
  Snapshot.set_rows snap (key ^ ".archive")
    (Array.map encode_individual st.archive)

let clear_state snap ~key =
  Snapshot.remove snap (key ^ ".generation");
  Snapshot.remove snap (key ^ ".prng");
  Snapshot.remove snap (key ^ ".population");
  Snapshot.remove snap (key ^ ".archive")

let restore_state ~options problem snap ~key =
  match
    ( Snapshot.get_int snap (key ^ ".generation"),
      Snapshot.get_bits snap (key ^ ".prng"),
      Snapshot.get_rows snap (key ^ ".population"),
      Snapshot.get_rows snap (key ^ ".archive") )
  with
  | Some generation, Some bits, Some pop_rows, Some arch_rows -> (
    match Prng.of_bits bits with
    | None -> None
    | Some prng ->
      let n_vars = Problem.n_vars problem in
      let pop = Array.map (decode_individual ~n_vars) pop_rows in
      let arch = Array.map (decode_individual ~n_vars) arch_rows in
      if
        generation < 0
        || generation > options.generations
        || Array.length pop <> options.population
        || Array.exists Option.is_none pop
        || Array.exists Option.is_none arch
      then None
      else
        Some
          { options; prng; generation;
            population = Array.map Option.get pop;
            archive = Array.map Option.get arch })
  | _ -> None
