(** The sharding coordinator: the dispatching half of the farm.

    A coordinator owns one HTTP client per worker endpoint and turns a
    batch of work (a GA population's cache misses, a design's
    Monte-Carlo sample range) into chunks drained from a shared queue
    by one dispatch thread per live worker — natural work-stealing: a
    fast worker takes more chunks, a slow one fewer, and a {e dead}
    one's chunk is requeued for the survivors (after the client's
    transient-failure retries), so a failure mid-generation costs only
    the lost chunk's re-evaluation.  Chunks no worker can take are
    evaluated locally; the dispatch always completes.

    Determinism: inputs are pre-split by index (decision vectors or
    {!Repro_util.Prng} streams) and results are written back by index,
    so artefacts are byte-identical for any worker count, any chunk
    interleaving, and any mid-run failure pattern — local-only, one
    worker and N workers all agree.

    After each GA batch the freshly computed cache entries are pushed
    to every live worker ([PUT /cache], best-effort), so workers warm
    each other across generations.

    Telemetry: [dist.remote_points] / [dist.local_points] /
    [dist.remote_mc_trials] / [dist.local_mc_trials] /
    [dist.worker_deaths] / [dist.reassigned_chunks]. *)

type t

val create :
  ?timeout:float ->      (* per-call socket timeout, default 120 s *)
  ?retries:int ->        (* transient-failure retries, default 2 *)
  ?model_hash:string ->  (* expected table-model fingerprint, for PLL *)
  salt:string ->
  endpoints:string list ->
  unit ->
  (t, string) result
(** Probe [endpoints] ([HOST:PORT] specs) and build the coordinator.
    An unreachable worker is marked dead with a warning (the run
    proceeds without it); a worker answering with a {e different
    config salt} — or something that is not an eval worker — is a
    configuration error and fails creation.  [model_hash]
    ({!Protocol.model_fingerprint} of the run's table model) enables
    distribution of system-level (PLL) shards to workers advertising
    the same model; without it those shards stay local. *)

val endpoints : t -> string list
val live_workers : t -> int

val eval_bulk :
  t ->
  salt:string ->
  Repro_moo.Problem.t ->
  float array array ->
  Repro_moo.Problem.evaluation array
(** Distribute one batch of decision-vector evaluations (used beneath
    {!Repro_moo.Problem.cached_evaluator} — callers normally go through
    {!remote}). *)

val mc_bulk :
  t ->
  salt:string ->
  params:float array ->
  local:
    (Repro_util.Prng.t array ->
    (Repro_spice.Vco_measure.performance, string) result array) ->
  Repro_util.Prng.t array ->
  (Repro_spice.Vco_measure.performance, string) result array
(** Distribute one Monte-Carlo sample batch (the
    {!Hieropt.Variation_model.mc_bulk} shape). *)

val remote : t -> Hieropt.Hierarchy.remote
(** The hook record for {!Hieropt.Hierarchy.run} /
    {!Hieropt.Hierarchy.run_system_level}. *)
