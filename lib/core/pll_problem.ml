module B = Repro_behave
module P = Repro_moo.Problem

type table2_row = {
  kv : float;
  kv_min : float;
  kv_max : float;
  iv : float;
  iv_min : float;
  iv_max : float;
  c1 : float;
  c2 : float;
  r1 : float;
  lock : float;
  lock_min : float;
  lock_max : float;
  jit : float;
  jit_min : float;
  jit_max : float;
  curr : float;
  curr_min : float;
  curr_max : float;
}

let pp_row ppf r =
  Format.fprintf ppf
    "Kv=%.0f[%.0f,%.0f]MHz/V Iv=%.2f[%.2f,%.2f]mA C1=%s C2=%s R1=%s | Lt=%.2fus Jit=%.2f[%.2f,%.2f]ps I=%.1f[%.1f,%.1f]mA"
    (r.kv /. 1e6) (r.kv_min /. 1e6) (r.kv_max /. 1e6) (r.iv *. 1e3)
    (r.iv_min *. 1e3) (r.iv_max *. 1e3)
    (Repro_util.Si.format r.c1)
    (Repro_util.Si.format r.c2)
    (Repro_util.Si.format r.r1)
    (r.lock *. 1e6) (r.jit *. 1e12) (r.jit_min *. 1e12) (r.jit_max *. 1e12)
    (r.curr *. 1e3) (r.curr_min *. 1e3) (r.curr_max *. 1e3)

type model_query = (float * float) array -> Perf_table.point_eval array

type config = {
  spec : Spec.t;
  model : Perf_table.t;
  icp : float;
  overhead_current : float;
  use_variation : bool;
  c1_bounds : float * float;
  c2_bounds : float * float;
  r1_bounds : float * float;
  query : model_query option;
}

let default_config ~model =
  {
    spec = Spec.default;
    model;
    icp = 200e-6;
    overhead_current = 8e-3;
    use_variation = true;
    c1_bounds = (1e-12, 12e-12);
    c2_bounds = (0.1e-12, 1.2e-12);
    r1_bounds = (1e3, 20e3);
    query = None;
  }

let run_query cfg points =
  match cfg.query with
  | None -> Perf_table.eval_points cfg.model points
  | Some q ->
    let r = q points in
    if Array.length r <> Array.length points then
      invalid_arg "Pll_problem: model_query returned a wrong-sized batch";
    r

let objective_names = [| "lock_time"; "jitter_sum"; "current" |]

(* one PLL variant: a (kvco, ivco) operating point with its interpolated
   jitter and band edges, taken from an already-computed model query *)
let variant_of_eval cfg (pe : Perf_table.point_eval) ~kvco ~ivco ~c1 ~c2 ~r1 =
  let jvco, _, _ = pe.Perf_table.q_jvco in
  let fmin = pe.Perf_table.q_fmin in
  let fmax = pe.Perf_table.q_fmax in
  let f0 = 0.5 *. (fmin +. fmax) in
  let vco =
    {
      B.Vco_model.f0;
      v0 = 0.9;
      kvco;
      fmin = Float.min fmin (0.9 *. cfg.spec.Spec.f_target);
      fmax = Float.max fmax (1.1 *. cfg.spec.Spec.f_target);
      jitter = jvco;
    }
  in
  ( {
      B.Pll.fref = cfg.spec.Spec.fref;
      n_div = cfg.spec.Spec.n_div;
      cp = B.Charge_pump.ideal cfg.icp;
      filter = { B.Loop_filter.c1; c2; r1 };
      vco;
      ivco;
      overhead_current = cfg.overhead_current;
      vctl_init = 0.2;
    },
    jvco,
    fmin,
    fmax )

let variant_config cfg ~kvco ~ivco ~c1 ~c2 ~r1 =
  let pe = (run_query cfg [| (kvco, ivco) |]).(0) in
  variant_of_eval cfg pe ~kvco ~ivco ~c1 ~c2 ~r1

(* Full nominal/min/max evaluation, also returning the nominal model
   query so callers (the GA's constraint check) reuse its band edges
   instead of re-querying.  Two oracle calls per candidate: the nominal
   point, then the two worst-case variants as one batch — the shape the
   served batch endpoint is sized for. *)
let evaluate_point_full cfg ~kvco ~ivco ~c1 ~c2 ~r1 =
  let pe = (run_query cfg [| (kvco, ivco) |]).(0) in
  let _, kv_min, kv_max = pe.Perf_table.q_kvco in
  let _, iv_min, iv_max = pe.Perf_table.q_ivco in
  let variants = run_query cfg [| (kv_min, iv_min); (kv_max, iv_max) |] in
  let eval_variant pe ~kvco ~ivco =
    let pll_cfg, _, _, _ = variant_of_eval cfg pe ~kvco ~ivco ~c1 ~c2 ~r1 in
    B.Pll.evaluate pll_cfg
  in
  let ( let* ) = Result.bind in
  let* nom = eval_variant pe ~kvco ~ivco in
  let* low = eval_variant variants.(0) ~kvco:kv_min ~ivco:iv_min in
  let* high = eval_variant variants.(1) ~kvco:kv_max ~ivco:iv_max in
  let pick f = (f nom, f low, f high) in
  let minmax3 (a, b, c) = (Float.min a (Float.min b c), Float.max a (Float.max b c)) in
  let locks = pick (fun p -> p.B.Pll.lock_time) in
  let jits = pick (fun p -> p.B.Pll.jitter_sum) in
  let currs = pick (fun p -> p.B.Pll.current) in
  let lock_min, lock_max = minmax3 locks in
  let jit_min, jit_max = minmax3 jits in
  let curr_min, curr_max = minmax3 currs in
  let (lock, _, _), (jit, _, _), (curr, _, _) = (locks, jits, currs) in
  Ok
    ( {
        kv = kvco;
        kv_min;
        kv_max;
        iv = ivco;
        iv_min;
        iv_max;
        c1;
        c2;
        r1;
        lock;
        lock_min;
        lock_max;
        jit;
        jit_min;
        jit_max;
        curr;
        curr_min;
        curr_max;
      },
      pe )

let evaluate_point cfg ~kvco ~ivco ~c1 ~c2 ~r1 =
  Result.map fst (evaluate_point_full cfg ~kvco ~ivco ~c1 ~c2 ~r1)

(* spec-violation amount for a row, in normalised units; [pe] is the
   nominal-point model query the row was built from *)
let violation cfg row (pe : Perf_table.point_eval) =
  let s = cfg.spec in
  let fmin = pe.Perf_table.q_fmin in
  let fmax = pe.Perf_table.q_fmax in
  let lock_limit = if cfg.use_variation then row.lock_max else row.lock in
  let curr_limit = if cfg.use_variation then row.curr_max else row.curr in
  let over v limit = Float.max 0.0 ((v -. limit) /. limit) in
  over lock_limit s.Spec.lock_time_max
  +. over curr_limit s.Spec.current_max
  +. over fmin s.Spec.f_out_low (* band must reach down below f_out_low *)
  +. over s.Spec.f_out_high fmax (* ... and up above f_out_high *)

let bounds cfg =
  let kvr = Perf_table.kvco_range cfg.model in
  let ivr = Perf_table.ivco_range cfg.model in
  [| kvr; ivr; cfg.c1_bounds; cfg.c2_bounds; cfg.r1_bounds |]

(* Graded violation for un-evaluable candidates: constraint domination
   needs a slope toward feasibility, so unstable loops are scored by how
   far the phase margin is from healthy (an all-flat penalty would leave
   the GA blind when the stable corner of the box is small). *)
let infeasibility_grade cfg ~kvco ~c1 ~c2 ~r1 =
  let loop =
    {
      Repro_behave.Pll_linear.kvco;
      icp = cfg.icp;
      n_div = cfg.spec.Spec.n_div;
      filter = { Repro_behave.Loop_filter.c1; c2; r1 };
    }
  in
  match Repro_behave.Pll_linear.analyse loop with
  | None -> 30.0
  | Some a ->
    let fc = a.Repro_behave.Pll_linear.unity_freq in
    let gardner = cfg.spec.Spec.fref /. 8.0 in
    if not a.Repro_behave.Pll_linear.stable then begin
      let pm = a.Repro_behave.Pll_linear.phase_margin_deg in
      10.0 +. Repro_util.Floatx.clamp ~lo:0.0 ~hi:10.0 ((30.0 -. pm) /. 5.0)
    end
    else if fc > gardner then
      (* bandwidth above the Gardner limit: slope back toward fref/8 *)
      8.0 +. Repro_util.Floatx.clamp ~lo:0.0 ~hi:5.0 (fc /. gardner -. 1.0)
    else 6.0 (* linearly healthy yet unlocked (e.g. band clamping) *)

let problem cfg =
  Spec.validate cfg.spec;
  let evaluate x =
    match
      evaluate_point_full cfg ~kvco:x.(0) ~ivco:x.(1) ~c1:x.(2) ~c2:x.(3)
        ~r1:x.(4)
    with
    | Ok (row, pe) ->
      {
        P.objectives = [| row.lock; row.jit; row.curr |];
        constraint_violation = violation cfg row pe;
      }
    | Error _ ->
      {
        P.objectives = Array.make 3 infinity;
        constraint_violation =
          infeasibility_grade cfg ~kvco:x.(0) ~c1:x.(2) ~c2:x.(3) ~r1:x.(4);
      }
  in
  P.create ~name:"pll-system" ~bounds:(bounds cfg)
    ~objective_names evaluate

let row_of_individual cfg (ind : Repro_moo.Nsga2.individual) =
  let x = ind.Repro_moo.Nsga2.x in
  match
    evaluate_point cfg ~kvco:x.(0) ~ivco:x.(1) ~c1:x.(2) ~c2:x.(3) ~r1:x.(4)
  with
  | Ok row -> Some row
  | Error _ -> None

(* Design selection (the paper's "shaded row").  Standard DFY practice:
   prefer the lowest-jitter row that clears the spec with comfortable
   margin (60% of the lock budget, 95% of the current budget) and fall
   back to bare feasibility.  With [use_variation] the screening uses the
   worst-case variant — the paper's improvement; without it (the method
   of reference [10]) only nominal values are visible to the selector,
   which is what costs yield in the ablation. *)
let select_design cfg rows =
  let s = cfg.spec in
  let lock_of row = if cfg.use_variation then row.lock_max else row.lock in
  let curr_of row = if cfg.use_variation then row.curr_max else row.curr in
  let meets ~lock_frac ~curr_frac row =
    lock_of row <= lock_frac *. s.Spec.lock_time_max
    && curr_of row <= curr_frac *. s.Spec.current_max
  in
  let pick pred =
    Array.to_list rows
    |> List.filter pred
    |> List.sort (fun a b -> compare a.jit b.jit)
    |> function
    | [] -> None
    | best :: _ -> Some best
  in
  match pick (meets ~lock_frac:0.6 ~curr_frac:0.95) with
  | Some row -> Some row
  | None -> pick (meets ~lock_frac:1.0 ~curr_frac:1.0)
