(** Independent source waveforms (the SPICE DC/PULSE/PWL/SIN cards). *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) array
      (** piecewise-linear [(time, value)] points, strictly increasing
          times; constant before the first and after the last point *)
  | Sin of { offset : float; ampl : float; freq : float; phase_deg : float }

val value : t -> float -> float
(** Instantaneous value at time [t] (>= 0). *)

val dc_value : t -> float
(** Value used during DC analysis (time-0 value for transient sources). *)

val pp : Format.formatter -> t -> unit
