type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- encoding ----------------------------------------------------- *)

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let exact fmt =
      let s = Printf.sprintf fmt x in
      if float_of_string s = x then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> (
      match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" x)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (float_repr x)
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        encode buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        encode buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* ---- decoding ----------------------------------------------------- *)

exception Parse_error of string

let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail "expected %C, found %C" c got
    | None -> fail "expected %C, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail "bad hex digit %C in \\u escape" c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* UTF-8 encode one code point *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           if cp >= 0xD800 && cp <= 0xDBFF then
             (* high surrogate: a low surrogate must follow *)
             if
               !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo < 0xDC00 || lo > 0xDFFF then
                 fail "invalid low surrogate";
               add_utf8 buf
                 (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
             end
             else fail "unpaired high surrogate"
           else if cp >= 0xDC00 && cp <= 0xDFFF then
             fail "unpaired low surrogate"
           else add_utf8 buf cp
         | c -> fail "bad escape \\%C" c);
        loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_digit c = c >= '0' && c <= '9' in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when is_digit c ->
      while !pos < n && is_digit s.[!pos] do advance () done
    | _ -> fail "malformed number");
    if peek () = Some '.' then begin
      advance ();
      if not (!pos < n && is_digit s.[!pos]) then fail "malformed number";
      while !pos < n && is_digit s.[!pos] do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      if not (!pos < n && is_digit s.[!pos]) then fail "malformed number";
      while !pos < n && is_digit s.[!pos] do advance () done
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* RFC 8259 leaves duplicate object keys to the implementation;
   [member] silently takes the first, which can shadow a value that was
   meant to be read.  Consumers that must not tolerate that (the bench
   regression gate) check here. *)
let duplicate_key v =
  let rec walk path v =
    match v with
    | Null | Bool _ | Num _ | Str _ -> None
    | Arr items ->
      let rec each i = function
        | [] -> None
        | item :: rest -> (
          match walk (Printf.sprintf "%s[%d]" path i) item with
          | Some _ as hit -> hit
          | None -> each (i + 1) rest)
      in
      each 0 items
    | Obj fields ->
      let seen = Hashtbl.create (List.length fields) in
      let rec each = function
        | [] -> None
        | (k, item) :: rest ->
          let here = if path = "" then k else path ^ "." ^ k in
          if Hashtbl.mem seen k then Some here
          else begin
            Hashtbl.add seen k ();
            match walk here item with
            | Some _ as hit -> hit
            | None -> each rest
          end
      in
      each fields
  in
  walk "" v

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let get_field key v =
  match member key v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing field %S" key)

let to_float = function
  | Num x -> Ok x
  | v -> Error (Printf.sprintf "expected a number, found %s" (type_name v))

let get_float key v =
  match get_field key v with
  | Error e -> Error e
  | Ok (Num x) -> Ok x
  | Ok f ->
    Error (Printf.sprintf "field %S: expected a number, found %s" key
             (type_name f))

let get_string key v =
  match get_field key v with
  | Error e -> Error e
  | Ok (Str s) -> Ok s
  | Ok f ->
    Error (Printf.sprintf "field %S: expected a string, found %s" key
             (type_name f))

let get_list key v =
  match get_field key v with
  | Error e -> Error e
  | Ok (Arr items) -> Ok items
  | Ok f ->
    Error (Printf.sprintf "field %S: expected an array, found %s" key
             (type_name f))
