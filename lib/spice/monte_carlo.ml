module Process = Repro_circuit.Process
module Prng = Repro_util.Prng
module Stats = Repro_util.Stats

type 'a trial = Repro_circuit.Netlist.t -> ('a, string) result

type 'a run_result = {
  samples : 'a array;
  failures : int;
  seeds_used : int;
}

(* Above this failure fraction a run is considered degenerate: the
   surviving samples no longer estimate the spread of the population the
   caller asked about, so we shout instead of silently reporting a
   too-small [failures] field. *)
let default_warn_threshold = 0.5

type 'a codec = {
  encode : 'a -> float array;
  decode : float array -> 'a;
}

(* checkpoint rows: [| 1.0; payload... |] for Ok, [| 0.0 |] for Error.
   Failure messages are not persisted — only successful samples and the
   failure count feed the statistics, so a placeholder restores the run
   bit-identically. *)
let encode_outcome codec = function
  | Ok a -> Array.append [| 1.0 |] (codec.encode a)
  | Error _ -> [| 0.0 |]

let decode_outcome codec row =
  if Array.length row >= 1 && row.(0) = 1.0 then
    Ok (codec.decode (Array.sub row 1 (Array.length row - 1)))
  else if Array.length row = 1 && row.(0) = 0.0 then
    Error "failed trial (restored from checkpoint)"
  else failwith "Monte_carlo: malformed checkpoint row"

let run ?(spec = Process.default) ?pool ?(warn_threshold = default_warn_threshold)
    ?checkpoint ?bulk ~n ~prng net trial =
  if n <= 0 then invalid_arg "Monte_carlo.run: n must be positive";
  (* per-trial streams are split before dispatch, and outcomes are
     collected in trial order, so results are identical to the serial
     loop for any pool size (and for any [bulk] evaluator honouring the
     same contract) *)
  let module E = Repro_engine in
  let pool = match pool with Some p -> p | None -> E.Pool.get_default () in
  (* per-domain batches: a trial costs hundreds of milliseconds, so
     fine-grained chunks buy no load balance but defeat the per-domain
     workspace reuse that keeps sparse factors warm across samples *)
  let chunk = max 1 (n / E.Pool.size pool) in
  let sample_hist = Repro_obs.Histogram.get "mc.sample.duration" in
  let timed_trial stream =
    Repro_obs.Histogram.time sample_hist (fun () ->
        trial (Process.sample spec stream net))
  in
  let outcomes =
    Repro_obs.Trace.span "mc.batch" ~args:[ ("samples", string_of_int n) ]
    @@ fun () ->
    E.Telemetry.time "mc.wall" @@ fun () ->
    match checkpoint with
    | None -> (
      match bulk with
      | Some b -> b (Prng.split_n prng n)
      | None ->
        E.Parmap.map_seeded ~pool ~chunk ~prng
          (fun stream () -> timed_trial stream)
          (Array.make n ()))
    | Some (ck, key, codec) ->
      (* same index-stable streams as map_seeded, but evaluated in
         resumable chunks with the completed prefix persisted under
         [key] — bit-identical to the un-checkpointed path *)
      let streams = Prng.split_n prng n in
      E.Checkpoint.resumable_map ~pool ~chunk ?bulk ck ~key
        ~encode:(encode_outcome codec) ~decode:(decode_outcome codec)
        timed_trial streams
  in
  let ok = ref [] and failures = ref 0 in
  for i = n - 1 downto 0 do
    match outcomes.(i) with
    | Ok x -> ok := x :: !ok
    | Error _ -> incr failures
  done;
  E.Telemetry.incr "mc.trials" ~by:n;
  E.Telemetry.incr "mc.failures" ~by:!failures;
  let rate = float_of_int !failures /. float_of_int n in
  if rate > warn_threshold then
    E.Telemetry.warn ~key:"mc.degenerate_runs"
      "Monte-Carlo run lost %d/%d trials (%.0f%% > %.0f%% threshold) — the \
       surviving spread statistics describe only the non-degenerate corner"
      !failures n (100.0 *. rate)
      (100.0 *. warn_threshold);
  { samples = Array.of_list !ok; failures = !failures; seeds_used = n }

type spread = {
  nominal : float;
  mc_mean : float;
  mc_std : float;
  rel_spread : float;
  n_samples : int;
}

let spread_of_samples ~nominal samples =
  let mc_mean = Stats.mean samples in
  let mc_std = Stats.stddev samples in
  {
    nominal;
    mc_mean;
    mc_std;
    rel_spread = (if mc_mean = 0.0 then 0.0 else mc_std /. Float.abs mc_mean);
    n_samples = Array.length samples;
  }

let pp_spread ppf s =
  Format.fprintf ppf "nominal=%g mc=%g±%g (∆=%.2f%%, n=%d)" s.nominal s.mc_mean
    s.mc_std (100.0 *. s.rel_spread) s.n_samples
