exception Parse_error of int * string

let fail lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt

(* join '+' continuation lines, strip comments, keep line numbers *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let cleaned =
    List.mapi
      (fun i line ->
        let line =
          match String.index_opt line ';' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        (i + 1, line))
      raw
  in
  let is_comment line =
    let t = String.trim line in
    String.length t = 0 || t.[0] = '*'
  in
  let rec fold acc = function
    | [] -> List.rev acc
    | (no, line) :: rest ->
      if is_comment line then fold acc rest
      else begin
        let t = String.trim line in
        if String.length t > 0 && t.[0] = '+' then
          match acc with
          | (no0, prev) :: acc' ->
            fold ((no0, prev ^ " " ^ String.sub t 1 (String.length t - 1)) :: acc') rest
          | [] -> fail no "continuation line with no preceding card"
        else fold ((no, t) :: acc) rest
      end
  in
  fold [] cleaned

(* tokenise, treating parentheses and '=' as separators kept out of tokens *)
let tokens line =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '(' | ')' | ',' -> flush ()
      | '=' ->
        flush ();
        out := "=" :: !out
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !out

let parse_value lineno s =
  match Repro_util.Si.parse_opt s with
  | Some v -> v
  | None -> fail lineno "bad numeric value %S" s

(* split ["w"; "="; "1u"; "l"; "="; "2u"] into assoc pairs *)
let rec parse_params lineno = function
  | [] -> []
  | key :: "=" :: value :: rest ->
    (String.lowercase_ascii key, parse_value lineno value)
    :: parse_params lineno rest
  | tok :: _ -> fail lineno "expected param=value, got %S" tok

let parse_source lineno toks =
  match toks with
  | [] -> fail lineno "missing source value"
  | [ v ] -> Source.Dc (parse_value lineno v)
  | kind :: args when String.lowercase_ascii kind = "dc" -> begin
    match args with
    | [ v ] -> Source.Dc (parse_value lineno v)
    | _ -> fail lineno "DC source takes exactly one value"
  end
  | kind :: args -> begin
    let vals = List.map (parse_value lineno) args in
    match (String.lowercase_ascii kind, vals) with
    | "pulse", [ v1; v2; delay; rise; fall; width; period ] ->
      Source.Pulse { v1; v2; delay; rise; fall; width; period }
    | "pulse", [ v1; v2; delay; rise; fall; width ] ->
      Source.Pulse { v1; v2; delay; rise; fall; width; period = 0.0 }
    | "sin", [ offset; ampl; freq ] ->
      Source.Sin { offset; ampl; freq; phase_deg = 0.0 }
    | "sin", [ offset; ampl; freq; _delay; _damp; phase_deg ] ->
      Source.Sin { offset; ampl; freq; phase_deg }
    | "pwl", vals ->
      let rec pairs = function
        | [] -> []
        | t :: v :: rest -> (t, v) :: pairs rest
        | [ _ ] -> fail lineno "PWL needs an even number of values"
      in
      Source.Pwl (Array.of_list (pairs vals))
    | k, _ -> fail lineno "unsupported source %S or wrong argument count" k
  end

let builtin_models =
  [ ("nmos", Mosfet.nmos_012); ("pmos", Mosfet.pmos_012);
    ("nmos_012", Mosfet.nmos_012); ("pmos_012", Mosfet.pmos_012) ]

let apply_model_params lineno base params =
  List.fold_left
    (fun (m : Mosfet.model) (k, v) ->
      match k with
      | "vth0" -> { m with Mosfet.vth0 = v }
      | "kp" -> { m with Mosfet.kp = v }
      | "theta" -> { m with Mosfet.theta = v }
      | "n" -> { m with Mosfet.n_slope = v }
      | "clm" -> { m with Mosfet.clm = v }
      | "cox" -> { m with Mosfet.cox = v }
      | "cov" -> { m with Mosfet.cov = v }
      | "cj" -> { m with Mosfet.cj = v }
      | "avt" -> { m with Mosfet.avt = v }
      | "akp" -> { m with Mosfet.akp = v }
      | k -> fail lineno "unknown model parameter %S" k)
    base params

type subckt = { ports : string list; cards : (int * string) list }

(* split the card stream into top-level cards and .subckt bodies
   (one level of syntactic nesting is rejected explicitly: SPICE decks
   in the wild rarely nest definitions, and flattening stays simple) *)
let split_subckts lines =
  let subckts = Hashtbl.create 4 in
  let rec scan top = function
    | [] -> List.rev top
    | (lineno, line) :: rest -> begin
      match tokens line with
      | head :: args when String.lowercase_ascii head = ".subckt" -> begin
        match args with
        | [] -> fail lineno ".subckt needs a name"
        | name :: ports ->
          let rec body acc = function
            | [] -> fail lineno ".subckt %s has no matching .ends" name
            | (no, l) :: rest' -> begin
              match tokens l with
              | h :: _ when String.lowercase_ascii h = ".ends" ->
                (List.rev acc, rest')
              | h :: _ when String.lowercase_ascii h = ".subckt" ->
                fail no "nested .subckt definitions are not supported"
              | _ -> body ((no, l) :: acc) rest'
            end
          in
          let cards, rest' = body [] rest in
          Hashtbl.replace subckts (String.lowercase_ascii name) { ports; cards };
          scan top rest'
      end
      | _ -> scan ((lineno, line) :: top) rest
    end
  in
  let top = scan [] lines in
  (top, subckts)

let parse text =
  let net = Netlist.create () in
  let models = Hashtbl.create 8 in
  List.iter (fun (k, m) -> Hashtbl.replace models k m) builtin_models;
  let lookup_model lineno name =
    match Hashtbl.find_opt models (String.lowercase_ascii name) with
    | Some m -> m
    | None -> fail lineno "unknown MOS model %S" name
  in
  let top_lines, subckts = split_subckts (logical_lines text) in
  (* [ctx] carries the flattening state of the enclosing X instances:
     element names gain an "xinst." prefix, port nodes map to the outer
     connections and internal nodes gain the same prefix *)
  let rec handle ~prefix ~port_map (lineno, line) =
    let ctx_name name = prefix ^ name in
    let ctx_node node =
      let key = String.lowercase_ascii (String.trim node) in
      if key = "0" || key = "gnd" then node
      else
        match List.assoc_opt key port_map with
        | Some outer -> outer
        | None -> prefix ^ node
    in
    match tokens line with
    | [] -> ()
    | card :: rest -> begin
      let lc = String.lowercase_ascii card in
      match lc.[0] with
      | 'x' -> begin
        (* Xname n1 n2 ... subname *)
        match List.rev rest with
        | [] | [ _ ] -> fail lineno "X card needs nodes and a subcircuit name"
        | sub_name :: rev_nodes ->
          let outer_nodes = List.rev_map ctx_node rev_nodes in
          let sub =
            match Hashtbl.find_opt subckts (String.lowercase_ascii sub_name) with
            | Some s -> s
            | None -> fail lineno "unknown subcircuit %S" sub_name
          in
          if List.length sub.ports <> List.length outer_nodes then
            fail lineno "subcircuit %S expects %d ports, got %d" sub_name
              (List.length sub.ports) (List.length outer_nodes);
          let inner_map =
            List.map2
              (fun port outer -> (String.lowercase_ascii port, outer))
              sub.ports outer_nodes
          in
          List.iter
            (handle ~prefix:(ctx_name card ^ ".") ~port_map:inner_map)
            sub.cards
      end
      | '.' -> begin
        match (lc, rest) with
        | ".end", _ -> ()
        | ".model", name :: kind :: params ->
          let base =
            match String.lowercase_ascii kind with
            | "nmos" -> Mosfet.nmos_012
            | "pmos" -> Mosfet.pmos_012
            | k -> fail lineno "unknown model kind %S" k
          in
          let m = apply_model_params lineno base (parse_params lineno params) in
          Hashtbl.replace models
            (String.lowercase_ascii name)
            { m with Mosfet.name }
        | ".model", _ -> fail lineno ".model needs a name and a kind"
        | d, _ -> fail lineno "unsupported directive %S" d
      end
      | 'r' -> begin
        match rest with
        | [ n1; n2; v ] ->
          Netlist.resistor net (ctx_name card) (ctx_node n1) (ctx_node n2)
            (parse_value lineno v)
        | _ -> fail lineno "R card needs: name n1 n2 value"
      end
      | 'c' -> begin
        match rest with
        | [ n1; n2; v ] ->
          Netlist.capacitor net (ctx_name card) (ctx_node n1) (ctx_node n2)
            (parse_value lineno v)
        | _ -> fail lineno "C card needs: name n1 n2 value"
      end
      | 'v' -> begin
        match rest with
        | np :: nn :: src ->
          Netlist.vsource net (ctx_name card) (ctx_node np) (ctx_node nn)
            (parse_source lineno src)
        | _ -> fail lineno "V card needs: name n+ n- source"
      end
      | 'i' -> begin
        match rest with
        | np :: nn :: src ->
          Netlist.isource net (ctx_name card) (ctx_node np) (ctx_node nn)
            (parse_source lineno src)
        | _ -> fail lineno "I card needs: name n+ n- source"
      end
      | 'm' -> begin
        (* d g s [b] model W= L= — detect the optional bulk by checking
           whether the 4th positional token is a known model name *)
        let positional, params =
          let rec split acc = function
            | key :: "=" :: _ as rest' ->
              ignore key;
              (List.rev acc, rest')
            | tok :: rest' -> split (tok :: acc) rest'
            | [] -> (List.rev acc, [])
          in
          split [] rest
        in
        let params = parse_params lineno params in
        let d, g, s, model_name =
          match positional with
          | [ d; g; s; m ] -> (d, g, s, m)
          | [ d; g; s; _b; m ] -> (d, g, s, m)
          | _ -> fail lineno "M card needs: name d g s [b] model W= L="
        in
        let model = lookup_model lineno model_name in
        let w =
          match List.assoc_opt "w" params with
          | Some w -> w
          | None -> fail lineno "M card missing W="
        in
        let l =
          match List.assoc_opt "l" params with
          | Some l -> l
          | None -> fail lineno "M card missing L="
        in
        Netlist.mosfet net (ctx_name card) ~drain:(ctx_node d)
          ~gate:(ctx_node g) ~source:(ctx_node s) ~model ~w ~l
      end
      | _ -> fail lineno "unknown card %S" card
    end
  in
  List.iter (handle ~prefix:"" ~port_map:[]) top_lines;
  net

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))
