(** Dense float vectors (thin wrappers over [float array] with the
    operations the simulator needs). *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val copy : t -> t
val fill : t -> float -> unit

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] performs [y <- alpha * x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
val norm_inf : t -> float

val max_abs_diff : t -> t -> float
(** Infinity norm of the difference; used for Newton convergence checks. *)

val scale : float -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t

val pp : Format.formatter -> t -> unit
