module Table_nd = Repro_interp.Table_nd
module E = Repro_engine

type options = {
  guard : float;
  min_points : int;
  max_points : int;
  scheme : Table_nd.scheme;
}

let default_options =
  {
    guard = 0.1;
    min_points = 16;
    max_points = 256;
    scheme = Table_nd.Rbf Table_nd.Thin_plate;
  }

type t = {
  options : options;
  mutable xs : float array array;
  mutable evs : Problem.evaluation array;
}

let create ?(options = default_options) () =
  if not (options.guard >= 0.0) then
    invalid_arg "Surrogate.create: guard must be >= 0";
  if options.min_points < 2 then
    invalid_arg "Surrogate.create: min_points must be >= 2";
  if options.max_points < options.min_points then
    invalid_arg "Surrogate.create: max_points must be >= min_points";
  { options; xs = [||]; evs = [||] }

let options t = t.options
let size t = Array.length t.xs
let archive t = Array.map2 (fun x e -> (x, e)) t.xs t.evs

(* the exactly-evaluated archive, newest last, FIFO-capped so the fit
   cost stays bounded and a checkpointed archive is exactly the fit
   input (bit-identical resume needs nothing beyond this window) *)
let observe t xs evs =
  let xs' = Array.append t.xs xs and evs' = Array.append t.evs evs in
  let n = Array.length xs' in
  let keep = min n t.options.max_points in
  t.xs <- Array.sub xs' (n - keep) keep;
  t.evs <- Array.sub evs' (n - keep) keep

(* A screened-out candidate: infinitely infeasible, so Deb
   constraint-domination discards it against anything that was actually
   evaluated, it can never enter a Pareto front, and two rejects are
   mutually incomparable. *)
let rejected_evaluation problem =
  {
    Problem.objectives = Array.make (Problem.n_objectives problem) infinity;
    constraint_violation = infinity;
  }

let is_rejected (e : Problem.evaluation) = e.Problem.constraint_violation = infinity

(* Optimistic (guard-banded) predictions: every predicted coordinate is
   shifted by [guard] × the archive spread in that coordinate towards
   "better", so a candidate is only rejected when the surrogate says it
   is dominated by more than the model's own headroom. *)
let guarded_predictions t problem xs =
  let m = Array.length t.xs in
  if m < max t.options.min_points 2 then None
  else begin
    let nobj = Problem.n_objectives problem in
    let guard = t.options.guard in
    (* per-objective fits use only the points whose value is finite —
       failed simulations carry [infinity] objectives, which would
       poison the solve; they still feed the violation model below *)
    let objective_model k =
      let pts = ref [] and vals = ref [] in
      for i = m - 1 downto 0 do
        let v = t.evs.(i).Problem.objectives.(k) in
        if Float.is_finite v then begin
          pts := t.xs.(i) :: !pts;
          vals := v :: !vals
        end
      done;
      let pts = Array.of_list !pts and vals = Array.of_list !vals in
      if Array.length pts < 2 then None
      else begin
        let lo = Array.fold_left min infinity vals in
        let hi = Array.fold_left max neg_infinity vals in
        let spread = if hi > lo then hi -. lo else Float.abs hi +. 1.0 in
        Some (Table_nd.build ~scheme:t.options.scheme pts vals, spread)
      end
    in
    let models = Array.init nobj objective_model in
    let cv_model =
      let vals = Array.map (fun e -> e.Problem.constraint_violation) t.evs in
      let finite = Array.for_all Float.is_finite vals in
      if not finite then None
      else begin
        (* headroom scales with the violations actually observed — a
           fixed floor would swamp problems whose violation magnitudes
           are small and disable constraint screening entirely *)
        let hi = Array.fold_left max 0.0 vals in
        Some (Table_nd.build ~scheme:t.options.scheme t.xs vals, hi)
      end
    in
    let predict x =
      let objectives =
        Array.map
          (function
            (* no usable fit: predict "unbeatably good", i.e. fail open *)
            | None -> neg_infinity
            | Some (model, spread) -> Table_nd.eval model x -. (guard *. spread))
          models
      in
      let constraint_violation =
        match cv_model with
        | None -> 0.0
        | Some (model, spread) ->
          Float.max 0.0 (Table_nd.eval model x -. (guard *. spread))
      in
      { Problem.objectives; constraint_violation }
    in
    Some (Array.map predict xs)
  end

(* current front of the archive under Deb constraint-domination (kept
   infeasible-aware: before the first feasible point the best-violation
   points still screen hopeless candidates) *)
let archive_front t =
  let idx = Pareto.non_dominated t.evs in
  Array.map (fun i -> t.evs.(i)) idx

let screen t problem xs =
  match guarded_predictions t problem xs with
  | None -> None
  | Some preds ->
    let front = archive_front t in
    let keep pred =
      not
        (Array.exists
           (fun f -> Pareto.compare_dominance f pred = Pareto.Dominates)
           front)
    in
    Some (Array.map keep preds)

let wrap t inner : Problem.evaluator =
 fun problem xs ->
  let n = Array.length xs in
  match if n = 0 then None else screen t problem xs with
  | None ->
    (* archive still too thin to trust a fit: pay for everything *)
    let evs = inner problem xs in
    observe t xs evs;
    E.Telemetry.incr "eval.paid" ~by:n;
    evs
  | Some keep ->
    let paid_idx = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then paid_idx := i :: !paid_idx
    done;
    let paid_idx = Array.of_list !paid_idx in
    let paid_xs = Array.map (fun i -> xs.(i)) paid_idx in
    let paid_evs = inner problem paid_xs in
    observe t paid_xs paid_evs;
    let out = Array.make n (rejected_evaluation problem) in
    Array.iteri (fun k i -> out.(i) <- paid_evs.(k)) paid_idx;
    let paid = Array.length paid_idx in
    E.Telemetry.incr "eval.paid" ~by:paid;
    E.Telemetry.incr "eval.avoided" ~by:(n - paid);
    Repro_obs.Trace.instant "surrogate.screen"
      ~args:
        [
          ("batch", string_of_int n);
          ("avoided", string_of_int (n - paid));
        ];
    out

(* ---- state serialisation (resume support) ------------------------- *)
(* The archive rows reuse the individual codec (x | violation |
   objectives).  Restoring it alongside the optimiser state makes every
   post-resume screening decision identical to the uninterrupted run's. *)

module Snapshot = Repro_engine.Snapshot

let save_state t snap ~key =
  Snapshot.set_rows snap (key ^ ".points")
    (Array.map2
       (fun x e -> Nsga2.encode_individual { Nsga2.x; evaluation = e })
       t.xs t.evs)

let clear_state snap ~key = Snapshot.remove snap (key ^ ".points")

let restore_state ?(options = default_options) problem snap ~key =
  match Snapshot.get_rows snap (key ^ ".points") with
  | None -> None
  | Some rows ->
    let n_vars = Problem.n_vars problem in
    let decoded = Array.map (Nsga2.decode_individual ~n_vars) rows in
    if
      Array.length decoded > options.max_points
      || Array.exists Option.is_none decoded
    then None
    else begin
      let t = create ~options () in
      let inds = Array.map Option.get decoded in
      t.xs <- Array.map (fun i -> i.Nsga2.x) inds;
      t.evs <- Array.map (fun i -> i.Nsga2.evaluation) inds;
      Some t
    end
