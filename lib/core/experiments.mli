(** Regeneration of every evaluation artefact in the paper (the
    per-experiment index of DESIGN.md §4).  Each function renders the
    corresponding table/figure from flow results as printable text;
    [bench/main.exe] ties them together. *)

val fig7_front : Vco_problem.sized_design array -> string
(** Figure 7: the circuit-level Pareto front over (jitter, current,
    gain) — printed as the data series behind the paper's 3-D plot,
    plus the fmin/fmax columns. *)

val table1 : Variation_model.entry array -> string
(** Table 1: sample Pareto points with nominal Kvco/Jvco/Ivco and their
    ∆ spreads, in the paper's layout. *)

val table2 :
  ?selected:Pll_problem.table2_row ->
  Pll_problem.table2_row array ->
  string
(** Table 2: PLL system-level solution samples with nominal/min/max
    triples; the selected ("shaded") row is marked with [*]. *)

val fig8_locking :
  Pll_problem.config -> Pll_problem.table2_row -> string
(** Figure 8: the PLL locking transient of the selected design — an
    ASCII frequency-vs-time settling plot with the measured lock time. *)

val yield_report :
  Repro_util.Stats.yield_estimate ->
  verification:Hierarchy.verification option ->
  string
(** §4.5 closing check: the 500-sample MC yield plus the bottom-up
    verification comparison (model-predicted vs transistor-measured
    performance of the mapped sizing). *)

val ablation_report :
  with_variation:Hierarchy.result ->
  without_variation:Hierarchy.result ->
  prng:Repro_util.Prng.t ->
  string
(** The improvement claim over [10]: evaluate the design selected by the
    nominal-only flow under the {e variation-aware} yield model and
    compare yields/worst cases side by side. *)

val ascii_plot :
  ?width:int ->
  ?height:int ->
  title:string ->
  ?y_label:string ->
  (float * float) array ->
  string
(** Small terminal scatter/line plot used by the figure renderers. *)
