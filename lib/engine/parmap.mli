(** Order-preserving parallel map with a bit-reproducibility guarantee.

    Results are assembled by index, work is dispatched in chunks over a
    {!Pool}, and all randomness is pre-split per element on the calling
    domain ({!map_seeded}), so for a {e pure} per-element function the
    output is byte-identical whether the pool has 1 worker or 64.

    When [?pool] is omitted the shared {!Pool.get_default} pool is used,
    i.e. parallelism follows [-j] / [HIEROPT_JOBS].  [?chunk] forwards
    to {!Pool.run_items} and only tunes dispatch granularity — it never
    changes results. *)

val map : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map].  The first exception raised by [f] is
    re-raised on the calling domain (remaining items may or may not have
    been evaluated). *)

val mapi : ?pool:Pool.t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val init : ?pool:Pool.t -> ?chunk:int -> int -> (int -> 'b) -> 'b array
(** Parallel [Array.init].  @raise Invalid_argument on negative size. *)

val map_seeded :
  ?pool:Pool.t ->
  ?chunk:int ->
  prng:Repro_util.Prng.t ->
  (Repro_util.Prng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_seeded ~prng f arr] splits one independent child stream per
    element from [prng] (advancing it exactly [Array.length arr] times,
    same as the serial split-per-iteration idiom) and maps [f] in
    parallel.  Stream assignment depends only on the element index. *)
