type t = float array

let create n = Array.make n 0.0
let copy = Array.copy
let fill v x = Array.fill v 0 (Array.length v) x

let axpy ~alpha x y =
  let n = Array.length x in
  assert (Array.length y = n);
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let dot x y =
  let n = Array.length x in
  assert (Array.length y = n);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let max_abs_diff x y =
  let n = Array.length x in
  assert (Array.length y = n);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let scale alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let add x y = Array.mapi (fun i xi -> xi +. y.(i)) x
let sub x y = Array.mapi (fun i xi -> xi -. y.(i)) x

let pp ppf v =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]"
