(** Circuit-level optimisation problem (§4.1–4.2): 7 transistor W/L
    parameters → the 5 VCO performance functions.

    Objective vector (all minimised, paper order):
    [jvco; ivco; -kvco; fmin; -fmax] — jitter and current down, gain and
    maximum frequency up, minimum frequency down (to widen the band).

    Top-down specification propagation (Figure 3): the system spec's
    output band becomes a circuit-level coverage constraint
    (fmin <= f_out_low, fmax >= f_out_high), so the front concentrates
    on usable sizings.  Designs that fail to oscillate (or to converge)
    are marked infeasible so NSGA-II's constraint domination discards
    them. *)

type sized_design = {
  params : Repro_circuit.Topologies.vco_params;
  perf : Repro_spice.Vco_measure.performance;
}

val objective_names : string array

val objectives_of_perf : Repro_spice.Vco_measure.performance -> float array
(** The 5-entry minimisation vector. *)

val perf_of_objectives : float array -> Repro_spice.Vco_measure.performance
(** Inverse of {!objectives_of_perf} (sign restoration). *)

val problem :
  ?measure_options:Repro_spice.Vco_measure.options ->
  ?spec:Spec.t ->
  ?builder:(Repro_circuit.Topologies.vco_params -> Repro_circuit.Netlist.t) ->
  ?bounds:(float * float) array ->
  unit ->
  Repro_moo.Problem.t
(** The NSGA-II-ready problem over the paper's design box
    ({!Repro_circuit.Topologies.vco_bounds}); [spec] supplies the
    propagated band-coverage constraint (default {!Spec.default}).

    [builder] swaps the built-in ring-VCO construction for a custom
    netlist factory (e.g. an elaborated [.sp] template) evaluated
    through {!Repro_spice.Vco_measure.characterise_netlist}; [bounds]
    overrides the design box to the template's ranges.  With neither,
    the problem is exactly the paper's built-in one. *)

val design_of_individual : Repro_moo.Nsga2.individual -> sized_design option
(** Decode an individual back to (sizing, performance); [None] for
    infeasible individuals. *)

val vector_of_design : sized_design -> float array
(** Flat 12-float encoding (7 sizing parameters | 5 objectives) used by
    run snapshots; round-trips losslessly through {!design_of_vector}. *)

val design_of_vector : float array -> sized_design option
(** [None] unless the vector has exactly 12 entries. *)

val front_designs : Repro_moo.Nsga2.individual array -> sized_design array
(** Feasible rank-0 designs of a population, decoded. *)

val thin_front : sized_design array -> max_points:int -> sized_design array
(** Keep at most [max_points] designs, spread along the kvco axis —
    bounds the Monte-Carlo cost of the variation-model step. *)
