let () =
  Alcotest.run "hieropt"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("util-misc", Test_util_misc.suite);
      ("linalg", Test_linalg.suite);
      ("sparse", Test_sparse.suite);
      ("interp", Test_interp.suite);
      ("datafile", Test_datafile.suite);
      ("mosfet", Test_mosfet.suite);
      ("circuit", Test_circuit.suite);
      ("waveform", Test_waveform.suite);
      ("spice", Test_spice.suite);
      ("ac", Test_ac.suite);
      ("moo", Test_moo.suite);
      ("moo-extra", Test_moo_extra.suite);
      ("portfolio", Test_portfolio.suite);
      ("behave", Test_behave.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("netlist", Test_netlist.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("prof", Test_prof.suite);
      ("dist", Test_dist.suite);
    ]
