(** DC operating-point analysis with gmin-stepping and source-stepping
    continuation fallbacks. *)

type result = {
  solution : Repro_linalg.Vec.t;  (** MNA unknown vector *)
  iterations : int;               (** total Newton iterations spent *)
  strategy : string;              (** "direct" | "gmin" | "source" *)
}

exception No_convergence of string

val solve : ?x0:Repro_linalg.Vec.t -> Mna.compiled -> result
(** Find the DC operating point.  [x0] seeds the Newton iteration (e.g.
    a previous solution during a sweep). @raise No_convergence when all
    continuation strategies fail. *)

val node_voltage : Mna.compiled -> result -> string -> float
(** Voltage of a named node in a solved operating point.
    @raise Not_found for unknown names. *)

val source_current : Mna.compiled -> result -> string -> float
(** Branch current of a named voltage source (positive when flowing from
    the + terminal through the source to the - terminal).
    @raise Not_found for unknown names. *)
