module Telemetry = Repro_engine.Telemetry

type handler = Http.request -> int * (string * string) list * string

(* one accepted socket owned by exactly one reactor *)
type conn = {
  fd : Unix.file_descr;
  machine : Conn.t;
  mutable last_activity : float;
  mutable read_closed : bool;  (* peer sent EOF; output may still drain *)
}

type reactor = {
  listener : Unix.file_descr;
  owns_listener : bool;
      (* false when SO_REUSEPORT was unavailable and this reactor
         shares reactor 0's listener — only the owner closes it *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  rbuf : Bytes.t;
}

type t = {
  handler : handler;
  reactors : reactor array;
  bound_port : int;
  request_timeout : float;
  stopping : bool Atomic.t;
  stop_called : bool Atomic.t;
  drain_deadline : float Atomic.t;  (* meaningful once [stopping] *)
  mutable domains : unit Domain.t list;
}

let port t = t.bound_port
let error_body msg = Json.to_string (Json.Obj [ ("error", Json.Str msg) ])
let safe_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* above this many queued output bytes a connection stops being read:
   a slow consumer pipelining requests cannot balloon our buffers *)
let high_watermark = 256 * 1024

let close_conn r c =
  Hashtbl.remove r.conns c.fd;
  safe_close c.fd

(* opportunistic non-blocking drain of the output buffer; closes the
   connection once a [Connection: close] response is fully flushed *)
let try_write r c =
  let buf, off, len = Conn.output c.machine in
  if len > 0 then begin
    match Unix.write c.fd buf off len with
    | n ->
      Conn.output_consumed c.machine n;
      c.last_activity <- Unix.gettimeofday ();
      if Conn.output_pending c.machine = 0 && Conn.close_after_flush c.machine
      then close_conn r c
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error _ -> close_conn r c
  end
  else if Conn.close_after_flush c.machine then close_conn r c

let handle_events t c events =
  let rec go = function
    | [] -> ()
    | Conn.Protocol_error err :: _ -> (
      (* same policy as the blocking loop: answer the protocol error,
         then close; anything pipelined behind it is dropped *)
      match err with
      | `Bad_request msg ->
        Conn.push_response ~keep_alive:false ~status:400
          ~body:(error_body msg) c.machine
      | `Too_large msg ->
        Conn.push_response ~keep_alive:false ~status:413
          ~body:(error_body msg) c.machine
      | `Eof | `Timeout -> Conn.set_close_after_flush c.machine)
    | Conn.Request req :: rest ->
      if Conn.close_after_flush c.machine then
        (* a [Connection: close] response is already queued; requests
           pipelined behind it get no answer *)
        ()
      else begin
        (* a draining server answers what it already received, then
           closes instead of waiting for the next request *)
        let keep_alive = Http.keep_alive req && not (Atomic.get t.stopping) in
        (match t.handler req with
        | status, headers, body ->
          Conn.push_response ~headers ~keep_alive ~status ~body c.machine
        | exception exn ->
          Telemetry.incr "serve.connection_errors";
          Telemetry.warn ~key:"serve.connection" "request handler: %s"
            (Printexc.to_string exn);
          Conn.push_response ~keep_alive:false ~status:500
            ~body:(error_body "internal error") c.machine);
        go rest
      end
  in
  go events

let handle_readable t r c =
  match Unix.read c.fd r.rbuf 0 (Bytes.length r.rbuf) with
  | 0 ->
    c.read_closed <- true;
    if Conn.output_pending c.machine > 0 then
      (* half-closed client still waiting for its responses *)
      Conn.set_close_after_flush c.machine
    else close_conn r c
  | n ->
    c.last_activity <- Unix.gettimeofday ();
    handle_events t c (Conn.feed c.machine r.rbuf 0 n);
    try_write r c
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> close_conn r c

let rec accept_ready r =
  match Unix.accept ~cloexec:true r.listener with
  | fd, _ ->
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    Telemetry.incr "serve.connections";
    Hashtbl.replace r.conns fd
      {
        fd;
        machine = Conn.create ();
        last_activity = Unix.gettimeofday ();
        read_closed = false;
      };
    accept_ready r
  | exception
      Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
          | Unix.EINTR ),
          _,
          _ ) ->
    ()
  | exception Unix.Unix_error _ -> ()

let drain_wake r =
  let scratch = Bytes.create 64 in
  let rec go () =
    match Unix.read r.wake_r scratch 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* a reactor that somehow holds a dead descriptor (select → EBADF)
   must shed it rather than spin *)
let sweep_dead r =
  let dead =
    Hashtbl.fold
      (fun _ c acc ->
        match Unix.fstat c.fd with
        | _ -> acc
        | exception Unix.Unix_error _ -> c :: acc)
      r.conns []
  in
  List.iter (close_conn r) dead

let reactor_loop t r =
  let listener_open = ref true in
  let finished = ref false in
  while not !finished do
    let now = Unix.gettimeofday () in
    let stopping = Atomic.get t.stopping in
    if stopping && !listener_open then begin
      if r.owns_listener then safe_close r.listener;
      listener_open := false
    end;
    if stopping then begin
      (* idle keep-alive connections have nothing owed to them *)
      let idle =
        Hashtbl.fold
          (fun _ c acc ->
            if
              Conn.output_pending c.machine = 0
              && not (Conn.mid_request c.machine)
            then c :: acc
            else acc)
          r.conns []
      in
      List.iter (close_conn r) idle
    end;
    if stopping && Hashtbl.length r.conns = 0 then finished := true
    else begin
      let deadline =
        if stopping then Atomic.get t.drain_deadline else infinity
      in
      if stopping && now >= deadline then begin
        Telemetry.incr ~by:(Hashtbl.length r.conns) "serve.forced_closes";
        Hashtbl.iter
          (fun _ c ->
            (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            safe_close c.fd)
          r.conns;
        Hashtbl.reset r.conns;
        finished := true
      end
      else begin
        let reads =
          ref (r.wake_r :: (if !listener_open then [ r.listener ] else []))
        in
        let writes = ref [] in
        let next_tick = ref (min deadline (now +. 0.5)) in
        Hashtbl.iter
          (fun fd c ->
            if
              (not c.read_closed)
              && (not (Conn.broken c.machine))
              && (not (Conn.close_after_flush c.machine))
              && Conn.output_pending c.machine <= high_watermark
            then reads := fd :: !reads;
            if Conn.output_pending c.machine > 0 then writes := fd :: !writes;
            next_tick :=
              min !next_tick (c.last_activity +. t.request_timeout))
          r.conns;
        let timeout = max 0.0 (min 0.5 (!next_tick -. now)) in
        match Unix.select !reads !writes [] timeout with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> sweep_dead r
        | rs, ws, _ ->
          if List.memq r.wake_r rs then drain_wake r;
          if
            !listener_open
            && List.memq r.listener rs
            && not (Atomic.get t.stopping)
          then accept_ready r;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt r.conns fd with
              | Some c -> try_write r c
              | None -> ())
            ws;
          List.iter
            (fun fd ->
              if fd != r.wake_r && not (!listener_open && fd == r.listener)
              then
                match Hashtbl.find_opt r.conns fd with
                | Some c -> handle_readable t r c
                | None -> ())
            rs;
          let now = Unix.gettimeofday () in
          let expired =
            Hashtbl.fold
              (fun _ c acc ->
                if now -. c.last_activity > t.request_timeout then c :: acc
                else acc)
              r.conns []
          in
          List.iter
            (fun c ->
              if Conn.mid_request c.machine then
                Telemetry.incr "serve.request_timeouts";
              close_conn r c)
            expired
      end
    end
  done;
  if !listener_open && r.owns_listener then safe_close r.listener

let make_listener ~addr ~port ~reuseport =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    if reuseport then Unix.setsockopt fd Unix.SO_REUSEPORT true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
    Unix.listen fd 256;
    Unix.set_nonblock fd
  with
  | () -> fd
  | exception exn ->
    safe_close fd;
    raise exn

let start_with ?(addr = "127.0.0.1") ?(port = 8190) ?(reactors = 2)
    ?(request_timeout = 10.) ~handler () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let n = max 1 reactors in
  (* shard accepts across reactors kernel-side: every reactor gets its
     own SO_REUSEPORT listener on the same address.  When the kernel
     refuses (no reuseport), all reactors share listener 0 and race
     non-blocking accepts instead. *)
  let first =
    match make_listener ~addr ~port ~reuseport:true with
    | fd -> fd
    | exception Unix.Unix_error _ -> make_listener ~addr ~port ~reuseport:false
  in
  let bound_port =
    match Unix.getsockname first with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let make_reactor i =
    let listener, owns_listener =
      if i = 0 then (first, true)
      else
        match make_listener ~addr ~port:bound_port ~reuseport:true with
        | fd -> (fd, true)
        | exception Unix.Unix_error _ -> (first, false)
    in
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    {
      listener;
      owns_listener;
      wake_r;
      wake_w;
      conns = Hashtbl.create 64;
      rbuf = Bytes.create 65536;
    }
  in
  let t =
    {
      handler;
      reactors = Array.init n make_reactor;
      bound_port;
      request_timeout = (if request_timeout <= 0. then 10. else request_timeout);
      stopping = Atomic.make false;
      stop_called = Atomic.make false;
      drain_deadline = Atomic.make infinity;
      domains = [];
    }
  in
  t.domains <-
    Array.to_list
      (Array.map (fun r -> Domain.spawn (fun () -> reactor_loop t r)) t.reactors);
  Telemetry.set "serve.reactors" n;
  t

let start ?addr ?port ?reactors ?request_timeout ~api () =
  start_with ?addr ?port ?reactors ?request_timeout ~handler:(Api.handle api)
    ()

let wake r =
  let b = Bytes.make 1 '\x00' in
  try ignore (Unix.write r.wake_w b 0 1) with Unix.Unix_error _ -> ()

let stop ?(drain_timeout = 5.0) t =
  if not (Atomic.exchange t.stop_called true) then begin
    (* deadline first: a reactor must never observe [stopping] with a
       stale (zero) deadline and force-close immediately *)
    Atomic.set t.drain_deadline (Unix.gettimeofday () +. max 0. drain_timeout);
    Atomic.set t.stopping true;
    Array.iter wake t.reactors
  end

let wait t =
  (* poll instead of blocking in join straight away: a thread stuck in a
     C call never runs OCaml signal handlers, so a main thread that
     joined here directly would never see the SIGTERM that is supposed
     to stop the server.  The delay loop gives the runtime a safepoint
     every tick. *)
  while not (Atomic.get t.stopping) do
    Thread.delay 0.1
  done;
  List.iter Domain.join t.domains;
  t.domains <- [];
  Array.iter
    (fun r ->
      safe_close r.wake_r;
      safe_close r.wake_w)
    t.reactors

let install_signal_handlers t =
  let handler _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
