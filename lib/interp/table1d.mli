(** One-dimensional Verilog-A-style table models.

    A table model wraps sampled [(x, y)] data with an interpolation degree
    and an extrapolation rule, selected by the same control strings that
    [$table_model] uses: a digit [1|2|3] (linear / quadratic / cubic
    spline) followed by an optional letter [C|L|E] (clamp / linear
    extrapolation / error).  The paper uses ["3E"] — cubic spline, no
    extrapolation. *)

type extrapolation =
  | Clamp   (** "C": hold the end value outside the sample range *)
  | Extend  (** "L": extend the end segment linearly *)
  | Error   (** "E": refuse to evaluate outside the sample range *)

type t

exception Out_of_range of float
(** Raised by {!eval} under the [Error] rule when the query lies outside
    the sampled range. *)

val parse_control : string -> Spline.method_ * extrapolation
(** [parse_control "3E"] = [(Cubic, Error)].  The letter defaults to
    [Error] when omitted (matching the paper's usage).
    @raise Failure on malformed strings. *)

val control_string : t -> string

val build : ?control:string -> float array -> float array -> t
(** [build xs ys] sorts the points by [x], deduplicates equal abscissae by
    averaging their ordinates, and fits the selected interpolant.
    Default control: ["3E"].
    @raise Invalid_argument when fewer than 2 distinct abscissae remain. *)

val eval : t -> float -> float
(** Interpolated value. @raise Out_of_range per the extrapolation rule. *)

val eval_clamped : t -> float -> float
(** Like {!eval} but always clamps, regardless of the table's rule (used
    by optimisers that probe near the Pareto boundary). *)

val domain : t -> float * float
(** Smallest and largest sampled abscissa. *)

val size : t -> int
(** Number of (deduplicated) sample points. *)
