(* The optimiser portfolio (DE, MOPSO, the Optimiser registry) and the
   surrogate pre-screen *)
module M = Repro_moo
module O = Repro_moo.Optimiser
module E = Repro_engine
module Prng = Repro_util.Prng

let zdt1 n =
  M.Problem.create ~name:"zdt1"
    ~bounds:(Array.make n (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun x ->
      let f1 = x.(0) in
      let s = ref 0.0 in
      for i = 1 to n - 1 do
        s := !s +. x.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. float_of_int (n - 1)) in
      {
        M.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = 0.0;
      })

(* an asymmetric box so bound violations cannot hide behind [0,1] *)
let boxed n =
  M.Problem.create ~name:"boxed"
    ~bounds:(Array.init n (fun i -> (-2.0 -. float_of_int i, 1.5)))
    ~objective_names:[| "f1"; "f2" |]
    (fun x ->
      {
        M.Problem.objectives =
          [| x.(0); Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x |];
        constraint_violation = 0.0;
      })

let objectives pop =
  Array.map (fun i -> i.M.Nsga2.evaluation.M.Problem.objectives) pop

let in_bounds problem pop =
  let bounds = problem.M.Problem.bounds in
  Array.for_all
    (fun ind ->
      let x = ind.M.Nsga2.x in
      Array.length x = Array.length bounds
      && Array.for_all
           (fun j ->
             let lo, hi = bounds.(j) in
             x.(j) >= lo && x.(j) <= hi)
           (Array.init (Array.length bounds) Fun.id))
    pop

(* ---- registry ---- *)

let test_registry () =
  Alcotest.(check (list string))
    "names" [ "nsga2"; "spea2"; "de"; "mopso" ] O.names;
  List.iter
    (fun n ->
      match O.of_name n with
      | None -> Alcotest.failf "of_name %s" n
      | Some o -> Alcotest.(check string) "name roundtrip" n (O.name o))
    O.names;
  Alcotest.(check bool) "unknown rejected" true (O.of_name "cmaes" = None)

let test_every_member_runs () =
  let problem = zdt1 5 in
  List.iter
    (fun (name, opt) ->
      let pop =
        O.optimise opt
          ~options:{ O.population = 12; generations = 3 }
          problem (Prng.create 5)
      in
      if Array.length pop = 0 then Alcotest.failf "%s: empty population" name;
      if Array.length (M.Nsga2.pareto_front pop) = 0 then
        Alcotest.failf "%s: empty front" name;
      if not (in_bounds problem pop) then
        Alcotest.failf "%s: escaped the bounds" name)
    O.all

(* ---- convergence (the portfolio members actually optimise) ---- *)

let test_de_converges_zdt1 () =
  let final =
    M.De.optimise
      ~options:{ M.De.default_options with population = 40; generations = 60 }
      (zdt1 8) (Prng.create 3)
  in
  let front = M.Nsga2.pareto_front final in
  Alcotest.(check bool) "large front" true (Array.length front > 15);
  let errs =
    Array.map
      (fun ind ->
        let o = ind.M.Nsga2.evaluation.M.Problem.objectives in
        Float.abs (o.(1) -. (1.0 -. sqrt o.(0))))
      front
  in
  Alcotest.(check bool) "near analytic front" true
    (Repro_util.Stats.mean errs < 0.05)

let test_mopso_converges_zdt1 () =
  let final =
    M.Mopso.optimise
      ~options:
        { M.Mopso.default_options with population = 40; archive = 40; generations = 60 }
      (zdt1 8) (Prng.create 3)
  in
  let front = M.Nsga2.pareto_front final in
  Alcotest.(check bool) "large front" true (Array.length front > 15);
  let errs =
    Array.map
      (fun ind ->
        let o = ind.M.Nsga2.evaluation.M.Problem.objectives in
        Float.abs (o.(1) -. (1.0 -. sqrt o.(0))))
      front
  in
  Alcotest.(check bool) "near analytic front" true
    (Repro_util.Stats.mean errs < 0.1)

let test_mopso_archive_bounded () =
  let final =
    M.Mopso.optimise
      ~options:
        { M.Mopso.default_options with population = 30; archive = 8; generations = 15 }
      (zdt1 5) (Prng.create 7)
  in
  (* population = archive ∪ pbest *)
  Alcotest.(check bool) "archive + pbest bounded" true
    (Array.length final <= 8 + 30)

let test_invalid_options () =
  let check name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  check "de: population < 5" (fun () ->
      M.De.optimise
        ~options:{ M.De.default_options with population = 4 }
        (zdt1 3) (Prng.create 1));
  check "de: f out of range" (fun () ->
      M.De.optimise
        ~options:{ M.De.default_options with f = 0.0 }
        (zdt1 3) (Prng.create 1));
  check "mopso: inertia >= 1" (fun () ->
      M.Mopso.optimise
        ~options:{ M.Mopso.default_options with inertia = 1.0 }
        (zdt1 3) (Prng.create 1))

(* ---- QCheck properties ---- *)

let seed_gen = QCheck.int_range 0 10_000

let prop_de_bounds =
  QCheck.Test.make ~name:"DE population stays inside the design box"
    ~count:20 seed_gen (fun seed ->
      let problem = boxed 4 in
      let final =
        M.De.optimise
          ~options:
            { M.De.default_options with population = 10; generations = 4 }
          problem (Prng.create seed)
      in
      in_bounds problem final)

let prop_mopso_bounds =
  QCheck.Test.make ~name:"MOPSO swarm stays inside the design box"
    ~count:20 seed_gen (fun seed ->
      let problem = boxed 4 in
      let final =
        M.Mopso.optimise
          ~options:
            {
              M.Mopso.default_options with
              population = 10;
              archive = 10;
              generations = 4;
            }
          problem (Prng.create seed)
      in
      in_bounds problem final)

let prop_optimise_is_init_plus_steps =
  QCheck.Test.make
    ~name:"optimise = init + steps, bit-exactly, for every member"
    ~count:10 seed_gen (fun seed ->
      let problem = zdt1 4 in
      let options = { O.population = 10; generations = 3 } in
      List.for_all
        (fun (_, opt) ->
          let direct =
            O.optimise opt ~options problem (Prng.create seed)
          in
          let module A = (val opt : O.S) in
          let st =
            A.init ~options ~evaluator:M.Problem.serial_evaluator problem
              (Prng.create seed)
          in
          while A.generation st < options.O.generations do
            A.step ~evaluator:M.Problem.serial_evaluator problem st
          done;
          objectives direct = objectives (A.population st))
        O.all)

let prop_worker_count_invariance =
  QCheck.Test.make
    ~name:"1-worker and 4-worker evaluation are bit-identical (DE, MOPSO)"
    ~count:5 seed_gen (fun seed ->
      let problem = zdt1 4 in
      let options = { O.population = 10; generations = 3 } in
      let with_workers n f =
        E.Pool.with_pool ~size:n (fun pool ->
            f (M.Problem.parallel_evaluator ~pool ()))
      in
      List.for_all
        (fun name ->
          let opt = Option.get (O.of_name name) in
          let run n =
            with_workers n (fun evaluator ->
                objectives
                  (O.optimise opt ~options ~evaluator problem
                     (Prng.create seed)))
          in
          run 1 = run 4)
        [ "de"; "mopso" ])

let prop_surrogate_guard_band =
  (* the false-reject guarantee: a candidate whose guarded prediction is
     not dominated by any archive-front member is always evaluated *)
  QCheck.Test.make
    ~name:"surrogate never screens out a guard-band-non-dominated candidate"
    ~count:30 seed_gen (fun seed ->
      let problem = zdt1 4 in
      let prng = Prng.create seed in
      let s =
        M.Surrogate.create
          ~options:{ M.Surrogate.default_options with min_points = 8 }
          ()
      in
      let batch n = Array.init n (fun _ -> M.Problem.random_point problem prng) in
      let seedpts = batch 16 in
      M.Surrogate.observe s seedpts
        (M.Problem.serial_evaluator problem seedpts);
      let candidates = batch 12 in
      match
        ( M.Surrogate.screen s problem candidates,
          M.Surrogate.guarded_predictions s problem candidates )
      with
      | None, _ | _, None -> false (* archive is past min_points *)
      | Some verdicts, Some preds ->
        let front_evs =
          Array.map snd (M.Surrogate.archive s) |> fun evs ->
          Array.map (fun i -> evs.(i)) (M.Pareto.non_dominated evs)
        in
        let dominated p =
          Array.exists
            (fun f -> M.Pareto.compare_dominance f p = M.Pareto.Dominates)
            front_evs
        in
        Array.for_all2
          (fun keep pred -> keep || dominated pred)
          verdicts preds)

(* ---- surrogate wrap semantics ---- *)

let test_surrogate_warmup_pays_all () =
  let problem = zdt1 4 in
  let prng = Prng.create 11 in
  let s =
    M.Surrogate.create
      ~options:{ M.Surrogate.default_options with min_points = 64 }
      ()
  in
  let evaluator = M.Surrogate.wrap s M.Problem.serial_evaluator in
  let pts = Array.init 10 (fun _ -> M.Problem.random_point problem prng) in
  let evs = evaluator problem pts in
  Alcotest.(check bool) "below min_points nothing is screened" true
    (Array.for_all (fun e -> not (M.Surrogate.is_rejected e)) evs);
  Alcotest.(check int) "all observed" 10 (M.Surrogate.size s);
  Alcotest.(check bool) "wrap = exact evaluation" true
    (evs = M.Problem.serial_evaluator problem pts)

let test_rejected_marker_never_reaches_front () =
  let problem = zdt1 4 in
  let rejected = M.Surrogate.rejected_evaluation problem in
  Alcotest.(check bool) "marker is flagged" true
    (M.Surrogate.is_rejected rejected);
  let real = M.Problem.serial_evaluator problem [| [| 0.5; 0.5; 0.5; 0.5 |] |] in
  Alcotest.(check bool) "any exact evaluation dominates the marker" true
    (M.Pareto.compare_dominance real.(0) rejected = M.Pareto.Dominates);
  Alcotest.(check bool) "two markers are incomparable" true
    (M.Pareto.compare_dominance rejected rejected = M.Pareto.Incomparable)

let test_surrogate_screens_dominated_region () =
  (* archive the good corner of a linear problem, then screen a batch
     from the far (dominated) corner: with a well-separated geometry the
     surrogate must avoid at least part of the bad batch *)
  let problem =
    M.Problem.create ~name:"linear"
      ~bounds:[| (0.0, 1.0); (0.0, 1.0) |]
      ~objective_names:[| "f1"; "f2" |]
      (fun x ->
        {
          M.Problem.objectives = [| x.(0); x.(1) |];
          constraint_violation = 0.0;
        })
  in
  let s =
    M.Surrogate.create
      ~options:{ M.Surrogate.default_options with min_points = 8; guard = 0.05 }
      ()
  in
  let grid =
    Array.init 25 (fun i ->
        [| 0.2 *. float_of_int (i mod 5); 0.2 *. float_of_int (i / 5) |])
  in
  M.Surrogate.observe s grid (M.Problem.serial_evaluator problem grid);
  let evaluator = M.Surrogate.wrap s M.Problem.serial_evaluator in
  let bad = Array.init 6 (fun i -> [| 0.8; 0.7 +. (0.05 *. float_of_int i) |]) in
  let evs = evaluator problem bad in
  Alcotest.(check bool) "deep-dominated candidates are screened out" true
    (Array.exists M.Surrogate.is_rejected evs);
  (* and a batch near the ideal corner sails through *)
  let good = [| [| 0.01; 0.02 |]; [| 0.0; 0.0 |] |] in
  let evs = evaluator problem good in
  Alcotest.(check bool) "non-dominated candidates are paid" true
    (Array.for_all (fun e -> not (M.Surrogate.is_rejected e)) evs)

(* ---- checkpoint/resume ---- *)

let resume_bit_identical name =
  let problem = zdt1 4 in
  let options = { O.population = 10; generations = 6 } in
  let opt = Option.get (O.of_name name) in
  let module A = (val opt : O.S) in
  let evaluator = M.Problem.serial_evaluator in
  (* straight-through run *)
  let full = A.init ~options ~evaluator problem (Prng.create 3) in
  while A.generation full < 6 do
    A.step ~evaluator problem full
  done;
  (* interrupted at generation 2, snapshotted, restored, continued *)
  let first = A.init ~options ~evaluator problem (Prng.create 3) in
  while A.generation first < 2 do
    A.step ~evaluator problem first
  done;
  let snap = E.Snapshot.create ~fingerprint:"portfolio-test" in
  A.save_state first snap ~key:"ga";
  let dir = Filename.temp_file "portfolio" ".snapshot" in
  E.Snapshot.save snap dir;
  let snap2 =
    match E.Snapshot.load ~fingerprint:"portfolio-test" dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" (E.Snapshot.load_error_to_string e)
  in
  Sys.remove dir;
  let resumed =
    match A.restore_state ~options problem snap2 ~key:"ga" with
    | Some st -> st
    | None -> Alcotest.failf "%s: restore failed" name
  in
  Alcotest.(check int) "resumed at the right generation" 2
    (A.generation resumed);
  while A.generation resumed < 6 do
    A.step ~evaluator problem resumed
  done;
  Alcotest.(check bool)
    (name ^ ": interrupted+resumed = uninterrupted, bit-exactly")
    true
    (objectives (A.population full) = objectives (A.population resumed)
    && Array.for_all2
         (fun a b -> a.M.Nsga2.x = b.M.Nsga2.x)
         (A.population full) (A.population resumed))

let test_de_resume () = resume_bit_identical "de"
let test_mopso_resume () = resume_bit_identical "mopso"

let test_restore_rejects_mismatch () =
  let problem = zdt1 4 in
  let options = { O.population = 10; generations = 6 } in
  let opt = Option.get (O.of_name "de") in
  let module A = (val opt : O.S) in
  let st =
    A.init ~options ~evaluator:M.Problem.serial_evaluator problem
      (Prng.create 3)
  in
  let snap = E.Snapshot.create ~fingerprint:"fp" in
  A.save_state st snap ~key:"ga";
  Alcotest.(check bool) "population-size mismatch rejected" true
    (A.restore_state
       ~options:{ options with O.population = 12 }
       problem snap ~key:"ga"
    = None);
  Alcotest.(check bool) "missing key rejected" true
    (A.restore_state ~options problem snap ~key:"other" = None)

let test_surrogate_state_roundtrip () =
  let problem = zdt1 4 in
  let prng = Prng.create 13 in
  let s = M.Surrogate.create () in
  let pts = Array.init 20 (fun _ -> M.Problem.random_point problem prng) in
  M.Surrogate.observe s pts (M.Problem.serial_evaluator problem pts);
  let snap = E.Snapshot.create ~fingerprint:"fp" in
  M.Surrogate.save_state s snap ~key:"sur";
  match M.Surrogate.restore_state problem snap ~key:"sur" with
  | None -> Alcotest.fail "restore failed"
  | Some s2 ->
    Alcotest.(check int) "archive size survives" (M.Surrogate.size s)
      (M.Surrogate.size s2);
    Alcotest.(check bool) "archive contents survive bit-exactly" true
      (M.Surrogate.archive s = M.Surrogate.archive s2)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "every member runs" `Quick test_every_member_runs;
    Alcotest.test_case "DE converges on ZDT1" `Quick test_de_converges_zdt1;
    Alcotest.test_case "MOPSO converges on ZDT1" `Quick test_mopso_converges_zdt1;
    Alcotest.test_case "MOPSO archive bounded" `Quick test_mopso_archive_bounded;
    Alcotest.test_case "invalid options" `Quick test_invalid_options;
    QCheck_alcotest.to_alcotest prop_de_bounds;
    QCheck_alcotest.to_alcotest prop_mopso_bounds;
    QCheck_alcotest.to_alcotest prop_optimise_is_init_plus_steps;
    QCheck_alcotest.to_alcotest prop_worker_count_invariance;
    QCheck_alcotest.to_alcotest prop_surrogate_guard_band;
    Alcotest.test_case "surrogate warmup pays all" `Quick
      test_surrogate_warmup_pays_all;
    Alcotest.test_case "rejected marker semantics" `Quick
      test_rejected_marker_never_reaches_front;
    Alcotest.test_case "surrogate screens dominated region" `Quick
      test_surrogate_screens_dominated_region;
    Alcotest.test_case "DE interrupt/resume bit-identical" `Quick
      test_de_resume;
    Alcotest.test_case "MOPSO interrupt/resume bit-identical" `Quick
      test_mopso_resume;
    Alcotest.test_case "restore rejects mismatch" `Quick
      test_restore_rejects_mismatch;
    Alcotest.test_case "surrogate state roundtrip" `Quick
      test_surrogate_state_roundtrip;
  ]
