type t = {
  f_out_low : float;
  f_out_high : float;
  f_target : float;
  fref : float;
  n_div : int;
  lock_time_max : float;
  current_max : float;
}

let default =
  {
    f_out_low = 500e6;
    f_out_high = 1.2e9;
    f_target = 800e6;
    fref = 100e6;
    n_div = 8;
    lock_time_max = 1e-6;
    current_max = 15e-3;
  }

let pp ppf t =
  Format.fprintf ppf
    "band [%.0f, %.0f] MHz, lock %.0f MHz = %d x %.0f MHz, t_lock < %.2f us, I < %.1f mA"
    (t.f_out_low /. 1e6) (t.f_out_high /. 1e6) (t.f_target /. 1e6) t.n_div
    (t.fref /. 1e6) (t.lock_time_max *. 1e6) (t.current_max *. 1e3)

let validate t =
  if t.f_out_low <= 0.0 || t.f_out_high <= t.f_out_low then
    invalid_arg "Spec: need 0 < f_out_low < f_out_high";
  if t.f_target < t.f_out_low || t.f_target > t.f_out_high then
    invalid_arg "Spec: f_target outside the output band";
  if Float.abs ((float_of_int t.n_div *. t.fref) -. t.f_target) > 1.0 then
    invalid_arg "Spec: n_div * fref must equal f_target";
  if t.lock_time_max <= 0.0 || t.current_max <= 0.0 then
    invalid_arg "Spec: non-positive limits"
