type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols
let idx m i j = (i * m.cols) + j

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) outside %dx%d" i j m.rows m.cols)

let get m i j =
  check m i j;
  m.data.(idx m i j)

let set m i j x =
  check m i j;
  m.data.(idx m i j) <- x

let add_to m i j x =
  check m i j;
  m.data.(idx m i j) <- m.data.(idx m i j) +. x

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.data.(idx m i i) <- 1.0
  done;
  m

let copy m = { m with data = Array.copy m.data }
let clear m = Array.fill m.data 0 (Array.length m.data) 0.0

let of_arrays a =
  let r = Array.length a in
  let c = if r = 0 then 0 else Array.length a.(0) in
  let m = create r c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged";
      Array.iteri (fun j x -> m.data.(idx m i j) <- x) row)
    a;
  m

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> m.data.(idx m i j)))

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: size mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: size mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.(idx a i k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.(idx c i j) <- c.data.(idx c i j) +. (aik *. b.data.(idx b k j))
        done
    done
  done;
  c

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      t.data.(idx t j i) <- m.data.(idx m i j)
    done
  done;
  t

let map f m = { m with data = Array.map f m.data }

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Float.abs m.data.(idx m i j)
    done;
    best := Float.max !best !acc
  done;
  !best

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" m.data.(idx m i j)
    done;
    Format.fprintf ppf "]@."
  done
