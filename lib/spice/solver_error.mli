(** The shared failure type of the non-raising solver entry points
    ({!Dcop.solve_result}, {!Transient.run_result}).

    Carries structured context (which continuation stage gave up, the
    simulation time at which the step size underflowed) instead of a
    pre-formatted message, so callers can branch on the failure mode and
    format it once, at the reporting boundary. *)

type t =
  | No_convergence of { stage : string; detail : string }
      (** Newton failed to converge; [stage] names the analysis
          ("dcop", "transient") and [detail] the strategy trail. *)
  | Step_underflow of { time : float }
      (** Transient step halving hit [dt_min] at simulation time
          [time]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
