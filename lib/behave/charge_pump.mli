(** Charge pump: converts the PFD state into a filter current, with
    optional up/down mismatch and leakage (the non-idealities that set
    reference spurs in a real CP-PLL). *)

type t = {
  i_up : float;      (** A *)
  i_down : float;    (** A *)
  leakage : float;   (** A, constant drain from the control node *)
}

val ideal : float -> t
(** [ideal icp] — matched pump currents, no leakage. *)

val with_mismatch : icp:float -> mismatch:float -> t
(** [with_mismatch ~icp ~mismatch] skews up/down by ±mismatch/2
    (fractional). *)

val current : t -> Pfd.state -> float
(** Current delivered into the loop filter for a PFD state. *)

val average_current : t -> duty:float -> float
(** Supply current drawn at a given activity duty cycle (used in the
    PLL current budget). *)
