(* Exact hypervolume for minimisation: the Lebesgue measure of the
   region dominated by the point set and bounded by the reference
   point.  Computed by recursive dimension slicing (HSO-style): sort by
   the last objective, sweep slabs between consecutive values, and
   multiply each slab's thickness by the (d-1)-dimensional hypervolume
   of the points entering it.  Fully deterministic — no sampling, no
   PRNG — so it is safe to compute inside an observed run without
   perturbing anything (unlike {!Pareto.hypervolume_mc}).

   Cost is O(n log n) at d = 2 and O(n^(d-1) log n) in the worst case
   above, fine for the front sizes here (tens of points, d <= 5). *)

(* 2-D staircase over points strictly dominating the reference *)
let staircase ~rx ~ry pts =
  let pts = List.sort (fun a b -> compare a.(0) b.(0)) pts in
  let area = ref 0.0 in
  let bound = ref ry in
  List.iter
    (fun p ->
      if p.(1) < !bound then begin
        area := !area +. ((rx -. p.(0)) *. (!bound -. p.(1)));
        bound := p.(1)
      end)
    pts;
  !area

(* [pts] strictly dominate [reference] in coordinates 0..d-1 *)
let rec slice d ~reference pts =
  match pts with
  | [] -> 0.0
  | _ when d = 1 ->
    reference.(0) -. List.fold_left (fun m p -> Float.min m p.(0)) infinity pts
  | _ when d = 2 -> staircase ~rx:reference.(0) ~ry:reference.(1) pts
  | _ ->
    let last = d - 1 in
    let sorted =
      List.sort (fun a b -> compare a.(last) b.(last)) pts |> Array.of_list
    in
    let n = Array.length sorted in
    let vol = ref 0.0 in
    let prefix = ref [] in
    for k = 0 to n - 1 do
      prefix := sorted.(k) :: !prefix;
      let z = sorted.(k).(last) in
      let z_next = if k + 1 < n then sorted.(k + 1).(last) else reference.(last) in
      if z_next > z then
        vol := !vol +. ((z_next -. z) *. slice (d - 1) ~reference !prefix)
    done;
    !vol

let exact ~reference points =
  let d = Array.length reference in
  if d = 0 then invalid_arg "Hypervolume.exact: empty reference";
  let dominates p =
    Array.length p = d
    &&
    let ok = ref true in
    for i = 0 to d - 1 do
      if not (p.(i) < reference.(i)) then ok := false
    done;
    !ok
  in
  let pts = List.filter dominates (Array.to_list points) in
  slice d ~reference pts

let of_front ?dims ~reference evals =
  let project (o : float array) =
    match dims with None -> o | Some idx -> Array.map (fun i -> o.(i)) idx
  in
  let pts =
    Array.to_list evals
    |> List.filter Problem.feasible
    |> List.map (fun e -> project e.Problem.objectives)
    |> Array.of_list
  in
  exact ~reference pts
