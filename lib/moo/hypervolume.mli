(** Exact hypervolume indicator (minimisation).

    The dominated-region volume between a point set and a fixed
    reference point is the standard scalar convergence measure for
    multi-objective GA runs: it grows monotonically as the front
    approaches the true Pareto set, and comparing it generation by
    generation against one fixed reference tracks convergence (the
    journal's [ga.generation] events).

    Unlike {!Pareto.hypervolume_mc} this is exact and deterministic —
    no PRNG involved — so computing it mid-run cannot perturb results.
    Points that do not strictly dominate the reference in every
    coordinate contribute nothing. *)

val exact : reference:float array -> float array array -> float
(** [exact ~reference points] for raw objective vectors; every point
    must have the reference's dimensionality (others are ignored only
    if shorter/longer — they are skipped by the domination filter).
    Worst-case O(n^(d-1) log n); meant for fronts of tens of points. *)

val of_front :
  ?dims:int array ->
  reference:float array ->
  Problem.evaluation array ->
  float
(** Hypervolume of the feasible points of a front.  [dims] selects a
    subset/permutation of objective indices first (e.g. the three
    headline objectives of a 5-objective problem); the reference is in
    the projected space. *)
