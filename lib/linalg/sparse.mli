(** Square sparse matrices in compressed sparse row (CSR) form, built
    for the MNA systems of the circuit simulator.

    The structure (row pointers + column indices) is immutable after
    {!Builder.build}; the value array is mutable so a fixed sparsity
    pattern can be restamped cheaply across Newton iterations,
    timesteps and Monte-Carlo samples.  Two matrices made with
    {!like} share their pattern arrays physically, which makes pattern
    reuse free and fingerprint comparison cheap. *)

type t

module Builder : sig
  type b

  val create : n:int -> b
  (** Builder for an [n] x [n] matrix. *)

  val add : b -> int -> int -> float -> unit
  (** [add b i j v] accumulates [v] onto entry [(i, j)].  Duplicate
      stamps at the same position sum, matching MNA stamping.
      @raise Invalid_argument on out-of-range indices. *)

  val build : b -> t
  (** Freeze into CSR form.  Columns within each row are sorted
      ascending; duplicates are summed.  The builder stays usable. *)
end

val n : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** [get a i j] is the entry at [(i, j)] (0.0 outside the pattern). *)

val index : t -> int -> int -> int
(** Position of [(i, j)] inside the value array, or [-1] when the
    pattern has no such entry.  Binary search within the row. *)

val values : t -> float array
(** The mutable value store, aligned with the CSR pattern.  Writing
    through it is the supported fast restamping path. *)

val row_ptr : t -> int array
val col_idx : t -> int array
(** Raw CSR pattern arrays (treat as read-only; shared across {!like}
    copies). *)

val clear_values : t -> unit
(** Zero every stored value, keeping the pattern. *)

val like : t -> t
(** A matrix sharing [t]'s pattern with a fresh zero value array —
    the per-worker restamping target. *)

val same_pattern : t -> t -> bool
(** Structural equality of the patterns (physical-equality fast
    path). *)

val fingerprint : t -> int
(** A 62-bit FNV-1a hash of [(n, row_ptr, col_idx)] — the structural
    key under which symbolic factorisations are shared. *)

val mul_vec : t -> float array -> float array
(** Sparse matrix-vector product (residual checks, tests). *)

val of_matrix : ?keep_zeros:bool -> Matrix.t -> t
(** Dense to CSR; entries equal to [0.0] are dropped unless
    [keep_zeros]. @raise Invalid_argument on non-square input. *)

val to_matrix : t -> Matrix.t
(** CSR to dense (tests, small analyses). *)
