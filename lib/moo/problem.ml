type evaluation = {
  objectives : float array;
  constraint_violation : float;
}

let feasible e = e.constraint_violation <= 0.0

type t = {
  name : string;
  bounds : (float * float) array;
  objective_names : string array;
  evaluate : float array -> evaluation;
}

let n_vars t = Array.length t.bounds
let n_objectives t = Array.length t.objective_names

let create ~name ~bounds ~objective_names evaluate =
  if Array.length bounds = 0 then invalid_arg "Problem.create: no variables";
  if Array.length objective_names = 0 then
    invalid_arg "Problem.create: no objectives";
  Array.iter
    (fun (lo, hi) ->
      if not (lo < hi) then invalid_arg "Problem.create: inverted bounds")
    bounds;
  { name; bounds; objective_names; evaluate }

let clamp t x =
  Array.mapi
    (fun i v ->
      let lo, hi = t.bounds.(i) in
      Repro_util.Floatx.clamp ~lo ~hi v)
    x

let random_point t prng =
  Array.map (fun (lo, hi) -> Repro_util.Prng.range prng lo hi) t.bounds

let violation_of_bounds ~lo ~hi x =
  if x < lo then lo -. x else if x > hi then x -. hi else 0.0

let infeasible_evaluation t ~penalty =
  {
    objectives = Array.make (n_objectives t) infinity;
    constraint_violation = Float.max penalty 1.0;
  }

(* ---- batch evaluation -------------------------------------------- *)

type evaluator = t -> float array array -> evaluation array

let serial_evaluator t xs =
  let n = Array.length xs in
  let out = Array.make n { objectives = [||]; constraint_violation = 0.0 } in
  for i = 0 to n - 1 do
    out.(i) <- t.evaluate xs.(i)
  done;
  out

let evaluate_all ?(evaluator = serial_evaluator) t xs = evaluator t xs

(* evaluation <-> flat float array, for the content-addressed cache *)
let pack e = Array.append [| e.constraint_violation |] e.objectives

let unpack v =
  {
    constraint_violation = v.(0);
    objectives = Array.sub v 1 (Array.length v - 1);
  }

(* the registry histogram is resolved once; each evaluation then pays
   one clock read + one mutex-protected bucket bump *)
let eval_hist = lazy (Repro_obs.Histogram.get "eval.duration")

let timed_evaluate t x =
  Repro_obs.Histogram.time (Lazy.force eval_hist) (fun () -> t.evaluate x)

let cache_kind ~salt t =
  "eval:" ^ t.name ^ if salt = "" then "" else ":" ^ salt

(* Shared cache-then-bulk skeleton: consult the cache on the calling
   domain, hand only the misses to [bulk] (local pool map or the remote
   worker farm — anything honouring "one result per input, in order"),
   store and reassemble by index so output order and content are
   independent of who computed what. *)
let cached_evaluator ?cache ?(salt = "") ~bulk () t xs =
  let module E = Repro_engine in
  let n = Array.length xs in
  Repro_obs.Trace.span "eval.batch"
    ~args:[ ("problem", t.name); ("points", string_of_int n) ]
  @@ fun () ->
  E.Telemetry.time "eval.wall" @@ fun () ->
  match cache with
  | None ->
    E.Telemetry.incr "eval.runs" ~by:n;
    let fresh = bulk t xs in
    if Array.length fresh <> n then
      failwith "Problem.cached_evaluator: bulk returned wrong arity";
    fresh
  | Some cache ->
    let kind = cache_kind ~salt t in
    let keys = Array.map (fun x -> E.Cache.key ~kind x) xs in
    let out = Array.make n None in
    let miss_idx = ref [] in
    for i = n - 1 downto 0 do
      match E.Cache.find cache keys.(i) with
      | Some v -> out.(i) <- Some (unpack v)
      | None -> miss_idx := i :: !miss_idx
    done;
    let misses = Array.of_list !miss_idx in
    E.Telemetry.incr "eval.runs" ~by:(Array.length misses);
    E.Telemetry.incr "eval.cache_hits" ~by:(n - Array.length misses);
    Repro_obs.Trace.instant "eval.cache"
      ~args:
        [
          ("hits", string_of_int (n - Array.length misses));
          ("misses", string_of_int (Array.length misses));
        ];
    let fresh = bulk t (Array.map (fun i -> xs.(i)) misses) in
    if Array.length fresh <> Array.length misses then
      failwith "Problem.cached_evaluator: bulk returned wrong arity";
    Array.iteri
      (fun k i ->
        E.Cache.store cache keys.(i) (pack fresh.(k));
        out.(i) <- Some fresh.(k))
      misses;
    Array.map (function Some e -> e | None -> assert false) out

let parallel_evaluator ?pool ?cache ?salt () t xs =
  let bulk t xs = Repro_engine.Parmap.map ?pool (timed_evaluate t) xs in
  cached_evaluator ?cache ?salt ~bulk () t xs
