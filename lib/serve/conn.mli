(** Pull-based HTTP/1.1 connection state machine for the event-loop
    server: no file descriptors, no syscalls, no blocking — just bytes
    in, parsed requests out, response bytes queued for the reactor to
    drain.

    Reads: {!feed} absorbs a chunk and returns every complete request
    it finished (pipelined clients can yield several per feed; a
    partial message yields none and is resumed by the next feed).
    Limits are the same as the blocking path ({!Http.max_head},
    {!Http.max_body}, per-line/per-count caps) — a violation yields one
    [Protocol_error] event after which the connection parses nothing
    more ({!broken}).

    Writes: {!push_response} serialises through
    {!Http.render_response} — byte-identical to the blocking writer —
    into a growable output buffer; the reactor drains it via
    {!output} / {!output_consumed} as the socket accepts bytes, and
    applies backpressure (stops reading) when {!output_pending} is
    high. *)

type t

type event =
  | Request of Http.request
  | Protocol_error of Http.error
      (** respond 400/413 with [Connection: close] and stop reading *)

val create : unit -> t

val feed : t -> Bytes.t -> int -> int -> event list
(** [feed t buf off len] absorbs [len] bytes and returns completed
    events in arrival order.  Returns [[]] once the connection is
    {!broken}. *)

val push_response :
  ?headers:(string * string) list ->
  keep_alive:bool ->
  status:int ->
  body:string ->
  t ->
  unit
(** Queue one serialised response; [keep_alive:false] also marks the
    connection {!close_after_flush}. *)

val output_pending : t -> int
(** Bytes queued but not yet accepted by the socket. *)

val output : t -> Bytes.t * int * int
(** [buffer, offset, length] of the pending output — valid until the
    next call that mutates [t]. *)

val output_consumed : t -> int -> unit
(** The reactor wrote [n] bytes; drop them from the buffer. *)

val close_after_flush : t -> bool
val set_close_after_flush : t -> unit

val broken : t -> bool
(** A protocol error was emitted; feed is inert. *)

val input_pending : t -> bool
(** Unconsumed input bytes are buffered (a partial message). *)

val mid_request : t -> bool
(** A request has started arriving but is not complete — used by the
    drain logic to give half-read requests a grace period. *)
