(** Endpoint routing and JSON (de)serialisation for the model server.

    Routes (all responses [application/json]; [/v1/*] is the canonical
    surface, the bare unversioned paths are aliases kept for one
    release and counted under [serve.legacy_requests]):

    - [GET /v1/healthz] — liveness + build/uptime info (version string,
      start time, uptime, servable and loaded model counts);
    - [GET /v1/metrics] — combined observability snapshot: Telemetry
      counters and timers plus every registered
      {!Repro_obs.Histogram} as count/sum/min/max/p50/p90/p99 (notably
      the per-endpoint [serve.latency.*] request-latency histograms
      recorded by [handle]).  [?format=prom] renders the same snapshot
      as Prometheus text exposition ({!Repro_prof.Prom}); JSON stays
      the default;
    - [GET /v1/models] — servable ids with load state;
    - [POST /v1/models/:id/query] — batched
      {!Hieropt.Perf_table.eval_points} over
      [{"points": [{"kvco": .., "ivco": ..}, ...]}] (or one bare point
      object); floats travel in lossless decimal, so served results are
      bit-identical to in-process evaluation.  This is the hot path: it
      runs on per-reactor model handles (one lock-free stat revalidates
      the handle; the LRU registry mutex is only taken on miss/reload)
      and serialises into a reused per-reactor scratch buffer;
    - [POST /v1/models/:id/verify] — parameter recovery: a
      5-performance point back to the 7 transistor dimensions
      ({!Hieropt.Perf_table.params_of_perf});
    - [GET /v1/models/:id/export?format=va|spice] — the fitted table
      rendered by {!Repro_netlist.Export} as a Verilog-A [$table_model]
      module ([va], the default; [verilog-a] is accepted) or a SPICE
      subcircuit ([spice]), served as [text/plain].  The renderers are
      pure functions of the table, so the body is byte-identical to
      [hieropt export] over the same model directory.

    Unknown paths map to 404, wrong verbs on known paths to 405,
    malformed bodies to 400, load failures and handler exceptions to
    500.  [handle] never raises; it is called concurrently from every
    reactor domain. *)

type t

val create : ?version:string -> registry:Registry.t -> unit -> t
(** [version] is reported by [/healthz] (default ["dev"]); the start
    time is captured here. *)

val registry : t -> Registry.t

val metrics_json : unit -> Json.t
(** The [GET /metrics] document (also printed by the CLI's local
    [query --metrics]). *)

val query_param : Http.request -> string -> string option
(** Value of a query-string parameter in the raw target (no percent
    decoding — parameters are plain tokens).  Shared with the
    eval-worker's routing. *)

val handle : t -> Http.request -> int * (string * string) list * string
(** [status, extra headers, body] for one parsed request. *)

(* wire shape of a model query result — shared by the server, the
   client and the CLI so all three print/parse identically *)

val point_eval_to_json : Hieropt.Perf_table.point_eval -> Json.t
val point_eval_of_json : Json.t -> (Hieropt.Perf_table.point_eval, string) result
val params_to_json : Repro_circuit.Topologies.vco_params -> Json.t

val max_batch : int
(** Upper bound on points per [/query] request (larger batches 400). *)
