(** Content-addressed memoisation of expensive evaluations.

    Keys canonically hash a (decision vector, optional process-sample
    id, measurement kind) triple: float bits are canonicalised (-0.0 =
    +0.0, all NaNs equal) and full key equality backs the hash, so
    collisions cannot alias distinct designs.  Values are flat float
    arrays (callers pack/unpack their own records).

    The table is mutex-protected, counts hits/misses/evictions, evicts
    FIFO past [capacity], and can be saved to / loaded from a text
    [.cache] file kept next to the [hieropt_model/*.tbl] artefacts. *)

type key

val key : ?sample:int -> kind:string -> float array -> key
(** [key ~kind x] addresses the evaluation of decision vector [x] under
    measurement [kind]; [sample] distinguishes per-process-sample
    results (e.g. Monte-Carlo trial ids). *)

val key_kind : key -> string
val key_sample : key -> int option

val key_id : key -> string
(** Stable hex content address of the key (the hash that backs the
    table).  Used as the [:hash] path segment of the distributed cache
    protocol; full key equality still guards against aliasing on the
    receiving side. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 200_000 entries.
    @raise Invalid_argument when [capacity <= 0]. *)

val find : t -> key -> float array option
(** Counted lookup (a copy of the stored value is returned). *)

val store : t -> key -> float array -> unit
(** Insert (first writer wins; re-storing an existing key is a no-op). *)

val find_or_compute : t -> key -> (unit -> float array) -> float array

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val reset_counters : t -> unit

val stats_line : t -> string
(** e.g. ["cache: 132 entries, 480 hits / 132 misses"]. *)

val save : t -> string -> unit
(** Write the table to [path] (text, lossless [%h] floats). *)

val entry_to_line : key -> float array -> string
(** One entry in the persistence line format
    ([kind <TAB> sample <TAB> bits <TAB> values], lossless) — the wire
    representation of the distributed cache protocol. *)

val entry_of_line : string -> (key * float array) option
(** Inverse of {!entry_to_line}; [None] on malformed input.  The key
    hash is recomputed from the parsed components, never trusted from
    the sender. *)

val fold : t -> ('a -> key -> float array -> 'a) -> 'a -> 'a
(** Fold over a snapshot of the entries in insertion order.  The
    snapshot is taken under the lock; [f] runs outside it. *)

val find_by_id : t -> string -> (key * float array) option
(** Uncounted lookup by {!key_id} (linear scan; protocol traffic only,
    not the hot evaluation path). *)

val load : ?capacity:int -> string -> t
(** @raise Failure when [path] is not a cache file.  Malformed entry
    lines are skipped; counters start at zero. *)

val load_if_exists : ?capacity:int -> string -> t option
(** [None] when the file is missing or unreadable. *)
