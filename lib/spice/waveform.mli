(** Sampled waveforms and the measurements the flow extracts from them
    (threshold crossings, period/frequency, averages, slew rates). *)

type t = { times : float array; values : float array }

val create : float array -> float array -> t
(** @raise Invalid_argument on length mismatch or < 1 point. *)

val length : t -> int
val value_at : t -> float -> float
(** Linear interpolation between samples; clamped outside the time range. *)

val window : t -> t_start:float -> t_end:float -> t
(** Sub-waveform restricted to [t_start, t_end].
    @raise Invalid_argument when the window contains no samples. *)

type direction = Rising | Falling | Either

val crossings : ?direction:direction -> t -> level:float -> float array
(** Interpolated times where the waveform crosses [level], default both
    directions. *)

val periods : ?direction:direction -> t -> level:float -> float array
(** Successive differences of same-direction crossing times (defaults to
    [Rising]). *)

val frequency : ?direction:direction -> t -> level:float -> float option
(** Mean frequency over all measured periods; [None] when fewer than two
    same-direction crossings exist. *)

val period_jitter_rms : ?direction:direction -> t -> level:float -> float option
(** RMS deviation of period samples around their mean (cycle-to-cycle
    spread measured on the waveform itself); [None] with < 3 periods. *)

val mean : t -> float
(** Time-weighted (trapezoidal) average. *)

val rms : t -> float
val peak_to_peak : t -> float

val slew_at_crossings : ?direction:direction -> t -> level:float -> float
(** Mean |dV/dt| at the crossing points (finite difference of the bracketing
    samples); 0.0 when there are no crossings. *)

val amplitude_ok : t -> lo:float -> hi:float -> bool
(** True when the waveform swings below [lo] and above [hi] (oscillation
    sanity check). *)
