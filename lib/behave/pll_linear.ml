type loop = {
  kvco : float;
  icp : float;
  n_div : int;
  filter : Loop_filter.params;
}

let open_loop_gain loop f =
  let open Complex in
  let w = 2.0 *. Float.pi *. f in
  let z = Loop_filter.impedance loop.filter w in
  let s = { re = 0.0; im = w } in
  let k = loop.icp *. loop.kvco /. float_of_int loop.n_div in
  div (mul { re = k; im = 0.0 } z) s

type analysis = {
  unity_freq : float;
  phase_margin_deg : float;
  zero_freq : float;
  pole3_freq : float;
  stable : bool;
}

(* |G| decreases monotonically for this loop shape; bisect log-frequency *)
let analyse loop =
  let mag f = Complex.norm (open_loop_gain loop f) in
  let f_lo = 1.0 and f_hi = 1e11 in
  if mag f_lo < 1.0 || mag f_hi > 1.0 then None
  else begin
    let lo = ref (log f_lo) and hi = ref (log f_hi) in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if mag (exp mid) > 1.0 then lo := mid else hi := mid
    done;
    let fc = exp (0.5 *. (!lo +. !hi)) in
    let g = open_loop_gain loop fc in
    let phase_deg = Complex.arg g *. 180.0 /. Float.pi in
    let pm = 180.0 +. phase_deg in
    let wz, wp3, _ = Loop_filter.pole_zero loop.filter in
    let fz = wz /. (2.0 *. Float.pi) and fp3 = wp3 /. (2.0 *. Float.pi) in
    Some
      {
        unity_freq = fc;
        phase_margin_deg = pm;
        zero_freq = fz;
        pole3_freq = fp3;
        stable = pm > 5.0 && fz < fc;
      }
  end

let settling_estimate loop ~tolerance =
  if tolerance <= 0.0 || tolerance >= 1.0 then
    invalid_arg "Pll_linear.settling_estimate: tolerance in (0,1)";
  match analyse loop with
  | None -> None
  | Some a ->
    (* dominant closed-loop time constant ~ 1/(2 pi fc * min(1, pm/60)) *)
    let damping = Float.min 1.0 (Float.max 0.2 (a.phase_margin_deg /. 60.0)) in
    let tau = 1.0 /. (2.0 *. Float.pi *. a.unity_freq *. damping) in
    Some (tau *. log (1.0 /. tolerance))
