(* hieropt — command-line driver for the hierarchical performance and
   variation flow.

   Sub-commands:
     simulate      parse a SPICE-like deck, run DC + transient, report
     characterise  measure a ring-VCO sizing (the paper's testbench)
     flow          run the full hierarchical flow (Figure 4)
     system        re-run the system level over a saved table model
     yield         Monte-Carlo a design point from a saved table model *)

open Cmdliner

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chattier progress output.")

let seed_t =
  Arg.(
    value
    & opt int 2009
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (flows are deterministic).")

let full_t =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Use the paper-scale workload (100x30 circuit GA, 100 MC \
           samples/point, 500 yield samples) instead of the fast bench \
           scale.  Equivalent to HIEROPT_FULL=1 or --scale paper.")

let scale_t =
  Arg.(
    value
    & opt (some (enum [ ("tiny", `Tiny); ("bench", `Bench); ("paper", `Paper) ]))
        None
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Workload scale: $(b,tiny) (seconds; also narrows the spec to \
           the smoke-test band), $(b,bench) (minutes) or $(b,paper) (the \
           paper's settings).  Overrides --full.")

(* --scale wins over --full; tiny swaps in the smoke-test spec too *)
let resolve_scale full scale =
  match scale with
  | Some `Tiny -> (Hieropt.Hierarchy.tiny_scale, Some Hieropt.Hierarchy.tiny_spec)
  | Some `Bench -> (Hieropt.Hierarchy.bench_scale, None)
  | Some `Paper -> (Hieropt.Hierarchy.paper_scale, None)
  | None ->
    ( (if full then Hieropt.Hierarchy.paper_scale
       else Hieropt.Hierarchy.scale_of_env ()),
      None )

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel evaluation engine.  Defaults \
           to HIEROPT_JOBS, or the machine's recommended domain count.  \
           Results are bit-identical for any worker count; -j 1 forces \
           fully serial evaluation.")

let setup_jobs jobs = Option.iter Repro_engine.Config.set_jobs jobs

(* ---- run-lifecycle flags ---- *)

let checkpoint_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot run state into the model directory every $(docv) GA \
           generations / Monte-Carlo chunks (and at every phase \
           boundary).  Snapshots are written atomically; Ctrl-C flushes \
           a final snapshot and exits cleanly (a second Ctrl-C kills \
           immediately).")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the model directory's snapshot.  A missing, \
           corrupt or configuration-mismatched snapshot warns and \
           restarts cold.  An interrupted-then-resumed run produces \
           byte-identical artefacts to an uninterrupted one.")

let interrupt_after_t =
  let phases =
    List.map
      (fun p -> (Hieropt.Hierarchy.phase_name p, p))
      Hieropt.Hierarchy.[ Circuit_ga; Variation; Model; System_ga ]
  in
  Arg.(
    value
    & opt (some (enum phases)) None
    & info [ "interrupt-after" ] ~docv:"PHASE"
        ~doc:
          "Testing hook: flush the snapshot and stop (exit 130) once \
           $(docv) completes, as an external interrupt at that boundary \
           would.")

let exit_interrupted () =
  Fmt.epr "interrupted — snapshot flushed; re-run with --resume to continue@.";
  exit 130

let with_lifecycle ~checkpoint_every f =
  if checkpoint_every <> None then
    Repro_engine.Checkpoint.install_signal_handler ();
  try f () with Repro_engine.Checkpoint.Interrupted -> exit_interrupted ()

(* ---- simulate ---- *)

let simulate_cmd =
  let deck_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DECK" ~doc:"SPICE-like netlist file.")
  in
  let tstop_t =
    Arg.(
      value
      & opt string "10n"
      & info [ "t-stop" ] ~docv:"TIME" ~doc:"Transient length (SPICE units).")
  in
  let dt_t =
    Arg.(
      value
      & opt string "10p"
      & info [ "dt" ] ~docv:"TIME" ~doc:"Transient step (SPICE units).")
  in
  let node_t =
    Arg.(
      value
      & opt_all string []
      & info [ "probe" ] ~docv:"NODE" ~doc:"Node(s) to report (repeatable).")
  in
  let run deck tstop dt probes verbose =
    setup_logging verbose;
    let net = Repro_circuit.Parser.parse_file deck in
    let cm = Repro_spice.Mna.compile net in
    let dc =
      match Repro_spice.Dcop.solve_result cm with
      | Ok dc -> dc
      | Error e ->
        Fmt.epr "DC operating point failed: %s@."
          (Repro_spice.Solver_error.to_string e);
        exit 1
    in
    Fmt.pr "DC operating point (%s, %d iterations)@." dc.Repro_spice.Dcop.strategy
      dc.Repro_spice.Dcop.iterations;
    let t_stop = Repro_util.Si.parse tstop and dt = Repro_util.Si.parse dt in
    let res =
      match
        Repro_spice.Transient.run_result cm
          (Repro_spice.Transient.default_options ~t_stop ~dt)
      with
      | Ok res -> res
      | Error e ->
        Fmt.epr "transient failed: %s@." (Repro_spice.Solver_error.to_string e);
        exit 1
    in
    let probes =
      if probes <> [] then probes
      else
        (* default: every named non-ground node *)
        List.init (Repro_circuit.Netlist.node_count net - 1) (fun i ->
            Repro_circuit.Netlist.node_name net (i + 1))
    in
    List.iter
      (fun node ->
        let w = Repro_spice.Transient.node_wave res node in
        Fmt.pr "v(%s): dc=%.4f V, mean=%.4f V, ptp=%.4f V%a@." node
          (Repro_spice.Dcop.node_voltage cm dc node)
          (Repro_spice.Waveform.mean w)
          (Repro_spice.Waveform.peak_to_peak w)
          (fun ppf w ->
            match Repro_spice.Waveform.frequency w ~level:(Repro_spice.Waveform.mean w) with
            | Some f -> Fmt.pf ppf ", f=%s" (Repro_util.Si.format_unit f "Hz")
            | None -> ())
          w)
      probes
  in
  let info =
    Cmd.info "simulate" ~doc:"Simulate a SPICE-like deck (DC + transient)."
  in
  Cmd.v info Term.(const run $ deck_t $ tstop_t $ dt_t $ node_t $ verbose_t)

(* ---- characterise ---- *)

let characterise_cmd =
  let params_t =
    let doc =
      "The 7 designable parameters wn,ln,wp,lp,wcn,wcp,lc with SPICE \
       suffixes, e.g. '20u,0.2u,40u,0.2u,30u,60u,0.24u'."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "sizing" ] ~docv:"W/L LIST" ~doc)
  in
  let run sizing verbose =
    setup_logging verbose;
    let params =
      match sizing with
      | None -> Repro_circuit.Topologies.vco_default
      | Some s ->
        let fields = String.split_on_char ',' s in
        if List.length fields <> 7 then
          failwith "need exactly 7 comma-separated values";
        Repro_circuit.Topologies.vco_params_of_vector
          (Array.of_list (List.map Repro_util.Si.parse fields))
    in
    match Repro_spice.Vco_measure.characterise params with
    | Ok perf -> Fmt.pr "%a@." Repro_spice.Vco_measure.pp_performance perf
    | Error f ->
      Fmt.epr "characterisation failed: %s@."
        (Repro_spice.Vco_measure.failure_to_string f);
      exit 1
  in
  let info =
    Cmd.info "characterise"
      ~doc:"Measure a ring-VCO sizing at transistor level (kvco, ivco, jvco, fmin, fmax)."
  in
  Cmd.v info Term.(const run $ params_t $ verbose_t)

(* ---- flow ---- *)

let model_dir_t =
  Arg.(
    value
    & opt string "hieropt_model"
    & info [ "model-dir" ] ~docv:"DIR" ~doc:"Where the .tbl table model lives.")

let flow_cmd =
  let ablation_t =
    Arg.(
      value & flag
      & info [ "nominal-only" ]
          ~doc:
            "Ignore the variation model during system-level optimisation \
             (the method of the paper's reference [10]); for the ablation \
             comparison.")
  in
  let run seed full scale jobs nominal_only model_dir checkpoint_every resume
      interrupt_after verbose =
    setup_logging verbose;
    setup_jobs jobs;
    let scale, spec = resolve_scale full scale in
    let cfg =
      Hieropt.Hierarchy.make_config ~seed ~scale ?spec
        ~use_variation:(not nominal_only) ~model_dir ?checkpoint_every ~resume
        ()
    in
    with_lifecycle ~checkpoint_every @@ fun () ->
    let result =
      Hieropt.Hierarchy.run
        ~progress:(fun s -> Fmt.pr "[flow] %s@." s)
        ?interrupt_after cfg
    in
    Fmt.pr "@.%s@." (Hieropt.Experiments.fig7_front result.Hieropt.Hierarchy.front);
    Fmt.pr "%s@." (Hieropt.Experiments.table1 result.Hieropt.Hierarchy.entries);
    Fmt.pr "%s@."
      (Hieropt.Experiments.table2 ?selected:result.Hieropt.Hierarchy.selected
         result.Hieropt.Hierarchy.rows);
    (match result.Hieropt.Hierarchy.selected with
    | Some row ->
      Fmt.pr "%s@."
        (Hieropt.Experiments.fig8_locking result.Hieropt.Hierarchy.pll_config row)
    | None -> Fmt.pr "no design met the specification@.");
    (match result.Hieropt.Hierarchy.yield with
    | Some y ->
      Fmt.pr "%s@."
        (Hieropt.Experiments.yield_report y
           ~verification:result.Hieropt.Hierarchy.verification)
    | None -> ());
    Fmt.pr "%s@." (Repro_engine.Telemetry.line ())
  in
  let info =
    Cmd.info "flow"
      ~doc:"Run the complete hierarchical flow (Figure 4 of the paper)."
  in
  Cmd.v info
    Term.(
      const run $ seed_t $ full_t $ scale_t $ jobs_t $ ablation_t $ model_dir_t
      $ checkpoint_every_t $ resume_t $ interrupt_after_t $ verbose_t)

(* ---- system ---- *)

let system_cmd =
  let run seed full scale jobs model_dir checkpoint_every resume verbose =
    setup_logging verbose;
    setup_jobs jobs;
    let model = Hieropt.Perf_table.load ~dir:model_dir in
    let scale, spec = resolve_scale full scale in
    let cfg =
      Hieropt.Hierarchy.make_config ~seed ~scale ?spec ~model_dir
        ?checkpoint_every ~resume ()
    in
    with_lifecycle ~checkpoint_every @@ fun () ->
    let result =
      Hieropt.Hierarchy.run_system_level
        ~progress:(fun s -> Fmt.pr "[system] %s@." s)
        cfg ~model
    in
    Fmt.pr "%s@."
      (Hieropt.Experiments.table2 ?selected:result.Hieropt.Hierarchy.selected
         result.Hieropt.Hierarchy.rows)
  in
  let info =
    Cmd.info "system"
      ~doc:"Re-run the system-level optimisation over a saved table model."
  in
  Cmd.v info
    Term.(
      const run $ seed_t $ full_t $ scale_t $ jobs_t $ model_dir_t
      $ checkpoint_every_t $ resume_t $ verbose_t)

(* ---- yield ---- *)

let yield_cmd =
  let kvco_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "kvco" ] ~docv:"HZ_PER_V" ~doc:"VCO gain, e.g. 400meg.")
  in
  let ivco_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "ivco" ] ~docv:"A" ~doc:"VCO current, e.g. 8m.")
  in
  let filt_t name ~doc ~default =
    Arg.(value & opt string default & info [ name ] ~doc)
  in
  let samples_t =
    Arg.(value & opt int 500 & info [ "samples" ] ~doc:"MC sample count.")
  in
  let run model_dir kvco ivco c1 c2 r1 samples seed jobs verbose =
    setup_logging verbose;
    setup_jobs jobs;
    let model = Hieropt.Perf_table.load ~dir:model_dir in
    let cfg = Hieropt.Pll_problem.default_config ~model in
    let p = Repro_util.Si.parse in
    match
      Hieropt.Pll_problem.evaluate_point cfg ~kvco:(p kvco) ~ivco:(p ivco)
        ~c1:(p c1) ~c2:(p c2) ~r1:(p r1)
    with
    | Error e ->
      Fmt.epr "design point failed: %s@." e;
      exit 1
    | Ok row ->
      Fmt.pr "%a@." Hieropt.Pll_problem.pp_row row;
      let y =
        Hieropt.Yield.behavioural ~n:samples
          ~prng:(Repro_util.Prng.create seed)
          cfg row
      in
      Fmt.pr "yield: %a@." Repro_util.Stats.pp_yield y
  in
  let info =
    Cmd.info "yield" ~doc:"Monte-Carlo yield of a system design point."
  in
  Cmd.v info
    Term.(
      const run $ model_dir_t $ kvco_t $ ivco_t
      $ filt_t "c1" ~doc:"Loop filter C1." ~default:"10p"
      $ filt_t "c2" ~doc:"Loop filter C2." ~default:"0.6p"
      $ filt_t "r1" ~doc:"Loop filter R1." ~default:"6k"
      $ samples_t $ seed_t $ jobs_t $ verbose_t)

let main_cmd =
  let doc =
    "hierarchical performance-and-variation optimisation of analogue \
     circuits (DATE 2009 reproduction)"
  in
  Cmd.group (Cmd.info "hieropt" ~version:"1.0.0" ~doc)
    [ simulate_cmd; characterise_cmd; flow_cmd; system_cmd; yield_cmd ]

let () = exit (Cmd.eval main_cmd)
